(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- fig12     -- one artefact
     dune exec bench/main.exe -- quick     -- reduced sizes (CI)
     dune exec bench/main.exe -- bechamel  -- wall-clock cost of the
                                              simulator itself, one
                                              Bechamel test per artefact

   The simulator is deterministic, so every table below reproduces
   bit-for-bit; EXPERIMENTS.md records these outputs against the
   paper's claims. *)

module Table = Fscope_util.Table
module Config = Fscope_machine.Config
module Registry = Fscope_workloads.Registry
module E = Fscope_experiments

let workload name params = Registry.build ~params name

let say fmt = Printf.printf (fmt ^^ "\n%!")

let run_table3 () = Table.print (E.Tables.table3 Config.default)
let run_table4 () = Table.print (E.Tables.table4 ())
let run_cost () = Table.print (E.Tables.hardware_cost Config.default)

let run_fig12 ~quick () =
  let series = E.Fig12.run ~quick () in
  Table.print (E.Fig12.table series);
  let peaks = List.map E.Fig12.peak series in
  say "peak speedups: %.2fx .. %.2fx (paper: 1.13x .. 1.34x)"
    (fst (Fscope_util.Stats.min_max peaks))
    (snd (Fscope_util.Stats.min_max peaks))

let run_fig13 ~quick () =
  let bars = E.Fig13.run ~quick () in
  Table.print (E.Fig13.table bars)

let run_fig14 ~quick () =
  let rows = E.Fig14.run ~quick () in
  Table.print (E.Fig14.table rows)

let run_fig15 ~quick () =
  let cells = E.Fig15.run ~quick () in
  Table.print (E.Fig15.table cells)

let run_fig16 ~quick () =
  let cells = E.Fig16.run ~quick () in
  Table.print (E.Fig16.table cells)

let run_ablate ~quick () =
  Table.print (E.Ablation.fsb_table (E.Ablation.fsb_sweep ~quick ()));
  Table.print (E.Ablation.fss_table (E.Ablation.fss_sweep ()));
  Table.print (E.Ablation.flavor_table (E.Ablation.flavor_sweep ~quick ()))

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock cost of regenerating each artefact, measured
   on reduced-size runs so sampling stays tractable.                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let staged f = Staged.stage f in
  [
    Test.make ~name:"table3" (staged (fun () -> ignore (E.Tables.table3 Config.default)));
    Test.make ~name:"table4" (staged (fun () -> ignore (E.Tables.table4 ())));
    Test.make ~name:"hw-cost"
      (staged (fun () -> ignore (E.Tables.hardware_cost_bits Config.default)));
    Test.make ~name:"fig12-cell"
      (staged (fun () ->
           let w =
             workload "dekker"
               { Registry.default_params with
                 level = Fscope_workloads.Privwork.fig12_levels.(0);
                 attempts = 5 }
           in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig13-cell"
      (staged (fun () ->
           let w = workload "radiosity" { Registry.default_params with size = Some 32 } in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig14-cell"
      (staged (fun () ->
           let w =
             workload "harris"
               { Registry.default_params with
                 scope = `Set;
                 level = Fscope_workloads.Privwork.fig12_levels.(0) }
           in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig15-cell"
      (staged (fun () ->
           let w = workload "barnes" { Registry.default_params with size = Some 64 } in
           let c = Config.with_mem_latency 200 Config.default in
           ignore (E.Exp_run.measure (E.Exp_run.s_config c) w)));
    Test.make ~name:"fig16-cell"
      (staged (fun () ->
           let w = workload "barnes" { Registry.default_params with size = Some 64 } in
           let c = Config.with_rob_size 64 Config.default in
           ignore (E.Exp_run.measure (E.Exp_run.s_config c) w)));
    Test.make ~name:"ablate-cell"
      (staged (fun () ->
           let w = workload "nested-scopes" { Registry.default_params with rounds = Some 8 } in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
  ]

let run_bechamel () =
  let open Bechamel in
  let tests = Test.make_grouped ~name:"bench" (bechamel_tests ()) in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> say "%-40s %12.3f ms/run" name (est /. 1e6)
      | Some _ | None -> say "%-40s (no estimate)" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let artefacts ~quick =
  [
    ("table3", run_table3);
    ("table4", run_table4);
    ("cost", run_cost);
    ("fig12", run_fig12 ~quick);
    ("fig13", run_fig13 ~quick);
    ("fig14", run_fig14 ~quick);
    ("fig15", run_fig15 ~quick);
    ("fig16", run_fig16 ~quick);
    ("ablate", run_ablate ~quick);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let wanted = List.filter (fun a -> a <> "quick") args in
  match wanted with
  | [ "bechamel" ] -> run_bechamel ()
  | [] ->
    List.iter
      (fun (name, f) ->
        say "";
        say "### %s" name;
        f ())
      (artefacts ~quick)
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name (artefacts ~quick) with
        | Some f -> f ()
        | None ->
          say "unknown artefact %s (have: %s, bechamel)" name
            (String.concat ", " (List.map fst (artefacts ~quick))))
      names
