(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- fig12     -- one artefact
     dune exec bench/main.exe -- quick     -- reduced sizes (CI)
     dune exec bench/main.exe -- --jobs 4  -- fan experiment points
                                              across 4 domains
     dune exec bench/main.exe -- engine    -- fast-forward engine vs
                                              the naive cycle loop
     dune exec bench/main.exe -- bechamel  -- wall-clock cost of the
                                              simulator itself, one
                                              Bechamel test per artefact

   The simulator is deterministic, so every table below reproduces
   bit-for-bit regardless of --jobs; EXPERIMENTS.md records these
   outputs against the paper's claims.  Each non-bechamel invocation
   also drops BENCH_engine.json (wall-clock per artefact plus the
   engine-vs-naive comparison) for CI to archive. *)

module Table = Fscope_util.Table
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Registry = Fscope_workloads.Registry
module W = Fscope_workloads
module E = Fscope_experiments

let workload name params = E.Exp_run.workload ~params name

let say fmt = Printf.printf (fmt ^^ "\n%!")
let now_s () = Unix.gettimeofday ()

let run_table3 () = Table.print (E.Tables.table3 Config.default)
let run_table4 () = Table.print (E.Tables.table4 ())
let run_cost () = Table.print (E.Tables.hardware_cost Config.default)

let run_fig12 ~quick () =
  let series = E.Fig12.run ~quick () in
  Table.print (E.Fig12.table series);
  let peaks = List.map E.Fig12.peak series in
  say "peak speedups: %.2fx .. %.2fx (paper: 1.13x .. 1.34x)"
    (fst (Fscope_util.Stats.min_max peaks))
    (snd (Fscope_util.Stats.min_max peaks))

let run_fig13 ~quick () =
  let bars = E.Fig13.run ~quick () in
  Table.print (E.Fig13.table bars)

let run_fig14 ~quick () =
  let rows = E.Fig14.run ~quick () in
  Table.print (E.Fig14.table rows)

let run_fig15 ~quick () =
  let cells = E.Fig15.run ~quick () in
  Table.print (E.Fig15.table cells)

let run_fig16 ~quick () =
  let cells = E.Fig16.run ~quick () in
  Table.print (E.Fig16.table cells)

let run_ablate ~quick () =
  Table.print (E.Ablation.fsb_table (E.Ablation.fsb_sweep ~quick ()));
  Table.print (E.Ablation.fss_table (E.Ablation.fss_sweep ()));
  Table.print (E.Ablation.flavor_table (E.Ablation.flavor_sweep ~quick ()))

(* ------------------------------------------------------------------ *)
(* Engine benchmark: the event-horizon fast-forward loop against the
   retained naive per-cycle loop, on the fig13 full-app set (default
   latency and the fig15 500-cycle point).  Both loops produce
   bit-identical results; this artefact quotes the wall-clock win and
   simulation throughput of each.                                      *)
(* ------------------------------------------------------------------ *)

type engine_row = {
  er_workload : string;
  er_config : string;
  er_cycles : int;
  er_engine_s : float;
  er_naive_s : float;
  er_spin_skipped : int;
  er_spin_sleeps : int;
}

(* The spin fast-forward counters describe how the engine reached the
   result, not the result itself, so they are excluded from the
   bit-identity check (the naive loop never spins). *)
let strip_spin (r : Machine.result) =
  {
    r with
    Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
    shard = Machine.no_shard_ctrs;
  }

let timed f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)

let engine_rows = ref ([] : engine_row list)

let run_engine ~quick () =
  (* Fig13's app set plus the spin-heavy points: dekker's busy-wait
     entry protocol, and spin-barrier — whose workers spend most of
     their cycles in stable flag spins the engine's spin fast-forward
     sleeps through (the spin-skip column shows the replayed span). *)
  let apps =
    [
      ( "dekker",
        workload "dekker"
          {
            Registry.default_params with
            attempts = (if quick then 10 else Registry.default_params.Registry.attempts);
          } );
      ( "spin-barrier",
        workload "spin-barrier"
          { Registry.default_params with rounds = Some (if quick then 10 else 40) } );
    ]
    @ E.Fig13.apps ~quick ()
  in
  let points =
    List.concat_map
      (fun (app, w) ->
        [
          (app, "T", E.Exp_run.t_config Config.default, w);
          (app, "S", E.Exp_run.s_config Config.default, w);
          ( app,
            "T lat500",
            E.Exp_run.t_config (Config.with_mem_latency 500 Config.default),
            w );
        ])
      apps
  in
  let rows =
    List.map
      (fun (app, cname, config, w) ->
        let engine_r, engine_s =
          timed (fun () -> Machine.run config w.W.Workload.program)
        in
        let naive_r, naive_s =
          timed (fun () -> Machine.run_reference config w.W.Workload.program)
        in
        if strip_spin engine_r <> strip_spin naive_r then
          failwith
            (Printf.sprintf "engine/naive mismatch on %s (%s)" app cname);
        {
          er_workload = app;
          er_config = cname;
          er_cycles = engine_r.Machine.cycles;
          er_engine_s = engine_s;
          er_naive_s = naive_s;
          er_spin_skipped = engine_r.Machine.spin.Machine.cycles_skipped;
          er_spin_sleeps = engine_r.Machine.spin.Machine.sleeps;
        })
      points
  in
  engine_rows := rows;
  let t =
    Table.create ~title:"Engine — fast-forward vs naive cycle loop"
      ~header:
        [
          "app"; "config"; "cycles"; "engine s"; "naive s"; "speedup"; "Mcyc/s";
          "spin-skip";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.er_workload;
          r.er_config;
          string_of_int r.er_cycles;
          Printf.sprintf "%.3f" r.er_engine_s;
          Printf.sprintf "%.3f" r.er_naive_s;
          Table.cell_x (r.er_naive_s /. r.er_engine_s);
          Printf.sprintf "%.2f" (float_of_int r.er_cycles /. r.er_engine_s /. 1e6);
          string_of_int r.er_spin_skipped;
        ])
    rows;
  Table.print t;
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  say "engine total %.2fs, naive total %.2fs — %.2fx overall"
    (tot (fun r -> r.er_engine_s))
    (tot (fun r -> r.er_naive_s))
    (tot (fun r -> r.er_naive_s) /. tot (fun r -> r.er_engine_s))

(* ------------------------------------------------------------------ *)
(* Profile artefact: cycle-accounting profiles of the eight paper
   workloads under sfence / traditional / no-fence, rendered into
   BENCH_profile.json for CI to archive.  Each profile carries the
   full CPI stack, per-fence-site tables and spin candidates; the
   table printed here is just the headline shares.                     *)
(* ------------------------------------------------------------------ *)

module Obs = Fscope_obs

let profile_inputs = ref ([] : Obs.Profile.input list)

(* The no-fence ablation can break a workload's termination protocol
   (pst livelocks in its steal loop without ordering), so profile runs
   carry a cycle cap several times above any terminating run's count;
   a capped run is reported with its [timed_out] flag set rather than
   spinning out the 30M-cycle default budget at traced-run speed. *)
let profile_configs ~quick =
  let base =
    Config.with_max_cycles (if quick then 100_000 else 300_000) Config.default
  in
  [ E.Exp_run.s_config base; E.Exp_run.t_config base; E.Exp_run.nf_config base ]

let run_profile ~quick () =
  let build name size =
    workload name
      {
        Registry.default_params with
        size;
        attempts = (if quick then 10 else Registry.default_params.Registry.attempts);
      }
  in
  let apps =
    [
      build "dekker" None;
      build "wsq" None;
      build "msn" (if quick then Some 8 else None);
      build "harris" (if quick then Some 4 else None);
      build "pst" (Some (if quick then 256 else 768));
      build "ptc" (Some (if quick then 128 else 256));
      build "barnes" (Some (if quick then 64 else 192));
      build "radiosity" (Some (if quick then 64 else 160));
      workload "spin-barrier"
        { Registry.default_params with rounds = Some (if quick then 8 else 24) };
    ]
  in
  let inputs =
    List.concat_map
      (fun w ->
        List.map (fun config -> E.Profiling.profile config w) (profile_configs ~quick))
      apps
  in
  profile_inputs := inputs;
  let t =
    Table.create ~title:"Profile — CPI-stack headline shares"
      ~header:[ "app"; "config"; "cycles"; "active"; "fence%"; "spin%"; "mem%" ]
  in
  List.iter
    (fun (p : Obs.Profile.input) ->
      let active = Array.fold_left ( + ) 0 p.Obs.Profile.core_active in
      let sum f = Array.fold_left (fun acc c -> acc + f c) 0 p.Obs.Profile.cpi in
      let leaf_sum = sum Obs.Cpi.total in
      if leaf_sum <> active then
        failwith
          (Printf.sprintf "profile %s [%s]: CPI leaves sum %d <> active cycles %d"
             p.Obs.Profile.label p.Obs.Profile.config leaf_sum active);
      let share v = 100. *. Fscope_util.Stats.ratio ~num:v ~den:active in
      let mem =
        sum (fun c ->
            Obs.Cpi.get c Obs.Cpi.Mem_l1 + Obs.Cpi.get c Obs.Cpi.Mem_l2
            + Obs.Cpi.get c Obs.Cpi.Mem_main)
      in
      Table.add_row t
        [
          p.Obs.Profile.label;
          p.Obs.Profile.config;
          string_of_int p.Obs.Profile.cycles;
          string_of_int active;
          Printf.sprintf "%.1f" (share (sum Obs.Cpi.fence_cycles));
          Printf.sprintf "%.1f" (share (sum (fun c -> Obs.Cpi.get c Obs.Cpi.Spin_candidate)));
          Printf.sprintf "%.1f" (share mem);
        ])
    inputs;
  Table.print t

let write_profile_json ~quick path =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\n  \"schema\": \"fence-scoping/bench-profile/v2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf "  \"profiles\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (Obs.Profile.json p))
    !profile_inputs;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote %s" path

(* ------------------------------------------------------------------ *)
(* Server artefact: the high-traffic suite (MPMC dispatch, cache with
   epoch reclamation, work stealing) — requests per kilocycle and
   fence-stall tails for T vs S vs S-set, written to
   BENCH_server.json.  On hosts with >= 2 CPUs the whole sweep is
   computed twice, --jobs 1 and --jobs 2, and must agree exactly; the
   per-point engine-vs-reference bit-identity check lives inside
   E.Server.eval.                                                      *)
(* ------------------------------------------------------------------ *)

let server_rows = ref ([] : E.Server.row list)

(* Artefacts that decided to skip themselves (e.g. jobs-scaling on a
   1-CPU host) still land in the artefacts list for completeness, but
   carry an explicit "skipped" marker so the trend differ knows their
   near-zero seconds are not a wall-clock improvement to gate
   against. *)
let skipped_artefacts = ref ([] : string list)
let mark_skipped name = skipped_artefacts := name :: !skipped_artefacts

let run_server ~quick () =
  let cpus = Domain.recommended_domain_count () in
  let saved = E.Exp_run.jobs () in
  let rows =
    if cpus < 2 then E.Server.run ~quick ()
    else begin
      E.Exp_run.set_jobs 1;
      let seq = E.Server.run ~quick () in
      E.Exp_run.set_jobs 2;
      let par = E.Server.run ~quick () in
      if seq <> par then
        failwith "server: rows diverge between --jobs 1 and --jobs 2";
      seq
    end
  in
  E.Exp_run.set_jobs saved;
  server_rows := rows;
  Table.print (E.Server.table rows);
  List.iter
    (fun (w, c, g) -> say "%-14s %s throughput %.2fx over T" w c g)
    (E.Server.gains rows);
  if cpus < 2 then say "server: cross-jobs determinism check skipped (host reports %d CPU)" cpus

let write_server_json ~quick ~jobs path =
  let oc = open_out path in
  output_string oc (E.Server.json ~quick ~jobs !server_rows);
  close_out oc;
  say "wrote %s" path

(* ------------------------------------------------------------------ *)
(* Jobs-scaling artefact: the same experiment points measured with one
   domain and with several, asserting byte-identical results and (on
   hosts with enough CPUs to make it meaningful) a wall-clock win.
   Skips cleanly on single-CPU runners.                                *)
(* ------------------------------------------------------------------ *)

type jobs_scaling = {
  js_cpus : int;
  js_points : int;
  js_jobs : int;
  js_seq_s : float;
  js_par_s : float;
}

let jobs_scaling_row = ref (None : jobs_scaling option)

let run_jobs_scaling ~quick () =
  let cpus = Domain.recommended_domain_count () in
  if cpus < 2 then begin
    mark_skipped "jobs-scaling";
    say "jobs-scaling: skipped (host reports %d CPU)" cpus
  end
  else begin
    let specs =
      List.concat_map
        (fun (_, w) ->
          List.map
            (fun (_, mk) -> { E.Exp_run.config = mk Config.default; workload = w })
            [ ("T", E.Exp_run.t_config); ("S", E.Exp_run.s_config) ])
        (E.Fig13.apps ~quick ())
    in
    let saved = E.Exp_run.jobs () in
    E.Exp_run.set_jobs 1;
    let seq_ms, seq_s = timed (fun () -> E.Exp_run.measure_all specs) in
    let j = min 4 cpus in
    E.Exp_run.set_jobs j;
    let par_ms, par_s = timed (fun () -> E.Exp_run.measure_all specs) in
    E.Exp_run.set_jobs saved;
    if seq_ms <> par_ms then
      failwith "jobs-scaling: parallel sweep diverged from the sequential one";
    let sp = seq_s /. par_s in
    say "jobs-scaling: %d points — 1 job %.2fs, %d jobs %.2fs, %.2fx (host CPUs: %d)"
      (List.length specs) seq_s j par_s sp cpus;
    (* Only hold the speedup on hosts with headroom: a 2-3 CPU runner
       can legitimately lose the win to scheduling noise. *)
    if cpus >= 4 && sp < 1.05 then
      failwith
        (Printf.sprintf
           "jobs-scaling: %.2fx with %d jobs on a %d-CPU host — domains buy nothing" sp j
           cpus);
    jobs_scaling_row :=
      Some
        {
          js_cpus = cpus;
          js_points = List.length specs;
          js_jobs = j;
          js_seq_s = seq_s;
          js_par_s = par_s;
        }
  end

(* ------------------------------------------------------------------ *)
(* Shard-scaling artefact: one machine's cores split across OCaml
   domains (--shard-domains) against the same machine on the
   sequential engine loop.  Bit-identity is asserted on every host;
   the wall-clock ratio is recorded, not asserted — a 1-CPU runner
   legitimately loses time to barrier traffic.                         *)
(* ------------------------------------------------------------------ *)

type shard_scaling = {
  ss_cpus : int;
  ss_cores : int;
  ss_shards : int;
  ss_seq_s : float;
  ss_shard_s : float;
  ss_barriers : int;
  ss_elided : int;  (* lockstep-traffic counters of the sharded run *)
}

let shard_scaling_row = ref (None : shard_scaling option)

let run_shard_scaling ~quick () =
  let cpus = Domain.recommended_domain_count () in
  let threads = if quick then 16 else 32 in
  let per = if quick then 4 else 12 in
  let w = W.Mpmc.make ~threads ~per_producer:per ~scope:`Class () in
  let base = E.Exp_run.s_config Config.default in
  let run d =
    timed (fun () ->
        Machine.run (Config.with_shard_domains d base) w.W.Workload.program)
  in
  let seq_r, seq_s = run 1 in
  let shards = max 2 (min 4 cpus) in
  let shard_r, shard_s = run shards in
  if strip_spin seq_r <> strip_spin shard_r then
    failwith
      (Printf.sprintf "shard-scaling: %d-shard run diverged from the sequential loop"
         shards);
  (* Barrier elision must have fired: the MPMC service loops give the
     horizon analysis plenty of provably-quiet spans. *)
  let no_elide_r =
    Machine.run
      (Config.with_elide_barriers false (Config.with_shard_domains shards base))
      w.W.Workload.program
  in
  if strip_spin no_elide_r <> strip_spin shard_r then
    failwith "shard-scaling: elision changed the result";
  if shard_r.Machine.shard.Machine.elided_cycles = 0 then
    failwith "shard-scaling: barrier elision never fired";
  if shard_r.Machine.shard.Machine.barriers >= no_elide_r.Machine.shard.Machine.barriers
  then
    failwith "shard-scaling: elision did not reduce barrier traffic";
  say
    "shard-scaling: %d cores — 1 shard %.2fs, %d shards %.2fs, %.2fx (host CPUs: %d, \
     bit-identical; %d barriers, %d cycles elided, %d barriers without elision)"
    threads seq_s shards shard_s (seq_s /. shard_s) cpus
    shard_r.Machine.shard.Machine.barriers shard_r.Machine.shard.Machine.elided_cycles
    no_elide_r.Machine.shard.Machine.barriers;
  shard_scaling_row :=
    Some
      { ss_cpus = cpus; ss_cores = threads; ss_shards = shards; ss_seq_s = seq_s;
        ss_shard_s = shard_s; ss_barriers = shard_r.Machine.shard.Machine.barriers;
        ss_elided = shard_r.Machine.shard.Machine.elided_cycles }

(* ------------------------------------------------------------------ *)
(* Sharded-sampled artefact: the tentpole composition — the 256-core
   sampled MPMC machine with its detailed windows split across shard
   domains, against the same sampled run on one domain.  Bit-identity
   (including the recorded window ranges) is asserted on every host;
   the >=2x wall-clock gate holds only on runners with >= 4 CPUs at
   full size, where the window work dwarfs the barrier cost.           *)
(* ------------------------------------------------------------------ *)

type sharded_sampled = {
  hs_cpus : int;
  hs_cores : int;
  hs_shards : int;
  hs_seq_s : float;
  hs_shard_s : float;
  hs_barriers : int;
  hs_windows : int;
  hs_gated : bool;  (* the >=2x wall-clock gate was enforced *)
}

let sharded_sampled_row = ref (None : sharded_sampled option)

let run_sharded_sampled ~quick () =
  let cpus = Domain.recommended_domain_count () in
  let threads = 256 in
  let per = if quick then 1 else 156 in
  let w = W.Mpmc.make ~threads ~per_producer:per ~scope:`Class () in
  let base =
    Config.with_sampling
      (Some (E.Server.sampled_sampling ~quick))
      (E.Exp_run.s_config Config.default)
  in
  let run d =
    timed (fun () ->
        Machine.run (Config.with_shard_domains d base) w.W.Workload.program)
  in
  let seq_r, seq_s = run 1 in
  let shards = max 2 (min 4 cpus) in
  let shard_r, shard_s = run shards in
  if strip_spin seq_r <> strip_spin shard_r then
    failwith
      (Printf.sprintf
         "sharded-sampled: %d-shard sampled run diverged from the sequential one"
         shards);
  if seq_r.Machine.sample_windows <> shard_r.Machine.sample_windows then
    failwith "sharded-sampled: sharding moved the measured windows";
  if shard_r.Machine.shard.Machine.barriers = 0 then
    failwith "sharded-sampled: the window team never crossed a barrier";
  let speedup = seq_s /. shard_s in
  let gated = (not quick) && cpus >= 4 in
  say
    "sharded-sampled: %d cores sampled — 1 shard %.2fs, %d shards %.2fs, %.2fx (host \
     CPUs: %d, bit-identical, %d barriers, %d measured windows%s)"
    threads seq_s shards shard_s speedup cpus shard_r.Machine.shard.Machine.barriers
    (List.length shard_r.Machine.sample_windows)
    (if gated then "" else "; wall-clock gate skipped");
  if gated && speedup < 2.0 then
    failwith
      (Printf.sprintf
         "sharded-sampled: %.2fx with %d shards on a %d-CPU host — sharding the \
          windows buys less than the promised 2x"
         speedup shards cpus);
  if not gated then mark_skipped "sharded-sampled";
  sharded_sampled_row :=
    Some
      {
        hs_cpus = cpus;
        hs_cores = threads;
        hs_shards = shards;
        hs_seq_s = seq_s;
        hs_shard_s = shard_s;
        hs_barriers = shard_r.Machine.shard.Machine.barriers;
        hs_windows = List.length shard_r.Machine.sample_windows;
        hs_gated = gated;
      }

(* ------------------------------------------------------------------ *)
(* Sampled-simulation artefact: the SMARTS-style interval estimator
   against the detailed engine on the 64-core MPMC point, asserting
   the per-metric error bound DESIGN §15 promises and (at full size)
   the >=10x wall-clock win; then the sampled server rows, including
   the 256-core machine that only exists sampled.  The sampled rows
   are appended to the server artefact's, so BENCH_server.json carries
   both generations of the scale point.                                *)
(* ------------------------------------------------------------------ *)

type sampled_cmp = {
  sm_workload : string;
  sm_detailed_cycles : int;
  sm_sampled_cycles : int;
  sm_cycles_err_pct : float;
  sm_fence_err_pp : float;  (* |fence share delta| in percentage points *)
  sm_detailed_s : float;
  sm_sampled_s : float;
  sm_speedup : float;
}

let sampled_cmp_row = ref (None : sampled_cmp option)

(* The tested error contract (DESIGN §15): estimated cycles within 25%
   of the detailed run, fence share within 10 percentage points.  CI
   asserts these on every run; the wall-clock win is asserted only at
   full size, where the fast-forward leg dominates. *)
let sampled_cycles_err_bound = 25.0
let sampled_fence_err_bound = 10.0

let run_sampled_sim ~quick () =
  let threads = 64 in
  let per = if quick then 4 else 625 in
  let w = W.Mpmc.make ~threads ~per_producer:per ~scope:`Class () in
  let s = E.Exp_run.s_config Config.default in
  let sampled_config =
    Config.with_sampling (Some (E.Server.sampled_sampling ~quick)) s
  in
  let detailed_r, detailed_s =
    timed (fun () -> Machine.run s w.W.Workload.program)
  in
  let sampled_r, sampled_s =
    timed (fun () -> Machine.run sampled_config w.W.Workload.program)
  in
  List.iter
    (fun (label, r) ->
      if r.Machine.timed_out then failwith ("sampled-sim: " ^ label ^ " run timed out");
      match w.W.Workload.validate r with
      | Ok () -> ()
      | Error msg ->
        failwith (Printf.sprintf "sampled-sim: %s validation failed — %s" label msg))
    [ ("detailed", detailed_r); ("sampled", sampled_r) ];
  let fence_share (r : Machine.result) =
    let active = Machine.total_active_cycles r in
    let fence =
      Array.fold_left
        (fun acc c -> acc + Obs.Cpi.fence_cycles c)
        0 r.Machine.core_cpi
    in
    100. *. Fscope_util.Stats.ratio ~num:fence ~den:active
  in
  let cycles_err =
    100.
    *. Float.abs
         (float_of_int (sampled_r.Machine.cycles - detailed_r.Machine.cycles))
    /. float_of_int detailed_r.Machine.cycles
  in
  let fence_err = Float.abs (fence_share sampled_r -. fence_share detailed_r) in
  let speedup = detailed_s /. sampled_s in
  say
    "sampled-sim: 64-core mpmc — detailed %d cycles %.2fs, sampled %d cycles %.2fs \
     (%.2fx wall-clock, cycle error %.1f%%, fence-share error %.1fpp)"
    detailed_r.Machine.cycles detailed_s sampled_r.Machine.cycles sampled_s speedup
    cycles_err fence_err;
  if cycles_err > sampled_cycles_err_bound then
    failwith
      (Printf.sprintf "sampled-sim: cycle estimate off by %.1f%% (bound %.0f%%)"
         cycles_err sampled_cycles_err_bound);
  if fence_err > sampled_fence_err_bound then
    failwith
      (Printf.sprintf "sampled-sim: fence share off by %.1fpp (bound %.0fpp)" fence_err
         sampled_fence_err_bound);
  if (not quick) && speedup < 10.0 then
    failwith
      (Printf.sprintf
         "sampled-sim: %.2fx wall-clock over detailed at full size — sampling buys \
          less than the promised 10x"
         speedup);
  sampled_cmp_row :=
    Some
      {
        sm_workload = "server-mpmc-64";
        sm_detailed_cycles = detailed_r.Machine.cycles;
        sm_sampled_cycles = sampled_r.Machine.cycles;
        sm_cycles_err_pct = cycles_err;
        sm_fence_err_pp = fence_err;
        sm_detailed_s = detailed_s;
        sm_sampled_s = sampled_s;
        sm_speedup = speedup;
      };
  let rows = E.Server.run_sampled ~quick () in
  server_rows := !server_rows @ rows;
  Table.print (E.Server.table rows)

(* ------------------------------------------------------------------ *)
(* BENCH_engine.json: machine-readable record of the invocation —
   wall-clock per artefact, simulation throughput, and the
   engine-vs-naive rows when the [engine] artefact ran.                *)
(* ------------------------------------------------------------------ *)

let artefact_times = ref ([] : (string * float) list)

(* The engine_vs_naive list must never be empty — CI diffs it, and an
   invocation that skipped the [engine] artefact (e.g. [bench server])
   used to drop an empty list.  One small dekker point keeps the
   document well-formed and the comparison live. *)
let fallback_engine_row () =
  let w = workload "dekker" { Registry.default_params with attempts = 5 } in
  let config = E.Exp_run.t_config Config.default in
  let engine_r, engine_s = timed (fun () -> Machine.run config w.W.Workload.program) in
  let naive_r, naive_s =
    timed (fun () -> Machine.run_reference config w.W.Workload.program)
  in
  if strip_spin engine_r <> strip_spin naive_r then
    failwith "engine/naive mismatch on the fallback dekker row";
  {
    er_workload = "dekker";
    er_config = "T-fallback";
    er_cycles = engine_r.Machine.cycles;
    er_engine_s = engine_s;
    er_naive_s = naive_s;
    er_spin_skipped = engine_r.Machine.spin.Machine.cycles_skipped;
    er_spin_sleeps = engine_r.Machine.spin.Machine.sleeps;
  }

let write_bench_json ~quick ~jobs path =
  if !engine_rows = [] then engine_rows := [ fallback_engine_row () ];
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fence-scoping/bench-engine/v4\",\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"shard_domains\": %d,\n" (E.Exp_run.shard_domains ());
  add "  \"artefacts\": [";
  List.iteri
    (fun i (name, s) ->
      add "%s\n    {\"name\": %S, \"seconds\": %.3f%s}"
        (if i = 0 then "" else ",")
        name s
        (if List.mem name !skipped_artefacts then ", \"skipped\": true" else ""))
    (List.rev !artefact_times);
  add "\n  ],\n";
  add "  \"engine_vs_naive\": [";
  List.iteri
    (fun i r ->
      add
        "%s\n    {\"workload\": %S, \"config\": %S, \"sim_cycles\": %d, \
         \"engine_seconds\": %.3f, \"naive_seconds\": %.3f, \"speedup\": %.2f, \
         \"engine_cycles_per_sec\": %.0f, \"naive_cycles_per_sec\": %.0f, \
         \"spin_cycles_skipped\": %d, \"spin_sleeps\": %d}"
        (if i = 0 then "" else ",")
        r.er_workload r.er_config r.er_cycles r.er_engine_s r.er_naive_s
        (r.er_naive_s /. r.er_engine_s)
        (float_of_int r.er_cycles /. r.er_engine_s)
        (float_of_int r.er_cycles /. r.er_naive_s)
        r.er_spin_skipped r.er_spin_sleeps)
    !engine_rows;
  add "\n  ]";
  (match !jobs_scaling_row with
  | None -> ()
  | Some js ->
    add ",\n";
    add
      "  \"jobs_scaling\": {\"cpus\": %d, \"points\": %d, \"jobs\": %d, \
       \"seq_seconds\": %.3f, \"par_seconds\": %.3f, \"speedup\": %.2f}"
      js.js_cpus js.js_points js.js_jobs js.js_seq_s js.js_par_s
      (js.js_seq_s /. js.js_par_s));
  (match !shard_scaling_row with
  | None -> ()
  | Some ss ->
    add ",\n";
    add
      "  \"shard_scaling\": {\"cpus\": %d, \"cores\": %d, \"shards\": %d, \
       \"seq_seconds\": %.3f, \"shard_seconds\": %.3f, \"shard_speedup\": %.2f, \
       \"barriers_total\": %d, \"elided_cycles\": %d, \"bit_identical\": true}"
      ss.ss_cpus ss.ss_cores ss.ss_shards ss.ss_seq_s ss.ss_shard_s
      (ss.ss_seq_s /. ss.ss_shard_s)
      ss.ss_barriers ss.ss_elided);
  (match !sharded_sampled_row with
  | None -> ()
  | Some hs ->
    add ",\n";
    add
      "  \"sharded_sampled\": {\"cpus\": %d, \"cores\": %d, \"shards\": %d, \
       \"seq_seconds\": %.3f, \"shard_seconds\": %.3f, \"shard_speedup\": %.2f, \
       \"barriers_total\": %d, \"measured_windows\": %d, \"wallclock_gated\": %b, \
       \"bit_identical\": true}"
      hs.hs_cpus hs.hs_cores hs.hs_shards hs.hs_seq_s hs.hs_shard_s
      (hs.hs_seq_s /. hs.hs_shard_s)
      hs.hs_barriers hs.hs_windows hs.hs_gated);
  (match !sampled_cmp_row with
  | None -> ()
  | Some sm ->
    add ",\n";
    add
      "  \"sampled_sim\": {\"workload\": %S, \"detailed_cycles\": %d, \
       \"sampled_cycles\": %d, \"cycles_err_pct\": %.2f, \"fence_err_pp\": %.2f, \
       \"detailed_seconds\": %.3f, \"sampled_seconds\": %.3f, \"speedup\": %.2f}"
      sm.sm_workload sm.sm_detailed_cycles sm.sm_sampled_cycles sm.sm_cycles_err_pct
      sm.sm_fence_err_pp sm.sm_detailed_s sm.sm_sampled_s sm.sm_speedup);
  (match !engine_rows with
  | [] -> add "\n"
  | rows ->
    let tot f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
    let e = tot (fun r -> r.er_engine_s) and nv = tot (fun r -> r.er_naive_s) in
    add ",\n";
    add "  \"engine_total_seconds\": %.3f,\n" e;
    add "  \"naive_total_seconds\": %.3f,\n" nv;
    add "  \"overall_speedup\": %.2f\n" (nv /. e));
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "wrote %s" path

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock cost of regenerating each artefact, measured
   on reduced-size runs so sampling stays tractable.                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let staged f = Staged.stage f in
  [
    Test.make ~name:"table3" (staged (fun () -> ignore (E.Tables.table3 Config.default)));
    Test.make ~name:"table4" (staged (fun () -> ignore (E.Tables.table4 ())));
    Test.make ~name:"hw-cost"
      (staged (fun () -> ignore (E.Tables.hardware_cost_bits Config.default)));
    Test.make ~name:"fig12-cell"
      (staged (fun () ->
           let w =
             workload "dekker"
               { Registry.default_params with
                 level = Fscope_workloads.Privwork.fig12_levels.(0);
                 attempts = 5 }
           in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig13-cell"
      (staged (fun () ->
           let w = workload "radiosity" { Registry.default_params with size = Some 32 } in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig14-cell"
      (staged (fun () ->
           let w =
             workload "harris"
               { Registry.default_params with
                 scope = `Set;
                 level = Fscope_workloads.Privwork.fig12_levels.(0) }
           in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
    Test.make ~name:"fig15-cell"
      (staged (fun () ->
           let w = workload "barnes" { Registry.default_params with size = Some 64 } in
           let c = Config.with_mem_latency 200 Config.default in
           ignore (E.Exp_run.measure (E.Exp_run.s_config c) w)));
    Test.make ~name:"fig16-cell"
      (staged (fun () ->
           let w = workload "barnes" { Registry.default_params with size = Some 64 } in
           let c = Config.with_rob_size 64 Config.default in
           ignore (E.Exp_run.measure (E.Exp_run.s_config c) w)));
    Test.make ~name:"ablate-cell"
      (staged (fun () ->
           let w = workload "nested-scopes" { Registry.default_params with rounds = Some 8 } in
           ignore (E.Exp_run.measure (E.Exp_run.s_config Config.default) w)));
  ]

let run_bechamel () =
  let open Bechamel in
  let tests = Test.make_grouped ~name:"bench" (bechamel_tests ()) in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> say "%-40s %12.3f ms/run" name (est /. 1e6)
      | Some _ | None -> say "%-40s (no estimate)" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let artefacts ~quick =
  [
    ("table3", run_table3);
    ("table4", run_table4);
    ("cost", run_cost);
    ("fig12", run_fig12 ~quick);
    ("fig13", run_fig13 ~quick);
    ("fig14", run_fig14 ~quick);
    ("fig15", run_fig15 ~quick);
    ("fig16", run_fig16 ~quick);
    ("ablate", run_ablate ~quick);
    ("engine", run_engine ~quick);
    ("profile", run_profile ~quick);
    ("server", run_server ~quick);
    ("sampled", run_sampled_sim ~quick);
    ("jobs-scaling", run_jobs_scaling ~quick);
    ("shard-scaling", run_shard_scaling ~quick);
    ("sharded-sampled", run_sharded_sampled ~quick);
  ]

let run_artefact (name, f) =
  let (), s = timed f in
  artefact_times := (name, s) :: !artefact_times

(* "quick", "--jobs N" / "--jobs=N" and "--shard-domains N" /
   "--shard-domains=N" are modifiers; everything else names an
   artefact. *)
let parse_args args =
  let prefixed prefix arg =
    let pl = String.length prefix in
    if String.length arg > pl && String.sub arg 0 pl = prefix then
      Some (String.sub arg pl (String.length arg - pl))
    else None
  in
  let rec go quick jobs shards wanted = function
    | [] -> (quick, jobs, shards, List.rev wanted)
    | "quick" :: rest -> go true jobs shards wanted rest
    | "--jobs" :: n :: rest -> go quick (int_of_string n) shards wanted rest
    | "--shard-domains" :: n :: rest -> go quick jobs (int_of_string n) wanted rest
    | arg :: rest -> (
      match prefixed "--jobs=" arg with
      | Some n -> go quick (int_of_string n) shards wanted rest
      | None -> (
        match prefixed "--shard-domains=" arg with
        | Some n -> go quick jobs (int_of_string n) wanted rest
        | None -> go quick jobs shards (arg :: wanted) rest))
  in
  go false 1 1 [] args

let () =
  let quick, jobs, shards, wanted = parse_args (Array.to_list Sys.argv |> List.tl) in
  E.Exp_run.set_jobs jobs;
  E.Exp_run.set_shard_domains shards;
  match wanted with
  | [ "bechamel" ] -> run_bechamel ()
  | [] ->
    List.iter
      (fun (name, f) ->
        say "";
        say "### %s" name;
        run_artefact (name, f))
      (artefacts ~quick);
    write_bench_json ~quick ~jobs "BENCH_engine.json";
    if !profile_inputs <> [] then write_profile_json ~quick "BENCH_profile.json";
    if !server_rows <> [] then write_server_json ~quick ~jobs "BENCH_server.json"
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name (artefacts ~quick) with
        | Some f -> run_artefact (name, f)
        | None ->
          say "unknown artefact %s (have: %s, bechamel)" name
            (String.concat ", " (List.map fst (artefacts ~quick))))
      names;
    write_bench_json ~quick ~jobs "BENCH_engine.json";
    if !profile_inputs <> [] then write_profile_json ~quick "BENCH_profile.json";
    if !server_rows <> [] then write_server_json ~quick ~jobs "BENCH_server.json"
