(* The cycle-accounting layer: the leaves-sum-to-active-cycles
   invariant across machine configurations, the no-fence ablation,
   spin-candidate detection on a hand-built spin loop, and the profile
   renderers (every static fence site named, sum check present,
   profiling timing-neutral). *)

module Obs = Fscope_obs
module W = Fscope_workloads
module Registry = Fscope_workloads.Registry
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module E = Fscope_experiments
module Instr = Fscope_isa.Instr
module Asm = Fscope_isa.Asm
module Program = Fscope_isa.Program
module Reg = Fscope_isa.Reg

let level1 = W.Privwork.fig12_levels.(0)

let small name =
  E.Exp_run.workload
    ~params:{ Registry.default_params with level = level1; attempts = 3; size = Some 16 }
    name

let configs =
  [
    ("S", E.Exp_run.s_config Config.default);
    ("T", E.Exp_run.t_config Config.default);
    ("S+", E.Exp_run.s_plus Config.default);
    ("T+", E.Exp_run.t_plus Config.default);
    ("NF", E.Exp_run.nf_config Config.default);
  ]

(* ------------------------------------------------------------------ *)
(* Invariant: per core, the CPI leaves sum exactly to the
   independently-counted active cycles, under every configuration.     *)
(* ------------------------------------------------------------------ *)

let test_cpi_sums_to_active () =
  List.iter
    (fun wname ->
      let w = small wname in
      List.iter
        (fun (cname, config) ->
          let r = Machine.run config w.W.Workload.program in
          Array.iteri
            (fun i cpi ->
              let active = r.Machine.core_stats.(i).Fscope_cpu.Core.active_cycles in
              Alcotest.(check int)
                (Printf.sprintf "%s [%s] core %d: leaves sum = active cycles" wname cname i)
                active (Obs.Cpi.total cpi))
            r.Machine.core_cpi)
        configs)
    [ "dekker"; "msn"; "barnes" ]

(* The no-fence ablation retires fences as nops: no cycle can be
   charged to any fence-wait leaf, yet everything else still adds up. *)
let test_no_fence_zero_fence_leaves () =
  let w = small "dekker" in
  let r = Machine.run (E.Exp_run.nf_config Config.default) w.W.Workload.program in
  Array.iteri
    (fun i cpi ->
      Alcotest.(check int)
        (Printf.sprintf "core %d: no fence-wait cycles under no-fence" i)
        0 (Obs.Cpi.fence_cycles cpi);
      (* fences still commit — they are nops, not removed *)
      Alcotest.(check bool)
        (Printf.sprintf "core %d: fences still commit" i)
        true
        (r.Machine.core_stats.(i).Fscope_cpu.Core.committed_fences > 0))
    r.Machine.core_cpi

(* ------------------------------------------------------------------ *)
(* Spin detection: a hand-built load/branch-back wait loop with the
   producing store delayed behind memory latency must charge
   Spin_candidate cycles and count iterations at the loop's pc.        *)
(* ------------------------------------------------------------------ *)

let spin_program () =
  let r1 = Reg.r 1 and r2 = Reg.r 2 in
  (* thread 0: a four-deep dependent pointer chase (each hop a cold
     miss, so ~4 memory latencies back to back), then publish
     flag := 1.  The chase keeps the waiter spinning long after its
     own first cold miss on the flag resolves. *)
  let t0 = Asm.create () in
  Asm.emit t0 (Instr.Li (r2, 64));
  for _ = 1 to 4 do
    Asm.emit t0 (Instr.Load { dst = r2; base = r2; off = 0; flagged = false })
  done;
  Asm.emit t0 (Instr.Li (r1, 1));
  Asm.emit t0 (Instr.Store { src = r1; base = Reg.zero; off = 0; flagged = false });
  Asm.emit t0 Instr.Halt;
  (* thread 1: while (mem[0] = 0) loop *)
  let t1 = Asm.create () in
  let loop = Asm.fresh_label t1 in
  Asm.place t1 loop;
  Asm.emit t1 (Instr.Load { dst = r1; base = Reg.zero; off = 0; flagged = false });
  Asm.branch t1 Instr.Eqz r1 loop;
  Asm.emit t1 Instr.Halt;
  Program.make
    ~threads:[ Asm.finish t0; Asm.finish t1 ]
    ~mem_words:512
    ~init:[ (64, 128); (128, 192); (192, 256) ]
    ()

let test_spin_detection () =
  let program = spin_program () in
  let trace = Obs.Trace.create ~ring_capacity:1024 ~cores:2 () in
  let r = Machine.run ~obs:trace (E.Exp_run.t_config Config.default) program in
  Alcotest.(check bool) "finished" false r.Machine.timed_out;
  Alcotest.(check bool) "spin cycles charged on the waiter" true
    (Obs.Cpi.get r.Machine.core_cpi.(1) Obs.Cpi.Spin_candidate > 0);
  Alcotest.(check int) "no spin cycles on the publisher" 0
    (Obs.Cpi.get r.Machine.core_cpi.(0) Obs.Cpi.Spin_candidate);
  (* the static backward edge is found, and the traced counter at that
     pc saw iterations *)
  (match E.Profiling.spin_pcs program with
  | [ (1, pc) ] ->
    let report = Option.get r.Machine.obs in
    let iters =
      Obs.Metrics.find_counter report.Obs.Report.metrics
        (Printf.sprintf "core1/spin/pc%d" pc)
    in
    Alcotest.(check bool) "iterations counted at the loop pc" true
      (match iters with Some n -> n > 1 | None -> false)
  | sites ->
    Alcotest.failf "expected exactly the waiter's backward edge, got %d sites"
      (List.length sites))

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_profile_text_names_sites () =
  let w = small "dekker" in
  let input = E.Profiling.profile (E.Exp_run.s_config Config.default) w in
  let text = Obs.Profile.text input in
  Alcotest.(check bool) "sum check line" true
    (contains ~needle:"(= active cycles: ok)" text);
  let sites = E.Profiling.fence_sites w.W.Workload.program in
  Alcotest.(check bool) "program has static fence sites" true (sites <> []);
  List.iter
    (fun (s : Obs.Profile.fence_site) ->
      Alcotest.(check bool)
        (Printf.sprintf "site core %d pc %d named" s.Obs.Profile.core s.Obs.Profile.pc)
        true
        (contains ~needle:(Printf.sprintf "  %-4d %-5d" s.Obs.Profile.core s.Obs.Profile.pc) text))
    sites;
  List.iter
    (fun leaf ->
      Alcotest.(check bool)
        (Printf.sprintf "leaf %s listed" (Obs.Cpi.name leaf))
        true
        (contains ~needle:(Obs.Cpi.name leaf) text))
    Obs.Cpi.leaves

let test_profile_json_shape () =
  let w = small "dekker" in
  let input = E.Profiling.profile (E.Exp_run.s_config Config.default) w in
  let json = Obs.Profile.json input in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle json))
    [
      "\"schema\":\"fence-scoping/profile/v1\"";
      "\"label\":\"dekker\"";
      "\"config\":\"sfence\"";
      "\"cpi_sums_to_active\":true";
      "\"fence_sites\":[{";
      "\"spin_sites\":";
    ]

(* Profiling is observational: the traced, profiled run's cycle count
   is bit-identical to a plain run under the same config. *)
let test_profile_timing_neutral () =
  let w = small "msn" in
  List.iter
    (fun (cname, config) ->
      let plain = Machine.run config w.W.Workload.program in
      let input = E.Profiling.profile config w in
      Alcotest.(check int)
        (Printf.sprintf "[%s] profiled cycles = plain cycles" cname)
        plain.Machine.cycles input.Obs.Profile.cycles)
    configs

(* A 64-core run has 2-digit core ids and 5-digit pcs: every data row
   of a rendered table must stay as wide as its neighbours — the
   original fixed-width renderer silently overflowed its columns. *)
let test_text_columns_survive_64_cores () =
  let w = W.Mpmc.make ~threads:64 ~per_producer:4 ~scope:`Class () in
  let config = Config.with_max_cycles 100_000 (E.Exp_run.s_config Config.default) in
  let input = E.Profiling.profile config w in
  let lines = String.split_on_char '\n' (Obs.Profile.text input) in
  (* fence-site rows: everything between the "fence sites:" header and
     the next blank line, header row included *)
  let rec section acc = function
    | [] -> List.rev acc
    | l :: rest ->
      if l = "" then List.rev acc else section (l :: acc) rest
  in
  let after marker =
    let rec go = function
      | [] -> Alcotest.fail (Printf.sprintf "no %S section" marker)
      | l :: rest -> if l = marker then rest else go rest
    in
    go lines
  in
  let check_equal_widths what rows =
    match rows with
    | [] -> Alcotest.fail (what ^ ": empty section")
    | first :: _ ->
      List.iter
        (fun row ->
          Alcotest.(check int)
            (Printf.sprintf "%s row widths equal (%s)" what (String.trim row))
            (String.length first) (String.length row))
        rows
  in
  check_equal_widths "fence sites" (section [] (after "fence sites:"));
  (* per-core lines must align too: same "core <id>" prefix width *)
  let core_rows =
    List.filter
      (fun l ->
        String.length l > 7
        && String.sub l 0 7 = "  core "
        && (match l.[7] with '0' .. '9' -> true | _ -> false))
      lines
  in
  Alcotest.(check int) "64 per-core rows" 64 (List.length core_rows);
  check_equal_widths "per-core sums" core_rows

let tests =
  [
    Alcotest.test_case "CPI leaves sum to active cycles" `Quick test_cpi_sums_to_active;
    Alcotest.test_case "no-fence: zero fence leaves" `Quick test_no_fence_zero_fence_leaves;
    Alcotest.test_case "spin loop charges Spin_candidate" `Quick test_spin_detection;
    Alcotest.test_case "profile text names every fence site" `Quick
      test_profile_text_names_sites;
    Alcotest.test_case "profile json shape" `Quick test_profile_json_shape;
    Alcotest.test_case "profiling is timing-neutral" `Quick test_profile_timing_neutral;
    Alcotest.test_case "text columns survive 64 cores" `Slow
      test_text_columns_survive_64_cores;
  ]
