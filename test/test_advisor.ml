(* Advisor tests: the predicted per-workload speedup ordering must
   match the paper's measured ordering across the eight paper
   workloads, and the ranked advice must be bit-identical for any
   --jobs and --shard-domains setting.

   The ordering check runs the quick bench sizes under a 100k-cycle
   cap (the committed BENCH_profile baseline's shape) with spin
   fast-forward off — the optimisation is timing-neutral, so
   predictions are unchanged, but each profile then costs one traced
   run instead of two.  harris is profiled at contention level 1, its
   calibrated peak (EXPERIMENTS.md) and the level its paper number
   quotes. *)

module E = Fscope_experiments
module Obs = Fscope_obs
module W = Fscope_workloads
module Registry = W.Registry
module Config = Fscope_machine.Config

let base_config = Config.v ~spin_fastforward:false ~max_cycles:100_000 ()

let quick ?level ?attempts ?size name =
  let p = Registry.default_params in
  E.Exp_run.workload
    ~params:
      {
        p with
        size;
        attempts = Option.value attempts ~default:p.Registry.attempts;
        level =
          (match level with
          | Some l -> W.Privwork.fig12_levels.(l - 1)
          | None -> p.Registry.level);
      }
    name

(* The eight paper workloads at the quick bench sizes. *)
let paper_apps () =
  [
    quick "dekker" ~attempts:10;
    quick "wsq";
    quick "msn" ~size:8;
    quick "harris" ~size:4 ~level:1;
    quick "pst" ~size:256;
    quick "ptc" ~size:128;
    quick "barnes" ~size:64;
    quick "radiosity" ~size:64;
  ]

let predict w =
  let t_input, s_input = E.Profiling.advise_inputs base_config w in
  Obs.Advisor.predicted_speedup ~scoped:s_input t_input

let test_paper_ordering () =
  let predicted =
    List.map (fun w -> (w.W.Workload.name, predict w)) (paper_apps ())
  in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s prediction sane (%.3f)" name s)
        true
        (s >= 1.0 && s < 3.0))
    predicted;
  let violations =
    Obs.Advisor.ordering_violations ~min_gap:0.08 predicted Obs.Advisor.paper_speedups
  in
  Alcotest.(check (list (pair string string)))
    "predicted ordering matches the paper's measured ordering" [] violations

let test_paper_speedups_shape () =
  let s = Obs.Advisor.paper_speedups in
  Alcotest.(check int) "eight paper workloads" 8 (List.length s);
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "calibrated speedups are descending" true (descending s);
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s resolvable in the registry" name)
        true
        (Registry.all |> List.exists (fun (sp : Registry.spec) -> sp.name = name)))
    s

(* The ranked advice — rendered to its canonical JSON — must be
   byte-identical across job fan-out and engine sharding. *)
let test_determinism_across_jobs_and_shards () =
  let advise ~jobs ~shards =
    let saved = E.Exp_run.jobs () in
    E.Exp_run.set_jobs jobs;
    let config = Config.with_shard_domains shards base_config in
    let t_input, s_input = E.Profiling.advise_inputs config (quick "dekker" ~attempts:10) in
    E.Exp_run.set_jobs saved;
    Obs.Advisor.json (Obs.Advisor.analyze ~scoped:s_input t_input)
  in
  let reference = advise ~jobs:1 ~shards:1 in
  List.iter
    (fun (jobs, shards) ->
      Alcotest.(check string)
        (Printf.sprintf "advice identical at --jobs %d --shard-domains %d" jobs shards)
        reference
        (advise ~jobs ~shards))
    [ (4, 1); (1, 2); (4, 2) ]

let test_ordering_violations_rule () =
  let a = [ ("x", 1.30); ("y", 1.20); ("z", 1.00) ] in
  (* agreement *)
  Alcotest.(check (list (pair string string)))
    "identical lists agree" []
    (Obs.Advisor.ordering_violations ~min_gap:0.05 a a);
  (* disagreement past the gap on both sides *)
  let b = [ ("z", 1.30); ("y", 1.20); ("x", 1.00) ] in
  Alcotest.(check bool)
    "clear inversion is reported" true
    (Obs.Advisor.ordering_violations ~min_gap:0.05 a b <> []);
  (* near-tie on one side is not a violation *)
  let c = [ ("y", 1.23); ("x", 1.20); ("z", 1.00) ] in
  Alcotest.(check (list (pair string string)))
    "near-tie counts as agreement" []
    (Obs.Advisor.ordering_violations ~min_gap:0.05 a c)

let test_analyze_requires_metrics () =
  let w = quick "dekker" ~attempts:10 in
  let input = E.Profiling.profile base_config w in
  let untraced = { input with Obs.Profile.metrics = None } in
  Alcotest.check_raises "untraced input rejected"
    (Failure "advisor: needs a traced profile (no metrics registry)")
    (fun () -> ignore (Obs.Advisor.analyze untraced))

let tests =
  [
    Alcotest.test_case "paper speedup table shape" `Quick test_paper_speedups_shape;
    Alcotest.test_case "ordering-violations rule" `Quick test_ordering_violations_rule;
    Alcotest.test_case "analyze requires metrics" `Quick test_analyze_requires_metrics;
    Alcotest.test_case "deterministic across jobs/shards" `Slow
      test_determinism_across_jobs_and_shards;
    Alcotest.test_case "paper ordering reproduced" `Slow test_paper_ordering;
  ]
