let () =
  Alcotest.run "fence_scoping"
    [
      ("util", Test_util.tests);
      ("isa", Test_isa.tests);
      ("bitset", Test_bitset.tests);
      ("cache", Test_cache.tests);
      ("hierarchy", Test_hierarchy.tests);
      ("cpu", Test_cpu.tests);
      ("scope_unit", Test_scope_unit.tests);
      ("scope_semantics", Test_scope_semantics.tests);
      ("sim", Test_sim.tests);
      ("slang", Test_slang.tests);
      ("workloads", Test_workloads.tests);
      ("obs", Test_obs.tests);
      ("profile", Test_profile.tests);
      ("differential", Test_differential.tests);
      ("engine", Test_engine.tests);
      ("sampling", Test_sampling.tests);
      ("server", Test_server.tests);
      ("advisor", Test_advisor.tests);
      ("trend", Test_trend.tests);
    ]
