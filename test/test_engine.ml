(* Engine-level end-to-end properties:

   - the domain-parallel experiment runner must not change any
     rendered artefact: fig12/fig13 tables are byte-identical whether
     the points run sequentially or fanned across 4 domains;
   - a traced fast-forward run must match a traced reference run
     event-for-event and metric-for-metric, not just in its result
     record (the engine skips frozen spans, so this pins down that no
     observable is emitted or timed differently across a jump). *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Table = Fscope_util.Table
module Obs = Fscope_obs
module Registry = Fscope_workloads.Registry
module E = Fscope_experiments

let with_jobs n f =
  E.Exp_run.set_jobs n;
  Fun.protect ~finally:(fun () -> E.Exp_run.set_jobs 1) f

let render_fig12 () = Table.render (E.Fig12.table (E.Fig12.run ~quick:true ()))
let render_fig13 () = Table.render (E.Fig13.table (E.Fig13.run ~quick:true ()))

let test_jobs_identical name render () =
  let seq = with_jobs 1 render in
  let par = with_jobs 4 render in
  Alcotest.(check string) (name ^ ": --jobs 1 and --jobs 4 render identically") seq par

let traced_run config program runner =
  let cores = Fscope_isa.Program.thread_count program in
  let trace = Obs.Trace.create ~ring_capacity:65536 ~cores () in
  let result = runner ~obs:trace config program in
  match result.Machine.obs with
  | Some report -> (result, report)
  | None -> Alcotest.fail "traced run produced no report"

(* The shard/ metric family counts lockstep traffic of the host
   execution (barrier generations crossed, cycles run inside elided
   spans) — a sequential reference run crosses no barriers, so these
   are the one family allowed to differ between the engines under
   comparison.  trend.ml classes them Gate_never for the same
   reason.  Every other line must match byte for byte. *)
let strip_shard_metrics s =
  let keeps line =
    let has needle =
      let nl = String.length needle and ll = String.length line in
      let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
      go 0
    in
    not (has "shard/barriers_total" || has "shard/elided_cycles")
  in
  String.concat "\n" (List.filter keeps (String.split_on_char '\n' s))

let check_traced_matches_reference ~label config program =
  let engine_r, engine_rep =
    traced_run config program (fun ~obs c p -> Machine.run ~obs c p)
  in
  let ref_r, ref_rep =
    traced_run config program (fun ~obs c p -> Machine.run_reference ~obs c p)
  in
  Alcotest.(check int) (label ^ ": cycles") ref_r.Machine.cycles engine_r.Machine.cycles;
  Alcotest.(check int)
    (label ^ ": events")
    (Obs.Report.events_count ref_rep)
    (Obs.Report.events_count engine_rep);
  Alcotest.(check string)
    (label ^ ": event stream (jsonl)")
    (strip_shard_metrics (Obs.Sink.jsonl ref_rep))
    (strip_shard_metrics (Obs.Sink.jsonl engine_rep));
  Alcotest.(check string)
    (label ^ ": metrics summary")
    (strip_shard_metrics (Obs.Sink.summary ref_rep))
    (strip_shard_metrics (Obs.Sink.summary engine_rep))

let test_traced_identical () =
  let w = E.Exp_run.workload ~params:{ Registry.default_params with rounds = Some 4 } "wsq" in
  let program = w.Fscope_workloads.Workload.program in
  let config = E.Exp_run.s_config Config.default in
  check_traced_matches_reference ~label:"seq" config program

(* The sharded engine must be invisible to the observability layer
   too: with the machine's cores split across domains, a traced run
   still produces the same event stream and metrics as the traced
   sequential reference — wakes, drains and fence stalls land on the
   same cycles in the same order. *)
let test_sharded_traced_identical () =
  let w = E.Exp_run.workload ~params:{ Registry.default_params with rounds = Some 4 } "wsq" in
  let program = w.Fscope_workloads.Workload.program in
  List.iter
    (fun shards ->
      let config =
        Config.with_shard_domains shards (E.Exp_run.s_config Config.default)
      in
      check_traced_matches_reference
        ~label:(Printf.sprintf "%d shards" shards)
        config program)
    [ 2; 4 ]

(* Spin fast-forward regression: a two-core flag handshake.  Core 0
   counts down a few thousand iterations (a counting loop whose ARF
   changes every boundary — the stability probe must refuse to arm it),
   then publishes a value and raises a flag; core 1 spins on the flag.
   The engine must actually put the spinner into spin-sleep and replay
   the skipped iterations in closed form (the exposed
   [spin.cycles_skipped] engine stat is positive), while every other
   result field stays bit-identical to the naive reference loop, with
   the optimisation on or off. *)
let test_spin_fastforward () =
  let open Fscope_isa in
  let r n = Reg.r n in
  let worker =
    [|
      Instr.Li (r 1, 4000);
      Instr.Alu (Instr.Sub, r 1, r 1, Instr.Imm 1);
      Instr.Branch { cond = Instr.Nez; src = r 1; target = 1 };
      Instr.Li (r 2, 42);
      Instr.Store { src = r 2; base = Reg.zero; off = 1; flagged = false };
      Instr.Li (r 3, 1);
      Instr.Store { src = r 3; base = Reg.zero; off = 0; flagged = false };
      Instr.Halt;
    |]
  in
  let spinner =
    [|
      Instr.Load { dst = r 1; base = Reg.zero; off = 0; flagged = false };
      Instr.Branch { cond = Instr.Eqz; src = r 1; target = 0 };
      Instr.Load { dst = r 2; base = Reg.zero; off = 1; flagged = false };
      Instr.Store { src = r 2; base = Reg.zero; off = 2; flagged = false };
      Instr.Halt;
    |]
  in
  let program = Program.make ~threads:[ worker; spinner ] ~mem_words:8 () in
  let strip (res : Machine.result) =
    {
      res with
      Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
      shard = Machine.no_shard_ctrs;
    }
  in
  let config = Config.default in
  let ff_on = Machine.run config program in
  let ff_off = Machine.run (Config.with_spin_fastforward false config) program in
  let reference = Machine.run_reference config program in
  Alcotest.(check bool) "FF on == reference (up to spin counters)" true
    (strip ff_on = strip reference);
  Alcotest.(check bool) "FF off == reference" true (strip ff_off = strip reference);
  Alcotest.(check int) "handshake value arrived" 42 ff_on.Machine.mem.(2);
  Alcotest.(check bool) "spinner was put to sleep" true (ff_on.Machine.spin.Machine.sleeps > 0);
  Alcotest.(check bool) "engine stats expose skipped cycles" true
    (ff_on.Machine.spin.Machine.cycles_skipped > 0);
  Alcotest.(check int) "FF off skipped nothing" 0 ff_off.Machine.spin.Machine.cycles_skipped

let tests =
  [
    Alcotest.test_case "fig12 parallel fan-out is deterministic" `Quick
      (test_jobs_identical "fig12" render_fig12);
    Alcotest.test_case "fig13 parallel fan-out is deterministic" `Quick
      (test_jobs_identical "fig13" render_fig13);
    Alcotest.test_case "traced engine run matches traced reference" `Quick
      test_traced_identical;
    Alcotest.test_case "traced sharded run matches traced reference" `Quick
      test_sharded_traced_identical;
    Alcotest.test_case "spin fast-forward sleeps and stays bit-identical" `Quick
      test_spin_fastforward;
  ]
