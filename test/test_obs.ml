(* The observability layer: event/metric invariants on real runs, the
   golden JSONL head for a tiny deterministic run, and the registry
   round-trip (every registered workload builds and validates at the
   smallest sizes). *)

module Obs = Fscope_obs
module W = Fscope_workloads
module Registry = Fscope_workloads.Registry
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine

let level1 = W.Privwork.fig12_levels.(0)

(* A traced run with rings large enough that nothing is dropped, so
   event-count invariants are exact. *)
let traced_run ?(config = Config.default) w =
  let cores = Fscope_isa.Program.thread_count w.W.Workload.program in
  let trace = Obs.Trace.create ~ring_capacity:(1 lsl 20) ~cores () in
  let result = Machine.run ~obs:trace config w.W.Workload.program in
  match result.Machine.obs with
  | Some report -> (result, report)
  | None -> Alcotest.fail "traced run produced no report"

let tiny_dekker () = W.Dekker.make ~level:level1 ~attempts:1

(* ------------------------------------------------------------------ *)
(* Metrics registry units                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a/b" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "value" 42 (Obs.Metrics.counter_value c);
  (* same name yields the same counter *)
  Obs.Metrics.incr (Obs.Metrics.counter m "a/b");
  Alcotest.(check int) "shared" 43 (Obs.Metrics.counter_value c)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 1; 3; 300 ];
  match List.assoc_opt "h" (Obs.Metrics.snapshot m) with
  | Some (Obs.Metrics.Histogram_v { count; sum; buckets }) ->
    Alcotest.(check int) "count" 5 count;
    Alcotest.(check int) "sum" 305 sum;
    (* keyed by bucket lower bound: 0; 1,1 -> [1,2); 3 -> [2,4);
       300 -> [256,512) *)
    Alcotest.(check (list (pair int int)))
      "buckets"
      [ (0, 1); (1, 2); (2, 1); (256, 1) ]
      buckets
  | _ -> Alcotest.fail "histogram snapshot missing"

let test_metrics_gauge () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "g" in
  List.iter (Obs.Metrics.gauge_observe g) [ 5; 2; 9 ];
  match List.assoc_opt "g" (Obs.Metrics.snapshot m) with
  | Some (Obs.Metrics.Gauge_v { count; sum; min; max; last }) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check int) "sum" 16 sum;
    Alcotest.(check int) "min" 2 min;
    Alcotest.(check int) "max" 9 max;
    Alcotest.(check int) "last" 9 last
  | _ -> Alcotest.fail "gauge snapshot missing"

let test_metrics_find () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) [ 1; 3 ];
  let g = Obs.Metrics.gauge m "g" in
  List.iter (Obs.Metrics.gauge_observe g) [ 7; 4 ];
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  (match Obs.Metrics.find_histogram m "h" with
  | Some { Obs.Metrics.count; sum; buckets } ->
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check int) "hist sum" 4 sum;
    Alcotest.(check (list (pair int int))) "hist buckets" [ (1, 1); (2, 1) ] buckets
  | None -> Alcotest.fail "find_histogram missed a registered histogram");
  (match Obs.Metrics.find_gauge m "g" with
  | Some { Obs.Metrics.count; sum; min; max; last } ->
    Alcotest.(check int) "gauge count" 2 count;
    Alcotest.(check int) "gauge sum" 11 sum;
    Alcotest.(check int) "gauge min" 4 min;
    Alcotest.(check int) "gauge max" 7 max;
    Alcotest.(check int) "gauge last" 4 last
  | None -> Alcotest.fail "find_gauge missed a registered gauge");
  (* misses: absent names and kind mismatches both return None *)
  Alcotest.(check bool) "absent hist" true (Obs.Metrics.find_histogram m "nope" = None);
  Alcotest.(check bool) "absent gauge" true (Obs.Metrics.find_gauge m "nope" = None);
  Alcotest.(check bool) "kind mismatch hist" true (Obs.Metrics.find_histogram m "c" = None);
  Alcotest.(check bool) "kind mismatch gauge" true (Obs.Metrics.find_gauge m "h" = None)

let test_ring_overwrite () =
  let r = Obs.Ring.create ~capacity:3 in
  List.iter (Obs.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 3 (Obs.Ring.length r);
  Alcotest.(check int) "dropped" 2 (Obs.Ring.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 3; 4; 5 ] (Obs.Ring.to_list r)

(* ------------------------------------------------------------------ *)
(* Run-level invariants                                                *)
(* ------------------------------------------------------------------ *)

let test_timing_neutral () =
  let w = tiny_dekker () in
  let untraced = Machine.run Config.default w.W.Workload.program in
  let traced, _ = traced_run w in
  Alcotest.(check int) "cycles" untraced.Machine.cycles traced.Machine.cycles;
  Alcotest.(check bool) "untraced carries no report" true (untraced.Machine.obs = None)

let test_fence_pairing () =
  let result, report = traced_run (tiny_dekker ()) in
  Alcotest.(check int) "nothing dropped" 0 report.Obs.Report.dropped;
  let begins = ref 0 and ends = ref 0 and stall_sum = ref 0 in
  List.iter
    (fun (e : Obs.Event.timed) ->
      match e.event with
      | Obs.Event.Fence_stall_begin _ -> incr begins
      | Obs.Event.Fence_stall_end { cycles; _ } ->
        incr ends;
        stall_sum := !stall_sum + cycles
      | _ -> ())
    report.Obs.Report.events;
  Alcotest.(check int) "begin/end paired" !begins !ends;
  Alcotest.(check int)
    "stall durations sum to the legacy counter"
    (Machine.fence_stall_cycles result)
    !stall_sum

let test_sb_insert_drain () =
  let _, report = traced_run (tiny_dekker ()) in
  let inserts = ref 0 and drains = ref 0 in
  List.iter
    (fun (e : Obs.Event.timed) ->
      match e.event with
      | Obs.Event.Sb_insert _ -> incr inserts
      | Obs.Event.Sb_drain _ -> incr drains
      | _ -> ())
    report.Obs.Report.events;
  Alcotest.(check bool) "stores happened" true (!inserts > 0);
  Alcotest.(check int) "every insert drains" !inserts !drains

let test_snapshot_matches_legacy () =
  let result, report = traced_run (tiny_dekker ()) in
  let counter = Obs.Report.counter report in
  Alcotest.(check int) "total/fence_stall_cycles"
    (Machine.fence_stall_cycles result)
    (counter "total/fence_stall_cycles");
  Alcotest.(check int) "total/active_cycles"
    (Machine.total_active_cycles result)
    (counter "total/active_cycles");
  Alcotest.(check int) "total/committed"
    (Machine.committed_instrs result)
    (counter "total/committed");
  Alcotest.(check int) "machine/cycles" result.Machine.cycles (counter "machine/cycles");
  Alcotest.(check int) "mem/l1_misses" result.Machine.cache.Fscope_mem.Hierarchy.l1_misses
    (counter "mem/l1_misses");
  Array.iteri
    (fun i (s : Fscope_cpu.Core.stats) ->
      Alcotest.(check int)
        (Printf.sprintf "core%d/committed" i)
        s.committed
        (counter (Printf.sprintf "core%d/committed" i)))
    result.Machine.core_stats

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let golden_jsonl_head =
  [
    {|{"trace":"fscope","cycles":6069,"cores":2,"events":11801,"dropped":0,"timed_out":false}|};
    {|{"cycle":0,"core":0,"event":"rob_dispatch","pc":0,"cls":"alu"}|};
    {|{"cycle":0,"core":0,"event":"rob_dispatch","pc":1,"cls":"alu"}|};
    {|{"cycle":0,"core":0,"event":"rob_dispatch","pc":2,"cls":"alu"}|};
    {|{"cycle":0,"core":0,"event":"rob_dispatch","pc":3,"cls":"alu"}|};
  ]

let test_jsonl_golden () =
  let _, report = traced_run (tiny_dekker ()) in
  let lines = String.split_on_char '\n' (Obs.Sink.jsonl report) in
  List.iteri
    (fun i golden ->
      Alcotest.(check string) (Printf.sprintf "line %d" i) golden (List.nth lines i))
    golden_jsonl_head

let test_chrome_shape () =
  let _, report = traced_run (tiny_dekker ()) in
  let s = Obs.Sink.chrome report in
  Alcotest.(check bool) "array open" true (String.length s > 2 && s.[0] = '[');
  Alcotest.(check bool) "array close" true (s.[String.length s - 2] = ']');
  let count needle =
    let n = String.length needle and acc = ref 0 in
    for i = 0 to String.length s - n do
      if String.sub s i n = needle then incr acc
    done;
    !acc
  in
  Alcotest.(check int) "B/E balanced" (count {|"ph":"B"|}) (count {|"ph":"E"|});
  Alcotest.(check bool) "has instants" true (count {|"ph":"i"|} > 0)

let test_summary_totals () =
  let result, report = traced_run (tiny_dekker ()) in
  let s = Obs.Sink.summary report in
  let expected =
    Printf.sprintf "total fence-stall cycles: %d" (Machine.fence_stall_cycles result)
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary quotes the exact legacy total" true (contains s expected)

(* ------------------------------------------------------------------ *)
(* Registry round-trip                                                 *)
(* ------------------------------------------------------------------ *)

let small_params name =
  let p =
    { Registry.default_params with level = level1; attempts = 4; rounds = Some 3 }
  in
  match name with
  | "msn" -> { p with size = Some 4 }
  | "pst" -> { p with size = Some 96 }
  | "ptc" -> { p with size = Some 48 }
  | "barnes" -> { p with size = Some 32 }
  | "radiosity" -> { p with size = Some 32 }
  | _ -> p

let test_registry_round_trip () =
  List.iter
    (fun (spec : Registry.spec) ->
      let w = W.Workload.build spec (small_params spec.name) in
      let result = W.Workload.run_validated Config.default w in
      Alcotest.(check bool)
        (Printf.sprintf "%s finished" spec.name)
        false result.Machine.timed_out)
    Registry.all

let test_registry_lookup () =
  Alcotest.(check bool) "find hit" true (Registry.find "wsq" <> None);
  Alcotest.(check bool) "find miss" true (Registry.find "nope" = None);
  Alcotest.(check string) "miss message"
    "unknown workload 'nope' (run 'fscope list' for the registry)"
    (Registry.unknown_message "nope");
  (* Close misses and substring matches get "did you mean". *)
  Alcotest.(check (list string)) "suggest close miss" [ "msn" ] (Registry.suggest "msm");
  Alcotest.(check bool) "suggest substring" true
    (List.mem "server-cache" (Registry.suggest "cache"));
  Alcotest.(check string) "near-miss message suggests"
    "unknown workload 'server-mpnc' — did you mean: server-mpmc?"
    (Registry.unknown_message "server-mpnc");
  (* The shared lookup helper composes find + unknown_message. *)
  Alcotest.check_raises "Exp_run.workload miss raises"
    (Failure "unknown workload 'nope' (run 'fscope list' for the registry)")
    (fun () -> ignore (Fscope_experiments.Exp_run.workload "nope"))

(* ------------------------------------------------------------------ *)
(* Drop warning and shard lanes                                        *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_summary_drop_warning () =
  let w = W.Dekker.make ~level:level1 ~attempts:8 in
  let cores = Fscope_isa.Program.thread_count w.W.Workload.program in
  (* A 4-event ring is guaranteed to overflow on any real run. *)
  let trace = Obs.Trace.create ~ring_capacity:4 ~cores () in
  let result = Machine.run ~obs:trace Config.default w.W.Workload.program in
  let report = Option.get result.Machine.obs in
  Alcotest.(check bool) "tiny ring drops" true (report.Obs.Report.dropped > 0);
  let s = Obs.Sink.summary report in
  Alcotest.(check bool) "summary warns about the drops" true
    (contains ~needle:"warning:" s && contains ~needle:"--ring-capacity" s);
  (* and a drop-free run stays warning-free *)
  let _, clean = traced_run w in
  Alcotest.(check bool) "clean run has no warning" false
    (contains ~needle:"warning:" (Obs.Sink.summary clean))

let test_chrome_shard_lanes () =
  let w = tiny_dekker () in
  let run config =
    let cores = Fscope_isa.Program.thread_count w.W.Workload.program in
    let trace = Obs.Trace.create ~ring_capacity:(1 lsl 20) ~cores () in
    let result = Machine.run ~obs:trace config w.W.Workload.program in
    Option.get result.Machine.obs
  in
  let plain = Obs.Sink.chrome (run Config.default) in
  Alcotest.(check bool) "one process at --shard-domains 1" true
    (contains ~needle:"{\"name\":\"fscope\"}" plain
    && not (contains ~needle:"shard" plain));
  let sharded = Obs.Sink.chrome (run (Config.with_shard_domains 2 Config.default)) in
  Alcotest.(check bool) "one process track per shard" true
    (contains ~needle:"{\"name\":\"fscope shard 0\"}" sharded
    && contains ~needle:"{\"name\":\"fscope shard 1\"}" sharded);
  (* dekker: core 0 -> shard 0, core 1 -> shard 1 *)
  Alcotest.(check bool) "cores land on their shard's pid" true
    (contains ~needle:"\"pid\":1,\"tid\":1,\"args\":{\"name\":\"core 1\"}" sharded);
  (* metadata aside, the two renderings describe the same events *)
  Alcotest.(check int) "same event count either way"
    (List.length (String.split_on_char '\n' plain))
    (List.length (String.split_on_char '\n' sharded) - 1)

(* Gauge samplers: a traced server run's drain stream must replay into
   non-empty occupancy histograms, deterministically. *)
let test_gauge_fold_deterministic () =
  List.iter
    (fun (name, build) ->
      let w : W.Workload.t = build () in
      let program = w.W.Workload.program in
      let g = Option.get (W.Gauges.for_workload ~name program) in
      let run () =
        let cores = Fscope_isa.Program.thread_count program in
        let trace =
          Obs.Trace.create ~ring_capacity:(1 lsl 16) ~keep:g.W.Gauges.keep ~cores ()
        in
        let _ = Machine.run ~obs:trace Config.default program in
        Alcotest.(check int) (name ^ " gauge trace undropped") 0
          (Obs.Trace.dropped trace);
        let m = Obs.Metrics.create () in
        g.W.Gauges.fold m (Obs.Trace.events trace);
        Obs.Metrics.snapshot m
      in
      let a = run () and b = run () in
      Alcotest.(check bool) (name ^ " gauge fold deterministic") true (a = b);
      match List.assoc_opt g.W.Gauges.hist a with
      | Some (Obs.Metrics.Histogram_v h) ->
        Alcotest.(check bool) (name ^ " gauge non-empty") true (h.Obs.Metrics.count > 0)
      | _ -> Alcotest.fail (name ^ ": aggregate gauge histogram missing"))
    [
      ("server-mpmc", fun () -> W.Mpmc.make ~threads:4 ~per_producer:4 ~scope:`Class ());
      ("server-steal", fun () -> W.Steal.make ~workers:4 ~requests:12 ~scope:`Class ());
      ( "server-cache",
        fun () -> W.Cache_server.make ~threads:4 ~per_thread:6 ~scope:`Class () );
    ]

let tests =
  [
    Alcotest.test_case "metrics counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics gauge" `Quick test_metrics_gauge;
    Alcotest.test_case "metrics find accessors" `Quick test_metrics_find;
    Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
    Alcotest.test_case "tracing is timing-neutral" `Quick test_timing_neutral;
    Alcotest.test_case "fence stalls pair and sum" `Quick test_fence_pairing;
    Alcotest.test_case "sb inserts drain" `Quick test_sb_insert_drain;
    Alcotest.test_case "snapshot matches legacy stats" `Quick test_snapshot_matches_legacy;
    Alcotest.test_case "jsonl golden head" `Quick test_jsonl_golden;
    Alcotest.test_case "chrome trace shape" `Quick test_chrome_shape;
    Alcotest.test_case "summary quotes legacy total" `Quick test_summary_totals;
    Alcotest.test_case "summary drop warning" `Quick test_summary_drop_warning;
    Alcotest.test_case "chrome shard lanes" `Quick test_chrome_shard_lanes;
    Alcotest.test_case "gauge fold deterministic" `Quick test_gauge_fold_deterministic;
    Alcotest.test_case "registry round-trip" `Slow test_registry_round_trip;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
  ]
