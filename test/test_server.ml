(* Server-suite tests: the traffic generator must be a pure function
   of its spec, the three server workloads must round-trip through the
   registry with engine/reference bit-identity, and server-mpmc's
   exactly-once dispatch must hold across randomized shapes, not just
   the bench points. *)

module W = Fscope_workloads
module Traffic = W.Traffic
module Registry = W.Registry
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine

(* -- traffic generator ------------------------------------------------- *)

let spec =
  { Traffic.default with seed = 7; clients = 4; requests = 40; key_skew = 2 }

let test_traffic_deterministic () =
  let a = Traffic.make spec and b = Traffic.make spec in
  Alcotest.(check int) "digest equal" (Traffic.digest a) (Traffic.digest b);
  Alcotest.(check bool) "arrays equal" true
    (a.Traffic.keys = b.Traffic.keys
    && a.Traffic.gaps = b.Traffic.gaps
    && a.Traffic.bursts = b.Traffic.bursts)

let test_traffic_seed_sensitive () =
  let a = Traffic.make spec in
  let b = Traffic.make { spec with Traffic.seed = 8 } in
  Alcotest.(check bool) "different seed, different trace" true
    (Traffic.digest a <> Traffic.digest b)

let test_traffic_conservation () =
  let t = Traffic.make spec in
  Alcotest.(check int) "total matches spec" spec.Traffic.requests (Traffic.total t);
  let per =
    List.init spec.Traffic.clients (Traffic.client_requests t)
  in
  Alcotest.(check int) "per-client counts sum" spec.Traffic.requests
    (List.fold_left ( + ) 0 per);
  List.iteri
    (fun c n ->
      Alcotest.(check int)
        (Printf.sprintf "client %d arrays sized" c)
        n
        (Array.length t.Traffic.keys.(c)))
    per

let test_traffic_skew_and_modes () =
  let sk =
    Traffic.make { spec with Traffic.spread = Traffic.Skewed; clients = 5 }
  in
  let max_count =
    List.fold_left max 0 (List.init 5 (Traffic.client_requests sk))
  in
  Alcotest.(check int) "skewed: client 0 carries the most" max_count
    (Traffic.client_requests sk 0);
  let closed = Traffic.make { spec with Traffic.mode = Traffic.Closed_loop } in
  Array.iter
    (Array.iter (fun g -> Alcotest.(check int) "closed loop has no gaps" 0 g))
    closed.Traffic.gaps

(* Degenerate shapes: a zero-request trace is an idle server (empty
   streams, still deterministic), a single client owns every request,
   and the skewed spread keeps its at-least-one-request-per-client
   floor. *)
let test_traffic_edge_cases () =
  let idle = Traffic.make { spec with Traffic.requests = 0 } in
  Alcotest.(check int) "0 requests: total" 0 (Traffic.total idle);
  List.iteri
    (fun c n -> Alcotest.(check int) (Printf.sprintf "0 requests: client %d" c) 0 n)
    (List.init spec.Traffic.clients (Traffic.client_requests idle));
  Alcotest.(check int) "0 requests: deterministic" (Traffic.digest idle)
    (Traffic.digest (Traffic.make { spec with Traffic.requests = 0 }));
  let solo = Traffic.make { spec with Traffic.clients = 1 } in
  Alcotest.(check int) "1 client: total" spec.Traffic.requests (Traffic.total solo);
  Alcotest.(check int) "1 client: owns every request" spec.Traffic.requests
    (Traffic.client_requests solo 0);
  Alcotest.(check int) "1 client: burst lengths conserve" spec.Traffic.requests
    (Array.fold_left ( + ) 0 solo.Traffic.bursts.(0));
  Alcotest.check_raises "skewed spread keeps the per-client floor"
    (Invalid_argument "Traffic.make: skewed spread needs at least one request per client")
    (fun () ->
      ignore
        (Traffic.make
           { spec with Traffic.spread = Traffic.Skewed; clients = 5; requests = 3 }))

(* -- registry round-trip: engine == reference, bit for bit ------------- *)

let strip_spin (r : Machine.result) =
  {
    r with
    Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
    shard = Machine.no_shard_ctrs;
  }

let small_params =
  { Registry.default_params with threads = Some 4; size = Some 4; seed = 3 }

let test_registry_roundtrip () =
  List.iter
    (fun name ->
      let w =
        match Registry.find name with
        | Some spec -> W.Workload.build spec small_params
        | None -> Alcotest.failf "workload %s missing from registry" name
      in
      let config = Config.v ~base:(Config.scoped Config.default) ~max_cycles:1000 () in
      let engine = Machine.run config w.W.Workload.program in
      let reference = Machine.run_reference config w.W.Workload.program in
      Alcotest.(check bool)
        (Printf.sprintf "%s: engine == reference at 1k cycles" name)
        true
        (strip_spin engine = strip_spin reference))
    [ "server-mpmc"; "server-cache"; "server-steal" ]

(* -- full runs validate under both machines ---------------------------- *)

let check_both name make =
  ignore (W.Workload.run_validated (Config.traditional Config.default) (make ()));
  ignore (W.Workload.run_validated (Config.scoped Config.default) (make ()));
  ignore name

let test_mpmc_validates () =
  check_both "server-mpmc" (fun () ->
      W.Mpmc.make ~threads:4 ~per_producer:6 ~mean_gap:60 ~scope:`Class ())

let test_mpmc_closed_loop () =
  check_both "server-mpmc/closed" (fun () ->
      W.Mpmc.make ~threads:4 ~per_producer:6 ~mode:Traffic.Closed_loop ~window:2
        ~scope:`Set ())

let test_cache_validates () =
  check_both "server-cache" (fun () ->
      W.Cache_server.make ~threads:4 ~per_thread:8 ~mean_gap:60 ~scope:`Set ())

let test_steal_validates () =
  check_both "server-steal" (fun () ->
      W.Steal.make ~workers:4 ~requests:20 ~mean_gap:60 ~scope:`Class ())

(* -- property: MPMC dispatch is exactly-once for arbitrary shapes ------ *)

let prop_mpmc_exactly_once =
  let open QCheck2.Gen in
  let gen =
    tup4 (int_range 2 6) (int_range 1 5) (int_range 1 1000) bool
  in
  QCheck2.Test.make ~count:30 ~name:"server-mpmc retires every request exactly once"
    ~print:(fun (t, p, s, closed) ->
      Printf.sprintf "threads=%d per_producer=%d seed=%d closed=%b" t p s closed)
    gen
    (fun (threads, per_producer, seed, closed) ->
      let mode = if closed then Traffic.Closed_loop else Traffic.Open_loop in
      let w =
        W.Mpmc.make ~threads ~per_producer ~seed ~mean_gap:40 ~mode ~window:3
          ~scope:`Class ()
      in
      let r = Machine.run (Config.scoped Config.default) w.W.Workload.program in
      match w.W.Workload.validate r with
      | Ok () -> true
      | Error msg ->
        QCheck2.Test.fail_report
          (Printf.sprintf "threads=%d per_producer=%d seed=%d closed=%b: %s"
             threads per_producer seed closed msg))

let tests =
  [
    Alcotest.test_case "traffic deterministic" `Quick test_traffic_deterministic;
    Alcotest.test_case "traffic seed-sensitive" `Quick test_traffic_seed_sensitive;
    Alcotest.test_case "traffic conservation" `Quick test_traffic_conservation;
    Alcotest.test_case "traffic skew and modes" `Quick test_traffic_skew_and_modes;
    Alcotest.test_case "traffic edge cases" `Quick test_traffic_edge_cases;
    Alcotest.test_case "registry round-trip engine==reference" `Quick
      test_registry_roundtrip;
    Alcotest.test_case "mpmc validates on T and S" `Quick test_mpmc_validates;
    Alcotest.test_case "mpmc closed loop validates" `Quick test_mpmc_closed_loop;
    Alcotest.test_case "cache validates on T and S" `Quick test_cache_validates;
    Alcotest.test_case "steal validates on T and S" `Quick test_steal_validates;
    QCheck_alcotest.to_alcotest prop_mpmc_exactly_once;
  ]
