(* Interval sampling (DESIGN §15).  The sampled engine must keep
   functional behaviour exact — workload validation passes, final
   memory is a legal execution — while estimating cycle-valued
   metrics.  The estimate error is bounded deterministically here on a
   small contended workload (same machine, same program, fixed
   schedule => fixed estimate), and again at bench scale by
   [bench/main.exe sampled] which writes the bound into
   BENCH_engine.json.  Note the sampled run is a DIFFERENT legal
   execution of a contended program (spin iteration counts change
   across the functional legs), so these tests bound errors instead of
   asserting counter identity. *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Checkpoint = Fscope_machine.Checkpoint
module Workload = Fscope_workloads.Workload
module Mpmc = Fscope_workloads.Mpmc

(* short windows so the tiny test workload alternates modes a few
   times instead of finishing inside the first detailed window *)
let schedule = { Config.warmup = 100; detailed = 500; ff_instrs = 1_000 }
let sampled config = Config.with_sampling (Some schedule) config
let mpmc () = Mpmc.make ~threads:8 ~per_producer:32 ~scope:`Class ()

(* cycle-estimate error bounds, mirroring the bench gate *)
let cycles_err_bound = 25.0 (* per cent *)
let fence_err_bound = 10.0 (* percentage points *)

let test_sampled_validates () =
  let r = Workload.run_validated (sampled Config.default) (mpmc ()) in
  Alcotest.(check bool) "not timed out" false r.Machine.timed_out;
  Alcotest.(check bool) "spin counters zero under sampling" true
    (r.Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 })

let test_error_bounds () =
  let w = mpmc () in
  let detailed = Workload.run_validated Config.default w in
  let s = Workload.run_validated (sampled Config.default) w in
  let cycles_err =
    Float.abs (float_of_int s.Machine.cycles -. float_of_int detailed.Machine.cycles)
    /. float_of_int detailed.Machine.cycles
    *. 100.0
  in
  if cycles_err > cycles_err_bound then
    Alcotest.failf "cycle estimate off by %.1f%% (detailed %d, sampled %d)" cycles_err
      detailed.Machine.cycles s.Machine.cycles;
  let fence_err =
    Float.abs
      (Machine.fence_stall_fraction s -. Machine.fence_stall_fraction detailed)
    *. 100.0
  in
  if fence_err > fence_err_bound then
    Alcotest.failf "fence-share estimate off by %.1fpp" fence_err

(* With sampling off the config routes through the standard engine:
   cycles must be bit-identical to the naive reference loop.  (The
   differential suite enforces this broadly; this pins the dispatch.) *)
let test_sampling_off_identity () =
  let w = mpmc () in
  let a = Workload.run_validated Config.default w in
  let b =
    Workload.run_validated (Config.with_sampling None Config.default) w
  in
  Alcotest.(check int) "sampling None == default engine" a.Machine.cycles
    b.Machine.cycles;
  let r = Machine.run_reference Config.default w.Workload.program in
  Alcotest.(check int) "default engine == reference" r.Machine.cycles
    a.Machine.cycles

let test_checkpoint_sampling_rejected () =
  let w = mpmc () in
  Alcotest.check_raises "sampling + checkpoint rejected"
    (Invalid_argument "Sim_engine.run: sampling and checkpointing are incompatible")
    (fun () ->
      ignore
        (Machine.run
           ~checkpoint:(100, fun _ -> ())
           (sampled Config.default) w.Workload.program))

let test_bad_schedule_rejected () =
  Alcotest.check_raises "non-positive detailed window rejected"
    (Invalid_argument "Config.sampling: detailed window must be positive")
    (fun () ->
      ignore
        (Config.with_sampling
           (Some { Config.warmup = 0; detailed = 0; ff_instrs = 1 })
           Config.default))

(* ------------------------------------------------------------------ *)
(* Sharded sampled identity: splitting the detailed windows across
   OCaml domains must be invisible.  The whole result record — cycle
   estimate, per-core stats, CPI leaves, final memory, cache stats and
   the recorded sample windows — must be bit-identical to the
   unsharded sampled run, across shard counts, barrier elision on/off
   and both memory models.  Only the lockstep diagnostics (shard
   barrier/elision counters) may differ. *)

let strip_shard (r : Machine.result) =
  { r with Machine.shard = Machine.no_shard_ctrs }

let sampled_shard_gen =
  let open QCheck2.Gen in
  let* threads = oneofl [ 4; 8 ] in
  let* per = oneofl [ 16; 32 ] in
  let* shards = oneofl [ 1; 2; 4 ] in
  let* elide = bool in
  let* ideal = bool in
  return (threads, per, shards, elide, ideal)

let print_sampled_shard_case (threads, per, shards, elide, ideal) =
  Printf.sprintf "threads=%d per=%d shards=%d elide=%b mem=%s" threads per shards
    elide
    (if ideal then "ideal" else "hierarchy")

let prop_sampled_shard_invariance =
  QCheck2.Test.make ~count:16 ~name:"sharded sampled == sequential sampled"
    ~print:print_sampled_shard_case sampled_shard_gen
    (fun (threads, per, shards, elide, ideal) ->
      let w = Mpmc.make ~threads ~per_producer:per ~scope:`Class () in
      let base =
        Config.with_mem_model
          (if ideal then Config.Ideal else Config.Hierarchy)
          (sampled Config.default)
      in
      let seq = Machine.run base w.Workload.program in
      let sharded =
        Machine.run
          (Config.with_elide_barriers elide (Config.with_shard_domains shards base))
          w.Workload.program
      in
      if strip_shard seq = strip_shard sharded then true
      else if seq.Machine.cycles <> sharded.Machine.cycles then
        QCheck2.Test.fail_reportf "cycle estimate: sequential %d, sharded %d"
          seq.Machine.cycles sharded.Machine.cycles
      else if seq.Machine.sample_windows <> sharded.Machine.sample_windows then
        QCheck2.Test.fail_report "measured windows differ"
      else if seq.Machine.mem <> sharded.Machine.mem then
        QCheck2.Test.fail_report "final memory differs"
      else QCheck2.Test.fail_report "stats/CPI differ")

(* A checkpoint captured inside the sharded loop's publish window must
   resume under the sequential loop as if nothing happened: same final
   result as an uninterrupted sequential run.  (Sampling composes with
   sharding but not with checkpointing, so this regression runs the
   detailed engine.) *)
let test_sharded_checkpoint_sequential_resume () =
  let w = mpmc () in
  let strip (r : Machine.result) =
    {
      (strip_shard r) with
      Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
    }
  in
  let sharded_cfg = Config.with_shard_domains 4 Config.default in
  let first = ref None in
  let sink ck = if Option.is_none !first then first := Some ck in
  ignore (Machine.run ~checkpoint:(200, sink) sharded_cfg w.Workload.program);
  match !first with
  | None -> Alcotest.fail "run finished before the first capture point"
  | Some ck ->
    let sequential_cfg = Config.with_shard_domains 1 Config.default in
    Checkpoint.validate ck sequential_cfg w.Workload.program;
    let resumed = Machine.run ~resume:ck sequential_cfg w.Workload.program in
    let baseline = Machine.run sequential_cfg w.Workload.program in
    Alcotest.(check bool)
      "sharded-captured checkpoint resumes bit-identically under sequential" true
      (strip resumed = strip baseline)

let tests =
  [
    Alcotest.test_case "sampled run validates, spin counters zero" `Quick
      test_sampled_validates;
    Alcotest.test_case "cycle and fence-share estimate error bounds" `Quick
      test_error_bounds;
    Alcotest.test_case "sampling off is bit-identical dispatch" `Quick
      test_sampling_off_identity;
    Alcotest.test_case "sampling + checkpointing rejected" `Quick
      test_checkpoint_sampling_rejected;
    Alcotest.test_case "invalid schedule rejected" `Quick test_bad_schedule_rejected;
    QCheck_alcotest.to_alcotest prop_sampled_shard_invariance;
    Alcotest.test_case "sharded checkpoint resumes under sequential loop" `Quick
      test_sharded_checkpoint_sequential_resume;
  ]
