(* Interval sampling (DESIGN §15).  The sampled engine must keep
   functional behaviour exact — workload validation passes, final
   memory is a legal execution — while estimating cycle-valued
   metrics.  The estimate error is bounded deterministically here on a
   small contended workload (same machine, same program, fixed
   schedule => fixed estimate), and again at bench scale by
   [bench/main.exe sampled] which writes the bound into
   BENCH_engine.json.  Note the sampled run is a DIFFERENT legal
   execution of a contended program (spin iteration counts change
   across the functional legs), so these tests bound errors instead of
   asserting counter identity. *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Workload = Fscope_workloads.Workload
module Mpmc = Fscope_workloads.Mpmc

(* short windows so the tiny test workload alternates modes a few
   times instead of finishing inside the first detailed window *)
let schedule = { Config.warmup = 100; detailed = 500; ff_instrs = 1_000 }
let sampled config = Config.with_sampling (Some schedule) config
let mpmc () = Mpmc.make ~threads:8 ~per_producer:32 ~scope:`Class ()

(* cycle-estimate error bounds, mirroring the bench gate *)
let cycles_err_bound = 25.0 (* per cent *)
let fence_err_bound = 10.0 (* percentage points *)

let test_sampled_validates () =
  let r = Workload.run_validated (sampled Config.default) (mpmc ()) in
  Alcotest.(check bool) "not timed out" false r.Machine.timed_out;
  Alcotest.(check bool) "spin counters zero under sampling" true
    (r.Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 })

let test_error_bounds () =
  let w = mpmc () in
  let detailed = Workload.run_validated Config.default w in
  let s = Workload.run_validated (sampled Config.default) w in
  let cycles_err =
    Float.abs (float_of_int s.Machine.cycles -. float_of_int detailed.Machine.cycles)
    /. float_of_int detailed.Machine.cycles
    *. 100.0
  in
  if cycles_err > cycles_err_bound then
    Alcotest.failf "cycle estimate off by %.1f%% (detailed %d, sampled %d)" cycles_err
      detailed.Machine.cycles s.Machine.cycles;
  let fence_err =
    Float.abs
      (Machine.fence_stall_fraction s -. Machine.fence_stall_fraction detailed)
    *. 100.0
  in
  if fence_err > fence_err_bound then
    Alcotest.failf "fence-share estimate off by %.1fpp" fence_err

(* With sampling off the config routes through the standard engine:
   cycles must be bit-identical to the naive reference loop.  (The
   differential suite enforces this broadly; this pins the dispatch.) *)
let test_sampling_off_identity () =
  let w = mpmc () in
  let a = Workload.run_validated Config.default w in
  let b =
    Workload.run_validated (Config.with_sampling None Config.default) w
  in
  Alcotest.(check int) "sampling None == default engine" a.Machine.cycles
    b.Machine.cycles;
  let r = Machine.run_reference Config.default w.Workload.program in
  Alcotest.(check int) "default engine == reference" r.Machine.cycles
    a.Machine.cycles

let test_checkpoint_sampling_rejected () =
  let w = mpmc () in
  Alcotest.check_raises "sampling + checkpoint rejected"
    (Invalid_argument "Sim_engine.run: sampling and checkpointing are incompatible")
    (fun () ->
      ignore
        (Machine.run
           ~checkpoint:(100, fun _ -> ())
           (sampled Config.default) w.Workload.program))

let test_bad_schedule_rejected () =
  Alcotest.check_raises "non-positive detailed window rejected"
    (Invalid_argument "Config.sampling: detailed window must be positive")
    (fun () ->
      ignore
        (Config.with_sampling
           (Some { Config.warmup = 0; detailed = 0; ff_instrs = 1 })
           Config.default))

let tests =
  [
    Alcotest.test_case "sampled run validates, spin counters zero" `Quick
      test_sampled_validates;
    Alcotest.test_case "cycle and fence-share estimate error bounds" `Quick
      test_error_bounds;
    Alcotest.test_case "sampling off is bit-identical dispatch" `Quick
      test_sampling_off_identity;
    Alcotest.test_case "sampling + checkpointing rejected" `Quick
      test_checkpoint_sampling_rejected;
    Alcotest.test_case "invalid schedule rejected" `Quick test_bad_schedule_rejected;
  ]
