(* Trend-differ tests: the JSON layer round-trips, every committed
   baseline artefact loads under its schema, self-diff is clean, an
   injected regression trips the gate, and mismatched quick flags turn
   the gate off. *)

module Json = Fscope_util.Json
module Trend = Fscope_experiments.Trend

(* ------------------------------------------------------------------ *)
(* Locating the committed baselines.  dune copies the source tree into
   _build/default, so walking up from the test's cwd finds the
   bench/baseline directory either in the sandbox or in the source
   checkout. *)

let rec find_dir dir candidate =
  let path = Filename.concat dir candidate in
  if Sys.file_exists path && Sys.is_directory path then Some path
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_dir parent candidate

let baseline_dir () =
  match find_dir (Sys.getcwd ()) (Filename.concat "bench" "baseline") with
  | Some d -> d
  | None -> Alcotest.fail "bench/baseline not found above the test cwd"

let baseline_files () =
  let dir = baseline_dir () in
  Sys.readdir dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)
(* JSON layer                                                          *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "[1,-2,3.5,1e3]";
      "{\"a\":{\"b\":[true,false,null]},\"s\":\"he\\\"llo\\n\\u00e9\"}";
      "{\"big\":123456789012345,\"neg\":-0.125}";
      "[]";
      "{}";
    ]
  in
  List.iter
    (fun s ->
      let v = Json.parse s in
      Alcotest.(check bool)
        (Printf.sprintf "parse(render(%s)) stable" s)
        true
        (Json.parse (Json.render v) = v))
    cases;
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad))
    [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2" ]

let test_committed_artefacts_roundtrip () =
  let files = baseline_files () in
  Alcotest.(check bool)
    "committed baselines present (engine, profile, profile_v1, server)" true
    (List.length files >= 4);
  List.iter
    (fun file ->
      let v = Json.of_file file in
      Alcotest.(check bool)
        (Printf.sprintf "%s JSON round-trips" (Filename.basename file))
        true
        (Json.parse (Json.render v) = v);
      let a = Trend.load ~file v in
      Alcotest.(check bool)
        (Printf.sprintf "%s loads points" (Filename.basename file))
        true
        (a.Trend.a_points <> []))
    files

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)

let load_server_baseline () =
  let file =
    Filename.concat (baseline_dir ()) "BENCH_server.json"
  in
  (file, Json.of_file file)

let test_self_diff_clean () =
  List.iter
    (fun file ->
      let a = Trend.load_file file in
      let v = Trend.diff ~baseline:a ~current:a () in
      Alcotest.(check bool)
        (Printf.sprintf "%s self-diff comparable" (Filename.basename file))
        true v.Trend.v_comparable;
      Alcotest.(check int)
        (Printf.sprintf "%s self-diff regression-free" (Filename.basename file))
        0
        (List.length v.Trend.v_regressions);
      Alcotest.(check bool)
        (Printf.sprintf "%s self-diff compared something" (Filename.basename file))
        true
        (v.Trend.v_deltas <> [] && v.Trend.v_missing = [] && v.Trend.v_added = []))
    (baseline_files ())

(* Rewrite one field of the first row of a parsed server artefact. *)
let tamper_first_row field f j =
  let map_obj g = function Json.Obj fields -> Json.Obj (g fields) | v -> v in
  map_obj
    (List.map (fun (k, v) ->
         if k <> "rows" then (k, v)
         else
           match v with
           | Json.Arr (row0 :: rest) ->
             ( k,
               Json.Arr
                 (map_obj
                    (List.map (fun (rk, rv) -> if rk = field then (rk, f rv) else (rk, rv)))
                    row0
                 :: rest) )
           | v -> (k, v)))
    j

let double = function
  | Json.Int n -> Json.Int (2 * n)
  | Json.Float x -> Json.Float (2.0 *. x)
  | v -> v

let test_injected_regression_gates () =
  let file, j = load_server_baseline () in
  let baseline = Trend.load ~file j in
  let current = Trend.load ~file:"tampered" (tamper_first_row "sim_cycles" double j) in
  let v = Trend.diff ~threshold:5.0 ~baseline ~current () in
  Alcotest.(check bool) "doubled sim_cycles trips the gate" true
    (v.Trend.v_regressions <> []);
  Alcotest.(check bool) "the regression names the tampered metric" true
    (List.exists
       (fun (d : Trend.delta) -> d.Trend.d_metric = "sim_cycles" && d.Trend.d_worse_pct > 99.0)
       v.Trend.v_regressions)

let test_gauge_metrics_never_gate () =
  let file, j = load_server_baseline () in
  let baseline = Trend.load ~file j in
  let tampered =
    tamper_first_row "gauge"
      (function
        | Json.Obj fields ->
          Json.Obj (List.map (fun (k, v) -> if k = "p99" then (k, double v) else (k, v)) fields)
        | v -> v)
      j
  in
  let current = Trend.load ~file:"tampered" tampered in
  let v = Trend.diff ~threshold:5.0 ~baseline ~current () in
  Alcotest.(check (list string)) "gauge summaries are context, not regressions" []
    (List.map (fun (d : Trend.delta) -> d.Trend.d_metric) v.Trend.v_regressions);
  Alcotest.(check bool) "the gauge delta is still reported" true
    (List.exists
       (fun (d : Trend.delta) ->
         d.Trend.d_gate = Trend.Gate_never && d.Trend.d_worse_pct > 99.0)
       v.Trend.v_deltas)

let test_quick_mismatch_disarms_gate () =
  let file, j = load_server_baseline () in
  let baseline = Trend.load ~file j in
  let full =
    match tamper_first_row "sim_cycles" double j with
    | Json.Obj fields ->
      Json.Obj
        (List.map (fun (k, v) -> if k = "quick" then (k, Json.Bool false) else (k, v)) fields)
    | v -> v
  in
  let current = Trend.load ~file:"full-size" full in
  let v = Trend.diff ~threshold:5.0 ~baseline ~current () in
  Alcotest.(check bool) "quick-vs-full is not comparable" false v.Trend.v_comparable;
  Alcotest.(check int) "and can never regress" 0 (List.length v.Trend.v_regressions);
  Alcotest.(check bool) "deltas still rendered for information" true
    (v.Trend.v_deltas <> [])

let test_wall_threshold_arms_wall_metrics () =
  let file =
    Filename.concat (baseline_dir ()) "BENCH_engine.json"
  in
  let j = Json.of_file file in
  let baseline = Trend.load ~file j in
  let tampered =
    match j with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "engine_total_seconds" then (k, double v) else (k, v))
           fields)
    | v -> v
  in
  let current = Trend.load ~file:"slow" tampered in
  let off = Trend.diff ~baseline ~current () in
  Alcotest.(check int) "wall metrics advisory by default" 0
    (List.length off.Trend.v_regressions);
  let on = Trend.diff ~wall_threshold:50.0 ~baseline ~current () in
  Alcotest.(check bool) "armed by --wall-threshold" true
    (on.Trend.v_regressions <> [])

let test_unknown_schema_rejected () =
  (match Trend.load ~file:"x" (Json.parse "{\"schema\":\"fence-scoping/unheard-of/v9\"}") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown schema accepted");
  match Trend.load ~file:"x" (Json.parse "{\"rows\":[]}") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "schema-less artefact accepted"

let tests =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "committed artefacts round-trip" `Quick
      test_committed_artefacts_roundtrip;
    Alcotest.test_case "self-diff clean" `Quick test_self_diff_clean;
    Alcotest.test_case "injected regression gates" `Quick test_injected_regression_gates;
    Alcotest.test_case "gauge metrics never gate" `Quick test_gauge_metrics_never_gate;
    Alcotest.test_case "quick mismatch disarms gate" `Quick
      test_quick_mismatch_disarms_gate;
    Alcotest.test_case "wall threshold arms wall metrics" `Quick
      test_wall_threshold_arms_wall_metrics;
    Alcotest.test_case "unknown schema rejected" `Quick test_unknown_schema_rejected;
  ]
