(* Direct unit tests for the CPU building blocks (the pipeline itself
   is covered end to end by test_sim and test_differential). *)

module Rob = Fscope_cpu.Rob
module Sb = Fscope_cpu.Store_buffer
module Bp = Fscope_cpu.Branch_pred
module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Fsb = Fscope_core.Fsb
module Fk = Fscope_isa.Fence_kind

let entry seq = Rob.make_entry ~seq ~pc:seq ~instr:Instr.Nop ~srcs:[||]

let test_rob_fifo () =
  let rob = Rob.create ~size:4 () in
  Alcotest.(check bool) "empty" true (Rob.is_empty rob);
  for s = 0 to 3 do
    Rob.dispatch rob (entry s)
  done;
  Alcotest.(check bool) "full" true (Rob.is_full rob);
  Alcotest.(check int) "head is 0" 0 (Rob.pop_head rob).Rob.seq;
  Rob.dispatch rob (entry 4);
  Alcotest.(check int) "count" 4 (Rob.count rob);
  Alcotest.(check int) "head is 1" 1 (Rob.pop_head rob).Rob.seq

let test_rob_wrong_seq () =
  let rob = Rob.create ~size:4 () in
  Alcotest.check_raises "wrong seq" (Invalid_argument "Rob.dispatch: wrong seq") (fun () ->
      Rob.dispatch rob (entry 5))

let test_rob_squash () =
  let rob = Rob.create ~size:8 () in
  for s = 0 to 5 do
    Rob.dispatch rob (entry s)
  done;
  let removed = Rob.squash_after rob 2 in
  Alcotest.(check (list int)) "removed 3,4,5" [ 3; 4; 5 ]
    (List.map (fun (e : Rob.entry) -> e.Rob.seq) removed);
  Alcotest.(check int) "count" 3 (Rob.count rob);
  Alcotest.(check int) "next seq" 3 (Rob.next_seq rob);
  Rob.dispatch rob (entry 3);
  Alcotest.(check bool) "re-dispatch ok" true (Rob.contains rob 3)

let test_rob_iteration_helpers () =
  let rob = Rob.create ~size:8 () in
  for s = 0 to 4 do
    Rob.dispatch rob (entry s)
  done;
  Alcotest.(check bool) "exists_older finds" true
    (Rob.exists_older rob 3 (fun e -> e.Rob.seq = 2));
  Alcotest.(check bool) "exists_older bounded" false
    (Rob.exists_older rob 3 (fun e -> e.Rob.seq = 3));
  let seen = Rob.fold_older rob 4 (fun acc e -> e.Rob.seq :: acc) [] in
  Alcotest.(check (list int)) "fold_older oldest-first" [ 3; 2; 1; 0 ] seen

let sb_entry ?(mask = Fsb.empty) ~addr ~done_at () =
  { Sb.addr; value = 7; mask; done_at }

let test_sb_fifo_and_completion () =
  let sb = Sb.create ~capacity:4 () in
  Sb.push sb (sb_entry ~addr:0 ~done_at:10 ());
  Sb.push sb (sb_entry ~addr:8 ~done_at:5 ());
  Alcotest.(check int) "count" 2 (Sb.count sb);
  let done_ = Sb.take_completed sb ~cycle:6 in
  Alcotest.(check (list int)) "early entry drains out of order" [ 8 ]
    (List.map (fun (e : Sb.entry) -> e.Sb.addr) done_);
  Alcotest.(check int) "one left" 1 (Sb.count sb)

let test_sb_forward_youngest () =
  let sb = Sb.create ~capacity:4 () in
  Sb.push sb { Sb.addr = 3; value = 1; mask = Fsb.empty; done_at = 100 };
  Sb.push sb { Sb.addr = 3; value = 2; mask = Fsb.empty; done_at = 100 };
  Alcotest.(check (option int)) "youngest wins" (Some 2) (Sb.forward sb ~addr:3);
  Alcotest.(check (option int)) "miss" None (Sb.forward sb ~addr:4)

let test_sb_mask_overlap () =
  let sb = Sb.create ~capacity:4 () in
  Sb.push sb (sb_entry ~mask:(Fsb.column 1) ~addr:0 ~done_at:10 ());
  Alcotest.(check bool) "overlap" true (Sb.mask_overlaps sb (Fsb.column 1));
  Alcotest.(check bool) "no overlap" false (Sb.mask_overlaps sb (Fsb.column 2))

let test_sb_capacity () =
  let sb = Sb.create ~capacity:1 () in
  Sb.push sb (sb_entry ~addr:0 ~done_at:1 ());
  Alcotest.(check bool) "full" true (Sb.is_full sb);
  Alcotest.check_raises "push full" (Invalid_argument "Store_buffer.push: full") (fun () ->
      Sb.push sb (sb_entry ~addr:1 ~done_at:1 ()))

let test_bpred_learns () =
  let bp = Bp.create ~entries:16 in
  (* initial state is weakly not-taken *)
  Alcotest.(check bool) "cold predicts not-taken" false (Bp.predict bp ~pc:3);
  Bp.update bp ~pc:3 ~taken:true;
  Alcotest.(check bool) "one taken flips weak counter" true (Bp.predict bp ~pc:3);
  Bp.update bp ~pc:3 ~taken:true;
  Bp.update bp ~pc:3 ~taken:false;
  Alcotest.(check bool) "hysteresis survives one not-taken" true (Bp.predict bp ~pc:3);
  Bp.update bp ~pc:3 ~taken:false;
  Bp.update bp ~pc:3 ~taken:false;
  Alcotest.(check bool) "retrained" false (Bp.predict bp ~pc:3)

let test_bpred_aliasing () =
  let bp = Bp.create ~entries:4 in
  Bp.update bp ~pc:0 ~taken:true;
  Bp.update bp ~pc:0 ~taken:true;
  (* pc 4 aliases pc 0 in a 4-entry table *)
  Alcotest.(check bool) "aliased entry shares state" true (Bp.predict bp ~pc:4)

let test_fence_kind_flavors () =
  Alcotest.(check bool) "full waits stores" true Fk.full.Fk.wait_stores;
  let ss = Fk.store_store Fk.class_scoped in
  Alcotest.(check bool) "ss keeps scope" true (Fk.scope_of ss = Fk.Class_scope);
  Alcotest.(check bool) "ss skips loads" false ss.Fk.wait_loads;
  Alcotest.(check bool) "ss does not block loads" false ss.Fk.block_loads;
  let ll = Fk.load_load Fk.set_scoped in
  Alcotest.(check bool) "ll skips stores" false ll.Fk.wait_stores;
  Alcotest.(check bool) "ll blocks loads" true ll.Fk.block_loads;
  Alcotest.(check string) "printing" "S-FENCE[class].ss" (Fk.to_string ss)

let tests =
  [
    Alcotest.test_case "rob fifo" `Quick test_rob_fifo;
    Alcotest.test_case "rob wrong seq" `Quick test_rob_wrong_seq;
    Alcotest.test_case "rob squash" `Quick test_rob_squash;
    Alcotest.test_case "rob iteration" `Quick test_rob_iteration_helpers;
    Alcotest.test_case "sb completion order" `Quick test_sb_fifo_and_completion;
    Alcotest.test_case "sb forwarding" `Quick test_sb_forward_youngest;
    Alcotest.test_case "sb mask overlap" `Quick test_sb_mask_overlap;
    Alcotest.test_case "sb capacity" `Quick test_sb_capacity;
    Alcotest.test_case "bpred learning" `Quick test_bpred_learns;
    Alcotest.test_case "bpred aliasing" `Quick test_bpred_aliasing;
    Alcotest.test_case "fence kind flavors" `Quick test_fence_kind_flavors;
  ]
