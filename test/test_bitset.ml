(* Bitset: word-boundary behaviour and equivalence with a naive
   sorted-list model.  The 62/63/64/65 capacities straddle the OCaml
   int word size (63 usable bits, 62 in the old single-int mask this
   module replaced), which is where an off-by-one in the word/bit
   split would bite. *)

module Bitset = Fscope_mem.Bitset
module Rng = Fscope_util.Rng

let boundary_capacities = [ 62; 63; 64; 65 ]

(* set / clear / mem round-trip at every index of every boundary
   capacity, with neighbours checked for clobbering *)
let test_boundary_roundtrip () =
  List.iter
    (fun bits ->
      let s = Bitset.create ~bits in
      Alcotest.(check bool) "fresh set is empty" true (Bitset.is_empty s);
      for i = 0 to bits - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "bits=%d: %d absent before add" bits i)
          false (Bitset.mem s i);
        Bitset.add s i;
        Alcotest.(check bool)
          (Printf.sprintf "bits=%d: %d present after add" bits i)
          true (Bitset.mem s i);
        (* neighbours untouched *)
        if i + 1 < bits then
          Alcotest.(check bool)
            (Printf.sprintf "bits=%d: add %d left %d clear" bits i (i + 1))
            false
            (Bitset.mem s (i + 1))
      done;
      Alcotest.(check (list int))
        (Printf.sprintf "bits=%d: full membership" bits)
        (List.init bits Fun.id) (Bitset.members s);
      for i = 0 to bits - 1 do
        Bitset.remove s i;
        Alcotest.(check bool)
          (Printf.sprintf "bits=%d: %d absent after remove" bits i)
          false (Bitset.mem s i)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "bits=%d: empty after removing all" bits)
        true (Bitset.is_empty s))
    boundary_capacities

(* the last valid index of each capacity, plus the word-straddling
   index 63 where it exists: add/remove them in isolation *)
let test_boundary_last_bit () =
  List.iter
    (fun bits ->
      let s = Bitset.create ~bits in
      let last = bits - 1 in
      Bitset.add s last;
      Alcotest.(check bool)
        (Printf.sprintf "bits=%d: last bit set" bits)
        true (Bitset.mem s last);
      Alcotest.(check (list int))
        (Printf.sprintf "bits=%d: only last bit" bits)
        [ last ] (Bitset.members s);
      Bitset.remove s last;
      Alcotest.(check bool)
        (Printf.sprintf "bits=%d: last bit cleared" bits)
        false (Bitset.mem s last);
      if bits > 63 then begin
        (* index 63 lives in the second word *)
        Bitset.add s 63;
        Bitset.add s 62;
        Alcotest.(check (list int))
          (Printf.sprintf "bits=%d: straddling pair" bits)
          [ 62; 63 ] (Bitset.members s)
      end)
    boundary_capacities

(* fold must agree with a naive sorted-list model under a random
   add/remove workload, and iter/members must agree with fold *)
let test_fold_vs_naive () =
  let rng = Rng.create 42 in
  List.iter
    (fun bits ->
      let s = Bitset.create ~bits in
      let model = ref [] in
      for _ = 1 to 400 do
        let i = Rng.int rng bits in
        if Rng.bool rng then begin
          Bitset.add s i;
          if not (List.mem i !model) then model := i :: !model
        end
        else begin
          Bitset.remove s i;
          model := List.filter (fun j -> j <> i) !model
        end;
        Alcotest.(check bool)
          "mem agrees with model" (List.mem i !model) (Bitset.mem s i)
      done;
      let expected = List.sort compare !model in
      let folded = List.rev (Bitset.fold s (fun acc i -> i :: acc) []) in
      Alcotest.(check (list int)) "fold order/content vs naive model" expected folded;
      let itered = ref [] in
      Bitset.iter s (fun i -> itered := i :: !itered);
      Alcotest.(check (list int)) "iter agrees with fold" folded (List.rev !itered);
      Alcotest.(check (list int)) "members agrees with fold" folded (Bitset.members s);
      Alcotest.(check bool)
        "is_empty agrees with model" (expected = []) (Bitset.is_empty s);
      (* of_members round-trip *)
      let s' = Bitset.of_members ~bits expected in
      Alcotest.(check (list int)) "of_members round-trip" expected (Bitset.members s'))
    boundary_capacities

let test_retain_only_and_singleton () =
  let s = Bitset.of_members ~bits:65 [ 0; 62; 63; 64 ] in
  Bitset.retain_only s 63;
  Alcotest.(check (list int)) "retain member" [ 63 ] (Bitset.members s);
  Bitset.retain_only s 10;
  Alcotest.(check bool) "retain non-member empties" true (Bitset.is_empty s);
  let one = Bitset.singleton ~bits:64 63 in
  Alcotest.(check (list int)) "singleton at word boundary" [ 63 ] (Bitset.members one);
  Alcotest.(check bool) "capacity covers requested bits" true (Bitset.capacity one >= 64)

let tests =
  [
    Alcotest.test_case "boundary set/clear/mem round-trip (62/63/64/65)" `Quick
      test_boundary_roundtrip;
    Alcotest.test_case "last-bit and word-straddling indices" `Quick
      test_boundary_last_bit;
    Alcotest.test_case "fold/iter/members vs naive list model" `Quick
      test_fold_vs_naive;
    Alcotest.test_case "retain_only and singleton" `Quick
      test_retain_only_and_singleton;
  ]
