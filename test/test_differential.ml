(* Differential testing: random single-threaded slang programs are run
   through (a) the reference interpreter on the source AST and (b) the
   full pipeline — typecheck, inline, codegen, cycle-level simulation —
   under four machine configurations.  The final memories must agree
   exactly.  This cross-checks the compiler and the processor's
   functional behaviour (renaming, forwarding, disambiguation,
   misprediction recovery, CAS, fence handling) in one property. *)

module Ast = Fscope_slang.Ast
module Compile = Fscope_slang.Compile
module Interp = Fscope_slang.Interp
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Rng = Fscope_util.Rng

(* ------------------------------------------------------------------ *)
(* Random program generator                                            *)
(* ------------------------------------------------------------------ *)

type genv = {
  rng : Rng.t;
  mutable locals : string list;  (** in scope, innermost first *)
  mutable fresh : int;
  in_method : bool;  (** inside class K: "self" is available *)
  callable : (string * bool) list;  (** methods this context may call: (name, returns) *)
}

let arrays = [ ("arr1", 16); ("arr2", 32) ]
let scalars = [ "ga"; "gb" ]
let field_arrays = [ ("buf", 16) ]
let field_scalars = [ "f" ]

let fresh_name env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "%s%d" prefix env.fresh

let pick env xs = List.nth xs (Rng.int env.rng (List.length xs))

let rec gen_expr env depth =
  let leaf () =
    match Rng.int env.rng (if env.locals = [] then 2 else 4) with
    | 0 -> Ast.Int (Rng.int_in env.rng (-20) 20)
    | 1 -> Ast.Read (gen_lvalue env (depth + 1))
    | 2 -> Ast.Local (pick env env.locals)
    | _ -> Ast.Local (pick env env.locals)
  in
  if depth >= 3 then leaf ()
  else
    match Rng.int env.rng 6 with
    | 0 | 1 -> leaf ()
    | 2 | 3 ->
      let op =
        pick env
          [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.Band; Ast.Bor; Ast.Bxor;
            Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ]
      in
      Ast.Binop (op, gen_expr env (depth + 1), gen_expr env (depth + 1))
    | 4 -> Ast.Not (gen_expr env (depth + 1))
    | _ -> Ast.Read (gen_lvalue env (depth + 1))

and gen_lvalue env depth =
  (* Array indices are masked with the (power-of-two) size so they are
     always in bounds in both executions. *)
  let masked size = Ast.Binop (Ast.Band, gen_expr env (depth + 1), Ast.Int (size - 1)) in
  let choices = if env.in_method then 4 else 2 in
  match Rng.int env.rng choices with
  | 0 -> Ast.Global (pick env scalars)
  | 1 ->
    let name, size = pick env arrays in
    Ast.Elem (name, masked size)
  | 2 -> Ast.Field ("self", pick env field_scalars)
  | _ ->
    let name, size = pick env field_arrays in
    Ast.Field_elem ("self", name, masked size)

let gen_fence env =
  let flavor =
    pick env [ Ast.FF_full; Ast.FF_store_store; Ast.FF_load_load; Ast.FF_store_load ]
  in
  match Rng.int env.rng 3 with
  | 0 -> Ast.Fence (Ast.F_full, flavor)
  | 1 when env.in_method -> Ast.Fence (Ast.F_class, flavor)
  | _ -> Ast.Fence (Ast.F_set [ pick env scalars; fst (pick env arrays) ], flavor)

let rec gen_block env ~depth ~len =
  let saved = env.locals in
  let stmts = List.concat (List.init len (fun _ -> gen_stmt env ~depth)) in
  env.locals <- saved;
  stmts

and gen_stmt env ~depth =
  match Rng.int env.rng 12 with
  | 0 | 1 ->
    let name = fresh_name env "v" in
    let e = gen_expr env 0 in
    env.locals <- name :: env.locals;
    [ Ast.Let (name, e) ]
  | 2 when env.locals <> [] -> [ Ast.Assign (pick env env.locals, gen_expr env 0) ]
  | 3 | 4 -> [ Ast.Store (gen_lvalue env 0, gen_expr env 0) ]
  | 5 when depth < 2 ->
    [ Ast.If (gen_expr env 0, gen_block env ~depth:(depth + 1) ~len:2,
              if Rng.bool env.rng then gen_block env ~depth:(depth + 1) ~len:2 else []) ]
  | 6 when depth < 2 ->
    (* A bounded counting loop.  The counter is deliberately NOT added
       to [env.locals]: generated statements in the body must not be
       able to reassign it, or the loop could diverge. *)
    let c = fresh_name env "c" in
    let n = Rng.int_in env.rng 0 4 in
    let body = gen_block env ~depth:(depth + 1) ~len:2 in
    [
      Ast.Let (c, Ast.Int n);
      Ast.While
        ( Ast.Binop (Ast.Gt, Ast.Local c, Ast.Int 0),
          body @ [ Ast.Assign (c, Ast.Binop (Ast.Sub, Ast.Local c, Ast.Int 1)) ] );
    ]
  | 7 -> [ gen_fence env ]
  | 8 ->
    let dst = fresh_name env "ok" in
    env.locals <- dst :: env.locals;
    [
      Ast.Let (dst, Ast.Int 0);
      Ast.Cas { dst; lv = gen_lvalue env 0; expected = gen_expr env 1; desired = gen_expr env 1 };
    ]
  | 9 when env.callable <> [] ->
    let name, returns = pick env env.callable in
    let args = [ gen_expr env 0 ] in
    if returns then begin
      let dst = fresh_name env "r" in
      env.locals <- dst :: env.locals;
      [ Ast.Let (dst, Ast.Int 0); Ast.Call_assign (dst, { instance = Some "k"; meth = name; args }) ]
    end
    else [ Ast.Call_stmt { instance = Some "k"; meth = name; args } ]
  | _ -> [ Ast.Store (gen_lvalue env 0, gen_expr env 0) ]

let gen_method rng ~name ~callable ~returns =
  let env = { rng; locals = [ "p" ]; fresh = 0; in_method = true; callable } in
  let body = gen_block env ~depth:0 ~len:(Rng.int_in rng 2 5) in
  let body = if returns then body @ [ Ast.Return (Some (gen_expr env 0)) ] else body in
  { Ast.mname = name; params = [ "p" ]; returns; body }

(* Multicore variant: [threads] copies of independently generated
   bodies, each touching only its own globals ("t<i>_ga", ...), so the
   sequential interpretation and any parallel interleaving must agree
   on the final memory. *)
let gen_disjoint_program seed ~threads =
  let rng = Rng.create seed in
  let per_thread t =
    let prefix n = Printf.sprintf "t%d_%s" t n in
    let rename_lv = function
      | Ast.Global n -> Ast.Global (prefix n)
      | Ast.Elem (n, e) -> Ast.Elem (prefix n, e)
      | (Ast.Field _ | Ast.Field_elem _) as lv -> lv
    in
    let rec rename_expr = function
      | (Ast.Int _ | Ast.Tid | Ast.Local _) as e -> e
      | Ast.Read lv -> Ast.Read (rename_deep lv)
      | Ast.Binop (op, a, b) -> Ast.Binop (op, rename_expr a, rename_expr b)
      | Ast.Not e -> Ast.Not (rename_expr e)
    and rename_deep lv =
      match rename_lv lv with
      | Ast.Elem (n, e) -> Ast.Elem (n, rename_expr e)
      | Ast.Field_elem (i, f, e) -> Ast.Field_elem (i, f, rename_expr e)
      | (Ast.Global _ | Ast.Field _) as lv -> lv
    in
    let rec rename_stmt = function
      | Ast.Let (n, e) -> Ast.Let (n, rename_expr e)
      | Ast.Assign (n, e) -> Ast.Assign (n, rename_expr e)
      | Ast.Store (lv, e) -> Ast.Store (rename_deep lv, rename_expr e)
      | Ast.If (c, a, b) -> Ast.If (rename_expr c, List.map rename_stmt a, List.map rename_stmt b)
      | Ast.While (c, b) -> Ast.While (rename_expr c, List.map rename_stmt b)
      | Ast.Fence (Ast.F_set vars, fl) -> Ast.Fence (Ast.F_set (List.map prefix vars), fl)
      | Ast.Fence (spec, fl) -> Ast.Fence (spec, fl)
      | Ast.Cas { dst; lv; expected; desired } ->
        Ast.Cas { dst; lv = rename_deep lv;
                  expected = rename_expr expected; desired = rename_expr desired }
      | (Ast.Call_stmt _ | Ast.Call_assign _ | Ast.Return _ | Ast.Inlined _) as s -> s
    in
    let env =
      { rng = Rng.split rng; locals = []; fresh = 1000 * (t + 1); in_method = false;
        callable = [] (* no class: the instance would be shared *) }
    in
    List.map rename_stmt (gen_block env ~depth:0 ~len:(Rng.int_in rng 4 8))
  in
  let bodies = List.init threads per_thread in
  {
    Ast.classes = [];
    instances = [];
    globals =
      List.concat_map
        (fun t ->
          let prefix n = Printf.sprintf "t%d_%s" t n in
          List.map (fun s -> Ast.G_scalar (prefix s, Rng.int rng 100)) scalars
          @ List.map (fun (a, size) -> Ast.G_array (prefix a, size, None)) arrays)
        (List.init threads Fun.id);
    threads = bodies;
  }

let gen_program seed =
  let rng = Rng.create seed in
  let m0 = gen_method (Rng.split rng) ~name:"m0" ~callable:[] ~returns:(Rng.bool rng) in
  let m1 =
    gen_method (Rng.split rng) ~name:"m1"
      ~callable:[ ("m0", m0.Ast.returns) ]
      ~returns:(Rng.bool rng)
  in
  let cls =
    {
      Ast.cname = "K";
      scalars = List.map (fun f -> (f, Rng.int rng 50)) field_scalars;
      arrays = List.map (fun (f, size) -> (f, size, None)) field_arrays;
      methods = [ m0; m1 ];
    }
  in
  let env =
    {
      rng;
      locals = [];
      fresh = 1000;
      in_method = false;
      callable = [ ("m0", m0.Ast.returns); ("m1", m1.Ast.returns) ];
    }
  in
  let thread = gen_block env ~depth:0 ~len:(Rng.int_in rng 4 10) in
  {
    Ast.classes = [ cls ];
    instances = [ { Ast.iname = "k"; cls = "K" } ];
    globals =
      List.map (fun s -> Ast.G_scalar (s, Rng.int rng 100)) scalars
      @ List.map (fun (a, size) -> Ast.G_array (a, size, None)) arrays;
    threads = [ thread ];
  }

(* ------------------------------------------------------------------ *)

let configs =
  [
    ("scoped", Config.scoped Config.default);
    ("traditional", Config.traditional Config.default);
    ("scoped+spec", Config.with_speculation true (Config.scoped Config.default));
    ("small-rob", Config.with_rob_size 16 (Config.scoped Config.default));
    (* the ideal 1-cycle memory backend must preserve functional
       behaviour (only timing changes) and engine/reference identity *)
    ("ideal-mem", Config.with_mem_model Config.Ideal (Config.scoped Config.default));
  ]

let check_seed seed =
  let program_ast = gen_program seed in
  let program, info = Compile.compile program_ast in
  let expected =
    Interp.run_sequential program_ast ~layout:info.Compile.layout
  in
  List.iter
    (fun (label, config) ->
      let result = Machine.run config program in
      if result.Machine.timed_out then
        Alcotest.failf "seed %d (%s): simulation timed out" seed label;
      Array.iteri
        (fun addr v ->
          if result.Machine.mem.(addr) <> v then
            Alcotest.failf "seed %d (%s): mem[%d] = %d, interpreter says %d" seed label
              addr result.Machine.mem.(addr) v)
        expected)
    configs

let test_differential_batch lo hi () =
  for seed = lo to hi do
    check_seed seed
  done

(* Multicore: disjoint-data threads; the Tid expressions still differ
   per thread, but they only flow into thread-private state. *)
let check_disjoint_seed seed =
  let program_ast = gen_disjoint_program seed ~threads:4 in
  let program, info = Compile.compile program_ast in
  let expected = Interp.run_sequential program_ast ~layout:info.Compile.layout in
  List.iter
    (fun (label, config) ->
      let result = Machine.run config program in
      if result.Machine.timed_out then
        Alcotest.failf "seed %d (%s): simulation timed out" seed label;
      Array.iteri
        (fun addr v ->
          if result.Machine.mem.(addr) <> v then
            Alcotest.failf "seed %d (%s): mem[%d] = %d, interpreter says %d" seed label
              addr result.Machine.mem.(addr) v)
        expected)
    configs

let test_disjoint_batch lo hi () =
  for seed = lo to hi do
    check_disjoint_seed seed
  done

(* ------------------------------------------------------------------ *)
(* Engine differential: the event-horizon fast-forward loop
   (Machine.run) against the retained naive per-cycle loop
   (Machine.run_reference).  Every result field must agree exactly —
   cycle count, timeout flag, each per-core stats field, the per-core
   CPI attribution (every taxonomy leaf), the final memory image and
   the cache stats — on random programs under random configurations,
   including runs truncated by a small cycle limit.   *)

(* The spin fast-forward counters describe how the engine reached the
   result, not the result: they legitimately differ between the two
   loops (the reference never sleeps), so identity is checked over
   everything else. *)
let strip_spin (r : Machine.result) =
  {
    r with
    Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
    shard = Machine.no_shard_ctrs;
  }

let explain_mismatch label seed (a : Machine.result) (b : Machine.result) =
  let check name va vb acc =
    if va = vb then acc else Printf.sprintf "%s%s: engine %d, reference %d; " acc name va vb
  in
  let acc = "" in
  let acc = check "cycles" a.Machine.cycles b.Machine.cycles acc in
  let acc =
    check "timed_out" (Bool.to_int a.Machine.timed_out) (Bool.to_int b.Machine.timed_out)
      acc
  in
  let acc = ref acc in
  Array.iteri
    (fun i (sa : Fscope_cpu.Core.stats) ->
      let sb = b.Machine.core_stats.(i) in
      let c name va vb = acc := check (Printf.sprintf "core%d/%s" i name) va vb !acc in
      c "committed" sa.committed sb.committed;
      c "fence_stall_cycles" sa.fence_stall_cycles sb.fence_stall_cycles;
      c "stall_rob_load" sa.stall_rob_load sb.stall_rob_load;
      c "stall_rob_store" sa.stall_rob_store sb.stall_rob_store;
      c "stall_sb" sa.stall_sb sb.stall_sb;
      c "sb_stall_cycles" sa.sb_stall_cycles sb.sb_stall_cycles;
      c "active_cycles" sa.active_cycles sb.active_cycles;
      c "rob_occupancy_sum" sa.rob_occupancy_sum sb.rob_occupancy_sum)
    a.Machine.core_stats;
  Array.iteri
    (fun i ca ->
      let cb = b.Machine.core_cpi.(i) in
      List.iter
        (fun leaf ->
          acc :=
            check
              (Printf.sprintf "core%d/cpi/%s" i (Fscope_obs.Cpi.name leaf))
              (Fscope_obs.Cpi.get ca leaf) (Fscope_obs.Cpi.get cb leaf) !acc)
        Fscope_obs.Cpi.leaves)
    a.Machine.core_cpi;
  if a.Machine.mem <> b.Machine.mem then acc := !acc ^ "final memory differs; ";
  if a.Machine.cache <> b.Machine.cache then acc := !acc ^ "cache stats differ; ";
  Printf.sprintf "seed %d (%s): %s" seed label !acc

let engine_case_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 500 in
  let* multicore = bool in
  let* cfg_i = int_range 0 (List.length configs - 1) in
  (* Small limits force mid-flight truncation, exercising the engine's
     timeout clamping and pre-charged stall accounting. *)
  let* max_c = oneofl [ None; Some 50; Some 400; Some 3000 ] in
  return (seed, multicore, cfg_i, max_c)

let print_engine_case (seed, multicore, cfg_i, max_c) =
  Printf.sprintf "seed=%d multicore=%b config=%s max_cycles=%s" seed multicore
    (fst (List.nth configs cfg_i))
    (match max_c with None -> "default" | Some n -> string_of_int n)

let prop_engine_matches_reference =
  QCheck2.Test.make ~count:120 ~name:"fast-forward engine == naive reference loop"
    ~print:print_engine_case engine_case_gen
    (fun (seed, multicore, cfg_i, max_c) ->
      let program_ast =
        if multicore then gen_disjoint_program seed ~threads:4 else gen_program seed
      in
      let program, _info = Compile.compile program_ast in
      let label, config = List.nth configs cfg_i in
      let config =
        match max_c with None -> config | Some n -> Config.with_max_cycles n config
      in
      let engine = Machine.run config program in
      let reference = Machine.run_reference config program in
      if strip_spin engine = strip_spin reference then true
      else QCheck2.Test.fail_report (explain_mismatch label seed engine reference))

(* ------------------------------------------------------------------ *)
(* Spin fast-forward differential: flag-handshake programs in which
   one or more cores spin for a random (often long) time while a
   worker counts down, then wake and do observable work.  These are
   exactly the shapes the spin fast-forward sleeps through, so they
   pin down its bit-identity: engine with FF on == engine with FF off
   == naive reference, in every result field (cycles, all stats, CPI
   leaves, final memory, cache counters). *)

module Isa = Fscope_isa

let handshake_program rng =
  let open Isa in
  let r n = Reg.r n in
  let iters = 30 + Rng.int rng 4000 in
  let spinners = 1 + Rng.int rng 3 in
  (* Worker: burn [iters] countdown iterations (a counting loop the
     probe must refuse to arm — its ARF changes every boundary), then
     publish data and raise the flag.  flag @ 0, data @ 1. *)
  let worker =
    [|
      Instr.Li (r 1, iters);
      Instr.Alu (Instr.Sub, r 1, r 1, Instr.Imm 1);
      Instr.Branch { cond = Instr.Nez; src = r 1; target = 1 };
      Instr.Li (r 2, 1000 + Rng.int rng 1000);
      Instr.Store { src = r 2; base = Reg.zero; off = 1; flagged = false };
      Instr.Li (r 3, 1);
      Instr.Store { src = r 3; base = Reg.zero; off = 0; flagged = false };
      Instr.Halt;
    |]
  in
  (* Spinners: wait on the flag, then copy the data word to a private
     slot.  Variants vary the loop body to exercise the probe: extra
     ALU work (longer period), a second watched load (bigger
     footprint), or a bounded spin that falls through on a counter
     (must never arm: its ARF changes every boundary). *)
  let spinner id =
    let slot = 2 + id in
    let finish = [
      Instr.Load { dst = r 2; base = Reg.zero; off = 1; flagged = false };
      Instr.Store { src = r 2; base = Reg.zero; off = slot; flagged = false };
      Instr.Halt;
    ] in
    match Rng.int rng 4 with
    | 0 ->
      (* plain flag spin *)
      Array.of_list
        ([
           Instr.Load { dst = r 1; base = Reg.zero; off = 0; flagged = false };
           Instr.Branch { cond = Instr.Eqz; src = r 1; target = 0 };
         ]
        @ finish)
    | 1 ->
      (* ALU padding inside the loop body *)
      Array.of_list
        ([
           Instr.Load { dst = r 1; base = Reg.zero; off = 0; flagged = false };
           Instr.Alu (Instr.Add, r 3, r 1, Instr.Imm 0);
           Instr.Alu (Instr.Or, r 3, r 3, Instr.Reg (r 1));
           Instr.Branch { cond = Instr.Eqz; src = r 1; target = 0 };
         ]
        @ finish)
    | 2 ->
      (* two watched locations: spin until flag && data-ready sentinel *)
      Array.of_list
        ([
           Instr.Load { dst = r 1; base = Reg.zero; off = 0; flagged = false };
           Instr.Load { dst = r 3; base = Reg.zero; off = 1; flagged = false };
           Instr.Alu (Instr.And, r 4, r 1, Instr.Imm 1);
           Instr.Branch { cond = Instr.Eqz; src = r 4; target = 0 };
         ]
        @ finish)
    | _ ->
      (* bounded spin: countdown in the body keeps the ARF changing,
         so the stability probe must keep refusing to arm; falls
         through to the finish when the budget runs out first *)
      Array.of_list
        ([
           Instr.Li (r 5, 50 + Rng.int rng 200);
           Instr.Load { dst = r 1; base = Reg.zero; off = 0; flagged = false };
           Instr.Alu (Instr.Sub, r 5, r 5, Instr.Imm 1);
           Instr.Branch { cond = Instr.Nez; src = r 1; target = 5 };
           Instr.Branch { cond = Instr.Nez; src = r 5; target = 1 };
         ]
        @ finish)
  in
  Program.make
    ~threads:(worker :: List.init spinners spinner)
    ~mem_words:16 ()

let spin_case_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 10_000 in
  let* cfg_i = int_range 0 (List.length configs - 1) in
  let* max_c = oneofl [ None; Some 200; Some 5000 ] in
  return (seed, cfg_i, max_c)

let print_spin_case (seed, cfg_i, max_c) =
  Printf.sprintf "seed=%d config=%s max_cycles=%s" seed
    (fst (List.nth configs cfg_i))
    (match max_c with None -> "default" | Some n -> string_of_int n)

let prop_spin_ff_identity =
  QCheck2.Test.make ~count:80 ~name:"spin fast-forward on/off/reference identity"
    ~print:print_spin_case spin_case_gen (fun (seed, cfg_i, max_c) ->
      let program = handshake_program (Rng.create seed) in
      let label, config = List.nth configs cfg_i in
      let config =
        match max_c with None -> config | Some n -> Config.with_max_cycles n config
      in
      let ff_on = Machine.run config program in
      let ff_off = Machine.run (Config.with_spin_fastforward false config) program in
      let reference = Machine.run_reference config program in
      if strip_spin ff_on <> strip_spin reference then
        QCheck2.Test.fail_report
          ("FF on: " ^ explain_mismatch label seed ff_on reference)
      else if strip_spin ff_off <> strip_spin reference then
        QCheck2.Test.fail_report
          ("FF off: " ^ explain_mismatch label seed ff_off reference)
      else if ff_off.Machine.spin.Machine.cycles_skipped <> 0 then
        QCheck2.Test.fail_report "FF off must not skip cycles"
      else true)

(* ------------------------------------------------------------------ *)
(* Shard-count invariance: splitting one machine's cores across OCaml
   domains must be invisible in the results.  Sweeps shard counts over
   both program families (flag handshakes exercising cross-shard
   spin-sleep wakes, and disjoint 4-thread programs), composed with
   spin fast-forward on/off, both memory models and truncating cycle
   limits; every case must be bit-identical to the naive reference
   loop in all result fields except the spin diagnostics. *)

let shard_case_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 10_000 in
  let* handshake = bool in
  let* shards = oneofl [ 1; 2; 4 ] in
  let* spin_ff = bool in
  let* ideal = bool in
  let* elide = bool in
  let* max_c = oneofl [ None; Some 200; Some 5000 ] in
  return (seed, handshake, shards, spin_ff, ideal, elide, max_c)

let print_shard_case (seed, handshake, shards, spin_ff, ideal, elide, max_c) =
  Printf.sprintf "seed=%d program=%s shards=%d spin_ff=%b mem=%s elide=%b max_cycles=%s"
    seed
    (if handshake then "handshake" else "disjoint")
    shards spin_ff
    (if ideal then "ideal" else "hierarchy")
    elide
    (match max_c with None -> "default" | Some n -> string_of_int n)

let prop_shard_invariance =
  QCheck2.Test.make ~count:70 ~name:"sharded engine == naive reference loop"
    ~print:print_shard_case shard_case_gen
    (fun (seed, handshake, shards, spin_ff, ideal, elide, max_c) ->
      let program =
        if handshake then handshake_program (Rng.create seed)
        else fst (Compile.compile (gen_disjoint_program seed ~threads:4))
      in
      let config =
        Config.v ~base:(Config.scoped Config.default) ~spin_fastforward:spin_ff
          ~mem_model:(if ideal then Config.Ideal else Config.Hierarchy)
          ?max_cycles:max_c ~shard_domains:shards ~elide_barriers:elide ()
      in
      let sharded = Machine.run config program in
      let reference = Machine.run_reference config program in
      if strip_spin sharded = strip_spin reference then true
      else
        QCheck2.Test.fail_report
          (Printf.sprintf "shards=%d elide=%b: %s" shards elide
             (explain_mismatch
                (if handshake then "handshake" else "disjoint")
                seed sharded reference)))

(* ------------------------------------------------------------------ *)
(* Checkpoint round-trip: interrupt a run mid-flight, push the
   whole-machine checkpoint through its JSON wire format, resume from
   the parsed copy, and require the resumed run to be bit-identical to
   the uninterrupted one — across both program families, shard counts,
   spin fast-forward on/off and both memory models.  The run being
   checkpointed must itself be unperturbed by the capture. *)

module Checkpoint = Fscope_machine.Checkpoint
module Json = Fscope_util.Json

let ckpt_case_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 10_000 in
  let* handshake = bool in
  let* shards = oneofl [ 1; 2; 4 ] in
  let* spin_ff = bool in
  let* ideal = bool in
  (* small intervals force a capture well inside the run *)
  let* every = oneofl [ 40; 200; 1000 ] in
  return (seed, handshake, shards, spin_ff, ideal, every)

let print_ckpt_case (seed, handshake, shards, spin_ff, ideal, every) =
  Printf.sprintf "seed=%d program=%s shards=%d spin_ff=%b mem=%s every=%d" seed
    (if handshake then "handshake" else "disjoint")
    shards spin_ff
    (if ideal then "ideal" else "hierarchy")
    every

let prop_checkpoint_roundtrip =
  QCheck2.Test.make ~count:50 ~name:"mid-run checkpoint restore == uninterrupted run"
    ~print:print_ckpt_case ckpt_case_gen
    (fun (seed, handshake, shards, spin_ff, ideal, every) ->
      let program =
        if handshake then handshake_program (Rng.create seed)
        else fst (Compile.compile (gen_disjoint_program seed ~threads:4))
      in
      let config =
        Config.v ~base:(Config.scoped Config.default) ~spin_fastforward:spin_ff
          ~mem_model:(if ideal then Config.Ideal else Config.Hierarchy)
          ~shard_domains:shards ()
      in
      let baseline = Machine.run config program in
      let first = ref None in
      let sink ck = if Option.is_none !first then first := Some ck in
      let observed = Machine.run ~checkpoint:(every, sink) config program in
      if strip_spin observed <> strip_spin baseline then
        QCheck2.Test.fail_report
          ("capture perturbed the run: " ^ explain_mismatch "ckpt" seed observed baseline)
      else
        match !first with
        | None ->
          (* the run finished before the first capture point; the
             unperturbed-run identity above is the whole property *)
          true
        | Some ck ->
          let ck =
            Checkpoint.of_json (Json.parse (Json.render (Checkpoint.to_json ck)))
          in
          Checkpoint.validate ck config program;
          let resumed = Machine.run ~resume:ck config program in
          if strip_spin resumed = strip_spin baseline then true
          else
            QCheck2.Test.fail_report
              ("resumed run diverged: "
              ^ explain_mismatch "ckpt-resume" seed resumed baseline))

(* Compact checkpoint encoding: the v1z form (zero-run elision over
   every large mostly-zero array) must be dramatically smaller than
   the plain rendering at production core counts, and resuming through
   the compact wire format must be bit-identical to resuming through
   the plain one. *)
let test_compact_checkpoint () =
  let module Mpmc = Fscope_workloads.Mpmc in
  let module Workload = Fscope_workloads.Workload in
  let w = Mpmc.make ~threads:64 ~per_producer:4 ~scope:`Class () in
  let program = w.Workload.program in
  let config = Config.scoped Config.default in
  let first = ref None in
  let sink ck = if Option.is_none !first then first := Some ck in
  let baseline = Machine.run ~checkpoint:(400, sink) config program in
  match !first with
  | None -> Alcotest.fail "64-core run finished before the first capture point"
  | Some ck ->
    (* the same renderings [Checkpoint.save] writes: pretty plain,
       minified compact *)
    let plain = Json.render_pretty (Checkpoint.to_json ck) in
    let compact = Json.render (Checkpoint.to_json ~compact:true ck) in
    let ratio = float_of_int (String.length plain) /. float_of_int (String.length compact) in
    if ratio < 5.0 then
      Alcotest.failf "compact checkpoint only %.1fx smaller (plain %d bytes, compact %d)"
        ratio (String.length plain) (String.length compact);
    let via fmt = Checkpoint.of_json (Json.parse fmt) in
    let ck_plain = via plain and ck_compact = via compact in
    Alcotest.(check bool) "wire forms decode identically" true (ck_plain = ck_compact);
    Checkpoint.validate ck_compact config program;
    let resumed = Machine.run ~resume:ck_compact config program in
    Alcotest.(check bool) "compact resume == uninterrupted run" true
      (strip_spin resumed = strip_spin baseline)

let tests =
  [
    Alcotest.test_case "random programs 1-60" `Quick (test_differential_batch 1 60);
    Alcotest.test_case "random programs 61-120" `Quick (test_differential_batch 61 120);
    Alcotest.test_case "random programs 121-200" `Slow (test_differential_batch 121 200);
    Alcotest.test_case "4-core disjoint programs 1-40" `Quick (test_disjoint_batch 1 40);
    Alcotest.test_case "4-core disjoint programs 41-100" `Slow (test_disjoint_batch 41 100);
    QCheck_alcotest.to_alcotest prop_engine_matches_reference;
    QCheck_alcotest.to_alcotest prop_spin_ff_identity;
    QCheck_alcotest.to_alcotest prop_shard_invariance;
    QCheck_alcotest.to_alcotest prop_checkpoint_roundtrip;
    Alcotest.test_case "compact checkpoint: >=5x smaller, identical resume" `Quick
      test_compact_checkpoint;
  ]
