type entry = {
  addr : int;
  value : int;
  mask : Fscope_core.Fsb.mask;
  done_at : int;
}

(* A small array-backed FIFO; capacity is 8-ish so linear operations
   are the right implementation. *)
type t = {
  capacity : int;
  mutable entries : entry list; (* oldest first *)
  trace : Fscope_obs.Trace.t;
  core : int;
}

let create ?(trace = Fscope_obs.Trace.null) ?(core = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Store_buffer.create: capacity must be positive";
  { capacity; entries = []; trace; core }

let capacity t = t.capacity
let count t = List.length t.entries
let is_full t = count t >= t.capacity
let is_empty t = t.entries = []

let push t entry =
  if is_full t then invalid_arg "Store_buffer.push: full";
  t.entries <- t.entries @ [ entry ];
  if Fscope_obs.Trace.on t.trace then
    Fscope_obs.Trace.emit t.trace ~core:t.core
      (Fscope_obs.Event.Sb_insert { addr = entry.addr })

let take_completed t ~cycle =
  let done_, waiting = List.partition (fun e -> e.done_at <= cycle) t.entries in
  t.entries <- waiting;
  if Fscope_obs.Trace.on t.trace then
    List.iter
      (fun e ->
        Fscope_obs.Trace.emit t.trace ~core:t.core
          (Fscope_obs.Event.Sb_drain { addr = e.addr; value = e.value }))
      done_;
  done_

let forward t ~addr =
  List.fold_left
    (fun acc e -> if e.addr = addr then Some e.value else acc)
    None t.entries

let has_addr t ~addr = List.exists (fun e -> e.addr = addr) t.entries

let mask_overlaps t mask =
  List.exists (fun e -> not (Fscope_core.Fsb.is_empty (Fscope_core.Fsb.inter e.mask mask))) t.entries

let iter t f = List.iter f t.entries

(* Checkpoint restore: replace the FIFO wholesale (oldest first),
   emitting nothing. *)
let restore t entries =
  if List.length entries > t.capacity then invalid_arg "Store_buffer.restore: overflow";
  t.entries <- entries
