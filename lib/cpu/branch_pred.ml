type t = {
  mask : int;
  counters : int array; (* 0..3; >= 2 predicts taken *)
}

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch_pred.create: entries must be a positive power of two";
  { mask = entries - 1; counters = Array.make entries 1 (* weakly not-taken *) }

let predict t ~pc = t.counters.(pc land t.mask) >= 2

let snapshot t = Array.copy t.counters

let restore t counters =
  if Array.length counters <> Array.length t.counters then
    invalid_arg "Branch_pred.restore: size mismatch";
  Array.blit counters 0 t.counters 0 (Array.length counters)

let update t ~pc ~taken =
  let i = pc land t.mask in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))
