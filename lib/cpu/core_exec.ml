(* Completion phases and branch resolution.

   Every stage returns [true] iff it mutated pipeline state beyond the
   per-cycle stall accounting — the fast-forwarding engine freezes a
   core only when a whole cycle reports no progress, so any state
   change (a drained store, a completed load, a squash, even a
   computed address) must be reported. *)

module Instr = Fscope_isa.Instr
module Scope_unit = Fscope_core.Scope_unit
open Core_state

let step_complete_writes t ~cycle =
  let progress = ref false in
  List.iter
    (fun (en : Store_buffer.entry) ->
      progress := true;
      Mem_port.store t.port ~addr:en.addr ~value:en.value;
      Scope_unit.on_bits_cleared t.scope en.mask)
    (Store_buffer.take_completed t.sb ~cycle);
  Rob.iter t.rob (fun e ->
      match (e.instr, e.state) with
      | Instr.Cas _, Rob.Executing d when d <= cycle ->
        (* The RMW performs atomically at its completion point. *)
        progress := true;
        let old = read_mem t e.addr in
        let success = old = e.data2 in
        if success && in_bounds t e.addr then
          Mem_port.store t.port ~addr:e.addr ~value:e.data;
        e.result <- (if success then 1 else 0);
        e.state <- Rob.Done;
        Scope_unit.on_bits_cleared t.scope e.scope_mask;
        (match t.obs with
        | Some o ->
          Fscope_obs.Trace.emit o.trace ~core:t.id
            (Fscope_obs.Event.Cas_result { addr = e.addr; success })
        | None -> ())
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
  !progress

let step_complete_reads t ~cycle =
  let progress = ref false in
  Rob.iter t.rob (fun e ->
      match (e.instr, e.state) with
      | Instr.Load _, Rob.Executing d when d <= cycle ->
        (* data2 = 1 marks a forwarded load whose value was captured at
           issue; otherwise the value is sampled from memory now, at
           the access's completion point. *)
        progress := true;
        if e.data2 = 0 then e.result <- read_mem t e.addr;
        e.state <- Rob.Done;
        Scope_unit.on_bits_cleared t.scope e.scope_mask
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
  !progress

(* ------------------------------------------------------------------ *)
(* Branch resolution and squash                                        *)
(* ------------------------------------------------------------------ *)

let release_squashed t (e : Rob.entry) =
  match e.instr with
  | Instr.Load _ | Instr.Cas _ ->
    if e.state <> Rob.Done then Scope_unit.on_bits_cleared t.scope e.scope_mask
  | Instr.Store _ -> Scope_unit.on_bits_cleared t.scope e.scope_mask
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fence _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    ()

let squash t (e : Rob.entry) ~actual_target ~cycle =
  let removed = Rob.squash_after t.rob e.seq in
  List.iter (release_squashed t) removed;
  (match e.checkpoint with
  | Some cp -> Array.blit cp 0 t.rename 0 (Array.length cp)
  | None -> assert false);
  Scope_unit.on_branch_mispredict t.scope ~id:e.seq;
  t.fetch_pc <- actual_target;
  t.fetch_resume <- cycle + t.cfg.mispredict_penalty;
  t.fetch_stopped <- false;
  t.counts.mispredicts <- t.counts.mispredicts + 1

let resolve_branch t (e : Rob.entry) ~cycle =
  let taken = e.result <> 0 in
  let target =
    match e.instr with
    | Instr.Branch { target; _ } -> if taken then target else e.pc + 1
    | _ -> assert false
  in
  Branch_pred.update t.bpred ~pc:e.pc ~taken;
  if taken = e.predicted_taken then Scope_unit.on_branch_correct t.scope ~id:e.seq
  else squash t e ~actual_target:target ~cycle

(* Convert due executions to Done and resolve branches, oldest first
   (a misprediction squashes the younger ones before they resolve). *)
let finalize t ~cycle =
  let progress = ref false in
  let rec go seq =
    if Rob.contains t.rob seq then begin
      let e = Rob.get t.rob seq in
      (match (e.instr, e.state) with
      | (Instr.Load _ | Instr.Cas _), _ -> () (* completion phases own these *)
      | Instr.Branch _, Rob.Executing d when d <= cycle ->
        progress := true;
        e.state <- Rob.Done;
        resolve_branch t e ~cycle
      | _, Rob.Executing d when d <= cycle ->
        progress := true;
        e.state <- Rob.Done
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
      go (seq + 1)
    end
  in
  (match Rob.head t.rob with
  | Some e -> go e.seq
  | None -> ());
  !progress
