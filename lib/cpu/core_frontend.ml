(* Fetch along the predicted path and dispatch into the ROB. *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Scope_unit = Fscope_core.Scope_unit
open Core_state

(* Positional source registers, matching how execution consumes them. *)
let explicit_srcs = function
  | Instr.Nop | Instr.Li _ | Instr.Tid _ | Instr.Jump _ | Instr.Fence _
  | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    []
  | Instr.Alu (_, _, a, Instr.Reg b) -> [ a; b ]
  | Instr.Alu (_, _, a, Instr.Imm _) -> [ a ]
  | Instr.Load { base; _ } -> [ base ]
  | Instr.Store { src; base; _ } -> [ src; base ]
  | Instr.Cas { base; expected; desired; _ } -> [ base; expected; desired ]
  | Instr.Branch { src; _ } -> [ src ]

let dispatch t ~cycle =
  let progress = ref false in
  if cycle >= t.fetch_resume && not t.fetch_stopped then begin
    let budget = ref t.cfg.fetch_width in
    let halt_fetch = ref false in
    while
      (not !halt_fetch)
      && !budget > 0
      && (not (Rob.is_full t.rob))
      && t.fetch_pc >= 0
      && t.fetch_pc < Array.length t.code
    do
      progress := true;
      let pc = t.fetch_pc in
      let instr = t.code.(pc) in
      let seq = Rob.next_seq t.rob in
      let srcs =
        Array.of_list
          (List.map
             (fun r -> { Rob.producer = t.rename.(Reg.index r); reg = r })
             (explicit_srcs instr))
      in
      let e = Rob.make_entry ~seq ~pc ~instr ~srcs in
      (match instr with
      | Instr.Nop -> e.state <- Rob.Done
      | Instr.Fs_start cid ->
        Scope_unit.on_fs_start t.scope ~cid;
        (* scope micro-ops mutate the scope unit at dispatch — the
           closed-form spin replay cannot reproduce that *)
        Core_spin.note_dirty t;
        e.state <- Rob.Done
      | Instr.Fs_end cid ->
        Scope_unit.on_fs_end t.scope ~cid;
        Core_spin.note_dirty t;
        e.state <- Rob.Done
      | Instr.Jump target ->
        e.state <- Rob.Done;
        t.fetch_pc <- target
      | Instr.Halt ->
        e.state <- Rob.Done;
        t.fetch_stopped <- true;
        halt_fetch := true
      | Instr.Fence kind ->
        e.fence_wait <- Some (Scope_unit.fence_scope t.scope kind);
        (match Scope_unit.current_cid t.scope with
        | Some cid -> e.fence_cid <- cid
        | None -> ());
        if t.cfg.in_window_speculation || t.cfg.nop_fences then begin
          e.fence_issued <- true;
          e.state <- Rob.Done
        end
      | Instr.Load { flagged; _ } | Instr.Store { flagged; _ } | Instr.Cas { flagged; _ }
        ->
        let mask = Scope_unit.decode_mask t.scope ~flagged in
        e.scope_mask <- mask;
        Scope_unit.on_bits_set t.scope mask
      | Instr.Branch { target; _ } ->
        let predicted = Branch_pred.predict t.bpred ~pc in
        e.predicted_taken <- predicted;
        e.checkpoint <- Some (Array.copy t.rename);
        Scope_unit.on_branch t.scope ~id:seq;
        t.counts.branches <- t.counts.branches + 1;
        t.fetch_pc <- (if predicted then target else pc + 1)
      | Instr.Li _ | Instr.Alu _ | Instr.Tid _ -> ());
      (match instr with
      | Instr.Jump _ | Instr.Branch _ | Instr.Halt -> ()
      | _ -> t.fetch_pc <- pc + 1);
      (match Instr.writes_reg instr with
      | Some r -> t.rename.(Reg.index r) <- Rob.Rob seq
      | None -> ());
      Rob.dispatch t.rob e;
      decr budget
    done
  end;
  !progress
