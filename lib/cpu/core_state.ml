(* The shared state record of one out-of-order core, plus the small
   helpers every pipeline stage needs (operand lookup, ALU evaluation,
   data-plane access through the memory port).  The stages themselves
   live in Core_exec (completions, branch resolution), Core_commit,
   Core_issue and Core_frontend; Core is the public facade. *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Scope_unit = Fscope_core.Scope_unit

(* Commit-stream counters.  Stall attribution does NOT live here any
   more: every active cycle is charged to exactly one leaf of the
   [Fscope_obs.Cpi] taxonomy (see Core_commit), and the legacy stall
   counters are derived views over that table. *)
type counts = {
  mutable committed : int;
  mutable committed_mem : int;
  mutable committed_fences : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable rob_occupancy_sum : int;
  mutable active_cycles : int;
}

let fresh_counts () =
  {
    committed = 0;
    committed_mem = 0;
    committed_fences = 0;
    branches = 0;
    mispredicts = 0;
    loads = 0;
    stores = 0;
    cas_ops = 0;
    rob_occupancy_sum = 0;
    active_cycles = 0;
  }

(* Observability hooks, present only on a traced run: handles are
   resolved once at core creation so emission is a guarded write, and
   [stall_begin] pairs each Fence_stall_begin with its End. *)
type obs = {
  trace : Fscope_obs.Trace.t;
  stall_hist : Fscope_obs.Metrics.histogram;
  rob_gauge : Fscope_obs.Metrics.gauge;
  sb_gauge : Fscope_obs.Metrics.gauge;
  mutable stall_begin : int;  (* cycle the head fence began stalling; -1 = none *)
}

(* ------------------------------------------------------------------ *)
(* Spin fast-forward probe (see Core_spin for the logic).

   The engine may put a core to sleep only when its state is provably
   periodic: the commit stream re-takes the same backward edge, and
   the complete pipeline state at two consecutive loop boundaries is
   identical up to a uniform shift of every cycle- and seq-valued
   field.  The snapshot below captures exactly the state the core's
   evolution depends on, relativized so that equality of two snapshots
   implies the shifted-state equality. *)

(* One ROB entry, with seqs expressed relative to the ROB's next seq
   (dead producers — entries that already committed — map to the Arch
   sentinel, which is behaviorally identical) and completion cycles
   relative to the snapshot cycle. *)
type entry_snap = {
  s_seq : int;
  s_pc : int;
  s_instr : Instr.t;
  s_srcs : (int * int) array;  (* (relative producer; -1 = Arch, reg index) *)
  s_state : int * int;  (* (0,_) Waiting, (1,rel) Executing, (2,_) Done *)
  s_result : int;
  s_addr : int;
  s_data : int;
  s_data2 : int;
  s_mask : Fscope_core.Fsb.mask;
  s_mem_level : Fscope_obs.Event.mem_outcome option;
  s_predicted : bool;
  s_checkpoint : int array option;
}

type snapshot = {
  sn_pc : int;  (* fetch_pc *)
  sn_stopped : bool;
  sn_resume : int;  (* fetch_resume - cycle when pending, else min_int *)
  sn_arf : int array;
  sn_rename : int array;  (* relative producers *)
  sn_rob : entry_snap array;
  sn_bpred : int array;
  sn_outstanding : int array;  (* per-FSB-column outstanding counts *)
  sn_scope : (int * bool) list;  (* scope unit event-FIFO fingerprint *)
  sn_spin_pc : int;  (* spin_last_pc *)
}

(* A proven-stable spin loop, as handed to the engine: everything
   needed to account [k] skipped periods in closed form and to watch
   for the stores that could end the spin. *)
type stable = {
  armed_cycle : int;
  period : int;  (* cycles between consecutive loop boundaries *)
  d_counts : int array;  (* per-period commit-counter deltas *)
  d_cpi : int array;  (* per-period CPI-leaf deltas, in Cpi.leaves order *)
  loads_per_period : int;  (* port loads issued per period (all L1 hits) *)
  footprint : int list;  (* word addresses the loop reads *)
}

type probe = {
  mutable pr_enabled : bool;  (* engine opt-in; off in the naive loop *)
  mutable pr_boundary : bool;  (* a spinning backward edge committed this cycle *)
  mutable pr_last_cycle : int;  (* previous boundary cycle; -1 = none *)
  mutable pr_dirty : bool;  (* disqualifying event since the last boundary *)
  mutable pr_footprint : int list;  (* load addresses since the last boundary *)
  mutable pr_loads : int;
  mutable pr_arf : int array option;  (* ARF at the chain's boundaries (tier-1 gate) *)
  mutable pr_snap : snapshot option;  (* full snapshot at the previous boundary *)
  mutable pr_counts : int array;  (* commit counters at the previous boundary *)
  mutable pr_cpi : int array;  (* CPI leaves at the previous boundary *)
  mutable pr_armed : stable option;
}

let fresh_probe () =
  {
    pr_enabled = false;
    pr_boundary = false;
    pr_last_cycle = -1;
    pr_dirty = false;
    pr_footprint = [];
    pr_loads = 0;
    pr_arf = None;
    pr_snap = None;
    pr_counts = [||];
    pr_cpi = [||];
    pr_armed = None;
  }

type t = {
  id : int;
  code : Instr.t array;
  port : Mem_port.t;
  scope : Scope_unit.t;
  cfg : Exec_config.t;
  rob : Rob.t;
  sb : Store_buffer.t;
  bpred : Branch_pred.t;
  arf : int array;
  rename : Rob.producer array;
  mutable fetch_pc : int;
  mutable fetch_resume : int;
  mutable fetch_stopped : bool;
  mutable halted : bool;
  (* Committed scope nesting, innermost cid first.  Maintained at
     commit of Fs_start / Fs_end (and by the functional executor), read
     by the sampled engine to replay the architectural nesting into a
     freshly reset scope unit at a functional->detailed transition.
     Pure bookkeeping: never read by any pipeline stage. *)
  mutable arch_nest : int list;
  counts : counts;
  cpi : Fscope_obs.Cpi.t;
  (* [cycle_charged] marks that commit already charged this cycle's
     leaf (a blocked fence or a full store buffer); the end-of-step
     classification in Core.step_pipeline then stands down. *)
  mutable cycle_charged : bool;
  (* Spin detection over the commit stream: [spin_mode] is entered
     when a backward control transfer at [spin_last_pc] repeats with
     no store/CAS/fence committed in between ([spin_dirty]).  Commit
     cycles in spin mode are charged to [Spin_candidate]. *)
  mutable spin_last_pc : int;
  mutable spin_dirty : bool;
  mutable spin_mode : bool;
  (* Spin fast-forward stability probe; fed by the stages, driven by
     Core_spin, consumed by the engine.  Inert unless [pr_enabled]. *)
  spin_probe : probe;
  obs : obs option;
}

(* A source value is available if its producer has left the ROB (then
   the architectural file holds it: in-order commit guarantees no
   younger same-register producer has overwritten it yet) or has
   finished executing. *)
let src_value t cycle (s : Rob.src) =
  if Reg.equal s.reg Reg.zero then Some 0
  else
    match s.producer with
    | Rob.Arch -> Some t.arf.(Reg.index s.reg)
    | Rob.Rob seq ->
      if not (Rob.contains t.rob seq) then Some t.arf.(Reg.index s.reg)
      else (
        let p = Rob.get t.rob seq in
        match p.state with
        | Rob.Done -> Some p.result
        | Rob.Executing d when d <= cycle -> Some p.result
        | Rob.Executing _ | Rob.Waiting -> None)

let srcs_values t cycle (e : Rob.entry) =
  let n = Array.length e.srcs in
  let vals = Array.make n 0 in
  let rec go i =
    if i >= n then Some vals
    else
      match src_value t cycle e.srcs.(i) with
      | Some v ->
        vals.(i) <- v;
        go (i + 1)
      | None -> None
  in
  go 0

let eval_alu op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then 0 else a / b
  | Instr.Rem -> if b = 0 then 0 else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)
  | Instr.Slt -> if a < b then 1 else 0
  | Instr.Sle -> if a <= b then 1 else 0
  | Instr.Seq -> if a = b then 1 else 0
  | Instr.Sne -> if a <> b then 1 else 0

let in_bounds t addr = Mem_port.in_bounds t.port ~addr

let read_mem t addr = if in_bounds t addr then Mem_port.load t.port ~addr else 0
