(** The reorder buffer.

    A circular buffer of in-flight instructions indexed by a global
    sequence number ([seq]); slot = [seq mod size].  Instructions
    dispatch at the tail, execute out of order, and commit in order
    from the head.  A branch misprediction squashes every entry
    younger than the branch.

    Each entry carries the paper's per-entry fence scope bits
    ([scope_mask]) and, for fences, the wait condition captured from
    the {!Fscope_core.Scope_unit} at dispatch. *)

type producer =
  | Arch  (** value lives in the architectural register file *)
  | Rob of int  (** produced by the in-flight entry with this seq *)

type src = {
  producer : producer;
  reg : Fscope_isa.Reg.t;
}

type exec_state =
  | Waiting  (** operands not ready or structural/ordering hazard *)
  | Executing of int  (** issued; completes at the given cycle *)
  | Done

type entry = {
  seq : int;
  pc : int;
  instr : Fscope_isa.Instr.t;
  srcs : src array;  (** in the order of {!Fscope_isa.Instr.reads_regs} *)
  mutable state : exec_state;
  mutable result : int;  (** dst value: load data, ALU result, CAS success bit *)
  mutable addr : int;  (** memory address once computed; -1 = unknown *)
  mutable data : int;  (** store data / CAS desired value *)
  mutable data2 : int;  (** CAS expected value *)
  mutable scope_mask : Fscope_core.Fsb.mask;
  mutable fence_wait : [ `Global | `Mask of Fscope_core.Fsb.mask ] option;
  mutable fence_issued : bool;
  mutable fence_cid : int;
      (** fences: the class id the fence was decoded under, or -1 —
          per-scope stall attribution *)
  mutable mem_level : Fscope_obs.Event.mem_outcome option;
      (** loads/CAS: the level serving the in-flight access (set at
          issue); [None] = forwarded or not issued *)
  mutable predicted_taken : bool;
  mutable checkpoint : producer array option;  (** rename snapshot, branches only *)
}

val make_entry : seq:int -> pc:int -> instr:Fscope_isa.Instr.t -> srcs:src array -> entry

type t

val create : ?trace:Fscope_obs.Trace.t -> ?core:int -> size:int -> unit -> t
(** When [trace] is live, [dispatch] and [pop_head] emit
    [Rob_dispatch] / [Rob_commit] events for [core].  Defaults to the
    disabled {!Fscope_obs.Trace.null}. *)

val size : t -> int
val count : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val next_seq : t -> int
(** The seq the next dispatched entry must carry. *)

val dispatch : t -> entry -> unit
(** Append at the tail.  Raises [Invalid_argument] if full or if the
    entry's seq is not [next_seq]. *)

val contains : t -> int -> bool
(** Is [seq] currently in flight? *)

val get : t -> int -> entry
(** Entry by seq.  Raises [Invalid_argument] if not in flight. *)

val head : t -> entry option

val pop_head : t -> entry
(** Commit the head.  Raises [Invalid_argument] if empty. *)

val squash_after : t -> int -> entry list
(** [squash_after t seq] removes every entry with a seq strictly
    greater than [seq] and returns them (oldest first) so the caller
    can release their side state. *)

val iter : t -> (entry -> unit) -> unit
(** All in-flight entries, oldest first. *)

val exists_older : t -> int -> (entry -> bool) -> bool
(** [exists_older t seq p]: does any in-flight entry older than [seq]
    satisfy [p]? *)

val fold_older : t -> int -> ('a -> entry -> 'a) -> 'a -> 'a
(** Fold over entries older than [seq], oldest first. *)

val head_seq : t -> int
(** The seq of the oldest in-flight entry (= the next to commit). *)

val restore : t -> head_seq:int -> entry list -> unit
(** Checkpoint restore: replace the whole window with [entries], which
    must carry consecutive seqs starting at [head_seq] (oldest first).
    Emits no events. *)
