(* Spin fast-forward: the stability probe and the closed-form replay.

   A *boundary* is the end of any cycle in which a spinning backward
   edge committed (Core_commit raises [pr_boundary]; Core.step_pipeline
   calls [on_boundary] at the end of the cycle).  Arming takes three
   consecutive clean boundaries: the first anchors the chain, cheap ARF
   equality gates the second and third, and a full relativized snapshot
   built at the second must compare equal to one built at the third.

   Why one equal pair suffices: between boundaries the core's evolution
   is deterministic and shift-invariant — its only external inputs are
   the values its loads observe and the latencies the memory port
   returns, and a clean period pins both (every load hits the core's
   own L1 with unchanged data).  If the full state at boundary [n]
   equals the state at boundary [n-1] shifted by the period, the state
   at [n+1] equals the state at [n] shifted likewise, forever — until a
   cross-core store (or an invalidation of a footprint line) changes
   what the loop observes.  The engine watches exactly for that. *)

open Core_state
module Cpi = Fscope_obs.Cpi

(* ------------------------------------------------------------------ *)
(* Probe feeding: called from the pipeline stages.  All are gated on
   [pr_enabled] so the naive reference loop pays one branch at most. *)

let footprint_cap = 32

let note_dirty t =
  let pr = t.spin_probe in
  if pr.pr_enabled then pr.pr_dirty <- true

(* A load issued to the memory port.  Only own-L1 hits are compatible
   with sleeping (their values and latencies cannot change without a
   coherence action the engine can observe); anything else — a miss, a
   store-buffer forward, an out-of-bounds access — disqualifies the
   period. *)
let note_load t ~addr ~(level : Fscope_obs.Event.mem_outcome) =
  let pr = t.spin_probe in
  if pr.pr_enabled then
    match level with
    | Fscope_obs.Event.L1_hit ->
      pr.pr_loads <- pr.pr_loads + 1;
      if not (List.mem addr pr.pr_footprint) then
        if List.length pr.pr_footprint >= footprint_cap then pr.pr_dirty <- true
        else pr.pr_footprint <- addr :: pr.pr_footprint
    | _ -> pr.pr_dirty <- true

let note_boundary t =
  let pr = t.spin_probe in
  if pr.pr_enabled then pr.pr_boundary <- true

(* ------------------------------------------------------------------ *)
(* Counter vectors: the per-period deltas replayed in closed form. *)

let counts_snapshot (c : counts) =
  [|
    c.committed;
    c.committed_mem;
    c.committed_fences;
    c.branches;
    c.mispredicts;
    c.loads;
    c.stores;
    c.cas_ops;
    c.rob_occupancy_sum;
    c.active_cycles;
  |]

let counts_add (c : counts) (d : int array) ~k =
  c.committed <- c.committed + (k * d.(0));
  c.committed_mem <- c.committed_mem + (k * d.(1));
  c.committed_fences <- c.committed_fences + (k * d.(2));
  c.branches <- c.branches + (k * d.(3));
  c.mispredicts <- c.mispredicts + (k * d.(4));
  c.loads <- c.loads + (k * d.(5));
  c.stores <- c.stores + (k * d.(6));
  c.cas_ops <- c.cas_ops + (k * d.(7));
  c.rob_occupancy_sum <- c.rob_occupancy_sum + (k * d.(8));
  c.active_cycles <- c.active_cycles + (k * d.(9))

let cpi_snapshot cpi = Array.of_list (List.map (Cpi.get cpi) Cpi.leaves)
let delta prev now = Array.init (Array.length now) (fun i -> now.(i) - prev.(i))

(* ------------------------------------------------------------------ *)
(* The relativized snapshot. *)

(* A producer seq that already left the ROB is behaviorally identical
   to [Arch] (src_value falls back to the architectural file), so dead
   seqs relativize to the Arch sentinel; otherwise stale pointers from
   before the loop would drift against [base] and block arming. *)
let rel_producer t base = function
  | Rob.Arch -> -1
  | Rob.Rob s -> if Rob.contains t.rob s then base - s else -1

(* In-flight stores, CAS, fences, scope markers and halts all have
   effects the closed-form replay cannot reproduce — reject. *)
let snapshot_ok_instr (i : Fscope_isa.Instr.t) =
  match i with
  | Instr.Store _ | Instr.Cas _ | Instr.Fence _ | Instr.Fs_start _ | Instr.Fs_end _
  | Instr.Halt ->
    false
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Load _ | Instr.Branch _
  | Instr.Jump _ ->
    true

let build_snapshot t ~cycle =
  if t.halted || not (Store_buffer.is_empty t.sb) then None
  else begin
    let base = Rob.next_seq t.rob in
    let ok = ref true in
    let entries = ref [] in
    Rob.iter t.rob (fun e ->
        if not (snapshot_ok_instr e.instr) then ok := false;
        let state =
          match e.state with
          | Rob.Waiting -> (0, 0)
          | Rob.Executing d ->
            (* at the end of phase 3 every in-flight completion time is
               in the future; a stale one would not survive shifting *)
            if d <= cycle then begin
              ok := false;
              (1, 0)
            end
            else (1, d - cycle)
          | Rob.Done -> (2, 0)
        in
        entries :=
          {
            s_seq = base - e.seq;
            s_pc = e.pc;
            s_instr = e.instr;
            s_srcs =
              Array.map
                (fun (s : Rob.src) -> (rel_producer t base s.producer, Reg.index s.reg))
                e.srcs;
            s_state = state;
            s_result = e.result;
            s_addr = e.addr;
            s_data = e.data;
            s_data2 = e.data2;
            s_mask = e.scope_mask;
            s_mem_level = e.mem_level;
            s_predicted = e.predicted_taken;
            s_checkpoint = Option.map (Array.map (rel_producer t base)) e.checkpoint;
          }
          :: !entries);
    match Scope_unit.spin_fingerprint t.scope ~base with
    | None -> None
    | Some fp ->
      if not !ok then None
      else begin
        let cols = (Scope_unit.config t.scope).Scope_unit.fsb_entries in
        Some
          {
            sn_pc = t.fetch_pc;
            sn_stopped = t.fetch_stopped;
            sn_resume = (if t.fetch_resume > cycle then t.fetch_resume - cycle else min_int);
            sn_arf = Array.copy t.arf;
            sn_rename = Array.map (rel_producer t base) t.rename;
            sn_rob = Array.of_list (List.rev !entries);
            sn_bpred = Branch_pred.snapshot t.bpred;
            sn_outstanding = Array.init cols (Scope_unit.outstanding t.scope);
            sn_scope = fp;
            sn_spin_pc = t.spin_last_pc;
          }
      end
  end

(* ------------------------------------------------------------------ *)
(* Boundary processing. *)

let arf_equal (a : int array) (b : int array) =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  Array.length b = n && go 0

let on_boundary t ~cycle =
  let pr = t.spin_probe in
  let clean =
    (not pr.pr_dirty)
    && pr.pr_last_cycle >= 0
    && cycle > pr.pr_last_cycle
    && Store_buffer.is_empty t.sb
  in
  let chained =
    clean && match pr.pr_arf with Some a -> arf_equal a t.arf | None -> false
  in
  if not chained then begin
    (* restart the chain at this boundary *)
    pr.pr_snap <- None;
    match pr.pr_arf with
    | Some a when Array.length a = Array.length t.arf ->
      Array.blit t.arf 0 a 0 (Array.length a)
    | _ -> pr.pr_arf <- Some (Array.copy t.arf)
  end
  else begin
    match pr.pr_snap with
    | None -> pr.pr_snap <- build_snapshot t ~cycle
    | Some prev -> (
      match build_snapshot t ~cycle with
      | Some s when s = prev ->
        pr.pr_armed <-
          Some
            {
              armed_cycle = cycle;
              period = cycle - pr.pr_last_cycle;
              d_counts = delta pr.pr_counts (counts_snapshot t.counts);
              d_cpi = delta pr.pr_cpi (cpi_snapshot t.cpi);
              loads_per_period = pr.pr_loads;
              footprint = pr.pr_footprint;
            }
      | snap -> pr.pr_snap <- snap)
  end;
  (* start accumulating the next period *)
  pr.pr_last_cycle <- cycle;
  pr.pr_dirty <- false;
  pr.pr_footprint <- [];
  pr.pr_loads <- 0;
  pr.pr_counts <- counts_snapshot t.counts;
  pr.pr_cpi <- cpi_snapshot t.cpi

(* ------------------------------------------------------------------ *)
(* Engine interface. *)

let poll t ~cycle =
  let pr = t.spin_probe in
  match pr.pr_armed with
  | Some st ->
    pr.pr_armed <- None;
    if st.armed_cycle = cycle then Some st else None
  | None -> None

let cancel t =
  let pr = t.spin_probe in
  pr.pr_boundary <- false;
  pr.pr_last_cycle <- -1;
  pr.pr_dirty <- false;
  pr.pr_footprint <- [];
  pr.pr_loads <- 0;
  pr.pr_arf <- None;
  pr.pr_snap <- None;
  pr.pr_armed <- None

(* Account [k] skipped periods in closed form: every commit counter and
   CPI leaf advances by [k] times its per-period delta, and every
   cycle-valued piece of live state shifts by [k * period] so the state
   equals what naive stepping would have produced at
   [armed_cycle + k * period]. *)
let replay t ~(stable : stable) ~k =
  if k > 0 then begin
    let shift = k * stable.period in
    counts_add t.counts stable.d_counts ~k;
    List.iteri (fun i leaf -> Cpi.charge_n t.cpi leaf ~times:(k * stable.d_cpi.(i))) Cpi.leaves;
    Rob.iter t.rob (fun e ->
        match e.state with
        | Rob.Executing d -> e.state <- Rob.Executing (d + shift)
        | Rob.Waiting | Rob.Done -> ());
    if t.fetch_resume > stable.armed_cycle then t.fetch_resume <- t.fetch_resume + shift
  end
