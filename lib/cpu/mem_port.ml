type kind =
  | Read
  | Write
  | Rmw

type t = {
  size : int;
  issue : core:int -> kind -> addr:int -> now:int -> int * Fscope_obs.Event.mem_outcome;
  load : addr:int -> int;
  store : addr:int -> value:int -> unit;
}

let make ~size ~issue ~load ~store = { size; issue; load; store }

let issue_classified t ~core kind ~addr ~now = t.issue ~core kind ~addr ~now
let issue t ~core kind ~addr ~now = fst (t.issue ~core kind ~addr ~now)
let load t ~addr = t.load ~addr
let store t ~addr ~value = t.store ~addr ~value
let size t = t.size
let in_bounds t ~addr = addr >= 0 && addr < t.size
