type producer =
  | Arch
  | Rob of int

type src = {
  producer : producer;
  reg : Fscope_isa.Reg.t;
}

type exec_state =
  | Waiting
  | Executing of int
  | Done

type entry = {
  seq : int;
  pc : int;
  instr : Fscope_isa.Instr.t;
  srcs : src array;
  mutable state : exec_state;
  mutable result : int;
  mutable addr : int;
  mutable data : int;
  mutable data2 : int;
  mutable scope_mask : Fscope_core.Fsb.mask;
  mutable fence_wait : [ `Global | `Mask of Fscope_core.Fsb.mask ] option;
  mutable fence_issued : bool;
  mutable fence_cid : int;
  mutable mem_level : Fscope_obs.Event.mem_outcome option;
  mutable predicted_taken : bool;
  mutable checkpoint : producer array option;
}

let make_entry ~seq ~pc ~instr ~srcs =
  {
    seq;
    pc;
    instr;
    srcs;
    state = Waiting;
    result = 0;
    addr = -1;
    data = 0;
    data2 = 0;
    scope_mask = Fscope_core.Fsb.empty;
    fence_wait = None;
    fence_issued = false;
    fence_cid = -1;
    mem_level = None;
    predicted_taken = false;
    checkpoint = None;
  }

type t = {
  size : int;
  slots : entry option array;
  mutable head_seq : int;
  mutable tail_seq : int;
  trace : Fscope_obs.Trace.t;
  core : int;
}

let create ?(trace = Fscope_obs.Trace.null) ?(core = 0) ~size () =
  if size <= 0 then invalid_arg "Rob.create: size must be positive";
  { size; slots = Array.make size None; head_seq = 0; tail_seq = 0; trace; core }

let instr_class (i : Fscope_isa.Instr.t) : Fscope_obs.Event.instr_class =
  match i with
  | Fscope_isa.Instr.Load _ -> Fscope_obs.Event.Load
  | Fscope_isa.Instr.Store _ -> Fscope_obs.Event.Store
  | Fscope_isa.Instr.Cas _ -> Fscope_obs.Event.Cas
  | Fscope_isa.Instr.Fence _ -> Fscope_obs.Event.Fence
  | Fscope_isa.Instr.Branch _ -> Fscope_obs.Event.Branch
  | Fscope_isa.Instr.Jump _ -> Fscope_obs.Event.Jump
  | Fscope_isa.Instr.Li _ | Fscope_isa.Instr.Alu _ | Fscope_isa.Instr.Tid _ ->
    Fscope_obs.Event.Alu
  | Fscope_isa.Instr.Nop | Fscope_isa.Instr.Fs_start _ | Fscope_isa.Instr.Fs_end _
  | Fscope_isa.Instr.Halt ->
    Fscope_obs.Event.Other

let size t = t.size
let count t = t.tail_seq - t.head_seq
let is_full t = count t >= t.size
let is_empty t = count t = 0
let next_seq t = t.tail_seq

let dispatch t entry =
  if is_full t then invalid_arg "Rob.dispatch: full";
  if entry.seq <> t.tail_seq then invalid_arg "Rob.dispatch: wrong seq";
  t.slots.(entry.seq mod t.size) <- Some entry;
  t.tail_seq <- t.tail_seq + 1;
  if Fscope_obs.Trace.on t.trace then
    Fscope_obs.Trace.emit t.trace ~core:t.core
      (Fscope_obs.Event.Rob_dispatch { pc = entry.pc; cls = instr_class entry.instr })

let contains t seq = seq >= t.head_seq && seq < t.tail_seq

let get t seq =
  if not (contains t seq) then invalid_arg "Rob.get: seq not in flight";
  match t.slots.(seq mod t.size) with
  | Some e -> e
  | None -> assert false

let head t = if is_empty t then None else Some (get t t.head_seq)

let pop_head t =
  if is_empty t then invalid_arg "Rob.pop_head: empty";
  let e = get t t.head_seq in
  t.slots.(t.head_seq mod t.size) <- None;
  t.head_seq <- t.head_seq + 1;
  if Fscope_obs.Trace.on t.trace then
    Fscope_obs.Trace.emit t.trace ~core:t.core
      (Fscope_obs.Event.Rob_commit { pc = e.pc; cls = instr_class e.instr });
  e

let squash_after t seq =
  let removed = ref [] in
  for s = t.tail_seq - 1 downto max (seq + 1) t.head_seq do
    removed := get t s :: !removed;
    t.slots.(s mod t.size) <- None
  done;
  if seq + 1 < t.tail_seq then t.tail_seq <- max (seq + 1) t.head_seq;
  !removed

let iter t f =
  for s = t.head_seq to t.tail_seq - 1 do
    f (get t s)
  done

let exists_older t seq p =
  let rec go s = s < min seq t.tail_seq && s >= t.head_seq && (p (get t s) || go (s + 1)) in
  go t.head_seq

let fold_older t seq f init =
  let acc = ref init in
  for s = t.head_seq to min seq t.tail_seq - 1 do
    if s < seq then acc := f !acc (get t s)
  done;
  !acc

let head_seq t = t.head_seq

(* Checkpoint restore: overwrite the whole window.  Entries must be
   consecutive by seq starting at [head_seq] (the caller rebuilt them
   from a serialized snapshot); emits nothing — checkpointing is an
   untraced-run facility. *)
let restore t ~head_seq entries =
  if List.length entries > t.size then invalid_arg "Rob.restore: too many entries";
  Array.fill t.slots 0 t.size None;
  t.head_seq <- head_seq;
  t.tail_seq <- head_seq;
  List.iter
    (fun e ->
      if e.seq <> t.tail_seq then invalid_arg "Rob.restore: non-consecutive seq";
      t.slots.(e.seq mod t.size) <- Some e;
      t.tail_seq <- t.tail_seq + 1)
    entries
