(* Whole-core checkpointing, and the architectural flush / reseed
   protocol the sampled engine uses at detailed<->functional
   transitions.

   Unlike the spin probe's snapshot (Core_spin.build_snapshot), which
   relativizes every cycle- and seq-valued field so two loop boundaries
   compare equal, a checkpoint keeps everything ABSOLUTE: it is taken
   at the top of the engine's cycle loop and restored into a machine
   rebuilt at the same cycle, so completion deadlines, fetch-resume
   points and ROB seqs are valid verbatim.  Instructions are never
   serialized — an entry stores its pc and the restore re-reads
   [code.(pc)]; the machine-level digest check guarantees the program
   is the same one.

   Checkpointing is restricted to untraced runs (no [obs] state) with
   no armed spin certificate at the capture point (the engine force-
   wakes sleepers first), so neither is serialized. *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Scope_unit = Fscope_core.Scope_unit
module Cpi = Fscope_obs.Cpi
module Json = Fscope_util.Json
open Core_state

(* ------------------------------------------------------------------ *)
(* Field codecs                                                        *)

let producer_to_int = function Rob.Arch -> -1 | Rob.Rob s -> s
let producer_of_int s = if s < 0 then Rob.Arch else Rob.Rob s

let state_to_json = function
  | Rob.Waiting -> Json.Arr [ Json.Int 0 ]
  | Rob.Executing d -> Json.Arr [ Json.Int 1; Json.Int d ]
  | Rob.Done -> Json.Arr [ Json.Int 2 ]

let state_of_json j =
  match Json.list_exn j with
  | [ Json.Int 0 ] -> Rob.Waiting
  | [ Json.Int 1; d ] -> Rob.Executing (Json.int_exn d)
  | [ Json.Int 2 ] -> Rob.Done
  | _ -> failwith "checkpoint: malformed exec state"

let fence_wait_to_json = function
  | None -> Json.Null
  | Some `Global -> Json.Str "g"
  | Some (`Mask m) -> Json.Int m

let fence_wait_of_json = function
  | Json.Null -> None
  | Json.Str "g" -> Some `Global
  | Json.Int m -> Some (`Mask m)
  | _ -> failwith "checkpoint: malformed fence wait"

let mem_level_to_int = function
  | None -> -1
  | Some Fscope_obs.Event.L1_hit -> 0
  | Some Fscope_obs.Event.L2_hit -> 1
  | Some Fscope_obs.Event.L2_miss -> 2

let mem_level_of_int = function
  | -1 -> None
  | 0 -> Some Fscope_obs.Event.L1_hit
  | 1 -> Some Fscope_obs.Event.L2_hit
  | 2 -> Some Fscope_obs.Event.L2_miss
  | _ -> failwith "checkpoint: malformed mem level"

let entry_to_json (e : Rob.entry) =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("pc", Json.Int e.pc);
      ("srcs", Json.of_int_list (List.map (fun (s : Rob.src) -> producer_to_int s.producer) (Array.to_list e.srcs)));
      ("state", state_to_json e.state);
      ("result", Json.Int e.result);
      ("addr", Json.Int e.addr);
      ("data", Json.Int e.data);
      ("data2", Json.Int e.data2);
      ("mask", Json.Int e.scope_mask);
      ("fw", fence_wait_to_json e.fence_wait);
      ("fi", Json.Bool e.fence_issued);
      ("fcid", Json.Int e.fence_cid);
      ("ml", Json.Int (mem_level_to_int e.mem_level));
      ("pt", Json.Bool e.predicted_taken);
      ( "cp",
        match e.checkpoint with
        | None -> Json.Null
        | Some cp -> Json.of_int_list (List.map producer_to_int (Array.to_list cp)) );
    ]

(* Rebuild an entry exactly as dispatch would have: the instruction is
   re-read from the code image and the positional source list from
   [Core_frontend.explicit_srcs] — duplicates and order preserved —
   with the serialized producers zipped back in. *)
let entry_of_json (t : t) j =
  let pc = Json.int_exn (Json.get "pc" j) in
  if pc < 0 || pc >= Array.length t.code then failwith "checkpoint: entry pc out of range";
  let instr = t.code.(pc) in
  let producers = Json.int_list_exn (Json.get "srcs" j) in
  let regs = Core_frontend.explicit_srcs instr in
  if List.length producers <> List.length regs then
    failwith "checkpoint: source arity mismatch (program changed?)";
  let srcs =
    Array.of_list
      (List.map2
         (fun r p -> { Rob.producer = producer_of_int p; reg = r })
         regs producers)
  in
  let e = Rob.make_entry ~seq:(Json.int_exn (Json.get "seq" j)) ~pc ~instr ~srcs in
  e.state <- state_of_json (Json.get "state" j);
  e.result <- Json.int_exn (Json.get "result" j);
  e.addr <- Json.int_exn (Json.get "addr" j);
  e.data <- Json.int_exn (Json.get "data" j);
  e.data2 <- Json.int_exn (Json.get "data2" j);
  e.scope_mask <- Json.int_exn (Json.get "mask" j);
  e.fence_wait <- fence_wait_of_json (Json.get "fw" j);
  e.fence_issued <- Json.bool_exn (Json.get "fi" j);
  e.fence_cid <- Json.int_exn (Json.get "fcid" j);
  e.mem_level <- mem_level_of_int (Json.int_exn (Json.get "ml" j));
  e.predicted_taken <- Json.bool_exn (Json.get "pt" j);
  (e.checkpoint <-
     (match Json.get "cp" j with
     | Json.Null -> None
     | cp -> Some (Array.of_list (List.map producer_of_int (Json.int_list_exn cp)))));
  e

let counts_to_json (c : counts) =
  Json.of_int_list
    [
      c.committed;
      c.committed_mem;
      c.committed_fences;
      c.branches;
      c.mispredicts;
      c.loads;
      c.stores;
      c.cas_ops;
      c.rob_occupancy_sum;
      c.active_cycles;
    ]

let counts_restore_list (c : counts) = function
  | [ a0; a1; a2; a3; a4; a5; a6; a7; a8; a9 ] ->
    c.committed <- a0;
    c.committed_mem <- a1;
    c.committed_fences <- a2;
    c.branches <- a3;
    c.mispredicts <- a4;
    c.loads <- a5;
    c.stores <- a6;
    c.cas_ops <- a7;
    c.rob_occupancy_sum <- a8;
    c.active_cycles <- a9
  | _ -> failwith "checkpoint: malformed counts"

(* ------------------------------------------------------------------ *)
(* Whole-core snapshot / restore                                       *)

let snapshot (t : t) =
  let rob_entries = ref [] in
  Rob.iter t.rob (fun e -> rob_entries := entry_to_json e :: !rob_entries);
  let sb_entries = ref [] in
  Store_buffer.iter t.sb (fun (en : Store_buffer.entry) ->
      sb_entries :=
        Json.of_int_list [ en.addr; en.value; en.mask; en.done_at ] :: !sb_entries);
  Json.Obj
    [
      ("fetch_pc", Json.Int t.fetch_pc);
      ("fetch_resume", Json.Int t.fetch_resume);
      ("fetch_stopped", Json.Bool t.fetch_stopped);
      ("halted", Json.Bool t.halted);
      ("arch_nest", Json.of_int_list t.arch_nest);
      ("arf", Json.of_int_array t.arf);
      ("rename", Json.of_int_list (List.map producer_to_int (Array.to_list t.rename)));
      ("rob_head", Json.Int (Rob.head_seq t.rob));
      ("rob", Json.Arr (List.rev !rob_entries));
      ("sb", Json.Arr (List.rev !sb_entries));
      ("bpred", Json.of_int_array (Branch_pred.snapshot t.bpred));
      ("counts", counts_to_json t.counts);
      ("cpi", Json.of_int_array (Cpi.to_array t.cpi));
      ("spin_last_pc", Json.Int t.spin_last_pc);
      ("spin_dirty", Json.Bool t.spin_dirty);
      ("spin_mode", Json.Bool t.spin_mode);
      ("scope", Scope_unit.to_json t.scope);
    ]

let restore (t : t) j =
  t.fetch_pc <- Json.int_exn (Json.get "fetch_pc" j);
  t.fetch_resume <- Json.int_exn (Json.get "fetch_resume" j);
  t.fetch_stopped <- Json.bool_exn (Json.get "fetch_stopped" j);
  t.halted <- Json.bool_exn (Json.get "halted" j);
  t.arch_nest <- Json.int_list_exn (Json.get "arch_nest" j);
  let arf = Json.int_array_exn (Json.get "arf" j) in
  if Array.length arf <> Array.length t.arf then failwith "checkpoint: ARF size mismatch";
  Array.blit arf 0 t.arf 0 (Array.length arf);
  let rename = Json.int_list_exn (Json.get "rename" j) in
  if List.length rename <> Array.length t.rename then
    failwith "checkpoint: rename size mismatch";
  List.iteri (fun i p -> t.rename.(i) <- producer_of_int p) rename;
  Rob.restore t.rob
    ~head_seq:(Json.int_exn (Json.get "rob_head" j))
    (List.map (entry_of_json t) (Json.list_exn (Json.get "rob" j)));
  Store_buffer.restore t.sb
    (List.map
       (fun en ->
         match Json.int_list_exn en with
         | [ addr; value; mask; done_at ] -> { Store_buffer.addr; value; mask; done_at }
         | _ -> failwith "checkpoint: malformed store-buffer entry")
       (Json.list_exn (Json.get "sb" j)));
  Branch_pred.restore t.bpred (Json.int_array_exn (Json.get "bpred" j));
  counts_restore_list t.counts (Json.int_list_exn (Json.get "counts" j));
  Cpi.restore t.cpi (Json.int_array_exn (Json.get "cpi" j));
  t.spin_last_pc <- Json.int_exn (Json.get "spin_last_pc" j);
  t.spin_dirty <- Json.bool_exn (Json.get "spin_dirty" j);
  t.spin_mode <- Json.bool_exn (Json.get "spin_mode" j);
  Scope_unit.restore t.scope (Json.get "scope" j);
  (* a restored core starts with a clean probe — re-arming needs fresh
     boundaries, which costs nothing and keeps probe state out of the
     format *)
  t.cycle_charged <- false;
  Core_spin.cancel t

(* ------------------------------------------------------------------ *)
(* Sampled-mode transitions                                            *)

(* Detailed -> functional: collapse the core to architectural state.
   The oldest un-committed instruction (ROB head) defines the
   architectural pc; committed stores sitting in the store buffer are
   already globally ordered, so they drain to memory in FIFO order;
   all speculative work is discarded (the functional executor simply
   re-executes it).  Timing state — caches, predictor — is left warm
   on purpose: that is what the post-fast-forward warmup refines. *)
(* A CAS performs its RMW at its completion point, BEFORE commit
   (Core_exec.step_complete_writes): a [Done] CAS in the ROB has
   already written memory, so discarding it in [flush_arch] would let
   the functional executor apply the RMW a second time.  An
   [Executing] CAS has not written yet — the write only fires for an
   entry still in the ROB at its deadline — and [cas_issue_ok]
   guarantees it is non-speculative, so discarding and re-executing it
   functionally is a valid (merely different) execution.  The sampled
   engine flushes a core only when this predicate holds, stepping it
   detailed until the completed CAS commits. *)
let flushable (t : t) =
  let ok = ref true in
  Rob.iter t.rob (fun e ->
      match (e.Rob.instr, e.Rob.state) with
      | Instr.Cas _, Rob.Done -> ok := false
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
  !ok

(* Fetch suppression for a flushed core while the other cores settle
   to their own flush points: with an empty ROB, a drained store
   buffer and fetch parked, stepping the core is a no-op, so its
   architectural state stays exactly where [flush_arch] put it. *)
let park (t : t) = t.fetch_resume <- max_int
let unpark (t : t) = if t.fetch_resume = max_int then t.fetch_resume <- 0

let flush_arch (t : t) =
  let pc = match Rob.head t.rob with Some e -> e.Rob.pc | None -> t.fetch_pc in
  Store_buffer.iter t.sb (fun (en : Store_buffer.entry) ->
      Mem_port.store t.port ~addr:en.addr ~value:en.value);
  Store_buffer.restore t.sb [];
  Rob.restore t.rob ~head_seq:(Rob.next_seq t.rob) [];
  Array.fill t.rename 0 (Array.length t.rename) Rob.Arch;
  t.fetch_pc <- pc;
  t.fetch_resume <- 0;
  t.fetch_stopped <- t.halted;
  t.cycle_charged <- false;
  t.spin_last_pc <- -1;
  t.spin_dirty <- true;
  t.spin_mode <- false;
  Core_spin.cancel t

(* Functional -> detailed: the scope unit's speculative machinery was
   left behind at the flush, so rebuild it from the committed nesting
   the executor maintained. *)
let reseed_scope (t : t) =
  Scope_unit.reset t.scope;
  List.iter (fun cid -> Scope_unit.on_fs_start t.scope ~cid) (List.rev t.arch_nest)

(* Warmup erasure: the sampled engine runs [warmup] detailed cycles to
   re-warm pipeline state, then discards their MICRO-ARCHITECTURAL
   accounting (mispredicts, occupancy, active cycles, CPI leaves) so
   only the measured window contributes to the extrapolated metrics.
   The exact event counters (commits, memory ops, fences, ...) are
   real forward progress — warmup instructions execute once, not
   again — and are never erased. *)
let counters_snapshot (t : t) =
  ( [| t.counts.mispredicts; t.counts.rob_occupancy_sum; t.counts.active_cycles |],
    Cpi.to_array t.cpi )

let counters_restore (t : t) (a, cpi) =
  (match a with
  | [| m; r; ac |] ->
    t.counts.mispredicts <- m;
    t.counts.rob_occupancy_sum <- r;
    t.counts.active_cycles <- ac
  | _ -> invalid_arg "Core.counters_restore: malformed snapshot");
  Cpi.restore t.cpi cpi

(* Scale the measured micro-architectural metrics to the whole run:
   [total] committed instructions were executed, [measured] of them
   inside measured detailed windows, so each cycle-valued metric grows
   by [total/measured] (integer arithmetic; [active_cycles] is re-set
   to the sum of the scaled leaves so the leaves-sum-to-active
   invariant survives scaling). *)
let extrapolate (t : t) ~total ~measured =
  if measured > 0 && total > measured then begin
    let scale x = x * total / measured in
    let scaled = Array.map scale (Cpi.to_array t.cpi) in
    Cpi.restore t.cpi scaled;
    t.counts.mispredicts <- scale t.counts.mispredicts;
    t.counts.rob_occupancy_sum <- scale t.counts.rob_occupancy_sum;
    t.counts.active_cycles <- Array.fold_left ( + ) 0 scaled
  end
