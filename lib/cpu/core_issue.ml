(* Out-of-order issue with conservative memory disambiguation and
   store-to-load forwarding.

   Progress reporting matters here beyond the obvious issue slots:
   computing a store/load/CAS address (even when the access cannot
   issue yet) mutates disambiguation state that younger entries see,
   so it must count as progress for the fast-forwarding engine. *)

module Instr = Fscope_isa.Instr
module Fsb = Fscope_core.Fsb
open Core_state

(* Is an older entry something the fence's flavour must still wait
   for?  Loads and CAS: until their value is bound (CAS also writes, so
   it is in both classes).  Stores: as long as they are in the ROB they
   have not even reached the store buffer. *)
let mem_incomplete (k : Fscope_isa.Fence_kind.t) (o : Rob.entry) =
  match o.instr with
  | Instr.Load _ -> k.Fscope_isa.Fence_kind.wait_loads && o.state <> Rob.Done
  | Instr.Cas _ ->
    (k.Fscope_isa.Fence_kind.wait_loads || k.Fscope_isa.Fence_kind.wait_stores)
    && o.state <> Rob.Done
  | Instr.Store _ -> k.Fscope_isa.Fence_kind.wait_stores
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fence _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    false

let fence_kind (e : Rob.entry) =
  match e.instr with
  | Instr.Fence k -> k
  | _ -> assert false

let fence_issue_ok t (e : Rob.entry) =
  let k = fence_kind e in
  let sb_ok mask_opt =
    (not k.Fscope_isa.Fence_kind.wait_stores)
    ||
    match mask_opt with
    | None -> Store_buffer.is_empty t.sb
    | Some m -> not (Store_buffer.mask_overlaps t.sb m)
  in
  match e.fence_wait with
  | None -> assert false
  | Some `Global ->
    (not (Rob.exists_older t.rob e.seq (mem_incomplete k))) && sb_ok None
  | Some (`Mask m) ->
    (not
       (Rob.exists_older t.rob e.seq (fun o ->
            (not (Fsb.is_empty (Fsb.inter o.scope_mask m))) && mem_incomplete k o)))
    && sb_ok (Some m)

(* What should an issuing load do about the youngest older same-address
   memory operation? *)
type load_source =
  | From_memory
  | Forward of int
  | Must_wait

let load_disambiguate t (e : Rob.entry) =
  (* Any older store/CAS with an unknown address, or older same-address
     load still in flight, blocks the load (conservative
     disambiguation; same-address load-load order is coherence). *)
  if
    Rob.exists_older t.rob e.seq (fun o ->
        match o.instr with
        | Instr.Store _ | Instr.Cas _ -> o.addr < 0
        | Instr.Load _ -> o.addr = e.addr && o.state <> Rob.Done
        | _ -> false)
  then Must_wait
  else begin
    (* Youngest older same-address writer in the ROB decides. *)
    let matching =
      Rob.fold_older t.rob e.seq
        (fun acc o ->
          match o.instr with
          | (Instr.Store _ | Instr.Cas _) when o.addr = e.addr -> Some o
          | _ -> acc)
        None
    in
    match matching with
    | Some ({ instr = Instr.Store _; _ } as o) ->
      if o.state = Rob.Done then Forward o.data else Must_wait
    | Some ({ instr = Instr.Cas _; _ } as o) ->
      (* A completed CAS has already written memory; the load can read
         it there.  (No younger committed store can sit in the store
         buffer while the CAS is still in the ROB: commit is in
         order, and the CAS's own issue condition drained older
         same-address entries.) *)
      if o.state = Rob.Done then From_memory else Must_wait
    | Some _ | None -> (
      match Store_buffer.forward t.sb ~addr:e.addr with
      | Some v -> Forward v
      | None -> From_memory)
  end

let try_issue_load t (e : Rob.entry) ~cycle =
  match load_disambiguate t e with
  | Must_wait -> false
  | Forward v ->
    e.result <- v;
    e.data2 <- 1;
    e.state <- Rob.Executing (cycle + 1);
    (* a forward implies a store in flight — not a stable spin *)
    Core_spin.note_dirty t;
    true
  | From_memory ->
    if in_bounds t e.addr then begin
      let completes, level =
        Mem_port.issue_classified t.port ~core:t.id Mem_port.Read ~addr:e.addr
          ~now:cycle
      in
      e.data2 <- 0;
      e.mem_level <- Some level;
      e.state <- Rob.Executing completes;
      Core_spin.note_load t ~addr:e.addr ~level
    end
    else begin
      (* Wrong-path access to a garbage address: complete immediately
         with 0 and leave the caches untouched. *)
      e.result <- 0;
      e.data2 <- 1;
      e.state <- Rob.Executing (cycle + 1);
      Core_spin.note_dirty t
    end;
    true

let cas_issue_ok t (e : Rob.entry) =
  (* CAS performs a memory write at completion, which cannot be undone:
     it must be non-speculative (no unresolved older branch, no older
     uncommitted fence) and ordered after every older same-address
     access. *)
  (not
     (Rob.exists_older t.rob e.seq (fun o ->
          match o.instr with
          | Instr.Branch _ -> o.state <> Rob.Done
          | Instr.Fence _ -> not t.cfg.nop_fences
          | Instr.Store _ -> o.addr < 0 || o.addr = e.addr
          | Instr.Cas _ -> o.addr < 0 || (o.addr = e.addr && o.state <> Rob.Done)
          | Instr.Load _ -> o.addr = e.addr && o.state <> Rob.Done
          | _ -> false)))
  && not (Store_buffer.has_addr t.sb ~addr:e.addr)

let issue t ~cycle =
  let progress = ref false in
  let budget = ref t.cfg.issue_width in
  (* In the non-speculative pipeline, an unissued fence whose flavour
     has [block_loads] blocks the issue of every younger load; any
     unissued fence blocks younger CAS and keeps younger fences from
     issuing (fences issue oldest-first). *)
  let pending_fence = ref false in
  let pending_blocking_fence = ref false in
  Rob.iter t.rob (fun e ->
      if !budget > 0 then begin
        match (e.instr, e.state) with
        | Instr.Fence k, _ when not e.fence_issued ->
          if (not t.cfg.in_window_speculation) && not !pending_fence then begin
            if fence_issue_ok t e then begin
              e.fence_issued <- true;
              e.state <- Rob.Done;
              progress := true;
              decr budget
            end
            else begin
              pending_fence := true;
              if k.Fscope_isa.Fence_kind.block_loads then pending_blocking_fence := true
            end
          end
          else begin
            pending_fence := true;
            if k.Fscope_isa.Fence_kind.block_loads then pending_blocking_fence := true
          end
        | Instr.Li (_, v), Rob.Waiting ->
          e.result <- v;
          e.state <- Rob.Executing (cycle + 1);
          progress := true;
          decr budget
        | Instr.Tid _, Rob.Waiting ->
          e.result <- t.id;
          e.state <- Rob.Executing (cycle + 1);
          progress := true;
          decr budget
        | Instr.Alu (op, _, _, operand), Rob.Waiting -> (
          match srcs_values t cycle e with
          | None -> ()
          | Some vals ->
            let a = vals.(0) in
            let b = match operand with Instr.Reg _ -> vals.(1) | Instr.Imm i -> i in
            e.result <- eval_alu op a b;
            e.state <- Rob.Executing (cycle + 1);
            progress := true;
            decr budget)
        | Instr.Branch { cond; _ }, Rob.Waiting -> (
          match srcs_values t cycle e with
          | None -> ()
          | Some vals ->
            let v = vals.(0) in
            let taken =
              match cond with Instr.Eqz -> v = 0 | Instr.Nez -> v <> 0
            in
            e.result <- (if taken then 1 else 0);
            e.state <- Rob.Executing (cycle + 1);
            progress := true;
            decr budget)
        | Instr.Store { off; _ }, Rob.Waiting ->
          (* Address generation does not wait for the data: younger
             loads disambiguate against the address as soon as the
             base register is ready. *)
          if e.addr < 0 then begin
            match src_value t cycle e.srcs.(1) with
            | Some base ->
              e.addr <- base + off;
              progress := true
            | None -> ()
          end;
          (match src_value t cycle e.srcs.(0) with
          | Some data when e.addr >= 0 ->
            e.data <- data;
            e.state <- Rob.Executing (cycle + 1);
            progress := true;
            decr budget
          | Some _ | None -> ())
        | Instr.Load { off; _ }, Rob.Waiting ->
          (* Address generation is free as soon as the base is ready;
             the issue slot is only spent on the actual access. *)
          if e.addr < 0 then begin
            match src_value t cycle e.srcs.(0) with
            | Some base ->
              e.addr <- base + off;
              progress := true
            | None -> ()
          end;
          if e.addr >= 0
             && ((not !pending_blocking_fence) || t.cfg.in_window_speculation)
             && try_issue_load t e ~cycle
          then begin
            progress := true;
            decr budget
          end
        | Instr.Cas { off; _ }, Rob.Waiting ->
          if e.addr < 0 then begin
            match srcs_values t cycle e with
            | Some vals ->
              e.addr <- vals.(0) + off;
              e.data2 <- vals.(1);
              e.data <- vals.(2);
              progress := true
            | None -> ()
          end;
          if e.addr >= 0
             && (not !pending_fence) (* CAS never passes a fence speculatively *)
             && cas_issue_ok t e
          then begin
            if not (in_bounds t e.addr) then
              invalid_arg
                (Printf.sprintf "core %d: CAS on out-of-bounds address %d (pc %d)" t.id
                   e.addr e.pc);
            let completes, level =
              Mem_port.issue_classified t.port ~core:t.id Mem_port.Rmw ~addr:e.addr
                ~now:cycle
            in
            e.mem_level <- Some level;
            e.state <- Rob.Executing completes;
            progress := true;
            decr budget
          end
        | ( ( Instr.Nop | Instr.Jump _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt
            | Instr.Fence _ ),
            _ )
        | _, (Rob.Executing _ | Rob.Done) ->
          ()
      end);
  !progress
