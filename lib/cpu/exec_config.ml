type t = {
  rob_size : int;
  sb_size : int;
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  mispredict_penalty : int;
  in_window_speculation : bool;
  nop_fences : bool;
  bpred_entries : int;
  spin_fastforward : bool;
}

let default =
  {
    rob_size = 128;
    sb_size = 8;
    fetch_width = 4;
    issue_width = 4;
    commit_width = 4;
    mispredict_penalty = 5;
    in_window_speculation = false;
    nop_fences = false;
    bpred_entries = 512;
    spin_fastforward = true;
  }

let validate t =
  let check name v = if v <= 0 then invalid_arg ("Exec_config: " ^ name ^ " must be positive") in
  check "rob_size" t.rob_size;
  check "sb_size" t.sb_size;
  check "fetch_width" t.fetch_width;
  check "issue_width" t.issue_width;
  check "commit_width" t.commit_width;
  check "bpred_entries" t.bpred_entries;
  if t.mispredict_penalty < 0 then invalid_arg "Exec_config: negative mispredict_penalty";
  if t.bpred_entries land (t.bpred_entries - 1) <> 0 then
    invalid_arg "Exec_config: bpred_entries must be a power of two"
