(** The core's window onto the memory system.

    A [Mem_port.t] is the only thing a {!Core} holds about memory: a
    typed transaction interface (read / write / read-modify-write,
    each answered with the absolute cycle at which the access
    completes) plus data-plane access to the flat backing store.  The
    machine layer constructs the port from the concrete cache
    hierarchy and the shared memory image; the core never sees either,
    which is the seam alternative memory models (sharded backends,
    trace-driven replay, idealized memory) plug into.

    Contracts the core relies on:
    - [issue] both *simulates* the access (mutating whatever timing
      state the backend keeps) and returns its completion cycle, which
      is always strictly greater than [now];
    - [load]/[store] touch only the data plane and are exact-cycle
      operations: the machine calls them at the completion points the
      port returned, which is what gives the simulated machine its
      relaxed visibility order;
    - addresses passed to [issue]/[load]/[store] are in bounds (the
      core checks [in_bounds] first and handles wrong-path garbage
      addresses itself). *)

type kind =
  | Read
  | Write
  | Rmw  (** compare-and-swap: needs exclusive ownership, like a write *)

type t

val make :
  size:int ->
  issue:
    (core:int -> kind -> addr:int -> now:int -> int * Fscope_obs.Event.mem_outcome) ->
  load:(addr:int -> int) ->
  store:(addr:int -> value:int -> unit) ->
  t
(** [size] is the word count of the backing store (bounds checks);
    [issue ~core kind ~addr ~now] simulates one access issued at cycle
    [now] and returns its completion cycle plus the level that served
    it (L1 hit / L2 hit / L2 miss — the cycle-accounting profiler
    charges head-of-ROB memory stalls to that level). *)

val issue : t -> core:int -> kind -> addr:int -> now:int -> int
(** Completion cycle only. *)

val issue_classified :
  t -> core:int -> kind -> addr:int -> now:int -> int * Fscope_obs.Event.mem_outcome
val load : t -> addr:int -> int
val store : t -> addr:int -> value:int -> unit
val size : t -> int
val in_bounds : t -> addr:int -> bool
