(* The functional executor the sampled engine runs between detailed
   windows: one architectural instruction per call, in program order,
   straight against the ARF and the memory image (no timing, no
   speculation, no store buffer — stores become globally visible
   immediately).  It keeps the EXACT event counters exact (committed
   instructions, memory ops, fences, loads, stores, CAS, branches);
   micro-architectural metrics (mispredicts, occupancy, cycles, CPI
   leaves) are what the measured detailed windows extrapolate.

   The committed scope nesting ([arch_nest]) is maintained here just
   as commit maintains it in detailed mode, so a functional->detailed
   transition can reseed the scope unit. *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
open Core_state

let reg t r = if Reg.equal r Reg.zero then 0 else t.arf.(Reg.index r)
let set_reg t r v = if not (Reg.equal r Reg.zero) then t.arf.(Reg.index r) <- v

(* Execute one instruction.  Returns [false] when the core cannot make
   progress — halted, or the pc ran off the code image (the detailed
   front end stops fetching there too; the core stalls, it does not
   halt). *)
let step (t : t) =
  if t.halted || t.fetch_pc < 0 || t.fetch_pc >= Array.length t.code then false
  else begin
    let pc = t.fetch_pc in
    let next = ref (pc + 1) in
    (match t.code.(pc) with
    | Instr.Nop -> ()
    | Instr.Li (dst, v) -> set_reg t dst v
    | Instr.Tid dst -> set_reg t dst t.id
    | Instr.Alu (op, dst, a, b) ->
      let bv = match b with Instr.Reg r -> reg t r | Instr.Imm v -> v in
      set_reg t dst (eval_alu op (reg t a) bv)
    | Instr.Load { dst; base; off; _ } ->
      set_reg t dst (read_mem t (reg t base + off));
      t.counts.loads <- t.counts.loads + 1;
      t.counts.committed_mem <- t.counts.committed_mem + 1
    | Instr.Store { src; base; off; _ } ->
      let addr = reg t base + off in
      if not (in_bounds t addr) then
        invalid_arg
          (Printf.sprintf "core %d: store to out-of-bounds address %d (pc %d)" t.id addr
             pc);
      Mem_port.store t.port ~addr ~value:(reg t src);
      t.counts.stores <- t.counts.stores + 1;
      t.counts.committed_mem <- t.counts.committed_mem + 1
    | Instr.Cas { dst; base; off; expected; desired; _ } ->
      let addr = reg t base + off in
      let old = read_mem t addr in
      let success = old = reg t expected in
      if success && in_bounds t addr then
        Mem_port.store t.port ~addr ~value:(reg t desired);
      set_reg t dst (if success then 1 else 0);
      t.counts.cas_ops <- t.counts.cas_ops + 1;
      t.counts.committed_mem <- t.counts.committed_mem + 1
    | Instr.Branch { cond; src; target } ->
      let v = reg t src in
      let taken = match cond with Instr.Eqz -> v = 0 | Instr.Nez -> v <> 0 in
      if taken then next := target;
      t.counts.branches <- t.counts.branches + 1
    | Instr.Jump target -> next := target
    | Instr.Fence _ -> t.counts.committed_fences <- t.counts.committed_fences + 1
    | Instr.Fs_start cid -> t.arch_nest <- cid :: t.arch_nest
    | Instr.Fs_end _ -> (
      match t.arch_nest with _ :: rest -> t.arch_nest <- rest | [] -> ())
    | Instr.Halt ->
      t.halted <- true;
      t.fetch_stopped <- true);
    t.counts.committed <- t.counts.committed + 1;
    t.fetch_pc <- !next;
    true
  end
