(** One simulated out-of-order core.

    The pipeline model: a front end that fetches and dispatches along
    the predicted path into the ROB, register renaming with
    per-branch checkpoints, out-of-order issue with conservative
    memory disambiguation and store-to-load forwarding, in-order
    commit, and a store buffer that drains to the memory system out
    of order (W->W relaxation).  Loads read their value when the
    access completes in the memory system, stores become globally
    visible when their store-buffer entry completes — together this
    yields an RMO-like machine in which fences are meaningful.

    Fence handling follows the paper:
    - without in-window speculation, a dispatched fence blocks the
      issue of younger loads and CAS operations until every older
      in-scope access has completed ([`Global] scope = all of them
      plus a drained store buffer);
    - with in-window speculation (T+/S+), fences never block issue;
      the condition is checked when the fence reaches the commit
      point, against the store buffer's fence scope bits.

    The machine drives each core with three sub-steps per cycle, in
    this order across all cores: [step_complete_writes] (stores and
    CAS results become visible), [step_complete_reads] (loads sample
    memory), [step_pipeline] (commit, issue, resolve, fetch).  That
    phase split makes same-cycle visibility deterministic. *)

type stats = {
  mutable committed : int;
  mutable stall_rob_load : int;
      (** head-fence stall cycles attributable to an incomplete in-ROB
          load or CAS inside the fence's wait set *)
  mutable stall_rob_store : int;  (** ... to a store not yet in the store buffer *)
  mutable stall_sb : int;  (** ... to store-buffer drain *)
  mutable committed_mem : int;
  mutable committed_fences : int;
  mutable fence_stall_cycles : int;
      (** cycles the commit head was blocked by a fence whose scope
          condition was not yet satisfied *)
  mutable sb_stall_cycles : int;  (** commit blocked by a full store buffer *)
  mutable branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable rob_occupancy_sum : int;  (** sampled once per active cycle *)
  mutable active_cycles : int;
}

type t

val create :
  ?trace:Fscope_obs.Trace.t ->
  id:int ->
  code:Fscope_isa.Instr.t array ->
  mem:int array ->
  hierarchy:Fscope_mem.Hierarchy.t ->
  scope_config:Fscope_core.Scope_unit.config ->
  exec_config:Exec_config.t ->
  unit ->
  t
(** [trace] (default: the disabled {!Fscope_obs.Trace.null}) threads
    the observability collector through the core's ROB, store buffer
    and scope unit, and makes the core itself emit fence-stall
    begin/end and CAS success/failure events plus per-cycle ROB /
    store-buffer occupancy gauges.  Emission never feeds back into
    pipeline state, so a traced run is cycle-identical to an untraced
    one. *)

val id : t -> int
val halted : t -> bool
(** True once the core committed a [Halt]. *)

val drained : t -> bool
(** True when, additionally, the store buffer is empty — the core's
    effects are all globally visible. *)

val stats : t -> stats
val scope_unit : t -> Fscope_core.Scope_unit.t

val step_complete_writes : t -> cycle:int -> unit
(** Apply store-buffer drains and CAS read-modify-writes due this
    cycle to shared memory. *)

val step_complete_reads : t -> cycle:int -> unit
(** Complete loads due this cycle: sample shared memory (or keep the
    forwarded value) and mark them done. *)

val step_pipeline : t -> cycle:int -> unit
(** Resolve branches, commit, issue, fetch/dispatch. *)
