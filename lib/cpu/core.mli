(** One simulated out-of-order core.

    The pipeline model: a front end that fetches and dispatches along
    the predicted path into the ROB, register renaming with
    per-branch checkpoints, out-of-order issue with conservative
    memory disambiguation and store-to-load forwarding, in-order
    commit, and a store buffer that drains to the memory system out
    of order (W->W relaxation).  Loads read their value when the
    access completes in the memory system, stores become globally
    visible when their store-buffer entry completes — together this
    yields an RMO-like machine in which fences are meaningful.

    Memory is reached exclusively through a {!Mem_port}: the core
    issues typed transactions (read / write / rmw) and receives
    absolute completion cycles; it never sees the cache hierarchy or
    the flat memory image directly.  The stages themselves live in the
    [Core_frontend] / [Core_issue] / [Core_commit] / [Core_exec]
    submodules over a shared [Core_state] record; this module is the
    facade the machine layer drives.

    Fence handling follows the paper:
    - without in-window speculation, a dispatched fence blocks the
      issue of younger loads and CAS operations until every older
      in-scope access has completed ([`Global] scope = all of them
      plus a drained store buffer);
    - with in-window speculation (T+/S+), fences never block issue;
      the condition is checked when the fence reaches the commit
      point, against the store buffer's fence scope bits.

    The machine drives each core with three sub-steps per cycle, in
    this order across all cores: [step_complete_writes] (stores and
    CAS results become visible), [step_complete_reads] (loads sample
    memory), [step_pipeline] (commit, issue, resolve, fetch).  That
    phase split makes same-cycle cross-core interactions
    deterministic.  Each sub-step returns whether it changed pipeline
    state beyond per-cycle stall accounting; the {!Fscope_machine}
    engine uses that, together with {!next_wake} and
    {!account_stall_span}, to fast-forward over spans in which no core
    can make progress. *)

type stats = {
  committed : int;
  stall_rob_load : int;
      (** head-fence stall cycles attributable to an incomplete in-ROB
          load or CAS inside the fence's wait set *)
  stall_rob_store : int;  (** ... to a store not yet in the store buffer *)
  stall_sb : int;  (** ... to store-buffer drain *)
  committed_mem : int;
  committed_fences : int;
  fence_stall_cycles : int;
      (** cycles the commit head was blocked by a fence whose scope
          condition was not yet satisfied *)
  sb_stall_cycles : int;  (** commit blocked by a full store buffer *)
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  cas_ops : int;
  rob_occupancy_sum : int;  (** sampled once per active cycle *)
  active_cycles : int;
}
(** A point-in-time snapshot.  Since PR 3 the stall fields are derived
    views over the core's CPI table (see {!cpi}): [fence_stall_cycles]
    is the sum of the six [Fence_wait] leaves, [stall_rob_load] /
    [stall_rob_store] / [stall_sb] its per-cause sums, and
    [sb_stall_cycles] the [Sb_full] leaf. *)

type t

val create :
  ?trace:Fscope_obs.Trace.t ->
  id:int ->
  code:Fscope_isa.Instr.t array ->
  port:Mem_port.t ->
  scope_config:Fscope_core.Scope_unit.config ->
  exec_config:Exec_config.t ->
  unit ->
  t
(** [port] is the core's only window onto the memory system (timing
    and data); the machine layer builds it from the concrete
    hierarchy.  [trace] (default: the disabled
    {!Fscope_obs.Trace.null}) threads the observability collector
    through the core's ROB, store buffer and scope unit, and makes the
    core itself emit fence-stall begin/end and CAS success/failure
    events plus per-cycle ROB / store-buffer occupancy gauges.
    Emission never feeds back into pipeline state, so a traced run is
    cycle-identical to an untraced one. *)

val id : t -> int
val halted : t -> bool
(** True once the core committed a [Halt]. *)

val drained : t -> bool
(** True when, additionally, the store buffer is empty — the core's
    effects are all globally visible. *)

val stats : t -> stats

val cpi : t -> Fscope_obs.Cpi.t
(** A copy of the core's cycle-accounting table.  Invariant:
    [Cpi.total (cpi t) = (stats t).active_cycles] — every active
    cycle is charged to exactly one leaf.  Identical between the
    fast-forward engine and the naive reference loop. *)

val scope_unit : t -> Fscope_core.Scope_unit.t

val step_complete_writes : t -> cycle:int -> bool
(** Apply store-buffer drains and CAS read-modify-writes due this
    cycle to shared memory.  Returns whether anything completed. *)

val step_complete_reads : t -> cycle:int -> bool
(** Complete loads due this cycle: sample shared memory (or keep the
    forwarded value) and mark them done.  Returns whether anything
    completed. *)

val step_pipeline : t -> cycle:int -> bool
(** Resolve branches, commit, issue, fetch/dispatch; also performs the
    per-cycle activity accounting (active cycles, occupancy sums and
    gauges, stall attribution).  Returns whether any pipeline state
    changed beyond that accounting — [false] means the cycle was a
    pure stall and the core is frozen until {!next_wake}. *)

val next_wake : t -> cycle:int -> int option
(** The earliest cycle strictly after [cycle] at which this core's
    state can change: the minimum over in-flight execution completion
    cycles, store-buffer completion times and a pending
    mispredict-resume point.  [None] means nothing is scheduled — the
    core cannot change state again on its own (it is drained, or stuck
    until [max_cycles]).  Sound for fast-forwarding only from a frozen
    state, i.e. after a cycle in which every step reported no
    progress. *)

val writes_pending : t -> cycle:int -> bool
(** Will [step_complete_writes ~cycle] write shared memory — a
    store-buffer entry completing at or before [cycle], or an
    in-flight CAS reaching its completion point?  Exact when asked at
    the start of the writes phase.  The domain-sharded engine runs
    phase-1 steps for which this holds at their global core-order
    turn and the rest ungated. *)

val may_touch_mem : t -> bool
(** May [step_pipeline] reach the memory port this cycle — a store
    committing into the store buffer, or a load / CAS issuing?
    Conservative (based on the ROB at phase start, any-state stores
    and waiting loads/CAS); used by the sharded engine to gate
    phase-3 steps under the cache-hierarchy model, where even an L1
    hit bumps shared directory state. *)

val spin_may_arm : t -> bool
(** May this cycle's pipeline step arm a spin-stability certificate
    (see below)?  False whenever no boundary snapshot exists yet, which
    makes it a sound phase-start gate for sleep transitions in the
    sharded engine. *)

val quiet_until : t -> from:int -> cap:int -> hier:bool -> int
(** Whole-cycle FREE horizon for barrier elision in the sharded
    engine: the largest cycle [X] in [[from-1, cap]] such that
    stepping this core through cycles [from..X] provably performs no
    shared-state step — no store-buffer drain or CAS write, no
    ordered phase-3 step ([hier] selects the stricter cache-hierarchy
    classification), no spin-certificate arming (hence no sleep
    transition), and no halt (hence no drain-bookkeeping change).
    [from - 1] means no quiet span exists.  Bounded by the earliest
    store-buffer deadline, collapsed by any unsafe in-flight ROB
    entry, and otherwise limited by a conservative walk of the static
    fetch stream (earliest-fetch assumptions, capped so jump loops
    terminate).  Pure: never mutates core state. *)

val account_stall_span : t -> cycle:int -> cycles:int -> unit
(** Replay the per-cycle accounting of the [cycles] consecutive
    no-progress cycles after [cycle] in O(1): active cycles,
    ROB-occupancy sum, occupancy gauges, and the CPI-leaf charge
    (fence-wait cause, store-buffer-full, memory level, branch-flush /
    frontend-empty split, execution dependence), exactly as if
    [step_pipeline] had run that many more pure-stall cycles.  The
    engine calls this for the span it skips between a frozen cycle
    ([cycle] itself, already stepped) and the next wake-up. *)

(** {2 Spin fast-forward}

    A complementary engine optimisation for cores that DO make progress
    but only to spin: when the commit stream keeps re-taking the same
    backward edge and the complete pipeline state at consecutive loop
    boundaries is identical up to a uniform cycle shift, the core's
    future is periodic until another core writes (or steals) one of the
    cache lines the loop reads.  The probe proves that stability, hands
    the engine a {!spin_stable} certificate, and {!spin_replay} later
    accounts any number of skipped periods in closed form — the engine
    stays bit-identical to naive stepping. *)

type spin_stable = Core_state.stable = {
  armed_cycle : int;  (** the loop boundary at which stability was proven *)
  period : int;  (** cycles per loop iteration (boundary to boundary) *)
  d_counts : int array;  (** per-period commit-counter deltas *)
  d_cpi : int array;  (** per-period CPI-leaf deltas *)
  loads_per_period : int;  (** L1-hit loads issued per period *)
  footprint : int list;  (** word addresses the loop reads — the watch set *)
}

val set_spin_ff : t -> bool -> unit
(** Enable the stability probe.  Off by default; the engine turns it on
    for untraced runs with [Exec_config.spin_fastforward].  The probe
    never changes architectural or timing state — only whether
    {!spin_poll} can ever return a certificate. *)

val spin_poll : t -> cycle:int -> spin_stable option
(** Consume the certificate armed at exactly [cycle], if any.  The
    engine calls this after a progress cycle; [Some] means the core may
    be put to sleep at the end of [cycle] with its state frozen. *)

val spin_cancel : t -> unit
(** Drop all probe state (on wake-up, or any time the chain must not
    survive external interaction).  Re-arming requires three fresh
    clean loop boundaries. *)

val spin_replay : t -> stable:spin_stable -> k:int -> unit
(** Account [k] whole skipped periods in closed form: commit counters
    and CPI leaves advance by [k] times their per-period delta, and
    in-flight completion cycles plus a pending fetch-resume point shift
    by [k * period].  Afterwards the core's state is exactly what
    [k * period] naive steps from [armed_cycle] would have produced. *)

(** {2 Whole-core checkpointing}

    Unlike the spin probe's relativized snapshot, a checkpoint keeps
    every cycle- and seq-valued field ABSOLUTE: it is taken at the top
    of the engine's cycle loop and restored into a machine rebuilt at
    the same cycle.  Instructions are never serialized — ROB entries
    record their pc and restore re-reads the code image (the
    machine-level digest check guarantees it is the same program). *)

val snapshot : t -> Fscope_util.Json.t
(** Serialize the complete core state: fetch state, ARF, rename map,
    ROB (absolute seqs and deadlines), store buffer, branch predictor,
    commit counters, CPI table, spin-detection state and the scope
    unit.  The core must be untraced and hold no armed spin
    certificate (the engine force-wakes sleepers before capturing). *)

val restore : t -> Fscope_util.Json.t -> unit
(** Inverse of {!snapshot} into a core created over the same code
    image and configs; raises [Failure] on malformed or mismatched
    input.  The spin probe comes back clean (re-arming needs fresh
    loop boundaries, which never affects bit-identity). *)

val traced : t -> bool
(** Was the core created with a live trace?  Checkpointing and sampled
    mode are untraced-run facilities. *)

(** {2 Interval sampling}

    The sampled engine alternates detailed windows (ordinary cycle
    stepping) with functional fast-forward.  [flush_arch] collapses
    the core to architectural state at a detailed->functional
    transition; {!func_step} then interprets one instruction per call;
    [reseed_scope] rebuilds the scope unit when detail resumes; the
    counter snapshot pair erases warmup accounting; [extrapolate]
    scales the measured micro-architectural metrics to the whole run
    at the end. *)

val flushable : t -> bool
(** No completed-but-uncommitted CAS in the ROB.  A CAS performs its
    RMW at completion, before commit: once [Done] its memory write has
    already happened, and discarding the entry in {!flush_arch} would
    let {!func_step} apply it a second time.  The sampled engine steps
    a core detailed until this holds (a completed CAS is
    non-speculative and commits within bounded cycles), then
    flushes. *)

val flush_arch : t -> unit
(** Drain the store buffer to memory (FIFO order), discard all
    speculative work (ROB, rename map, pending fetch-resume), set the
    fetch pc to the architectural pc (ROB head, or the fetch pc when
    the window was empty) and drop spin-probe state.  Timing state —
    predictor, caches — is deliberately left warm.  Only sound when
    {!flushable} holds. *)

val park : t -> unit
val unpark : t -> unit
(** Fetch suppression around the flush settle loop: a freshly flushed
    core is parked so stepping it is a no-op while slower cores reach
    their own flush points, then unparked before the functional
    leg. *)

val func_step : t -> bool
(** Execute one instruction architecturally: ARF and memory image
    only, stores immediately visible, fences no-ops.  Exact event
    counters (commits, memory ops, fences, loads, stores, CAS,
    branches) advance; micro-architectural metrics do not.  Returns
    [false] when the core cannot progress (halted or pc off the code
    image). *)

val reseed_scope : t -> unit
(** Reset the scope unit and replay the committed scope nesting
    (outermost first) via [fs_start], as tracked across both execution
    modes. *)

val counters_snapshot : t -> int array * int array
val counters_restore : t -> int array * int array -> unit
(** Save / restore the micro-architectural accounting only
    (mispredicts, ROB-occupancy sum, active cycles, CPI leaves): the
    engine brackets each detailed warmup with these so warmup cycles
    keep the pipeline warm without polluting the measured window. *)

val extrapolate : t -> total:int -> measured:int -> unit
(** Scale every cycle-valued metric by [total / measured] (committed
    instructions overall vs inside measured windows), re-deriving
    [active_cycles] as the sum of the scaled CPI leaves so the
    leaves-sum-to-active invariant survives.  No-op when [measured] is
    zero or covers the whole run. *)
