(* In-order commit, plus the cycle-accounting that charges every
   active cycle to exactly one CPI-stack leaf.  The fast-forwarding
   engine replays the same classification in closed form over skipped
   spans (see [account_stall_span] at the bottom). *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Fsb = Fscope_core.Fsb
module Cpi = Fscope_obs.Cpi
open Core_state

let fence_commit_ok t (e : Rob.entry) =
  (* In-window speculation: the fence retires when the in-scope part of
     the store buffer has drained (older ROB entries are gone by
     definition at the commit head); flavours that do not order prior
     stores retire immediately. *)
  t.cfg.nop_fences
  ||
  let k = match e.instr with Instr.Fence k -> k | _ -> assert false in
  (not k.Fscope_isa.Fence_kind.wait_stores)
  ||
  match e.fence_wait with
  | None -> assert false
  | Some `Global -> Store_buffer.is_empty t.sb
  | Some (`Mask m) -> not (Store_buffer.mask_overlaps t.sb m)

(* Spin detection over the commit stream: a backward control transfer
   that repeats at the same PC with no store, CAS or fence committed in
   between is a read-only wait loop — the ROADMAP's spin-candidate.
   Commit streams are identical between the two engine loops, so this
   is deterministic and engine-independent. *)
let spin_backward_edge t pc =
  let spinning = t.spin_last_pc = pc && not t.spin_dirty in
  t.spin_mode <- spinning;
  (* a committed spinning backward edge ends a loop iteration — mark
     the cycle as a boundary for the fast-forward stability probe *)
  if spinning then Core_spin.note_boundary t;
  (match t.obs with
  | Some o when spinning ->
    let m = Fscope_obs.Trace.metrics o.trace in
    Fscope_obs.Metrics.incr
      (Fscope_obs.Metrics.counter m (Printf.sprintf "core%d/spin/pc%d" t.id pc))
  | Some _ | None -> ());
  t.spin_last_pc <- pc;
  t.spin_dirty <- false

let spin_note t (e : Rob.entry) =
  match e.instr with
  | Instr.Store _ | Instr.Cas _ | Instr.Fence _ ->
    t.spin_dirty <- true;
    t.spin_mode <- false;
    Core_spin.note_dirty t
  | Instr.Jump target ->
    if target <= e.pc then spin_backward_edge t e.pc else t.spin_mode <- false
  | Instr.Branch { target; _ } ->
    if e.result <> 0 then
      if target <= e.pc then spin_backward_edge t e.pc else t.spin_mode <- false
  | _ -> ()

let commit_effects t (e : Rob.entry) =
  (match Instr.writes_reg e.instr with
  | Some r -> t.arf.(Reg.index r) <- e.result
  | None -> ());
  t.counts.committed <- t.counts.committed + 1;
  spin_note t e;
  match e.instr with
  | Instr.Load _ ->
    t.counts.loads <- t.counts.loads + 1;
    t.counts.committed_mem <- t.counts.committed_mem + 1
  | Instr.Store _ ->
    t.counts.stores <- t.counts.stores + 1;
    t.counts.committed_mem <- t.counts.committed_mem + 1
  | Instr.Cas _ ->
    t.counts.cas_ops <- t.counts.cas_ops + 1;
    t.counts.committed_mem <- t.counts.committed_mem + 1
  | Instr.Fence _ -> t.counts.committed_fences <- t.counts.committed_fences + 1
  | Instr.Fs_start cid -> t.arch_nest <- cid :: t.arch_nest
  | Instr.Fs_end _ -> (
    match t.arch_nest with
    | _ :: rest -> t.arch_nest <- rest
    | [] -> () (* unmatched fs_end: legal program, nothing to pop *))
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Halt ->
    ()

(* Why is the head fence stalled?  Charged once per stalled cycle to
   the first matching cause (ROB loads, then ROB stores, then SB
   drain), split by whether the fence waits on an S-Fence scope mask
   or globally.  [times] lets the engine charge a whole frozen span at
   once — the classification only reads state that cannot change while
   the core makes no progress, so every cycle of the span lands in the
   same leaf. *)
let charge_fence_stall t (e : Rob.entry) ~times =
  let covered o =
    match e.fence_wait with
    | Some `Global | None -> true
    | Some (`Mask m) -> not (Fsb.is_empty (Fsb.inter o.Rob.scope_mask m))
  in
  let rob_load = ref false and rob_store = ref false in
  Rob.iter t.rob (fun o ->
      if o.seq < e.seq && covered o then
        match o.instr with
        | Instr.Load _ | Instr.Cas _ -> if o.state <> Rob.Done then rob_load := true
        | Instr.Store _ -> rob_store := true
        | _ -> ());
  let cause =
    if !rob_load then Cpi.Rob_load
    else if !rob_store then Cpi.Rob_store
    else Cpi.Sb_drain
  in
  let scope =
    match e.fence_wait with
    | Some (`Mask _) -> Cpi.Scoped
    | Some `Global | None -> Cpi.Unscoped
  in
  Cpi.charge_n t.cpi (Cpi.Fence_wait (cause, scope)) ~times

(* Per-static-fence-site and per-scope attribution, on traced runs
   only: a commit counter per (core, fence PC), a scoped-commit
   counter, and a stall-episode histogram, plus the same keyed by the
   fence's class id.  Registered lazily by name — static sites are
   enumerated by the profiler from the program image, so sites that
   never commit still appear (with zeros) in its tables. *)
let note_fence_commit t (e : Rob.entry) ~stalled =
  match t.obs with
  | None -> ()
  | Some o ->
    let m = Fscope_obs.Trace.metrics o.trace in
    let c name = Fscope_obs.Metrics.counter m name in
    let h name = Fscope_obs.Metrics.histogram m name in
    let site suffix = Printf.sprintf "core%d/fence_pc%d/%s" t.id e.pc suffix in
    Fscope_obs.Metrics.incr (c (site "commits"));
    (match e.fence_wait with
    | Some (`Mask _) -> Fscope_obs.Metrics.incr (c (site "scoped_commits"))
    | Some `Global | None -> ());
    (match stalled with
    | Some cycles -> Fscope_obs.Metrics.observe (h (site "stall_cycles")) cycles
    | None -> ());
    if e.fence_cid >= 0 then begin
      Fscope_obs.Metrics.incr (c (Printf.sprintf "cid%d/commits" e.fence_cid));
      match stalled with
      | Some cycles ->
        Fscope_obs.Metrics.observe
          (h (Printf.sprintf "cid%d/stall_cycles" e.fence_cid))
          cycles
      | None -> ()
    end

let commit t ~cycle =
  let progress = ref false in
  let budget = ref t.cfg.commit_width in
  let blocked = ref false in
  while (not !blocked) && !budget > 0 && not t.halted do
    match Rob.head t.rob with
    | None -> blocked := true
    | Some e -> (
      match e.instr with
      | Instr.Halt ->
        ignore (Rob.pop_head t.rob);
        commit_effects t e;
        t.halted <- true;
        progress := true
      | Instr.Store _ ->
        if e.state <> Rob.Done then blocked := true
        else if Store_buffer.is_full t.sb then begin
          Cpi.charge t.cpi Cpi.Sb_full;
          t.cycle_charged <- true;
          blocked := true
        end
        else begin
          if not (in_bounds t e.addr) then
            invalid_arg
              (Printf.sprintf "core %d: store to out-of-bounds address %d (pc %d)" t.id
                 e.addr e.pc);
          let completes =
            Mem_port.issue t.port ~core:t.id Mem_port.Write ~addr:e.addr ~now:cycle
          in
          (* Same-address stores must become visible in program order
             (per-location coherence), so a later store may not
             overtake an in-flight one to the same address. *)
          let floor = ref 0 in
          Store_buffer.iter t.sb (fun en ->
              if en.addr = e.addr then floor := max !floor en.done_at);
          Store_buffer.push t.sb
            {
              Store_buffer.addr = e.addr;
              value = e.data;
              mask = e.scope_mask;
              done_at = max completes (!floor + 1);
            };
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
      | Instr.Fence _ ->
        let ok =
          if t.cfg.in_window_speculation then fence_commit_ok t e
          else e.fence_issued
        in
        if ok then begin
          let stalled = ref None in
          (match t.obs with
          | Some o when o.stall_begin >= 0 ->
            let cycles = cycle - o.stall_begin in
            stalled := Some cycles;
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_end { pc = e.pc; cycles });
            Fscope_obs.Metrics.observe o.stall_hist cycles;
            o.stall_begin <- -1
          | Some _ | None -> ());
          note_fence_commit t e ~stalled:!stalled;
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
        else begin
          charge_fence_stall t e ~times:1;
          t.cycle_charged <- true;
          (match t.obs with
          | Some o when o.stall_begin < 0 ->
            o.stall_begin <- cycle;
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_begin
                 {
                   pc = e.pc;
                   global =
                     (match e.fence_wait with
                     | Some (`Mask _) -> false
                     | Some `Global | None -> true);
                 })
          | Some _ | None -> ());
          blocked := true
        end
      | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Load _ | Instr.Cas _
      | Instr.Branch _ | Instr.Jump _ | Instr.Fs_start _ | Instr.Fs_end _ ->
        if e.state = Rob.Done then begin
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
        else blocked := true)
  done;
  !progress

(* The leaf for a cycle on which nothing committed and commit charged
   nothing (so the head is not a blocked fence or a store facing a
   full store buffer — those were charged in the commit loop).  A head
   load/CAS in flight is charged to the memory level serving it;
   everything else waiting at the head (operand dependences,
   unresolved branches, forwarded loads completing next cycle) is an
   execution dependence. *)
let classify_waiting_head (e : Rob.entry) =
  match e.instr with
  | (Instr.Load _ | Instr.Cas _) when e.state <> Rob.Done -> (
    match e.mem_level with
    | Some Fscope_obs.Event.L1_hit -> Cpi.Mem_l1
    | Some Fscope_obs.Event.L2_hit -> Cpi.Mem_l2
    | Some Fscope_obs.Event.L2_miss -> Cpi.Mem_main
    | None -> Cpi.Exec_dep)
  | _ -> Cpi.Exec_dep

let classify_blocked t ~cycle =
  match Rob.head t.rob with
  | None ->
    (* An empty ROB while the front end waits out a mispredict penalty
       is the flush shadow; empty with nothing pending is a starved
       front end (e.g. the tail of the program). *)
    if (not t.fetch_stopped) && t.fetch_resume > cycle then Cpi.Branch_flush
    else Cpi.Frontend_empty
  | Some e -> classify_waiting_head e

(* Replay the per-cycle accounting of the [n] pure-stall cycles
   following [cycle] in O(1).

   Preconditions (established by the engine): the core reported no
   progress at [cycle], so until its next wake-up every cycle is
   identical — the pipeline steps would only (a) bump the activity
   counters, (b) re-observe the unchanged occupancy gauges, and
   (c) charge the same CPI leaf.  Exactly that, [n] times, is what
   this function applies.  The one cycle-dependent classification —
   an empty ROB flips from [Branch_flush] to [Frontend_empty] once
   [fetch_resume] passes — is replayed in closed form. *)
let account_stall_span t ~cycle ~cycles:n =
  if n > 0 && not t.halted then begin
    t.counts.active_cycles <- t.counts.active_cycles + n;
    t.counts.rob_occupancy_sum <- t.counts.rob_occupancy_sum + (n * Rob.count t.rob);
    (match t.obs with
    | Some o ->
      Fscope_obs.Metrics.gauge_observe_n o.rob_gauge (Rob.count t.rob) ~times:n;
      Fscope_obs.Metrics.gauge_observe_n o.sb_gauge (Store_buffer.count t.sb) ~times:n
    | None -> ());
    match Rob.head t.rob with
    | Some e -> (
      match e.instr with
      | Instr.Store _ when e.state = Rob.Done && Store_buffer.is_full t.sb ->
        Cpi.charge_n t.cpi Cpi.Sb_full ~times:n
      | Instr.Fence _
        when not
               (if t.cfg.in_window_speculation then fence_commit_ok t e
                else e.fence_issued) ->
        charge_fence_stall t e ~times:n
      | _ -> Cpi.charge_n t.cpi (classify_waiting_head e) ~times:n)
    | None ->
      (* Cycles [cycle+1 .. cycle+n]: Branch_flush while the cycle is
         still below [fetch_resume], Frontend_empty after. *)
      let flush =
        if t.fetch_stopped then 0 else max 0 (min n (t.fetch_resume - (cycle + 1)))
      in
      Cpi.charge_n t.cpi Cpi.Branch_flush ~times:flush;
      Cpi.charge_n t.cpi Cpi.Frontend_empty ~times:(n - flush)
  end
