(* In-order commit, plus the per-cycle stall accounting the
   fast-forwarding engine replays in closed form over skipped spans
   (see [account_stall_span] at the bottom). *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Fsb = Fscope_core.Fsb
open Core_state

let fence_commit_ok t (e : Rob.entry) =
  (* In-window speculation: the fence retires when the in-scope part of
     the store buffer has drained (older ROB entries are gone by
     definition at the commit head); flavours that do not order prior
     stores retire immediately. *)
  let k = match e.instr with Instr.Fence k -> k | _ -> assert false in
  (not k.Fscope_isa.Fence_kind.wait_stores)
  ||
  match e.fence_wait with
  | None -> assert false
  | Some `Global -> Store_buffer.is_empty t.sb
  | Some (`Mask m) -> not (Store_buffer.mask_overlaps t.sb m)

let commit_effects t (e : Rob.entry) =
  (match Instr.writes_reg e.instr with
  | Some r -> t.arf.(Reg.index r) <- e.result
  | None -> ());
  t.stats.committed <- t.stats.committed + 1;
  match e.instr with
  | Instr.Load _ ->
    t.stats.loads <- t.stats.loads + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Store _ ->
    t.stats.stores <- t.stats.stores + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Cas _ ->
    t.stats.cas_ops <- t.stats.cas_ops + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Fence _ -> t.stats.committed_fences <- t.stats.committed_fences + 1
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    ()

(* Why is the head fence stalled?  Charged once per stalled cycle to
   the first matching bucket (ROB loads, then ROB stores, then SB).
   [times] lets the engine charge a whole frozen span at once — the
   classification only reads state that cannot change while the core
   makes no progress, so every cycle of the span lands in the same
   bucket. *)
let charge_fence_stall t (e : Rob.entry) ~times =
  t.stats.fence_stall_cycles <- t.stats.fence_stall_cycles + times;
  let covered o =
    match e.fence_wait with
    | Some `Global | None -> true
    | Some (`Mask m) -> not (Fsb.is_empty (Fsb.inter o.Rob.scope_mask m))
  in
  let rob_load = ref false and rob_store = ref false in
  Rob.iter t.rob (fun o ->
      if o.seq < e.seq && covered o then
        match o.instr with
        | Instr.Load _ | Instr.Cas _ -> if o.state <> Rob.Done then rob_load := true
        | Instr.Store _ -> rob_store := true
        | _ -> ());
  if !rob_load then t.stats.stall_rob_load <- t.stats.stall_rob_load + times
  else if !rob_store then t.stats.stall_rob_store <- t.stats.stall_rob_store + times
  else t.stats.stall_sb <- t.stats.stall_sb + times

let commit t ~cycle =
  let progress = ref false in
  let budget = ref t.cfg.commit_width in
  let blocked = ref false in
  while (not !blocked) && !budget > 0 && not t.halted do
    match Rob.head t.rob with
    | None -> blocked := true
    | Some e -> (
      match e.instr with
      | Instr.Halt ->
        ignore (Rob.pop_head t.rob);
        commit_effects t e;
        t.halted <- true;
        progress := true
      | Instr.Store _ ->
        if e.state <> Rob.Done then blocked := true
        else if Store_buffer.is_full t.sb then begin
          t.stats.sb_stall_cycles <- t.stats.sb_stall_cycles + 1;
          blocked := true
        end
        else begin
          if not (in_bounds t e.addr) then
            invalid_arg
              (Printf.sprintf "core %d: store to out-of-bounds address %d (pc %d)" t.id
                 e.addr e.pc);
          let completes =
            Mem_port.issue t.port ~core:t.id Mem_port.Write ~addr:e.addr ~now:cycle
          in
          (* Same-address stores must become visible in program order
             (per-location coherence), so a later store may not
             overtake an in-flight one to the same address. *)
          let floor = ref 0 in
          Store_buffer.iter t.sb (fun en ->
              if en.addr = e.addr then floor := max !floor en.done_at);
          Store_buffer.push t.sb
            {
              Store_buffer.addr = e.addr;
              value = e.data;
              mask = e.scope_mask;
              done_at = max completes (!floor + 1);
            };
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
      | Instr.Fence _ ->
        let ok =
          if t.cfg.in_window_speculation then fence_commit_ok t e else e.fence_issued
        in
        if ok then begin
          (match t.obs with
          | Some o when o.stall_begin >= 0 ->
            let stalled = cycle - o.stall_begin in
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_end { pc = e.pc; cycles = stalled });
            Fscope_obs.Metrics.observe o.stall_hist stalled;
            o.stall_begin <- -1
          | Some _ | None -> ());
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
        else begin
          charge_fence_stall t e ~times:1;
          (match t.obs with
          | Some o when o.stall_begin < 0 ->
            o.stall_begin <- cycle;
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_begin
                 {
                   pc = e.pc;
                   global =
                     (match e.fence_wait with
                     | Some (`Mask _) -> false
                     | Some `Global | None -> true);
                 })
          | Some _ | None -> ());
          blocked := true
        end
      | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Load _ | Instr.Cas _
      | Instr.Branch _ | Instr.Jump _ | Instr.Fs_start _ | Instr.Fs_end _ ->
        if e.state = Rob.Done then begin
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          progress := true;
          decr budget
        end
        else blocked := true)
  done;
  !progress

(* Replay the per-cycle accounting of [n] pure-stall cycles in O(1).

   Preconditions (established by the engine): the core reported no
   progress this cycle, so until its next wake-up every cycle is
   identical — the pipeline steps would only (a) bump the activity
   counters, (b) re-observe the unchanged occupancy gauges, and
   (c) re-charge the same blocked-commit-head bucket.  Exactly that,
   [n] times, is what this function applies. *)
let account_stall_span t ~cycles:n =
  if n > 0 && not t.halted then begin
    t.stats.active_cycles <- t.stats.active_cycles + n;
    t.stats.rob_occupancy_sum <- t.stats.rob_occupancy_sum + (n * Rob.count t.rob);
    (match t.obs with
    | Some o ->
      Fscope_obs.Metrics.gauge_observe_n o.rob_gauge (Rob.count t.rob) ~times:n;
      Fscope_obs.Metrics.gauge_observe_n o.sb_gauge (Store_buffer.count t.sb) ~times:n
    | None -> ());
    match Rob.head t.rob with
    | Some e -> (
      match e.instr with
      | Instr.Store _ when e.state = Rob.Done && Store_buffer.is_full t.sb ->
        t.stats.sb_stall_cycles <- t.stats.sb_stall_cycles + n
      | Instr.Fence _ ->
        let ok =
          if t.cfg.in_window_speculation then fence_commit_ok t e else e.fence_issued
        in
        if not ok then charge_fence_stall t e ~times:n
      | _ -> ())
    | None -> ()
  end
