(** A bimodal branch predictor: a table of 2-bit saturating counters
    indexed by the low bits of the branch pc. *)

type t

val create : entries:int -> t
(** [entries] must be a positive power of two. *)

val predict : t -> pc:int -> bool
(** Predicted direction (true = taken). *)

val update : t -> pc:int -> taken:bool -> unit
(** Train with the actual outcome. *)

val snapshot : t -> int array
(** A copy of the counter table; two snapshots compare equal iff the
    predictor would behave identically.  Used by the spin-stability
    probe. *)

val restore : t -> int array -> unit
(** Overwrite the counter table from a {!snapshot} (checkpoint
    restore); raises [Invalid_argument] on a size mismatch. *)
