module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Fsb = Fscope_core.Fsb
module Scope_unit = Fscope_core.Scope_unit
module Hierarchy = Fscope_mem.Hierarchy

type stats = {
  mutable committed : int;
  mutable stall_rob_load : int;  (* fence waited on an in-ROB load/CAS *)
  mutable stall_rob_store : int;  (* fence waited on an uncommitted store *)
  mutable stall_sb : int;  (* fence waited on the store buffer *)
  mutable committed_mem : int;
  mutable committed_fences : int;
  mutable fence_stall_cycles : int;
  mutable sb_stall_cycles : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable rob_occupancy_sum : int;
  mutable active_cycles : int;
}

let fresh_stats () =
  {
    committed = 0;
    stall_rob_load = 0;
    stall_rob_store = 0;
    stall_sb = 0;
    committed_mem = 0;
    committed_fences = 0;
    fence_stall_cycles = 0;
    sb_stall_cycles = 0;
    branches = 0;
    mispredicts = 0;
    loads = 0;
    stores = 0;
    cas_ops = 0;
    rob_occupancy_sum = 0;
    active_cycles = 0;
  }

(* Observability hooks, present only on a traced run: handles are
   resolved once at core creation so emission is a guarded write, and
   [stall_begin] pairs each Fence_stall_begin with its End. *)
type obs = {
  trace : Fscope_obs.Trace.t;
  stall_hist : Fscope_obs.Metrics.histogram;
  rob_gauge : Fscope_obs.Metrics.gauge;
  sb_gauge : Fscope_obs.Metrics.gauge;
  mutable stall_begin : int;  (* cycle the head fence began stalling; -1 = none *)
}

type t = {
  id : int;
  code : Instr.t array;
  mem : int array;
  hierarchy : Hierarchy.t;
  scope : Scope_unit.t;
  cfg : Exec_config.t;
  rob : Rob.t;
  sb : Store_buffer.t;
  bpred : Branch_pred.t;
  arf : int array;
  rename : Rob.producer array;
  mutable fetch_pc : int;
  mutable fetch_resume : int;
  mutable fetch_stopped : bool;
  mutable halted : bool;
  stats : stats;
  obs : obs option;
}

let create ?(trace = Fscope_obs.Trace.null) ~id ~code ~mem ~hierarchy ~scope_config
    ~exec_config () =
  Exec_config.validate exec_config;
  let obs =
    if Fscope_obs.Trace.on trace then
      let m = Fscope_obs.Trace.metrics trace in
      let named fmt = Printf.sprintf fmt id in
      Some
        {
          trace;
          stall_hist = Fscope_obs.Metrics.histogram m "fence/stall_cycles";
          rob_gauge = Fscope_obs.Metrics.gauge m (named "core%d/rob_occupancy");
          sb_gauge = Fscope_obs.Metrics.gauge m (named "core%d/sb_occupancy");
          stall_begin = -1;
        }
    else None
  in
  {
    id;
    code;
    mem;
    hierarchy;
    scope = Scope_unit.create ~trace ~core:id scope_config;
    cfg = exec_config;
    rob = Rob.create ~trace ~core:id ~size:exec_config.rob_size ();
    sb = Store_buffer.create ~trace ~core:id ~capacity:exec_config.sb_size ();
    bpred = Branch_pred.create ~entries:exec_config.bpred_entries;
    arf = Array.make Reg.count 0;
    rename = Array.make Reg.count Rob.Arch;
    fetch_pc = 0;
    fetch_resume = 0;
    fetch_stopped = false;
    halted = false;
    stats = fresh_stats ();
    obs;
  }

let id t = t.id
let halted t = t.halted
let drained t = t.halted && Store_buffer.is_empty t.sb
let stats t = t.stats
let scope_unit t = t.scope

(* Positional source registers, matching how execution consumes them. *)
let explicit_srcs = function
  | Instr.Nop | Instr.Li _ | Instr.Tid _ | Instr.Jump _ | Instr.Fence _
  | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    []
  | Instr.Alu (_, _, a, Instr.Reg b) -> [ a; b ]
  | Instr.Alu (_, _, a, Instr.Imm _) -> [ a ]
  | Instr.Load { base; _ } -> [ base ]
  | Instr.Store { src; base; _ } -> [ src; base ]
  | Instr.Cas { base; expected; desired; _ } -> [ base; expected; desired ]
  | Instr.Branch { src; _ } -> [ src ]

(* A source value is available if its producer has left the ROB (then
   the architectural file holds it: in-order commit guarantees no
   younger same-register producer has overwritten it yet) or has
   finished executing. *)
let src_value t cycle (s : Rob.src) =
  if Reg.equal s.reg Reg.zero then Some 0
  else
    match s.producer with
    | Rob.Arch -> Some t.arf.(Reg.index s.reg)
    | Rob.Rob seq ->
      if not (Rob.contains t.rob seq) then Some t.arf.(Reg.index s.reg)
      else (
        let p = Rob.get t.rob seq in
        match p.state with
        | Rob.Done -> Some p.result
        | Rob.Executing d when d <= cycle -> Some p.result
        | Rob.Executing _ | Rob.Waiting -> None)

let srcs_values t cycle (e : Rob.entry) =
  let n = Array.length e.srcs in
  let vals = Array.make n 0 in
  let rec go i =
    if i >= n then Some vals
    else
      match src_value t cycle e.srcs.(i) with
      | Some v ->
        vals.(i) <- v;
        go (i + 1)
      | None -> None
  in
  go 0

let eval_alu op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then 0 else a / b
  | Instr.Rem -> if b = 0 then 0 else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)
  | Instr.Slt -> if a < b then 1 else 0
  | Instr.Sle -> if a <= b then 1 else 0
  | Instr.Seq -> if a = b then 1 else 0
  | Instr.Sne -> if a <> b then 1 else 0

let in_bounds t addr = addr >= 0 && addr < Array.length t.mem

let read_mem t addr = if in_bounds t addr then t.mem.(addr) else 0

(* ------------------------------------------------------------------ *)
(* Completion phases                                                   *)
(* ------------------------------------------------------------------ *)

let step_complete_writes t ~cycle =
  List.iter
    (fun (en : Store_buffer.entry) ->
      t.mem.(en.addr) <- en.value;
      Scope_unit.on_bits_cleared t.scope en.mask)
    (Store_buffer.take_completed t.sb ~cycle);
  Rob.iter t.rob (fun e ->
      match (e.instr, e.state) with
      | Instr.Cas _, Rob.Executing d when d <= cycle ->
        (* The RMW performs atomically at its completion point. *)
        let old = read_mem t e.addr in
        let success = old = e.data2 in
        if success && in_bounds t e.addr then t.mem.(e.addr) <- e.data;
        e.result <- (if success then 1 else 0);
        e.state <- Rob.Done;
        Scope_unit.on_bits_cleared t.scope e.scope_mask;
        (match t.obs with
        | Some o ->
          Fscope_obs.Trace.emit o.trace ~core:t.id
            (Fscope_obs.Event.Cas_result { addr = e.addr; success })
        | None -> ())
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ())

let step_complete_reads t ~cycle =
  Rob.iter t.rob (fun e ->
      match (e.instr, e.state) with
      | Instr.Load _, Rob.Executing d when d <= cycle ->
        (* data2 = 1 marks a forwarded load whose value was captured at
           issue; otherwise the value is sampled from memory now, at
           the access's completion point. *)
        if e.data2 = 0 then e.result <- read_mem t e.addr;
        e.state <- Rob.Done;
        Scope_unit.on_bits_cleared t.scope e.scope_mask
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ())

(* ------------------------------------------------------------------ *)
(* Branch resolution and squash                                        *)
(* ------------------------------------------------------------------ *)

let release_squashed t (e : Rob.entry) =
  match e.instr with
  | Instr.Load _ | Instr.Cas _ ->
    if e.state <> Rob.Done then Scope_unit.on_bits_cleared t.scope e.scope_mask
  | Instr.Store _ -> Scope_unit.on_bits_cleared t.scope e.scope_mask
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fence _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    ()

let squash t (e : Rob.entry) ~actual_target ~cycle =
  let removed = Rob.squash_after t.rob e.seq in
  List.iter (release_squashed t) removed;
  (match e.checkpoint with
  | Some cp -> Array.blit cp 0 t.rename 0 (Array.length cp)
  | None -> assert false);
  Scope_unit.on_branch_mispredict t.scope ~id:e.seq;
  t.fetch_pc <- actual_target;
  t.fetch_resume <- cycle + t.cfg.mispredict_penalty;
  t.fetch_stopped <- false;
  t.stats.mispredicts <- t.stats.mispredicts + 1

let resolve_branch t (e : Rob.entry) ~cycle =
  let taken = e.result <> 0 in
  let target =
    match e.instr with
    | Instr.Branch { target; _ } -> if taken then target else e.pc + 1
    | _ -> assert false
  in
  Branch_pred.update t.bpred ~pc:e.pc ~taken;
  if taken = e.predicted_taken then Scope_unit.on_branch_correct t.scope ~id:e.seq
  else squash t e ~actual_target:target ~cycle

(* Convert due executions to Done and resolve branches, oldest first
   (a misprediction squashes the younger ones before they resolve). *)
let finalize t ~cycle =
  let rec go seq =
    if Rob.contains t.rob seq then begin
      let e = Rob.get t.rob seq in
      (match (e.instr, e.state) with
      | (Instr.Load _ | Instr.Cas _), _ -> () (* completion phases own these *)
      | Instr.Branch _, Rob.Executing d when d <= cycle ->
        e.state <- Rob.Done;
        resolve_branch t e ~cycle
      | _, Rob.Executing d when d <= cycle -> e.state <- Rob.Done
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
      go (seq + 1)
    end
  in
  match Rob.head t.rob with
  | Some e -> go e.seq
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let fence_commit_ok t (e : Rob.entry) =
  (* In-window speculation: the fence retires when the in-scope part of
     the store buffer has drained (older ROB entries are gone by
     definition at the commit head); flavours that do not order prior
     stores retire immediately. *)
  let k = match e.instr with Instr.Fence k -> k | _ -> assert false in
  (not k.Fscope_isa.Fence_kind.wait_stores)
  ||
  match e.fence_wait with
  | None -> assert false
  | Some `Global -> Store_buffer.is_empty t.sb
  | Some (`Mask m) -> not (Store_buffer.mask_overlaps t.sb m)

let commit_effects t (e : Rob.entry) =
  (match Instr.writes_reg e.instr with
  | Some r -> t.arf.(Reg.index r) <- e.result
  | None -> ());
  t.stats.committed <- t.stats.committed + 1;
  match e.instr with
  | Instr.Load _ ->
    t.stats.loads <- t.stats.loads + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Store _ ->
    t.stats.stores <- t.stats.stores + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Cas _ ->
    t.stats.cas_ops <- t.stats.cas_ops + 1;
    t.stats.committed_mem <- t.stats.committed_mem + 1
  | Instr.Fence _ -> t.stats.committed_fences <- t.stats.committed_fences + 1
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    ()

(* Why is the head fence stalled?  Charged once per stalled cycle to
   the first matching bucket (ROB loads, then ROB stores, then SB). *)
let classify_fence_stall t (e : Rob.entry) =
  let covered o =
    match e.fence_wait with
    | Some `Global | None -> true
    | Some (`Mask m) -> not (Fsb.is_empty (Fsb.inter o.Rob.scope_mask m))
  in
  let rob_load = ref false and rob_store = ref false in
  Rob.iter t.rob (fun o ->
      if o.seq < e.seq && covered o then
        match o.instr with
        | Instr.Load _ | Instr.Cas _ -> if o.state <> Rob.Done then rob_load := true
        | Instr.Store _ -> rob_store := true
        | _ -> ());
  if !rob_load then t.stats.stall_rob_load <- t.stats.stall_rob_load + 1
  else if !rob_store then t.stats.stall_rob_store <- t.stats.stall_rob_store + 1
  else t.stats.stall_sb <- t.stats.stall_sb + 1

let commit t ~cycle =
  let budget = ref t.cfg.commit_width in
  let blocked = ref false in
  while (not !blocked) && !budget > 0 && not t.halted do
    match Rob.head t.rob with
    | None -> blocked := true
    | Some e -> (
      match e.instr with
      | Instr.Halt ->
        ignore (Rob.pop_head t.rob);
        commit_effects t e;
        t.halted <- true
      | Instr.Store _ ->
        if e.state <> Rob.Done then blocked := true
        else if Store_buffer.is_full t.sb then begin
          t.stats.sb_stall_cycles <- t.stats.sb_stall_cycles + 1;
          blocked := true
        end
        else begin
          if not (in_bounds t e.addr) then
            invalid_arg
              (Printf.sprintf "core %d: store to out-of-bounds address %d (pc %d)" t.id
                 e.addr e.pc);
          let lat = Hierarchy.access t.hierarchy ~core:t.id Hierarchy.Write ~addr:e.addr in
          (* Same-address stores must become visible in program order
             (per-location coherence), so a later store may not
             overtake an in-flight one to the same address. *)
          let floor = ref 0 in
          Store_buffer.iter t.sb (fun en ->
              if en.addr = e.addr then floor := max !floor en.done_at);
          Store_buffer.push t.sb
            {
              Store_buffer.addr = e.addr;
              value = e.data;
              mask = e.scope_mask;
              done_at = max (cycle + lat) (!floor + 1);
            };
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          decr budget
        end
      | Instr.Fence _ ->
        let ok =
          if t.cfg.in_window_speculation then fence_commit_ok t e else e.fence_issued
        in
        if ok then begin
          (match t.obs with
          | Some o when o.stall_begin >= 0 ->
            let stalled = cycle - o.stall_begin in
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_end { pc = e.pc; cycles = stalled });
            Fscope_obs.Metrics.observe o.stall_hist stalled;
            o.stall_begin <- -1
          | Some _ | None -> ());
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          decr budget
        end
        else begin
          t.stats.fence_stall_cycles <- t.stats.fence_stall_cycles + 1;
          classify_fence_stall t e;
          (match t.obs with
          | Some o when o.stall_begin < 0 ->
            o.stall_begin <- cycle;
            Fscope_obs.Trace.emit o.trace ~core:t.id
              (Fscope_obs.Event.Fence_stall_begin
                 {
                   pc = e.pc;
                   global =
                     (match e.fence_wait with
                     | Some (`Mask _) -> false
                     | Some `Global | None -> true);
                 })
          | Some _ | None -> ());
          blocked := true
        end
      | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Load _ | Instr.Cas _
      | Instr.Branch _ | Instr.Jump _ | Instr.Fs_start _ | Instr.Fs_end _ ->
        if e.state = Rob.Done then begin
          ignore (Rob.pop_head t.rob);
          commit_effects t e;
          decr budget
        end
        else blocked := true)
  done

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

(* Is an older entry something the fence's flavour must still wait
   for?  Loads and CAS: until their value is bound (CAS also writes, so
   it is in both classes).  Stores: as long as they are in the ROB they
   have not even reached the store buffer. *)
let mem_incomplete (k : Fscope_isa.Fence_kind.t) (o : Rob.entry) =
  match o.instr with
  | Instr.Load _ -> k.Fscope_isa.Fence_kind.wait_loads && o.state <> Rob.Done
  | Instr.Cas _ ->
    (k.Fscope_isa.Fence_kind.wait_loads || k.Fscope_isa.Fence_kind.wait_stores)
    && o.state <> Rob.Done
  | Instr.Store _ -> k.Fscope_isa.Fence_kind.wait_stores
  | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _ | Instr.Jump _
  | Instr.Fence _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt ->
    false

let fence_kind (e : Rob.entry) =
  match e.instr with
  | Instr.Fence k -> k
  | _ -> assert false

let fence_issue_ok t (e : Rob.entry) =
  let k = fence_kind e in
  let sb_ok mask_opt =
    (not k.Fscope_isa.Fence_kind.wait_stores)
    ||
    match mask_opt with
    | None -> Store_buffer.is_empty t.sb
    | Some m -> not (Store_buffer.mask_overlaps t.sb m)
  in
  match e.fence_wait with
  | None -> assert false
  | Some `Global ->
    (not (Rob.exists_older t.rob e.seq (mem_incomplete k))) && sb_ok None
  | Some (`Mask m) ->
    (not
       (Rob.exists_older t.rob e.seq (fun o ->
            (not (Fsb.is_empty (Fsb.inter o.scope_mask m))) && mem_incomplete k o)))
    && sb_ok (Some m)

(* What should an issuing load do about the youngest older same-address
   memory operation? *)
type load_source =
  | From_memory
  | Forward of int
  | Must_wait

let load_disambiguate t (e : Rob.entry) =
  (* Any older store/CAS with an unknown address, or older same-address
     load still in flight, blocks the load (conservative
     disambiguation; same-address load-load order is coherence). *)
  if
    Rob.exists_older t.rob e.seq (fun o ->
        match o.instr with
        | Instr.Store _ | Instr.Cas _ -> o.addr < 0
        | Instr.Load _ -> o.addr = e.addr && o.state <> Rob.Done
        | _ -> false)
  then Must_wait
  else begin
    (* Youngest older same-address writer in the ROB decides. *)
    let matching =
      Rob.fold_older t.rob e.seq
        (fun acc o ->
          match o.instr with
          | (Instr.Store _ | Instr.Cas _) when o.addr = e.addr -> Some o
          | _ -> acc)
        None
    in
    match matching with
    | Some ({ instr = Instr.Store _; _ } as o) ->
      if o.state = Rob.Done then Forward o.data else Must_wait
    | Some ({ instr = Instr.Cas _; _ } as o) ->
      (* A completed CAS has already written memory; the load can read
         it there.  (No younger committed store can sit in the store
         buffer while the CAS is still in the ROB: commit is in
         order, and the CAS's own issue condition drained older
         same-address entries.) *)
      if o.state = Rob.Done then From_memory else Must_wait
    | Some _ | None -> (
      match Store_buffer.forward t.sb ~addr:e.addr with
      | Some v -> Forward v
      | None -> From_memory)
  end

let try_issue_load t (e : Rob.entry) ~cycle =
  match load_disambiguate t e with
  | Must_wait -> false
  | Forward v ->
    e.result <- v;
    e.data2 <- 1;
    e.state <- Rob.Executing (cycle + 1);
    true
  | From_memory ->
    if in_bounds t e.addr then begin
      let lat = Hierarchy.access t.hierarchy ~core:t.id Hierarchy.Read ~addr:e.addr in
      e.data2 <- 0;
      e.state <- Rob.Executing (cycle + lat)
    end
    else begin
      (* Wrong-path access to a garbage address: complete immediately
         with 0 and leave the caches untouched. *)
      e.result <- 0;
      e.data2 <- 1;
      e.state <- Rob.Executing (cycle + 1)
    end;
    true

let cas_issue_ok t (e : Rob.entry) =
  (* CAS performs a memory write at completion, which cannot be undone:
     it must be non-speculative (no unresolved older branch, no older
     uncommitted fence) and ordered after every older same-address
     access. *)
  (not
     (Rob.exists_older t.rob e.seq (fun o ->
          match o.instr with
          | Instr.Branch _ -> o.state <> Rob.Done
          | Instr.Fence _ -> true
          | Instr.Store _ -> o.addr < 0 || o.addr = e.addr
          | Instr.Cas _ -> o.addr < 0 || (o.addr = e.addr && o.state <> Rob.Done)
          | Instr.Load _ -> o.addr = e.addr && o.state <> Rob.Done
          | _ -> false)))
  && not (Store_buffer.has_addr t.sb ~addr:e.addr)

let issue t ~cycle =
  let budget = ref t.cfg.issue_width in
  (* In the non-speculative pipeline, an unissued fence whose flavour
     has [block_loads] blocks the issue of every younger load; any
     unissued fence blocks younger CAS and keeps younger fences from
     issuing (fences issue oldest-first). *)
  let pending_fence = ref false in
  let pending_blocking_fence = ref false in
  Rob.iter t.rob (fun e ->
      if !budget > 0 then begin
        match (e.instr, e.state) with
        | Instr.Fence k, _ when not e.fence_issued ->
          if (not t.cfg.in_window_speculation) && not !pending_fence then begin
            if fence_issue_ok t e then begin
              e.fence_issued <- true;
              e.state <- Rob.Done;
              decr budget
            end
            else begin
              pending_fence := true;
              if k.Fscope_isa.Fence_kind.block_loads then pending_blocking_fence := true
            end
          end
          else begin
            pending_fence := true;
            if k.Fscope_isa.Fence_kind.block_loads then pending_blocking_fence := true
          end
        | Instr.Li (_, v), Rob.Waiting ->
          e.result <- v;
          e.state <- Rob.Executing (cycle + 1);
          decr budget
        | Instr.Tid _, Rob.Waiting ->
          e.result <- t.id;
          e.state <- Rob.Executing (cycle + 1);
          decr budget
        | Instr.Alu (op, _, _, operand), Rob.Waiting -> (
          match srcs_values t cycle e with
          | None -> ()
          | Some vals ->
            let a = vals.(0) in
            let b = match operand with Instr.Reg _ -> vals.(1) | Instr.Imm i -> i in
            e.result <- eval_alu op a b;
            e.state <- Rob.Executing (cycle + 1);
            decr budget)
        | Instr.Branch { cond; _ }, Rob.Waiting -> (
          match srcs_values t cycle e with
          | None -> ()
          | Some vals ->
            let v = vals.(0) in
            let taken =
              match cond with Instr.Eqz -> v = 0 | Instr.Nez -> v <> 0
            in
            e.result <- (if taken then 1 else 0);
            e.state <- Rob.Executing (cycle + 1);
            decr budget)
        | Instr.Store { off; _ }, Rob.Waiting ->
          (* Address generation does not wait for the data: younger
             loads disambiguate against the address as soon as the
             base register is ready. *)
          if e.addr < 0 then begin
            match src_value t cycle e.srcs.(1) with
            | Some base -> e.addr <- base + off
            | None -> ()
          end;
          (match src_value t cycle e.srcs.(0) with
          | Some data when e.addr >= 0 ->
            e.data <- data;
            e.state <- Rob.Executing (cycle + 1);
            decr budget
          | Some _ | None -> ())
        | Instr.Load { off; _ }, Rob.Waiting ->
          (* Address generation is free as soon as the base is ready;
             the issue slot is only spent on the actual access. *)
          if e.addr < 0 then begin
            match src_value t cycle e.srcs.(0) with
            | Some base -> e.addr <- base + off
            | None -> ()
          end;
          if e.addr >= 0
             && ((not !pending_blocking_fence) || t.cfg.in_window_speculation)
             && try_issue_load t e ~cycle
          then decr budget
        | Instr.Cas { off; _ }, Rob.Waiting ->
          if e.addr < 0 then begin
            match srcs_values t cycle e with
            | Some vals ->
              e.addr <- vals.(0) + off;
              e.data2 <- vals.(1);
              e.data <- vals.(2)
            | None -> ()
          end;
          if e.addr >= 0
             && (not !pending_fence) (* CAS never passes a fence speculatively *)
             && cas_issue_ok t e
          then begin
            if not (in_bounds t e.addr) then
              invalid_arg
                (Printf.sprintf "core %d: CAS on out-of-bounds address %d (pc %d)" t.id
                   e.addr e.pc);
            let lat = Hierarchy.access t.hierarchy ~core:t.id Hierarchy.Rmw ~addr:e.addr in
            e.state <- Rob.Executing (cycle + lat);
            decr budget
          end
        | ( ( Instr.Nop | Instr.Jump _ | Instr.Fs_start _ | Instr.Fs_end _ | Instr.Halt
            | Instr.Fence _ ),
            _ )
        | _, (Rob.Executing _ | Rob.Done) ->
          ()
      end)

(* ------------------------------------------------------------------ *)
(* Fetch / dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let dispatch t ~cycle =
  if cycle >= t.fetch_resume && not t.fetch_stopped then begin
    let budget = ref t.cfg.fetch_width in
    let halt_fetch = ref false in
    while
      (not !halt_fetch)
      && !budget > 0
      && (not (Rob.is_full t.rob))
      && t.fetch_pc >= 0
      && t.fetch_pc < Array.length t.code
    do
      let pc = t.fetch_pc in
      let instr = t.code.(pc) in
      let seq = Rob.next_seq t.rob in
      let srcs =
        Array.of_list
          (List.map
             (fun r -> { Rob.producer = t.rename.(Reg.index r); reg = r })
             (explicit_srcs instr))
      in
      let e = Rob.make_entry ~seq ~pc ~instr ~srcs in
      (match instr with
      | Instr.Nop -> e.state <- Rob.Done
      | Instr.Fs_start cid ->
        Scope_unit.on_fs_start t.scope ~cid;
        e.state <- Rob.Done
      | Instr.Fs_end cid ->
        Scope_unit.on_fs_end t.scope ~cid;
        e.state <- Rob.Done
      | Instr.Jump target ->
        e.state <- Rob.Done;
        t.fetch_pc <- target
      | Instr.Halt ->
        e.state <- Rob.Done;
        t.fetch_stopped <- true;
        halt_fetch := true
      | Instr.Fence kind ->
        e.fence_wait <- Some (Scope_unit.fence_scope t.scope kind);
        if t.cfg.in_window_speculation then begin
          e.fence_issued <- true;
          e.state <- Rob.Done
        end
      | Instr.Load { flagged; _ } | Instr.Store { flagged; _ } | Instr.Cas { flagged; _ }
        ->
        let mask = Scope_unit.decode_mask t.scope ~flagged in
        e.scope_mask <- mask;
        Scope_unit.on_bits_set t.scope mask
      | Instr.Branch { target; _ } ->
        let predicted = Branch_pred.predict t.bpred ~pc in
        e.predicted_taken <- predicted;
        e.checkpoint <- Some (Array.copy t.rename);
        Scope_unit.on_branch t.scope ~id:seq;
        t.stats.branches <- t.stats.branches + 1;
        t.fetch_pc <- (if predicted then target else pc + 1)
      | Instr.Li _ | Instr.Alu _ | Instr.Tid _ -> ());
      (match instr with
      | Instr.Jump _ | Instr.Branch _ | Instr.Halt -> ()
      | _ -> t.fetch_pc <- pc + 1);
      (match Instr.writes_reg instr with
      | Some r -> t.rename.(Reg.index r) <- Rob.Rob seq
      | None -> ());
      Rob.dispatch t.rob e;
      decr budget
    done
  end

let step_pipeline t ~cycle =
  if not t.halted then begin
    t.stats.active_cycles <- t.stats.active_cycles + 1;
    t.stats.rob_occupancy_sum <- t.stats.rob_occupancy_sum + Rob.count t.rob;
    (match t.obs with
    | Some o ->
      Fscope_obs.Metrics.gauge_observe o.rob_gauge (Rob.count t.rob);
      Fscope_obs.Metrics.gauge_observe o.sb_gauge (Store_buffer.count t.sb)
    | None -> ());
    finalize t ~cycle;
    commit t ~cycle;
    if not t.halted then begin
      issue t ~cycle;
      dispatch t ~cycle
    end
  end
