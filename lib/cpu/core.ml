(* Public facade over the pipeline-stage submodules: Core_state (the
   record and operand plumbing), Core_exec (completions, branch
   resolution), Core_commit, Core_issue and Core_frontend.  This
   module owns creation, the per-cycle step protocol, and the two
   engine hooks ([next_wake], [account_stall_span]) the fast-forward
   scheduler uses to skip pure-stall spans. *)

module Reg = Fscope_isa.Reg
module Scope_unit = Fscope_core.Scope_unit
module Cpi = Fscope_obs.Cpi

type stats = {
  committed : int;
  stall_rob_load : int;
  stall_rob_store : int;
  stall_sb : int;
  committed_mem : int;
  committed_fences : int;
  fence_stall_cycles : int;
  sb_stall_cycles : int;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  cas_ops : int;
  rob_occupancy_sum : int;
  active_cycles : int;
}

type t = Core_state.t

let create ?(trace = Fscope_obs.Trace.null) ~id ~code ~port ~scope_config ~exec_config ()
    =
  Exec_config.validate exec_config;
  let obs =
    if Fscope_obs.Trace.on trace then
      let m = Fscope_obs.Trace.metrics trace in
      let named fmt = Printf.sprintf fmt id in
      Some
        {
          Core_state.trace;
          stall_hist = Fscope_obs.Metrics.histogram m "fence/stall_cycles";
          rob_gauge = Fscope_obs.Metrics.gauge m (named "core%d/rob_occupancy");
          sb_gauge = Fscope_obs.Metrics.gauge m (named "core%d/sb_occupancy");
          stall_begin = -1;
        }
    else None
  in
  {
    Core_state.id;
    code;
    port;
    scope = Scope_unit.create ~trace ~core:id scope_config;
    cfg = exec_config;
    rob = Rob.create ~trace ~core:id ~size:exec_config.rob_size ();
    sb = Store_buffer.create ~trace ~core:id ~capacity:exec_config.sb_size ();
    bpred = Branch_pred.create ~entries:exec_config.bpred_entries;
    arf = Array.make Reg.count 0;
    rename = Array.make Reg.count Rob.Arch;
    fetch_pc = 0;
    fetch_resume = 0;
    fetch_stopped = false;
    halted = false;
    arch_nest = [];
    counts = Core_state.fresh_counts ();
    cpi = Cpi.create ();
    cycle_charged = false;
    spin_last_pc = -1;
    spin_dirty = true;
    spin_mode = false;
    spin_probe = Core_state.fresh_probe ();
    obs;
  }

let id (t : t) = t.id
let halted (t : t) = t.halted
let drained (t : t) = t.halted && Store_buffer.is_empty t.sb

(* The legacy stats record is now a derived view: commit-stream
   counters straight from [counts], stall attribution summed out of
   the CPI table (so the two can never disagree). *)
let stats (t : t) =
  let c = t.Core_state.counts in
  let cpi = t.Core_state.cpi in
  {
    committed = c.committed;
    stall_rob_load = Cpi.fence_cause_cycles cpi Cpi.Rob_load;
    stall_rob_store = Cpi.fence_cause_cycles cpi Cpi.Rob_store;
    stall_sb = Cpi.fence_cause_cycles cpi Cpi.Sb_drain;
    committed_mem = c.committed_mem;
    committed_fences = c.committed_fences;
    fence_stall_cycles = Cpi.fence_cycles cpi;
    sb_stall_cycles = Cpi.get cpi Cpi.Sb_full;
    branches = c.branches;
    mispredicts = c.mispredicts;
    loads = c.loads;
    stores = c.stores;
    cas_ops = c.cas_ops;
    rob_occupancy_sum = c.rob_occupancy_sum;
    active_cycles = c.active_cycles;
  }

let cpi (t : t) = Cpi.copy t.Core_state.cpi
let scope_unit (t : t) = t.scope

let step_complete_writes = Core_exec.step_complete_writes
let step_complete_reads = Core_exec.step_complete_reads

let step_pipeline (t : t) ~cycle =
  if t.halted then false
  else begin
    t.counts.active_cycles <- t.counts.active_cycles + 1;
    t.counts.rob_occupancy_sum <- t.counts.rob_occupancy_sum + Rob.count t.rob;
    (match t.obs with
    | Some o ->
      Fscope_obs.Metrics.gauge_observe o.rob_gauge (Rob.count t.rob);
      Fscope_obs.Metrics.gauge_observe o.sb_gauge (Store_buffer.count t.sb)
    | None -> ());
    t.cycle_charged <- false;
    let p_final = Core_exec.finalize t ~cycle in
    let p_commit = Core_commit.commit t ~cycle in
    let p_back =
      if not t.halted then begin
        let p_issue = Core_issue.issue t ~cycle in
        let p_dispatch = Core_frontend.dispatch t ~cycle in
        p_issue || p_dispatch
      end
      else false
    in
    (* Exactly one CPI leaf per active cycle: the commit loop already
       charged a blocked fence / full store buffer if that is what
       bounded this cycle; otherwise commits decide, and a
       zero-commit cycle is classified off the (then stable) head. *)
    if not t.cycle_charged then
      Cpi.charge t.cpi
        (if p_commit then if t.spin_mode then Cpi.Spin_candidate else Cpi.Commit
         else Core_commit.classify_blocked t ~cycle);
    (* End-of-cycle spin-stability probe: runs only on cycles in which
       a spinning backward edge committed, and only when the engine
       opted in (never in the naive reference loop or under tracing). *)
    let pr = t.spin_probe in
    if pr.pr_boundary then begin
      pr.pr_boundary <- false;
      Core_spin.on_boundary t ~cycle
    end;
    p_final || p_commit || p_back
  end

let account_stall_span = Core_commit.account_stall_span

type spin_stable = Core_state.stable = {
  armed_cycle : int;
  period : int;
  d_counts : int array;
  d_cpi : int array;
  loads_per_period : int;
  footprint : int list;
}

let set_spin_ff (t : t) on = t.spin_probe.pr_enabled <- on
let spin_poll = Core_spin.poll
let spin_cancel = Core_spin.cancel
let spin_replay (t : t) ~stable ~k = Core_spin.replay t ~stable ~k

(* Shard-classification predicates for the domain-sharded engine: may
   the core's next sub-step touch state shared between cores?  Each
   over-approximates (a [true] only costs parallelism; a missed [true]
   would break bit-identity), and each is exact enough to matter. *)

(* Phase 1 (complete-writes) touches shared memory iff a store-buffer
   entry drains this cycle or a CAS reaches its completion point.
   Exact at the time the engine asks (phase-1 start): phase 1 never
   creates new completions. *)
let writes_pending (t : t) ~cycle =
  let pending = ref false in
  Store_buffer.iter t.sb (fun en -> if en.done_at <= cycle then pending := true);
  if not !pending then
    Rob.iter t.rob (fun e ->
        match (e.instr, e.state) with
        | Fscope_isa.Instr.Cas _, Rob.Executing d -> if d <= cycle then pending := true
        | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
  !pending

(* Phase 3 (pipeline) reaches the memory port — and under the cache
   hierarchy model, shared directory/stats state even on an L1 hit —
   in exactly three places: a store committing into the store buffer,
   a load issuing, a CAS issuing.  Stores can commit from any ROB
   state; loads and CAS issue only out of [Waiting].  Dispatch runs
   after issue within the step, so entries appearing this cycle cannot
   also issue this cycle and the phase-start answer is sound. *)
let may_touch_mem (t : t) =
  (not t.halted)
  &&
  let touch = ref false in
  Rob.iter t.rob (fun e ->
      match (e.instr, e.state) with
      | Fscope_isa.Instr.Store _, _ -> touch := true
      | (Fscope_isa.Instr.Load _ | Fscope_isa.Instr.Cas _), Rob.Waiting -> touch := true
      | _, (Rob.Waiting | Rob.Executing _ | Rob.Done) -> ());
  !touch

(* Can this phase-3 step end with an armed spin-stability certificate
   (and therefore a sleep transition, which registers shared watches)?
   Arming inside [Core_spin.on_boundary] compares against a snapshot
   taken at a PREVIOUS boundary, so [pr_snap = None] at phase start
   guarantees {!spin_poll} returns [None] this cycle. *)
let spin_may_arm (t : t) =
  t.spin_probe.pr_enabled && t.spin_probe.pr_snap <> None

(* Whole-cycle FREE horizon for barrier elision.  [quiet_until t ~from
   ~cap ~hier] returns the largest cycle X in [from-1, cap] such that
   stepping this core through cycles [from..X] provably performs no
   shared-state step: no store-buffer drain or CAS write reaches
   memory, no ordered phase-3 step runs, no spin certificate can arm
   (so no sleep transition registers watches), and the core cannot
   halt (so the engine's drain bookkeeping stays untouched).  [from-1]
   means "no quiet span at all".  Three sources bound the horizon:

   - the store buffer: the earliest [done_at] writes memory, so the
     span must end strictly before it;
   - the ROB: any in-flight Store / Cas / Branch / Halt (plus Load
     under the cache hierarchy, where even a hit bumps directory
     state) can act at unpredictable cycles once present, so its mere
     presence collapses the horizon;
   - the fetch stream: walking the static code from [fetch_pc]
     (following unconditional jumps, assuming fetch restarts at
     [max from fetch_resume] and sustains the full fetch width — both
     earliest-possible, therefore conservative) bounds the first cycle
     an unsafe instruction can enter the ROB; the span ends strictly
     before that fetch cycle.  No Branch in the ROB or in the walked
     prefix means nothing can redirect fetch off the walked path, and
     ROB-full back-pressure only delays fetch, never hastens it.

   The walk is capped at [stream_walk_slots] budget slots so a pure
   jump/ALU loop terminates; stopping early just shortens the proven
   span, never unsounds it. *)
let stream_walk_slots = 1024

let quiet_until (t : t) ~from ~cap ~hier =
  let bound = ref cap in
  let cut c = if c < !bound then bound := c in
  Store_buffer.iter t.sb (fun en -> cut (en.done_at - 1));
  if not t.halted then begin
    if spin_may_arm t then cut (from - 1);
    Rob.iter t.rob (fun e ->
        match e.instr with
        | Fscope_isa.Instr.Store _ | Fscope_isa.Instr.Cas _ | Fscope_isa.Instr.Branch _
        | Fscope_isa.Instr.Halt -> cut (from - 1)
        | Fscope_isa.Instr.Load _ -> if hier then cut (from - 1)
        | Fscope_isa.Instr.Nop | Fscope_isa.Instr.Li _ | Fscope_isa.Instr.Alu _
        | Fscope_isa.Instr.Tid _ | Fscope_isa.Instr.Jump _ | Fscope_isa.Instr.Fence _
        | Fscope_isa.Instr.Fs_start _ | Fscope_isa.Instr.Fs_end _ -> ());
    if (not t.fetch_stopped) && !bound >= from then begin
      let width = max 1 t.cfg.Exec_config.fetch_width in
      let first = max from t.fetch_resume in
      let len = Array.length t.code in
      let pc = ref t.fetch_pc in
      let slots = ref 0 in
      let scanning = ref true in
      while !scanning do
        let fetch_cycle = first + (!slots / width) in
        if !pc < 0 || !pc >= len then scanning := false (* fetch runs dry *)
        else if fetch_cycle > !bound then scanning := false
        else if !slots >= stream_walk_slots then begin
          cut (fetch_cycle - 1);
          scanning := false
        end
        else
          match t.code.(!pc) with
          | Fscope_isa.Instr.Store _ | Fscope_isa.Instr.Cas _
          | Fscope_isa.Instr.Branch _ | Fscope_isa.Instr.Halt ->
            cut (fetch_cycle - 1);
            scanning := false
          | Fscope_isa.Instr.Load _ when hier ->
            cut (fetch_cycle - 1);
            scanning := false
          | Fscope_isa.Instr.Jump target ->
            incr slots;
            pc := target
          | Fscope_isa.Instr.Nop | Fscope_isa.Instr.Li _ | Fscope_isa.Instr.Alu _
          | Fscope_isa.Instr.Tid _ | Fscope_isa.Instr.Load _ | Fscope_isa.Instr.Fence _
          | Fscope_isa.Instr.Fs_start _ | Fscope_isa.Instr.Fs_end _ ->
            incr slots;
            incr pc
      done
    end
  end;
  max (from - 1) !bound

let next_wake (t : t) ~cycle =
  let m = ref max_int in
  let consider d = if d > cycle && d < !m then m := d in
  if not t.halted then begin
    Rob.iter t.rob (fun e ->
        match e.state with
        | Rob.Executing d -> consider d
        | Rob.Waiting | Rob.Done -> ());
    if (not t.fetch_stopped) && t.fetch_resume > cycle then consider t.fetch_resume
  end;
  (* Even a halted core's store buffer keeps draining — those
     completions write memory and gate [drained]. *)
  Store_buffer.iter t.sb (fun en -> consider en.done_at);
  if !m = max_int then None else Some !m

(* ------------------------------------------------------------------ *)
(* Whole-core checkpointing and sampled-mode support (Core_ckpt,
   Core_func). *)

let snapshot = Core_ckpt.snapshot
let restore = Core_ckpt.restore
let traced (t : t) = t.Core_state.obs <> None
let flushable = Core_ckpt.flushable
let park = Core_ckpt.park
let unpark = Core_ckpt.unpark
let flush_arch = Core_ckpt.flush_arch
let reseed_scope = Core_ckpt.reseed_scope
let counters_snapshot = Core_ckpt.counters_snapshot
let counters_restore = Core_ckpt.counters_restore
let extrapolate = Core_ckpt.extrapolate
let func_step = Core_func.step
