(* Public facade over the pipeline-stage submodules: Core_state (the
   record and operand plumbing), Core_exec (completions, branch
   resolution), Core_commit, Core_issue and Core_frontend.  This
   module owns creation, the per-cycle step protocol, and the two
   engine hooks ([next_wake], [account_stall_span]) the fast-forward
   scheduler uses to skip pure-stall spans. *)

module Reg = Fscope_isa.Reg
module Scope_unit = Fscope_core.Scope_unit

type stats = Core_state.stats = {
  mutable committed : int;
  mutable stall_rob_load : int;
  mutable stall_rob_store : int;
  mutable stall_sb : int;
  mutable committed_mem : int;
  mutable committed_fences : int;
  mutable fence_stall_cycles : int;
  mutable sb_stall_cycles : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable rob_occupancy_sum : int;
  mutable active_cycles : int;
}

type t = Core_state.t

let create ?(trace = Fscope_obs.Trace.null) ~id ~code ~port ~scope_config ~exec_config ()
    =
  Exec_config.validate exec_config;
  let obs =
    if Fscope_obs.Trace.on trace then
      let m = Fscope_obs.Trace.metrics trace in
      let named fmt = Printf.sprintf fmt id in
      Some
        {
          Core_state.trace;
          stall_hist = Fscope_obs.Metrics.histogram m "fence/stall_cycles";
          rob_gauge = Fscope_obs.Metrics.gauge m (named "core%d/rob_occupancy");
          sb_gauge = Fscope_obs.Metrics.gauge m (named "core%d/sb_occupancy");
          stall_begin = -1;
        }
    else None
  in
  {
    Core_state.id;
    code;
    port;
    scope = Scope_unit.create ~trace ~core:id scope_config;
    cfg = exec_config;
    rob = Rob.create ~trace ~core:id ~size:exec_config.rob_size ();
    sb = Store_buffer.create ~trace ~core:id ~capacity:exec_config.sb_size ();
    bpred = Branch_pred.create ~entries:exec_config.bpred_entries;
    arf = Array.make Reg.count 0;
    rename = Array.make Reg.count Rob.Arch;
    fetch_pc = 0;
    fetch_resume = 0;
    fetch_stopped = false;
    halted = false;
    stats = Core_state.fresh_stats ();
    obs;
  }

let id (t : t) = t.id
let halted (t : t) = t.halted
let drained (t : t) = t.halted && Store_buffer.is_empty t.sb
let stats (t : t) = t.stats
let scope_unit (t : t) = t.scope

let step_complete_writes = Core_exec.step_complete_writes
let step_complete_reads = Core_exec.step_complete_reads

let step_pipeline (t : t) ~cycle =
  if t.halted then false
  else begin
    t.stats.active_cycles <- t.stats.active_cycles + 1;
    t.stats.rob_occupancy_sum <- t.stats.rob_occupancy_sum + Rob.count t.rob;
    (match t.obs with
    | Some o ->
      Fscope_obs.Metrics.gauge_observe o.rob_gauge (Rob.count t.rob);
      Fscope_obs.Metrics.gauge_observe o.sb_gauge (Store_buffer.count t.sb)
    | None -> ());
    let p_final = Core_exec.finalize t ~cycle in
    let p_commit = Core_commit.commit t ~cycle in
    let p_back =
      if not t.halted then begin
        let p_issue = Core_issue.issue t ~cycle in
        let p_dispatch = Core_frontend.dispatch t ~cycle in
        p_issue || p_dispatch
      end
      else false
    in
    p_final || p_commit || p_back
  end

let account_stall_span = Core_commit.account_stall_span

let next_wake (t : t) ~cycle =
  let m = ref max_int in
  let consider d = if d > cycle && d < !m then m := d in
  if not t.halted then begin
    Rob.iter t.rob (fun e ->
        match e.state with
        | Rob.Executing d -> consider d
        | Rob.Waiting | Rob.Done -> ());
    if (not t.fetch_stopped) && t.fetch_resume > cycle then consider t.fetch_resume
  end;
  (* Even a halted core's store buffer keeps draining — those
     completions write memory and gate [drained]. *)
  Store_buffer.iter t.sb (fun en -> consider en.done_at);
  if !m = max_int then None else Some !m
