(** The store buffer: committed stores on their way to memory.

    Stores are retired here in program order at commit and each is
    immediately in flight in the memory system; entries *complete* —
    become globally visible — when their memory access latency
    elapses, which may happen out of order (a hit behind a miss
    completes first).  That out-of-order visibility is the W->W
    relaxation of the simulated RMO machine.

    Each entry carries the fence scope bits its store was dispatched
    with, so scoped fences can wait on exactly the in-scope stores
    (the paper extends store-buffer entries with FSBs). *)

type entry = {
  addr : int;
  value : int;
  mask : Fscope_core.Fsb.mask;
  done_at : int;  (** cycle at which the store becomes globally visible *)
}

type t

val create : ?trace:Fscope_obs.Trace.t -> ?core:int -> capacity:int -> unit -> t
(** When [trace] is live, [push] emits [Sb_insert] and
    [take_completed] emits one [Sb_drain] per completed entry for
    [core].  Defaults to the disabled {!Fscope_obs.Trace.null}. *)

val capacity : t -> int
val is_full : t -> bool
val is_empty : t -> bool
val count : t -> int

val push : t -> entry -> unit
(** Raises [Invalid_argument] when full. *)

val take_completed : t -> cycle:int -> entry list
(** Remove and return every entry with [done_at <= cycle], oldest
    first.  These are the stores whose values the machine must apply
    to memory this cycle. *)

val forward : t -> addr:int -> int option
(** Youngest entry to [addr], for store-to-load forwarding. *)

val has_addr : t -> addr:int -> bool

val mask_overlaps : t -> Fscope_core.Fsb.mask -> bool
(** Does any entry's scope bits intersect the given mask?  (The fence
    FSB check over the store buffer.) *)

val iter : t -> (entry -> unit) -> unit
(** Oldest first. *)

val restore : t -> entry list -> unit
(** Checkpoint restore: replace the contents with [entries] (oldest
    first).  Emits no events. *)
