(** Pipeline parameters of one out-of-order core. *)

type t = {
  rob_size : int;  (** reorder buffer entries (paper default 128) *)
  sb_size : int;  (** store buffer entries (paper §VI-E uses 8) *)
  fetch_width : int;  (** instructions dispatched per cycle *)
  issue_width : int;  (** instructions issued to execute per cycle *)
  commit_width : int;  (** instructions retired per cycle *)
  mispredict_penalty : int;
      (** cycles the front end stays silent after a branch misprediction *)
  in_window_speculation : bool;
      (** Gharachorloo-style in-window speculation: fences do not block
          the issue of younger accesses; the condition is instead
          checked when the fence retires (the paper's T+ / S+ bars) *)
  nop_fences : bool;
      (** fences retire immediately and order nothing — the profiler's
          no-fence ablation ("where would the time go with free
          fences").  Timing-only: functional workload checks may fail
          without ordering. *)
  bpred_entries : int;  (** bimodal predictor table size (power of two) *)
  spin_fastforward : bool;
      (** let the engine put a core whose commit stream is a stable
          read-only spin loop to sleep until a cross-core store (or an
          invalidation of one of its cache lines) can change what the
          loop observes, replaying the skipped iterations' accounting
          in closed form.  A pure wall-clock optimisation: results are
          bit-identical either way.  Ignored by the naive reference
          loop and by traced runs. *)
}

val default : t
(** ROB 128, SB 8, 4-wide fetch/issue/commit, 5-cycle mispredict
    penalty, speculation off, 512-entry predictor, spin fast-forward
    on. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical values. *)
