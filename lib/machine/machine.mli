(** The multicore machine: one core per program thread, private L1s,
    a shared L2, flat shared memory, and a global cycle scheduler.

    Per cycle the machine advances every core through three phases in
    a fixed order — store/CAS completions become visible, then load
    completions sample memory, then the pipelines step — which makes
    same-cycle cross-core interactions deterministic.  The whole run
    is therefore a pure function of (program, config).

    The default {!run} drives the {!Sim_engine} event-horizon
    fast-forward loop, which skips stepping any core over a span in
    which it is provably frozen and jumps the clock when every core
    is; {!run_reference} retains the naive one-cycle-at-a-time loop.
    The two are bit-identical in every [result] field — the
    differential test suite enforces this. *)

type spin_ff = {
  sleeps : int;  (** times the engine put a core into spin-sleep *)
  cycles_skipped : int;  (** core-cycles replayed in closed form *)
  wakes : int;  (** sleeps ended by a cross-core store or invalidation *)
}
(** Spin fast-forward counters of the run (see
    [Exec_config.spin_fastforward]).  All zero under {!run_reference},
    on traced runs (tracing disables the optimisation), or when the
    workload never reached a stable spin.  Deliberately NOT part of the
    bit-identity contract between the two loops — they describe how the
    engine got to the result, not the result. *)

type shard_ctrs = {
  barriers : int;  (** barrier generations the sharded loop crossed *)
  elided_cycles : int;
      (** cycles run inside elided spans — one meeting barrier per
          span instead of four barriers per cycle (DESIGN §16) *)
}
(** Lockstep-traffic counters of the sharded engine.  Zero for
    sequential / naive / unsharded-sampled runs.  Like {!spin_ff},
    engine diagnostics — NOT part of the bit-identity contract. *)

val no_shard_ctrs : shard_ctrs
(** All-zero counters, for harnesses that strip engine diagnostics
    before comparing results across engines. *)

type result = {
  cycles : int;  (** cycle at which every core had halted and drained *)
  timed_out : bool;  (** the run hit [max_cycles] before finishing *)
  core_stats : Fscope_cpu.Core.stats array;
  core_cpi : Fscope_obs.Cpi.t array;
      (** per-core cycle accounting: every active cycle charged to one
          {!Fscope_obs.Cpi.leaf}; per core the leaves sum to that
          core's [active_cycles].  Bit-identical between {!run} and
          {!run_reference}. *)
  mem : int array;  (** final shared memory, for functional self-checks *)
  cache : Fscope_mem.Hierarchy.stats;
  spin : spin_ff;
  shard : shard_ctrs;
  sample_windows : (int * int) list;
      (** a sampled run's measured detailed windows as inclusive
          [start, end] cycle ranges ([[]] otherwise); the sampled
          latency extraction keeps only inject→retire pairs whose
          endpoints fall inside one window *)
  obs : Fscope_obs.Report.t option;
      (** present iff the run was traced; carries the event stream and
          the metrics registry (which includes a snapshot of every
          legacy stat under [core<i>/...], [mem/...], [engine/...],
          [total/...]) *)
}

val run :
  ?obs:Fscope_obs.Trace.t ->
  ?checkpoint:int * (Checkpoint.t -> unit) ->
  ?resume:Checkpoint.t ->
  Config.t ->
  Fscope_isa.Program.t ->
  result
(** [obs] (default: the disabled {!Fscope_obs.Trace.null}) collects
    the typed event stream and metrics of the run; pass a live
    {!Fscope_obs.Trace.create} to get [result.obs].  Tracing is
    timing-neutral: the cycle count of a traced run is bit-identical
    to an untraced one.

    [checkpoint:(every, sink)] hands [sink] a whole-machine
    {!Checkpoint.t} at (roughly) every [every] cycles; [resume]
    continues a run from such a checkpoint — the resumed run is
    bit-identical to the uninterrupted one.  Both compose with
    [Config.shard_domains] (the sharded loop captures stop-the-world
    at its publish window, at exactly the sequential loop's cycles)
    and require an untraced run; both are rejected
    ([Invalid_argument]) when [Config.sampling] is set.

    With [Config.sampling = Some _] the run uses the interval-sampled
    engine: exact event counters and final memory, ESTIMATED
    cycle-valued metrics (see DESIGN §15); [spin] is then all zero.
    Untraced sampled runs shard their detailed windows across
    [Config.shard_domains]; traced sampled runs stay sequential and
    record [sample_windows] for the latency extraction. *)

val run_reference : ?obs:Fscope_obs.Trace.t -> Config.t -> Fscope_isa.Program.t -> result
(** Same machine, driven by the retained naive per-cycle loop instead
    of the fast-forward engine.  Exists as the differential-testing
    reference and the bench baseline; results are bit-identical to
    {!run}. *)

val fence_stall_cycles : result -> int
(** Sum of per-core commit-head fence stalls. *)

val total_active_cycles : result -> int
(** Sum of per-core active cycles — the denominator used when quoting
    the fence-stall share of execution, as in the paper's stacked
    bars. *)

val fence_stall_fraction : result -> float
(** [fence_stall_cycles / total_active_cycles]. *)

val committed_instrs : result -> int
val avg_rob_occupancy : result -> float
