(** The cycle scheduler: builds a machine instance (cores wired to the
    cache hierarchy and flat memory through a {!Fscope_cpu.Mem_port})
    and drives the three-phase step protocol.

    Two loops share that setup.  {!run} is the event-horizon
    fast-forward engine: each sub-step reports whether it changed
    pipeline state, and a core whose whole cycle made no progress is
    frozen — nothing can change its state before its earliest
    scheduled completion ({!Fscope_cpu.Core.next_wake}), no matter
    what other cores do meanwhile.  The engine puts such a core to
    sleep until that horizon, replaying the skipped span's
    stall/occupancy accounting in O(1), and steps only awake cores;
    when every core sleeps, the clock jumps straight to the earliest
    wake-up.  Results (cycle counts, every stats field, final memory,
    metrics) are bit-identical to stepping each core every cycle.
    {!run_naive} is the retained reference loop, kept for differential
    testing and as the baseline the bench harness quotes speedups
    against. *)

type spin_stats = {
  mutable sleeps : int;
  mutable cycles_skipped : int;
  mutable wakes : int;
}
(** Spin fast-forward bookkeeping: how often a provably-stable spin
    loop was put to sleep, how many of its cycles were replayed in
    closed form instead of stepped, and how many sleeps ended in a
    cross-core wake (the rest ran into the cycle limit).  Always zero
    for {!run_naive}, for traced runs, and with
    [Exec_config.spin_fastforward] off. *)

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Fscope_cpu.Core.t array;
  mem : int array;
  hierarchy : Fscope_mem.Hierarchy.t;
  spin : spin_stats;
}

val run :
  ?obs:Fscope_obs.Trace.t ->
  ?checkpoint:int * (Checkpoint.t -> unit) ->
  ?resume:Checkpoint.t ->
  Config.t ->
  Fscope_isa.Program.t ->
  raw
(** Event-horizon fast-forward loop.  With [Config.shard_domains > 1]
    (and a multi-core program) the cores are partitioned cyclically
    across that many OCaml domains, which run the same three-phase
    protocol with barriers at phase boundaries and a global-order
    token serialising exactly the steps that touch shared state —
    results stay bit-identical to the sequential loop (and to
    {!run_naive}) except for the spin fast-forward counters, which
    every consumer already treats as engine diagnostics.

    [checkpoint:(every, sink)]: capture a whole-machine checkpoint at
    the top of the first visited cycle at or past each multiple of
    [every] and hand it to [sink].  [resume]: start from a checkpoint
    instead of cycle 0 (digest-validated; [Failure] on mismatch).
    Both force the sequential loop — sound for any [shard_domains] —
    and require an untraced run.  A resumed run is bit-identical to
    the uninterrupted one.

    With [Config.sampling = Some _] the run is dispatched to
    {!run_sampled}; combining sampling with checkpointing is
    [Invalid_argument]. *)

val run_sampled :
  ?obs:Fscope_obs.Trace.t -> Config.t -> Fscope_isa.Program.t -> Config.sampling -> raw
(** SMARTS-style interval sampling: measured detailed windows
    alternate with functional fast-forward, and cycle-valued metrics
    (CPI leaves, mispredicts, occupancy, cache stats, [cycles]) are
    scaled by committed-instruction coverage at the end.  Exact event
    counters (committed / memory / fence / load / store / CAS /
    branch counts, final memory) remain exact.  Deterministic, but an
    estimate — the sampled harness bounds the per-metric error.
    Untraced runs only ([Invalid_argument] otherwise); spin
    fast-forward stays off inside windows.  The detailed->functional
    transition settles rather than flushing blindly: a core flushes
    only once {!Fscope_cpu.Core.flushable} holds (no completed CAS
    still in its ROB — its RMW already hit memory and must not be
    re-applied functionally) and is parked while stragglers step
    detailed to their own flush points. *)

val run_naive : ?obs:Fscope_obs.Trace.t -> Config.t -> Fscope_isa.Program.t -> raw
(** The naive one-cycle-at-a-time reference loop. *)
