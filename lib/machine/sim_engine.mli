(** The cycle scheduler: builds a machine instance (cores wired to the
    cache hierarchy and flat memory through a {!Fscope_cpu.Mem_port})
    and drives the three-phase step protocol.

    Two loops share that setup.  {!run} is the event-horizon
    fast-forward engine: each sub-step reports whether it changed
    pipeline state, and a core whose whole cycle made no progress is
    frozen — nothing can change its state before its earliest
    scheduled completion ({!Fscope_cpu.Core.next_wake}), no matter
    what other cores do meanwhile.  The engine puts such a core to
    sleep until that horizon, replaying the skipped span's
    stall/occupancy accounting in O(1), and steps only awake cores;
    when every core sleeps, the clock jumps straight to the earliest
    wake-up.  Results (cycle counts, every stats field, final memory,
    metrics) are bit-identical to stepping each core every cycle.
    {!run_naive} is the retained reference loop, kept for differential
    testing and as the baseline the bench harness quotes speedups
    against. *)

type spin_stats = {
  mutable sleeps : int;
  mutable cycles_skipped : int;
  mutable wakes : int;
}
(** Spin fast-forward bookkeeping: how often a provably-stable spin
    loop was put to sleep, how many of its cycles were replayed in
    closed form instead of stepped, and how many sleeps ended in a
    cross-core wake (the rest ran into the cycle limit).  Always zero
    for {!run_naive}, for traced runs, and with
    [Exec_config.spin_fastforward] off. *)

type shard_stats = {
  mutable barriers : int;
  mutable elided_cycles : int;
}
(** Lockstep-traffic bookkeeping of the sharded loop: barrier
    generations crossed, and cycles run inside elided spans (one
    meeting barrier per span instead of four barriers per cycle — see
    DESIGN.md §16).  Zeros for sequential, naive and unsharded
    sampled runs.  Engine diagnostics, like {!spin_stats}: excluded
    from bit-identity comparisons. *)

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Fscope_cpu.Core.t array;
  mem : int array;
  hierarchy : Fscope_mem.Hierarchy.t;
  spin : spin_stats;
  shard : shard_stats;
  windows : (int * int) list;
      (** a sampled run's measured detailed windows, as inclusive
          [start, end] cycle ranges in run order ([[]] otherwise) —
          the latency extraction uses these to keep only event pairs
          whose endpoints both fall inside one measured window *)
}

val run :
  ?obs:Fscope_obs.Trace.t ->
  ?checkpoint:int * (Checkpoint.t -> unit) ->
  ?resume:Checkpoint.t ->
  Config.t ->
  Fscope_isa.Program.t ->
  raw
(** Event-horizon fast-forward loop.  With [Config.shard_domains > 1]
    (and a multi-core program) the cores are partitioned cyclically
    across that many OCaml domains, which run the same three-phase
    protocol with barriers at phase boundaries and a global-order
    token serialising exactly the steps that touch shared state —
    results stay bit-identical to the sequential loop (and to
    {!run_naive}) except for the spin fast-forward and shard
    counters, which every consumer already treats as engine
    diagnostics.  With [Config.elide_barriers] (the default), the
    sharded loop additionally collapses spans of provably
    non-interacting cycles — no memory writes, no ordered steps, no
    sleep or drain transitions machine-wide, per
    {!Fscope_cpu.Core.quiet_until} — to a single meeting barrier.

    [checkpoint:(every, sink)]: capture a whole-machine checkpoint at
    the top of the first visited cycle at or past each multiple of
    [every] and hand it to [sink].  [resume]: start from a checkpoint
    instead of cycle 0 (digest-validated; [Failure] on mismatch).
    Both compose with sharding: the sharded loop restores before
    spawning its domains and captures stop-the-world at the
    top-of-cycle publish window, at exactly the cycles the sequential
    loop would, so checkpoints and resumed runs are bit-identical
    across engines.  Untraced runs only.

    With [Config.sampling = Some _] the run is dispatched to
    {!run_sampled}; combining sampling with checkpointing is
    [Invalid_argument]. *)

val run_sampled :
  ?obs:Fscope_obs.Trace.t -> Config.t -> Fscope_isa.Program.t -> Config.sampling -> raw
(** SMARTS-style interval sampling: measured detailed windows
    alternate with functional fast-forward, and cycle-valued metrics
    (CPI leaves, mispredicts, occupancy, cache stats, [cycles]) are
    scaled by committed-instruction coverage at the end.  Exact event
    counters (committed / memory / fence / load / store / CAS /
    branch counts, final memory) remain exact.  Deterministic, but an
    estimate — the sampled harness bounds the per-metric error.

    With [Config.shard_domains > 1] on an untraced run, the detailed
    windows (warmup and measured alike) run under the sharded
    three-phase protocol on a persistent worker team; functional legs
    and settle loops stay sequential.  Bit-identical to the
    sequential sampled run for any shard count.  Traced runs are
    allowed since the windows record their cycle ranges
    ([raw.windows]): they force sequential windows and advance the
    trace clock only while stepping detailed cycles, which is what
    the sampled latency extraction consumes.  Spin fast-forward stays
    off inside windows.  The detailed->functional transition settles
    rather than flushing blindly: a core flushes only once
    {!Fscope_cpu.Core.flushable} holds (no completed CAS still in its
    ROB — its RMW already hit memory and must not be re-applied
    functionally) and is parked while stragglers step detailed to
    their own flush points. *)

val run_naive : ?obs:Fscope_obs.Trace.t -> Config.t -> Fscope_isa.Program.t -> raw
(** The naive one-cycle-at-a-time reference loop. *)
