module Core = Fscope_cpu.Core
module Hierarchy = Fscope_mem.Hierarchy
module Obs = Fscope_obs

type spin_ff = {
  sleeps : int;
  cycles_skipped : int;
  wakes : int;
}

type shard_ctrs = {
  barriers : int;
  elided_cycles : int;
}

let no_shard_ctrs = { barriers = 0; elided_cycles = 0 }

type result = {
  cycles : int;
  timed_out : bool;
  core_stats : Core.stats array;
  core_cpi : Obs.Cpi.t array;
  mem : int array;
  cache : Hierarchy.stats;
  spin : spin_ff;
  shard : shard_ctrs;
  sample_windows : (int * int) list;
  obs : Obs.Report.t option;
}

let fence_stall_cycles r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.fence_stall_cycles) 0 r.core_stats

let total_active_cycles r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.active_cycles) 0 r.core_stats

let fence_stall_fraction r =
  Fscope_util.Stats.ratio ~num:(fence_stall_cycles r) ~den:(total_active_cycles r)

let committed_instrs r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.committed) 0 r.core_stats

let avg_rob_occupancy r =
  let sum =
    Array.fold_left (fun acc (s : Core.stats) -> acc + s.rob_occupancy_sum) 0 r.core_stats
  in
  Fscope_util.Stats.ratio ~num:sum ~den:(total_active_cycles r)

(* Snapshot every legacy stats record into the trace's metrics registry
   under stable names, so the registry subsumes the scattered
   [Core.stats] / [Hierarchy.stats] fields (and the summary sink's
   totals match the legacy accessors exactly). *)
let snapshot_stats trace r =
  let m = Obs.Trace.metrics trace in
  let set name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
  Array.iteri
    (fun i (s : Core.stats) ->
      let set_c field v = set (Printf.sprintf "core%d/%s" i field) v in
      set_c "committed" s.committed;
      set_c "committed_mem" s.committed_mem;
      set_c "committed_fences" s.committed_fences;
      set_c "fence_stall_cycles" s.fence_stall_cycles;
      set_c "stall_rob_load" s.stall_rob_load;
      set_c "stall_rob_store" s.stall_rob_store;
      set_c "stall_sb" s.stall_sb;
      set_c "sb_stall_cycles" s.sb_stall_cycles;
      set_c "branches" s.branches;
      set_c "mispredicts" s.mispredicts;
      set_c "loads" s.loads;
      set_c "stores" s.stores;
      set_c "cas_ops" s.cas_ops;
      set_c "rob_occupancy_sum" s.rob_occupancy_sum;
      set_c "active_cycles" s.active_cycles)
    r.core_stats;
  Array.iteri
    (fun i cpi ->
      List.iter
        (fun leaf ->
          set (Printf.sprintf "core%d/cpi/%s" i (Obs.Cpi.name leaf)) (Obs.Cpi.get cpi leaf))
        Obs.Cpi.leaves)
    r.core_cpi;
  List.iter
    (fun leaf ->
      let total =
        Array.fold_left (fun acc cpi -> acc + Obs.Cpi.get cpi leaf) 0 r.core_cpi
      in
      set (Printf.sprintf "total/cpi/%s" (Obs.Cpi.name leaf)) total)
    Obs.Cpi.leaves;
  set "total/fence_stall_cycles" (fence_stall_cycles r);
  set "total/active_cycles" (total_active_cycles r);
  set "total/committed" (committed_instrs r);
  set "mem/l1_hits" r.cache.Hierarchy.l1_hits;
  set "mem/l1_misses" r.cache.Hierarchy.l1_misses;
  set "mem/l2_hits" r.cache.Hierarchy.l2_hits;
  set "mem/l2_misses" r.cache.Hierarchy.l2_misses;
  set "mem/invalidations" r.cache.Hierarchy.invalidations;
  set "mem/c2c_transfers" r.cache.Hierarchy.c2c_transfers;
  set "engine/spin_ff_sleeps" r.spin.sleeps;
  set "engine/spin_ff_cycles_skipped" r.spin.cycles_skipped;
  set "engine/spin_ff_wakes" r.spin.wakes;
  set "shard/barriers_total" r.shard.barriers;
  set "shard/elided_cycles" r.shard.elided_cycles;
  set "machine/cycles" r.cycles

let finish ~obs ~shard_domains (raw : Sim_engine.raw) =
  let result =
    {
      cycles = raw.Sim_engine.cycles;
      timed_out = raw.Sim_engine.timed_out;
      core_stats = Array.map Core.stats raw.Sim_engine.cores;
      core_cpi = Array.map Core.cpi raw.Sim_engine.cores;
      mem = raw.Sim_engine.mem;
      cache = Hierarchy.stats raw.Sim_engine.hierarchy;
      spin =
        {
          sleeps = raw.Sim_engine.spin.Sim_engine.sleeps;
          cycles_skipped = raw.Sim_engine.spin.Sim_engine.cycles_skipped;
          wakes = raw.Sim_engine.spin.Sim_engine.wakes;
        };
      shard =
        {
          barriers = raw.Sim_engine.shard.Sim_engine.barriers;
          elided_cycles = raw.Sim_engine.shard.Sim_engine.elided_cycles;
        };
      sample_windows = raw.Sim_engine.windows;
      obs = None;
    }
  in
  if Obs.Trace.on obs then begin
    snapshot_stats obs result;
    {
      result with
      obs =
        Some
          (Obs.Report.of_trace ~cycles:result.cycles ~timed_out:result.timed_out
             ~shard_domains obs);
    }
  end
  else result

let run ?(obs = Obs.Trace.null) ?checkpoint ?resume (config : Config.t) program =
  finish ~obs ~shard_domains:config.Config.shard_domains
    (Sim_engine.run ~obs ?checkpoint ?resume config program)

let run_reference ?(obs = Obs.Trace.null) (config : Config.t) program =
  finish ~obs ~shard_domains:config.Config.shard_domains
    (Sim_engine.run_naive ~obs config program)
