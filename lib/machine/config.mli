(** Whole-machine configuration: pipeline, memory system, S-Fence
    hardware, and the run's safety limit.

    Build configurations with the keyword constructor {!v}, which
    subsumes the older accreted [with_*] builder chain: every [with_*]
    combinator is now a one-option special case of {!v} and is kept
    only so existing call sites stay source-compatible.  The record
    type stays exposed for pattern matching, but prefer {!v} over
    direct record construction or record-update syntax — new fields
    then never break call sites. *)

(** Which backend answers the cores' memory transactions. *)
type mem_model =
  | Hierarchy  (** the MSI-coherent L1/L2/memory model (Table III) *)
  | Ideal
      (** every access completes the next cycle — an idealized memory
          with no caches or coherence traffic; useful to isolate
          pipeline effects from memory-system effects *)

(** SMARTS-style interval sampling (DESIGN §15).  The engine
    alternates measured detailed windows with functional fast-forward
    and extrapolates cycle-valued metrics from the measured fraction;
    exact event counters stay exact.  Estimates, not bit-identity —
    the sampled harness tests bound the per-metric error. *)
type sampling = {
  warmup : int;
      (** detailed cycles run before each measured window to re-warm
          pipeline state; their accounting is erased *)
  detailed : int;  (** measured detailed cycles per window *)
  ff_instrs : int;
      (** committed instructions each core fast-forwards functionally
          between windows *)
}

val sampling_default : sampling
(** 500 warmup / 1k detailed / 20k fast-forward — many short windows
    at roughly a 5%% measured duty cycle, which samples phases densely
    and keeps the sampled execution from drifting far from the
    detailed dynamics between measurements. *)

type t = {
  exec : Fscope_cpu.Exec_config.t;
  mem : Fscope_mem.Hierarchy.config;
  mem_model : mem_model;
  scope : Fscope_core.Scope_unit.config;
  max_cycles : int;  (** runaway guard; a run reaching it is reported as timed out *)
  shard_domains : int;
      (** partition the machine's cores across this many OCaml domains
          (default 1 = the sequential engine).  Results are
          bit-identical for any value — this only trades simulator
          wall-clock; see DESIGN.md §13. *)
  elide_barriers : bool;
      (** let the sharded engine collapse provably non-interacting
          cycle spans to a single barrier (default [true]).
          Bit-identical either way — wall-clock and barrier-count
          only; see DESIGN.md §16. *)
  sampling : sampling option;
      (** [Some _] selects the sampled engine (untraced runs shard
          their detailed windows across [shard_domains]); [None] (the
          default) is exact detailed simulation. *)
}

val make :
  ?exec:Fscope_cpu.Exec_config.t ->
  ?mem:Fscope_mem.Hierarchy.config ->
  ?mem_model:mem_model ->
  ?scope:Fscope_core.Scope_unit.config ->
  ?max_cycles:int ->
  ?shard_domains:int ->
  ?elide_barriers:bool ->
  ?sampling:sampling ->
  unit ->
  t

val mem_model_name : mem_model -> string
(** ["hierarchy"] / ["ideal"] — the [--mem-model] CLI vocabulary. *)

val mem_model_of_string : string -> mem_model option
(** Every omitted section takes its Table III default; [make ()] is
    {!default}. *)

val default : t
(** The paper's Table III machine: 8-core runs use this per-core
    configuration — ROB 128, 32 KB L1 (2 cycles), 1 MB shared L2
    (10 cycles), 300-cycle memory, 4 FSB entries, 4 FSS entries,
    S-Fence hardware enabled, no in-window speculation. *)

val v :
  ?base:t ->
  ?sfence:bool ->
  ?speculation:bool ->
  ?nop_fences:bool ->
  ?spin_fastforward:bool ->
  ?mem_model:mem_model ->
  ?mem_latency:int ->
  ?rob_size:int ->
  ?fsb_entries:int ->
  ?fss_entries:int ->
  ?mt_entries:int ->
  ?max_cycles:int ->
  ?shard_domains:int ->
  ?elide_barriers:bool ->
  ?sampling:sampling option ->
  unit ->
  t
(** The one keyword constructor: start from [base] ({!default} when
    omitted) and override exactly the named knobs.

    - [sfence]: S-Fence hardware on (S) / off — every fence behaves as
      a traditional full fence (baseline T);
    - [speculation]: in-window speculation (the + variants;
      timing-only, validation is skipped on speculative runs);
    - [nop_fences]: the no-fence ablation — fences retire immediately
      and order nothing (timing-only upper bound);
    - [spin_fastforward]: the engine's spin sleep/replay optimisation
      (bit-identical results either way, wall-clock only);
    - [mem_model], [mem_latency], [rob_size], [fsb_entries],
      [fss_entries], [mt_entries], [max_cycles]: as the record fields.

    Omitted arguments keep the base's value, so refinements compose:
    [v ~base:(v ~sfence:false ()) ~mem_latency:500 ()].  Every
    [with_*] builder below is a one-option special case of [v], kept
    for source compatibility. *)

val traditional : t -> t
(** The same machine with the S-Fence hardware disabled: every fence
    behaves as a traditional full fence (baseline T). *)

val scoped : t -> t
(** With the S-Fence hardware enabled (S). *)

val with_speculation : bool -> t -> t
(** Toggle in-window speculation (the + variants). *)

val with_nop_fences : bool -> t -> t
(** Toggle the no-fence ablation: fences retire immediately and order
    nothing.  Timing-only — functional checks may fail — but it bounds
    what any fence optimisation could recover, which is the profiler's
    "where the fence time goes" denominator. *)

val with_mem_latency : int -> t -> t
(** Set the memory (DRAM) latency — Fig. 15's sweep. *)

val with_rob_size : int -> t -> t
(** Set the ROB size — Fig. 16's sweep. *)

val with_fsb_entries : int -> t -> t
(** Set the number of FSB columns — ablation. *)

val with_fss_entries : int -> t -> t
(** Set the FSS depth — ablation. *)

val with_mt_entries : int -> t -> t
(** Set the mapping-table capacity — ablation. *)

val with_max_cycles : int -> t -> t
(** Set the runaway guard. *)

val with_mem_model : mem_model -> t -> t
(** Select the memory backend behind the cores' {!Fscope_cpu.Mem_port}. *)

val with_spin_fastforward : bool -> t -> t
(** Toggle the engine's spin fast-forward (default on; off = the
    engine steps spinning cores cycle by cycle as before).  Results
    are bit-identical either way — this only trades wall-clock. *)

val with_shard_domains : int -> t -> t
(** Partition the machine's cores across [n] OCaml domains (default 1
    = the sequential engine).  Bit-identical for any [n]; wall-clock
    only.  Values above the core count are clamped by the engine. *)

val with_elide_barriers : bool -> t -> t
(** Toggle barrier elision in the sharded engine (default on).
    Bit-identical either way — wall-clock and barrier-count only. *)

val with_sampling : sampling option -> t -> t
(** Select ([Some]) or clear ([None]) interval sampling. *)
