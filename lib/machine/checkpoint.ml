(* Whole-machine checkpoints: the complete simulation state at the top
   of one engine cycle, serialized as a single JSON document.

   A checkpoint never stores instructions or configuration — both are
   rebuilt by the caller (the CLI re-derives them from the workload
   registry) and validated against a digest of the machine-defining
   parts (pipeline / memory / scope configs plus the full program
   image).  Wall-clock knobs — [max_cycles], [shard_domains],
   [sampling] — are deliberately outside the digest: resuming with a
   longer cycle budget is the point of checkpointing, and engine
   choice never changes results.

   The per-core payloads are produced by {!Fscope_cpu.Core.snapshot};
   [wake] is the engine's event-horizon array, captured verbatim so
   pre-charged stall spans of frozen cores are not re-charged on
   resume (see Sim_engine). *)

module Json = Fscope_util.Json
module Program = Fscope_isa.Program

type t = {
  cycle : int;
  digest : string;
  wake : int array;
  cores : Json.t array;
  mem : int array;
  hierarchy : Json.t;
}

let digest (config : Config.t) (program : Program.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (config.Config.exec, config.Config.mem, config.Config.mem_model,
           config.Config.scope, program)
          []))

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "fscope-checkpoint/v1");
      ("cycle", Json.Int t.cycle);
      ("digest", Json.Str t.digest);
      ("wake", Json.of_int_array t.wake);
      ("cores", Json.Arr (Array.to_list t.cores));
      ("mem", Json.of_int_array t.mem);
      ("hierarchy", t.hierarchy);
    ]

let of_json j =
  (match Json.get "schema" j with
  | Json.Str "fscope-checkpoint/v1" -> ()
  | _ -> failwith "checkpoint: unknown schema");
  {
    cycle = Json.int_exn (Json.get "cycle" j);
    digest = Json.str_exn (Json.get "digest" j);
    wake = Json.int_array_exn (Json.get "wake" j);
    cores = Array.of_list (Json.list_exn (Json.get "cores" j));
    mem = Json.int_array_exn (Json.get "mem" j);
    hierarchy = Json.get "hierarchy" j;
  }

let save t ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.render (to_json t));
      output_char oc '\n')

let load ~file =
  match Json.of_file file with
  | j -> of_json j
  | exception Sys_error msg -> failwith (Printf.sprintf "cannot read checkpoint: %s" msg)
  | exception Json.Parse_error msg ->
    failwith (Printf.sprintf "malformed checkpoint %s: %s" file msg)

(* Refuse to restore into a machine the checkpoint was not taken
   from. *)
let validate t (config : Config.t) program =
  if not (String.equal t.digest (digest config program)) then
    failwith
      "checkpoint: config/program digest mismatch (different workload or machine \
       parameters)"
