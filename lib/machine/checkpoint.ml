(* Whole-machine checkpoints: the complete simulation state at the top
   of one engine cycle, serialized as a single JSON document.

   A checkpoint never stores instructions or configuration — both are
   rebuilt by the caller (the CLI re-derives them from the workload
   registry) and validated against a digest of the machine-defining
   parts (pipeline / memory / scope configs plus the full program
   image).  Wall-clock knobs — [max_cycles], [shard_domains],
   [sampling] — are deliberately outside the digest: resuming with a
   longer cycle budget is the point of checkpointing, and engine
   choice never changes results.

   The per-core payloads are produced by {!Fscope_cpu.Core.snapshot};
   [wake] is the engine's event-horizon array, captured verbatim so
   pre-charged stall spans of frozen cores are not re-charged on
   resume (see Sim_engine). *)

module Json = Fscope_util.Json
module Program = Fscope_isa.Program

type t = {
  cycle : int;
  digest : string;
  wake : int array;
  cores : Json.t array;
  mem : int array;
  hierarchy : Json.t;
}

let digest (config : Config.t) (program : Program.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (config.Config.exec, config.Config.mem, config.Config.mem_model,
           config.Config.scope, program)
          []))

(* The compact sibling ("v1z") applies {!Json.pack_arrays} to the whole
   document: memory images, ARFs, rename maps, predictor tables and
   cache arrays are mostly zeros at production core counts, and the
   shared zero-run elision dedups them all through one transform.  The
   schema string changes with the representation so a reader that
   predates packing fails loudly instead of misparsing; {!of_json}
   accepts both and unpacks before field extraction, so the two forms
   are interchangeable everywhere downstream. *)
let schema_plain = "fscope-checkpoint/v1"
let schema_compact = "fscope-checkpoint/v1z"

let to_json ?(compact = false) t =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str (if compact then schema_compact else schema_plain));
        ("cycle", Json.Int t.cycle);
        ("digest", Json.Str t.digest);
        ("wake", Json.of_int_array t.wake);
        ("cores", Json.Arr (Array.to_list t.cores));
        ("mem", Json.of_int_array t.mem);
        ("hierarchy", t.hierarchy);
      ]
  in
  if compact then Json.pack_arrays doc else doc

let of_json j =
  let j =
    match Json.get "schema" j with
    | Json.Str s when String.equal s schema_plain -> j
    | Json.Str s when String.equal s schema_compact -> Json.unpack_arrays j
    | _ -> failwith "checkpoint: unknown schema"
  in
  {
    cycle = Json.int_exn (Json.get "cycle" j);
    digest = Json.str_exn (Json.get "digest" j);
    wake = Json.int_array_exn (Json.get "wake" j);
    cores = Array.of_list (Json.list_exn (Json.get "cores" j));
    mem = Json.int_array_exn (Json.get "mem" j);
    hierarchy = Json.get "hierarchy" j;
  }

(* Plain checkpoints pretty-print (they are the readable, diffable
   form); the compact sibling is minified on top of the array
   packing. *)
let save ?(compact = false) t ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let doc = to_json ~compact t in
      output_string oc (if compact then Json.render doc else Json.render_pretty doc);
      output_char oc '\n')

let load ~file =
  match Json.of_file file with
  | j -> of_json j
  | exception Sys_error msg -> failwith (Printf.sprintf "cannot read checkpoint: %s" msg)
  | exception Json.Parse_error msg ->
    failwith (Printf.sprintf "malformed checkpoint %s: %s" file msg)

(* Refuse to restore into a machine the checkpoint was not taken
   from. *)
let validate t (config : Config.t) program =
  if not (String.equal t.digest (digest config program)) then
    failwith
      "checkpoint: config/program digest mismatch (different workload or machine \
       parameters)"
