(** Whole-machine checkpoints (DESIGN §15).

    The complete simulation state at the top of one engine cycle —
    every core ({!Fscope_cpu.Core.snapshot}), the flat memory image,
    the cache hierarchy and the engine's wake array — as one JSON
    document.  Configuration and instructions are not stored; the
    caller rebuilds both and {!validate} checks them against the
    embedded digest.  Captured and restored only by the sequential
    engine (sound for any [shard_domains] because sharding is
    bit-identical to sequential execution). *)

type t = {
  cycle : int;  (** the engine resumes at the top of this cycle *)
  digest : string;
      (** MD5 over exec/mem/scope configs and the full program image;
          wall-clock knobs ([max_cycles], [shard_domains], [sampling])
          are excluded so a resume may extend the budget *)
  wake : int array;
      (** per-core event horizons, verbatim — frozen cores' skipped
          spans are pre-charged at freeze time and must not be
          re-charged on resume *)
  cores : Fscope_util.Json.t array;
  mem : int array;
  hierarchy : Fscope_util.Json.t;
}

val digest : Config.t -> Fscope_isa.Program.t -> string

val to_json : t -> Fscope_util.Json.t
val of_json : Fscope_util.Json.t -> t
(** Raises [Failure] on a malformed document. *)

val save : t -> file:string -> unit
val load : file:string -> t
(** Raises [Failure] on an unreadable or malformed file. *)

val validate : t -> Config.t -> Fscope_isa.Program.t -> unit
(** Raises [Failure] when the checkpoint's digest does not match the
    given config and program. *)
