(** Whole-machine checkpoints (DESIGN §15).

    The complete simulation state at the top of one engine cycle —
    every core ({!Fscope_cpu.Core.snapshot}), the flat memory image,
    the cache hierarchy and the engine's wake array — as one JSON
    document.  Configuration and instructions are not stored; the
    caller rebuilds both and {!validate} checks them against the
    embedded digest.  Both the sequential and the sharded detailed
    engines capture and restore checkpoints — the sharded loop takes
    its snapshot inside the top-of-cycle publish window, where every
    shard is quiescent, so a checkpoint written under any
    [shard_domains] resumes bit-identically under any other. *)

type t = {
  cycle : int;  (** the engine resumes at the top of this cycle *)
  digest : string;
      (** MD5 over exec/mem/scope configs and the full program image;
          wall-clock knobs ([max_cycles], [shard_domains], [sampling])
          are excluded so a resume may extend the budget *)
  wake : int array;
      (** per-core event horizons, verbatim — frozen cores' skipped
          spans are pre-charged at freeze time and must not be
          re-charged on resume *)
  cores : Fscope_util.Json.t array;
  mem : int array;
  hierarchy : Fscope_util.Json.t;
}

val digest : Config.t -> Fscope_isa.Program.t -> string

val to_json : ?compact:bool -> t -> Fscope_util.Json.t
(** [compact] (default [false]) selects the ["fscope-checkpoint/v1z"]
    sibling: the same document with every shrinkable array — the
    mostly-zero memory image, ARFs and predictor tables, the
    run-heavy cache slot and ROB operand arrays — rewritten through
    the shared packing ({!Fscope_util.Json.pack_arrays}).  Combined
    with the minified rendering {!save} uses for it, ≥5× smaller
    than the pretty plain form at production core counts; {!of_json}
    reads both forms, so resume is bit-identical through either. *)

val of_json : Fscope_util.Json.t -> t
(** Raises [Failure] on a malformed document.  Accepts both the plain
    v1 and compact v1z schemas. *)

val save : ?compact:bool -> t -> file:string -> unit
(** Plain saves pretty-print (readable, diffable); [compact] saves
    minify on top of the array packing. *)

val load : file:string -> t
(** Raises [Failure] on an unreadable or malformed file. *)

val validate : t -> Config.t -> Fscope_isa.Program.t -> unit
(** Raises [Failure] when the checkpoint's digest does not match the
    given config and program. *)
