(* Synchronisation kernel for the domain-sharded engine (DESIGN §13).

   Three primitives, all over one shared mutex/condition pair plus a
   handful of sequentially-consistent atomics:

   - a generation {!barrier} separating the step phases of a cycle;
   - a per-shard {!set_cursor}/{!await_prefix} token protocol that
     serialises exactly the ORDERED steps of a phase in ascending
     global core order while letting provably-commuting FREE steps run
     ungated (the classification is the engine's job; this module only
     enforces the order it is told about);
   - a {!poison} flag that propagates the first exception raised inside
     any domain to every wait loop, so a failing shard cannot strand
     the others at a barrier.

   Every wait is a bounded spin (cheap when the host has a hardware
   thread per shard) followed by a mutex/condition block (mandatory on
   oversubscribed hosts — the test box may have a single CPU).  The
   lost-wakeup race between a signaller's atomic update and a waiter
   going to sleep is closed Dekker-style: the waiter publishes itself
   in [blocked] while holding the mutex before re-checking its
   predicate, and the signaller reads [blocked] after its update, so
   one of the two always sees the other.

   Cursor values encode (round, core index) as [round * stride + idx]
   with [stride = cores + 1]; the per-phase round number makes a
   freshly-classified cursor unmistakable from a stale one left over
   from the previous phase, without needing a second barrier between
   classification and execution.  Index [cores] is the "no ordered
   step pending" sentinel. *)

type t = {
  domains : int;
  stride : int; (* cores + 1: cursor index space per round *)
  cursors : int Atomic.t array; (* per shard: round * stride + lowest pending ordered core *)
  arrived : int Atomic.t; (* barrier arrivals in the current generation *)
  generation : int Atomic.t;
  blocked : int Atomic.t; (* waiters inside the condition-variable slow path *)
  mutex : Mutex.t;
  cond : Condition.t;
  poison : exn option Atomic.t;
}

let create ~domains ~cores =
  if domains <= 0 then invalid_arg "Shard_sync.create: need at least one domain";
  if cores < 0 then invalid_arg "Shard_sync.create: negative core count";
  {
    domains;
    stride = cores + 1;
    (* -1 = "round -1, all done": nothing can be waited out of it, so
       round 0's classification needs no preceding barrier *)
    cursors = Array.init domains (fun _ -> Atomic.make (-1));
    arrived = Atomic.make 0;
    generation = Atomic.make 0;
    blocked = Atomic.make 0;
    mutex = Mutex.create ();
    cond = Condition.create ();
    poison = Atomic.make None;
  }

let check t =
  match Atomic.get t.poison with None -> () | Some e -> raise e

let signal_blocked t =
  if Atomic.get t.blocked > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let poison t e =
  ignore (Atomic.compare_and_set t.poison None (Some e));
  (* unconditional broadcast: waiters must notice even if they raced
     past the [blocked] publication *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let spin_budget = 200

let wait_until t pred =
  let rec spin k =
    if not (pred ()) then begin
      check t;
      if k > 0 then begin
        Domain.cpu_relax ();
        spin (k - 1)
      end
      else block ()
    end
  and block () =
    Mutex.lock t.mutex;
    Atomic.incr t.blocked;
    let rec loop () =
      if (not (pred ())) && Atomic.get t.poison = None then begin
        Condition.wait t.cond t.mutex;
        loop ()
      end
    in
    loop ();
    Atomic.decr t.blocked;
    Mutex.unlock t.mutex;
    check t
  in
  spin spin_budget

let barrier t =
  check t;
  let gen = Atomic.get t.generation in
  if Atomic.fetch_and_add t.arrived 1 = t.domains - 1 then begin
    (* last arriver opens the next generation; reset before the bump so
       early arrivals at the NEXT barrier count from zero *)
    Atomic.set t.arrived 0;
    Atomic.incr t.generation;
    signal_blocked t
  end
  else wait_until t (fun () -> Atomic.get t.generation <> gen)

let barriers t = Atomic.get t.generation

let encode t ~round idx = (round * t.stride) + idx

let set_cursor t ~shard ~round idx =
  Atomic.set t.cursors.(shard) (encode t ~round idx);
  signal_blocked t

let await_prefix t ~shard ~round core =
  let need = encode t ~round (core + 1) in
  for s = 0 to t.domains - 1 do
    if s <> shard then wait_until t (fun () -> Atomic.get t.cursors.(s) >= need)
  done
