(** Synchronisation kernel for the domain-sharded engine.

    The sharded {!Sim_engine} partitions one machine's cores across
    OCaml domains and runs the three-phase step protocol with a
    {!barrier} at every phase boundary.  Within a phase, each shard
    classifies its owned cores' steps as ORDERED (may touch state
    shared between cores: memory writes, cache directory, wakes,
    traced events) or FREE (provably commutes with everything else in
    the phase); ordered steps execute at their exact global
    ascending-core-order turn via the cursor protocol below, free
    steps run immediately.  See DESIGN.md §13 for the classification
    rules and the bit-identity argument.

    All waits are hybrid: a bounded spin with [Domain.cpu_relax],
    then a mutex/condition block, so the engine stays live (if slow)
    on hosts with fewer hardware threads than shards. *)

type t

val create : domains:int -> cores:int -> t

val barrier : t -> unit
(** Generation barrier across all [domains].  Raises the poison
    exception instead of deadlocking if any shard failed. *)

val set_cursor : t -> shard:int -> round:int -> int -> unit
(** Publish [shard]'s lowest core index with an unfinished ORDERED
    step in phase [round] ([cores] = none pending, i.e. a sentinel one
    past the last core).  Must be called once right after classifying
    a phase (before executing any of its steps) and again after each
    completed ordered step.  [round] must increase by exactly one per
    phase, in lockstep across shards — it disambiguates a fresh
    cursor from a stale previous-phase value, which is what makes a
    post-classification barrier unnecessary. *)

val await_prefix : t -> shard:int -> round:int -> int -> unit
(** Block until every other shard's cursor for [round] has passed the
    given core index — i.e. no other shard still has an ordered step
    at or before it.  Together with ascending iteration inside each
    shard, this hands the global order token to exactly one ordered
    step at a time; the shard owning the lowest pending ordered core
    can always proceed, so the protocol cannot deadlock. *)

val barriers : t -> int
(** Number of completed barrier generations so far — the lockstep
    traffic the elision machinery exists to cut.  Read it after the
    shards have joined (or from any quiescent point); it is a plain
    monotonic counter, not a synchronisation primitive. *)

val poison : t -> exn -> unit
(** Record the first failure and wake every waiter; subsequent
    {!barrier}/{!await_prefix}/{!check} calls in any domain re-raise
    it. *)

val check : t -> unit
(** Re-raise the poison exception, if any. *)
