module Core = Fscope_cpu.Core
module Mem_port = Fscope_cpu.Mem_port
module Exec_config = Fscope_cpu.Exec_config
module Hierarchy = Fscope_mem.Hierarchy
module Program = Fscope_isa.Program
module Obs = Fscope_obs

(* Spin fast-forward bookkeeping of one run (zeros in the naive loop). *)
type spin_stats = {
  mutable sleeps : int;  (** times a core was put into spin-sleep *)
  mutable cycles_skipped : int;  (** core-cycles replayed in closed form *)
  mutable wakes : int;  (** sleeps ended by a cross-core store or invalidation *)
}

let fresh_spin_stats () = { sleeps = 0; cycles_skipped = 0; wakes = 0 }

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Core.t array;
  mem : int array;
  hierarchy : Hierarchy.t;
  spin : spin_stats;
}

let hierarchy_kind = function
  | Mem_port.Read -> Hierarchy.Read
  | Mem_port.Write -> Hierarchy.Write
  | Mem_port.Rmw -> Hierarchy.Rmw

(* One machine instance: cores wired to shared memory through a
   Mem_port whose timing side is either the cache hierarchy or the
   ideal 1-cycle model ([Config.mem_model]).  The returned [on_store]
   ref is called with the address of every memory value write, just
   before the write lands — the engine points it at its spin-sleep
   watch table (it starts out as a no-op). *)
let build ~obs (config : Config.t) program =
  let cores_n = Program.thread_count program in
  let mem = Program.initial_memory program in
  let hierarchy = Hierarchy.create ~trace:obs ~cores:cores_n config.Config.mem in
  let on_store = ref (fun (_ : int) -> ()) in
  let issue =
    match config.Config.mem_model with
    | Config.Hierarchy ->
      fun ~core kind ~addr ~now ->
        let latency, level =
          Hierarchy.access_classified hierarchy ~core (hierarchy_kind kind) ~addr
        in
        (now + latency, level)
    | Config.Ideal ->
      (* every access is a 1-cycle hit; the hierarchy above stays idle
         (its stats remain zero) but still anchors [raw.hierarchy] *)
      fun ~core:_ _kind ~addr:_ ~now -> (now + 1, Obs.Event.L1_hit)
  in
  let port =
    Mem_port.make ~size:(Array.length mem) ~issue
      ~load:(fun ~addr -> mem.(addr))
      ~store:(fun ~addr ~value ->
        !on_store addr;
        mem.(addr) <- value)
  in
  let cores =
    Array.init cores_n (fun id ->
        Core.create ~trace:obs ~id ~code:program.Program.threads.(id) ~port
          ~scope_config:config.Config.scope ~exec_config:config.Config.exec ())
  in
  (cores, mem, hierarchy, on_store)

(* The three-phase step protocol shared by both loops; see Core's
   interface for why the order matters.  Returns whether any core
   changed state beyond per-cycle stall accounting. *)
let step_all cores ~cycle =
  let progress = ref false in
  Array.iter
    (fun core -> if Core.step_complete_writes core ~cycle then progress := true)
    cores;
  Array.iter
    (fun core -> if Core.step_complete_reads core ~cycle then progress := true)
    cores;
  Array.iter (fun core -> if Core.step_pipeline core ~cycle then progress := true) cores;
  !progress

let run_sequential ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy, on_store = build ~obs config program in
  let n = Array.length cores in
  let traced = Obs.Trace.on obs in
  let max_cycles = config.Config.max_cycles in
  (* Per-core event-horizon scheduling.  A core whose three sub-steps
     all report no progress is frozen: every cycle-dependence of its
     step functions is a threshold already scheduled in its own state
     (execution completions, store-buffer drain times, a fetch-resume
     point), and other cores cannot change any of that — they only
     write shared memory, which a frozen core samples exactly at those
     thresholds, and the cache directory, which only affects the
     latency of accesses it has not issued yet.  So the core sleeps
     until its {!Core.next_wake} horizon: the engine pre-charges the
     skipped span's stall/occupancy accounting in O(1) and stops
     stepping it, while awake cores keep executing cycle by cycle.
     When every core sleeps, the clock jumps straight to the earliest
     wake-up.  Results are bit-identical to the naive loop.

     Draining is monotonic (a halted core stays halted, its emptied
     store buffer stays empty), so a per-core flag plus a counter
     replaces the naive loop's per-cycle every-core [drained] scan. *)
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = ref 0 in
  let cycle = ref 0 in
  let finished = ref false in
  (* Spin fast-forward (see Core's spin interface and DESIGN §11).  A
     core that is provably in a stable read-only spin loop sleeps past
     the horizon: its state can only stop being periodic when another
     core writes — or steals — a line it reads, so we watch the loop's
     load footprint and wake the sleeper the instant such an action is
     about to happen.  On wake (and at timeout) the skipped whole
     periods are replayed in closed form and the partial tail is
     re-stepped normally, which lands the core in exactly the state
     naive stepping would have produced.  Tracing disables this — a
     traced run must emit every per-cycle event. *)
  let spin = fresh_spin_stats () in
  let spin_on = config.Config.exec.Exec_config.spin_fastforward && not traced in
  if spin_on then Array.iter (fun core -> Core.set_spin_ff core true) cores;
  let sleeping : Core.spin_stable option array = Array.make n None in
  (* watched address -> sorted list of sleeping watcher cores (a list,
     not a bitmask, so the machine is not capped at 62 cores) *)
  let watches : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  (* where in the current cycle the step loops are, so a wake fired
     from inside another core's step can splice the sleeper back into
     the phase order it would have had in the naive loop *)
  let phase = ref 0 in
  let phase_core = ref 0 in
  let register_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        let cur = Option.value (Hashtbl.find_opt watches addr) ~default:[] in
        Hashtbl.replace watches addr (List.sort_uniq compare (i :: cur)))
      st.Core.footprint
  in
  let unregister_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l ->
          (match List.filter (fun j -> j <> i) l with
          | [] -> Hashtbl.remove watches addr
          | l' -> Hashtbl.replace watches addr l'))
      st.Core.footprint
  in
  (* Catch a woken sleeper up through cycle [through]: replay whole
     periods in closed form, then solo-step the tail.  Solo-stepping is
     exact because within a period the core touches nothing shared —
     no stores or CAS can be in flight, and every load hits its own
     L1 — so interleaving with other cores' sub-steps is immaterial. *)
  let catch_up i (st : Core.spin_stable) ~through =
    let b = st.Core.armed_cycle in
    let k = if through <= b then 0 else (through - b) / st.Core.period in
    if k > 0 then begin
      Core.spin_replay cores.(i) ~stable:st ~k;
      (match config.Config.mem_model with
      | Config.Hierarchy ->
        (* the skipped loads would all have hit this core's L1 *)
        let s = Hierarchy.stats hierarchy in
        s.Hierarchy.l1_hits <- s.Hierarchy.l1_hits + (k * st.Core.loads_per_period)
      | Config.Ideal -> ());
      spin.cycles_skipped <- spin.cycles_skipped + (k * st.Core.period)
    end;
    for x = b + (k * st.Core.period) + 1 to through do
      ignore (Core.step_complete_writes cores.(i) ~cycle:x);
      ignore (Core.step_complete_reads cores.(i) ~cycle:x);
      ignore (Core.step_pipeline cores.(i) ~cycle:x)
    done;
    Core.spin_cancel cores.(i)
  in
  (* Phase-3 body of the main loop, factored so a phase-3 wake can run
     it for the sleeper at its original position in core order. *)
  let rec step3 i c =
    if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
    if progress.(i) then begin
      wake.(i) <- c + 1;
      if (not drained.(i)) && Core.drained cores.(i) then begin
        drained.(i) <- true;
        incr drained_count;
        wake.(i) <- max_cycles
      end
      else if spin_on then begin
        match Core.spin_poll cores.(i) ~cycle:c with
        | Some st ->
          (* proven stable: sleep until a watched line is written or
             invalidated (or the run times out) *)
          sleeping.(i) <- Some st;
          register_watches i st;
          wake.(i) <- max_cycles;
          spin.sleeps <- spin.sleeps + 1
        | None -> ()
      end
    end
    else begin
      (* Frozen: sleep until the horizon (or, with nothing
         scheduled at all, until the run's cycle limit — the core
         is stuck and can only wait out a timeout), charging the
         skipped span's per-cycle accounting up front.  The charge
         is exact: the simulation cannot end before this core's
         wake-up, because a sleeping core is never drained. *)
      let d =
        match Core.next_wake cores.(i) ~cycle:c with
        | Some d -> min d max_cycles
        | None -> max_cycles
      in
      Core.account_stall_span cores.(i) ~cycle:c ~cycles:(d - c - 1);
      wake.(i) <- d
    end
  (* Wake fired from inside the current cycle's step loops, just
     before the disturbing write or invalidation takes effect. *)
  and wake_core i =
    match sleeping.(i) with
    | None -> ()
    | Some st ->
      sleeping.(i) <- None;
      unregister_watches i st;
      Core.spin_cancel cores.(i);
      spin.wakes <- spin.wakes + 1;
      let t = !cycle in
      if t = st.Core.armed_cycle then
        (* disturbed later in the very cycle it armed (by a core after
           it in phase-3 order): nothing was skipped and the core has
           already fully stepped this cycle *)
        wake.(i) <- t + 1
      else begin
        catch_up i st ~through:(t - 1);
        if !phase = 3 then begin
          (* cycle [t]'s write/read phases already passed this core;
             its writes phase is a no-op (empty store buffer, no CAS in
             flight — guaranteed by the arming probe) and completing
             reads now is exact because phase 3 never changes memory
             values.  Then: in the naive loop a core earlier in core
             order would have run its pipeline step before the
             disturber's — replay that ordering here; a later one is
             picked up by the main phase-3 loop as usual. *)
          if Core.step_complete_reads cores.(i) ~cycle:t then progress.(i) <- true;
          if i < !phase_core then step3 i t else wake.(i) <- t
        end
        else begin
          (* phase 1: the disturbing store has not landed yet; the
             remaining phase loops of cycle [t] pick the core up *)
          progress.(i) <- false;
          wake.(i) <- t
        end
      end
  in
  if spin_on then begin
    on_store :=
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l -> List.iter wake_core l (* ascending core order *));
    (* a write/RMW/eviction about to invalidate or downgrade a
       sleeper's L1 line could change what its loop observes (values
       or latencies) — wake it first *)
    Hierarchy.set_remote_victim_hook hierarchy (fun ~core ->
        match sleeping.(core) with Some _ -> wake_core core | None -> ())
  end;
  while (not !finished) && !cycle < max_cycles do
    let c = !cycle in
    if traced then Obs.Trace.set_now obs c;
    phase := 1;
    for i = 0 to n - 1 do
      phase_core := i;
      progress.(i) <- wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c
    done;
    phase := 2;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
        progress.(i) <- true
    done;
    phase := 3;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c then step3 i c
    done;
    phase := 0;
    if !drained_count = n then begin
      cycle := c + 1;
      finished := true
    end
    else begin
      (* Next cycle at which anything can happen: awake cores have
         wake = c+1; if everyone sleeps this jumps the clock. *)
      let target = Array.fold_left min max_int wake in
      cycle := max target (c + 1)
    end
  done;
  (* A run that timed out may leave spin-sleepers behind: the naive
     loop would have stepped them through cycle [max_cycles - 1], so
     catch them up to exactly there before reporting. *)
  if !drained_count < n then
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(max_cycles - 1)
    done;
  { cycles = !cycle; timed_out = !drained_count < n; cores; mem; hierarchy; spin }

(* ------------------------------------------------------------------ *)
(* Domain-sharded loop                                                 *)
(* ------------------------------------------------------------------ *)

(* One machine's cores split cyclically across [d] OCaml domains (core
   i belongs to shard [i mod d]), running the same three-phase step
   protocol with a barrier at every phase boundary.  Within a phase,
   each shard classifies its owned cores' steps as ORDERED — may touch
   state shared between cores (memory writes, the cache directory and
   its stats, wakes, traced events) — or FREE (provably commutes with
   every other step of the phase).  Ordered steps execute at their
   exact global ascending-core-order turn, serialised by the
   {!Shard_sync} cursor token; free steps run immediately on their
   owner.  Since every shared-state interaction happens at the same
   global position as in the sequential loop, and free steps depend
   only on their own core's state (plus phase-2 memory reads, which no
   phase-2 step can change), the whole run — cycles, every CPI leaf,
   final memory, traces — is bit-identical to {!run_sequential} and
   therefore to {!run_naive}.

   Classification per phase (see DESIGN §13 for the argument):
   - phase 1: ordered iff traced, or the core was spin-sleeping at
     cycle start (a cross-shard wake may touch its slots), or
     {!Core.writes_pending} (a drain or CAS completion writes memory);
   - phase 2: read-only — everything is free unless traced;
   - phase 3: ordered iff traced, was sleeping, may arm a spin
     certificate (a sleep transition registers shared watches), or —
     under the hierarchy model, where even an L1 hit bumps shared
     directory stats — {!Core.may_touch_mem}.

   Cross-shard spin wakes fire only from inside ordered steps (the
   disturbing store / invalidation is itself shared-state work), so
   the sequential [wake_core] logic carries over verbatim: the waker
   holds the global order token at the disturber's position, exactly
   like the naive loop's program point.  Sleeping cores are always
   ordered, so their owner's (skipping) turns synchronise with any
   wake that lands on them.

   Per-core slots ([wake], [progress], [drained], [sleeping]) are
   written only by their owner or, for sleeping cores, by a
   token-holding waker — never concurrently, with happens-before
   through the cursor atomics and the phase barriers.  [phase] is
   written redundantly by every domain at phase entry (same-value);
   [phase_core] only by token holders; [cycle] and [finished] only by
   shard 0 in the publish window between the phase-3 barrier and the
   cycle barrier.  [drained_count] is an atomic because a core can
   drain inside a free step. *)
let run_sharded ?(obs = Obs.Trace.null) ~domains (config : Config.t) program =
  let cores, mem, hierarchy, on_store = build ~obs config program in
  let n = Array.length cores in
  let d = max 1 (min domains n) in
  let traced = Obs.Trace.on obs in
  let max_cycles = config.Config.max_cycles in
  let hier_mem = config.Config.mem_model = Config.Hierarchy in
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = Atomic.make 0 in
  let cycle = ref 0 in
  let finished = ref false in
  let spin = fresh_spin_stats () in
  let spin_on = config.Config.exec.Exec_config.spin_fastforward && not traced in
  if spin_on then Array.iter (fun core -> Core.set_spin_ff core true) cores;
  let sleeping : Core.spin_stable option array = Array.make n None in
  (* Stable per-cycle snapshot of [sleeping], refreshed by each owner
     in the publish window: classification must not read [sleeping]
     itself, which a token-holding waker may flip mid-phase. *)
  let was_sleeping = Array.make n false in
  let ordered = Array.make n false in
  let watches : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let phase = ref 0 in
  let phase_core = ref 0 in
  let sync = Shard_sync.create ~domains:d ~cores:n in
  let register_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        let cur = Option.value (Hashtbl.find_opt watches addr) ~default:[] in
        Hashtbl.replace watches addr (List.sort_uniq compare (i :: cur)))
      st.Core.footprint
  in
  let unregister_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l ->
          (match List.filter (fun j -> j <> i) l with
          | [] -> Hashtbl.remove watches addr
          | l' -> Hashtbl.replace watches addr l'))
      st.Core.footprint
  in
  (* catch_up / step3 / wake_core are the sequential loop's logic
     verbatim (see the comments there); in this loop they only ever run
     under the order token or, for [step3], on a step classified free
     — whose spin poll is then guaranteed [None]. *)
  let catch_up i (st : Core.spin_stable) ~through =
    let b = st.Core.armed_cycle in
    let k = if through <= b then 0 else (through - b) / st.Core.period in
    if k > 0 then begin
      Core.spin_replay cores.(i) ~stable:st ~k;
      (match config.Config.mem_model with
      | Config.Hierarchy ->
        let s = Hierarchy.stats hierarchy in
        s.Hierarchy.l1_hits <- s.Hierarchy.l1_hits + (k * st.Core.loads_per_period)
      | Config.Ideal -> ());
      spin.cycles_skipped <- spin.cycles_skipped + (k * st.Core.period)
    end;
    for x = b + (k * st.Core.period) + 1 to through do
      ignore (Core.step_complete_writes cores.(i) ~cycle:x);
      ignore (Core.step_complete_reads cores.(i) ~cycle:x);
      ignore (Core.step_pipeline cores.(i) ~cycle:x)
    done;
    Core.spin_cancel cores.(i)
  in
  let rec step3 i c =
    if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
    if progress.(i) then begin
      wake.(i) <- c + 1;
      if (not drained.(i)) && Core.drained cores.(i) then begin
        drained.(i) <- true;
        Atomic.incr drained_count;
        wake.(i) <- max_cycles
      end
      else if spin_on then begin
        match Core.spin_poll cores.(i) ~cycle:c with
        | Some st ->
          sleeping.(i) <- Some st;
          register_watches i st;
          wake.(i) <- max_cycles;
          spin.sleeps <- spin.sleeps + 1
        | None -> ()
      end
    end
    else begin
      let dd =
        match Core.next_wake cores.(i) ~cycle:c with
        | Some dd -> min dd max_cycles
        | None -> max_cycles
      in
      Core.account_stall_span cores.(i) ~cycle:c ~cycles:(dd - c - 1);
      wake.(i) <- dd
    end
  and wake_core i =
    match sleeping.(i) with
    | None -> ()
    | Some st ->
      sleeping.(i) <- None;
      unregister_watches i st;
      Core.spin_cancel cores.(i);
      spin.wakes <- spin.wakes + 1;
      let t = !cycle in
      if t = st.Core.armed_cycle then wake.(i) <- t + 1
      else begin
        catch_up i st ~through:(t - 1);
        if !phase = 3 then begin
          if Core.step_complete_reads cores.(i) ~cycle:t then progress.(i) <- true;
          if i < !phase_core then step3 i t else wake.(i) <- t
        end
        else begin
          progress.(i) <- false;
          wake.(i) <- t
        end
      end
  in
  if spin_on then begin
    on_store :=
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l -> List.iter wake_core l);
    Hierarchy.set_remote_victim_hook hierarchy (fun ~core ->
        match sleeping.(core) with Some _ -> wake_core core | None -> ())
  end;
  if traced then Obs.Trace.set_now obs 0;
  let shard_body me =
    (* Phase round counter: +1 per phase, in lockstep across shards by
       construction (every shard runs the same phase sequence). *)
    let round = ref 0 in
    let next_owned_ordered i =
      let k = ref (i + d) in
      while !k < n && not ordered.(!k) do k := !k + d done;
      if !k < n then !k else n
    in
    let run_phase ~pred ~step =
      let r = !round in
      incr round;
      let first = ref n in
      let i = ref me in
      while !i < n do
        let o = pred !i in
        ordered.(!i) <- o;
        if o && !first = n then first := !i;
        i := !i + d
      done;
      Shard_sync.set_cursor sync ~shard:me ~round:r !first;
      let i = ref me in
      while !i < n do
        let core = !i in
        if ordered.(core) then begin
          Shard_sync.await_prefix sync ~shard:me ~round:r core;
          phase_core := core;
          step core;
          Shard_sync.set_cursor sync ~shard:me ~round:r (next_owned_ordered core)
        end
        else step core;
        i := !i + d
      done
    in
    while (not !finished) && !cycle < max_cycles do
      let c = !cycle in
      phase := 1;
      run_phase
        ~pred:(fun i ->
          traced || was_sleeping.(i) || Core.writes_pending cores.(i) ~cycle:c)
        ~step:(fun i ->
          progress.(i) <- wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c);
      Shard_sync.barrier sync;
      phase := 2;
      run_phase
        ~pred:(fun _ -> traced)
        ~step:(fun i ->
          if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
            progress.(i) <- true);
      Shard_sync.barrier sync;
      phase := 3;
      run_phase
        ~pred:(fun i ->
          traced || was_sleeping.(i)
          || (spin_on && Core.spin_may_arm cores.(i))
          || (hier_mem && Core.may_touch_mem cores.(i)))
        ~step:(fun i -> if wake.(i) <= c then step3 i c);
      Shard_sync.barrier sync;
      phase := 0;
      (* Publish window: no step runs, so owners can snapshot their
         cores' sleep state and shard 0 can advance the shared clock. *)
      let i = ref me in
      while !i < n do
        was_sleeping.(!i) <- sleeping.(!i) <> None;
        i := !i + d
      done;
      if me = 0 then begin
        if Atomic.get drained_count = n then begin
          cycle := c + 1;
          finished := true
        end
        else begin
          let target = Array.fold_left min max_int wake in
          cycle := max target (c + 1)
        end;
        if traced then Obs.Trace.set_now obs !cycle
      end;
      Shard_sync.barrier sync
    done
  in
  let guarded me () =
    try shard_body me with e -> Shard_sync.poison sync e
  in
  let others = Array.init (d - 1) (fun k -> Domain.spawn (guarded (k + 1))) in
  guarded 0 ();
  Array.iter Domain.join others;
  Shard_sync.check sync;
  if Atomic.get drained_count < n then
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(max_cycles - 1)
    done;
  {
    cycles = !cycle;
    timed_out = Atomic.get drained_count < n;
    cores;
    mem;
    hierarchy;
    spin;
  }

(* Entry point: shard when the config asks for it and the program has
   cores to spread; a single-core or single-domain run takes the
   sequential event-horizon loop. *)
let run ?(obs = Obs.Trace.null) (config : Config.t) program =
  let d = config.Config.shard_domains in
  if d > 1 && Program.thread_count program > 1 then run_sharded ~obs ~domains:d config program
  else run_sequential ~obs config program

(* The retained naive loop: one cycle at a time, no fast-forward.  The
   differential suite holds [run] to bit-identical results against
   this, and the bench harness quotes the wall-clock win over it. *)
let run_naive ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy, _on_store = build ~obs config program in
  let all_done () = Array.for_all Core.drained cores in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < config.Config.max_cycles do
    let c = !cycle in
    Obs.Trace.set_now obs c;
    ignore (step_all cores ~cycle:c);
    incr cycle
  done;
  {
    cycles = !cycle;
    timed_out = not (all_done ());
    cores;
    mem;
    hierarchy;
    spin = fresh_spin_stats ();
  }
