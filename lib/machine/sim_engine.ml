module Core = Fscope_cpu.Core
module Mem_port = Fscope_cpu.Mem_port
module Exec_config = Fscope_cpu.Exec_config
module Hierarchy = Fscope_mem.Hierarchy
module Program = Fscope_isa.Program
module Obs = Fscope_obs

(* Spin fast-forward bookkeeping of one run (zeros in the naive loop). *)
type spin_stats = {
  mutable sleeps : int;  (** times a core was put into spin-sleep *)
  mutable cycles_skipped : int;  (** core-cycles replayed in closed form *)
  mutable wakes : int;  (** sleeps ended by a cross-core store or invalidation *)
}

let fresh_spin_stats () = { sleeps = 0; cycles_skipped = 0; wakes = 0 }

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Core.t array;
  mem : int array;
  hierarchy : Hierarchy.t;
  spin : spin_stats;
}

let hierarchy_kind = function
  | Mem_port.Read -> Hierarchy.Read
  | Mem_port.Write -> Hierarchy.Write
  | Mem_port.Rmw -> Hierarchy.Rmw

(* One machine instance: cores wired to shared memory through a
   Mem_port whose timing side is either the cache hierarchy or the
   ideal 1-cycle model ([Config.mem_model]).  The returned [on_store]
   ref is called with the address of every memory value write, just
   before the write lands — the engine points it at its spin-sleep
   watch table (it starts out as a no-op). *)
let build ~obs (config : Config.t) program =
  let cores_n = Program.thread_count program in
  let mem = Program.initial_memory program in
  let hierarchy = Hierarchy.create ~trace:obs ~cores:cores_n config.Config.mem in
  let on_store = ref (fun (_ : int) -> ()) in
  let issue =
    match config.Config.mem_model with
    | Config.Hierarchy ->
      fun ~core kind ~addr ~now ->
        let latency, level =
          Hierarchy.access_classified hierarchy ~core (hierarchy_kind kind) ~addr
        in
        (now + latency, level)
    | Config.Ideal ->
      (* every access is a 1-cycle hit; the hierarchy above stays idle
         (its stats remain zero) but still anchors [raw.hierarchy] *)
      fun ~core:_ _kind ~addr:_ ~now -> (now + 1, Obs.Event.L1_hit)
  in
  let port =
    Mem_port.make ~size:(Array.length mem) ~issue
      ~load:(fun ~addr -> mem.(addr))
      ~store:(fun ~addr ~value ->
        !on_store addr;
        mem.(addr) <- value)
  in
  let cores =
    Array.init cores_n (fun id ->
        Core.create ~trace:obs ~id ~code:program.Program.threads.(id) ~port
          ~scope_config:config.Config.scope ~exec_config:config.Config.exec ())
  in
  (cores, mem, hierarchy, on_store)

(* The three-phase step protocol shared by both loops; see Core's
   interface for why the order matters.  Returns whether any core
   changed state beyond per-cycle stall accounting. *)
let step_all cores ~cycle =
  let progress = ref false in
  Array.iter
    (fun core -> if Core.step_complete_writes core ~cycle then progress := true)
    cores;
  Array.iter
    (fun core -> if Core.step_complete_reads core ~cycle then progress := true)
    cores;
  Array.iter (fun core -> if Core.step_pipeline core ~cycle then progress := true) cores;
  !progress

let run ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy, on_store = build ~obs config program in
  let n = Array.length cores in
  let traced = Obs.Trace.on obs in
  let max_cycles = config.Config.max_cycles in
  (* Per-core event-horizon scheduling.  A core whose three sub-steps
     all report no progress is frozen: every cycle-dependence of its
     step functions is a threshold already scheduled in its own state
     (execution completions, store-buffer drain times, a fetch-resume
     point), and other cores cannot change any of that — they only
     write shared memory, which a frozen core samples exactly at those
     thresholds, and the cache directory, which only affects the
     latency of accesses it has not issued yet.  So the core sleeps
     until its {!Core.next_wake} horizon: the engine pre-charges the
     skipped span's stall/occupancy accounting in O(1) and stops
     stepping it, while awake cores keep executing cycle by cycle.
     When every core sleeps, the clock jumps straight to the earliest
     wake-up.  Results are bit-identical to the naive loop.

     Draining is monotonic (a halted core stays halted, its emptied
     store buffer stays empty), so a per-core flag plus a counter
     replaces the naive loop's per-cycle every-core [drained] scan. *)
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = ref 0 in
  let cycle = ref 0 in
  let finished = ref false in
  (* Spin fast-forward (see Core's spin interface and DESIGN §11).  A
     core that is provably in a stable read-only spin loop sleeps past
     the horizon: its state can only stop being periodic when another
     core writes — or steals — a line it reads, so we watch the loop's
     load footprint and wake the sleeper the instant such an action is
     about to happen.  On wake (and at timeout) the skipped whole
     periods are replayed in closed form and the partial tail is
     re-stepped normally, which lands the core in exactly the state
     naive stepping would have produced.  Tracing disables this — a
     traced run must emit every per-cycle event. *)
  let spin = fresh_spin_stats () in
  let spin_on = config.Config.exec.Exec_config.spin_fastforward && not traced in
  if spin_on then Array.iter (fun core -> Core.set_spin_ff core true) cores;
  let sleeping : Core.spin_stable option array = Array.make n None in
  let watches : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* where in the current cycle the step loops are, so a wake fired
     from inside another core's step can splice the sleeper back into
     the phase order it would have had in the naive loop *)
  let phase = ref 0 in
  let phase_core = ref 0 in
  let register_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        let cur = match Hashtbl.find_opt watches addr with Some m -> m | None -> 0 in
        Hashtbl.replace watches addr (cur lor (1 lsl i)))
      st.Core.footprint
  in
  let unregister_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some m ->
          let m = m land lnot (1 lsl i) in
          if m = 0 then Hashtbl.remove watches addr else Hashtbl.replace watches addr m)
      st.Core.footprint
  in
  (* Catch a woken sleeper up through cycle [through]: replay whole
     periods in closed form, then solo-step the tail.  Solo-stepping is
     exact because within a period the core touches nothing shared —
     no stores or CAS can be in flight, and every load hits its own
     L1 — so interleaving with other cores' sub-steps is immaterial. *)
  let catch_up i (st : Core.spin_stable) ~through =
    let b = st.Core.armed_cycle in
    let k = if through <= b then 0 else (through - b) / st.Core.period in
    if k > 0 then begin
      Core.spin_replay cores.(i) ~stable:st ~k;
      (match config.Config.mem_model with
      | Config.Hierarchy ->
        (* the skipped loads would all have hit this core's L1 *)
        let s = Hierarchy.stats hierarchy in
        s.Hierarchy.l1_hits <- s.Hierarchy.l1_hits + (k * st.Core.loads_per_period)
      | Config.Ideal -> ());
      spin.cycles_skipped <- spin.cycles_skipped + (k * st.Core.period)
    end;
    for x = b + (k * st.Core.period) + 1 to through do
      ignore (Core.step_complete_writes cores.(i) ~cycle:x);
      ignore (Core.step_complete_reads cores.(i) ~cycle:x);
      ignore (Core.step_pipeline cores.(i) ~cycle:x)
    done;
    Core.spin_cancel cores.(i)
  in
  (* Phase-3 body of the main loop, factored so a phase-3 wake can run
     it for the sleeper at its original position in core order. *)
  let rec step3 i c =
    if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
    if progress.(i) then begin
      wake.(i) <- c + 1;
      if (not drained.(i)) && Core.drained cores.(i) then begin
        drained.(i) <- true;
        incr drained_count;
        wake.(i) <- max_cycles
      end
      else if spin_on then begin
        match Core.spin_poll cores.(i) ~cycle:c with
        | Some st ->
          (* proven stable: sleep until a watched line is written or
             invalidated (or the run times out) *)
          sleeping.(i) <- Some st;
          register_watches i st;
          wake.(i) <- max_cycles;
          spin.sleeps <- spin.sleeps + 1
        | None -> ()
      end
    end
    else begin
      (* Frozen: sleep until the horizon (or, with nothing
         scheduled at all, until the run's cycle limit — the core
         is stuck and can only wait out a timeout), charging the
         skipped span's per-cycle accounting up front.  The charge
         is exact: the simulation cannot end before this core's
         wake-up, because a sleeping core is never drained. *)
      let d =
        match Core.next_wake cores.(i) ~cycle:c with
        | Some d -> min d max_cycles
        | None -> max_cycles
      in
      Core.account_stall_span cores.(i) ~cycle:c ~cycles:(d - c - 1);
      wake.(i) <- d
    end
  (* Wake fired from inside the current cycle's step loops, just
     before the disturbing write or invalidation takes effect. *)
  and wake_core i =
    match sleeping.(i) with
    | None -> ()
    | Some st ->
      sleeping.(i) <- None;
      unregister_watches i st;
      Core.spin_cancel cores.(i);
      spin.wakes <- spin.wakes + 1;
      let t = !cycle in
      if t = st.Core.armed_cycle then
        (* disturbed later in the very cycle it armed (by a core after
           it in phase-3 order): nothing was skipped and the core has
           already fully stepped this cycle *)
        wake.(i) <- t + 1
      else begin
        catch_up i st ~through:(t - 1);
        if !phase = 3 then begin
          (* cycle [t]'s write/read phases already passed this core;
             its writes phase is a no-op (empty store buffer, no CAS in
             flight — guaranteed by the arming probe) and completing
             reads now is exact because phase 3 never changes memory
             values.  Then: in the naive loop a core earlier in core
             order would have run its pipeline step before the
             disturber's — replay that ordering here; a later one is
             picked up by the main phase-3 loop as usual. *)
          if Core.step_complete_reads cores.(i) ~cycle:t then progress.(i) <- true;
          if i < !phase_core then step3 i t else wake.(i) <- t
        end
        else begin
          (* phase 1: the disturbing store has not landed yet; the
             remaining phase loops of cycle [t] pick the core up *)
          progress.(i) <- false;
          wake.(i) <- t
        end
      end
  in
  if spin_on then begin
    on_store :=
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some mask ->
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then wake_core i
          done);
    (* a write/RMW/eviction about to invalidate or downgrade a
       sleeper's L1 line could change what its loop observes (values
       or latencies) — wake it first *)
    Hierarchy.set_remote_victim_hook hierarchy (fun ~core ->
        match sleeping.(core) with Some _ -> wake_core core | None -> ())
  end;
  while (not !finished) && !cycle < max_cycles do
    let c = !cycle in
    if traced then Obs.Trace.set_now obs c;
    phase := 1;
    for i = 0 to n - 1 do
      phase_core := i;
      progress.(i) <- wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c
    done;
    phase := 2;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
        progress.(i) <- true
    done;
    phase := 3;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c then step3 i c
    done;
    phase := 0;
    if !drained_count = n then begin
      cycle := c + 1;
      finished := true
    end
    else begin
      (* Next cycle at which anything can happen: awake cores have
         wake = c+1; if everyone sleeps this jumps the clock. *)
      let target = Array.fold_left min max_int wake in
      cycle := max target (c + 1)
    end
  done;
  (* A run that timed out may leave spin-sleepers behind: the naive
     loop would have stepped them through cycle [max_cycles - 1], so
     catch them up to exactly there before reporting. *)
  if !drained_count < n then
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(max_cycles - 1)
    done;
  { cycles = !cycle; timed_out = !drained_count < n; cores; mem; hierarchy; spin }

(* The retained naive loop: one cycle at a time, no fast-forward.  The
   differential suite holds [run] to bit-identical results against
   this, and the bench harness quotes the wall-clock win over it. *)
let run_naive ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy, _on_store = build ~obs config program in
  let all_done () = Array.for_all Core.drained cores in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < config.Config.max_cycles do
    let c = !cycle in
    Obs.Trace.set_now obs c;
    ignore (step_all cores ~cycle:c);
    incr cycle
  done;
  {
    cycles = !cycle;
    timed_out = not (all_done ());
    cores;
    mem;
    hierarchy;
    spin = fresh_spin_stats ();
  }
