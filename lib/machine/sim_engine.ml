module Core = Fscope_cpu.Core
module Mem_port = Fscope_cpu.Mem_port
module Hierarchy = Fscope_mem.Hierarchy
module Program = Fscope_isa.Program
module Obs = Fscope_obs

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Core.t array;
  mem : int array;
  hierarchy : Hierarchy.t;
}

let hierarchy_kind = function
  | Mem_port.Read -> Hierarchy.Read
  | Mem_port.Write -> Hierarchy.Write
  | Mem_port.Rmw -> Hierarchy.Rmw

(* One machine instance: cores wired to a shared hierarchy and flat
   memory image through a Mem_port. *)
let build ~obs (config : Config.t) program =
  let cores_n = Program.thread_count program in
  let mem = Program.initial_memory program in
  let hierarchy = Hierarchy.create ~trace:obs ~cores:cores_n config.Config.mem in
  let port =
    Mem_port.make ~size:(Array.length mem)
      ~issue:(fun ~core kind ~addr ~now ->
        let latency, level =
          Hierarchy.access_classified hierarchy ~core (hierarchy_kind kind) ~addr
        in
        (now + latency, level))
      ~load:(fun ~addr -> mem.(addr))
      ~store:(fun ~addr ~value -> mem.(addr) <- value)
  in
  let cores =
    Array.init cores_n (fun id ->
        Core.create ~trace:obs ~id ~code:program.Program.threads.(id) ~port
          ~scope_config:config.Config.scope ~exec_config:config.Config.exec ())
  in
  (cores, mem, hierarchy)

(* The three-phase step protocol shared by both loops; see Core's
   interface for why the order matters.  Returns whether any core
   changed state beyond per-cycle stall accounting. *)
let step_all cores ~cycle =
  let progress = ref false in
  Array.iter
    (fun core -> if Core.step_complete_writes core ~cycle then progress := true)
    cores;
  Array.iter
    (fun core -> if Core.step_complete_reads core ~cycle then progress := true)
    cores;
  Array.iter (fun core -> if Core.step_pipeline core ~cycle then progress := true) cores;
  !progress

let run ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy = build ~obs config program in
  let n = Array.length cores in
  let traced = Obs.Trace.on obs in
  let max_cycles = config.Config.max_cycles in
  (* Per-core event-horizon scheduling.  A core whose three sub-steps
     all report no progress is frozen: every cycle-dependence of its
     step functions is a threshold already scheduled in its own state
     (execution completions, store-buffer drain times, a fetch-resume
     point), and other cores cannot change any of that — they only
     write shared memory, which a frozen core samples exactly at those
     thresholds, and the cache directory, which only affects the
     latency of accesses it has not issued yet.  So the core sleeps
     until its {!Core.next_wake} horizon: the engine pre-charges the
     skipped span's stall/occupancy accounting in O(1) and stops
     stepping it, while awake cores keep executing cycle by cycle.
     When every core sleeps, the clock jumps straight to the earliest
     wake-up.  Results are bit-identical to the naive loop.

     Draining is monotonic (a halted core stays halted, its emptied
     store buffer stays empty), so a per-core flag plus a counter
     replaces the naive loop's per-cycle every-core [drained] scan. *)
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = ref 0 in
  let cycle = ref 0 in
  let finished = ref false in
  while (not !finished) && !cycle < max_cycles do
    let c = !cycle in
    if traced then Obs.Trace.set_now obs c;
    for i = 0 to n - 1 do
      progress.(i) <-
        wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c
    done;
    for i = 0 to n - 1 do
      if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
        progress.(i) <- true
    done;
    for i = 0 to n - 1 do
      if wake.(i) <= c then begin
        if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
        if progress.(i) then begin
          wake.(i) <- c + 1;
          if (not drained.(i)) && Core.drained cores.(i) then begin
            drained.(i) <- true;
            incr drained_count;
            wake.(i) <- max_cycles
          end
        end
        else begin
          (* Frozen: sleep until the horizon (or, with nothing
             scheduled at all, until the run's cycle limit — the core
             is stuck and can only wait out a timeout), charging the
             skipped span's per-cycle accounting up front.  The charge
             is exact: the simulation cannot end before this core's
             wake-up, because a sleeping core is never drained. *)
          let d =
            match Core.next_wake cores.(i) ~cycle:c with
            | Some d -> min d max_cycles
            | None -> max_cycles
          in
          Core.account_stall_span cores.(i) ~cycle:c ~cycles:(d - c - 1);
          wake.(i) <- d
        end
      end
    done;
    if !drained_count = n then begin
      cycle := c + 1;
      finished := true
    end
    else begin
      (* Next cycle at which anything can happen: awake cores have
         wake = c+1; if everyone sleeps this jumps the clock. *)
      let target = Array.fold_left min max_int wake in
      cycle := max target (c + 1)
    end
  done;
  {
    cycles = !cycle;
    timed_out = !drained_count < n;
    cores;
    mem;
    hierarchy;
  }

(* The retained naive loop: one cycle at a time, no fast-forward.  The
   differential suite holds [run] to bit-identical results against
   this, and the bench harness quotes the wall-clock win over it. *)
let run_naive ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy = build ~obs config program in
  let all_done () = Array.for_all Core.drained cores in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < config.Config.max_cycles do
    let c = !cycle in
    Obs.Trace.set_now obs c;
    ignore (step_all cores ~cycle:c);
    incr cycle
  done;
  {
    cycles = !cycle;
    timed_out = not (all_done ());
    cores;
    mem;
    hierarchy;
  }
