module Core = Fscope_cpu.Core
module Mem_port = Fscope_cpu.Mem_port
module Exec_config = Fscope_cpu.Exec_config
module Hierarchy = Fscope_mem.Hierarchy
module Program = Fscope_isa.Program
module Obs = Fscope_obs

(* Spin fast-forward bookkeeping of one run (zeros in the naive loop). *)
type spin_stats = {
  mutable sleeps : int;  (** times a core was put into spin-sleep *)
  mutable cycles_skipped : int;  (** core-cycles replayed in closed form *)
  mutable wakes : int;  (** sleeps ended by a cross-core store or invalidation *)
}

let fresh_spin_stats () = { sleeps = 0; cycles_skipped = 0; wakes = 0 }

(* Lockstep-traffic bookkeeping of the sharded loop (zeros elsewhere):
   how many barrier generations the run crossed, and how many cycles
   ran inside elided spans (one meeting barrier per span instead of
   four per cycle). *)
type shard_stats = {
  mutable barriers : int;
  mutable elided_cycles : int;
}

let fresh_shard_stats () = { barriers = 0; elided_cycles = 0 }

type raw = {
  cycles : int;
  timed_out : bool;
  cores : Core.t array;
  mem : int array;
  hierarchy : Hierarchy.t;
  spin : spin_stats;
  shard : shard_stats;
  windows : (int * int) list;
      (* measured detailed windows of a sampled run as inclusive
         [start, end] cycle ranges, in run order; [] otherwise *)
}

let hierarchy_kind = function
  | Mem_port.Read -> Hierarchy.Read
  | Mem_port.Write -> Hierarchy.Write
  | Mem_port.Rmw -> Hierarchy.Rmw

(* One machine instance: cores wired to shared memory through a
   Mem_port whose timing side is either the cache hierarchy or the
   ideal 1-cycle model ([Config.mem_model]).  The returned [on_store]
   ref is called with the address of every memory value write, just
   before the write lands — the engine points it at its spin-sleep
   watch table (it starts out as a no-op). *)
let build ~obs (config : Config.t) program =
  let cores_n = Program.thread_count program in
  let mem = Program.initial_memory program in
  let hierarchy = Hierarchy.create ~trace:obs ~cores:cores_n config.Config.mem in
  let on_store = ref (fun (_ : int) -> ()) in
  let issue =
    match config.Config.mem_model with
    | Config.Hierarchy ->
      fun ~core kind ~addr ~now ->
        let latency, level =
          Hierarchy.access_classified hierarchy ~core (hierarchy_kind kind) ~addr
        in
        (now + latency, level)
    | Config.Ideal ->
      (* every access is a 1-cycle hit; the hierarchy above stays idle
         (its stats remain zero) but still anchors [raw.hierarchy] *)
      fun ~core:_ _kind ~addr:_ ~now -> (now + 1, Obs.Event.L1_hit)
  in
  let port =
    Mem_port.make ~size:(Array.length mem) ~issue
      ~load:(fun ~addr -> mem.(addr))
      ~store:(fun ~addr ~value ->
        !on_store addr;
        mem.(addr) <- value)
  in
  let cores =
    Array.init cores_n (fun id ->
        Core.create ~trace:obs ~id ~code:program.Program.threads.(id) ~port
          ~scope_config:config.Config.scope ~exec_config:config.Config.exec ())
  in
  (cores, mem, hierarchy, on_store)

(* The three-phase step protocol shared by both loops; see Core's
   interface for why the order matters.  Returns whether any core
   changed state beyond per-cycle stall accounting. *)
let step_all cores ~cycle =
  let progress = ref false in
  Array.iter
    (fun core -> if Core.step_complete_writes core ~cycle then progress := true)
    cores;
  Array.iter
    (fun core -> if Core.step_complete_reads core ~cycle then progress := true)
    cores;
  Array.iter (fun core -> if Core.step_pipeline core ~cycle then progress := true) cores;
  !progress

(* Overwrite a freshly built machine with checkpointed state (shared
   by the sequential and sharded loops; always single-threaded — the
   sharded loop restores before spawning its domains).  The wake array
   comes back verbatim: frozen cores had their skipped spans
   pre-charged when they froze, so re-deriving horizons here would
   double-charge them.  [drained] is monotonic state recomputable from
   the cores, so it is not serialized; [mark_drained] is called for
   each core that comes back drained.  Returns the resume cycle. *)
let restore_checkpoint (ck : Checkpoint.t) (config : Config.t) program ~cores ~mem
    ~hierarchy ~wake ~mark_drained =
  let n = Array.length cores in
  Checkpoint.validate ck config program;
  if Array.length ck.Checkpoint.cores <> n then failwith "checkpoint: core count mismatch";
  if Array.length ck.Checkpoint.mem <> Array.length mem then
    failwith "checkpoint: memory size mismatch";
  if Array.length ck.Checkpoint.wake <> n then
    failwith "checkpoint: wake array size mismatch";
  Array.iteri (fun i j -> Core.restore cores.(i) j) ck.Checkpoint.cores;
  Array.blit ck.Checkpoint.mem 0 mem 0 (Array.length mem);
  Hierarchy.restore hierarchy ck.Checkpoint.hierarchy;
  Array.blit ck.Checkpoint.wake 0 wake 0 n;
  for i = 0 to n - 1 do
    if Core.drained cores.(i) then mark_drained i
  done;
  ck.Checkpoint.cycle

let run_sequential ?(obs = Obs.Trace.null) ?checkpoint ?resume (config : Config.t)
    program =
  let cores, mem, hierarchy, on_store = build ~obs config program in
  let n = Array.length cores in
  let traced = Obs.Trace.on obs in
  if traced && (Option.is_some checkpoint || Option.is_some resume) then
    invalid_arg "Sim_engine: checkpointing is an untraced-run facility";
  let max_cycles = config.Config.max_cycles in
  (* Per-core event-horizon scheduling.  A core whose three sub-steps
     all report no progress is frozen: every cycle-dependence of its
     step functions is a threshold already scheduled in its own state
     (execution completions, store-buffer drain times, a fetch-resume
     point), and other cores cannot change any of that — they only
     write shared memory, which a frozen core samples exactly at those
     thresholds, and the cache directory, which only affects the
     latency of accesses it has not issued yet.  So the core sleeps
     until its {!Core.next_wake} horizon: the engine pre-charges the
     skipped span's stall/occupancy accounting in O(1) and stops
     stepping it, while awake cores keep executing cycle by cycle.
     When every core sleeps, the clock jumps straight to the earliest
     wake-up.  Results are bit-identical to the naive loop.

     Draining is monotonic (a halted core stays halted, its emptied
     store buffer stays empty), so a per-core flag plus a counter
     replaces the naive loop's per-cycle every-core [drained] scan. *)
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = ref 0 in
  let cycle = ref 0 in
  let finished = ref false in
  (match (resume : Checkpoint.t option) with
  | None -> ()
  | Some ck ->
    cycle :=
      restore_checkpoint ck config program ~cores ~mem ~hierarchy ~wake
        ~mark_drained:(fun i ->
          drained.(i) <- true;
          incr drained_count));
  (* Spin fast-forward (see Core's spin interface and DESIGN §11).  A
     core that is provably in a stable read-only spin loop sleeps past
     the horizon: its state can only stop being periodic when another
     core writes — or steals — a line it reads, so we watch the loop's
     load footprint and wake the sleeper the instant such an action is
     about to happen.  On wake (and at timeout) the skipped whole
     periods are replayed in closed form and the partial tail is
     re-stepped normally, which lands the core in exactly the state
     naive stepping would have produced.  Tracing disables this — a
     traced run must emit every per-cycle event. *)
  let spin = fresh_spin_stats () in
  let spin_on = config.Config.exec.Exec_config.spin_fastforward && not traced in
  if spin_on then Array.iter (fun core -> Core.set_spin_ff core true) cores;
  let sleeping : Core.spin_stable option array = Array.make n None in
  (* watched address -> sorted list of sleeping watcher cores (a list,
     not a bitmask, so the machine is not capped at 62 cores) *)
  let watches : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  (* where in the current cycle the step loops are, so a wake fired
     from inside another core's step can splice the sleeper back into
     the phase order it would have had in the naive loop *)
  let phase = ref 0 in
  let phase_core = ref 0 in
  let register_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        let cur = Option.value (Hashtbl.find_opt watches addr) ~default:[] in
        Hashtbl.replace watches addr (List.sort_uniq compare (i :: cur)))
      st.Core.footprint
  in
  let unregister_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l ->
          (match List.filter (fun j -> j <> i) l with
          | [] -> Hashtbl.remove watches addr
          | l' -> Hashtbl.replace watches addr l'))
      st.Core.footprint
  in
  (* Catch a woken sleeper up through cycle [through]: replay whole
     periods in closed form, then solo-step the tail.  Solo-stepping is
     exact because within a period the core touches nothing shared —
     no stores or CAS can be in flight, and every load hits its own
     L1 — so interleaving with other cores' sub-steps is immaterial. *)
  let catch_up i (st : Core.spin_stable) ~through =
    let b = st.Core.armed_cycle in
    let k = if through <= b then 0 else (through - b) / st.Core.period in
    if k > 0 then begin
      Core.spin_replay cores.(i) ~stable:st ~k;
      (match config.Config.mem_model with
      | Config.Hierarchy ->
        (* the skipped loads would all have hit this core's L1 *)
        let s = Hierarchy.stats hierarchy in
        s.Hierarchy.l1_hits <- s.Hierarchy.l1_hits + (k * st.Core.loads_per_period)
      | Config.Ideal -> ());
      spin.cycles_skipped <- spin.cycles_skipped + (k * st.Core.period)
    end;
    for x = b + (k * st.Core.period) + 1 to through do
      ignore (Core.step_complete_writes cores.(i) ~cycle:x);
      ignore (Core.step_complete_reads cores.(i) ~cycle:x);
      ignore (Core.step_pipeline cores.(i) ~cycle:x)
    done;
    Core.spin_cancel cores.(i)
  in
  (* Phase-3 body of the main loop, factored so a phase-3 wake can run
     it for the sleeper at its original position in core order. *)
  let rec step3 i c =
    if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
    if progress.(i) then begin
      wake.(i) <- c + 1;
      if (not drained.(i)) && Core.drained cores.(i) then begin
        drained.(i) <- true;
        incr drained_count;
        wake.(i) <- max_cycles
      end
      else if spin_on then begin
        match Core.spin_poll cores.(i) ~cycle:c with
        | Some st ->
          (* proven stable: sleep until a watched line is written or
             invalidated (or the run times out) *)
          sleeping.(i) <- Some st;
          register_watches i st;
          wake.(i) <- max_cycles;
          spin.sleeps <- spin.sleeps + 1
        | None -> ()
      end
    end
    else begin
      (* Frozen: sleep until the horizon (or, with nothing
         scheduled at all, until the run's cycle limit — the core
         is stuck and can only wait out a timeout), charging the
         skipped span's per-cycle accounting up front.  The charge
         is exact: the simulation cannot end before this core's
         wake-up, because a sleeping core is never drained. *)
      let d =
        match Core.next_wake cores.(i) ~cycle:c with
        | Some d -> min d max_cycles
        | None -> max_cycles
      in
      Core.account_stall_span cores.(i) ~cycle:c ~cycles:(d - c - 1);
      wake.(i) <- d
    end
  (* Wake fired from inside the current cycle's step loops, just
     before the disturbing write or invalidation takes effect. *)
  and wake_core i =
    match sleeping.(i) with
    | None -> ()
    | Some st ->
      sleeping.(i) <- None;
      unregister_watches i st;
      Core.spin_cancel cores.(i);
      spin.wakes <- spin.wakes + 1;
      let t = !cycle in
      if t = st.Core.armed_cycle then
        (* disturbed later in the very cycle it armed (by a core after
           it in phase-3 order): nothing was skipped and the core has
           already fully stepped this cycle *)
        wake.(i) <- t + 1
      else begin
        catch_up i st ~through:(t - 1);
        if !phase = 3 then begin
          (* cycle [t]'s write/read phases already passed this core;
             its writes phase is a no-op (empty store buffer, no CAS in
             flight — guaranteed by the arming probe) and completing
             reads now is exact because phase 3 never changes memory
             values.  Then: in the naive loop a core earlier in core
             order would have run its pipeline step before the
             disturber's — replay that ordering here; a later one is
             picked up by the main phase-3 loop as usual. *)
          if Core.step_complete_reads cores.(i) ~cycle:t then progress.(i) <- true;
          if i < !phase_core then step3 i t else wake.(i) <- t
        end
        else begin
          (* phase 1: the disturbing store has not landed yet; the
             remaining phase loops of cycle [t] pick the core up *)
          progress.(i) <- false;
          wake.(i) <- t
        end
      end
  in
  if spin_on then begin
    on_store :=
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l -> List.iter wake_core l (* ascending core order *));
    (* a write/RMW/eviction about to invalidate or downgrade a
       sleeper's L1 line could change what its loop observes (values
       or latencies) — wake it first *)
    Hierarchy.set_remote_victim_hook hierarchy (fun ~core ->
        match sleeping.(core) with Some _ -> wake_core core | None -> ())
  end;
  (* Periodic capture, at the top of the first visited cycle at or
     past each multiple of [every] (the event-horizon clock jumps, so
     exact multiples may never be visited).  Spin sleepers are woken
     and caught up through the previous cycle first — waking is
     bit-identity-neutral (certificates re-arm on fresh boundaries)
     and keeps probe state out of the format. *)
  let ckpt_digest = lazy (Checkpoint.digest config program) in
  let next_ckpt = ref (match checkpoint with Some (every, _) -> !cycle + every | None -> max_int) in
  let capture c sink every =
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(c - 1);
        wake.(i) <- c
    done;
    sink
      {
        Checkpoint.cycle = c;
        digest = Lazy.force ckpt_digest;
        wake = Array.copy wake;
        cores = Array.map Core.snapshot cores;
        mem = Array.copy mem;
        hierarchy = Hierarchy.to_json hierarchy;
      };
    next_ckpt := c + every
  in
  while (not !finished) && !cycle < max_cycles do
    let c = !cycle in
    if traced then Obs.Trace.set_now obs c;
    (match checkpoint with
    | Some (every, sink) when c >= !next_ckpt -> capture c sink every
    | Some _ | None -> ());
    phase := 1;
    for i = 0 to n - 1 do
      phase_core := i;
      progress.(i) <- wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c
    done;
    phase := 2;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
        progress.(i) <- true
    done;
    phase := 3;
    for i = 0 to n - 1 do
      phase_core := i;
      if wake.(i) <= c then step3 i c
    done;
    phase := 0;
    if !drained_count = n then begin
      cycle := c + 1;
      finished := true
    end
    else begin
      (* Next cycle at which anything can happen: awake cores have
         wake = c+1; if everyone sleeps this jumps the clock. *)
      let target = Array.fold_left min max_int wake in
      cycle := max target (c + 1)
    end
  done;
  (* A run that timed out may leave spin-sleepers behind: the naive
     loop would have stepped them through cycle [max_cycles - 1], so
     catch them up to exactly there before reporting. *)
  if !drained_count < n then
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(max_cycles - 1)
    done;
  {
    cycles = !cycle;
    timed_out = !drained_count < n;
    cores;
    mem;
    hierarchy;
    spin;
    shard = fresh_shard_stats ();
    windows = [];
  }

(* ------------------------------------------------------------------ *)
(* Domain-sharded loop                                                 *)
(* ------------------------------------------------------------------ *)

(* One machine's cores split cyclically across [d] OCaml domains (core
   i belongs to shard [i mod d]), running the same three-phase step
   protocol with a barrier at every phase boundary.  Within a phase,
   each shard classifies its owned cores' steps as ORDERED — may touch
   state shared between cores (memory writes, the cache directory and
   its stats, wakes, traced events) — or FREE (provably commutes with
   every other step of the phase).  Ordered steps execute at their
   exact global ascending-core-order turn, serialised by the
   {!Shard_sync} cursor token; free steps run immediately on their
   owner.  Since every shared-state interaction happens at the same
   global position as in the sequential loop, and free steps depend
   only on their own core's state (plus phase-2 memory reads, which no
   phase-2 step can change), the whole run — cycles, every CPI leaf,
   final memory, traces — is bit-identical to {!run_sequential} and
   therefore to {!run_naive}.

   Classification per phase (see DESIGN §13 for the argument):
   - phase 1: ordered iff traced, or the core was spin-sleeping at
     cycle start (a cross-shard wake may touch its slots), or
     {!Core.writes_pending} (a drain or CAS completion writes memory);
   - phase 2: read-only — everything is free unless traced;
   - phase 3: ordered iff traced, was sleeping, may arm a spin
     certificate (a sleep transition registers shared watches), or —
     under the hierarchy model, where even an L1 hit bumps shared
     directory stats — {!Core.may_touch_mem}.

   Cross-shard spin wakes fire only from inside ordered steps (the
   disturbing store / invalidation is itself shared-state work), so
   the sequential [wake_core] logic carries over verbatim: the waker
   holds the global order token at the disturber's position, exactly
   like the naive loop's program point.  Sleeping cores are always
   ordered, so their owner's (skipping) turns synchronise with any
   wake that lands on them.

   Per-core slots ([wake], [progress], [drained], [sleeping]) are
   written only by their owner or, for sleeping cores, by a
   token-holding waker — never concurrently, with happens-before
   through the cursor atomics and the phase barriers.  [phase] is
   written redundantly by every domain at phase entry (same-value);
   [phase_core] only by token holders; [cycle] and [finished] only by
   shard 0 in the publish window between the phase-3 barrier and the
   cycle barrier.  [drained_count] is an atomic because a core can
   drain inside a free step. *)
let run_sharded ?(obs = Obs.Trace.null) ?checkpoint ?resume ~domains (config : Config.t)
    program =
  let cores, mem, hierarchy, on_store = build ~obs config program in
  let n = Array.length cores in
  let d = max 1 (min domains n) in
  let traced = Obs.Trace.on obs in
  if traced && (Option.is_some checkpoint || Option.is_some resume) then
    invalid_arg "Sim_engine: checkpointing is an untraced-run facility";
  let max_cycles = config.Config.max_cycles in
  let hier_mem = config.Config.mem_model = Config.Hierarchy in
  let wake = Array.make n 0 in
  let progress = Array.make n false in
  let drained = Array.make n false in
  let drained_count = Atomic.make 0 in
  let cycle = ref 0 in
  let finished = ref false in
  (match (resume : Checkpoint.t option) with
  | None -> ()
  | Some ck ->
    cycle :=
      restore_checkpoint ck config program ~cores ~mem ~hierarchy ~wake
        ~mark_drained:(fun i ->
          drained.(i) <- true;
          Atomic.incr drained_count));
  let spin = fresh_spin_stats () in
  let shard_s = fresh_shard_stats () in
  let spin_on = config.Config.exec.Exec_config.spin_fastforward && not traced in
  if spin_on then Array.iter (fun core -> Core.set_spin_ff core true) cores;
  let sleeping : Core.spin_stable option array = Array.make n None in
  (* Stable per-cycle snapshot of [sleeping], refreshed by each owner
     in the publish window: classification must not read [sleeping]
     itself, which a token-holding waker may flip mid-phase. *)
  let was_sleeping = Array.make n false in
  let ordered = Array.make n false in
  let watches : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let phase = ref 0 in
  let phase_core = ref 0 in
  let sync = Shard_sync.create ~domains:d ~cores:n in
  let register_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        let cur = Option.value (Hashtbl.find_opt watches addr) ~default:[] in
        Hashtbl.replace watches addr (List.sort_uniq compare (i :: cur)))
      st.Core.footprint
  in
  let unregister_watches i (st : Core.spin_stable) =
    List.iter
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l ->
          (match List.filter (fun j -> j <> i) l with
          | [] -> Hashtbl.remove watches addr
          | l' -> Hashtbl.replace watches addr l'))
      st.Core.footprint
  in
  (* catch_up / step3 / wake_core are the sequential loop's logic
     verbatim (see the comments there); in this loop they only ever run
     under the order token or, for [step3], on a step classified free
     — whose spin poll is then guaranteed [None]. *)
  let catch_up i (st : Core.spin_stable) ~through =
    let b = st.Core.armed_cycle in
    let k = if through <= b then 0 else (through - b) / st.Core.period in
    if k > 0 then begin
      Core.spin_replay cores.(i) ~stable:st ~k;
      (match config.Config.mem_model with
      | Config.Hierarchy ->
        let s = Hierarchy.stats hierarchy in
        s.Hierarchy.l1_hits <- s.Hierarchy.l1_hits + (k * st.Core.loads_per_period)
      | Config.Ideal -> ());
      spin.cycles_skipped <- spin.cycles_skipped + (k * st.Core.period)
    end;
    for x = b + (k * st.Core.period) + 1 to through do
      ignore (Core.step_complete_writes cores.(i) ~cycle:x);
      ignore (Core.step_complete_reads cores.(i) ~cycle:x);
      ignore (Core.step_pipeline cores.(i) ~cycle:x)
    done;
    Core.spin_cancel cores.(i)
  in
  let rec step3 i c =
    if Core.step_pipeline cores.(i) ~cycle:c then progress.(i) <- true;
    if progress.(i) then begin
      wake.(i) <- c + 1;
      if (not drained.(i)) && Core.drained cores.(i) then begin
        drained.(i) <- true;
        Atomic.incr drained_count;
        wake.(i) <- max_cycles
      end
      else if spin_on then begin
        match Core.spin_poll cores.(i) ~cycle:c with
        | Some st ->
          sleeping.(i) <- Some st;
          register_watches i st;
          wake.(i) <- max_cycles;
          spin.sleeps <- spin.sleeps + 1
        | None -> ()
      end
    end
    else begin
      let dd =
        match Core.next_wake cores.(i) ~cycle:c with
        | Some dd -> min dd max_cycles
        | None -> max_cycles
      in
      Core.account_stall_span cores.(i) ~cycle:c ~cycles:(dd - c - 1);
      wake.(i) <- dd
    end
  and wake_core i =
    match sleeping.(i) with
    | None -> ()
    | Some st ->
      sleeping.(i) <- None;
      unregister_watches i st;
      Core.spin_cancel cores.(i);
      spin.wakes <- spin.wakes + 1;
      let t = !cycle in
      if t = st.Core.armed_cycle then wake.(i) <- t + 1
      else begin
        catch_up i st ~through:(t - 1);
        if !phase = 3 then begin
          if Core.step_complete_reads cores.(i) ~cycle:t then progress.(i) <- true;
          if i < !phase_core then step3 i t else wake.(i) <- t
        end
        else begin
          progress.(i) <- false;
          wake.(i) <- t
        end
      end
  in
  if spin_on then begin
    on_store :=
      (fun addr ->
        match Hashtbl.find_opt watches addr with
        | None -> ()
        | Some l -> List.iter wake_core l);
    Hierarchy.set_remote_victim_hook hierarchy (fun ~core ->
        match sleeping.(core) with Some _ -> wake_core core | None -> ())
  end;
  if traced then Obs.Trace.set_now obs 0;
  (* Periodic capture, sharded.  The decision is made by shard 0 in
     the publish window ([ckpt_at] names the cycle, written before the
     cycle barrier so every shard reads the same value at the next
     loop top); the capture itself is stop-the-world — every shard
     parks at a barrier while shard 0 alone force-wakes sleepers,
     catches them up and snapshots, exactly like the sequential
     [capture].  Elision is suppressed on a capture cycle (and capped
     at [next_ckpt - 1] otherwise) so the set of visited capture
     cycles — and therefore the emitted checkpoints — match the
     sequential loop's bit for bit. *)
  let ckpt_digest = lazy (Checkpoint.digest config program) in
  let next_ckpt =
    ref (match checkpoint with Some (every, _) -> !cycle + every | None -> max_int)
  in
  let ckpt_at = ref (-1) in
  let capture c sink every =
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(c - 1);
        wake.(i) <- c
    done;
    sink
      {
        Checkpoint.cycle = c;
        digest = Lazy.force ckpt_digest;
        wake = Array.copy wake;
        cores = Array.map Core.snapshot cores;
        mem = Array.copy mem;
        hierarchy = Hierarchy.to_json hierarchy;
      };
    next_ckpt := c + every
  in
  (* Barrier elision (DESIGN §16).  In the publish window each shard
     computes, over its own non-drained non-sleeping cores, the
     minimum {!Core.quiet_until} horizon — the last cycle through
     which stepping those cores provably performs no shared-state
     step, no sleep transition and no drain.  Sleeping cores
     contribute infinity: a quiet span is machine-wide write-free, so
     nothing can touch their watches.  At the next loop top every
     shard reads all slots (published before the cycle barrier) and
     derives the same span end; if it covers at least one cycle, the
     shards step their own cores through the whole span locally —
     per-core, all three sub-steps per cycle in order, which is
     observationally identical to the phase-major order because no
     step touches shared state — and meet at ONE barrier instead of
     four per cycle.  Capped at the capture horizon so checkpoint
     cycles stay identical, and recomputed at every publish, so the
     horizon is always fresh by construction. *)
  let elide_on = config.Config.elide_barriers && not traced in
  let quiet = Array.make d (-1) in
  let compute_quiet me c =
    let b = ref max_int in
    let i = ref me in
    while !i < n do
      let core = !i in
      if (not drained.(core)) && sleeping.(core) = None then begin
        let q =
          Core.quiet_until cores.(core)
            ~from:(max wake.(core) (c + 1))
            ~cap:(max_cycles - 1) ~hier:hier_mem
        in
        if q < !b then b := q
      end;
      i := !i + d
    done;
    quiet.(me) <- !b
  in
  if elide_on then
    for s = 0 to d - 1 do
      compute_quiet s (!cycle - 1)
    done;
  let shard_body me =
    (* Phase round counter: +1 per phase, in lockstep across shards by
       construction (every shard runs the same phase sequence). *)
    let round = ref 0 in
    let next_owned_ordered i =
      let k = ref (i + d) in
      while !k < n && not ordered.(!k) do k := !k + d done;
      if !k < n then !k else n
    in
    let run_phase ~pred ~step =
      let r = !round in
      incr round;
      let first = ref n in
      let i = ref me in
      while !i < n do
        let o = pred !i in
        ordered.(!i) <- o;
        if o && !first = n then first := !i;
        i := !i + d
      done;
      Shard_sync.set_cursor sync ~shard:me ~round:r !first;
      let i = ref me in
      while !i < n do
        let core = !i in
        if ordered.(core) then begin
          Shard_sync.await_prefix sync ~shard:me ~round:r core;
          phase_core := core;
          step core;
          Shard_sync.set_cursor sync ~shard:me ~round:r (next_owned_ordered core)
        end
        else step core;
        i := !i + d
      done
    in
    (* Publish window after the last stepped cycle [c]: no step runs,
       so owners can snapshot their cores' sleep state and refresh
       their elision horizon, and shard 0 can advance the shared clock
       and schedule a capture.  Ends with the cycle barrier. *)
    let publish c =
      let i = ref me in
      while !i < n do
        was_sleeping.(!i) <- sleeping.(!i) <> None;
        i := !i + d
      done;
      if elide_on then compute_quiet me c;
      if me = 0 then begin
        if Atomic.get drained_count = n then begin
          cycle := c + 1;
          finished := true
        end
        else begin
          let target = Array.fold_left min max_int wake in
          cycle := max target (c + 1)
        end;
        if (not !finished) && !cycle < max_cycles && !cycle >= !next_ckpt then
          ckpt_at := !cycle;
        if traced then Obs.Trace.set_now obs !cycle
      end;
      Shard_sync.barrier sync
    in
    while (not !finished) && !cycle < max_cycles do
      let c = !cycle in
      let do_ckpt = !ckpt_at = c in
      if do_ckpt then begin
        if me = 0 then
          (match checkpoint with
          | Some (every, sink) -> capture c sink every
          | None -> assert false);
        Shard_sync.barrier sync
      end;
      let span_end =
        (* Same inputs on every shard ([quiet] and [next_ckpt] were
           published before the last barrier), hence the same answer —
           the branch below stays in lockstep.  A capture cycle never
           elides: the force-wake just invalidated the horizons. *)
        if elide_on && not do_ckpt then begin
          let b = ref (min (max_cycles - 1) (!next_ckpt - 1)) in
          for s = 0 to d - 1 do
            if quiet.(s) < !b then b := quiet.(s)
          done;
          !b
        end
        else c - 1
      in
      if span_end >= c then begin
        phase := 0;
        if me = 0 then shard_s.elided_cycles <- shard_s.elided_cycles + (span_end - c + 1);
        (* Every step in the span is provably FREE, so per-core
           cycle-major order is observationally identical to the
           phase-major order of the lockstep path. *)
        let i = ref me in
        while !i < n do
          let core = !i in
          for x = c to span_end do
            if wake.(core) <= x then begin
              progress.(core) <- Core.step_complete_writes cores.(core) ~cycle:x;
              if Core.step_complete_reads cores.(core) ~cycle:x then
                progress.(core) <- true;
              step3 core x
            end
          done;
          i := !i + d
        done;
        Shard_sync.barrier sync;
        publish span_end
      end
      else begin
        phase := 1;
        run_phase
          ~pred:(fun i ->
            traced || was_sleeping.(i) || Core.writes_pending cores.(i) ~cycle:c)
          ~step:(fun i ->
            progress.(i) <- wake.(i) <= c && Core.step_complete_writes cores.(i) ~cycle:c);
        Shard_sync.barrier sync;
        phase := 2;
        run_phase
          ~pred:(fun _ -> traced)
          ~step:(fun i ->
            if wake.(i) <= c && Core.step_complete_reads cores.(i) ~cycle:c then
              progress.(i) <- true);
        Shard_sync.barrier sync;
        phase := 3;
        run_phase
          ~pred:(fun i ->
            traced || was_sleeping.(i)
            || (spin_on && Core.spin_may_arm cores.(i))
            || (hier_mem && Core.may_touch_mem cores.(i)))
          ~step:(fun i -> if wake.(i) <= c then step3 i c);
        Shard_sync.barrier sync;
        phase := 0;
        publish c
      end
    done
  in
  let guarded me () =
    try shard_body me with e -> Shard_sync.poison sync e
  in
  let others = Array.init (d - 1) (fun k -> Domain.spawn (guarded (k + 1))) in
  guarded 0 ();
  Array.iter Domain.join others;
  Shard_sync.check sync;
  if Atomic.get drained_count < n then
    for i = 0 to n - 1 do
      match sleeping.(i) with
      | None -> ()
      | Some st ->
        sleeping.(i) <- None;
        unregister_watches i st;
        catch_up i st ~through:(max_cycles - 1)
    done;
  shard_s.barriers <- Shard_sync.barriers sync;
  {
    cycles = !cycle;
    timed_out = Atomic.get drained_count < n;
    cores;
    mem;
    hierarchy;
    spin;
    shard = shard_s;
    windows = [];
  }

(* ------------------------------------------------------------------ *)
(* SMARTS-style interval sampling                                      *)
(* ------------------------------------------------------------------ *)

(* Alternate measured detailed windows with functional fast-forward
   (DESIGN §15).  Exact event counters (commits, memory ops, fences,
   branches, final memory) accumulate across both modes and stay
   exact; cycle-valued metrics (CPI leaves, mispredicts, occupancy,
   cache stats, the cycle count itself) are measured inside the
   detailed windows only and scaled by committed-instruction coverage
   at the end ([Core.extrapolate]).  Deterministic — same config and
   program always produce the same estimate — but an ESTIMATE: the
   sampled harness tests bound the per-metric error against the exact
   engine.

   Structure of one round after the (unwarmed, cold-start-is-real)
   first window:

     flush_arch*  ->  functional FF (ff_instrs per core, round-robin
     one instruction per live core)  ->  reseed_scope*  ->  warmup
     cycles (accounting erased)  ->  measured detailed cycles

   Spin fast-forward stays off: windows are short and bounded, and the
   probe's sleep transitions would complicate window accounting for no
   measurable win. *)
let run_sampled ?(obs = Obs.Trace.null) (config : Config.t) program
    (s : Config.sampling) =
  let cores, mem, hierarchy, _on_store = build ~obs config program in
  let n = Array.length cores in
  let traced = Obs.Trace.on obs in
  let max_cycles = config.Config.max_cycles in
  let hier_mem = config.Config.mem_model = Config.Hierarchy in
  let hstats = Hierarchy.stats hierarchy in
  let cycle = ref 0 in (* detailed cycles actually simulated *)
  let hstats_snapshot () =
    ( hstats.Hierarchy.l1_hits,
      hstats.Hierarchy.l1_misses,
      hstats.Hierarchy.l2_hits,
      hstats.Hierarchy.l2_misses,
      hstats.Hierarchy.invalidations,
      hstats.Hierarchy.c2c_transfers )
  in
  let hstats_restore (a, b, c, d, e, f) =
    hstats.Hierarchy.l1_hits <- a;
    hstats.Hierarchy.l1_misses <- b;
    hstats.Hierarchy.l2_hits <- c;
    hstats.Hierarchy.l2_misses <- d;
    hstats.Hierarchy.invalidations <- e;
    hstats.Hierarchy.c2c_transfers <- f
  in
  let measured = Array.make n 0 in
  let all_drained () = Array.for_all Core.drained cores in
  let finished = ref false in
  let sampled_any = ref false in
  (* Estimated whole-run cycle count: cores run concurrently from
     cycle 0, so the machine estimate is the slowest core's scaled
     active cycles. *)
  let estimate () =
    let worst = ref 0 in
    for i = 0 to n - 1 do
      let st = Core.stats cores.(i) in
      let m = measured.(i) in
      let e =
        if m > 0 && st.Core.committed > m then st.Core.active_cycles * st.Core.committed / m
        else st.Core.active_cycles
      in
      if e > !worst then worst := e
    done;
    !worst
  in
  (* Sharded detailed windows.  With [shard_domains > 1] (untraced —
     tracing serialises every step anyway) a persistent worker team is
     spawned once and parked at a command barrier; each detailed
     window (warmup and measured alike — both run [detailed_cycles])
     is dispatched to the team, which runs the window's cycles under
     the same ORDERED/FREE three-phase protocol as {!run_sharded}.
     Two differences from the sharded detailed loop: every core steps
     every cycle (no event-horizon wake array — window entry and exit
     must land exactly where the sequential [step_all] loop lands),
     and phase 2 consumes no round (nothing to serialise: windows run
     untraced and spin fast-forward is off, so reads are always FREE).
     The functional legs, settle loops and estimate bookkeeping stay
     on shard 0 while the workers wait at the command barrier.
     Results are bit-identical to the sequential sampled run for any
     shard count — the qcheck property in test_sampling.ml holds the
     engine to that. *)
  let domains = if traced then 1 else max 1 (min config.Config.shard_domains n) in
  let shard_s = fresh_shard_stats () in
  let sync = if domains > 1 then Some (Shard_sync.create ~domains ~cores:n) else None in
  let team_quit = ref false in
  let win_budget = ref 0 in
  let win_stop = ref false in
  let ordered = Array.make n false in
  let window_shard sy me round =
    let next_owned_ordered i =
      let k = ref (i + domains) in
      while !k < n && not ordered.(!k) do
        k := !k + domains
      done;
      if !k < n then !k else n
    in
    let run_phase ~pred ~step =
      let r = !round in
      incr round;
      let first = ref n in
      let i = ref me in
      while !i < n do
        let o = pred !i in
        ordered.(!i) <- o;
        if o && !first = n then first := !i;
        i := !i + domains
      done;
      Shard_sync.set_cursor sy ~shard:me ~round:r !first;
      let i = ref me in
      while !i < n do
        let core = !i in
        if ordered.(core) then begin
          Shard_sync.await_prefix sy ~shard:me ~round:r core;
          step core;
          Shard_sync.set_cursor sy ~shard:me ~round:r (next_owned_ordered core)
        end
        else step core;
        i := !i + domains
      done
    in
    let continue = ref true in
    while !continue do
      let c = !cycle in
      run_phase
        ~pred:(fun i -> Core.writes_pending cores.(i) ~cycle:c)
        ~step:(fun i -> ignore (Core.step_complete_writes cores.(i) ~cycle:c));
      Shard_sync.barrier sy;
      (* read-only phase: always FREE, no round consumed *)
      let i = ref me in
      while !i < n do
        ignore (Core.step_complete_reads cores.(!i) ~cycle:c);
        i := !i + domains
      done;
      Shard_sync.barrier sy;
      run_phase
        ~pred:(fun i -> hier_mem && Core.may_touch_mem cores.(i))
        ~step:(fun i -> ignore (Core.step_pipeline cores.(i) ~cycle:c));
      Shard_sync.barrier sy;
      if me = 0 then begin
        incr cycle;
        decr win_budget;
        if all_drained () then begin
          finished := true;
          win_stop := true
        end
        else if !win_budget <= 0 then win_stop := true
      end;
      Shard_sync.barrier sy;
      if !win_stop then continue := false
    done;
    (* window-exit barrier: every shard has read [win_stop] by now, so
       shard 0 may reset it for the next dispatch.  Without this a
       racing reset (shard 0 can reach the next dispatch before a
       worker re-reads the flag) strands that worker in a phantom
       cycle, one barrier out of step with the team — a deadlock. *)
    Shard_sync.barrier sy
  in
  let workers =
    match sync with
    | None -> [||]
    | Some sy ->
      Array.init (domains - 1) (fun k ->
          Domain.spawn (fun () ->
              try
                let me = k + 1 in
                let round = ref 0 in
                let live = ref true in
                while !live do
                  Shard_sync.barrier sy;
                  if !team_quit then live := false else window_shard sy me round
                done
              with e -> Shard_sync.poison sy e))
  in
  let round0 = ref 0 in
  let windows = ref [] in
  let detailed_cycles k ~measure =
    let before =
      if measure then Array.map (fun c -> (Core.stats c).Core.committed) cores
      else [||]
    in
    let start = !cycle in
    (match sync with
    | Some sy when (not !finished) && k > 0 ->
      win_budget := k;
      win_stop := false;
      Shard_sync.barrier sy;
      window_shard sy 0 round0
    | _ ->
      let w = ref 0 in
      while (not !finished) && !w < k do
        if traced then Obs.Trace.set_now obs !cycle;
        ignore (step_all cores ~cycle:!cycle);
        incr cycle;
        incr w;
        if all_drained () then finished := true
      done);
    if measure && !cycle > start then windows := (start, !cycle - 1) :: !windows;
    if measure then
      Array.iteri
        (fun i b ->
          measured.(i) <- measured.(i) + ((Core.stats cores.(i)).Core.committed - b))
        before
  in
  (* First window: the cold start is real execution, measure it
     without a warmup bracket. *)
  let sampled_main () =
    detailed_cycles s.Config.detailed ~measure:true;
    while not !finished do
    (* detailed -> functional: collapse to architectural state.  A CAS
       performs its read-modify-write at its completion point, before
       commit, so a core whose ROB holds a [Done] CAS must not flush:
       discarding the entry would let the functional leg apply the
       write a second time.  Settle instead — flush and park each core
       the moment it is [Core.flushable], and step the stragglers
       detailed until everyone has flushed.  A completed CAS is
       non-speculative (issue rules) and commits within bounded
       cycles, so this converges fast.  Settle commits are real
       forward progress (the exact counters keep them), but the
       micro-architectural accounting is erased like warmup: the
       measured windows already stand for this regime. *)
    sampled_any := true;
    let snaps = Array.map Core.counters_snapshot cores in
    let hsnap = hstats_snapshot () in
    let flushed = Array.make n false in
    let settle = ref 0 in
    let all_flushed = ref false in
    while not !all_flushed do
      all_flushed := true;
      for i = 0 to n - 1 do
        if not flushed.(i) then
          if Core.flushable cores.(i) then begin
            Core.flush_arch cores.(i);
            Core.park cores.(i);
            flushed.(i) <- true
          end
          else all_flushed := false
      done;
      if not !all_flushed then begin
        if traced then Obs.Trace.set_now obs !cycle;
        ignore (step_all cores ~cycle:!cycle);
        incr cycle;
        incr settle;
        if !settle > 1_000_000 then
          failwith "Sim_engine.run_sampled: flush settle did not converge"
      end
    done;
    Array.iteri (fun i c -> Core.counters_restore c snaps.(i)) cores;
    hstats_restore hsnap;
    Array.iter Core.unpark cores;
    let budget = Array.make n s.Config.ff_instrs in
    let live = ref true in
    while !live do
      live := false;
      for i = 0 to n - 1 do
        if budget.(i) > 0 then
          if Core.func_step cores.(i) then begin
            budget.(i) <- budget.(i) - 1;
            live := true
          end
          else budget.(i) <- 0
      done
    done;
    if Array.for_all Core.halted cores then finished := true
    else if estimate () >= max_cycles then
      (* stuck or runaway workload: the scaled estimate already blows
         the cycle budget, so stop — the run reports timed out, like
         the detailed engine at [max_cycles] *)
      finished := true
    else begin
      (* functional -> detailed: rebuild scope state, re-warm the
         pipeline with erased accounting, then measure *)
      Array.iter Core.reseed_scope cores;
      let snaps = Array.map Core.counters_snapshot cores in
      let hsnap = hstats_snapshot () in
      detailed_cycles s.Config.warmup ~measure:false;
      if not !finished then begin
        (* erase warmup accounting (unless the run ended inside the
           warmup — then those cycles are the true tail and stand) *)
        Array.iteri (fun i c -> Core.counters_restore c snaps.(i)) cores;
        hstats_restore hsnap;
        detailed_cycles s.Config.detailed ~measure:true
      end
    end
    done
  in
  (match sync with
  | None -> sampled_main ()
  | Some sy -> (
    try sampled_main ()
    with e ->
      (* a failing shard-0 leg must not leave the workers parked at
         the command barrier: poison, collect, re-raise *)
      Shard_sync.poison sy e;
      Array.iter Domain.join workers;
      raise e));
  (match sync with
  | None -> ()
  | Some sy ->
    team_quit := true;
    Shard_sync.barrier sy;
    Array.iter Domain.join workers;
    Shard_sync.check sy;
    shard_s.barriers <- Shard_sync.barriers sy);
  (* Scale measured micro-architecture to the whole run. *)
  let total_all = ref 0 and measured_all = ref 0 in
  for i = 0 to n - 1 do
    let total = (Core.stats cores.(i)).Core.committed in
    total_all := !total_all + total;
    measured_all := !measured_all + measured.(i);
    Core.extrapolate cores.(i) ~total ~measured:measured.(i)
  done;
  if !measured_all > 0 && !total_all > !measured_all then begin
    let scale x = x * !total_all / !measured_all in
    hstats.Hierarchy.l1_hits <- scale hstats.Hierarchy.l1_hits;
    hstats.Hierarchy.l1_misses <- scale hstats.Hierarchy.l1_misses;
    hstats.Hierarchy.l2_hits <- scale hstats.Hierarchy.l2_hits;
    hstats.Hierarchy.l2_misses <- scale hstats.Hierarchy.l2_misses;
    hstats.Hierarchy.invalidations <- scale hstats.Hierarchy.invalidations;
    hstats.Hierarchy.c2c_transfers <- scale hstats.Hierarchy.c2c_transfers
  end;
  (* [Core.extrapolate] already scaled each core's active cycles to
     the whole run, so the machine estimate is now a plain max. *)
  let cycles =
    if !sampled_any then begin
      let worst = ref 0 in
      for i = 0 to n - 1 do
        let a = (Core.stats cores.(i)).Core.active_cycles in
        if a > !worst then worst := a
      done;
      min max_cycles (max !cycle !worst)
    end
    else !cycle
  in
  {
    cycles;
    timed_out = not (all_drained ());
    cores;
    mem;
    hierarchy;
    spin = fresh_spin_stats ();
    shard = shard_s;
    windows = List.rev !windows;
  }

(* Entry point: the sampled engine when the config asks for it
   (detailed windows shard across [shard_domains]); otherwise shard
   when the config asks for it and the program has cores to spread —
   including checkpointing and resuming runs, which the sharded loop
   now handles at its publish window — and take the sequential
   event-horizon loop for single-core / single-domain runs. *)
let run ?(obs = Obs.Trace.null) ?checkpoint ?resume (config : Config.t) program =
  (match checkpoint with
  | Some (every, _) when every <= 0 ->
    invalid_arg "Sim_engine.run: checkpoint interval must be positive"
  | Some _ | None -> ());
  match config.Config.sampling with
  | Some s ->
    if Option.is_some checkpoint || Option.is_some resume then
      invalid_arg "Sim_engine.run: sampling and checkpointing are incompatible";
    run_sampled ~obs config program s
  | None ->
    let d = config.Config.shard_domains in
    if d > 1 && Program.thread_count program > 1 then
      run_sharded ~obs ?checkpoint ?resume ~domains:d config program
    else run_sequential ~obs ?checkpoint ?resume config program

(* The retained naive loop: one cycle at a time, no fast-forward.  The
   differential suite holds [run] to bit-identical results against
   this, and the bench harness quotes the wall-clock win over it. *)
let run_naive ?(obs = Obs.Trace.null) (config : Config.t) program =
  let cores, mem, hierarchy, _on_store = build ~obs config program in
  let all_done () = Array.for_all Core.drained cores in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < config.Config.max_cycles do
    let c = !cycle in
    Obs.Trace.set_now obs c;
    ignore (step_all cores ~cycle:c);
    incr cycle
  done;
  {
    cycles = !cycle;
    timed_out = not (all_done ());
    cores;
    mem;
    hierarchy;
    spin = fresh_spin_stats ();
    shard = fresh_shard_stats ();
    windows = [];
  }
