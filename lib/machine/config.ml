type mem_model =
  | Hierarchy
  | Ideal

type sampling = {
  warmup : int;
  detailed : int;
  ff_instrs : int;
}

(* Many short windows beat few long ones at the same detailed duty
   cycle: the measured windows cover phases densely, and short
   fast-forward legs keep the sampled execution's contention dynamics
   (queue depths, spin iteration counts) from drifting far from the
   detailed ones between measurements. *)
let sampling_default = { warmup = 500; detailed = 1_000; ff_instrs = 20_000 }

let sampling_validate s =
  if s.detailed <= 0 then invalid_arg "Config.sampling: detailed window must be positive";
  if s.warmup < 0 then invalid_arg "Config.sampling: negative warmup";
  if s.ff_instrs <= 0 then
    invalid_arg "Config.sampling: fast-forward instruction count must be positive"

type t = {
  exec : Fscope_cpu.Exec_config.t;
  mem : Fscope_mem.Hierarchy.config;
  mem_model : mem_model;
  scope : Fscope_core.Scope_unit.config;
  max_cycles : int;
  shard_domains : int;
  elide_barriers : bool;
  sampling : sampling option;
}

let make ?(exec = Fscope_cpu.Exec_config.default)
    ?(mem = Fscope_mem.Hierarchy.default_config) ?(mem_model = Hierarchy)
    ?(scope = Fscope_core.Scope_unit.default_config) ?(max_cycles = 30_000_000)
    ?(shard_domains = 1) ?(elide_barriers = true) ?sampling () =
  Option.iter sampling_validate sampling;
  { exec; mem; mem_model; scope; max_cycles; shard_domains; elide_barriers; sampling }

let mem_model_name = function Hierarchy -> "hierarchy" | Ideal -> "ideal"

let mem_model_of_string = function
  | "hierarchy" -> Some Hierarchy
  | "ideal" -> Some Ideal
  | _ -> None

let default = make ()

(* The one keyword constructor every builder below is a special case
   of: start from [base] (the Table III machine when omitted) and
   override exactly the named knobs.  An omitted argument leaves the
   base's value untouched, so refinements compose:
   [v ~base:(v ~sfence:false ()) ~mem_latency:500 ()]. *)
let v ?(base = default) ?sfence ?speculation ?nop_fences ?spin_fastforward ?mem_model
    ?mem_latency ?rob_size ?fsb_entries ?fss_entries ?mt_entries ?max_cycles
    ?shard_domains ?elide_barriers ?sampling () =
  let opt v dflt = Option.value v ~default:dflt in
  let sampling = opt sampling base.sampling in
  Option.iter sampling_validate sampling;
  {
    exec =
      {
        base.exec with
        in_window_speculation = opt speculation base.exec.in_window_speculation;
        nop_fences = opt nop_fences base.exec.nop_fences;
        spin_fastforward = opt spin_fastforward base.exec.spin_fastforward;
        rob_size = opt rob_size base.exec.rob_size;
      };
    mem = { base.mem with mem_latency = opt mem_latency base.mem.mem_latency };
    mem_model = opt mem_model base.mem_model;
    scope =
      {
        enabled = opt sfence base.scope.enabled;
        fsb_entries = opt fsb_entries base.scope.fsb_entries;
        fss_entries = opt fss_entries base.scope.fss_entries;
        mt_entries = opt mt_entries base.scope.mt_entries;
      };
    max_cycles = opt max_cycles base.max_cycles;
    shard_domains = opt shard_domains base.shard_domains;
    elide_barriers = opt elide_barriers base.elide_barriers;
    sampling;
  }

let traditional t = v ~base:t ~sfence:false ()
let scoped t = v ~base:t ~sfence:true ()
let with_speculation on t = v ~base:t ~speculation:on ()
let with_nop_fences on t = v ~base:t ~nop_fences:on ()
let with_mem_latency latency t = v ~base:t ~mem_latency:latency ()
let with_rob_size size t = v ~base:t ~rob_size:size ()
let with_fsb_entries n t = v ~base:t ~fsb_entries:n ()
let with_fss_entries n t = v ~base:t ~fss_entries:n ()
let with_mt_entries n t = v ~base:t ~mt_entries:n ()
let with_max_cycles n t = v ~base:t ~max_cycles:n ()
let with_mem_model m t = v ~base:t ~mem_model:m ()
let with_spin_fastforward on t = v ~base:t ~spin_fastforward:on ()
let with_shard_domains n t = v ~base:t ~shard_domains:n ()
let with_elide_barriers on t = v ~base:t ~elide_barriers:on ()
let with_sampling s t = v ~base:t ~sampling:s ()
