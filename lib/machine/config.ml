type mem_model =
  | Hierarchy
  | Ideal

type t = {
  exec : Fscope_cpu.Exec_config.t;
  mem : Fscope_mem.Hierarchy.config;
  mem_model : mem_model;
  scope : Fscope_core.Scope_unit.config;
  max_cycles : int;
}

let make ?(exec = Fscope_cpu.Exec_config.default)
    ?(mem = Fscope_mem.Hierarchy.default_config) ?(mem_model = Hierarchy)
    ?(scope = Fscope_core.Scope_unit.default_config) ?(max_cycles = 30_000_000) () =
  { exec; mem; mem_model; scope; max_cycles }

let mem_model_name = function Hierarchy -> "hierarchy" | Ideal -> "ideal"

let mem_model_of_string = function
  | "hierarchy" -> Some Hierarchy
  | "ideal" -> Some Ideal
  | _ -> None

let default = make ()
let traditional t = { t with scope = { t.scope with enabled = false } }
let scoped t = { t with scope = { t.scope with enabled = true } }
let with_speculation on t = { t with exec = { t.exec with in_window_speculation = on } }
let with_nop_fences on t = { t with exec = { t.exec with nop_fences = on } }
let with_mem_latency latency t = { t with mem = { t.mem with mem_latency = latency } }
let with_rob_size size t = { t with exec = { t.exec with rob_size = size } }
let with_fsb_entries n t = { t with scope = { t.scope with fsb_entries = n } }
let with_fss_entries n t = { t with scope = { t.scope with fss_entries = n } }
let with_mt_entries n t = { t with scope = { t.scope with mt_entries = n } }
let with_max_cycles n t = { t with max_cycles = n }
let with_mem_model m t = { t with mem_model = m }

let with_spin_fastforward on t =
  { t with exec = { t.exec with spin_fastforward = on } }
