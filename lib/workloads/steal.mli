(** server-steal: a work-stealing request scheduler — one Chase-Lev
    deque per worker, skewed {!Traffic} streams so the light workers
    drain early and live on the steal path.

    The hot fences are {!Wsq_class}'s flavored put/take/steal fences
    under many-thief contention, scoped per [scope]. *)

val make :
  ?workers:int ->
  ?requests:int ->
  ?seed:int ->
  ?mean_burst:int ->
  ?mean_gap:int ->
  ?service:int ->
  scope:[ `Class | `Set ] ->
  unit ->
  Workload.t
(** Defaults: 8 workers, 64 requests total (zipf split across
    workers), seed 1.  Validation: every task executed exactly once,
    every deque empty at exit. *)
