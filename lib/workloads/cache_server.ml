(* server-cache: a concurrent hash-map cache with epoch-based
   reclamation under a bursty request trace.

   Every core is a server thread replaying its own Traffic stream: per
   request it paces (open-loop delay), announces the current epoch (the
   EBR entry fence — a hot full fence), then serves a GET (3 of 4
   keys) or a PUT (key mod 4 = 0).  A PUT takes a node from the
   thread's private free stack, publishes it with a store-store fence,
   and CAS-swaps it into the bucket; the displaced node is retired into
   the thread's private limbo ring tagged with the announcement epoch,
   and reclaimed once the global epoch has advanced two past it.

   All reclamation bookkeeping (free stack, limbo ring) is
   thread-private by construction, so the only shared state the fences
   must order is the Cache instance itself — which is exactly what the
   set-scoped fence covers. *)

module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let keys_name t = Printf.sprintf "ckeys%d" t
let gaps_name t = Printf.sprintf "cgaps%d" t
let free_name t = Printf.sprintf "cfree%d" t
let limbo_name t = Printf.sprintf "climbo%d" t
let lepoch_name t = Printf.sprintf "clepoch%d" t
let scratch_name t = Printf.sprintf "cscr%d" t

(* OCaml mirror of Cache_class.hash, for validation. *)
let hash_mirror ~buckets k = ((k * 40503) lxor (k asr 3)) mod buckets

let thread_body ~me ~count ~cap ~service =
  let open Dsl in
  [
    let_ "ftop" (i cap);
    let_ "lhead" (i 0);
    let_ "ltail" (i 0);
    let_ "hits" (i 0);
    let_ "miss" (i 0);
    let_ "puts" (i 0);
    let_ "drop" (i 0);
    let_ "freed" (i 0);
    let_ "k" (i 0);
    while_
      (l "k" < i count)
      ([ let_ "gap" (elem (gaps_name me) (l "k")) ]
      @ delay ~unique:"pace" (l "gap")
      @ [
          let_ "e" (i 0);
          callv "e" "c" "announce" [ tid ];
          let_ "key" (elem (keys_name me) (l "k"));
          if_
            ((l "key" % i 4) = i 0)
            [
              if_ (l "ftop" > i 0)
                [
                  set "ftop" (l "ftop" - i 1);
                  let_ "node" (elem (free_name me) (l "ftop"));
                  let_ "old" (i 0);
                  callv "old" "c" "put" [ l "key"; l "node" ];
                  set "puts" (l "puts" + i 1);
                  when_
                    (l "old" > i 0)
                    [
                      (* Retire the displaced node: free only after a
                         two-epoch grace period. *)
                      selem (limbo_name me) (l "ltail") (l "old");
                      selem (lepoch_name me) (l "ltail") (l "e");
                      set "ltail" (l "ltail" + i 1);
                    ];
                ]
                [ set "drop" (l "drop" + i 1) ];
            ]
            [
              let_ "v" (i 0);
              callv "v" "c" "get" [ l "key" ];
              if_ (l "v" > i 0)
                [ set "hits" (l "hits" + i 1) ]
                [ set "miss" (l "miss" + i 1) ];
            ];
        ]
      (* Handler work dirties private scratch lines right before the
         next request's announce fence. *)
      @ scratch_work ~unique:"serve" ~arr:(scratch_name me)
          (((l "key" % i 4) + i 1) * i service)
      @ [
          when_
            ((l "k" % i 8) = i 7)
            [
              call "c" "try_advance" [];
              let_ "more" (i 1);
              while_
                (l "more" &&& (l "lhead" < l "ltail"))
                [
                  if_
                    (elem (lepoch_name me) (l "lhead") + i 2 <= fld "c" "epoch")
                    [
                      selem (free_name me) (l "ftop")
                        (elem (limbo_name me) (l "lhead"));
                      set "ftop" (l "ftop" + i 1);
                      set "lhead" (l "lhead" + i 1);
                      set "freed" (l "freed" + i 1);
                    ]
                    [ set "more" (i 0) (* ring is epoch-ordered *) ];
                ];
            ];
          set "k" (l "k" + i 1);
        ]);
    selem "st_hits" tid (l "hits");
    selem "st_miss" tid (l "miss");
    selem "st_puts" tid (l "puts");
    selem "st_drop" tid (l "drop");
    selem "st_freed" tid (l "freed");
    selem "st_ftop" tid (l "ftop");
    selem "st_lhead" tid (l "lhead");
    selem "st_ltail" tid (l "ltail");
    call "c" "offline" [ tid ];
  ]

let make ?(threads = 8) ?(per_thread = 16) ?(seed = 1) ?(mean_burst = 4)
    ?(mean_gap = 200) ?(key_skew = 1) ?(key_space = 64) ?(buckets = 32)
    ?(service = 16) ~scope () =
  if threads < 1 then invalid_arg "Cache_server.make: need at least one thread";
  let trace =
    Traffic.make
      {
        Traffic.default with
        seed;
        clients = threads;
        requests = threads * per_thread;
        mean_burst;
        mean_gap;
        key_skew;
        key_space;
      }
  in
  let counts = Array.init threads (Traffic.client_requests trace) in
  (* Node slices: thread t owns [1 + t*cap, 1 + (t+1)*cap); node 0
     means "empty bucket".  cap < per_thread/4 would make almost every
     PUT a drop, so keep at least a handful per thread. *)
  let cap = max 4 (per_thread / 2) in
  let pool = 1 + (threads * cap) in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Cache_class.set_fence_vars ~instances:[ "c" ])
  in
  let stat name = Ast.G_array (name, threads, None) in
  let program_ast =
    {
      Ast.classes = [ Cache_class.decl ~fence ~threads ~buckets ~pool ];
      instances = [ { Ast.iname = "c"; cls = "Cache" } ];
      globals =
        List.map stat
          [
            "st_hits"; "st_miss"; "st_puts"; "st_drop"; "st_freed"; "st_ftop";
            "st_lhead"; "st_ltail";
          ]
        @ List.concat
            (List.init threads (fun t ->
                 let free_init =
                   Array.init pool (fun j ->
                       if j < cap then 1 + (t * cap) + j else 0)
                 in
                 [
                   Ast.G_array (keys_name t, counts.(t), Some trace.Traffic.keys.(t));
                   Ast.G_array (gaps_name t, counts.(t), Some trace.Traffic.gaps.(t));
                   Ast.G_array (free_name t, pool, Some free_init);
                   Ast.G_array (limbo_name t, counts.(t) + 1, None);
                   Ast.G_array (lepoch_name t, counts.(t) + 1, None);
                   Ast.G_array (scratch_name t, 64, None);
                 ]))
      ;
      threads =
        List.init threads (fun t ->
            thread_body ~me:t ~count:counts.(t) ~cap ~service);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let total = Traffic.total trace in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let addr name = Program.address_of program name in
    let problem = ref None in
    let check cond msg = if not cond && !problem = None then problem := Some (msg ()) in
    (* Exactly-once node accounting: at quiescence every node is live
       in one bucket, on one free stack, or in one limbo ring. *)
    let seen = Array.make pool 0 in
    let slot_base = addr "c.slot" in
    let nkey_base = addr "c.nkey" in
    let nval_base = addr "c.nval" in
    for b = 0 to buckets - 1 do
      let n = mem.(slot_base + b) in
      if n <> 0 then begin
        check (n >= 1 && n < pool) (fun () ->
            Printf.sprintf "bucket %d holds out-of-range node %d" b n);
        if n >= 1 && n < pool then begin
          seen.(n) <- seen.(n) + 1;
          let k = mem.(nkey_base + n) in
          check (hash_mirror ~buckets k = b) (fun () ->
              Printf.sprintf "node %d with key %d lives in bucket %d" n k b);
          check (mem.(nval_base + n) = k + 1001) (fun () ->
              Printf.sprintf "node %d value torn: key %d value %d" n k
                mem.(nval_base + n))
        end
      end
    done;
    for t = 0 to threads - 1 do
      let ftop = mem.(addr "st_ftop" + t) in
      let lhead = mem.(addr "st_lhead" + t) in
      let ltail = mem.(addr "st_ltail" + t) in
      for j = 0 to ftop - 1 do
        let n = mem.(addr (free_name t) + j) in
        if n >= 1 && n < pool then seen.(n) <- seen.(n) + 1
      done;
      for j = lhead to ltail - 1 do
        let n = mem.(addr (limbo_name t) + j) in
        if n >= 1 && n < pool then seen.(n) <- seen.(n) + 1
      done
    done;
    for n = 1 to pool - 1 do
      check (seen.(n) = 1) (fun () ->
          Printf.sprintf "node %d accounted %d times" n seen.(n))
    done;
    (* Every request served exactly one way. *)
    let sum name =
      let base = addr name in
      let s = ref 0 in
      for t = 0 to threads - 1 do s := !s + mem.(base + t) done;
      !s
    in
    let ops = sum "st_hits" + sum "st_miss" + sum "st_puts" + sum "st_drop" in
    check (ops = total) (fun () ->
        Printf.sprintf "served %d of %d requests" ops total);
    match !problem with
    | Some msg -> Error msg
    | None -> Ok ()
  in
  {
    Workload.name = "server-cache";
    description = "hash-map cache with epoch-based reclamation under bursty gets/puts";
    program;
    validate;
  }
