(** A master/worker round barrier built from flag spins.

    Thread 0 (the master) runs a deterministic countdown each round,
    gathers every worker's arrival stamp, and publishes the round
    number in a shared [release] word; workers accumulate into private
    output slots and then busy-spin on [release].  The workers' waits
    are pure load/compare/branch loops over a fixed one-word footprint
    — the stable-spin shape the engine's spin fast-forward sleeps —
    which makes this the spin-heaviest workload in the registry and
    the bench point that shows that optimisation's wall-clock win.

    Validation: every output slot holds [rounds*(rounds+1)/2], every
    arrival stamp and the release word hold [rounds]. *)

val make : ?threads:int -> ?rounds:int -> ?delay:int -> unit -> Workload.t
(** Defaults: 4 threads (1 master + 3 workers), 12 rounds, a
    1200-iteration master countdown per round. *)
