module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let shared_vars = [ "out"; "arrive"; "release" ]

(* Worker [me]: per round, accumulate into the private output slot,
   publish arrival behind a release fence, then busy-spin on the
   master's round stamp.  The spin loop is a pure load/compare/branch
   body with a one-word footprint — exactly the shape the engine's
   spin fast-forward can sleep until the master's store wakes it. *)
let worker_body ~rounds =
  let open Dsl in
  [
    let_ "r" (i 1);
    while_
      (l "r" <= i rounds)
      [
        selem "out" tid (elem "out" tid + l "r");
        fence_set shared_vars;
        selem "arrive" tid (l "r");
        while_ (g "release" <> l "r") [];
        set "r" (l "r" + i 1);
      ];
  ]

(* Master (thread 0): a deterministic all-register countdown delays its
   arrival, so the workers' spins last long enough to matter; it then
   gathers every arrival stamp and opens the round.  The countdown's
   registers change every iteration, so it must never be mistaken for
   a stable spin. *)
let master_body ~threads ~rounds ~delay =
  let countdown = delay in
  (* captured before [open Dsl], which has its own [delay] *)
  let open Dsl in
  [
    let_ "r" (i 1);
    while_
      (l "r" <= i rounds)
      [
        let_ "d" (i countdown);
        while_ (l "d" > i 0) [ set "d" (l "d" - i 1) ];
        selem "out" tid (elem "out" tid + l "r");
        let_ "w" (i 1);
        while_
          (l "w" < i threads)
          [ while_ (elem "arrive" (l "w") <> l "r") []; set "w" (l "w" + i 1) ];
        fence_set shared_vars;
        sg "release" (l "r");
        set "r" (l "r" + i 1);
      ];
  ]

let make ?(threads = 4) ?(rounds = 12) ?(delay = 1200) () =
  if threads < 2 then invalid_arg "Spin_barrier.make: need a master and a worker";
  let program_ast =
    {
      Ast.classes = [];
      instances = [];
      globals =
        [
          Ast.G_array ("out", threads, None);
          Ast.G_array ("arrive", threads, None);
          Ast.G_scalar ("release", 0);
        ];
      threads =
        List.init threads (fun t ->
            if t = 0 then master_body ~threads ~rounds ~delay else worker_body ~rounds);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let expected_out = rounds * (rounds + 1) / 2 in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let out = Program.address_of program "out"
    and arrive = Program.address_of program "arrive"
    and release = Program.address_of program "release" in
    let problem = ref None in
    for t = 0 to threads - 1 do
      if mem.(out + t) <> expected_out && !problem = None then
        problem :=
          Some (Printf.sprintf "out[%d] = %d, expected %d" t mem.(out + t) expected_out)
    done;
    for w = 1 to threads - 1 do
      if mem.(arrive + w) <> rounds && !problem = None then
        problem :=
          Some (Printf.sprintf "arrive[%d] = %d, expected %d" w mem.(arrive + w) rounds)
    done;
    if mem.(release) <> rounds && !problem = None then
      problem := Some (Printf.sprintf "release = %d, expected %d" mem.(release) rounds);
    match !problem with Some msg -> Error msg | None -> Ok ()
  in
  {
    Workload.name = "spin-barrier";
    description = "master/worker round barrier; workers busy-spin on the round stamp";
    program;
    validate;
  }
