(** The workload registry: one uniform construction surface for every
    benchmark in the repo.

    The CLI, the bench harness and the experiment modules all
    enumerate workloads through this table instead of carrying their
    own assoc lists; [spec.description] is static, so listing the
    registry never compiles a program. *)

type params = {
  level : Privwork.level;
      (** Fig. 12 private-workload level for the harness benchmarks
          (dekker/wsq/msn/harris); ignored by the applications. *)
  scope : [ `Class | `Set ];
      (** scope flavour where the workload supports both; ignored by
          dekker/barnes/radiosity (whose scopes are fixed by the
          paper) and nested-scopes. *)
  attempts : int;  (** dekker try-lock attempts. *)
  rounds : int option;
      (** rounds for wsq / wsq-flavored / nested-scopes; [None] =
          the workload's own default. *)
  size : int option;
      (** the workload's principal size knob: per_producer (msn),
          keys_per_thread (harris), nodes (pst/ptc), bodies (barnes),
          patches (radiosity); [None] = the workload's default. *)
}

val default_params : params
(** Level 3 of {!Privwork.fig12_levels}, class scope, 30 attempts,
    default rounds and sizes. *)

type spec = {
  name : string;
  description : string;  (** static — printing it builds nothing *)
  make : params -> Workload.t;
}

val all : spec list
(** Every registered workload, in presentation order. *)

val names : string list

val find : string -> spec option
val get : string -> spec
(** Raises [Failure] with the list of valid names. *)

val build : ?params:params -> string -> Workload.t
(** [get] + [make]; [params] defaults to {!default_params}. *)
