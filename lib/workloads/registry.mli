(** The workload registry: one uniform construction surface for every
    benchmark in the repo.

    The CLI, the bench harness and the experiment modules all
    enumerate workloads through this table instead of carrying their
    own assoc lists.  Entries are typed {!Workload.spec} records —
    name, description, tags, documented size parameters and a builder
    — so {!find} returns a first-class description instead of a bare
    program thunk, and listing the registry never compiles a program.

    Construction goes through {!find} plus {!Workload.build} (or the
    spec's [build] field directly); there is deliberately no
    raise-on-unknown lookup here — callers that want one compose
    {!find} with {!unknown_message} so the failure text stays
    uniform. *)

type params = Workload.params = {
  level : Privwork.level;
  scope : [ `Class | `Set ];
  attempts : int;
  rounds : int option;
  size : int option;
  threads : int option;
  seed : int;
}
(** Re-export of {!Workload.params} (see there for per-field docs), so
    existing [{ Registry.default_params with ... }] call sites keep
    compiling. *)

val default_params : params
(** Alias of {!Workload.default_params}. *)

type spec = Workload.spec

val all : spec list
(** Every registered workload, in presentation order. *)

val names : string list

val find : string -> spec option
(** Typed lookup: the full spec (tags, documented parameters,
    builder), not a bare thunk. *)

val suggest : ?max:int -> string -> string list
(** Nearest registry names to a misspelt workload (edit distance plus
    substring match), closest first; at most [max] (default 3). *)

val unknown_message : string -> string
(** One-line "unknown workload 'x' — did you mean: ..." message. *)
