(** Live server-suite gauges recovered from the traced store-buffer
    drain stream.

    Each server workload exposes a data-structure occupancy signal in
    the [Sb_drain] markers the latency extraction already relies on: a
    store into a known symbol region with a value only one protocol
    step can produce.  A sampler pairs a trace keep-filter (retain
    exactly the marker drains) with a post-hoc fold that replays the
    retained events — in the trace's deterministic cycle/core/emission
    order — maintaining the implied occupancy and observing every
    transition into log2-bucket histograms in a metrics registry:

    - [server-mpmc]: queue depth under ["gauge/server-mpmc/queue_depth"];
    - [server-steal]: deque occupancy under
      ["gauge/server-steal/deque_occupancy"] (all deques) and [".../w<w>"];
    - [server-cache]: EBR limbo-ring length under
      ["gauge/server-cache/limbo_len"] (all threads) and [".../t<t>"].

    Because sampling is a replay of the trace rather than live
    instrumentation, the histograms are bit-identical across [--jobs]
    and [--shard-domains], like every other row metric. *)

type t = {
  label : string;
      (** short metric label for table rows, e.g. ["queue_depth"] *)
  hist : string;
      (** registry name of the aggregate histogram the fold fills *)
  keep : Fscope_obs.Event.t -> bool;
      (** trace keep-filter retaining exactly the marker drains *)
  fold : Fscope_obs.Metrics.t -> Fscope_obs.Event.timed list -> unit;
      (** replay retained events into gauge histograms *)
}

val for_workload : name:string -> Fscope_isa.Program.t -> t option
(** The sampler for a server workload's program image, or [None] when
    the workload has no gauge. *)

val gauge_names : Fscope_obs.Metrics.t -> string list
(** Names of all ["gauge/"]-prefixed histograms in a registry
    snapshot, in snapshot order. *)
