(* The shared side of the server-cache workload: a fixed-bucket hash
   map where each bucket holds at most one node (CAS-swap replacement),
   plus the epoch/announcement state of its epoch-based reclamation.

   Three fence sites, all on hot paths:
   - put: store-store publish fence between the node-content stores and
     the bucket CAS (Fig. 2's publication pattern);
   - get: load-load fence between the bucket read and the node-content
     reads;
   - announce: a full (store-load) fence after the announcement store —
     the classic EBR entry fence.

   The [fence] parameter picks the scope (traditional, class or set);
   the flavors are applied here. *)

open Dsl
module Ast = Fscope_slang.Ast

let offline = 1_000_000
(* An announcement larger than any reachable epoch: an offline thread
   never blocks epoch advancement. *)

let set_fence_vars ~instances =
  List.concat_map
    (fun inst ->
      List.map (Ast.field_symbol inst) [ "epoch"; "slot"; "nkey"; "nval"; "ann" ])
    instances

(* Multiplicative hash, mirrored by Cache_server.hash_mirror for
   validation. *)
let hash k ~buckets = bxor (k * i 40503) (k >> i 3) % i buckets

let decl ~fence ~threads ~buckets ~pool =
  let put =
    meth "put" [ "k"; "node" ] ~returns:true
      [
        sfldelem "self" "nkey" (l "node") (l "k");
        sfldelem "self" "nval" (l "node") (l "k" + i 1001);
        fence_ss fence (* publish: node contents before the bucket CAS *);
        let_ "h" (hash (l "k") ~buckets);
        let_ "old" (i 0);
        let_ "ok" (i 0);
        while_
          (not_ (l "ok"))
          [
            set "old" (fldelem "self" "slot" (l "h"));
            cas_fldelem "ok" "self" "slot" (l "h") (l "old") (l "node");
          ];
        return_ (l "old");
      ]
  in
  let get =
    meth "get" [ "k" ] ~returns:true
      [
        let_ "h" (hash (l "k") ~buckets);
        let_ "n" (fldelem "self" "slot" (l "h"));
        when_ (l "n" = i 0) [ return_ (i 0) (* empty bucket *) ];
        fence_ll fence (* the bucket read before the node-content reads *);
        when_
          (fldelem "self" "nkey" (l "n") = l "k")
          [ return_ (fldelem "self" "nval" (l "n")) ];
        return_ (i (-1));
      ]
  in
  let announce =
    meth "announce" [ "t" ] ~returns:true
      [
        let_ "e" (fld "self" "epoch");
        sfldelem "self" "ann" (l "t") (l "e");
        fence (* store-load: the announcement before any node access *);
        return_ (l "e");
      ]
  in
  let offline_m =
    meth "offline" [ "t" ]
      [ sfldelem "self" "ann" (l "t") (i offline); fence ]
  in
  let try_advance =
    meth "try_advance" []
      [
        let_ "e" (fld "self" "epoch");
        let_ "m" (i offline);
        let_ "j" (i 0);
        while_
          (l "j" < i threads)
          [
            let_ "a" (fldelem "self" "ann" (l "j"));
            when_ (l "a" < l "m") [ set "m" (l "a") ];
            set "j" (l "j" + i 1);
          ];
        let_ "ok" (i 0);
        when_
          (l "m" >= l "e")
          [ cas_fld "ok" "self" "epoch" (l "e") (l "e" + i 1) ];
      ]
  in
  {
    Ast.cname = "Cache";
    scalars = [ scalar "epoch" 1 ];
    arrays =
      [
        array "slot" buckets;
        array "nkey" pool;
        array "nval" pool;
        array "ann" threads;
      ];
    methods = [ put; get; announce; offline_m; try_advance ];
  }
