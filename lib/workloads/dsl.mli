(** Combinators for building slang ASTs concisely.

    The workload programs are a few hundred statements each; these
    helpers keep them close to the paper's pseudo code. *)

open Fscope_slang.Ast

(** {2 Expressions} *)

val i : int -> expr
val l : string -> expr
val tid : expr

val g : string -> expr
(** Read a scalar global. *)

val elem : string -> expr -> expr
(** Read a global array element. *)

val fld : string -> string -> expr
(** Read an instance scalar field ([fld "self" "n"] inside methods). *)

val fldelem : string -> string -> expr -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( &&& ) : expr -> expr -> expr
(** Bitwise and — logical "and" when operands are 0/1. *)

val ( ||| ) : expr -> expr -> expr

val ( << ) : expr -> expr -> expr
(** Shift left — with {!( >> )} and {!bxor}, enough for the integer
    hash mixing the server-cache workload does in slang. *)

val ( >> ) : expr -> expr -> expr
val bxor : expr -> expr -> expr
val not_ : expr -> expr

(** {2 Statements} *)

val let_ : string -> expr -> stmt
val set : string -> expr -> stmt
(** Assign an existing local. *)

val sg : string -> expr -> stmt
(** Store to a scalar global. *)

val selem : string -> expr -> expr -> stmt
(** [selem arr idx v]: store to a global array element. *)

val sfld : string -> string -> expr -> stmt
val sfldelem : string -> string -> expr -> expr -> stmt

val if_ : expr -> block -> block -> stmt
val when_ : expr -> block -> stmt
(** [if_] with an empty else. *)

val while_ : expr -> block -> stmt

val fence : stmt
(** Traditional full fence. *)

val fence_class : stmt
val fence_set : string list -> stmt

val fence_ss : stmt -> stmt
(** Restrict a fence statement to the store-store direction (sfence-
    like); combines with any scope. *)

val fence_ll : stmt -> stmt
val fence_sl : stmt -> stmt

val cas_g : string -> string -> expr -> expr -> stmt
(** [cas_g dst global expected desired]. *)

val cas_elem : string -> string -> expr -> expr -> expr -> stmt
(** [cas_elem dst arr idx expected desired]. *)

val cas_fld : string -> string -> string -> expr -> expr -> stmt
(** [cas_fld dst instance field expected desired]. *)

val cas_fldelem : string -> string -> string -> expr -> expr -> expr -> stmt

val call : string -> string -> expr list -> stmt
(** [call instance meth args]. *)

val callv : string -> string -> string -> expr list -> stmt
(** [callv dst instance meth args]: dst := instance.meth(args). *)

val return_ : expr -> stmt
val return_unit : stmt

(** {2 Composite blocks} *)

val delay : unique:string -> expr -> block
(** [delay ~unique n]: an all-register countdown of [n] iterations —
    the open-loop arrival pacing of the server workloads.  [unique]
    disambiguates the loop's local per call site. *)

val fetch_add_g : unique:string -> string -> expr -> block
(** [fetch_add_g ~unique name by]: atomic fetch-and-add on a scalar
    global via a CAS retry loop. *)

val incr_elem : string -> expr -> stmt
(** [incr_elem arr idx]: [arr\[idx\] <- arr\[idx\] + 1]. *)

val scratch_work : unique:string -> arr:string -> expr -> block
(** [scratch_work ~unique ~arr n]: an [n]-iteration countdown that
    stores into the thread-private array [arr] (size >= 64) each
    iteration — request-handler work whose dirty private lines a
    traditional fence must drain but a scoped fence may skip. *)

(** {2 Declarations} *)

val meth : string -> string list -> ?returns:bool -> block -> meth
val scalar : string -> int -> string * int
val array : string -> int -> string * int * int array option
val array_init : string -> int array -> string * int * int array option
