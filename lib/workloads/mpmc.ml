(* server-mpmc: an MPMC request-dispatch queue under bursty traffic.

   Producers replay a deterministic arrival trace (Traffic): per
   request they run the trace's open-loop delay, then enqueue onto a
   shared Michael-Scott queue (the MPMC dispatch point); workers
   dequeue, claim the request exactly once, and serve it with
   key-dependent register work (the trace's skewed keys become a
   heterogeneous service-time distribution).  In closed-loop mode a
   producer instead paces itself against the workers' shared retired
   counter, keeping at most [window] of its requests in flight.

   Unlike the Fig. 12 harness benchmarks, the hot fences here are on
   the producer-side publish path (node init before the enqueue CAS)
   and the dispatch path, under sustained cross-core traffic — the
   server-suite shape the paper's workloads never measure. *)

module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let claims_name t = Printf.sprintf "claims%d" t
let gaps_name p = Printf.sprintf "reqgaps%d" p
let scratch_name t = Printf.sprintf "mscr%d" t

(* Producer p injects nodes [base, base + count): node k carries value
   k + 1000, so a worker recovers the claim slot as v - 1002 (node
   indices start at 2, mirroring msn).  Building a request dirties the
   producer's private scratch lines right before the enqueue's publish
   fence — the lines a traditional fence drains and a scoped one
   skips. *)
let producer_thread ~me ~base ~count ~window ~closed =
  let open Dsl in
  [
    let_ "k" (i 0);
    while_
      (l "k" < i count)
      ([
         let_ "gap" (elem (gaps_name me) (l "k"));
       ]
      @ delay ~unique:"pace" (l "gap")
      @ (if closed then
           [
             (* Closed loop: wait until fewer than [window] of the
                whole system's requests are outstanding. *)
             while_ (g "injected" - g "retired" >= i window) [];
           ]
         else [])
      @ scratch_work ~unique:"mk" ~arr:(scratch_name me) (i 8)
      @ [
          call "q" "enqueue" [ i base + l "k" + i 1000; i base + l "k" ];
        ]
      @ fetch_add_g ~unique:"inj" "injected" (i 1)
      @ [ set "k" (l "k" + i 1) ]);
    fence (* all enqueue effects visible before the completion count *);
  ]
  @ fetch_add_g ~unique:"done" "done_producers" (i 1)

(* Worker: dequeue, claim, serve.  The drain protocol mirrors msn's
   consumers: only leave when a dequeue that follows the
   done_producers == P observation still finds the queue empty. *)
let worker_thread ~me ~producers ~n_values ~service =
  let open Dsl in
  let serve v =
    [
      let_ "slot" (v - i 1002);
      incr_elem (claims_name me) (l "slot");
      let_ "key" (elem "reqkey" (l "slot"));
    ]
    @ fetch_add_g ~unique:"ret" "retired" (i 1)
    @ scratch_work ~unique:"serve" ~arr:(scratch_name me)
        (((l "key" % i 4) + i 1) * i service)
  in
  Privwork.warm_array ~name:(claims_name me) ~words:(Stdlib.( + ) n_values 2)
  @ [
    let_ "leave" (i 0);
    let_ "v" (i 0);
    while_
      (not_ (l "leave"))
      [
        callv "v" "q" "dequeue" [];
        if_ (l "v" > i 0)
          (serve (l "v"))
          [
            let_ "d" (g "done_producers");
            fence;
            let_ "v2" (i 0);
            callv "v2" "q" "dequeue" [];
            if_ (l "v2" > i 0)
              (serve (l "v2"))
              [ when_ (l "d" = i producers) [ set "leave" (i 1) ] ];
          ];
      ];
  ]

let make ?(threads = 8) ?(per_producer = 16) ?(seed = 1) ?(mean_burst = 4)
    ?(mean_gap = 300) ?(key_skew = 1) ?(mode = Traffic.Open_loop) ?(window = 8)
    ?(service = 24) ~scope () =
  if threads < 2 then invalid_arg "Mpmc.make: need a producer and a worker";
  let producers = max 1 (threads / 4) in
  let trace =
    Traffic.make
      {
        Traffic.default with
        seed;
        clients = producers;
        requests = producers * per_producer;
        mean_burst;
        mean_gap;
        key_skew;
        mode;
      }
  in
  let counts = Array.init producers (Traffic.client_requests trace) in
  let bases =
    Array.init producers (fun p ->
        2 + Array.fold_left ( + ) 0 (Array.sub counts 0 p))
  in
  let n_values = Array.fold_left ( + ) 0 counts in
  let pool = 2 + n_values in
  let closed = mode = Traffic.Closed_loop in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Msn_class.set_fence_vars ~instances:[ "q" ])
  in
  (* reqkey.(slot) for slot = node - 2: the key of the request the
     node carries — read-only shared data the workers key their
     service time from. *)
  let reqkey = Array.make n_values 0 in
  Array.iteri
    (fun p base ->
      Array.iteri (fun k key -> reqkey.((base - 2) + k) <- key) trace.Traffic.keys.(p))
    bases;
  let program_ast =
    {
      Ast.classes = [ Msn_class.decl ~fence ~pool ];
      instances = [ { Ast.iname = "q"; cls = "Msn" } ];
      globals =
        [
          Ast.G_scalar ("done_producers", 0);
          Ast.G_scalar ("injected", 0);
          Ast.G_scalar ("retired", 0);
          Ast.G_array ("reqkey", n_values, Some reqkey);
        ]
        @ List.init producers (fun p ->
              Ast.G_array (gaps_name p, counts.(p), Some trace.Traffic.gaps.(p)))
        @ List.init threads (fun t -> Ast.G_array (claims_name t, n_values + 2, None))
        @ List.init threads (fun t -> Ast.G_array (scratch_name t, 64, None));
      threads =
        List.init threads (fun t ->
            if t < producers then
              producer_thread ~me:t ~base:bases.(t) ~count:counts.(t) ~window ~closed
            else worker_thread ~me:t ~producers ~n_values ~service);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let problem = ref None in
    let check cond msg = if not cond && !problem = None then problem := Some (msg ()) in
    for slot = 0 to n_values - 1 do
      let total =
        List.fold_left
          (fun acc t -> acc + mem.(Program.address_of program (claims_name t) + slot))
          0
          (List.init threads Fun.id)
      in
      check (total = 1) (fun () ->
          Printf.sprintf "request %d served %d times" slot total)
    done;
    let head = mem.(Program.address_of program "q.qhead") in
    let next = Program.address_of program "q.qnext" in
    check (mem.(next + head) = 0) (fun () -> "queue not empty at exit");
    check
      (mem.(Program.address_of program "injected") = n_values)
      (fun () -> Printf.sprintf "injected %d of %d"
          mem.(Program.address_of program "injected") n_values);
    check
      (mem.(Program.address_of program "retired") = n_values)
      (fun () -> Printf.sprintf "retired %d of %d"
          mem.(Program.address_of program "retired") n_values);
    match !problem with
    | Some msg -> Error msg
    | None -> Ok ()
  in
  {
    Workload.name = "server-mpmc";
    description = "MPMC request-dispatch queue: bursty producers feeding worker cores";
    program;
    validate;
  }

let requests ?(threads = 8) ?(per_producer = 16) () =
  max 1 (threads / 4) * per_producer

(* -- per-request latency from the store-buffer drain stream ----------

   A request's life is bracketed by two plain stores the simulator
   already traces as [Sb_drain] events:

   - inject: the enqueue's [qval] initialisation of the node carrying
     the request.  Node [slot + 2] holds value [slot + 1002] (node
     indices start at 2), so the drain at [q.qval + slot + 2] with
     exactly that value is the moment the request enters the queue's
     memory.
   - retire: the claiming worker's increment of its [claims] slot.
     The warm-up pass writes zeros over the same array, so the first
     drain with a non-zero value at [claimsT + slot] (any worker T) is
     the claim itself.

   Both marker families live in disjoint address regions of length at
   least [requests], so the (address, value) tests below cannot
   confuse them with each other or with any other store. *)

let latency_markers ~requests ~threads program =
  let qval = Program.address_of program "q.qval" in
  let claims =
    Array.init threads (fun t -> Program.address_of program (claims_name t))
  in
  let inject_slot addr value =
    let s = addr - qval - 2 in
    if s >= 0 && s < requests && value = s + 1002 then Some s else None
  in
  let retire_slot addr value =
    if value = 0 then None
    else
      Array.fold_left
        (fun acc base ->
          match acc with
          | Some _ -> acc
          | None ->
            let s = addr - base in
            if s >= 0 && s < requests then Some s else None)
        None claims
  in
  (inject_slot, retire_slot)

let keep_latency ~requests ~threads program =
  let inject_slot, retire_slot = latency_markers ~requests ~threads program in
  fun (ev : Fscope_obs.Event.t) ->
    match ev with
    | Fscope_obs.Event.Sb_drain { addr; value } ->
      inject_slot addr value <> None || retire_slot addr value <> None
    | _ -> false

let marker_cycles ~requests ~threads program events =
  let inject_slot, retire_slot = latency_markers ~requests ~threads program in
  let inject = Array.make requests max_int in
  let retire = Array.make requests max_int in
  List.iter
    (fun (ev : Fscope_obs.Event.timed) ->
      match ev.Fscope_obs.Event.event with
      | Fscope_obs.Event.Sb_drain { addr; value } ->
        (match inject_slot addr value with
        | Some s -> if ev.cycle < inject.(s) then inject.(s) <- ev.cycle
        | None -> ());
        (match retire_slot addr value with
        | Some s -> if ev.cycle < retire.(s) then retire.(s) <- ev.cycle
        | None -> ())
      | _ -> ())
    events;
  (inject, retire)

let latency_of_events ~requests ~threads program events =
  let inject, retire = marker_cycles ~requests ~threads program events in
  let lats = ref [] in
  for s = requests - 1 downto 0 do
    if inject.(s) < max_int && retire.(s) >= inject.(s) && retire.(s) < max_int then
      lats := (retire.(s) - inject.(s)) :: !lats
  done;
  List.sort compare !lats

(* Sampled runs only trace detailed cycles, so a marker pair is
   trustworthy only when both endpoints landed inside the SAME measured
   window — a pair spanning a functional gap would fold unsimulated
   fast-forward cycles into the latency. *)
let latency_of_events_windowed ~requests ~threads ~windows program events =
  let inject, retire = marker_cycles ~requests ~threads program events in
  let in_one_window lo hi =
    List.exists (fun (ws, we) -> ws <= lo && hi <= we) windows
  in
  let lats = ref [] in
  for s = requests - 1 downto 0 do
    if
      inject.(s) < max_int
      && retire.(s) >= inject.(s)
      && retire.(s) < max_int
      && in_one_window inject.(s) retire.(s)
    then lats := (retire.(s) - inject.(s)) :: !lats
  done;
  List.sort compare !lats
