open Dsl
module Ast = Fscope_slang.Ast

let set_fence_vars ~instances =
  List.concat_map
    (fun inst -> List.map (Ast.field_symbol inst) [ "qhead"; "qtail"; "qval"; "qnext" ])
    instances

let decl ~fence ~pool =
  let enqueue =
    meth "enqueue" [ "v"; "node" ]
      [
        sfldelem "self" "qval" (l "node") (l "v");
        sfldelem "self" "qnext" (l "node") (i 0);
        fence (* store-store: initialise the node before publishing it *);
        let_ "done_" (i 0);
        let_ "ok" (i 0);
        while_
          (not_ (l "done_"))
          [
            let_ "t" (fld "self" "qtail");
            let_ "n" (fldelem "self" "qnext" (l "t"));
            fence (* load-load: snapshot before the re-check *);
            when_
              (l "t" = fld "self" "qtail")
              [
                if_ (l "n" = i 0)
                  [
                    cas_fldelem "ok" "self" "qnext" (l "t") (i 0) (l "node");
                    when_
                      (l "ok")
                      [
                        (* swing the tail; failure means someone helped *)
                        cas_fld "ok" "self" "qtail" (l "t") (l "node");
                        set "done_" (i 1);
                      ];
                  ]
                  [ cas_fld "ok" "self" "qtail" (l "t") (l "n") (* help *) ];
              ];
          ];
      ]
  in
  let dequeue =
    meth "dequeue" [] ~returns:true
      [
        let_ "res" (i 0);
        let_ "done_" (i 0);
        let_ "ok" (i 0);
        let_ "tries" (i 0);
        while_
          (not_ (l "done_"))
          [
            let_ "h" (fld "self" "qhead");
            let_ "t" (fld "self" "qtail");
            let_ "n" (fldelem "self" "qnext" (l "h"));
            fence (* load-load: snapshot before the re-check *);
            when_
              (l "h" = fld "self" "qhead")
              [
                if_ (l "h" = l "t")
                  [
                    if_ (l "n" = i 0)
                      [ set "done_" (i 1) (* empty *) ]
                      [ cas_fld "ok" "self" "qtail" (l "t") (l "n") (* help *) ];
                  ]
                  [
                    (* h <> t with n = 0 is an inconsistent snapshot:
                       the core may issue the qnext[h] load before the
                       qtail load, so n can predate t.  Dereferencing
                       node 0 would CAS qhead to 0 and sever the queue,
                       so retry (the classic algorithm skips this guard
                       only because it assumes in-order loads).  With
                       fences in place a stale n survives at most a
                       couple of re-reads, so a persistent mismatch
                       means the chain itself is corrupt — possible
                       only under the no-fence ablation — and retrying
                       forever would livelock; past the bound, fall
                       through to the unguarded dereference. *)
                    if_ ((l "n" > i 0) ||| (l "tries" >= i 8))
                      [
                        let_ "v" (fldelem "self" "qval" (l "n"));
                        cas_fld "ok" "self" "qhead" (l "h") (l "n");
                        when_ (l "ok")
                          [
                            set "res" (l "v");
                            set "done_" (i 1);
                          ];
                      ]
                      [ set "tries" (l "tries" + i 1) ];
                  ];
              ];
          ];
        return_ (l "res");
      ]
  in
  {
    Ast.cname = "Msn";
    scalars = [ scalar "qhead" 1; scalar "qtail" 1 ];
    arrays = [ array "qval" pool; array "qnext" pool ];
    methods = [ enqueue; dequeue ];
  }
