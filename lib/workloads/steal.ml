(* server-steal: a work-stealing request scheduler under skewed load.

   Each worker owns a Chase-Lev deque and replays its own Traffic
   stream — the skewed spread gives worker 0 the bulk of the requests,
   so the light workers drain early and live on the steal path.  A
   worker pushes its whole (paced) stream, drains its own deque with
   [take], then steals round-robin from every other deque until all
   injection is done and every deque is observed empty.

   The hot fences are Wsq's put/take/steal fences (Fig. 2 of the
   paper), here under the many-thief contention a server scheduler
   actually sees rather than the two-thread litmus shape. *)

module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let q_name w = Printf.sprintf "q%d" w
let claims_name w = Printf.sprintf "sclaims%d" w
let gaps_name w = Printf.sprintf "sgaps%d" w
let scratch_name w = Printf.sprintf "sscr%d" w

(* Claim task [task] (an expression) and run its key-dependent service
   work.  The handler stores into the worker's private scratch lines,
   so the next put/take/steal fence under a traditional machine drains
   request-handler state a scoped fence ignores.  [unique]
   disambiguates the loop locals per call site. *)
let exec ~me ~unique ~service task =
  let open Dsl in
  [ incr_elem (claims_name me) task ]
  @ scratch_work ~unique ~arr:(scratch_name me)
      (((elem "taskkey" task % i 4) + i 1) * i service)

let worker_thread ~me ~workers ~base ~count ~n_tasks ~service =
  let victims =
    List.filter (fun v -> Stdlib.( <> ) v me) (List.init workers Fun.id)
  in
  let open Dsl in
  Privwork.warm_array ~name:(claims_name me) ~words:(Stdlib.( + ) n_tasks 1)
  @ [
    (* Inject: the paced request stream goes into my own deque. *)
    let_ "k" (i 0);
    while_
      (l "k" < i count)
      ([ let_ "gap" (elem (gaps_name me) (l "k")) ]
      @ delay ~unique:"pace" (l "gap")
      @ [
          call (q_name me) "put" [ i base + l "k" ];
          set "k" (l "k" + i 1);
        ]);
    fence (* pushes visible before the injection-done flag *);
    selem "done_inject" (i me) (i 1);
    (* Drain my own deque. *)
    let_ "t" (i 0);
    let_ "go" (i 1);
    while_
      (l "go")
      [
        callv "t" (q_name me) "take" [];
        if_ (l "t" > i 0)
          (exec ~me ~unique:"own" ~service (l "t"))
          [ set "go" (i 0) ];
      ];
    (* Steal until all injection is done and every deque is empty. *)
    let_ "leave" (i 0);
    let_ "s" (i 0);
    while_
      (not_ (l "leave"))
      (List.concat_map
         (fun v ->
           [
             callv "s" (q_name v) "steal" [];
             when_ (l "s" > i 0)
               (exec ~me ~unique:(Printf.sprintf "v%d" v) ~service (l "s")
               @ [ set "s" (i (-1)) (* progress this round *) ]);
           ])
         victims
      @ [
          when_
            (l "s" = i 0)
            ([
               let_ "chk" (i 1);
             ]
            @ List.map
                (fun v -> set "chk" (l "chk" &&& elem "done_inject" (i v)))
                (List.init workers Fun.id)
            @ [
                fence (* done flags strictly before the emptiness reads:
                         a push is fenced before its done flag, so an
                         empty deque seen after done=1 is truly drained *);
              ]
            @ List.map
                (fun v ->
                  set "chk"
                    (l "chk" &&& (fld (q_name v) "head" >= fld (q_name v) "tail")))
                (List.init workers Fun.id)
            @ [ when_ (l "chk") [ set "leave" (i 1) ] ]);
        ]);
  ]

let make ?(workers = 8) ?(requests = 64) ?(seed = 1) ?(mean_burst = 4)
    ?(mean_gap = 250) ?(service = 20) ~scope () =
  if workers < 2 then invalid_arg "Steal.make: need at least two workers";
  let trace =
    Traffic.make
      {
        Traffic.default with
        seed;
        clients = workers;
        requests = max requests workers;
        mean_burst;
        mean_gap;
        spread = Traffic.Skewed;
      }
  in
  let counts = Array.init workers (Traffic.client_requests trace) in
  let n_tasks = Traffic.total trace in
  (* Task ids 1 .. n_tasks; worker w injects [bases.(w), bases.(w) +
     counts.(w)).  taskkey.(id) carries the request key for
     service-time variation. *)
  let bases =
    Array.init workers (fun w ->
        1 + Array.fold_left ( + ) 0 (Array.sub counts 0 w))
  in
  let taskkey = Array.make (n_tasks + 1) 0 in
  Array.iteri
    (fun w base ->
      Array.iteri (fun k key -> taskkey.(base + k) <- key) trace.Traffic.keys.(w))
    bases;
  let cap = max 256 (Array.fold_left max 0 counts + 1) in
  let instances = List.init workers q_name in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Wsq_class.set_fence_vars ~instances)
  in
  let program_ast =
    {
      Ast.classes = [ Wsq_class.decl ~flavored:true ~fence ~cap () ];
      instances = List.map (fun iname -> { Ast.iname; cls = "Wsq" }) instances;
      globals =
        [
          Ast.G_array ("done_inject", workers, None);
          Ast.G_array ("taskkey", n_tasks + 1, Some taskkey);
        ]
        @ List.init workers (fun w ->
              Ast.G_array (gaps_name w, counts.(w), Some trace.Traffic.gaps.(w)))
        @ List.init workers (fun w ->
              Ast.G_array (claims_name w, n_tasks + 1, None))
        @ List.init workers (fun w -> Ast.G_array (scratch_name w, 64, None));
      threads =
        List.init workers (fun w ->
            worker_thread ~me:w ~workers ~base:bases.(w) ~count:counts.(w)
              ~n_tasks ~service);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let addr name = Program.address_of program name in
    let problem = ref None in
    let check cond msg = if not cond && !problem = None then problem := Some (msg ()) in
    for task = 1 to n_tasks do
      let total =
        List.fold_left
          (fun acc w -> acc + mem.(addr (claims_name w) + task))
          0
          (List.init workers Fun.id)
      in
      check (total = 1) (fun () ->
          Printf.sprintf "task %d executed %d times" task total)
    done;
    for w = 0 to workers - 1 do
      let head = mem.(addr (q_name w ^ ".head")) in
      let tail = mem.(addr (q_name w ^ ".tail")) in
      check (head = tail) (fun () ->
          Printf.sprintf "deque %d not empty: head %d tail %d" w head tail)
    done;
    match !problem with
    | Some msg -> Error msg
    | None -> Ok ()
  in
  {
    Workload.name = "server-steal";
    description = "work-stealing request scheduler: skewed streams, thieves on the cold cores";
    program;
    validate;
  }
