(** A benchmark workload: a compiled program plus a functional
    self-check over the final memory image.

    Every workload validates its own result (queue items claimed
    exactly once, spanning tree well formed, ...), so a memory-model
    or S-Fence bug shows up as a validation failure, not as a silent
    wrong number.

    This module also owns the typed construction surface the registry
    exposes: a {!params} record of the knobs every builder
    understands, and a {!Spec} record describing one registered
    workload (name, tags, documented size parameters, builder). *)

type t = {
  name : string;
  description : string;
  program : Fscope_isa.Program.t;
  validate : Fscope_machine.Machine.result -> (unit, string) result;
}

val run :
  ?obs:Fscope_obs.Trace.t -> Fscope_machine.Config.t -> t -> Fscope_machine.Machine.result
(** Run on the given machine configuration.  Raises [Failure] if the
    run times out.  [obs] is passed through to {!Fscope_machine.Machine.run}. *)

val run_validated :
  ?obs:Fscope_obs.Trace.t -> Fscope_machine.Config.t -> t -> Fscope_machine.Machine.result
(** [run] followed by [validate]; raises [Failure] on a validation
    error.  Use this in tests and in non-speculative experiment runs
    (in-window speculation is modelled without replay, so validation
    is only meaningful when it is off; see DESIGN.md). *)

val addr : t -> string -> int
(** Symbol address in the workload's program. *)

(** {2 Typed construction surface} *)

type params = {
  level : Privwork.level;
      (** Fig. 12 private-workload level for the harness benchmarks
          (dekker/wsq/msn/harris); ignored by the applications. *)
  scope : [ `Class | `Set ];
      (** scope flavour where the workload supports both; ignored by
          dekker/barnes/radiosity (whose scopes are fixed by the
          paper) and nested-scopes. *)
  attempts : int;  (** dekker try-lock attempts. *)
  rounds : int option;
      (** rounds for wsq / wsq-flavored / nested-scopes; [None] =
          the workload's own default. *)
  size : int option;
      (** the workload's principal size knob: per_producer (msn),
          keys_per_thread (harris), nodes (pst/ptc), bodies (barnes),
          patches (radiosity), requests (the server suite); [None] =
          the workload's default. *)
  threads : int option;
      (** total thread/core count where the workload supports it
          (server suite, wsq, msn, spin-barrier); [None] = default. *)
  seed : int;
      (** RNG seed for workloads with generated inputs (the server
          suite's traffic traces; pst/ptc keep their own [?seed]
          default unless driven explicitly). *)
}

val default_params : params
(** Level 3 of {!Privwork.fig12_levels}, class scope, 30 attempts,
    seed 1, default rounds / sizes / threads. *)

(** A first-class description of one registered workload. *)
module Spec : sig
  type param = {
    key : string;  (** which {!params} field drives it, e.g. ["size"] *)
    doc : string;  (** what the knob means for this workload *)
    default : string;  (** rendered default, e.g. ["16"] *)
  }

  type nonrec t = {
    name : string;
    description : string;  (** static — printing it builds nothing *)
    tags : string list;  (** e.g. ["paper"], ["server"], ["queue"] *)
    params : param list;  (** the size knobs this workload honours *)
    build : params -> t;
  }

  val sized : string -> doc:string -> default:string -> param
  val find : string -> t list -> t option
end

type spec = Spec.t

val build : spec -> params -> t
(** [build spec params] is [spec.Spec.build params]. *)
