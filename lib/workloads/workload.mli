(** A benchmark workload: a compiled program plus a functional
    self-check over the final memory image.

    Every workload validates its own result (queue items claimed
    exactly once, spanning tree well formed, ...), so a memory-model
    or S-Fence bug shows up as a validation failure, not as a silent
    wrong number. *)

type t = {
  name : string;
  description : string;
  program : Fscope_isa.Program.t;
  validate : Fscope_machine.Machine.result -> (unit, string) result;
}

val run :
  ?obs:Fscope_obs.Trace.t -> Fscope_machine.Config.t -> t -> Fscope_machine.Machine.result
(** Run on the given machine configuration.  Raises [Failure] if the
    run times out.  [obs] is passed through to {!Fscope_machine.Machine.run}. *)

val run_validated :
  ?obs:Fscope_obs.Trace.t -> Fscope_machine.Config.t -> t -> Fscope_machine.Machine.result
(** [run] followed by [validate]; raises [Failure] on a validation
    error.  Use this in tests and in non-speculative experiment runs
    (in-window speculation is modelled without replay, so validation
    is only meaningful when it is off; see DESIGN.md). *)

val addr : t -> string -> int
(** Symbol address in the workload's program. *)
