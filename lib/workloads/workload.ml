type t = {
  name : string;
  description : string;
  program : Fscope_isa.Program.t;
  validate : Fscope_machine.Machine.result -> (unit, string) result;
}

let run ?obs config t =
  let result = Fscope_machine.Machine.run ?obs config t.program in
  if result.Fscope_machine.Machine.timed_out then
    failwith (Printf.sprintf "workload %s: timed out" t.name);
  result

let run_validated ?obs config t =
  let result = run ?obs config t in
  match t.validate result with
  | Ok () -> result
  | Error msg -> failwith (Printf.sprintf "workload %s: validation failed: %s" t.name msg)

let addr t name = Fscope_isa.Program.address_of t.program name
