type t = {
  name : string;
  description : string;
  program : Fscope_isa.Program.t;
  validate : Fscope_machine.Machine.result -> (unit, string) result;
}

let run ?obs config t =
  let result = Fscope_machine.Machine.run ?obs config t.program in
  if result.Fscope_machine.Machine.timed_out then
    failwith (Printf.sprintf "workload %s: timed out" t.name);
  result

let run_validated ?obs config t =
  let result = run ?obs config t in
  match t.validate result with
  | Ok () -> result
  | Error msg -> failwith (Printf.sprintf "workload %s: validation failed: %s" t.name msg)

let addr t name = Fscope_isa.Program.address_of t.program name

(* ------------------------------------------------------------------ *)
(* Typed construction surface: one params record every builder
   understands, and a spec record describing a registered workload.    *)
(* ------------------------------------------------------------------ *)

type params = {
  level : Privwork.level;
  scope : [ `Class | `Set ];
  attempts : int;
  rounds : int option;
  size : int option;
  threads : int option;
  seed : int;
}

let default_params =
  {
    level = Privwork.fig12_levels.(2);
    scope = `Class;
    attempts = 30;
    rounds = None;
    size = None;
    threads = None;
    seed = 1;
  }

module Spec = struct
  type param = {
    key : string;
    doc : string;
    default : string;
  }

  type nonrec t = {
    name : string;
    description : string;
    tags : string list;
    params : param list;
    build : params -> t;
  }

  let sized key ~doc ~default = { key; doc; default }
  let find name specs = List.find_opt (fun s -> s.name = name) specs
end

type spec = Spec.t

let build (s : spec) params = s.Spec.build params
