(** A synthetic deep-nesting workload: a chain of [depth] classes,
    each wrapping a class-scoped fence around a call into the next,
    driven by two threads with cold private stores between calls.

    Built for the FSS-depth ablation ({!Fscope_experiments.Ablation}):
    one overflowing scope makes the innermost fence a full fence,
    whose stall drains everything the outer scoped fences would have
    skipped. *)

val make : ?depth:int -> ?rounds:int -> unit -> Workload.t
(** Defaults: 6-deep chain, 24 rounds per thread. *)
