module Rng = Fscope_util.Rng

type mode =
  | Open_loop
  | Closed_loop

type spread =
  | Even
  | Skewed

type spec = {
  seed : int;
  clients : int;
  requests : int;
  mean_burst : int;
  mean_gap : int;
  key_skew : int;
  key_space : int;
  spread : spread;
  mode : mode;
}

let default =
  {
    seed = 1;
    clients = 2;
    requests = 32;
    mean_burst = 4;
    mean_gap = 300;
    key_skew = 1;
    key_space = 64;
    spread = Even;
    mode = Open_loop;
  }

type t = {
  spec : spec;
  keys : int array array;
  gaps : int array array;
  bursts : int array array;
}

(* Requests per client.  [Skewed] follows a zipf-1 (harmonic) split so
   client 0 carries the most load — the work-stealing scheduler uses
   this to manufacture imbalance; every client keeps at least one
   request so each stream stays meaningful. *)
let client_counts spec =
  match spec.spread with
  | Even ->
    Array.init spec.clients (fun c ->
        (spec.requests / spec.clients)
        + if c < spec.requests mod spec.clients then 1 else 0)
  | Skewed ->
    let weight c = 1.0 /. float_of_int (c + 1) in
    let total_w =
      Array.fold_left ( +. ) 0.0 (Array.init spec.clients weight)
    in
    let counts =
      Array.init spec.clients (fun c ->
          max 1 (int_of_float (float_of_int spec.requests *. weight c /. total_w)))
    in
    (* Give any rounding remainder to the heaviest client so the total
       is exact. *)
    let assigned = Array.fold_left ( + ) 0 counts in
    counts.(0) <- counts.(0) + max 0 (spec.requests - assigned);
    counts

(* Zipf-ish skewed key draw: u^(skew+1) concentrates mass near key 0;
   skew 0 is uniform. *)
let draw_key rng spec =
  let u = Rng.float rng 1.0 in
  let rec pow acc n = if n <= 0 then acc else pow (acc *. u) (n - 1) in
  let v = int_of_float (float_of_int spec.key_space *. pow u spec.key_skew) in
  min (spec.key_space - 1) (max 0 v)

let make spec =
  if spec.clients < 1 then invalid_arg "Traffic.make: need at least one client";
  if spec.requests < 0 then invalid_arg "Traffic.make: requests must be >= 0";
  (* An even spread degrades gracefully to empty streams (an idle
     server is a legitimate trace); the skewed split's invariant is
     that every client carries load, so it keeps the floor. *)
  if spec.spread = Skewed && spec.requests < spec.clients then
    invalid_arg "Traffic.make: skewed spread needs at least one request per client";
  if spec.mean_burst < 1 then invalid_arg "Traffic.make: mean_burst must be >= 1";
  if spec.key_space < 1 then invalid_arg "Traffic.make: key_space must be >= 1";
  let master = Rng.create spec.seed in
  let counts = client_counts spec in
  let per_client = Array.map (fun n -> (n, Rng.split master)) counts in
  let keys = Array.make spec.clients [||] in
  let gaps = Array.make spec.clients [||] in
  let bursts = Array.make spec.clients [||] in
  Array.iteri
    (fun c (n, rng) ->
      let ks = Array.init n (fun _ -> draw_key rng spec) in
      let gs = Array.make n 0 in
      let bs = ref [] in
      let i = ref 0 in
      while !i < n do
        let b = min (n - !i) (Rng.int_in rng 1 ((2 * spec.mean_burst) - 1)) in
        bs := b :: !bs;
        (match spec.mode with
        | Open_loop when spec.mean_gap > 0 ->
          gs.(!i) <- Rng.int_in rng ((spec.mean_gap + 1) / 2) (spec.mean_gap * 3 / 2)
        | Open_loop | Closed_loop -> ());
        i := !i + b
      done;
      keys.(c) <- ks;
      gaps.(c) <- gs;
      bursts.(c) <- Array.of_list (List.rev !bs))
    per_client;
  { spec; keys; gaps; bursts }

let total t = Array.fold_left (fun acc ks -> acc + Array.length ks) 0 t.keys
let client_requests t c = Array.length t.keys.(c)

let digest t =
  let h = ref 0x9E3779B9 in
  let mix v = h := ((!h * 31) + v) land max_int in
  Array.iter (fun ks -> Array.iter mix ks) t.keys;
  Array.iter (fun gs -> Array.iter mix gs) t.gaps;
  Array.iter (fun bs -> Array.iter mix bs) t.bursts;
  !h
