type params = Workload.params = {
  level : Privwork.level;
  scope : [ `Class | `Set ];
  attempts : int;
  rounds : int option;
  size : int option;
  threads : int option;
  seed : int;
}

let default_params = Workload.default_params

type spec = Workload.spec

open Workload.Spec

let size_param ~doc ~default = sized "size" ~doc ~default
let rounds_param ~doc ~default = sized "rounds" ~doc ~default

let all : spec list =
  [
    {
      name = "dekker";
      description = "Dekker try-lock, set-scoped fences over {flag0,flag1,counter}";
      tags = [ "paper"; "lock" ];
      params = [ sized "attempts" ~doc:"try-lock attempts per thread" ~default:"30" ];
      build = (fun p -> Dekker.make ~level:p.level ~attempts:p.attempts);
    };
    {
      name = "wsq";
      description = "Chase-Lev work-stealing deque under the Fig. 12 harness";
      tags = [ "paper"; "deque" ];
      params = [ rounds_param ~doc:"owner put/take rounds" ~default:"12" ];
      build = (fun p -> Wsq.make ?threads:p.threads ?rounds:p.rounds ~scope:p.scope ~level:p.level ());
    };
    {
      name = "wsq-flavored";
      description = "wsq with directional (store-store/store-load) fence flavours";
      tags = [ "paper"; "deque"; "flavored" ];
      params = [ rounds_param ~doc:"owner put/take rounds" ~default:"12" ];
      build =
        (fun p ->
          Wsq.make ?threads:p.threads ?rounds:p.rounds ~flavored:true ~scope:p.scope
            ~level:p.level ());
    };
    {
      name = "msn";
      description = "Michael-Scott non-blocking queue under the Fig. 12 harness";
      tags = [ "paper"; "queue" ];
      params = [ size_param ~doc:"values enqueued per producer" ~default:"16" ];
      build =
        (fun p ->
          Msn.make ?threads:p.threads ?per_producer:p.size ~scope:p.scope ~level:p.level ());
    };
    {
      name = "harris";
      description = "Harris lock-free sorted-list set under the Fig. 12 harness";
      tags = [ "paper"; "list" ];
      params = [ size_param ~doc:"keys inserted per thread" ~default:"2" ];
      build =
        (fun p -> Harris.make ?keys_per_thread:p.size ~scope:p.scope ~level:p.level ());
    };
    {
      name = "pst";
      description = "parallel spanning tree over work-stealing deques (Fig. 3)";
      tags = [ "paper"; "app"; "graph" ];
      params = [ size_param ~doc:"graph nodes" ~default:"1024" ];
      build = (fun p -> Pst.make ?nodes:p.size ~scope:p.scope ());
    };
    {
      name = "ptc";
      description = "parallel transitive closure over work-stealing deques";
      tags = [ "paper"; "app"; "graph" ];
      params = [ size_param ~doc:"graph nodes" ~default:"320" ];
      build = (fun p -> Ptc.make ?nodes:p.size ~scope:p.scope ());
    };
    {
      name = "barnes";
      description = "Barnes-Hut-style force kernel, SC enforced by set-scoped fences";
      tags = [ "paper"; "app" ];
      params = [ size_param ~doc:"bodies" ~default:"256" ];
      build = (fun p -> Barnes.make ?bodies:p.size ());
    };
    {
      name = "radiosity";
      description = "radiosity-style patch interactions, SC enforced by set-scoped fences";
      tags = [ "paper"; "app" ];
      params = [ size_param ~doc:"patches" ~default:"192" ];
      build = (fun p -> Radiosity.make ?patches:p.size ());
    };
    {
      name = "nested-scopes";
      description = "6-deep class-scope nesting chain";
      tags = [ "ablation" ];
      params = [ rounds_param ~doc:"chain rounds" ~default:"16" ];
      build = (fun p -> Nested.make ?rounds:p.rounds ());
    };
    {
      name = "spin-barrier";
      description = "master/worker round barrier; workers busy-spin on the round stamp";
      tags = [ "spin"; "barrier" ];
      params =
        [
          size_param ~doc:"threads (master + workers)" ~default:"4";
          rounds_param ~doc:"barrier rounds" ~default:"12";
        ];
      build =
        (fun p ->
          let threads = match p.threads with Some _ as t -> t | None -> p.size in
          Spin_barrier.make ?threads ?rounds:p.rounds ());
    };
    {
      name = "server-mpmc";
      description = "MPMC request-dispatch queue: bursty producers feeding worker cores";
      tags = [ "server"; "queue"; "traffic" ];
      params =
        [
          size_param ~doc:"requests per producer" ~default:"16";
          sized "threads" ~doc:"total cores (1/4 producers, rest workers)" ~default:"8";
          sized "seed" ~doc:"traffic trace seed" ~default:"1";
        ];
      build =
        (fun p ->
          Mpmc.make ?threads:p.threads ?per_producer:p.size ~seed:p.seed ~scope:p.scope ());
    };
    {
      name = "server-cache";
      description = "concurrent hash-map cache with epoch-based reclamation under skewed gets/puts";
      tags = [ "server"; "cache"; "epoch"; "traffic" ];
      params =
        [
          size_param ~doc:"requests per thread" ~default:"24";
          sized "threads" ~doc:"cores" ~default:"8";
          sized "seed" ~doc:"traffic trace seed" ~default:"1";
        ];
      build =
        (fun p ->
          Cache_server.make ?threads:p.threads ?per_thread:p.size ~seed:p.seed
            ~scope:p.scope ());
    };
    {
      name = "server-steal";
      description = "work-stealing scheduler: skewed bursty arrivals over per-core deques";
      tags = [ "server"; "deque"; "traffic" ];
      params =
        [
          size_param ~doc:"total requests" ~default:"64";
          sized "threads" ~doc:"worker cores (one deque each)" ~default:"8";
          sized "seed" ~doc:"traffic trace seed" ~default:"1";
        ];
      build =
        (fun p ->
          Steal.make ?workers:p.threads ?requests:p.size ~seed:p.seed ~scope:p.scope ());
    };
  ]

let names = List.map (fun (s : spec) -> s.name) all
let find name = Workload.Spec.find name all

(* ------------------------------------------------------------------ *)
(* "Did you mean": nearest registry entries by edit distance.          *)
(* ------------------------------------------------------------------ *)

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub > 0 && go 0

let suggest ?(max = 3) name =
  let scored =
    List.map (fun n -> (edit_distance name n, n)) names
    |> List.filter (fun (d, n) ->
           (* Close misses and substring matches ("cache" for
              "server-cache"), not the whole registry. *)
           d <= Stdlib.max 1 (String.length name / 3)
           || (String.length name >= 3 && contains ~sub:name n))
    |> List.sort compare
  in
  List.filteri (fun i _ -> i < max) (List.map snd scored)

let unknown_message name =
  match suggest name with
  | [] ->
    Printf.sprintf "unknown workload '%s' (run 'fscope list' for the registry)" name
  | near -> Printf.sprintf "unknown workload '%s' — did you mean: %s?" name
              (String.concat ", " near)

