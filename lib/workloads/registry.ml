type params = {
  level : Privwork.level;
  scope : [ `Class | `Set ];
  attempts : int;
  rounds : int option;
  size : int option;
}

let default_params =
  {
    level = Privwork.fig12_levels.(2);
    scope = `Class;
    attempts = 30;
    rounds = None;
    size = None;
  }

type spec = {
  name : string;
  description : string;
  make : params -> Workload.t;
}

let all =
  [
    {
      name = "dekker";
      description = "Dekker try-lock, set-scoped fences over {flag0,flag1,counter}";
      make = (fun p -> Dekker.make ~level:p.level ~attempts:p.attempts);
    };
    {
      name = "wsq";
      description = "Chase-Lev work-stealing deque under the Fig. 12 harness";
      make = (fun p -> Wsq.make ?rounds:p.rounds ~scope:p.scope ~level:p.level ());
    };
    {
      name = "wsq-flavored";
      description = "wsq with directional (store-store/store-load) fence flavours";
      make =
        (fun p ->
          Wsq.make ?rounds:p.rounds ~flavored:true ~scope:p.scope ~level:p.level ());
    };
    {
      name = "msn";
      description = "Michael-Scott non-blocking queue under the Fig. 12 harness";
      make = (fun p -> Msn.make ?per_producer:p.size ~scope:p.scope ~level:p.level ());
    };
    {
      name = "harris";
      description = "Harris lock-free sorted-list set under the Fig. 12 harness";
      make = (fun p -> Harris.make ?keys_per_thread:p.size ~scope:p.scope ~level:p.level ());
    };
    {
      name = "pst";
      description = "parallel spanning tree over work-stealing deques (Fig. 3)";
      make = (fun p -> Pst.make ?nodes:p.size ~scope:p.scope ());
    };
    {
      name = "ptc";
      description = "parallel transitive closure over work-stealing deques";
      make = (fun p -> Ptc.make ?nodes:p.size ~scope:p.scope ());
    };
    {
      name = "barnes";
      description = "Barnes-Hut-style force kernel, SC enforced by set-scoped fences";
      make = (fun p -> Barnes.make ?bodies:p.size ());
    };
    {
      name = "radiosity";
      description = "radiosity-style patch interactions, SC enforced by set-scoped fences";
      make = (fun p -> Radiosity.make ?patches:p.size ());
    };
    {
      name = "nested-scopes";
      description = "6-deep class-scope nesting chain";
      make = (fun p -> Nested.make ?rounds:p.rounds ());
    };
    {
      name = "spin-barrier";
      description = "master/worker round barrier; workers busy-spin on the round stamp";
      make = (fun p -> Spin_barrier.make ?threads:p.size ?rounds:p.rounds ());
    };
  ]

let names = List.map (fun s -> s.name) all
let find name = List.find_opt (fun s -> s.name = name) all

let get name =
  match find name with
  | Some s -> s
  | None ->
    failwith
      (Printf.sprintf "unknown workload %s (try: %s)" name (String.concat ", " names))

let build ?(params = default_params) name = (get name).make params
