module Ast = Fscope_slang.Ast

let make ?(depth = 6) ?(rounds = 24) () =
  let open Dsl in
  (* Each thread owns its own chain of instances (t0: a0..a5, t1:
     b0..b5) so the in-scope stores are fast private hits; the cold
     private store between calls is the out-of-scope work every one of
     the [depth] nested fences can skip — when the FSS is deep enough
     to track them. *)
  let inst t k = Printf.sprintf "%c%d" (Char.chr (Stdlib.( + ) 97 t)) k in
  (* Each class Ct_k calls the thread-specific instance of Ct_(k+1):
     [depth] truly nested scopes per outer call — the FSS pressure
     the ablation sweep is about. *)
  let cls_chain t k =
    let inner_call =
      if Stdlib.( < ) k (Stdlib.( - ) depth 1) then
        [ call (inst t (Stdlib.( + ) k 1)) "m" [] ]
      else []
    in
    {
      Ast.cname = Printf.sprintf "C%d_%d" t k;
      scalars = [ scalar "x" 0 ];
      arrays = [];
      methods =
        [
          meth "m" []
            ([ sfld "self" "x" (fld "self" "x" + i 1) ]
            @ inner_call
            @ [ fence_class; sfld "self" "x" (fld "self" "x" + i 1) ]);
        ];
    }
  in
  let thread me =
    Privwork.warmup ~thread:me ~level:(Privwork.cold ~arith:8 ~stores:1)
    @ [
        let_ "r" (i 0);
        while_
          (l "r" < i rounds)
          ([ call (inst me 0) "m" [] ]
          @ Privwork.block ~thread:me
              ~level:(Privwork.cold ~arith:8 ~stores:1)
              ~unique:"w" ()
          @ [ set "r" (l "r" + i 1) ]);
      ]
  in
  let program_ast =
    {
      Ast.classes = List.concat_map (fun t -> List.init depth (cls_chain t)) [ 0; 1 ];
      instances =
        List.concat_map
          (fun t ->
            List.init depth (fun k ->
                { Ast.iname = inst t k; cls = Printf.sprintf "C%d_%d" t k }))
          [ 0; 1 ];
      globals = Privwork.globals ~threads:2 ();
      threads = [ thread 0; thread 1 ];
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Fscope_machine.Machine.result) =
    let x0 =
      result.Fscope_machine.Machine.mem.(Fscope_isa.Program.address_of program "a0.x")
    in
    let expected = Stdlib.( * ) 2 rounds in
    if Stdlib.( <> ) x0 expected then
      Error (Printf.sprintf "a0.x = %d, expected %d" x0 expected)
    else Ok ()
  in
  {
    Workload.name = "nested-scopes";
    description = Printf.sprintf "%d-deep class-scope nesting chain" depth;
    program;
    validate;
  }
