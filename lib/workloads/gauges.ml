(* Live server-suite gauges, recovered from the store-buffer drain
   stream the simulator already traces.

   Each server workload's data-structure occupancy can be read off the
   same [Sb_drain] markers the latency extraction uses: a store into a
   known address region with a value only one protocol step can
   produce.  The samplers below classify those drains, maintain the
   implied occupancy as the (deterministically ordered) event stream
   is replayed, and observe every transition into log2-bucket
   histograms in the metrics registry:

   - server-mpmc: queue depth — the enqueue's node-value store minus
     the claiming worker's first claims increment (exactly the
     inject/retire markers of {!Mpmc.latency_markers});
   - server-steal: per-worker deque occupancy — a put is the task
     store into [q<w>.buf] (task ids are globally unique, so the value
     names the deque the task was injected into), a removal is the
     first non-zero claims increment for that task, charged to the
     deque that owned it;
   - server-cache: per-thread limbo-ring length — a retirement is the
     node store into [climbo<t>], a reclamation the node store into
     [cfree<t>] (the free array's initial contents are memory-image
     data, not runtime stores, so every drain there is a
     reclamation).

   Sampling is a post-hoc fold over [Trace.events], never live at the
   emission site, so it inherits the trace's deterministic
   cycle/core/emission order — the histograms are bit-identical across
   --jobs and --shard-domains, like everything else in a row.

   All address arithmetic derives from the program image's symbol
   table alone (region = gap to the next symbol), so a sampler works
   for any parameterisation of its workload. *)

module Program = Fscope_isa.Program
module Obs = Fscope_obs

type t = {
  label : string;
      (* short metric label for table rows, e.g. "queue_depth" *)
  hist : string;
      (* registry name of the aggregate histogram the fold fills *)
  keep : Obs.Event.t -> bool;
      (* trace keep-filter retaining exactly the marker drains *)
  fold : Obs.Metrics.t -> Obs.Event.timed list -> unit;
      (* replay retained events into gauge histograms *)
}

(* Symbol region: base address and length, the length being the gap to
   the next symbol (or the end of memory).  The layout allocator pads
   every symbol to a cache-line boundary, so a region can exceed the
   true array by up to line_words - 1 padding words; that slack is
   harmless here because no store ever targets padding, and every
   classifier below requires both an in-region address and a
   protocol-specific value. *)
let region program name =
  let base = Program.address_of program name in
  let next =
    List.fold_left
      (fun acc (_, a) -> if a > base && a < acc then a else acc)
      program.Program.mem_words program.Program.symbols
  in
  (base, next - base)

let fold_drains events f =
  List.iter
    (fun (te : Obs.Event.timed) ->
      match te.Obs.Event.event with
      | Obs.Event.Sb_drain { addr; value } -> f ~addr ~value
      | _ -> ())
    events

(* ------------------------------------------------------------------ *)
(* server-mpmc: queue depth                                            *)

let mpmc program =
  let threads = Program.thread_count program in
  let requests = snd (region program "claims0") - 2 in
  let inject_slot, retire_slot = Mpmc.latency_markers ~requests ~threads program in
  let keep (ev : Obs.Event.t) =
    match ev with
    | Obs.Event.Sb_drain { addr; value } ->
      inject_slot addr value <> None || retire_slot addr value <> None
    | _ -> false
  in
  let fold metrics events =
    let h = Obs.Metrics.histogram metrics "gauge/server-mpmc/queue_depth" in
    let injected = Array.make requests false in
    let retired = Array.make requests false in
    let depth = ref 0 in
    fold_drains events (fun ~addr ~value ->
        (match inject_slot addr value with
        | Some s when not injected.(s) ->
          injected.(s) <- true;
          incr depth;
          Obs.Metrics.observe h !depth
        | _ -> ());
        match retire_slot addr value with
        | Some s when injected.(s) && not retired.(s) ->
          retired.(s) <- true;
          decr depth;
          Obs.Metrics.observe h !depth
        | _ -> ())
  in
  { label = "queue_depth"; hist = "gauge/server-mpmc/queue_depth"; keep; fold }

(* ------------------------------------------------------------------ *)
(* server-steal: per-worker deque occupancy                            *)

let steal program =
  let workers = Program.thread_count program in
  let n_tasks = snd (region program "taskkey") - 1 in
  let bufs = Array.init workers (fun w -> region program (Printf.sprintf "q%d.buf" w)) in
  let claims = Array.init workers (fun w -> region program (Printf.sprintf "sclaims%d" w)) in
  (* The put's buffer store names the deque by address and the task by
     value; the claim drain only names the task.  A put always drains
     before the corresponding claim (the consumer can't see the task
     until the owner's FIFO store buffer drained it), so recording
     ownership at put time resolves every later claim. *)
  let put_task addr value =
    if value >= 1 && value <= n_tasks then
      let rec go w =
        if w >= workers then None
        else
          let base, len = bufs.(w) in
          if addr >= base && addr < base + len then Some (w, value) else go (w + 1)
      in
      go 0
    else None
  in
  let claim_task addr value =
    if value = 0 then None
    else
      Array.fold_left
        (fun acc (base, len) ->
          match acc with
          | Some _ -> acc
          | None ->
            let t = addr - base in
            if t >= 1 && t < len && t <= n_tasks then Some t else None)
        None claims
  in
  let keep (ev : Obs.Event.t) =
    match ev with
    | Obs.Event.Sb_drain { addr; value } ->
      put_task addr value <> None || claim_task addr value <> None
    | _ -> false
  in
  let fold metrics events =
    let all = Obs.Metrics.histogram metrics "gauge/server-steal/deque_occupancy" in
    let per =
      Array.init workers (fun w ->
          Obs.Metrics.histogram metrics
            (Printf.sprintf "gauge/server-steal/deque_occupancy/w%d" w))
    in
    let owner = Array.make (n_tasks + 1) (-1) in
    let removed = Array.make (n_tasks + 1) false in
    let occ = Array.make workers 0 in
    let observe w =
      Obs.Metrics.observe all occ.(w);
      Obs.Metrics.observe per.(w) occ.(w)
    in
    fold_drains events (fun ~addr ~value ->
        (match put_task addr value with
        | Some (w, task) when owner.(task) < 0 ->
          owner.(task) <- w;
          occ.(w) <- occ.(w) + 1;
          observe w
        | _ -> ());
        match claim_task addr value with
        | Some task when owner.(task) >= 0 && not removed.(task) ->
          removed.(task) <- true;
          let w = owner.(task) in
          occ.(w) <- occ.(w) - 1;
          observe w
        | _ -> ())
  in
  {
    label = "deque_occ";
    hist = "gauge/server-steal/deque_occupancy";
    keep;
    fold;
  }

(* ------------------------------------------------------------------ *)
(* server-cache: per-thread limbo-ring length                          *)

let cache program =
  let threads = Program.thread_count program in
  let limbo = Array.init threads (fun t -> region program (Printf.sprintf "climbo%d" t)) in
  let free = Array.init threads (fun t -> region program (Printf.sprintf "cfree%d" t)) in
  let owner_of regions addr value =
    if value <= 0 then None
    else
      let rec go t =
        if t >= threads then None
        else
          let base, len = regions.(t) in
          if addr >= base && addr < base + len then Some t else go (t + 1)
      in
      go 0
  in
  let keep (ev : Obs.Event.t) =
    match ev with
    | Obs.Event.Sb_drain { addr; value } ->
      owner_of limbo addr value <> None || owner_of free addr value <> None
    | _ -> false
  in
  let fold metrics events =
    let all = Obs.Metrics.histogram metrics "gauge/server-cache/limbo_len" in
    let per =
      Array.init threads (fun t ->
          Obs.Metrics.histogram metrics
            (Printf.sprintf "gauge/server-cache/limbo_len/t%d" t))
    in
    let len = Array.make threads 0 in
    let observe t =
      Obs.Metrics.observe all len.(t);
      Obs.Metrics.observe per.(t) len.(t)
    in
    fold_drains events (fun ~addr ~value ->
        match owner_of limbo addr value with
        | Some t ->
          len.(t) <- len.(t) + 1;
          observe t
        | None -> (
          match owner_of free addr value with
          | Some t when len.(t) > 0 ->
            len.(t) <- len.(t) - 1;
            observe t
          | _ -> ()))
  in
  { label = "limbo_len"; hist = "gauge/server-cache/limbo_len"; keep; fold }

(* ------------------------------------------------------------------ *)

let for_workload ~name program =
  match name with
  | "server-mpmc" -> Some (mpmc program)
  | "server-steal" -> Some (steal program)
  | "server-cache" -> Some (cache program)
  | _ -> None

let gauge_names metrics =
  List.filter_map
    (fun (name, s) ->
      match s with
      | Obs.Metrics.Histogram_v _
        when String.length name > 6 && String.sub name 0 6 = "gauge/" ->
        Some name
      | _ -> None)
    (Obs.Metrics.snapshot metrics)
