(** Deterministic bursty-arrival trace generator for the high-traffic
    server workload suite.

    A trace is a pure function of its {!spec} (seeded splitmix64, one
    split stream per client), so every server workload — and therefore
    every BENCH_server artefact — reproduces bit-for-bit.  Workloads
    bake the per-client arrays into their compiled programs as
    initialized globals: [keys] drive request payloads / service-time
    variation, [gaps] are open-loop inter-burst delay-loop iterations,
    and [bursts] give the burst structure for schedulers that inject a
    burst at a time. *)

type mode =
  | Open_loop  (** arrivals at trace-determined times: a delay loop of
                   [gaps.(c).(i)] iterations precedes request [i] *)
  | Closed_loop
      (** clients re-inject as soon as the system absorbs the previous
          burst; all gaps are generated as 0 and pacing comes from the
          workload's own completion feedback *)

type spread =
  | Even  (** requests split evenly across clients *)
  | Skewed
      (** zipf-1 split — client 0 carries the most load (used by the
          work-stealing scheduler to manufacture imbalance) *)

type spec = {
  seed : int;
  clients : int;  (** independent arrival streams *)
  requests : int;  (** total, split per {!spread} *)
  mean_burst : int;  (** burst length is uniform on [1, 2*mean_burst-1] *)
  mean_gap : int;
      (** open-loop delay between bursts, uniform on
          [mean_gap/2, 3*mean_gap/2] delay-loop iterations *)
  key_skew : int;  (** 0 = uniform keys; k concentrates on low keys as u^(k+1) *)
  key_space : int;  (** keys are drawn from [0, key_space) *)
  spread : spread;
  mode : mode;
}

val default : spec
(** seed 1, 2 clients, 32 requests, mean burst 4, mean gap 300,
    key skew 1 over 64 keys, even spread, open loop. *)

type t = {
  spec : spec;
  keys : int array array;  (** [keys.(c).(i)]: request i of client c *)
  gaps : int array array;
      (** delay-loop iterations before request i; 0 within a burst *)
  bursts : int array array;  (** burst lengths per client; sums to the client's requests *)
}

val make : spec -> t
(** Deterministic: equal specs give bit-equal traces.  An even spread
    accepts any [requests >= 0] (zero requests yields empty streams);
    a skewed spread needs [requests >= clients] so every client
    carries load.  Raises [Invalid_argument] on empty clients /
    negative requests / mean_burst < 1 / key_space < 1. *)

val total : t -> int
(** Total requests across all clients. *)

val client_requests : t -> int -> int

val digest : t -> int
(** Order-sensitive hash over all three arrays — a cheap equality
    witness for determinism tests. *)
