open Fscope_slang.Ast

let i n = Int n
let l name = Local name
let tid = Tid
let g name = Read (Global name)
let elem arr idx = Read (Elem (arr, idx))
let fld instance field = Read (Field (instance, field))
let fldelem instance field idx = Read (Field_elem (instance, field, idx))

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Rem, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( &&& ) a b = Binop (Band, a, b)
let ( ||| ) a b = Binop (Bor, a, b)
let ( << ) a b = Binop (Shl, a, b)
let ( >> ) a b = Binop (Shr, a, b)
let bxor a b = Binop (Bxor, a, b)
let not_ e = Not e

let let_ name e = Let (name, e)
let set name e = Assign (name, e)
let sg name e = Store (Global name, e)
let selem arr idx v = Store (Elem (arr, idx), v)
let sfld instance field v = Store (Field (instance, field), v)
let sfldelem instance field idx v = Store (Field_elem (instance, field, idx), v)
let if_ cond then_b else_b = If (cond, then_b, else_b)
let when_ cond then_b = If (cond, then_b, [])
let while_ cond body = While (cond, body)
let fence = Fence (F_full, FF_full)
let fence_class = Fence (F_class, FF_full)
let fence_set vars = Fence (F_set vars, FF_full)

let flavored flavor stmt =
  match stmt with
  | Fence (spec, _) -> Fence (spec, flavor)
  | _ -> invalid_arg "Dsl.flavored: not a fence"

let fence_ss stmt = flavored FF_store_store stmt
let fence_ll stmt = flavored FF_load_load stmt
let fence_sl stmt = flavored FF_store_load stmt

let cas_g dst global expected desired = Cas { dst; lv = Global global; expected; desired }

let cas_elem dst arr idx expected desired =
  Cas { dst; lv = Elem (arr, idx); expected; desired }

let cas_fld dst instance field expected desired =
  Cas { dst; lv = Field (instance, field); expected; desired }

let cas_fldelem dst instance field idx expected desired =
  Cas { dst; lv = Field_elem (instance, field, idx); expected; desired }

let call instance meth args = Call_stmt { instance = Some instance; meth; args }
let callv dst instance meth args = Call_assign (dst, { instance = Some instance; meth; args })
let return_ e = Return (Some e)
let return_unit = Return None

(* A deterministic all-register countdown of [n] iterations ([n] may
   be an expression, e.g. a baked per-request gap).  The loop body
   touches no memory, so it can never arm the spin fast-forward. *)
let delay ~unique n =
  let d = unique ^ "_d" in
  [ let_ d n; while_ (l d > i 0) [ set d (l d - i 1) ] ]

(* Atomic fetch-and-add on a scalar global via a CAS retry loop; the
   server workloads use it for shared completion / termination
   counters. *)
let fetch_add_g ~unique name by =
  let ok = unique ^ "_ok" and cur = unique ^ "_c" in
  [
    let_ ok (i 0);
    while_
      (not_ (l ok))
      [ let_ cur (g name); cas_g ok name (l cur) (l cur + by) ];
  ]

let incr_elem arr idx = selem arr idx (elem arr idx + i 1)

(* Like [delay], but each iteration stores into the thread-private
   array [arr] (size >= 64): the request-handler work of the server
   workloads.  The dirty private lines are what a traditional fence
   must drain and a scoped fence may ignore — the paper's Fig. 12
   effect, produced by the workload itself rather than the harness. *)
let scratch_work ~unique ~arr n =
  let d = unique ^ "_w" in
  [
    let_ d n;
    while_ (l d > i 0) [ selem arr (l d % i 64) (l d); set d (l d - i 1) ];
  ]

let meth mname params ?(returns = false) body = { mname; params; returns; body }
let scalar name init = (name, init)
let array name size = (name, size, None)
let array_init name values = (name, Array.length values, Some values)
