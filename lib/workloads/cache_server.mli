(** server-cache: a concurrent hash-map cache with epoch-based
    reclamation, every core serving its own bursty {!Traffic} stream of
    GETs and PUTs.

    The hot fences are the EBR announce (full), the PUT publish
    (store-store) and the GET bucket-to-contents ordering (load-load),
    all inside {!Cache_class} and scoped per [scope]; reclamation
    bookkeeping is thread-private, which is what makes the set scope
    precise. *)

val make :
  ?threads:int ->
  ?per_thread:int ->
  ?seed:int ->
  ?mean_burst:int ->
  ?mean_gap:int ->
  ?key_skew:int ->
  ?key_space:int ->
  ?buckets:int ->
  ?service:int ->
  scope:[ `Class | `Set ] ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 16 requests each, seed 1, 64 keys (skew 1)
    over 32 buckets, mean gap 200.  Validation is schedule-independent:
    exactly-once node accounting across buckets / free stacks / limbo
    rings, bucket-hash and value consistency, and a full op count. *)

val hash_mirror : buckets:int -> int -> int
(** The OCaml mirror of the slang-side bucket hash (exposed for
    tests). *)
