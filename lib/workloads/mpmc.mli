(** server-mpmc: an MPMC request-dispatch queue under bursty traffic.

    [max 1 (threads/4)] producers replay a deterministic {!Traffic}
    arrival trace into a shared Michael-Scott queue; the remaining
    cores are workers that dequeue, claim each request exactly once,
    and serve it with key-dependent register work.  The hot fences are
    the publish and dispatch paths inside {!Msn_class}, scoped per
    [scope]. *)

val make :
  ?threads:int ->
  ?per_producer:int ->
  ?seed:int ->
  ?mean_burst:int ->
  ?mean_gap:int ->
  ?key_skew:int ->
  ?mode:Traffic.mode ->
  ?window:int ->
  ?service:int ->
  scope:[ `Class | `Set ] ->
  unit ->
  Workload.t
(** Defaults: 8 threads (2 producers, 6 workers), 16 requests per
    producer, seed 1, mean burst 4, mean gap 300, key skew 1, open
    loop.  [window] bounds in-flight requests in closed-loop mode;
    [service] scales the per-request work ((key mod 4 + 1) * service
    delay iterations).  Validation checks exactly-once service of
    every request, an empty queue, and full injected/retired counts —
    all schedule-independent. *)

val requests : ?threads:int -> ?per_producer:int -> unit -> int
(** Total requests the corresponding [make] will inject — used by the
    server experiment to report requests per kilocycle. *)

val latency_markers :
  requests:int ->
  threads:int ->
  Fscope_isa.Program.t ->
  (int -> int -> int option) * (int -> int -> int option)
(** [(inject_slot, retire_slot)] marker classifiers: each maps a
    drained store's [(addr, value)] to the request slot it marks, or
    [None].  The building blocks of {!keep_latency} and
    {!latency_of_events}, also reused by {!Gauges} to derive queue
    depth from the same drains. *)

val keep_latency :
  requests:int -> threads:int -> Fscope_isa.Program.t -> Fscope_obs.Event.t -> bool
(** Trace keep-filter retaining exactly the store-buffer drains that
    mark a request's injection (the enqueue's [qval] node store) or
    retirement (a worker's [claims] increment).  Pass to
    {!Fscope_obs.Trace.create} so a long run keeps every marker in a
    small ring. *)

val latency_of_events :
  requests:int ->
  threads:int ->
  Fscope_isa.Program.t ->
  Fscope_obs.Event.timed list ->
  int list
(** Per-request inject-to-retire latencies (simulated cycles),
    ascending.  A request appears once both its markers were retained;
    with an undropped {!keep_latency}-filtered trace that is all of
    them. *)

val latency_of_events_windowed :
  requests:int ->
  threads:int ->
  windows:(int * int) list ->
  Fscope_isa.Program.t ->
  Fscope_obs.Event.timed list ->
  int list
(** {!latency_of_events} restricted to request pairs whose inject and
    retire cycles both fall inside ONE of the inclusive [windows] — a
    sampled run's measured detailed ranges
    ([Machine.result.sample_windows]).  A pair spanning a functional
    fast-forward gap would count unsimulated cycles, so it is dropped
    rather than estimated. *)
