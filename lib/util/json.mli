(** A minimal JSON reader/writer.

    Covers the full JSON grammar with one deliberate refinement:
    numbers keep their textual class, so an integer literal parses to
    {!Int} and anything with a fraction or exponent to {!Float}.
    Because of that, [parse (render v) = v] holds structurally for
    every value this module produces — the property the trend differ's
    artefact round-trip tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} / {!of_file} with an offset-tagged message. *)

val parse : string -> t
(** Parse one JSON value; trailing non-whitespace content is an
    error. *)

val of_file : string -> t
(** [parse] the entire contents of a file. *)

val render : t -> string
(** Compact (single-line) rendering. *)

val render_pretty : t -> string
(** Two-space-indented multi-line rendering, for artefacts meant to be
    read or diffed by humans (plain checkpoints).  Same grammar as
    {!render}: [parse] round-trips both identically. *)

val member : string -> t -> t option
(** Field of an object; [None] on a missing key or a non-object. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_bool : t -> bool option
val to_int : t -> int option

val to_float : t -> float option
(** Numeric value as a float; accepts both {!Int} and {!Float}. *)

(** Exception-raising accessors ([Failure] on a shape mismatch), for
    loaders of artefacts the repo writes itself — checkpoints — where
    a malformed document is a hard error, not a recoverable one. *)

val get : string -> t -> t
val int_exn : t -> int
val str_exn : t -> string
val bool_exn : t -> bool
val list_exn : t -> t list
val int_list_exn : t -> int list
val of_int_list : int list -> t
val of_int_array : int array -> t
val int_array_exn : t -> int array

(** Array packing, the checkpoint compact encoding.  Two rewrites
    compose: large all-integer arrays that are mostly zeros — memory
    images, ARFs, cache and predictor tables — shrink to a
    [{"#z": [length, skip, value, ...]}] marker object (trailing
    zeros implied by the stored length), and any array with runs of
    consecutive structurally-equal elements — cache slot arrays full
    of the same empty line, ROB operand columns full of the same
    sentinel — shrinks to a [{"#r": [count, value, ...]}] run-length
    object, children packed first so runs of identical subtrees
    collapse too.  Only arrays whose packed form is strictly smaller
    are rewritten, so [unpack_arrays (pack_arrays v) = v] for any
    value whose objects avoid the ["#z"] / ["#r"] keys. *)

val pack_arrays : t -> t
(** Rewrite every shrinkable array, recursively. *)

val unpack_arrays : t -> t
(** Exact inverse of {!pack_arrays}; [Failure] on a malformed
    marker. *)
