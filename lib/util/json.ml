(* A minimal JSON reader/writer for the bench-trajectory tooling.

   The repo's dependency set has no JSON library, and the BENCH_*
   artefacts the trend differ consumes are all written by our own
   printf-style emitters, so a small recursive-descent parser over the
   full JSON grammar is all that's needed.  Numbers keep their textual
   class: an integer literal parses to [Int], anything with a fraction
   or exponent to [Float] — so [render] round-trips every artefact the
   repo emits ([parse (render v) = v]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st.pos (Printf.sprintf "expected %c, found %c" c d)
  | None -> fail st.pos (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

(* Decode one codepoint to UTF-8 bytes; the artefacts are ASCII, this
   just keeps \u escapes from crashing the loader. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
        let hex = String.sub st.s st.pos 4 in
        let cp =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st.pos (Printf.sprintf "bad \\u escape %s" hex)
        in
        st.pos <- st.pos + 4;
        add_utf8 buf cp;
        go ()
      | _ -> fail st.pos "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st; go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start (Printf.sprintf "bad number %s" text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail start (Printf.sprintf "bad number %s" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; members ()
        | Some '}' -> advance st
        | _ -> fail st.pos "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; Arr [] end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; elements ()
        | Some ']' -> advance st
        | _ -> fail st.pos "expected , or ] in array"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing content after JSON value";
  v

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_text f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec render_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_text f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        render_into buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        render_into buf v)
      fields;
    Buffer.add_char buf '}'

let render v =
  let buf = Buffer.create 256 in
  render_into buf v;
  Buffer.contents buf

(* Two-space-indented rendering, for artefacts meant to be read or
   diffed by humans (plain checkpoints).  Same grammar, so [parse]
   round-trips it identically to the compact form. *)
let rec render_pretty_into buf ~indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ -> render_into buf v
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        render_pretty_into buf ~indent:(indent + 2) v)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        render_pretty_into buf ~indent:(indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let render_pretty v =
  let buf = Buffer.create 256 in
  render_pretty_into buf ~indent:0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

(* Exception-raising variants for loaders of artefacts we wrote
   ourselves (checkpoints), where a shape mismatch is a hard error. *)

let get key j =
  match member key j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Json: missing key %S" key)

(* ------------------------------------------------------------------ *)
(* Zero-run elision (the checkpoint compact encoding)

   Large integer arrays in the documents the repo writes itself —
   memory images, ARFs, cache/predictor tables — are mostly zeros at
   production core counts.  [pack_arrays] rewrites every all-integer
   array whose elided form is strictly smaller into

     {"#z": [length, skip1, v1, skip2, v2, ...]}

   where each [skip] counts the zeros preceding the next non-zero
   value and trailing zeros are implied by [length].  The marker key
   "#z" cannot collide with a real field: no schema this repo emits
   uses it.  [unpack_arrays] is the exact inverse, so
   [unpack_arrays (pack_arrays v) = v] for any value whose objects
   avoid the marker key — packing is transparent to every accessor
   once the loader unpacks. *)

let pack_marker = "#z"

let zrun_encode items =
  (* [items] must be all-Int; returns None when elision would not
     shrink the array (2 tokens per non-zero value plus the length). *)
  let len = List.length items in
  let tokens = ref [] in
  let nonzeros = ref 0 in
  let skip = ref 0 in
  List.iter
    (fun v ->
      match v with
      | Int 0 -> incr skip
      | Int n ->
        incr nonzeros;
        tokens := Int n :: Int !skip :: !tokens;
        skip := 0
      | _ -> assert false)
    items;
  if 1 + (2 * !nonzeros) < len then
    Some (Obj [ (pack_marker, Arr (Int len :: List.rev !tokens)) ])
  else None

let all_ints = List.for_all (function Int _ -> true | _ -> false)

(* Run-length dedup for arbitrary arrays: consecutive structurally
   equal elements collapse to [count, value] token pairs.  This is
   what shrinks the non-integer bulk of a checkpoint — cache slot
   arrays full of the same empty line, ROB operand columns full of
   the same sentinel.  Applied after the children are packed, so runs
   of identical packed subtrees collapse too. *)
let rle_marker = "#r"

let rle_encode items =
  let len = List.length items in
  let runs =
    List.fold_left
      (fun acc v ->
        match acc with
        | (c, v') :: rest when v' = v -> (c + 1, v') :: rest
        | _ -> (1, v) :: acc)
      [] items
  in
  let r = List.length runs in
  if 2 * r < len then
    Some
      (Obj
         [
           ( rle_marker,
             Arr (List.concat_map (fun (c, v) -> [ Int c; v ]) (List.rev runs)) );
         ])
  else None

let rec pack_arrays = function
  | Arr items when List.length items >= 8 && all_ints items -> (
    match zrun_encode items with
    | Some packed -> packed
    | None -> (
      match rle_encode items with Some packed -> packed | None -> Arr items))
  | Arr items -> (
    let packed = List.map pack_arrays items in
    match rle_encode packed with Some p -> p | None -> Arr packed)
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, pack_arrays v)) fields)
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v

let zrun_decode tokens =
  match tokens with
  | Int len :: pairs ->
    if len < 0 then failwith "Json: malformed #z length";
    let out = Array.make len (Int 0) in
    let pos = ref 0 in
    let rec go = function
      | [] -> ()
      | Int skip :: Int v :: rest ->
        pos := !pos + skip;
        if skip < 0 || !pos >= len then failwith "Json: #z run out of bounds";
        out.(!pos) <- Int v;
        incr pos;
        go rest
      | _ -> failwith "Json: malformed #z tokens"
    in
    go pairs;
    Arr (Array.to_list out)
  | _ -> failwith "Json: malformed #z encoding"

let rec unpack_arrays = function
  | Obj [ (k, Arr tokens) ] when String.equal k pack_marker -> zrun_decode tokens
  | Obj [ (k, Arr tokens) ] when String.equal k rle_marker ->
    let rec go acc = function
      | [] -> Arr (List.concat (List.rev acc))
      | Int c :: v :: rest ->
        if c <= 0 then failwith "Json: malformed #r count";
        let v = unpack_arrays v in
        go (List.init c (fun _ -> v) :: acc) rest
      | _ -> failwith "Json: malformed #r tokens"
    in
    go [] tokens
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, unpack_arrays v)) fields)
  | Arr items -> Arr (List.map unpack_arrays items)
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v

let int_exn = function Int n -> n | _ -> failwith "Json: expected integer"
let str_exn = function Str s -> s | _ -> failwith "Json: expected string"
let bool_exn = function Bool b -> b | _ -> failwith "Json: expected bool"
let list_exn = function Arr items -> items | _ -> failwith "Json: expected array"
let int_list_exn j = List.map int_exn (list_exn j)
let of_int_list l = Arr (List.map (fun n -> Int n) l)
let of_int_array a = Arr (Array.to_list (Array.map (fun n -> Int n) a))
let int_array_exn j = Array.of_list (int_list_exn j)
