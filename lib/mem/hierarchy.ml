type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_words : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  c2c_latency : int;
}

(* 32 KB L1 = 1024 32-byte lines = 256 sets x 4 ways;
   1 MB L2 = 32768 lines = 4096 sets x 8 ways. *)
let default_config =
  {
    l1_sets = 256;
    l1_ways = 4;
    l2_sets = 4096;
    l2_ways = 8;
    line_words = 8;
    l1_latency = 2;
    l2_latency = 10;
    mem_latency = 300;
    c2c_latency = 20;
  }

type kind =
  | Read
  | Write
  | Rmw

type l1_state =
  | Shared
  | Modified

type dir_entry = {
  sharers : Bitset.t; (* set of cores holding the line *)
  mutable owner : int; (* core holding the line Modified, or -1 *)
}

type stats = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable invalidations : int;
  mutable c2c_transfers : int;
}

type t = {
  config : config;
  cores : int;
  l1 : l1_state Cache.t array;
  l2 : dir_entry Cache.t;
  stats : stats;
  trace : Fscope_obs.Trace.t;
  (* Called just BEFORE another core's activity mutates [core]'s L1
     state (invalidation, recall, Modified->Shared downgrade).  The
     engine's spin fast-forward uses it to wake a sleeping core before
     anything it cached changes; the default is free. *)
  mutable on_remote_victim : core:int -> unit;
}

let create ?(trace = Fscope_obs.Trace.null) ~cores config =
  if cores <= 0 then invalid_arg "Hierarchy.create: bad core count";
  {
    config;
    cores;
    l1 =
      Array.init cores (fun _ ->
          Cache.create ~sets:config.l1_sets ~ways:config.l1_ways
            ~line_words:config.line_words);
    l2 = Cache.create ~sets:config.l2_sets ~ways:config.l2_ways ~line_words:config.line_words;
    stats =
      { l1_hits = 0; l1_misses = 0; l2_hits = 0; l2_misses = 0; invalidations = 0;
        c2c_transfers = 0 };
    trace;
    on_remote_victim = (fun ~core:_ -> ());
  }

let set_remote_victim_hook t f = t.on_remote_victim <- f

let emit_access t ~core ~addr ~write outcome =
  if Fscope_obs.Trace.on t.trace then
    Fscope_obs.Trace.emit t.trace ~core
      (Fscope_obs.Event.Mem_access { addr; write; outcome })

let stats t = t.stats
let line_words t = t.config.line_words

let l1_resident t ~core ~addr = Cache.resident t.l1.(core) addr

(* An L1 eviction silently drops a Shared line and writes back a
   Modified one; either way the directory stops tracking that core. *)
let on_l1_eviction t ~core line state =
  match Cache.peek t.l2 line with
  | None -> () (* the L2 line was recalled first; nothing to update *)
  | Some dir ->
    Bitset.remove dir.sharers core;
    if state = Modified && dir.owner = core then dir.owner <- -1

let insert_l1 t ~core line state =
  match Cache.insert t.l1.(core) line state with
  | None -> ()
  | Some (evicted_line, evicted_state) -> on_l1_eviction t ~core evicted_line evicted_state

(* Inclusive L2: evicting an L2 line recalls every L1 copy. *)
let on_l2_eviction t line dir =
  for core = 0 to t.cores - 1 do
    if Bitset.mem dir.sharers core then begin
      t.on_remote_victim ~core;
      ignore (Cache.invalidate t.l1.(core) line)
    end
  done

let insert_l2 t line dir =
  match Cache.insert t.l2 line dir with
  | None -> ()
  | Some (evicted_line, evicted_dir) -> on_l2_eviction t evicted_line evicted_dir

(* Kill every remote copy of [line]; returns true if the dirty data had
   to come from a remote L1 (cache-to-cache transfer). *)
let invalidate_remotes t ~core dir line =
  let dirty_remote = dir.owner >= 0 && dir.owner <> core in
  for c = 0 to t.cores - 1 do
    if c <> core && Bitset.mem dir.sharers c then begin
      t.on_remote_victim ~core:c;
      ignore (Cache.invalidate t.l1.(c) line);
      t.stats.invalidations <- t.stats.invalidations + 1
    end
  done;
  Bitset.retain_only dir.sharers core;
  if dir.owner <> core then dir.owner <- -1;
  if dirty_remote then t.stats.c2c_transfers <- t.stats.c2c_transfers + 1;
  dirty_remote

let read t ~core addr =
  let cfg = t.config in
  let line = Cache.line_addr t.l2 addr in
  match Cache.find t.l1.(core) addr with
  | Some (Shared | Modified) ->
    t.stats.l1_hits <- t.stats.l1_hits + 1;
    emit_access t ~core ~addr ~write:false Fscope_obs.Event.L1_hit;
    (cfg.l1_latency, Fscope_obs.Event.L1_hit)
  | None ->
    t.stats.l1_misses <- t.stats.l1_misses + 1;
    (match Cache.find t.l2 addr with
    | Some dir ->
      t.stats.l2_hits <- t.stats.l2_hits + 1;
      emit_access t ~core ~addr ~write:false Fscope_obs.Event.L2_hit;
      let c2c =
        if dir.owner >= 0 && dir.owner <> core then begin
          (* Remote dirty copy: downgrade the owner to Shared. *)
          t.on_remote_victim ~core:dir.owner;
          Cache.update t.l1.(dir.owner) line Shared;
          dir.owner <- -1;
          t.stats.c2c_transfers <- t.stats.c2c_transfers + 1;
          cfg.c2c_latency
        end
        else 0
      in
      Bitset.add dir.sharers core;
      insert_l1 t ~core line Shared;
      (cfg.l1_latency + cfg.l2_latency + c2c, Fscope_obs.Event.L2_hit)
    | None ->
      t.stats.l2_misses <- t.stats.l2_misses + 1;
      emit_access t ~core ~addr ~write:false Fscope_obs.Event.L2_miss;
      insert_l2 t line { sharers = Bitset.singleton ~bits:t.cores core; owner = -1 };
      insert_l1 t ~core line Shared;
      (cfg.l1_latency + cfg.l2_latency + cfg.mem_latency, Fscope_obs.Event.L2_miss))

let write t ~core addr =
  let cfg = t.config in
  let line = Cache.line_addr t.l2 addr in
  match Cache.find t.l1.(core) addr with
  | Some Modified ->
    t.stats.l1_hits <- t.stats.l1_hits + 1;
    emit_access t ~core ~addr ~write:true Fscope_obs.Event.L1_hit;
    (cfg.l1_latency, Fscope_obs.Event.L1_hit)
  | Some Shared ->
    (* Upgrade: a directory round trip to invalidate other sharers. *)
    t.stats.l1_hits <- t.stats.l1_hits + 1;
    emit_access t ~core ~addr ~write:true Fscope_obs.Event.L1_hit;
    (match Cache.peek t.l2 addr with
    | Some dir -> ignore (invalidate_remotes t ~core dir line)
    | None -> () (* inclusivity violation is impossible; defensive *));
    (match Cache.peek t.l2 addr with
    | Some dir -> dir.owner <- core
    | None -> ());
    Cache.update t.l1.(core) line Modified;
    (cfg.l1_latency + cfg.l2_latency, Fscope_obs.Event.L1_hit)
  | None ->
    t.stats.l1_misses <- t.stats.l1_misses + 1;
    (match Cache.find t.l2 addr with
    | Some dir ->
      t.stats.l2_hits <- t.stats.l2_hits + 1;
      emit_access t ~core ~addr ~write:true Fscope_obs.Event.L2_hit;
      let dirty_remote = invalidate_remotes t ~core dir line in
      Bitset.retain_only dir.sharers core;
      Bitset.add dir.sharers core;
      dir.owner <- core;
      insert_l1 t ~core line Modified;
      ( cfg.l1_latency + cfg.l2_latency + (if dirty_remote then cfg.c2c_latency else 0),
        Fscope_obs.Event.L2_hit )
    | None ->
      t.stats.l2_misses <- t.stats.l2_misses + 1;
      emit_access t ~core ~addr ~write:true Fscope_obs.Event.L2_miss;
      insert_l2 t line { sharers = Bitset.singleton ~bits:t.cores core; owner = core };
      insert_l1 t ~core line Modified;
      (cfg.l1_latency + cfg.l2_latency + cfg.mem_latency, Fscope_obs.Event.L2_miss))

let access_classified t ~core kind ~addr =
  if addr < 0 then invalid_arg "Hierarchy.access: negative address";
  match kind with
  | Read -> read t ~core addr
  | Write | Rmw -> write t ~core addr

let access t ~core kind ~addr = fst (access_classified t ~core kind ~addr)

(* ------------------------------------------------------------------ *)
(* Checkpointing.  The dump is positional down to (set, way) slots and
   LRU clocks — replacement and victim choice depend on both — so a
   restored hierarchy serves every future access with the same latency,
   level and coherence actions as the uninterrupted run. *)

module Json = Fscope_util.Json

let cache_to_json ~payload cache =
  let clock, slots = Cache.dump cache ~payload in
  Json.Obj
    [
      ("clock", Json.Int clock);
      ( "slots",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun set ->
                  Json.Arr
                    (Array.to_list
                       (Array.map
                          (fun (tag, last_used, p) ->
                            Json.Arr
                              [
                                Json.Int tag;
                                Json.Int last_used;
                                (match p with None -> Json.Null | Some j -> j);
                              ])
                          set)))
                slots)) );
    ]

let cache_restore ~payload cache j =
  let clock = Json.int_exn (Json.get "clock" j) in
  let slots =
    Array.of_list
      (List.map
         (fun set ->
           Array.of_list
             (List.map
                (fun slot ->
                  match Json.list_exn slot with
                  | [ tag; last_used; p ] ->
                    ( Json.int_exn tag,
                      Json.int_exn last_used,
                      match p with Json.Null -> None | p -> Some p )
                  | _ -> failwith "checkpoint: malformed cache slot")
                (Json.list_exn set)))
         (Json.list_exn (Json.get "slots" j)))
  in
  Cache.restore cache ~payload (clock, slots)

let l1_payload = function Shared -> Json.Int 0 | Modified -> Json.Int 1

let l1_unpayload j =
  match Json.int_exn j with
  | 0 -> Shared
  | 1 -> Modified
  | _ -> failwith "checkpoint: bad L1 state"

let dir_payload (d : dir_entry) =
  Json.Obj
    [
      ("sharers", Json.Arr (List.map (fun c -> Json.Int c) (Bitset.members d.sharers)));
      ("owner", Json.Int d.owner);
    ]

let dir_unpayload ~cores j =
  {
    sharers = Bitset.of_members ~bits:cores (Json.int_list_exn (Json.get "sharers" j));
    owner = Json.int_exn (Json.get "owner" j);
  }

let to_json t =
  let s = t.stats in
  Json.Obj
    [
      ( "stats",
        Json.Arr
          (List.map
             (fun v -> Json.Int v)
             [
               s.l1_hits; s.l1_misses; s.l2_hits; s.l2_misses; s.invalidations;
               s.c2c_transfers;
             ]) );
      ( "l1",
        Json.Arr
          (Array.to_list (Array.map (cache_to_json ~payload:l1_payload) t.l1)) );
      ("l2", cache_to_json ~payload:dir_payload t.l2);
    ]

let restore t j =
  (match Json.int_list_exn (Json.get "stats" j) with
  | [ a; b; c; d; e; f ] ->
    t.stats.l1_hits <- a;
    t.stats.l1_misses <- b;
    t.stats.l2_hits <- c;
    t.stats.l2_misses <- d;
    t.stats.invalidations <- e;
    t.stats.c2c_transfers <- f
  | _ -> failwith "checkpoint: malformed hierarchy stats");
  let l1 = Json.list_exn (Json.get "l1" j) in
  if List.length l1 <> Array.length t.l1 then
    failwith "checkpoint: L1 core-count mismatch";
  List.iteri (fun core cj -> cache_restore ~payload:l1_unpayload t.l1.(core) cj) l1;
  cache_restore ~payload:(dir_unpayload ~cores:t.cores) t.l2 (Json.get "l2" j)

let check_invariants t =
  let result = ref (Ok ()) in
  let fail msg = if !result = Ok () then result := Error msg in
  (* 1. At most one Modified copy per line, and it matches the owner. *)
  let modified : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun core l1 ->
      Cache.iter l1 (fun line state ->
          (* Inclusivity. *)
          (match Cache.peek t.l2 line with
          | None ->
            fail (Printf.sprintf "line %d in L1 of core %d but not in L2" line core)
          | Some dir ->
            if not (Bitset.mem dir.sharers core) then
              fail
                (Printf.sprintf "line %d in L1 of core %d but not in directory sharers"
                   line core));
          if state = Modified then begin
            (match Hashtbl.find_opt modified line with
            | Some other ->
              fail
                (Printf.sprintf "line %d Modified in cores %d and %d" line other core)
            | None -> Hashtbl.add modified line core);
            match Cache.peek t.l2 line with
            | Some dir when dir.owner <> core ->
              fail
                (Printf.sprintf "line %d Modified in core %d but owner is %d" line core
                   dir.owner)
            | Some _ | None -> ()
          end))
    t.l1;
  (* 2. Directory sharers only name cores that actually hold the line. *)
  Cache.iter t.l2 (fun line dir ->
      for core = 0 to t.cores - 1 do
        if Bitset.mem dir.sharers core && not (Cache.resident t.l1.(core) line)
        then fail (Printf.sprintf "directory says core %d shares line %d; L1 disagrees" core line)
      done;
      if dir.owner >= 0 && not (Bitset.mem dir.sharers dir.owner) then
        fail (Printf.sprintf "line %d owner %d not in sharers" line dir.owner));
  match !result with
  | Ok () -> Ok "ok"
  | Error e -> Error e
