(** The simulated memory system: per-core private L1 caches, a shared
    inclusive L2 with an in-cache directory, and flat memory.

    The paper's Table III configuration: private 32 KB 4-way L1 with
    2-cycle latency, shared 1 MB 8-way L2 with 10-cycle latency,
    300-cycle memory.  Coherence is a directory-based MSI invalidate
    protocol; a dirty line supplied by a remote L1 costs an extra
    cache-to-cache transfer latency.

    The module is a *timing and state* model: [access] mutates the tag
    and directory state immediately and returns the access latency.
    Data values live in the machine's flat memory image, which applies
    store values at the returned completion time — that is what gives
    the simulator its relaxed (RMO-like) visibility order. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  line_words : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;  (** charged on an L2 miss, on top of L1+L2 *)
  c2c_latency : int;  (** extra cost when a remote L1 supplies a dirty line *)
}

val default_config : config
(** Table III: 32 KB/4-way L1 (2 cycles), 1 MB/8-way L2 (10 cycles),
    300-cycle memory, 32-byte lines (8 words), 20-cycle c2c. *)

type kind =
  | Read
  | Write
  | Rmw  (** compare-and-swap: needs exclusive ownership, like a write *)

type stats = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable invalidations : int;  (** remote L1 copies killed by writes *)
  mutable c2c_transfers : int;
}

type t

val create : ?trace:Fscope_obs.Trace.t -> cores:int -> config -> t
(** When [trace] is live, every [access] emits a [Mem_access] event
    (L1 hit / L2 hit / L2 miss) for the accessing core.  Defaults to
    the disabled {!Fscope_obs.Trace.null}. *)

val access : t -> core:int -> kind -> addr:int -> int
(** [access t ~core kind ~addr] simulates one access and returns its
    latency in cycles.  [addr] is a word address; any non-negative
    value is accepted (the cache indexes by line). *)

val access_classified :
  t -> core:int -> kind -> addr:int -> int * Fscope_obs.Event.mem_outcome
(** Like {!access}, additionally naming the level that served the
    access (the same outcome the [Mem_access] event carries); the
    profiler charges head-of-ROB memory stalls to that level. *)

val stats : t -> stats
(** The live (mutable) counter record of this hierarchy. *)

val set_remote_victim_hook : t -> (core:int -> unit) -> unit
(** Install a callback fired just {e before} another core's access
    mutates [core]'s L1 state: a directory invalidation, an inclusive
    L2-eviction recall, or a Modified→Shared downgrade when a remote
    reader pulls a dirty line.  The engine's spin fast-forward uses it
    to wake a sleeping core while everything it cached is still
    intact.  Default: no-op. *)

val line_words : t -> int

val l1_resident : t -> core:int -> addr:int -> bool
(** For tests: is the word's line in [core]'s L1? *)

val to_json : t -> Fscope_util.Json.t
(** Whole-hierarchy checkpoint: every (set, way) slot of every cache
    positionally (tag, LRU stamp, payload), the LRU clocks, the
    directory (sharers + owner per line) and the stats counters.  A
    hierarchy restored from it serves every future access identically
    to the uninterrupted run. *)

val restore : t -> Fscope_util.Json.t -> unit
(** Inverse of {!to_json} into an existing hierarchy of the same
    geometry and core count; raises [Failure] on malformed input. *)

val check_invariants : t -> (string, string) result
(** Coherence invariants, checked by tests after random traces:
    at most one modified copy per line; every L1-resident line is
    L2-resident (inclusivity); directory sharers exactly match L1
    residency.  Returns [Error msg] naming the first violation. *)
