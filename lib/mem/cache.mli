(** A set-associative cache tag store with true-LRU replacement.

    The cache is generic in its per-line payload so the same structure
    serves the private L1s (payload: MSI state) and the shared L2
    (payload: directory entry).  It tracks tags only — data always
    lives in the flat memory image; the timing model charges latencies
    based on where the tag hits. *)

type 'a t

val create : sets:int -> ways:int -> line_words:int -> 'a t
(** [sets] and [ways] must be positive; [line_words] must be a positive
    power of two. *)

val line_words : 'a t -> int

val line_addr : 'a t -> int -> int
(** [line_addr t addr] is the address of the first word of [addr]'s
    line — the canonical key for a line. *)

val find : 'a t -> int -> 'a option
(** [find t addr] returns the payload if [addr]'s line is present and
    promotes it to most-recently-used. *)

val peek : 'a t -> int -> 'a option
(** Like [find] without the LRU update. *)

val update : 'a t -> int -> 'a -> unit
(** Replace the payload of a resident line.  Raises [Invalid_argument]
    if the line is not resident. *)

val insert : 'a t -> int -> 'a -> (int * 'a) option
(** [insert t addr payload] makes [addr]'s line resident (MRU),
    returning the evicted [(line_addr, payload)] if the set was full.
    Raises [Invalid_argument] if the line is already resident. *)

val invalidate : 'a t -> int -> 'a option
(** Remove a line, returning its payload if it was resident. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterate over all resident lines as [(line_addr, payload)]. *)

val resident : 'a t -> int -> bool

val dump :
  'a t -> payload:('a -> 'b) -> int * (int * int * 'b option) array array
(** [(clock, slots)] where [slots.(set).(way)] is
    [(tag, last_used, payload)] — positional, because LRU victim choice
    depends on way order and exact stamps.  [payload] maps each live
    payload to a serializable form. *)

val restore :
  'a t -> payload:('b -> 'a) -> int * (int * int * 'b option) array array -> unit
(** Inverse of {!dump} into an existing cache of the same geometry;
    raises [Invalid_argument] on a shape mismatch. *)
