(* Each set is a small mutable array of ways ordered implicitly by a
   per-way [last_used] stamp; sets are tiny (4-8 ways) so linear scans
   are the fastest and simplest implementation. *)

type 'a way = {
  mutable tag : int; (* line address; -1 = invalid *)
  mutable payload : 'a option;
  mutable last_used : int;
}

type 'a t = {
  sets : int;
  ways : int;
  line_words : int;
  line_shift : int;
  data : 'a way array array; (* data.(set).(way) *)
  mutable clock : int;
}

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let create ~sets ~ways ~line_words =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create: sets/ways must be positive";
  if not (is_power_of_two line_words) then
    invalid_arg "Cache.create: line_words must be a power of two";
  let make_way () = { tag = -1; payload = None; last_used = 0 } in
  {
    sets;
    ways;
    line_words;
    line_shift = log2 line_words;
    data = Array.init sets (fun _ -> Array.init ways (fun _ -> make_way ()));
    clock = 0;
  }

let line_words t = t.line_words
let line_addr t addr = (addr lsr t.line_shift) lsl t.line_shift
let set_of t line = (line lsr t.line_shift) mod t.sets

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find_way t line =
  let set = t.data.(set_of t line) in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).tag = line then Some set.(i)
    else go (i + 1)
  in
  go 0

let payload_exn way =
  match way.payload with
  | Some p -> p
  | None -> assert false

let find t addr =
  let line = line_addr t addr in
  match find_way t line with
  | None -> None
  | Some way ->
    way.last_used <- tick t;
    Some (payload_exn way)

let peek t addr =
  match find_way t (line_addr t addr) with
  | None -> None
  | Some way -> Some (payload_exn way)

let update t addr payload =
  match find_way t (line_addr t addr) with
  | None -> invalid_arg "Cache.update: line not resident"
  | Some way -> way.payload <- Some payload

let insert t addr payload =
  let line = line_addr t addr in
  if find_way t line <> None then invalid_arg "Cache.insert: line already resident";
  let set = t.data.(set_of t line) in
  (* Prefer an invalid way; otherwise evict the least recently used. *)
  let victim = ref set.(0) in
  Array.iter
    (fun way ->
      if !victim.tag <> -1 && (way.tag = -1 || way.last_used < !victim.last_used) then
        victim := way)
    set;
  let way = !victim in
  let evicted = if way.tag = -1 then None else Some (way.tag, payload_exn way) in
  way.tag <- line;
  way.payload <- Some payload;
  way.last_used <- tick t;
  evicted

let invalidate t addr =
  match find_way t (line_addr t addr) with
  | None -> None
  | Some way ->
    let p = payload_exn way in
    way.tag <- -1;
    way.payload <- None;
    Some p

let iter t f =
  Array.iter
    (fun set ->
      Array.iter (fun way -> if way.tag <> -1 then f way.tag (payload_exn way)) set)
    t.data

let resident t addr = find_way t (line_addr t addr) <> None

(* Positional dump/restore for checkpointing.  Replacement decisions
   depend on the exact (set, way) placement and [last_used] stamps —
   [insert] prefers the first invalid way in way order, then the
   strictly smallest stamp with earliest-way tie-break — so the dump
   keeps every slot at its position and carries the clock verbatim. *)

let dump t ~payload =
  let slot way =
    ( way.tag,
      way.last_used,
      match way.payload with None -> None | Some p -> Some (payload p) )
  in
  (t.clock, Array.map (Array.map slot) t.data)

let restore t ~payload (clock, slots) =
  if
    Array.length slots <> t.sets
    || Array.exists (fun set -> Array.length set <> t.ways) slots
  then invalid_arg "Cache.restore: geometry mismatch";
  t.clock <- clock;
  Array.iteri
    (fun s set ->
      Array.iteri
        (fun w (tag, last_used, p) ->
          let way = t.data.(s).(w) in
          way.tag <- tag;
          way.last_used <- last_used;
          way.payload <- (match p with None -> None | Some p -> Some (payload p)))
        set)
    slots
