(* A tiny fixed-capacity mutable bitset (63 bits per word), replacing
   the single-[int] bitmasks that capped the machine at 62 cores. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

type t = int array

let words bits = (bits + bits_per_word - 1) / bits_per_word

let create ~bits =
  if bits < 0 then invalid_arg "Bitset.create: negative capacity";
  Array.make (max 1 (words bits)) 0

let capacity t = Array.length t * bits_per_word

let check t i =
  if i < 0 || i >= capacity t then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  t.(i / bits_per_word) <- t.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  t.(i / bits_per_word) <- t.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let singleton ~bits i =
  let t = create ~bits in
  add t i;
  t

(* Drop every member except (possibly) [i] — the directory's
   "invalidate all remote sharers" step. *)
let retain_only t i =
  let keep = mem t i in
  Array.fill t 0 (Array.length t) 0;
  if keep then add t i

let is_empty t = Array.for_all (fun w -> w = 0) t

let iter t f =
  Array.iteri
    (fun w word ->
      if word <> 0 then
        for b = 0 to bits_per_word - 1 do
          if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
        done)
    t

let fold t f acc =
  let acc = ref acc in
  iter t (fun i -> acc := f !acc i);
  !acc

let members t = List.rev (fold t (fun acc i -> i :: acc) [])

let of_members ~bits l =
  let t = create ~bits in
  List.iter (add t) l;
  t
