(** A fixed-capacity mutable bitset.

    The directory used to track sharers in a single [int] bitmask,
    which silently capped the machine at 62 cores; this module is the
    same idea spread over an [int array] so domain-sharded machines can
    go to arbitrary core counts.  All operations are O(1) except
    {!retain_only}, {!is_empty} and {!iter}, which are O(capacity/63).

    Not thread-safe; in the sharded engine every bitset is only touched
    under the turn token (see DESIGN.md §13). *)

type t

val create : bits:int -> t
(** An empty set able to hold members [0 .. bits-1] (rounded up to the
    word size, and at least one word so [bits = 0] is usable). *)

val singleton : bits:int -> int -> t

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val retain_only : t -> int -> unit
(** Remove every member except (possibly) [i]: afterwards the set is
    [{i}] if [i] was a member, [{}] otherwise. *)

val is_empty : t -> bool

val iter : t -> (int -> unit) -> unit
(** Call [f] on each member in increasing order. *)

val fold : t -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold [f] over the members in increasing order. *)

val members : t -> int list
(** The members in increasing order. *)

val of_members : bits:int -> int list -> t
(** A set holding exactly the given members (checkpoint restore). *)
