(** Rendering of cycle-accounting profiles.

    Pure presentation over data the caller collected: per-core
    {!Cpi.t} tables from a finished run, the traced {!Metrics.t}
    registry (for per-fence-site, per-scope and spin-site counters),
    and the static site lists the caller extracted from the program
    image.  Keeping the extraction on the caller's side leaves this
    library free of any dependency on the ISA or machine layers.

    Both renderers print every static fence site — including sites
    that never stalled — and embed an explicit check that the CPI
    leaves sum to the independently-counted active cycles, so a
    reader can trust the shares without re-deriving them. *)

type fence_site = {
  core : int;  (** thread/core index owning the site *)
  pc : int;  (** static program counter of the fence instruction *)
  kind : string;  (** rendered fence kind, e.g. ["S-FENCE[cls].ss"] *)
}

type input = {
  label : string;  (** workload name *)
  config : string;  (** config tag, e.g. ["sfence"] / ["traditional"] / ["no-fence"] *)
  cycles : int;  (** machine cycles of the run *)
  timed_out : bool;
      (** the run hit its cycle cap — expected for ablations that break
          a workload's termination protocol (e.g. no-fence pst) *)
  cpi : Cpi.t array;  (** per-core cycle accounting *)
  core_active : int array;
      (** per-core active cycles from the independent legacy counter;
          the renderers check each core's CPI leaves sum to this *)
  metrics : Metrics.t option;
      (** traced registry; [None] for untraced runs, which omits the
          site/scope/spin tables but keeps the CPI stack *)
  fence_sites : fence_site list;  (** static fence sites, in program order *)
  cids : int list;  (** class ids with [Fs_start] sites in the program *)
  spin_pcs : (int * int) list;  (** static [(core, pc)] backward-edge sites *)
  spin_ff : (int * int * int) option;
      (** engine spin fast-forward counters [(sleeps, cycles_skipped,
          wakes)], taken from a matching untraced run — tracing disables
          the optimisation, so the traced run itself reports zero.
          [None] when the caller did not collect them (e.g. the
          optimisation is off in the profiled config). *)
}

type stall_summary = {
  episodes : int;
  stall_cycles : int;
  mean : float;
  max_floor : int;  (** floor of the highest non-empty log2 bucket *)
}

type site_row = {
  site : fence_site;
  commits : int;
  scoped_commits : int;
  stall : stall_summary;
}

val site_rows : input -> site_row list
(** Per-static-site attribution read back from the metrics registry
    ([core<i>/fence_pc<p>/...]); empty for untraced runs.  One row per
    static site, in program order — the table both renderers print and
    the {!Advisor} ranks. *)

val text : input -> string
(** Human-readable profile: aggregate CPI stack with shares and a
    sum check, per-core sums, fence-site / scope / spin tables. *)

val json : input -> string
(** The same data as a single-line JSON object
    (schema ["fence-scoping/profile/v1"]). *)
