(** The trace collector handed to a machine run.

    A trace is either live (created with {!create}) or the shared
    disabled collector {!null}.  Emission sites are expected to guard
    with {!on} before building an event, so a run without tracing pays
    one boolean load per potential event and allocates nothing —
    observability is strictly timing- and result-neutral either way,
    because emission never feeds back into simulation state.

    Events land in per-core ring buffers (see {!Ring}); the collector
    also owns the run's {!Metrics} registry and the current cycle
    ([now]), which the machine advances once per simulated cycle so
    emission sites don't need a cycle parameter threaded through. *)

type t

val create : ?ring_capacity:int -> ?keep:(Event.t -> bool) -> cores:int -> unit -> t
(** A live collector with one ring per core.  [ring_capacity] is per
    core and defaults to 65536 events.  [keep] filters events at the
    emission site (default: keep everything); a selective filter lets a
    long run retain one sparse event family without the ring cycling
    it out. *)

val null : t
(** The disabled collector: [on null = false]; [emit]/[set_now] on it
    are no-ops.  Safe to share — it holds no per-run state. *)

val on : t -> bool

val set_now : t -> int -> unit
(** Advance the trace clock; called by the machine at the top of every
    simulated cycle. *)

val now : t -> int
val cores : t -> int

val emit : t -> core:int -> Event.t -> unit
(** Record an event at the current cycle.  No-op when disabled; raises
    [Invalid_argument] if [core] is out of range on a live trace. *)

val metrics : t -> Metrics.t

val events : t -> Event.timed list
(** All retained events merged across cores, sorted by cycle, then
    core, then per-core emission order (deterministic). *)

val dropped : t -> int
(** Total ring-buffer overwrites across cores. *)
