(* Profile-guided fence advice: which static fence site should become
   scoped first, and what is that worth?

   The advisor is a pure analysis pass over the per-static-fence-site
   stall tables a traced run already collects (see Profile.site_rows):
   it never re-runs anything.  Given a profile of the subject run —
   normally the traditional-fence configuration, where every site is a
   candidate — it splits each core's unscoped fence-wait CPI cycles
   across that core's sites in proportion to their observed stall
   cycles, subtracts the residual cost the same site still pays in a
   scoped run of the same program (when the caller supplies one), and
   ranks sites by the difference: the expected cycles recovered if the
   site's fence is scoped.

   The whole-run prediction uses the per-core critical path rather
   than aggregate stall totals: a simulated run ends when its slowest
   core does, and recovered stall cycles on a non-critical core
   convert to spin or idle time, not to a shorter run.  So

     predicted_speedup = max_c active_T(c)
                       / max_c (active_T(c) - recovery(c))

   with recovery(c) clamped to core c's unscoped fence-wait cycles.
   Calibrated against this repo's measured T/S cycle ratios, the model
   lands within a few percent per workload and reproduces the paper's
   per-workload speedup ordering (see paper_speedups and the advisor
   tests). *)

type confidence = High | Medium | Low

let confidence_name = function High -> "high" | Medium -> "medium" | Low -> "low"

type advice = {
  core : int;
  pc : int;
  kind : string;
  commits : int;
  episodes : int;  (* completed stall episodes observed at the site *)
  site_stall : int;  (* observed stall cycles at the site, subject run *)
  stall_share : float;  (* share of all observed site stalls, in [0,1] *)
  attributed : float;  (* unscoped fence-wait cycles attributed to the site *)
  residual : float;  (* modeled residual cost once scoped *)
  recovery : float;  (* max 0 (attributed - residual) *)
  confidence : confidence;
}

type t = {
  label : string;
  config : string;
  cycles : int;
  cores : int;
  modeled_residuals : bool;
      (* residuals taken from a scoped run of the same program; without
         one every residual is 0 and recoveries are upper bounds *)
  advice : advice list;  (* ranked by recovery, descending *)
  total_unscoped : int;  (* unscoped fence-wait cycles, all cores *)
  total_recovery : float;
  predicted_speedup : float;
}

(* The scoped run indexes residuals by (core, pc): the subject and
   scoped profiles run the same program image, so static sites align
   exactly. *)
let residual_table (scoped : Profile.input option) =
  match scoped with
  | None -> fun _ -> 0
  | Some s ->
    let rows = Profile.site_rows s in
    fun (core, pc) ->
      List.fold_left
        (fun acc (r : Profile.site_row) ->
          if r.site.core = core && r.site.pc = pc then
            acc + r.stall.Profile.stall_cycles
          else acc)
        0 rows

let confidence_of ~modeled ~episodes =
  if not modeled then Low
  else if episodes < 4 then Low
  else if episodes < 16 then Medium
  else High

let analyze ?scoped (input : Profile.input) =
  if input.metrics = None then
    failwith "advisor: needs a traced profile (no metrics registry)";
  let rows = Profile.site_rows input in
  let cores = Array.length input.cpi in
  let unscoped_of c = Cpi.fence_scope_cycles input.cpi.(c) Unscoped in
  let core_stall = Array.make cores 0 in
  List.iter
    (fun (r : Profile.site_row) ->
      if r.site.core < cores then
        core_stall.(r.site.core) <-
          core_stall.(r.site.core) + r.stall.Profile.stall_cycles)
    rows;
  let all_stall = Array.fold_left ( + ) 0 core_stall in
  let residual_at = residual_table scoped in
  let modeled = scoped <> None in
  let advice =
    List.map
      (fun (r : Profile.site_row) ->
        let c = r.site.core in
        let stall = r.stall.Profile.stall_cycles in
        let attributed =
          if c >= cores || core_stall.(c) = 0 then 0.0
          else
            float_of_int (unscoped_of c)
            *. float_of_int stall /. float_of_int core_stall.(c)
        in
        let residual = float_of_int (residual_at (c, r.site.pc)) in
        {
          core = c;
          pc = r.site.pc;
          kind = r.site.kind;
          commits = r.commits;
          episodes = r.stall.Profile.episodes;
          site_stall = stall;
          stall_share =
            (if all_stall = 0 then 0.0
             else float_of_int stall /. float_of_int all_stall);
          attributed;
          residual;
          recovery = Float.max 0.0 (attributed -. residual);
          confidence = confidence_of ~modeled ~episodes:r.stall.Profile.episodes;
        })
      rows
  in
  let advice =
    List.stable_sort
      (fun a b ->
        match compare b.recovery a.recovery with
        | 0 -> compare (a.core, a.pc) (b.core, b.pc)
        | n -> n)
      advice
  in
  (* Per-core recovery, clamped to the core's unscoped fence cycles:
     proportional attribution can't recover more than the core ever
     waited unscoped. *)
  let core_recovery = Array.make cores 0.0 in
  List.iter
    (fun a ->
      if a.core < cores then core_recovery.(a.core) <- core_recovery.(a.core) +. a.recovery)
    advice;
  Array.iteri
    (fun c r -> core_recovery.(c) <- Float.min r (float_of_int (unscoped_of c)))
    core_recovery;
  let max_active = ref 0.0 in
  let max_post = ref 0.0 in
  Array.iteri
    (fun c active ->
      let active = float_of_int active in
      let post = active -. (if c < cores then core_recovery.(c) else 0.0) in
      if active > !max_active then max_active := active;
      if post > !max_post then max_post := post)
    input.core_active;
  let total_unscoped = ref 0 in
  for c = 0 to cores - 1 do
    total_unscoped := !total_unscoped + unscoped_of c
  done;
  {
    label = input.label;
    config = input.config;
    cycles = input.cycles;
    cores;
    modeled_residuals = modeled;
    advice;
    total_unscoped = !total_unscoped;
    total_recovery = Array.fold_left ( +. ) 0.0 core_recovery;
    predicted_speedup =
      (if !max_post < 1.0 then 1.0 else !max_active /. !max_post);
  }

let predicted_speedup ?scoped input = (analyze ?scoped input).predicted_speedup

(* ------------------------------------------------------------------ *)
(* Paper reference data                                                 *)

(* Per-workload S-Fence speedup from the paper's figures, one number
   per workload as calibrated in EXPERIMENTS.md: the Fig. 12 peak
   speedup for the harness benchmarks (dekker, wsq, msn, harris) and
   the Fig. 13 whole-app gain for the rest (barnes and radiosity are
   quoted there as 19.5% / 15.8% fence-stall cuts; 1/(1-x) converts to
   a speedup).  The advisor's predicted ordering over these eight is
   asserted against this table. *)
let paper_speedups =
  [
    ("msn", 1.30);
    ("dekker", 1.29);
    ("barnes", 1.242);
    ("wsq", 1.22);
    ("radiosity", 1.188);
    ("harris", 1.13);
    ("pst", 1.11);
    ("ptc", 1.043);
  ]

(* Ordering agreement under an epsilon: a pair of workloads counts as a
   violation only when BOTH lists separate it by more than [min_gap]
   and the two lists disagree on its direction.  Near-ties (the paper's
   pst/ptc gap is 0.067, and this repo's calibrated reproduction
   documents adjacent swaps at that scale) are not evidence either
   way. *)
let ordering_violations ~min_gap a b =
  let pairs = ref [] in
  List.iteri
    (fun i (na, va) ->
      List.iteri
        (fun j (nb, vb) ->
          if j > i then
            match (List.assoc_opt na b, List.assoc_opt nb b) with
            | Some wa, Some wb ->
              if
                Float.abs (va -. vb) > min_gap
                && Float.abs (wa -. wb) > min_gap
                && (va -. vb) *. (wa -. wb) < 0.0
              then pairs := (na, nb) :: !pairs
            | _ -> ())
        a)
    a;
  List.rev !pairs

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let text t =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "fence advice — %s [%s]  cores=%d  cycles=%d\n" t.label t.config t.cores t.cycles;
  p "unscoped fence-wait cycles: %d; predicted recovery: %.0f\n" t.total_unscoped
    t.total_recovery;
  p "predicted speedup if every ranked site is scoped: %.3fx\n" t.predicted_speedup;
  p "residual scoped cost: %s\n"
    (if t.modeled_residuals then "modeled from a scoped run of the same program"
     else "not modeled (no scoped run supplied) — recoveries are upper bounds");
  (match t.advice with
  | [] -> p "\nno static fence sites in the program\n"
  | advice ->
    p "\n  %-4s %-4s %-6s %-18s %9s %7s %7s %10s %9s %9s %6s\n" "rank" "core" "pc"
      "kind" "commits" "stalls" "share" "attributed" "residual" "recovery" "conf";
    List.iteri
      (fun i a ->
        p "  %-4d %-4d %-6d %-18s %9d %7d %6.1f%% %10.0f %9.0f %9.0f %6s\n" (i + 1)
          a.core a.pc a.kind a.commits a.episodes
          (100.0 *. a.stall_share)
          a.attributed a.residual a.recovery
          (confidence_name a.confidence))
      advice);
  Buffer.contents b

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json t =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\"schema\":\"fence-scoping/advice/v1\"";
  p ",\"label\":\"%s\",\"config\":\"%s\",\"cores\":%d,\"cycles\":%d" (escape t.label)
    (escape t.config) t.cores t.cycles;
  p ",\"modeled_residuals\":%b" t.modeled_residuals;
  p ",\"total_unscoped\":%d,\"total_recovery\":%.2f,\"predicted_speedup\":%.4f"
    t.total_unscoped t.total_recovery t.predicted_speedup;
  p ",\"advice\":[%s]"
    (String.concat ","
       (List.mapi
          (fun i a ->
            Printf.sprintf
              "{\"rank\":%d,\"core\":%d,\"pc\":%d,\"kind\":\"%s\",\"commits\":%d,\"stalls\":%d,\"stall_cycles\":%d,\"stall_share\":%.4f,\"attributed\":%.2f,\"residual\":%.2f,\"recovery\":%.2f,\"confidence\":\"%s\"}"
              (i + 1) a.core a.pc (escape a.kind) a.commits a.episodes a.site_stall
              a.stall_share a.attributed a.residual a.recovery
              (confidence_name a.confidence))
          t.advice));
  p "}";
  Buffer.contents b
