(* Rendering of cycle-accounting profiles: CPI stacks, per-static-
   fence-site tables, per-scope (cid) attribution and spin sites, as
   aligned text or JSON.  Pure presentation: the caller supplies the
   per-core CPI tables, the traced metrics registry, and the static
   site lists it extracted from the program image. *)

type fence_site = {
  core : int;
  pc : int;
  kind : string;
}

type input = {
  label : string;
  config : string;
  cycles : int;
  timed_out : bool;
  cpi : Cpi.t array;
  core_active : int array;
      (* per-core active cycles from the independent legacy counter;
         the renderers check the CPI leaves sum to exactly this *)
  metrics : Metrics.t option;
  fence_sites : fence_site list;
  cids : int list;
  spin_pcs : (int * int) list;
  spin_ff : (int * int * int) option;
      (* engine spin fast-forward counters (sleeps, cycles skipped,
         wakes) from a matching untraced run — tracing disables the
         optimisation, so the traced run itself always reports zero *)
}

let active_cycles input = Array.fold_left ( + ) 0 input.core_active

let aggregate input =
  let into = Cpi.create () in
  Array.iter (fun t -> Cpi.accumulate ~into t) input.cpi;
  into

let counter_or_zero metrics name =
  match Metrics.find_counter metrics name with Some v -> v | None -> 0

(* Stall summary of one histogram: episode count, total cycles, mean
   per episode, and the floor of the highest non-empty bucket (a lower
   bound on the longest episode). *)
type stall_summary = {
  episodes : int;
  stall_cycles : int;
  mean : float;
  max_floor : int;
}

let stall_of_histogram = function
  | None -> { episodes = 0; stall_cycles = 0; mean = 0.0; max_floor = 0 }
  | Some (h : Metrics.hist_snapshot) ->
    {
      episodes = h.count;
      stall_cycles = h.sum;
      mean = (if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count);
      max_floor = List.fold_left (fun acc (floor, _) -> max acc floor) 0 h.buckets;
    }

type site_row = {
  site : fence_site;
  commits : int;
  scoped_commits : int;
  stall : stall_summary;
}

let site_rows input =
  match input.metrics with
  | None -> []
  | Some m ->
    List.map
      (fun site ->
        let name suffix = Printf.sprintf "core%d/fence_pc%d/%s" site.core site.pc suffix in
        {
          site;
          commits = counter_or_zero m (name "commits");
          scoped_commits = counter_or_zero m (name "scoped_commits");
          stall = stall_of_histogram (Metrics.find_histogram m (name "stall_cycles"));
        })
      input.fence_sites

type cid_row = {
  cid : int;
  cid_commits : int;
  cid_stall : stall_summary;
}

let cid_rows input =
  match input.metrics with
  | None -> []
  | Some m ->
    List.map
      (fun cid ->
        {
          cid;
          cid_commits = counter_or_zero m (Printf.sprintf "cid%d/commits" cid);
          cid_stall =
            stall_of_histogram
              (Metrics.find_histogram m (Printf.sprintf "cid%d/stall_cycles" cid));
        })
      input.cids

let spin_rows input =
  match input.metrics with
  | None -> []
  | Some m ->
    List.filter_map
      (fun (core, pc) ->
        let n = counter_or_zero m (Printf.sprintf "core%d/spin/pc%d" core pc) in
        if n > 0 then Some (core, pc, n) else None)
      input.spin_pcs

let pct ~den v =
  if den = 0 then 0.0 else 100.0 *. float_of_int v /. float_of_int den

(* ------------------------------------------------------------------ *)
(* Text                                                               *)

let text input =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let active = active_cycles input in
  let agg = aggregate input in
  (* Column widths follow the data: a 64-core run has 2-digit core ids
     and 5-digit pcs, which the fixed widths of the first renderer
     silently misaligned. *)
  let digits n = String.length (string_of_int (max 0 n)) in
  let core_w = max 4 (digits (Array.length input.cpi - 1)) in
  let pc_w =
    List.fold_left
      (fun acc (site : fence_site) -> max acc (digits site.pc))
      (List.fold_left (fun acc (_, pc) -> max acc (digits pc)) 5 input.spin_pcs)
      input.fence_sites
  in
  p "cycle-accounting profile — %s [%s]  cores=%d  cycles=%d  active-cycles=%d%s\n"
    input.label input.config (Array.length input.cpi) input.cycles active
    (if input.timed_out then "  [TIMED OUT at cycle cap]" else "");
  p "\nCPI stack (all cores):\n";
  List.iter
    (fun leaf ->
      let v = Cpi.get agg leaf in
      p "  %-24s %12d  %5.1f%%\n" (Cpi.name leaf) v (pct ~den:active v))
    Cpi.leaves;
  p "  %-24s %12d  %5.1f%%  %s\n" "total" (Cpi.total agg)
    (pct ~den:active (Cpi.total agg))
    (if Cpi.total agg = active then "(= active cycles: ok)"
     else "(MISMATCH vs active cycles)");
  p "\nper-core: leaves sum / active cycles\n";
  Array.iteri
    (fun i t ->
      let sum = Cpi.total t in
      let active_i = if i < Array.length input.core_active then input.core_active.(i) else 0 in
      p "  core %-*d %12d / %-12d %s\n" (max 2 (digits (Array.length input.cpi - 1))) i sum active_i
        (if sum = active_i then "ok" else "MISMATCH"))
    input.cpi;
  (match site_rows input with
  | [] -> p "\nfence sites: (untraced run — no site attribution)\n"
  | rows ->
    p "\nfence sites:\n";
    p "  %-*s %-*s %-18s %9s %7s %8s %11s %9s %7s\n" core_w "core" pc_w "pc" "kind"
      "commits" "scoped" "stalls" "stall-cyc" "mean" "max>=";
    List.iter
      (fun r ->
        p "  %-*d %-*d %-18s %9d %7d %8d %11d %9.1f %7d\n" core_w r.site.core pc_w
          r.site.pc r.site.kind r.commits r.scoped_commits r.stall.episodes
          r.stall.stall_cycles r.stall.mean r.stall.max_floor)
      rows);
  (match cid_rows input with
  | [] -> ()
  | rows ->
    p "\nscopes (cid):\n";
    p "  %-6s %9s %8s %11s %9s\n" "cid" "commits" "stalls" "stall-cyc" "mean";
    List.iter
      (fun r ->
        p "  %-6d %9d %8d %11d %9.1f\n" r.cid r.cid_commits r.cid_stall.episodes
          r.cid_stall.stall_cycles r.cid_stall.mean)
      rows);
  (match spin_rows input with
  | [] -> ()
  | rows ->
    p "\nspin candidates (backward edges re-taken with no visible write):\n";
    p "  %-*s %-*s %12s\n" core_w "core" pc_w "pc" "iterations";
    List.iter (fun (core, pc, n) -> p "  %-*d %-*d %12d\n" core_w core pc_w pc n) rows);
  (match input.spin_ff with
  | None -> ()
  | Some (sleeps, skipped, wakes) ->
    p "\nspin fast-forward (engine, untraced run): sleeps=%d  cycles-skipped=%d  wakes=%d\n"
      sleeps skipped wakes);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cpi_json t =
  String.concat ","
    (List.map (fun leaf -> Printf.sprintf "\"%s\":%d" (Cpi.name leaf) (Cpi.get t leaf)) Cpi.leaves)

let json input =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let agg = aggregate input in
  p "{\"schema\":\"fence-scoping/profile/v1\"";
  p ",\"label\":\"%s\",\"config\":\"%s\"" (escape input.label) (escape input.config);
  p ",\"cores\":%d,\"cycles\":%d,\"timed_out\":%b,\"active_cycles\":%d"
    (Array.length input.cpi) input.cycles input.timed_out (active_cycles input);
  p ",\"cpi\":{%s}" (cpi_json agg);
  p ",\"cpi_sums_to_active\":%b" (Cpi.total agg = active_cycles input);
  p ",\"per_core\":[%s]"
    (String.concat ","
       (Array.to_list
          (Array.mapi
             (fun i t ->
               let active_i =
                 if i < Array.length input.core_active then input.core_active.(i) else 0
               in
               Printf.sprintf "{\"core\":%d,\"active\":%d,\"leaf_sum\":%d,\"cpi\":{%s}}" i
                 active_i (Cpi.total t) (cpi_json t))
             input.cpi)));
  p ",\"fence_sites\":[%s]"
    (String.concat ","
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"core\":%d,\"pc\":%d,\"kind\":\"%s\",\"commits\":%d,\"scoped_commits\":%d,\"stalls\":%d,\"stall_cycles\":%d,\"mean\":%.2f,\"max_floor\":%d}"
              r.site.core r.site.pc (escape r.site.kind) r.commits r.scoped_commits
              r.stall.episodes r.stall.stall_cycles r.stall.mean r.stall.max_floor)
          (site_rows input)));
  p ",\"scopes\":[%s]"
    (String.concat ","
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"cid\":%d,\"commits\":%d,\"stalls\":%d,\"stall_cycles\":%d,\"mean\":%.2f}"
              r.cid r.cid_commits r.cid_stall.episodes r.cid_stall.stall_cycles
              r.cid_stall.mean)
          (cid_rows input)));
  p ",\"spin_sites\":[%s]"
    (String.concat ","
       (List.map
          (fun (core, pc, n) ->
            Printf.sprintf "{\"core\":%d,\"pc\":%d,\"iterations\":%d}" core pc n)
          (spin_rows input)));
  (match input.spin_ff with
  | None -> p ",\"spin_ff\":null"
  | Some (sleeps, skipped, wakes) ->
    p ",\"spin_ff\":{\"sleeps\":%d,\"cycles_skipped\":%d,\"wakes\":%d}" sleeps skipped
      wakes);
  p "}";
  Buffer.contents b
