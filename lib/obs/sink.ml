let add_args buf args =
  List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) args

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let metric_line buf name (s : Metrics.snapshot) =
  match s with
  | Metrics.Counter_v v ->
    Printf.bprintf buf "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}\n" name v
  | Metrics.Histogram_v { count; sum; buckets } ->
    Printf.bprintf buf
      "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}\n"
      name count sum
      (String.concat ","
         (List.map (fun (floor, n) -> Printf.sprintf "[%d,%d]" floor n) buckets))
  | Metrics.Gauge_v { count; sum; min; max; last } ->
    Printf.bprintf buf
      "{\"metric\":\"%s\",\"type\":\"gauge\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"last\":%d}\n"
      name count sum min max last

let jsonl (r : Report.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"trace\":\"fscope\",\"cycles\":%d,\"cores\":%d,\"events\":%d,\"dropped\":%d,\"timed_out\":%b}\n"
    r.cycles r.cores (Report.events_count r) r.dropped r.timed_out;
  List.iter
    (fun (te : Event.timed) ->
      Printf.bprintf buf "{\"cycle\":%d,\"core\":%d,\"event\":\"%s\"" te.cycle te.core
        (Event.name te.event);
      add_args buf (Event.args te.event);
      Buffer.add_string buf "}\n")
    r.events;
  List.iter (fun (name, s) -> metric_line buf name s) (Metrics.snapshot r.metrics);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event (JSON array format)                              *)
(* ------------------------------------------------------------------ *)

(* Under --shard-domains N each simulated core belongs to domain
   (core mod N); giving every shard its own chrome process lays the
   trace out as one track per domain, which is how the sharded engine
   actually interleaves the work.  N = 1 keeps the legacy single
   "fscope" process byte-for-byte. *)
let chrome (r : Report.t) =
  let shards = max 1 r.shard_domains in
  let pid_of core = if shards = 1 then 0 else core mod shards in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  if shards = 1 then
    Printf.bprintf buf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"fscope\"}}"
  else
    for k = 0 to shards - 1 do
      Printf.bprintf buf
        "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"fscope shard %d\"}}"
        (if k = 0 then "" else ",\n")
        k k
    done;
  for core = 0 to r.cores - 1 do
    Printf.bprintf buf
      ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"core %d\"}}"
      (pid_of core) core core
  done;
  List.iter
    (fun (te : Event.timed) ->
      let name, ph =
        match Event.phase te.event with
        | `Begin -> ("fence_stall", "B")
        | `End -> ("fence_stall", "E")
        | `Instant -> (Event.name te.event, "i")
      in
      Printf.bprintf buf ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\"%s,\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{"
        name
        (Event.category te.event)
        ph
        (if ph = "i" then ",\"s\":\"t\"" else "")
        te.cycle (pid_of te.core) te.core;
      (match Event.args te.event with
      | [] -> ()
      | (k, v) :: rest ->
        Printf.bprintf buf "\"%s\":%s" k v;
        List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) rest);
      Buffer.add_string buf "}}")
    r.events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human summary                                                       *)
(* ------------------------------------------------------------------ *)

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* Nearest-rank percentile over the log2-bucket histogram, reported as
   the bucket lower bound (the histogram's native resolution). *)
let hist_percentile (h : Metrics.hist_snapshot) q =
  if h.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec go seen = function
      | [] -> 0
      | (floor, n) :: rest ->
        let seen = seen + n in
        if seen >= rank then floor else go seen rest
    in
    go 0 h.buckets
  end

let hist_max_floor (h : Metrics.hist_snapshot) =
  List.fold_left (fun acc (floor, _) -> max acc floor) 0 h.buckets

let summary (r : Report.t) =
  let buf = Buffer.create 1024 in
  let c name = Report.counter r name in
  let core_c i field = c (Printf.sprintf "core%d/%s" i field) in
  Printf.bprintf buf "fscope trace summary — %d cores, %d cycles (%s)\n" r.cores r.cycles
    (if r.timed_out then "TIMED OUT" else "completed");
  Printf.bprintf buf "events: %d captured, %d dropped\n" (Report.events_count r)
    r.dropped;
  if r.dropped > 0 then
    Printf.bprintf buf
      "warning: the ring overwrote %d events — event-derived counts below are \
       partial; rerun with a larger --ring-capacity\n"
      r.dropped;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "%-5s %10s %10s %12s %7s %9s %10s %9s\n" "core" "active"
    "committed" "fence-stall" "share" "rob-load" "rob-store" "sb-drain";
  for i = 0 to r.cores - 1 do
    Printf.bprintf buf "%-5d %10d %10d %12d %6.1f%% %9d %10d %9d\n" i
      (core_c i "active_cycles") (core_c i "committed") (core_c i "fence_stall_cycles")
      (pct (core_c i "fence_stall_cycles") (core_c i "active_cycles"))
      (core_c i "stall_rob_load") (core_c i "stall_rob_store") (core_c i "stall_sb")
  done;
  let sum field =
    let t = ref 0 in
    for i = 0 to r.cores - 1 do
      t := !t + core_c i field
    done;
    !t
  in
  Printf.bprintf buf "%-5s %10d %10d %12d %6.1f%% %9d %10d %9d\n" "all"
    (sum "active_cycles") (sum "committed") (c "total/fence_stall_cycles")
    (pct (c "total/fence_stall_cycles") (sum "active_cycles"))
    (sum "stall_rob_load") (sum "stall_rob_store") (sum "stall_sb");
  Printf.bprintf buf "\ntotal fence-stall cycles: %d (%.1f%% of %d active)\n"
    (c "total/fence_stall_cycles")
    (pct (c "total/fence_stall_cycles") (sum "active_cycles"))
    (sum "active_cycles");
  (match
     List.assoc_opt "fence/stall_cycles" (Metrics.snapshot r.metrics)
   with
  | Some (Metrics.Histogram_v { count; sum; buckets }) when count > 0 ->
    Printf.bprintf buf "fence stalls: %d completed, %d cycles total, %.1f avg\n" count sum
      (float_of_int sum /. float_of_int count);
    Printf.bprintf buf "stall-length histogram (cycles >=): %s\n"
      (String.concat " "
         (List.map (fun (floor, n) -> Printf.sprintf "%d:%d" floor n) buckets))
  | _ -> ());
  Printf.bprintf buf
    "caches: L1 %d hits / %d misses, L2 %d hits / %d misses, %d invalidations, %d c2c\n"
    (c "mem/l1_hits") (c "mem/l1_misses") (c "mem/l2_hits") (c "mem/l2_misses")
    (c "mem/invalidations") (c "mem/c2c_transfers");
  let count_events p =
    List.fold_left
      (fun acc (te : Event.timed) -> if p te.event then acc + 1 else acc)
      0 r.events
  in
  let pushes = count_events (function Event.Scope_push _ -> true | _ -> false) in
  let pops = count_events (function Event.Scope_pop -> true | _ -> false) in
  if pushes > 0 || pops > 0 then
    Printf.bprintf buf "scopes: %d pushes, %d pops%s\n" pushes pops
      (if r.dropped > 0 then " (ring dropped events; counts partial)" else "");
  let gauges =
    List.filter_map
      (fun (name, s) ->
        match s with
        | Metrics.Histogram_v h
          when String.length name > 6 && String.sub name 0 6 = "gauge/" ->
          Some (name, h)
        | _ -> None)
      (Metrics.snapshot r.metrics)
  in
  if gauges <> [] then begin
    Printf.bprintf buf "\nworkload gauges (occupancy transitions; log2-bucket floors):\n";
    Printf.bprintf buf "%-44s %8s %8s %5s %5s %5s %5s\n" "gauge" "samples" "mean" "p50"
      "p90" "p99" "max";
    List.iter
      (fun (name, (h : Metrics.hist_snapshot)) ->
        Printf.bprintf buf "%-44s %8d %8.2f %5d %5d %5d %5d\n" name h.count
          (if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count)
          (hist_percentile h 0.50) (hist_percentile h 0.90) (hist_percentile h 0.99)
          (hist_max_floor h)
      )
      gauges
  end;
  Buffer.contents buf
