let add_args buf args =
  List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) args

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let metric_line buf name (s : Metrics.snapshot) =
  match s with
  | Metrics.Counter_v v ->
    Printf.bprintf buf "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}\n" name v
  | Metrics.Histogram_v { count; sum; buckets } ->
    Printf.bprintf buf
      "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}\n"
      name count sum
      (String.concat ","
         (List.map (fun (floor, n) -> Printf.sprintf "[%d,%d]" floor n) buckets))
  | Metrics.Gauge_v { count; sum; min; max; last } ->
    Printf.bprintf buf
      "{\"metric\":\"%s\",\"type\":\"gauge\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"last\":%d}\n"
      name count sum min max last

let jsonl (r : Report.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"trace\":\"fscope\",\"cycles\":%d,\"cores\":%d,\"events\":%d,\"dropped\":%d,\"timed_out\":%b}\n"
    r.cycles r.cores (Report.events_count r) r.dropped r.timed_out;
  List.iter
    (fun (te : Event.timed) ->
      Printf.bprintf buf "{\"cycle\":%d,\"core\":%d,\"event\":\"%s\"" te.cycle te.core
        (Event.name te.event);
      add_args buf (Event.args te.event);
      Buffer.add_string buf "}\n")
    r.events;
  List.iter (fun (name, s) -> metric_line buf name s) (Metrics.snapshot r.metrics);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event (JSON array format)                              *)
(* ------------------------------------------------------------------ *)

let chrome (r : Report.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  Printf.bprintf buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"fscope\"}}";
  for core = 0 to r.cores - 1 do
    Printf.bprintf buf
      ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"core %d\"}}"
      core core
  done;
  List.iter
    (fun (te : Event.timed) ->
      let name, ph =
        match Event.phase te.event with
        | `Begin -> ("fence_stall", "B")
        | `End -> ("fence_stall", "E")
        | `Instant -> (Event.name te.event, "i")
      in
      Printf.bprintf buf ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\"%s,\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{"
        name
        (Event.category te.event)
        ph
        (if ph = "i" then ",\"s\":\"t\"" else "")
        te.cycle te.core;
      (match Event.args te.event with
      | [] -> ()
      | (k, v) :: rest ->
        Printf.bprintf buf "\"%s\":%s" k v;
        List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) rest);
      Buffer.add_string buf "}}")
    r.events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human summary                                                       *)
(* ------------------------------------------------------------------ *)

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let summary (r : Report.t) =
  let buf = Buffer.create 1024 in
  let c name = Report.counter r name in
  let core_c i field = c (Printf.sprintf "core%d/%s" i field) in
  Printf.bprintf buf "fscope trace summary — %d cores, %d cycles (%s)\n" r.cores r.cycles
    (if r.timed_out then "TIMED OUT" else "completed");
  Printf.bprintf buf "events: %d captured, %d dropped\n\n" (Report.events_count r)
    r.dropped;
  Printf.bprintf buf "%-5s %10s %10s %12s %7s %9s %10s %9s\n" "core" "active"
    "committed" "fence-stall" "share" "rob-load" "rob-store" "sb-drain";
  for i = 0 to r.cores - 1 do
    Printf.bprintf buf "%-5d %10d %10d %12d %6.1f%% %9d %10d %9d\n" i
      (core_c i "active_cycles") (core_c i "committed") (core_c i "fence_stall_cycles")
      (pct (core_c i "fence_stall_cycles") (core_c i "active_cycles"))
      (core_c i "stall_rob_load") (core_c i "stall_rob_store") (core_c i "stall_sb")
  done;
  let sum field =
    let t = ref 0 in
    for i = 0 to r.cores - 1 do
      t := !t + core_c i field
    done;
    !t
  in
  Printf.bprintf buf "%-5s %10d %10d %12d %6.1f%% %9d %10d %9d\n" "all"
    (sum "active_cycles") (sum "committed") (c "total/fence_stall_cycles")
    (pct (c "total/fence_stall_cycles") (sum "active_cycles"))
    (sum "stall_rob_load") (sum "stall_rob_store") (sum "stall_sb");
  Printf.bprintf buf "\ntotal fence-stall cycles: %d (%.1f%% of %d active)\n"
    (c "total/fence_stall_cycles")
    (pct (c "total/fence_stall_cycles") (sum "active_cycles"))
    (sum "active_cycles");
  (match
     List.assoc_opt "fence/stall_cycles" (Metrics.snapshot r.metrics)
   with
  | Some (Metrics.Histogram_v { count; sum; buckets }) when count > 0 ->
    Printf.bprintf buf "fence stalls: %d completed, %d cycles total, %.1f avg\n" count sum
      (float_of_int sum /. float_of_int count);
    Printf.bprintf buf "stall-length histogram (cycles >=): %s\n"
      (String.concat " "
         (List.map (fun (floor, n) -> Printf.sprintf "%d:%d" floor n) buckets))
  | _ -> ());
  Printf.bprintf buf
    "caches: L1 %d hits / %d misses, L2 %d hits / %d misses, %d invalidations, %d c2c\n"
    (c "mem/l1_hits") (c "mem/l1_misses") (c "mem/l2_hits") (c "mem/l2_misses")
    (c "mem/invalidations") (c "mem/c2c_transfers");
  let count_events p =
    List.fold_left
      (fun acc (te : Event.timed) -> if p te.event then acc + 1 else acc)
      0 r.events
  in
  let pushes = count_events (function Event.Scope_push _ -> true | _ -> false) in
  let pops = count_events (function Event.Scope_pop -> true | _ -> false) in
  if pushes > 0 || pops > 0 then
    Printf.bprintf buf "scopes: %d pushes, %d pops%s\n" pushes pops
      (if r.dropped > 0 then " (ring dropped events; counts partial)" else "");
  Buffer.contents buf
