(** Render a {!Report} for consumption.

    Three formats:

    - {!jsonl}: one JSON object per line — a header line, every
      retained event, then every metric.  Grep/jq-friendly; the golden
      format the test suite pins down.
    - {!chrome}: a valid Chrome [trace_event] JSON array (the
      "JSON Array Format"), loadable in [chrome://tracing] and
      Perfetto.  Fence stalls render as duration slices (ph B/E) per
      core; everything else as instant events; cycle = microsecond.
    - {!summary}: a compact human-readable stall/metrics digest whose
      fence-stall totals are taken from the snapshotted legacy stats,
      so they match [Machine.fence_stall_cycles] exactly even when the
      ring buffers dropped events. *)

val jsonl : Report.t -> string
val chrome : Report.t -> string
val summary : Report.t -> string
