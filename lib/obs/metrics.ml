type counter = { mutable count : int }

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  buckets : int array;  (* index i >= 1 covers [2^(i-1), 2^i); index 0 is value 0 *)
}

type gauge = {
  mutable g_count : int;
  mutable g_sum : int;
  mutable g_min : int;
  mutable g_max : int;
  mutable g_last : int;
}

type metric =
  | Counter of counter
  | Histogram of histogram
  | Gauge of gauge

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let register t name make wrong =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match wrong m with
    | Some h -> h
    | None -> invalid_arg (Printf.sprintf "Metrics: %s already bound to another kind" name))
  | None ->
    let m, h = make () in
    Hashtbl.add t.tbl name m;
    h

let counter t name =
  register t name
    (fun () ->
      let c = { count = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | Histogram _ | Gauge _ -> None)

let incr ?(by = 1) c = c.count <- c.count + by
let set_counter c v = c.count <- v
let counter_value c = c.count

(* 63 buckets cover every non-negative OCaml int. *)
let bucket_count = 63

let histogram t name =
  register t name
    (fun () ->
      let h = { h_count = 0; h_sum = 0; buckets = Array.make bucket_count 0 } in
      (Histogram h, h))
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    !i (* values in [2^(i-1), 2^i) have exactly i significant bits *)
  end

let bucket_floor i = if i = 0 then 0 else 1 lsl (i - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  h.buckets.(min (bucket_index v) (bucket_count - 1)) <-
    h.buckets.(min (bucket_index v) (bucket_count - 1)) + 1

let gauge t name =
  register t name
    (fun () ->
      let g = { g_count = 0; g_sum = 0; g_min = max_int; g_max = min_int; g_last = 0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let gauge_observe g v =
  g.g_count <- g.g_count + 1;
  g.g_sum <- g.g_sum + v;
  if v < g.g_min then g.g_min <- v;
  if v > g.g_max then g.g_max <- v;
  g.g_last <- v

let gauge_observe_n g v ~times =
  if times > 0 then begin
    g.g_count <- g.g_count + times;
    g.g_sum <- g.g_sum + (times * v);
    if v < g.g_min then g.g_min <- v;
    if v > g.g_max then g.g_max <- v;
    g.g_last <- v
  end

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;
}

type gauge_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  last : int;
}

type snapshot =
  | Counter_v of int
  | Histogram_v of hist_snapshot
  | Gauge_v of gauge_snapshot

let hist_snapshot_of (h : histogram) : hist_snapshot =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (bucket_floor i, h.buckets.(i)) :: !buckets
  done;
  { count = h.h_count; sum = h.h_sum; buckets = !buckets }

let gauge_snapshot_of (g : gauge) : gauge_snapshot =
  {
    count = g.g_count;
    sum = g.g_sum;
    min = (if g.g_count = 0 then 0 else g.g_min);
    max = (if g.g_count = 0 then 0 else g.g_max);
    last = g.g_last;
  }

let snapshot_of = function
  | Counter c -> Counter_v c.count
  | Histogram h -> Histogram_v (hist_snapshot_of h)
  | Gauge g -> Gauge_v (gauge_snapshot_of g)

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, snapshot_of m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> Some c.count
  | Some (Histogram _ | Gauge _) | None -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> Some (hist_snapshot_of h)
  | Some (Counter _ | Gauge _) | None -> None

let find_gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> Some (gauge_snapshot_of g)
  | Some (Counter _ | Histogram _) | None -> None
