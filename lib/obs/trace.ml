type t = {
  live : bool;
  mutable current : int;
  rings : Event.timed Ring.t array;
  registry : Metrics.t;
  keep : Event.t -> bool;
}

let default_ring_capacity = 65536
let keep_all (_ : Event.t) = true

let create ?(ring_capacity = default_ring_capacity) ?(keep = keep_all) ~cores () =
  if cores <= 0 then invalid_arg "Trace.create: need at least one core";
  {
    live = true;
    current = 0;
    rings = Array.init cores (fun _ -> Ring.create ~capacity:ring_capacity);
    registry = Metrics.create ();
    keep;
  }

let null =
  { live = false; current = 0; rings = [||]; registry = Metrics.create (); keep = keep_all }

let on t = t.live
let set_now t n = if t.live then t.current <- n
let now t = t.current
let cores t = Array.length t.rings
let metrics t = t.registry

let emit t ~core ev =
  if t.live then begin
    if core < 0 || core >= Array.length t.rings then
      invalid_arg "Trace.emit: core out of range";
    if t.keep ev then
      Ring.push t.rings.(core) { Event.cycle = t.current; core; event = ev }
  end

let events t =
  let per_core =
    Array.to_list (Array.map Ring.to_list t.rings) |> List.concat
  in
  (* Per-core lists are cycle-ordered and concatenated core-major, so a
     stable sort by (cycle, core) leaves same-key events in per-core
     emission order. *)
  List.stable_sort
    (fun (a : Event.timed) (b : Event.timed) ->
      match compare a.cycle b.cycle with 0 -> compare a.core b.core | c -> c)
    per_core

let dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
