(** The cycle-accounting (CPI-stack) taxonomy.

    Every active core-cycle is charged to exactly one [leaf]: per core,
    the leaves sum to the core's active cycles — no cycle is
    unattributed or double-charged.  The classification is chosen so it
    only depends on state that cannot change while the core makes no
    progress; the fast-forwarding engine exploits that to charge a
    whole frozen span with one [charge_n] (see
    [Core.account_stall_span]).

    Leaf precedence for one cycle (first match wins):
    + the commit head was blocked by an unsatisfied fence
      ([Fence_wait], split by the first matching cause — an incomplete
      in-ROB load/CAS, then an uncommitted store, then store-buffer
      drain — and by whether the fence carried an S-Fence scope mask);
    + the commit head was a completed store facing a full store buffer
      ([Sb_full]);
    + at least one instruction committed ([Spin_candidate] when the
      core is inside a detected spin loop, [Commit] otherwise);
    + nothing committed: an empty ROB is [Branch_flush] while the
      front end waits out a mispredict penalty and [Frontend_empty]
      otherwise; a head load/CAS in flight is charged to the level
      that serves it ([Mem_l1] / [Mem_l2] / [Mem_main]); everything
      else — operand dependences, disambiguation, forwarded loads,
      unresolved branches — is [Exec_dep]. *)

type fence_cause =
  | Rob_load  (** an incomplete in-scope load or CAS still in the ROB *)
  | Rob_store  (** an in-scope store not yet drained to the store buffer *)
  | Sb_drain  (** only the store buffer's in-scope entries remain *)

type fence_scope =
  | Scoped  (** the fence waited on an FSB mask (S-Fence hit) *)
  | Unscoped  (** the fence waited globally (traditional, or overflow) *)

type leaf =
  | Commit
  | Spin_candidate
  | Frontend_empty
  | Branch_flush
  | Exec_dep
  | Mem_l1
  | Mem_l2
  | Mem_main
  | Sb_full
  | Fence_wait of fence_cause * fence_scope

val leaf_count : int
val leaves : leaf list
(** Every leaf once, in display order. *)

val index : leaf -> int
(** Dense index in [0, leaf_count); the order of {!leaves}. *)

val name : leaf -> string
(** Stable snake_case name ([commit], [fence_rob_load_scoped], ...)
    used for registry counters and JSON keys. *)

val cause_name : fence_cause -> string

type t
(** One core's table: cycles charged per leaf. *)

val create : unit -> t
val copy : t -> t
val charge : t -> leaf -> unit
val charge_n : t -> leaf -> times:int -> unit
(** Charge [times] cycles at once (no-op when [times <= 0]). *)

val get : t -> leaf -> int
val total : t -> int
(** Sum over all leaves — equals the core's active cycles. *)

val fence_cycles : t -> int
(** Sum over the six [Fence_wait] leaves (the legacy
    [fence_stall_cycles]). *)

val fence_cause_cycles : t -> fence_cause -> int
val fence_scope_cycles : t -> fence_scope -> int
val accumulate : into:t -> t -> unit
val equal : t -> t -> bool

val to_array : t -> int array
(** The per-leaf cycle counts in {!leaves} order (checkpointing). *)

val restore : t -> int array -> unit
(** Overwrite the table from an array in {!leaves} order; raises
    [Invalid_argument] on an arity mismatch. *)
