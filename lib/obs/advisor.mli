(** Profile-guided fence advice: ranks static fence sites by the
    cycles expected back if their fence became scoped, and predicts
    the whole-run speedup of scoping them all.

    A pure analysis pass over {!Profile.input} data — it never runs
    anything.  Each core's unscoped fence-wait CPI cycles are split
    across that core's sites in proportion to observed per-site stall
    cycles; the residual cost a site still pays once scoped is taken
    from a scoped run of the same program when the caller supplies
    one (static sites align because the program image is identical).
    The whole-run prediction walks the per-core critical path:
    recovered cycles on a non-critical core don't shorten the run. *)

type confidence = High | Medium | Low

val confidence_name : confidence -> string

type advice = {
  core : int;
  pc : int;
  kind : string;  (** rendered fence kind at the site *)
  commits : int;
  episodes : int;  (** completed stall episodes observed at the site *)
  site_stall : int;  (** observed stall cycles at the site, subject run *)
  stall_share : float;  (** share of all observed site stalls, in [0,1] *)
  attributed : float;  (** unscoped fence-wait cycles attributed to the site *)
  residual : float;  (** modeled residual cost once scoped *)
  recovery : float;  (** [max 0 (attributed - residual)] *)
  confidence : confidence;
}

type t = {
  label : string;
  config : string;
  cycles : int;
  cores : int;
  modeled_residuals : bool;
      (** residuals taken from a scoped run; without one every residual
          is 0 and recoveries are upper bounds *)
  advice : advice list;  (** ranked by recovery, descending *)
  total_unscoped : int;
  total_recovery : float;
  predicted_speedup : float;
}

val analyze : ?scoped:Profile.input -> Profile.input -> t
(** Rank [input]'s fence sites.  [input] must come from a traced run
    (its [metrics] must be present) — raises [Failure] otherwise.
    [scoped] supplies the residual model; it should profile the same
    program under the scoped-fence configuration. *)

val predicted_speedup : ?scoped:Profile.input -> Profile.input -> float

val paper_speedups : (string * float) list
(** Per-workload S-Fence speedups from the paper's figures (Fig. 12
    peaks for the harness benchmarks, Fig. 13 whole-app gains for the
    rest), as calibrated in EXPERIMENTS.md.  Descending. *)

val ordering_violations :
  min_gap:float -> (string * float) list -> (string * float) list -> (string * string) list
(** Pairs on which two (name, score) lists disagree about order, where
    both lists separate the pair by more than [min_gap].  Pairs closer
    than the gap in either list are near-ties and count as agreement;
    names missing from the second list are skipped. *)

val text : t -> string
(** Ranked advice table with the prediction headline. *)

val json : t -> string
(** The same data as one JSON object
    (schema ["fence-scoping/advice/v1"]). *)
