type 'a t = {
  capacity : int;
  data : 'a option array;
  mutable start : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { capacity; data = Array.make capacity None; start = 0; len = 0; dropped = 0 }

let push t x =
  if t.len = t.capacity then begin
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.data.((t.start + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end

let length t = t.len
let capacity t = t.capacity
let dropped t = t.dropped

let iter f t =
  for i = 0 to t.len - 1 do
    match t.data.((t.start + i) mod t.capacity) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
