(** The frozen observability result of one machine run.

    Built by the machine after the cycle loop from the live trace: the
    merged event stream, the metrics registry (already including the
    snapshot of every legacy per-core / cache stat — see
    {!Metrics}) and the run's shape.  This is what
    [Machine.result.obs] carries and what every {!Sink} renders. *)

type t = {
  cycles : int;
  timed_out : bool;
  cores : int;
  shard_domains : int;
      (** domain count the run's machine config asked for; sinks use it
          to lay one chrome track ("process") per shard *)
  events : Event.timed list;  (** merged, (cycle, core)-ordered *)
  dropped : int;  (** events lost to ring-buffer overwrites *)
  metrics : Metrics.t;
}

val of_trace : cycles:int -> timed_out:bool -> ?shard_domains:int -> Trace.t -> t

val events_count : t -> int

val counter : t -> string -> int
(** Registry counter by name, 0 if absent — convenience for sinks and
    tests reading the snapshot namespace. *)
