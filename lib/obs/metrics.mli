(** The metrics registry: named counters, log2-bucketed histograms and
    summary gauges.

    One registry per trace.  Handles ([counter], [histogram], [gauge])
    are registered by name on first use and are plain mutable cells,
    so a hot emission site resolves its name once at creation time and
    pays a single memory write per update afterwards.

    This registry subsumes the simulator's scattered [stats] records:
    at the end of a traced run the machine snapshots every legacy
    per-core and cache stat into it under stable names
    ([core<i>/fence_stall_cycles], [mem/l1_hits], [total/...]), so
    sinks and tests read one uniform namespace. *)

type t

type counter
type histogram
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Register (or fetch) the counter called [name].  Raises
    [Invalid_argument] if the name is already bound to a different
    metric kind. *)

val incr : ?by:int -> counter -> unit
val set_counter : counter -> int -> unit
val counter_value : counter -> int

val histogram : t -> string -> histogram
(** Histogram over non-negative ints with power-of-two buckets:
    bucket 0 holds value 0, bucket [i >= 1] holds values in
    [[2{^i-1}, 2{^i})]. *)

val observe : histogram -> int -> unit

val gauge : t -> string -> gauge
(** A per-cycle sampled quantity, kept as summary statistics
    (count / sum / min / max / last) rather than a full series. *)

val gauge_observe : gauge -> int -> unit

val gauge_observe_n : gauge -> int -> times:int -> unit
(** [gauge_observe_n g v ~times] is observationally identical to
    calling [gauge_observe g v] [times] times: the fast-forwarding
    engine uses it to account a frozen gauge over a skipped span of
    cycles in O(1).  No-op when [times <= 0]. *)

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;  (** (bucket lower bound, count), non-empty buckets only *)
}

type gauge_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  last : int;
}

type snapshot =
  | Counter_v of int
  | Histogram_v of hist_snapshot
  | Gauge_v of gauge_snapshot

val snapshot : t -> (string * snapshot) list
(** Every registered metric, sorted by name (deterministic output for
    sinks and golden tests). *)

val find_counter : t -> string -> int option
(** The current value of a registered counter, if any. *)

val find_histogram : t -> string -> hist_snapshot option
(** Summary of a registered histogram, if any ([None] when the name is
    unbound or bound to another kind, mirroring {!find_counter}). *)

val find_gauge : t -> string -> gauge_snapshot option
(** Summary of a registered gauge, if any. *)
