(** The event taxonomy of the observability layer.

    Every interesting micro-architectural moment the simulator can
    report is one constructor of {!t}; an emission site packages it
    with the core and cycle it happened on ({!timed}).  The taxonomy
    deliberately mirrors the paper's cost model: fence stalls (the
    quantity Figs. 12-16 decompose), ROB flow, store-buffer flow, FSS
    scope activity, cache outcomes and CAS outcomes.

    Events are data only — rendering lives in {!Sink} — but this
    module owns the stable wire names ([name], [args], [category]) so
    every sink agrees on them. *)

type instr_class =
  | Load
  | Store
  | Cas
  | Fence
  | Branch
  | Jump
  | Alu  (** Li / Tid / ALU proper *)
  | Other  (** Nop, Fs_start, Fs_end, Halt *)

type mem_outcome =
  | L1_hit
  | L2_hit  (** L1 miss served by the L2 *)
  | L2_miss  (** served by memory *)

type t =
  | Fence_stall_begin of { pc : int; global : bool }
      (** the commit-head fence first failed to retire; [global] is
          true when it waits on every prior access (traditional or
          conservative fall-back), false when scoped to an FSB mask *)
  | Fence_stall_end of { pc : int; cycles : int }
      (** the same fence retired after [cycles] blocked cycles *)
  | Rob_dispatch of { pc : int; cls : instr_class }
  | Rob_commit of { pc : int; cls : instr_class }
  | Sb_insert of { addr : int }
  | Sb_drain of { addr : int; value : int }
  | Scope_push of { column : int option }
      (** FS_START entered a scope; [None] = overflow/counter push *)
  | Scope_pop  (** FS_END left a scope *)
  | Mem_access of { addr : int; write : bool; outcome : mem_outcome }
  | Cas_result of { addr : int; success : bool }

type timed = {
  cycle : int;
  core : int;
  event : t;
}

val name : t -> string
(** Stable snake_case wire name, e.g. ["fence_stall_begin"]. *)

val category : t -> string
(** Event family: ["fence"], ["rob"], ["sb"], ["scope"], ["mem"] or
    ["cas"] — the Chrome sink's [cat] field. *)

val phase : t -> [ `Begin | `End | `Instant ]
(** How the Chrome sink renders it: a duration-begin, duration-end, or
    instant event. *)

val args : t -> (string * string) list
(** Payload fields with values pre-rendered as JSON atoms (numbers,
    [true]/[false], [null]), so sinks can splice them verbatim. *)

val instr_class_name : instr_class -> string
val mem_outcome_name : mem_outcome -> string
