(** A fixed-capacity ring buffer.

    Each core owns one; pushing into a full ring overwrites the oldest
    entry and counts the loss, so a long run degrades to "the most
    recent [capacity] events" instead of unbounded memory — the usual
    flight-recorder behaviour. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val dropped : 'a t -> int
(** How many entries have been overwritten so far. *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)
