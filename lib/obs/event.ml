type instr_class =
  | Load
  | Store
  | Cas
  | Fence
  | Branch
  | Jump
  | Alu
  | Other

type mem_outcome =
  | L1_hit
  | L2_hit
  | L2_miss

type t =
  | Fence_stall_begin of { pc : int; global : bool }
  | Fence_stall_end of { pc : int; cycles : int }
  | Rob_dispatch of { pc : int; cls : instr_class }
  | Rob_commit of { pc : int; cls : instr_class }
  | Sb_insert of { addr : int }
  | Sb_drain of { addr : int; value : int }
  | Scope_push of { column : int option }
  | Scope_pop
  | Mem_access of { addr : int; write : bool; outcome : mem_outcome }
  | Cas_result of { addr : int; success : bool }

type timed = {
  cycle : int;
  core : int;
  event : t;
}

let instr_class_name = function
  | Load -> "load"
  | Store -> "store"
  | Cas -> "cas"
  | Fence -> "fence"
  | Branch -> "branch"
  | Jump -> "jump"
  | Alu -> "alu"
  | Other -> "other"

let mem_outcome_name = function
  | L1_hit -> "l1_hit"
  | L2_hit -> "l2_hit"
  | L2_miss -> "l2_miss"

let name = function
  | Fence_stall_begin _ -> "fence_stall_begin"
  | Fence_stall_end _ -> "fence_stall_end"
  | Rob_dispatch _ -> "rob_dispatch"
  | Rob_commit _ -> "rob_commit"
  | Sb_insert _ -> "sb_insert"
  | Sb_drain _ -> "sb_drain"
  | Scope_push _ -> "scope_push"
  | Scope_pop -> "scope_pop"
  | Mem_access _ -> "mem_access"
  | Cas_result _ -> "cas_result"

let category = function
  | Fence_stall_begin _ | Fence_stall_end _ -> "fence"
  | Rob_dispatch _ | Rob_commit _ -> "rob"
  | Sb_insert _ | Sb_drain _ -> "sb"
  | Scope_push _ | Scope_pop -> "scope"
  | Mem_access _ -> "mem"
  | Cas_result _ -> "cas"

let phase = function
  | Fence_stall_begin _ -> `Begin
  | Fence_stall_end _ -> `End
  | Rob_dispatch _ | Rob_commit _ | Sb_insert _ | Sb_drain _ | Scope_push _
  | Scope_pop | Mem_access _ | Cas_result _ ->
    `Instant

let quoted s = "\"" ^ s ^ "\""
let bool b = if b then "true" else "false"

let args = function
  | Fence_stall_begin { pc; global } ->
    [ ("pc", string_of_int pc); ("global", bool global) ]
  | Fence_stall_end { pc; cycles } ->
    [ ("pc", string_of_int pc); ("cycles", string_of_int cycles) ]
  | Rob_dispatch { pc; cls } | Rob_commit { pc; cls } ->
    [ ("pc", string_of_int pc); ("cls", quoted (instr_class_name cls)) ]
  | Sb_insert { addr } -> [ ("addr", string_of_int addr) ]
  | Sb_drain { addr; value } ->
    [ ("addr", string_of_int addr); ("value", string_of_int value) ]
  | Scope_push { column } ->
    [ ("column", match column with Some c -> string_of_int c | None -> "null") ]
  | Scope_pop -> []
  | Mem_access { addr; write; outcome } ->
    [
      ("addr", string_of_int addr);
      ("write", bool write);
      ("outcome", quoted (mem_outcome_name outcome));
    ]
  | Cas_result { addr; success } ->
    [ ("addr", string_of_int addr); ("success", bool success) ]
