(* The CPI-stack taxonomy: a fixed set of leaves, a flat int-array
   table indexed by leaf, and O(1) bulk charging so the fast-forward
   engine can account a frozen span in one call. *)

type fence_cause =
  | Rob_load
  | Rob_store
  | Sb_drain

type fence_scope =
  | Scoped
  | Unscoped

type leaf =
  | Commit
  | Spin_candidate
  | Frontend_empty
  | Branch_flush
  | Exec_dep
  | Mem_l1
  | Mem_l2
  | Mem_main
  | Sb_full
  | Fence_wait of fence_cause * fence_scope

let cause_index = function Rob_load -> 0 | Rob_store -> 1 | Sb_drain -> 2

let index = function
  | Commit -> 0
  | Spin_candidate -> 1
  | Frontend_empty -> 2
  | Branch_flush -> 3
  | Exec_dep -> 4
  | Mem_l1 -> 5
  | Mem_l2 -> 6
  | Mem_main -> 7
  | Sb_full -> 8
  | Fence_wait (cause, scope) ->
    9 + (2 * cause_index cause) + (match scope with Scoped -> 0 | Unscoped -> 1)

let leaf_count = 15

let leaves =
  [
    Commit;
    Spin_candidate;
    Frontend_empty;
    Branch_flush;
    Exec_dep;
    Mem_l1;
    Mem_l2;
    Mem_main;
    Sb_full;
    Fence_wait (Rob_load, Scoped);
    Fence_wait (Rob_load, Unscoped);
    Fence_wait (Rob_store, Scoped);
    Fence_wait (Rob_store, Unscoped);
    Fence_wait (Sb_drain, Scoped);
    Fence_wait (Sb_drain, Unscoped);
  ]

let cause_name = function
  | Rob_load -> "rob_load"
  | Rob_store -> "rob_store"
  | Sb_drain -> "sb"

let name = function
  | Commit -> "commit"
  | Spin_candidate -> "spin_candidate"
  | Frontend_empty -> "frontend_empty"
  | Branch_flush -> "branch_flush"
  | Exec_dep -> "exec_dep"
  | Mem_l1 -> "mem_l1"
  | Mem_l2 -> "mem_l2"
  | Mem_main -> "mem_main"
  | Sb_full -> "sb_full"
  | Fence_wait (cause, scope) ->
    Printf.sprintf "fence_%s_%s" (cause_name cause)
      (match scope with Scoped -> "scoped" | Unscoped -> "unscoped")

type t = int array

let create () = Array.make leaf_count 0
let copy (t : t) = Array.copy t
let charge (t : t) leaf = t.(index leaf) <- t.(index leaf) + 1

let charge_n (t : t) leaf ~times =
  if times > 0 then t.(index leaf) <- t.(index leaf) + times

let get (t : t) leaf = t.(index leaf)
let total (t : t) = Array.fold_left ( + ) 0 t

let fence_cycles (t : t) =
  List.fold_left
    (fun acc leaf -> match leaf with Fence_wait _ -> acc + get t leaf | _ -> acc)
    0 leaves

let fence_cause_cycles (t : t) cause =
  get t (Fence_wait (cause, Scoped)) + get t (Fence_wait (cause, Unscoped))

let fence_scope_cycles (t : t) scope =
  List.fold_left
    (fun acc cause -> acc + get t (Fence_wait (cause, scope)))
    0
    [ Rob_load; Rob_store; Sb_drain ]

let accumulate ~into (t : t) =
  Array.iteri (fun i v -> into.(i) <- into.(i) + v) t

let equal (a : t) (b : t) = a = b

let to_array (t : t) = Array.copy t

let restore (t : t) (src : int array) =
  if Array.length src <> leaf_count then invalid_arg "Cpi.restore: wrong arity";
  Array.blit src 0 t 0 leaf_count
