type t = {
  cycles : int;
  timed_out : bool;
  cores : int;
  shard_domains : int;
  events : Event.timed list;
  dropped : int;
  metrics : Metrics.t;
}

let of_trace ~cycles ~timed_out ?(shard_domains = 1) trace =
  {
    cycles;
    timed_out;
    shard_domains;
    cores = Trace.cores trace;
    events = Trace.events trace;
    dropped = Trace.dropped trace;
    metrics = Trace.metrics trace;
  }

let events_count t = List.length t.events

let counter t name =
  match Metrics.find_counter t.metrics name with Some v -> v | None -> 0
