type t = {
  cycles : int;
  timed_out : bool;
  cores : int;
  events : Event.timed list;
  dropped : int;
  metrics : Metrics.t;
}

let of_trace ~cycles ~timed_out trace =
  {
    cycles;
    timed_out;
    cores = Trace.cores trace;
    events = Trace.events trace;
    dropped = Trace.dropped trace;
    metrics = Trace.metrics trace;
  }

let events_count t = List.length t.events

let counter t name =
  match Metrics.find_counter t.metrics name with Some v -> v | None -> 0
