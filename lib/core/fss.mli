(** The fence scope stack (FSS).

    Records the FSB columns of the nested scopes currently being
    decoded; the outermost scope is at the bottom, the scope in which
    instructions are currently decoded at the top (paper §IV-A.3).
    The stack has a fixed hardware capacity; overflow is handled by
    {!Scope_unit} with the paper's counter mechanism, so pushing onto a
    full stack here is a programming error. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val is_full : t -> bool
val is_empty : t -> bool
val depth : t -> int

val push : t -> int -> unit
(** Push a column index.  Raises [Invalid_argument] when full. *)

val pop : t -> int option
(** Pop the top column; [None] when empty. *)

val top : t -> int option

val mask : t -> Fsb.mask
(** Union of all columns on the stack — the FSB bits a newly decoded
    memory operation must set ("when an inner scope is flagged for an
    instruction, all of its outer scopes are also flagged"). *)

val contains : t -> int -> bool
(** Is a column anywhere on the stack? *)

val copy_from : t -> t -> unit
(** [copy_from dst src] overwrites [dst]'s contents with [src]'s (the
    FSS <- FSS' restore on a branch misprediction).  Capacities must
    match. *)

val to_list : t -> int list
(** Bottom to top. *)

val restore : t -> int list -> unit
(** Replace the contents with the given columns (bottom to top);
    raises [Invalid_argument] past capacity.  Checkpoint restore. *)
