(** The cid -> FSB-column mapping table (MT) of §IV-A.3.

    Class ids are mapped to FSB columns when their first [fs_start] is
    decoded.  When more simultaneously active scopes exist than free
    columns, new scopes share one designated overflow column ("we
    simply choose one specific FSB entry" — the implementation stays
    consistent with S-Fence semantics because sharing only makes
    fences stricter).  A mapping is reclaimed once its column is
    quiescent: no FSB bit outstanding and the column on no scope
    stack (the [column_busy] callback supplies that knowledge, which
    in hardware lives in the FSB clear logic). *)

type t

val create : entries:int -> class_columns:int -> t
(** [entries] is the MT capacity (how many cids can be tracked at
    once); [class_columns] how many FSB columns are available to class
    scopes (the set-scope column is not managed here).  Both must be
    non-negative and [entries >= 1]. *)

val lookup : t -> cid:int -> int option
(** The column currently mapped to [cid], if any. *)

val lookup_or_allocate : t -> cid:int -> column_busy:(int -> bool) -> int option
(** Resolve [cid] to a column, allocating if needed:
    - already mapped: that column;
    - otherwise, a column with no current mapping and not
      [column_busy];
    - otherwise the overflow column (shared);
    - [None] if the table itself is full after garbage collection
      (the caller then falls back to counter / full-fence mode), or if
      there are no class columns at all. *)

val gc : t -> column_busy:(int -> bool) -> unit
(** Drop every mapping whose column is quiescent. *)

val cid_of_column : t -> column:int -> int option
(** The newest cid mapped to [column], if any — the reverse lookup the
    profiler uses to attribute a fence's stall to the scope it was
    decoded under (columns can be shared under overflow, so "newest"
    is the decode-time answer). *)

val occupancy : t -> int
val mappings : t -> (int * int) list
(** Current (cid, column) pairs, for tests. *)

val set_mappings : t -> (int * int) list -> unit
(** Overwrite the table with (cid, column) pairs, newest first — the
    inverse of {!mappings}, for checkpoint restore. *)
