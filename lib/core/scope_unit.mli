(** The per-core S-Fence hardware unit.

    Ties together the FSB columns, the mapping table (MT), the fence
    scope stack (FSS) and its shadow copy FSS' (§IV-A).  The CPU core
    drives it with decode-order events and queries it for:

    - the FSB mask a newly dispatched memory operation must set
      ([decode_mask]);
    - the wait condition of a dispatched fence ([fence_scope]).

    {2 Speculation and the shadow stack}

    The paper keeps a shadow FSS' that "is only updated by
    [fs_start]/[fs_end] if there is no unconfirmed branch prediction
    prior to them" and is copied back over FSS on a misprediction.  We
    realise that sketch precisely: scope micro-ops decoded while an
    older branch is unresolved are buffered in a decode-order event
    FIFO and applied to the confirmed state (FSS' plus the overflow
    counter's shadow) only once every older branch has resolved
    correctly.  On a misprediction the live state is rebuilt as
    [confirmed state + buffered micro-ops older than the mispredicted
    branch], which is exactly the state the correct path had built.

    {2 Overflow}

    When the MT or the FSS is full at an [fs_start], the unit enters
    counter mode (§IV-A.3 "Handling excessive scopes"): the counter
    counts the excess nesting depth and every fence decoded while it is
    non-zero behaves as a traditional full fence. *)

type config = {
  fsb_entries : int;
      (** total FSB columns; the last one is reserved for set scope, the
          rest serve class scopes (paper default: 4) *)
  fss_entries : int;  (** FSS capacity (paper default: 4) *)
  mt_entries : int;  (** mapping table capacity (we default to 4) *)
  enabled : bool;
      (** false = the S-Fence hardware is absent and every fence is
          treated as a traditional full fence (the paper's baseline T) *)
}

val default_config : config
(** 4 FSB columns, 4 FSS entries, 4 MT entries, enabled. *)

type t

val create : ?trace:Fscope_obs.Trace.t -> ?core:int -> config -> t
(** [trace]/[core] hook the unit into the observability layer: when the
    trace is live, every [fs_start]/[fs_end] emits a
    [Scope_push]/[Scope_pop] event for [core].  Defaults to the
    disabled {!Fscope_obs.Trace.null} (no events, no overhead). *)

val config : t -> config
val enabled : t -> bool

val set_column : t -> int
(** The FSB column reserved for set-scope accesses. *)

(** {2 Decode-order events} *)

val on_branch : t -> id:int -> unit
(** A conditional branch was dispatched; [id] must be unique among
    in-flight branches (the ROB sequence number serves). *)

val on_branch_correct : t -> id:int -> unit
(** The branch resolved and the prediction was right. *)

val on_branch_mispredict : t -> id:int -> unit
(** The branch resolved wrong.  Restores FSS (and the counter) to the
    correct-path state and forgets every younger buffered event.  The
    core must also report the squashed memory operations' masks via
    [on_bits_cleared]. *)

val on_fs_start : t -> cid:int -> unit
val on_fs_end : t -> cid:int -> unit

val decode_mask : t -> flagged:bool -> Fsb.mask
(** FSB bits for a memory operation being dispatched now: one bit per
    scope on the FSS ("when an inner scope is flagged, all of its
    outer scopes are also flagged") plus the set column if the
    instruction carries the compiler's set-scope flag. *)

val on_bits_set : t -> Fsb.mask -> unit
(** Account a dispatched memory op's mask as outstanding. *)

val on_bits_cleared : t -> Fsb.mask -> unit
(** The op completed (or was squashed); its bits are clear again. *)

val outstanding : t -> int -> int
(** Outstanding bit count of a column (tests / MT reclamation). *)

val fence_scope : t -> Fscope_isa.Fence_kind.t -> [ `Global | `Mask of Fsb.mask ]
(** The wait condition for a fence dispatched now.  [`Global] = wait
    for every earlier memory access (traditional fence); [`Mask m] =
    wait only for accesses whose FSB bits intersect [m].  Must be
    called at dispatch and captured in the ROB entry: it depends on
    the FSS top at decode time. *)

val in_overflow : t -> bool
(** Is the live overflow counter non-zero? *)

val current_cid : t -> int option
(** The class id of the innermost live scope, if the unit is enabled,
    not in overflow, and the FSS top column still has an MT mapping.
    Captured at fence dispatch for per-scope stall attribution. *)

val live_stack : t -> int list
(** Live FSS contents, bottom to top (tests). *)

val confirmed_stack : t -> int list
(** FSS' contents (tests). *)

val to_json : t -> Fscope_util.Json.t
(** Whole-unit checkpoint: live + confirmed FSS and overflow counters,
    the MT mappings, outstanding FSB bit counts and the decode-order
    event FIFO (branch ids are ROB seqs — absolute, like everything in
    a machine checkpoint). *)

val restore : t -> Fscope_util.Json.t -> unit
(** Inverse of {!to_json} into a unit created with the same config;
    raises [Failure] on malformed input. *)

val reset : t -> unit
(** Forget all state (stacks, counters, MT, outstanding bits, events).
    The sampled engine resets the unit at a functional→detailed
    transition and replays the architectural nesting via
    {!on_fs_start}. *)

val spin_fingerprint : t -> base:int -> (int * bool) list option
(** The decode-order event FIFO as comparable data: one
    [(base - branch_id, resolved)] pair per buffered branch event, or
    [None] if any scope micro-op is buffered.  The core's
    spin-stability probe compares fingerprints taken at two loop
    boundaries (with [base] the ROB's next sequence number) to decide
    whether the unit's speculative state is periodic. *)
