type t = {
  entries : int;
  class_columns : int;
  mutable map : (int * int) list; (* cid -> column, newest first *)
}

let create ~entries ~class_columns =
  if entries < 1 then invalid_arg "Mapping_table.create: entries must be >= 1";
  if class_columns < 0 then invalid_arg "Mapping_table.create: negative class_columns";
  { entries; class_columns; map = [] }

let lookup t ~cid = List.assoc_opt cid t.map

let column_mapped t col = List.exists (fun (_, c) -> c = col) t.map

let gc t ~column_busy =
  t.map <- List.filter (fun (_, col) -> column_busy col) t.map

let free_column t ~column_busy =
  let rec go col =
    if col >= t.class_columns then None
    else if (not (column_mapped t col)) && not (column_busy col) then Some col
    else go (col + 1)
  in
  go 0

let lookup_or_allocate t ~cid ~column_busy =
  match lookup t ~cid with
  | Some col -> Some col
  | None ->
    if t.class_columns = 0 then None
    else begin
      if List.length t.map >= t.entries then gc t ~column_busy;
      if List.length t.map >= t.entries then None
      else begin
        let col =
          match free_column t ~column_busy with
          | Some col -> col
          | None -> t.class_columns - 1 (* designated shared overflow column *)
        in
        t.map <- (cid, col) :: t.map;
        Some col
      end
    end

let cid_of_column t ~column =
  List.find_map (fun (cid, col) -> if col = column then Some cid else None) t.map

let occupancy t = List.length t.map
let mappings t = t.map

let set_mappings t map =
  if List.length map > t.entries then invalid_arg "Mapping_table.set_mappings: overflow";
  t.map <- map
