type config = {
  fsb_entries : int;
  fss_entries : int;
  mt_entries : int;
  enabled : bool;
}

let default_config = { fsb_entries = 4; fss_entries = 4; mt_entries = 4; enabled = true }

(* Live and confirmed (shadow) copies of the scope state: the FSS plus
   the excess-nesting counter of the overflow mechanism. *)
type state = {
  stack : Fss.t;
  mutable counter : int;
}

type scope_op =
  | Push of int option (* Some column | None: counter-mode push *)
  | Pop

type event =
  | Ev_branch of { id : int; mutable resolved : bool }
  | Ev_op of scope_op

type t = {
  config : config;
  live : state;
  confirmed : state;
  mt : Mapping_table.t;
  outstanding : int array;
  mutable events : event list; (* decode order, oldest first *)
  trace : Fscope_obs.Trace.t;
  core : int;
}

let create ?(trace = Fscope_obs.Trace.null) ?(core = 0) config =
  if config.fsb_entries < 1 then invalid_arg "Scope_unit.create: need >= 1 FSB column";
  if config.fss_entries < 1 then invalid_arg "Scope_unit.create: need >= 1 FSS entry";
  {
    config;
    live = { stack = Fss.create ~capacity:config.fss_entries; counter = 0 };
    confirmed = { stack = Fss.create ~capacity:config.fss_entries; counter = 0 };
    mt =
      Mapping_table.create ~entries:config.mt_entries
        ~class_columns:(config.fsb_entries - 1);
    outstanding = Array.make config.fsb_entries 0;
    events = [];
    trace;
    core;
  }

let config t = t.config
let enabled t = t.config.enabled
let set_column t = t.config.fsb_entries - 1

let apply st op =
  match op with
  | Push (Some col) ->
    if st.counter > 0 || Fss.is_full st.stack then st.counter <- st.counter + 1
    else Fss.push st.stack col
  | Push None -> st.counter <- st.counter + 1
  | Pop ->
    if st.counter > 0 then st.counter <- st.counter - 1
    else ignore (Fss.pop st.stack)

(* Apply every event that is no longer speculative to the confirmed
   state: stop at the first unresolved branch. *)
let drain t =
  let rec go = function
    | Ev_op op :: rest ->
      apply t.confirmed op;
      go rest
    | Ev_branch b :: rest when b.resolved -> go rest
    | events -> events
  in
  t.events <- go t.events

let record t op =
  apply t.live op;
  t.events <- t.events @ [ Ev_op op ];
  drain t

let fifo_pushes_contain t col =
  List.exists
    (function Ev_op (Push (Some c)) -> c = col | Ev_op (Push None | Pop) | Ev_branch _ -> false)
    t.events

let column_busy t col =
  t.outstanding.(col) > 0
  || Fss.contains t.live.stack col
  || Fss.contains t.confirmed.stack col
  || fifo_pushes_contain t col

let on_branch t ~id =
  if t.config.enabled then t.events <- t.events @ [ Ev_branch { id; resolved = false } ]

let on_branch_correct t ~id =
  if t.config.enabled then begin
    List.iter
      (function Ev_branch b when b.id = id -> b.resolved <- true | Ev_branch _ | Ev_op _ -> ())
      t.events;
    drain t
  end

let on_branch_mispredict t ~id =
  if t.config.enabled then begin
    (* The correct-path state is: confirmed state plus every buffered
       micro-op older than the mispredicted branch. *)
    let rec split prefix = function
      | Ev_branch b :: _ when b.id = id -> Some (List.rev prefix)
      | ev :: rest -> split (ev :: prefix) rest
      | [] -> None
    in
    match split [] t.events with
    | None ->
      (* The branch carried no scope events after it and none before:
         it may never have been recorded (only possible if it was
         dispatched before any scope activity and drained).  Restoring
         to confirmed state is still correct because every older event
         has, by definition, drained into it. *)
      Fss.copy_from t.live.stack t.confirmed.stack;
      t.live.counter <- t.confirmed.counter;
      t.events <- []
    | Some older ->
      Fss.copy_from t.live.stack t.confirmed.stack;
      t.live.counter <- t.confirmed.counter;
      List.iter (function Ev_op op -> apply t.live op | Ev_branch _ -> ()) older;
      t.events <- older
  end

let on_fs_start t ~cid =
  if t.config.enabled then begin
    let op =
      if t.live.counter > 0 then Push None
      else
        match Mapping_table.lookup_or_allocate t.mt ~cid ~column_busy:(column_busy t) with
        | Some col -> Push (Some col)
        | None -> Push None
    in
    if Fscope_obs.Trace.on t.trace then
      Fscope_obs.Trace.emit t.trace ~core:t.core
        (Fscope_obs.Event.Scope_push
           { column = (match op with Push col -> col | Pop -> None) });
    record t op
  end

let on_fs_end t ~cid:_ =
  if t.config.enabled then begin
    if Fscope_obs.Trace.on t.trace then
      Fscope_obs.Trace.emit t.trace ~core:t.core Fscope_obs.Event.Scope_pop;
    record t Pop
  end

(* While the overflow counter is non-zero the FSS under-represents the
   active scopes, so ops decoded now would carry too few bits: a fence
   in a scope re-entered after recovery (whose MT mapping survived)
   would check its column and miss them.  The paper's counter sketch
   alone is unsound here; we repair it by flagging such ops with every
   class column — conservative, hence still consistent with the
   S-Fence semantics (fences may only get stricter). *)
let all_class_columns t =
  let m = ref Fsb.empty in
  for col = 0 to t.config.fsb_entries - 2 do
    m := Fsb.union !m (Fsb.column col)
  done;
  !m

let decode_mask t ~flagged =
  if not t.config.enabled then Fsb.empty
  else
    let class_bits =
      if t.live.counter > 0 then all_class_columns t else Fss.mask t.live.stack
    in
    if flagged then Fsb.union class_bits (Fsb.column (set_column t)) else class_bits

let on_bits_set t mask =
  List.iter (fun col -> t.outstanding.(col) <- t.outstanding.(col) + 1) (Fsb.columns mask)

let on_bits_cleared t mask =
  List.iter
    (fun col ->
      assert (t.outstanding.(col) > 0);
      t.outstanding.(col) <- t.outstanding.(col) - 1)
    (Fsb.columns mask)

let outstanding t col = t.outstanding.(col)

let fence_scope t kind =
  if not t.config.enabled then `Global
  else
    match Fscope_isa.Fence_kind.scope_of kind with
    | Fscope_isa.Fence_kind.Global -> `Global
    | Fscope_isa.Fence_kind.Class_scope ->
      if t.live.counter > 0 then `Global
      else (
        match Fss.top t.live.stack with
        | Some col -> `Mask (Fsb.column col)
        | None -> `Global (* class fence outside any scope: be conservative *))
    | Fscope_isa.Fence_kind.Set_scope ->
      if t.live.counter > 0 then `Global else `Mask (Fsb.column (set_column t))

let in_overflow t = t.live.counter > 0
let live_stack t = Fss.to_list t.live.stack
let confirmed_stack t = Fss.to_list t.confirmed.stack

(* Relativized fingerprint of the decode-order event FIFO, for the
   spin-stability probe: branch ids (ROB seqs) are expressed relative
   to [base] so two snapshots of the same in-flight shape compare
   equal.  [None] if any scope micro-op is still buffered — the probe
   treats that as unstable. *)
let spin_fingerprint t ~base =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Ev_branch b :: rest -> go ((base - b.id, b.resolved) :: acc) rest
    | Ev_op _ :: _ -> None
  in
  go [] t.events

let current_cid t =
  if (not t.config.enabled) || t.live.counter > 0 then None
  else
    match Fss.top t.live.stack with
    | None -> None
    | Some col -> Mapping_table.cid_of_column t.mt ~column:col

(* ------------------------------------------------------------------ *)
(* Checkpointing and sampled-mode reseeding. *)

module Json = Fscope_util.Json

let event_to_json = function
  | Ev_branch b -> Json.Arr [ Json.Str "branch"; Json.Int b.id; Json.Bool b.resolved ]
  | Ev_op (Push (Some col)) -> Json.Arr [ Json.Str "push"; Json.Int col ]
  | Ev_op (Push None) -> Json.Arr [ Json.Str "pushn" ]
  | Ev_op Pop -> Json.Arr [ Json.Str "pop" ]

let event_of_json j =
  match Json.list_exn j with
  | [ Json.Str "branch"; id; resolved ] ->
    Ev_branch { id = Json.int_exn id; resolved = Json.bool_exn resolved }
  | [ Json.Str "push"; col ] -> Ev_op (Push (Some (Json.int_exn col)))
  | [ Json.Str "pushn" ] -> Ev_op (Push None)
  | [ Json.Str "pop" ] -> Ev_op Pop
  | _ -> failwith "checkpoint: malformed scope event"

let state_to_json (st : state) =
  Json.Obj
    [
      ("stack", Json.of_int_list (Fss.to_list st.stack));
      ("counter", Json.Int st.counter);
    ]

let state_restore (st : state) j =
  Fss.restore st.stack (Json.int_list_exn (Json.get "stack" j));
  st.counter <- Json.int_exn (Json.get "counter" j)

let to_json t =
  Json.Obj
    [
      ("live", state_to_json t.live);
      ("confirmed", state_to_json t.confirmed);
      ( "mt",
        Json.Arr
          (List.map
             (fun (cid, col) -> Json.Arr [ Json.Int cid; Json.Int col ])
             (Mapping_table.mappings t.mt)) );
      ("outstanding", Json.of_int_array t.outstanding);
      ("events", Json.Arr (List.map event_to_json t.events));
    ]

let restore t j =
  state_restore t.live (Json.get "live" j);
  state_restore t.confirmed (Json.get "confirmed" j);
  Mapping_table.set_mappings t.mt
    (List.map
       (fun p ->
         match Json.list_exn p with
         | [ cid; col ] -> (Json.int_exn cid, Json.int_exn col)
         | _ -> failwith "checkpoint: malformed MT pair")
       (Json.list_exn (Json.get "mt" j)));
  let out = Json.int_array_exn (Json.get "outstanding" j) in
  if Array.length out <> Array.length t.outstanding then
    failwith "checkpoint: FSB column-count mismatch";
  Array.blit out 0 t.outstanding 0 (Array.length out);
  t.events <- List.map event_of_json (Json.list_exn (Json.get "events" j))

(* Forget everything — stacks, counters, the MT, outstanding bits and
   buffered events.  The sampled engine resets the unit when it
   re-enters a detailed window from functional execution and then
   replays the architectural scope nesting with [on_fs_start]. *)
let reset t =
  Fss.restore t.live.stack [];
  Fss.restore t.confirmed.stack [];
  t.live.counter <- 0;
  t.confirmed.counter <- 0;
  Mapping_table.set_mappings t.mt [];
  Array.fill t.outstanding 0 (Array.length t.outstanding) 0;
  t.events <- []
