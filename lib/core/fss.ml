type t = {
  slots : int array;
  mutable depth : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fss.create: capacity must be positive";
  { slots = Array.make capacity 0; depth = 0 }

let capacity t = Array.length t.slots
let is_full t = t.depth = Array.length t.slots
let is_empty t = t.depth = 0
let depth t = t.depth

let push t col =
  if is_full t then invalid_arg "Fss.push: stack full";
  t.slots.(t.depth) <- col;
  t.depth <- t.depth + 1

let pop t =
  if t.depth = 0 then None
  else begin
    t.depth <- t.depth - 1;
    Some t.slots.(t.depth)
  end

let top t = if t.depth = 0 then None else Some t.slots.(t.depth - 1)

let mask t =
  let m = ref Fsb.empty in
  for i = 0 to t.depth - 1 do
    m := Fsb.union !m (Fsb.column t.slots.(i))
  done;
  !m

let contains t col =
  let rec go i = i < t.depth && (t.slots.(i) = col || go (i + 1)) in
  go 0

let copy_from dst src =
  if capacity dst <> capacity src then invalid_arg "Fss.copy_from: capacity mismatch";
  Array.blit src.slots 0 dst.slots 0 src.depth;
  dst.depth <- src.depth

let to_list t = Array.to_list (Array.sub t.slots 0 t.depth)

let restore t cols =
  if List.length cols > capacity t then invalid_arg "Fss.restore: overflow";
  t.depth <- 0;
  List.iter (push t) cols
