module W = Fscope_workloads
module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type bar = {
  app : string;
  variant : string;
  normalized : float;
  fence_share : float;
}

let apps ?(quick = false) () =
  let app name size =
    ( name,
      Exp_run.workload
        ~params:{ W.Registry.default_params with size = Some size }
        name )
  in
  [
    app "pst" (if quick then 256 else 768);
    app "ptc" (if quick then 128 else 256);
    app "barnes" (if quick then 64 else 192);
    app "radiosity" (if quick then 64 else 160);
  ]

let variants =
  [
    ("T", Exp_run.t_config);
    ("S", Exp_run.s_config);
    ("T+", Exp_run.t_plus);
    ("S+", Exp_run.s_plus);
  ]

let run ?quick () =
  (* One point per (app, variant); the T point doubles as the app's
     normalization baseline (runs are deterministic, so measuring T
     once is identical to measuring it again as its own baseline). *)
  let keyed =
    List.concat_map
      (fun (app, workload) ->
        List.map (fun (variant, mk) -> (app, variant, workload, mk Config.default)) variants)
      (apps ?quick ())
  in
  let ms =
    Exp_run.measure_all
      (List.map (fun (_, _, w, config) -> { Exp_run.config; workload = w }) keyed)
  in
  let joined = List.combine keyed ms in
  let baseline_of app =
    match
      List.find_opt (fun ((a, variant, _, _), _) -> a = app && variant = "T") joined
    with
    | Some (_, m) -> m
    | None -> assert false
  in
  List.map
    (fun ((app, variant, _, _), m) ->
      let baseline = baseline_of app in
      {
        app;
        variant;
        normalized = float_of_int m.Exp_run.cycles /. float_of_int baseline.Exp_run.cycles;
        fence_share = m.Exp_run.fence_stall_fraction;
      })
    joined

let table bars =
  let t =
    Table.create ~title:"Fig. 13 — normalized execution time (T/S/T+/S+)"
      ~header:[ "app"; "variant"; "normalized"; "fence stalls"; "others" ]
  in
  List.iter
    (fun b ->
      Table.add_row t
        [
          b.app;
          b.variant;
          Table.cell_f b.normalized;
          Table.cell_f (b.normalized *. b.fence_share);
          Table.cell_f (b.normalized *. (1. -. b.fence_share));
        ])
    bars;
  t
