module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Workload = Fscope_workloads.Workload

type measurement = {
  cycles : int;
  fence_stall_fraction : float;
  fence_stalls : int;
  active_cycles : int;
  avg_rob_occupancy : float;
}

(* Registry lookup shared by the experiment tables, the CLI and the
   bench harness: find + build, with the registry's uniform
   unknown-workload failure text. *)
let workload ?(params = Fscope_workloads.Registry.default_params) name =
  match Fscope_workloads.Registry.find name with
  | Some spec -> Workload.build spec params
  | None -> failwith (Fscope_workloads.Registry.unknown_message name)

let t_config c = Config.v ~base:c ~sfence:false ()
let s_config c = Config.v ~base:c ~sfence:true ()
let t_plus c = Config.v ~base:c ~sfence:false ~speculation:true ()
let s_plus c = Config.v ~base:c ~sfence:true ~speculation:true ()
let nf_config c = Config.v ~base:c ~sfence:false ~nop_fences:true ()

let sampled_config ?(sampling = Config.sampling_default) c =
  Config.with_sampling (Some sampling) c

let measure (config : Config.t) workload =
  let result =
    if config.Config.exec.Fscope_cpu.Exec_config.in_window_speculation then
      Workload.run config workload
    else Workload.run_validated config workload
  in
  {
    cycles = result.Machine.cycles;
    fence_stall_fraction = Machine.fence_stall_fraction result;
    fence_stalls = Machine.fence_stall_cycles result;
    active_cycles = Machine.total_active_cycles result;
    avg_rob_occupancy = Machine.avg_rob_occupancy result;
  }

let speedup ~baseline m = float_of_int baseline.cycles /. float_of_int m.cycles

(* ------------------------------------------------------------------ *)
(* Domain-parallel point runner.

   Every experiment point is an independent (config, workload) pair: a
   simulation run shares nothing mutable with any other run (the
   machine builds fresh memory, caches and cores per run, and
   workloads / configs are read-only descriptions), so points can fan
   out across OCaml 5 domains freely.  Results come back in input
   order regardless of completion order, and each run itself is
   deterministic, so the tables rendered from a parallel sweep are
   byte-identical to a sequential one. *)

let jobs_ref = ref 1
let set_jobs n = jobs_ref := max 1 n
let jobs () = !jobs_ref

(* Intra-run parallelism: how many domains a single big simulated
   machine is sharded across (Config.shard_domains for the points that
   opt in, e.g. the server suite's 64-core point).  Orthogonal to
   [jobs], which fans out across independent points. *)
let shard_domains_ref = ref 1
let set_shard_domains n = shard_domains_ref := max 1 n
let shard_domains () = !shard_domains_ref

let parmap ~jobs f (inputs : _ array) =
  let n = Array.length inputs in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  (* Each slot has exactly one writer (the domain that claimed its
     index from [next]), so plain stores into [out] are race-free. *)
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f inputs.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        out.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (max 0 (min jobs n - 1)) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    out

type spec = {
  config : Config.t;
  workload : Workload.t;
}

let measure_all specs =
  let j = jobs () in
  if j <= 1 then List.map (fun s -> measure s.config s.workload) specs
  else
    Array.to_list
      (parmap ~jobs:j (fun s -> measure s.config s.workload) (Array.of_list specs))
