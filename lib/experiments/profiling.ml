(* Cycle-accounting profile runs: extract the static sites a profile
   names from the program image, drive one traced run, and package the
   result as a {!Fscope_obs.Profile.input} for rendering.

   The extraction lives here rather than in [Fscope_obs] so that the
   observability library stays free of ISA/machine dependencies. *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Obs = Fscope_obs
module Program = Fscope_isa.Program
module Instr = Fscope_isa.Instr
module Workload = Fscope_workloads.Workload

let fence_sites (program : Program.t) =
  let sites = ref [] in
  Array.iteri
    (fun core code ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Instr.Fence kind ->
            sites :=
              { Obs.Profile.core; pc; kind = Fscope_isa.Fence_kind.to_string kind }
              :: !sites
          | _ -> ())
        code)
    program.Program.threads;
  List.rev !sites

let cids (program : Program.t) =
  let ids = ref [] in
  Array.iter
    (fun code ->
      Array.iter
        (function
          | Instr.Fs_start cid when not (List.mem cid !ids) -> ids := cid :: !ids
          | _ -> ())
        code)
    program.Program.threads;
  List.sort compare !ids

(* Static backward control edges — the candidate spin sites the
   commit-stream detector can charge.  Forward edges never spin. *)
let spin_pcs (program : Program.t) =
  let edges = ref [] in
  Array.iteri
    (fun core code ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Instr.Jump target when target <= pc -> edges := (core, pc) :: !edges
          | Instr.Branch { target; _ } when target <= pc -> edges := (core, pc) :: !edges
          | _ -> ())
        code)
    program.Program.threads;
  List.rev !edges

let config_label (config : Config.t) =
  if config.Config.exec.Fscope_cpu.Exec_config.nop_fences then "no-fence"
  else if not config.Config.scope.Fscope_core.Scope_unit.enabled then "traditional"
  else "sfence"

(* One traced run, packaged for the Profile renderers.  Profiling is
   observational: validation is skipped (the no-fence ablation would
   fail it by design), and tracing is timing-neutral, so the cycle
   count equals an unprofiled run's bit for bit. *)
let profile ?label (config : Config.t) (workload : Workload.t) =
  let program = workload.Workload.program in
  let cores = Program.thread_count program in
  let trace = Obs.Trace.create ~ring_capacity:1024 ~cores () in
  let result = Machine.run ~obs:trace config program in
  let metrics = Option.map (fun (r : Obs.Report.t) -> r.Obs.Report.metrics) result.Machine.obs in
  (* Tracing disables the engine's spin fast-forward, so the traced
     run's spin counters are always zero.  When the config enables the
     optimisation, one extra untraced run (bit-identical in every
     result field) supplies the real counters for the profile. *)
  let spin_ff =
    if config.Config.exec.Fscope_cpu.Exec_config.spin_fastforward then begin
      let plain = Machine.run config program in
      Some
        ( plain.Machine.spin.Machine.sleeps,
          plain.Machine.spin.Machine.cycles_skipped,
          plain.Machine.spin.Machine.wakes )
    end
    else None
  in
  {
    Obs.Profile.label = workload.Workload.name;
    config = (match label with Some l -> l | None -> config_label config);
    cycles = result.Machine.cycles;
    timed_out = result.Machine.timed_out;
    cpi = result.Machine.core_cpi;
    core_active =
      Array.map
        (fun (s : Fscope_cpu.Core.stats) -> s.Fscope_cpu.Core.active_cycles)
        result.Machine.core_stats;
    metrics;
    fence_sites = fence_sites program;
    cids = cids program;
    spin_pcs = spin_pcs program;
    spin_ff;
  }

(* The advisor wants the same workload profiled under traditional and
   scoped fences: the first is the subject, the second the residual
   model.  Both runs are independent, so they fan across the global
   --jobs domains like any experiment sweep. *)
let advise_inputs (config : Config.t) (workload : Workload.t) =
  let t = Exp_run.t_config config and s = Exp_run.s_config config in
  let inputs =
    Exp_run.parmap
      ~jobs:(Exp_run.jobs ())
      (fun c -> profile c workload)
      [| t; s |]
  in
  (inputs.(0), inputs.(1))
