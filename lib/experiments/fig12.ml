module W = Fscope_workloads
module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type point = {
  level : int;
  t_cycles : int;
  s_cycles : int;
  speedup : float;
}

type series = {
  bench : string;
  points : point list;
}

let benches ~quick =
  let attempts = if quick then 10 else 30 in
  let rounds = if quick then 6 else 12 in
  let per_producer = if quick then 8 else 16 in
  let cell ?rounds ?size name level =
    Exp_run.workload
      ~params:{ W.Registry.default_params with level; attempts; rounds; size }
      name
  in
  [
    ("dekker", cell "dekker");
    ("wsq", cell ~rounds "wsq");
    ("msn", cell ~size:per_producer "msn");
    ("harris", cell "harris");
  ]

let run ?(quick = false) () =
  let levels = W.Privwork.fig12_levels in
  let levels = if quick then Array.sub levels 0 3 else levels in
  let series = benches ~quick in
  (* Flatten to independent (bench, level) points — two runs each —
     so the sweep fans out across domains via [Exp_run.measure_all]. *)
  let keyed =
    List.concat_map
      (fun (bench, make) ->
        List.mapi (fun idx level -> (bench, idx + 1, make level)) (Array.to_list levels))
      series
  in
  let specs =
    List.concat_map
      (fun (_, _, w) ->
        [
          { Exp_run.config = Exp_run.t_config Config.default; workload = w };
          { Exp_run.config = Exp_run.s_config Config.default; workload = w };
        ])
      keyed
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  let points =
    List.mapi
      (fun i (bench, level, _) ->
        let t = ms.(2 * i) and s = ms.((2 * i) + 1) in
        ( bench,
          {
            level;
            t_cycles = t.Exp_run.cycles;
            s_cycles = s.Exp_run.cycles;
            speedup = Exp_run.speedup ~baseline:t s;
          } ))
      keyed
  in
  List.map
    (fun (bench, _) ->
      { bench; points = List.filter_map (fun (b, p) -> if b = bench then Some p else None) points })
    series

let peak series =
  List.fold_left (fun acc p -> Float.max acc p.speedup) 0. series.points

let table series_list =
  let levels = match series_list with [] -> [] | s :: _ -> List.map (fun p -> p.level) s.points in
  let t =
    Table.create ~title:"Fig. 12 — speedup of S-Fence vs workload level"
      ~header:("bench" :: List.map (fun l -> Printf.sprintf "w%d" l) levels @ [ "peak" ])
  in
  List.iter
    (fun s ->
      Table.add_row t
        (s.bench
        :: List.map (fun p -> Table.cell_x p.speedup) s.points
        @ [ Table.cell_x (peak s) ]))
    series_list;
  t
