(* The high-traffic server artefact: the three server workloads
   (MPMC dispatch, cache with epoch reclamation, work stealing) under
   traditional fences, class-scoped S-Fence and set-scoped S-Fence.

   Unlike the figure experiments, which quote whole-run cycle counts,
   the server suite reports *throughput* (requests retired per
   kilocycle of simulated time) and the *tail* of the per-episode
   fence-stall distribution (p50/p90/p99 over the traced
   [fence/stall_cycles] histogram) — the quantities a server operator
   would ask about.

   Every point is triple-checked before it lands in a row:
   - the event-horizon engine and the naive reference loop must agree
     bit-for-bit (spin fast-forward counters excluded);
   - the workload's functional validation must pass;
   - the traced (profiled) run must reproduce the untraced cycle count
     exactly, since tracing is timing-neutral by contract.
   A row is therefore identical no matter which loop, job count or
   host produced it, which is what lets CI diff BENCH_server.json. *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Table = Fscope_util.Table
module Obs = Fscope_obs
module W = Fscope_workloads

type gauge_row = {
  gv_name : string;  (* short gauge label, e.g. "queue_depth" *)
  gv_samples : int;
  gv_p50 : int;
  gv_p90 : int;
  gv_p99 : int;
  gv_max : int;  (* floors of the log2 occupancy histogram *)
}

type row = {
  sv_workload : string;
  sv_config : string;
  sv_cycles : int;
  sv_requests : int;
  sv_rpk : float;  (* requests retired per 1000 simulated cycles *)
  sv_fence_share : float;  (* % of active cycles in the CPI fence bucket *)
  sv_stall_episodes : int;
  sv_stall_cycles : int;
  sv_stall_mean : float;
  sv_stall_p50 : int;
  sv_stall_p90 : int;
  sv_stall_p99 : int;
  sv_stall_max : int;  (* floors of the log2 stall histogram *)
  sv_lat_samples : int;
  sv_lat_p50 : int;
  sv_lat_p90 : int;
  sv_lat_p99 : int;
  sv_lat_max : int;  (* exact per-request inject-to-retire latencies *)
  sv_gauge : gauge_row option;  (* live occupancy gauge, when the workload has one *)
  sv_sampled : bool;  (* interval-sampled point: cycle metrics are estimates *)
  sv_lat_sampled : bool;  (* latencies from measured-window pairs only *)
}

type point = {
  pt_workload : string;
  pt_config : string;
  pt_requests : int;
  pt_machine : Config.t;
  pt_build : unit -> W.Workload.t;
  (* [Some threads] on workloads with per-request latency markers
     (currently server-mpmc): run an extra drain-filtered trace and
     extract inject-to-retire latencies. *)
  pt_lat_threads : int option;
}

(* The engine's spin fast-forward counters describe how a result was
   reached, not the result; the reference loop never spins. *)
let strip_spin (r : Machine.result) =
  {
    r with
    Machine.spin = { Machine.sleeps = 0; cycles_skipped = 0; wakes = 0 };
    shard = Machine.no_shard_ctrs;
  }

(* Nearest-rank percentile over the log2-bucket histogram, reported as
   the bucket lower bound (the resolution the histogram actually
   has). *)
let percentile (h : Obs.Metrics.hist_snapshot) q =
  if h.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec go seen = function
      | [] -> 0
      | (floor, c) :: rest ->
        let seen = seen + c in
        if seen >= rank then floor else go seen rest
    in
    go 0 h.buckets
  end

let max_floor (h : Obs.Metrics.hist_snapshot) =
  List.fold_left (fun acc (floor, _) -> max acc floor) 0 h.buckets

(* Exact nearest-rank percentile over an ascending sample list. *)
let rank_percentile sorted q =
  match sorted with
  | [] -> 0
  | _ ->
    let n = List.length sorted in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    List.nth sorted (rank - 1)

(* Per-request latencies from a dedicated traced run that retains only
   the workload's inject/retire drain markers.  The filtered ring keeps
   at most one event per marker, so even a 10k-request point fits with
   room to spare; tracing stays timing-neutral, which we assert. *)
let request_latencies pt program ~threads ~cycles =
  let requests = pt.pt_requests in
  let keep = W.Mpmc.keep_latency ~requests ~threads program in
  let trace =
    Obs.Trace.create
      ~ring_capacity:(max 1024 (requests + 2))
      ~keep
      ~cores:(Fscope_isa.Program.thread_count program)
      ()
  in
  let r = Machine.run ~obs:trace pt.pt_machine program in
  if r.Machine.cycles <> cycles then
    failwith
      (Printf.sprintf "server %s (%s): latency trace not timing-neutral"
         pt.pt_workload pt.pt_config);
  if Obs.Trace.dropped trace <> 0 then
    failwith
      (Printf.sprintf "server %s (%s): latency trace dropped markers" pt.pt_workload
         pt.pt_config);
  W.Mpmc.latency_of_events ~requests ~threads program (Obs.Trace.events trace)

(* Live occupancy gauge (queue depth / deque occupancy / limbo length)
   from a second dedicated drain-marker trace, folded post-hoc in the
   trace's deterministic order — same timing-neutrality and no-drop
   contract as the latency trace.  The 64-core scale point reuses the
   base workload's sampler. *)
let workload_gauge pt program ~cycles =
  let name =
    if pt.pt_workload = "server-mpmc-64" then "server-mpmc" else pt.pt_workload
  in
  match W.Gauges.for_workload ~name program with
  | None -> None
  | Some g ->
    let trace =
      Obs.Trace.create
        ~ring_capacity:(max 1024 ((4 * pt.pt_requests) + 64))
        ~keep:g.W.Gauges.keep
        ~cores:(Fscope_isa.Program.thread_count program)
        ()
    in
    let r = Machine.run ~obs:trace pt.pt_machine program in
    if r.Machine.cycles <> cycles then
      failwith
        (Printf.sprintf "server %s (%s): gauge trace not timing-neutral"
           pt.pt_workload pt.pt_config);
    if Obs.Trace.dropped trace <> 0 then
      failwith
        (Printf.sprintf "server %s (%s): gauge trace dropped markers" pt.pt_workload
           pt.pt_config);
    let m = Obs.Metrics.create () in
    g.W.Gauges.fold m (Obs.Trace.events trace);
    let h =
      match Obs.Metrics.find_histogram m g.W.Gauges.hist with
      | Some h -> h
      | None -> { Obs.Metrics.count = 0; sum = 0; buckets = [] }
    in
    Some
      {
        gv_name = g.W.Gauges.label;
        gv_samples = h.Obs.Metrics.count;
        gv_p50 = percentile h 0.50;
        gv_p90 = percentile h 0.90;
        gv_p99 = percentile h 0.99;
        gv_max = max_floor h;
      }

let eval pt =
  let w = pt.pt_build () in
  let program = w.W.Workload.program in
  let engine_r = Machine.run pt.pt_machine program in
  let naive_r = Machine.run_reference pt.pt_machine program in
  if strip_spin engine_r <> strip_spin naive_r then
    failwith
      (Printf.sprintf "server %s (%s): engine/reference mismatch" pt.pt_workload
         pt.pt_config);
  (match w.W.Workload.validate engine_r with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "server %s (%s): validation failed — %s" pt.pt_workload
         pt.pt_config msg));
  let input = Profiling.profile ~label:pt.pt_config pt.pt_machine w in
  if input.Obs.Profile.cycles <> engine_r.Machine.cycles then
    failwith
      (Printf.sprintf "server %s (%s): traced run not timing-neutral" pt.pt_workload
         pt.pt_config);
  let active = Array.fold_left ( + ) 0 input.Obs.Profile.core_active in
  let fence =
    Array.fold_left (fun acc c -> acc + Obs.Cpi.fence_cycles c) 0 input.Obs.Profile.cpi
  in
  let h =
    match input.Obs.Profile.metrics with
    | Some m -> (
      match Obs.Metrics.find_histogram m "fence/stall_cycles" with
      | Some h -> h
      | None -> { Obs.Metrics.count = 0; sum = 0; buckets = [] })
    | None -> failwith "server: traced run carried no metrics"
  in
  let lats =
    match pt.pt_lat_threads with
    | None -> []
    | Some threads ->
      request_latencies pt program ~threads ~cycles:engine_r.Machine.cycles
  in
  {
    sv_workload = pt.pt_workload;
    sv_config = pt.pt_config;
    sv_cycles = engine_r.Machine.cycles;
    sv_requests = pt.pt_requests;
    sv_rpk =
      1000. *. float_of_int pt.pt_requests /. float_of_int engine_r.Machine.cycles;
    sv_fence_share = 100. *. Fscope_util.Stats.ratio ~num:fence ~den:active;
    sv_stall_episodes = h.Obs.Metrics.count;
    sv_stall_cycles = h.Obs.Metrics.sum;
    sv_stall_mean =
      (if h.Obs.Metrics.count = 0 then 0.
       else float_of_int h.Obs.Metrics.sum /. float_of_int h.Obs.Metrics.count);
    sv_stall_p50 = percentile h 0.50;
    sv_stall_p90 = percentile h 0.90;
    sv_stall_p99 = percentile h 0.99;
    sv_stall_max = max_floor h;
    sv_lat_samples = List.length lats;
    sv_lat_p50 = rank_percentile lats 0.50;
    sv_lat_p90 = rank_percentile lats 0.90;
    sv_lat_p99 = rank_percentile lats 0.99;
    sv_lat_max = (match List.rev lats with [] -> 0 | m :: _ -> m);
    sv_gauge = workload_gauge pt program ~cycles:engine_r.Machine.cycles;
    sv_sampled = false;
    sv_lat_sampled = false;
  }

(* Window-restricted per-request latencies for a sampled point: a
   second, traced sampled run (sequential detailed windows — the
   estimator is bit-identical for any shard count, which we assert via
   the cycle estimate) keeps only the inject/retire drain markers, and
   only pairs whose BOTH endpoints landed inside one measured window
   survive — a pair spanning a functional gap would count unsimulated
   fast-forward cycles.  The tail is thus exact over the covered
   requests rather than silently absent. *)
let sampled_latencies pt program ~threads ~cycles =
  let requests = pt.pt_requests in
  let keep = W.Mpmc.keep_latency ~requests ~threads program in
  let trace =
    Obs.Trace.create
      ~ring_capacity:(max 1024 (requests + 2))
      ~keep
      ~cores:(Fscope_isa.Program.thread_count program)
      ()
  in
  let rt = Machine.run ~obs:trace pt.pt_machine program in
  if rt.Machine.cycles <> cycles then
    failwith
      (Printf.sprintf "server %s (%s): sampled latency trace diverged from estimate"
         pt.pt_workload pt.pt_config);
  if Obs.Trace.dropped trace <> 0 then
    failwith
      (Printf.sprintf "server %s (%s): sampled latency trace dropped markers"
         pt.pt_workload pt.pt_config);
  W.Mpmc.latency_of_events_windowed ~requests ~threads
    ~windows:rt.Machine.sample_windows program (Obs.Trace.events trace)

(* Sampled points trade the per-point triple-check for wall-clock: the
   engine-vs-reference and timing-neutrality assertions have no
   meaning under sampling (the estimator IS the engine), but
   functional validation still holds exactly — the fast-forward legs
   execute real instructions, so the retired requests and final memory
   are real.  The fence share comes straight from the run's
   extrapolated CPI stacks; stall tails need a full trace, so those
   columns stay zero; latency tails come from the measured-window
   extraction above, flagged [sv_lat_sampled]. *)
let eval_sampled pt =
  let w = pt.pt_build () in
  let program = w.W.Workload.program in
  let r = Machine.run pt.pt_machine program in
  if r.Machine.timed_out then
    failwith
      (Printf.sprintf "server %s (%s): sampled run timed out" pt.pt_workload
         pt.pt_config);
  (match w.W.Workload.validate r with
  | Ok () -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "server %s (%s): sampled validation failed — %s" pt.pt_workload
         pt.pt_config msg));
  let active = Machine.total_active_cycles r in
  let fence =
    Array.fold_left (fun acc c -> acc + Obs.Cpi.fence_cycles c) 0 r.Machine.core_cpi
  in
  let lats =
    match pt.pt_lat_threads with
    | None -> []
    | Some threads -> sampled_latencies pt program ~threads ~cycles:r.Machine.cycles
  in
  {
    sv_workload = pt.pt_workload;
    sv_config = pt.pt_config;
    sv_cycles = r.Machine.cycles;
    sv_requests = pt.pt_requests;
    sv_rpk = 1000. *. float_of_int pt.pt_requests /. float_of_int r.Machine.cycles;
    sv_fence_share = 100. *. Fscope_util.Stats.ratio ~num:fence ~den:active;
    sv_stall_episodes = 0;
    sv_stall_cycles = 0;
    sv_stall_mean = 0.;
    sv_stall_p50 = 0;
    sv_stall_p90 = 0;
    sv_stall_p99 = 0;
    sv_stall_max = 0;
    sv_lat_samples = List.length lats;
    sv_lat_p50 = rank_percentile lats 0.50;
    sv_lat_p90 = rank_percentile lats 0.90;
    sv_lat_p99 = rank_percentile lats 0.99;
    sv_lat_max = (match List.rev lats with [] -> 0 | m :: _ -> m);
    sv_gauge = None;
    sv_sampled = true;
    sv_lat_sampled = pt.pt_lat_threads <> None;
  }

(* Three machine configurations per workload.  The set-scope point
   recompiles the workload with S-FENCE[set] sites, so it is a
   (program, machine) pair of its own. *)
let points ~quick =
  let threads = if quick then 4 else 8 in
  let per = if quick then 8 else 24 in
  let steal_reqs = if quick then 24 else 96 in
  (* Server machines honour the global --shard-domains knob: every
     point then runs the domain-sharded engine, and eval's
     engine-vs-reference check becomes a sharded-vs-sequential
     bit-identity assertion. *)
  let shard c = Config.with_shard_domains (Exp_run.shard_domains ()) c in
  let t = shard (Exp_run.t_config Config.default) in
  let s = shard (Exp_run.s_config Config.default) in
  let per_workload ?lat_threads name requests build =
    [
      (name, "T", t, (fun () -> build `Class));
      (name, "S", s, (fun () -> build `Class));
      (name, "S-set", s, (fun () -> build `Set));
    ]
    |> List.map (fun (pt_workload, pt_config, pt_machine, pt_build) ->
           {
             pt_workload;
             pt_config;
             pt_machine;
             pt_build;
             pt_requests = requests;
             pt_lat_threads = lat_threads;
           })
  in
  (* The scale point: one 64-core MPMC machine, the shape the sharded
     engine exists for.  Quick keeps the request count small so the
     point still runs everywhere; full is the 64-core x 10k-request
     configuration from the issue.  Sharding comes from the global
     --shard-domains knob via the config, like every other point. *)
  let big_threads = 64 in
  let big_per = if quick then 4 else 625 in
  per_workload "server-mpmc"
    (W.Mpmc.requests ~threads ~per_producer:per ())
    ~lat_threads:threads
    (fun scope -> W.Mpmc.make ~threads ~per_producer:per ~scope ())
  @ per_workload "server-cache"
      (threads * per)
      (fun scope -> W.Cache_server.make ~threads ~per_thread:per ~scope ())
  @ per_workload "server-steal" steal_reqs (fun scope ->
        W.Steal.make ~workers:threads ~requests:steal_reqs ~scope ())
  @ [
      {
        pt_workload = "server-mpmc-64";
        pt_config = "S";
        pt_machine = s;
        pt_requests = W.Mpmc.requests ~threads:big_threads ~per_producer:big_per ();
        pt_build =
          (fun () ->
            W.Mpmc.make ~threads:big_threads ~per_producer:big_per ~scope:`Class ());
        pt_lat_threads = Some big_threads;
      };
    ]

let run ?(quick = false) () =
  Array.to_list
    (Exp_run.parmap ~jobs:(Exp_run.jobs ()) eval (Array.of_list (points ~quick)))

(* Quick points are a few thousand cycles end to end — smaller than
   the default 10k-cycle detailed window — so quick mode shrinks the
   sampling schedule until the estimator actually alternates. *)
let sampled_sampling ~quick =
  if quick then { Config.warmup = 200; detailed = 2_000; ff_instrs = 2_000 }
  else Config.sampling_default

(* The sampled scale points: the 64-core MPMC machine again (so the
   harness can quote sampled-vs-detailed error and wall-clock win
   against the detailed row above), and the 256-core machine — which
   only exists sampled; a detailed 256-core run is what the estimator
   is for. *)
let sampled_points ~quick =
  (* Sampled points honour --shard-domains too: the untraced run then
     shards its detailed windows, while the traced latency run stays
     sequential — the cycle-estimate assertion in [sampled_latencies]
     doubles as a sharded/sequential sampled bit-identity check. *)
  let s =
    Config.with_shard_domains
      (Exp_run.shard_domains ())
      (Config.with_sampling
         (Some (sampled_sampling ~quick))
         (Exp_run.s_config Config.default))
  in
  let point threads per =
    {
      pt_workload = Printf.sprintf "server-mpmc-%d" threads;
      pt_config = "S-sampled";
      pt_machine = s;
      pt_requests = W.Mpmc.requests ~threads ~per_producer:per ();
      pt_build = (fun () -> W.Mpmc.make ~threads ~per_producer:per ~scope:`Class ());
      pt_lat_threads = Some threads;
    }
  in
  [ point 64 (if quick then 4 else 625); point 256 (if quick then 1 else 156) ]

let run_sampled ?(quick = false) () = List.map eval_sampled (sampled_points ~quick)

let table rows =
  let t =
    Table.create ~title:"Server suite — throughput and fence-stall tails"
      ~header:
        [
          "workload"; "config"; "cycles"; "reqs"; "req/kcyc"; "fence%"; "stalls";
          "p50"; "p90"; "p99"; "max"; "lat p50"; "lat p90"; "lat p99"; "gauge";
          "g-p50"; "g-p99"; "g-max";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.sv_workload;
          r.sv_config;
          string_of_int r.sv_cycles;
          string_of_int r.sv_requests;
          Printf.sprintf "%.2f" r.sv_rpk;
          Printf.sprintf "%.1f" r.sv_fence_share;
          string_of_int r.sv_stall_episodes;
          string_of_int r.sv_stall_p50;
          string_of_int r.sv_stall_p90;
          string_of_int r.sv_stall_p99;
          string_of_int r.sv_stall_max;
          (if r.sv_lat_samples = 0 then "-" else string_of_int r.sv_lat_p50);
          (if r.sv_lat_samples = 0 then "-" else string_of_int r.sv_lat_p90);
          (if r.sv_lat_samples = 0 then "-" else string_of_int r.sv_lat_p99);
          (match r.sv_gauge with None -> "-" | Some g -> g.gv_name);
          (match r.sv_gauge with None -> "-" | Some g -> string_of_int g.gv_p50);
          (match r.sv_gauge with None -> "-" | Some g -> string_of_int g.gv_p99);
          (match r.sv_gauge with None -> "-" | Some g -> string_of_int g.gv_max);
        ])
    rows;
  t

(* Throughput gain of a scoped config over the same workload's T row. *)
let gains rows =
  List.filter_map
    (fun r ->
      if r.sv_config = "T" then None
      else
        List.find_opt
          (fun b -> b.sv_workload = r.sv_workload && b.sv_config = "T")
          rows
        |> Option.map (fun b -> (r.sv_workload, r.sv_config, r.sv_rpk /. b.sv_rpk)))
    rows

let json ~quick ~jobs rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"fence-scoping/bench-server/v5\",\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"rows\": [";
  List.iteri
    (fun i r ->
      add
        "%s\n    {\"workload\": %S, \"config\": %S, \"sim_cycles\": %d, \
         \"requests\": %d, \"requests_per_kcycle\": %.4f, \"fence_share_pct\": %.2f, \
         \"stall_episodes\": %d, \"stall_cycles\": %d, \"stall_mean\": %.2f, \
         \"stall_p50\": %d, \"stall_p90\": %d, \"stall_p99\": %d, \"stall_max\": %d, \
         \"latency_samples\": %d, \"latency_p50\": %d, \"latency_p90\": %d, \
         \"latency_p99\": %d, \"latency_max\": %d, \"sampled\": %b, \
         \"latency_sampled\": %b%s}"
        (if i = 0 then "" else ",")
        r.sv_workload r.sv_config r.sv_cycles r.sv_requests r.sv_rpk r.sv_fence_share
        r.sv_stall_episodes r.sv_stall_cycles r.sv_stall_mean r.sv_stall_p50
        r.sv_stall_p90 r.sv_stall_p99 r.sv_stall_max r.sv_lat_samples r.sv_lat_p50
        r.sv_lat_p90 r.sv_lat_p99 r.sv_lat_max r.sv_sampled r.sv_lat_sampled
        (match r.sv_gauge with
        | None -> ""
        | Some g ->
          Printf.sprintf
            ", \"gauge\": {\"name\": %S, \"samples\": %d, \"p50\": %d, \"p90\": %d, \
             \"p99\": %d, \"max\": %d}"
            g.gv_name g.gv_samples g.gv_p50 g.gv_p90 g.gv_p99 g.gv_max))
    rows;
  add "\n  ],\n";
  add "  \"throughput_gain_over_T\": [";
  List.iteri
    (fun i (w, c, g) ->
      add "%s\n    {\"workload\": %S, \"config\": %S, \"gain\": %.4f}"
        (if i = 0 then "" else ",")
        w c g)
    (gains rows);
  add "\n  ]\n}\n";
  Buffer.contents buf
