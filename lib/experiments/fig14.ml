module W = Fscope_workloads
module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type row = {
  bench : string;
  class_cycles : int;
  set_cycles : int;
  class_fence_share : float;
  set_fence_share : float;
}

let benches ~quick =
  let rounds = if quick then 6 else 12 in
  let per_producer = if quick then 8 else 16 in
  let nodes = if quick then 256 else 768 in
  let ptc_nodes = if quick then 128 else 256 in
  let cell ?rounds ?size name scope =
    Exp_run.workload ~params:{ W.Registry.default_params with scope; rounds; size } name
  in
  [
    ("wsq", cell ~rounds "wsq");
    ("msn", cell ~size:per_producer "msn");
    ("harris", cell "harris");
    ("pst", cell ~size:nodes "pst");
    ("ptc", cell ~size:ptc_nodes "ptc");
  ]

let run ?(quick = false) () =
  let keyed = benches ~quick in
  let specs =
    List.concat_map
      (fun (_, make) ->
        [
          { Exp_run.config = Exp_run.s_config Config.default; workload = make `Class };
          { Exp_run.config = Exp_run.s_config Config.default; workload = make `Set };
        ])
      keyed
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  List.mapi
    (fun i (bench, _) ->
      let mc = ms.(2 * i) and mset = ms.((2 * i) + 1) in
      {
        bench;
        class_cycles = mc.Exp_run.cycles;
        set_cycles = mset.Exp_run.cycles;
        class_fence_share = mc.Exp_run.fence_stall_fraction;
        set_fence_share = mset.Exp_run.fence_stall_fraction;
      })
    keyed

let table rows =
  let t =
    Table.create ~title:"Fig. 14 — class scope vs set scope"
      ~header:
        [ "bench"; "class cycles"; "set cycles"; "set/class"; "class stalls"; "set stalls" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.bench;
          string_of_int r.class_cycles;
          string_of_int r.set_cycles;
          Table.cell_f (float_of_int r.set_cycles /. float_of_int r.class_cycles);
          Table.cell_pct r.class_fence_share;
          Table.cell_pct r.set_fence_share;
        ])
    rows;
  t
