(** Cycle-accounting profile runs.

    Bridges the machine/ISA layers to the dependency-free
    {!Fscope_obs.Profile} renderers: extracts the static fence sites,
    scope class ids and backward-edge (spin-candidate) sites from a
    program image, runs the workload once with tracing on, and packs
    the per-core CPI tables plus the metrics registry into a
    {!Fscope_obs.Profile.input}. *)

val fence_sites : Fscope_isa.Program.t -> Fscope_obs.Profile.fence_site list
(** Every static [Fence] instruction, in (thread, pc) program order,
    with its rendered kind. *)

val cids : Fscope_isa.Program.t -> int list
(** Class ids appearing in [Fs_start] markers, sorted, deduplicated. *)

val spin_pcs : Fscope_isa.Program.t -> (int * int) list
(** Static backward control edges [(core, pc)] — the candidate spin
    sites the commit-stream detector can attribute iterations to. *)

val config_label : Fscope_machine.Config.t -> string
(** ["no-fence"], ["traditional"] or ["sfence"], by inspecting the
    config's ablation flag and scope hardware. *)

val profile :
  ?label:string ->
  Fscope_machine.Config.t ->
  Fscope_workloads.Workload.t ->
  Fscope_obs.Profile.input
(** One traced run of the workload, packaged for rendering.
    Observational: functional validation is skipped (the no-fence
    ablation fails it by design), and because tracing is
    timing-neutral the profiled cycle count is bit-identical to an
    unprofiled run.  [label] overrides the config tag. *)

val advise_inputs :
  Fscope_machine.Config.t ->
  Fscope_workloads.Workload.t ->
  Fscope_obs.Profile.input * Fscope_obs.Profile.input
(** [(traditional, sfence)] profiles of the workload, derived from the
    given base config with {!Exp_run.t_config} / {!Exp_run.s_config}
    and fanned across {!Exp_run.jobs} domains — the pair
    {!Fscope_obs.Advisor.analyze} consumes.  Deterministic: the pair
    is bit-identical for any job count or shard count. *)
