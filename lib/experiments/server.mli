(** The high-traffic server artefact: throughput (requests retired per
    kilocycle) and fence-stall tail distributions (p50/p90/p99 over
    the traced log2 [fence/stall_cycles] histogram) for the three
    server workloads under traditional, class-scoped and set-scoped
    fences.

    Every point asserts engine/reference bit-identity, functional
    validation and traced-run timing-neutrality before it becomes a
    row, so a row is identical for any loop, any [--jobs] count and
    any host — BENCH_server.json can be diffed byte-for-byte. *)

type gauge_row = {
  gv_name : string;  (** short gauge label, e.g. ["queue_depth"] *)
  gv_samples : int;
  gv_p50 : int;
  gv_p90 : int;
  gv_p99 : int;
  gv_max : int;
      (** log2-bucket lower bounds over every occupancy transition the
          workload's {!Fscope_workloads.Gauges} sampler observed *)
}

type row = {
  sv_workload : string;
  sv_config : string;  (** ["T"], ["S"] or ["S-set"] *)
  sv_cycles : int;
  sv_requests : int;
  sv_rpk : float;  (** requests retired per 1000 simulated cycles *)
  sv_fence_share : float;  (** % of active cycles in the CPI fence bucket *)
  sv_stall_episodes : int;
  sv_stall_cycles : int;
  sv_stall_mean : float;
  sv_stall_p50 : int;
  sv_stall_p90 : int;
  sv_stall_p99 : int;
  sv_stall_max : int;
      (** percentiles are log2-bucket lower bounds — the histogram's
          native resolution *)
  sv_lat_samples : int;
  sv_lat_p50 : int;
  sv_lat_p90 : int;
  sv_lat_p99 : int;
  sv_lat_max : int;
      (** exact nearest-rank percentiles over per-request
          inject-to-retire latencies (simulated cycles), from a
          dedicated drain-marker trace; zero samples on workloads
          without latency markers *)
  sv_gauge : gauge_row option;
      (** live data-structure occupancy (queue depth / deque occupancy /
          limbo-ring length) from a second dedicated drain-marker trace;
          [None] on workloads without a gauge sampler *)
  sv_sampled : bool;
      (** interval-sampled point: [sv_cycles] / [sv_rpk] /
          [sv_fence_share] are extrapolated estimates (DESIGN §15),
          request counts and validation are exact, and the traced
          stall-tail columns are zero *)
  sv_lat_sampled : bool;
      (** the latency columns come from the measured-window extraction:
          a traced sampled run keeps the inject/retire drain markers,
          and only request pairs with both endpoints inside ONE
          measured detailed window count — exact latencies over the
          covered subset ([sv_lat_samples]), not estimates *)
}

val run : ?quick:bool -> unit -> row list
(** Ten points (3 workloads x T/S/S-set, plus one 64-core MPMC scale
    point), fanned across {!Exp_run.jobs} domains; results are in
    point order and independent of the job count.  Machine configs
    honour {!Exp_run.shard_domains}, so with [--shard-domains N] every
    point runs the domain-sharded engine and the per-point
    engine-vs-reference check asserts sharded/sequential
    bit-identity. *)

val sampled_sampling : quick:bool -> Fscope_machine.Config.sampling
(** The sampling schedule the sampled points run under:
    {!Fscope_machine.Config.sampling_default} at full size, a shrunken
    schedule in quick mode (quick points are smaller than the default
    detailed window, so the estimator would otherwise never leave its
    first window). *)

val run_sampled : ?quick:bool -> unit -> row list
(** The interval-sampled scale points: the 64-core MPMC machine again
    (sampled, so the bench harness can quote the error and wall-clock
    win against the detailed row) and the 256-core MPMC machine, which
    only exists sampled.  Rows carry [sv_sampled = true], validate
    functionally like every other point, and fill the latency columns
    from the measured-window extraction ([sv_lat_sampled]).  Machine
    configs honour {!Exp_run.shard_domains}: the untraced run shards
    its detailed windows, and the traced latency run's cycle estimate
    must reproduce it exactly. *)

val table : row list -> Fscope_util.Table.t

val gains : row list -> (string * string * float) list
(** [(workload, config, throughput gain over that workload's T row)]
    for the scoped configs. *)

val json : quick:bool -> jobs:int -> row list -> string
(** The BENCH_server.json document
    (schema ["fence-scoping/bench-server/v5"] — v4 plus a per-row
    ["latency_sampled"] flag marking rows whose latency columns come
    from the measured-window extraction). *)
