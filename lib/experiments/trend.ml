(* Bench-trajectory differ: load two generations of the BENCH_*
   artefact family, line their points up, and report which metrics
   moved — and whether any moved past a regression threshold.

   Every artefact kind (engine, profile, server) is reduced to the
   same shape: a list of points, each a stable key ("server/<workload>/
   <config>") carrying named metrics with a better-direction and a
   gate class.  Deterministic metrics (simulated cycles, requests per
   kilocycle, fence share, stall tails) gate at [threshold]; wall-clock
   metrics are advisory unless the caller supplies [wall_threshold],
   because two runners legitimately differ in speed.  Gauge summaries
   (v3 server rows) never gate — a deeper queue is context, not a
   regression by itself.

   Two artefacts are comparable only when their "quick" flags agree
   (both absent counts as agreement): a quick run diffed against a
   full-size artefact produces informational rows but can never fail
   the gate, since every delta would be a size artefact. *)

module Json = Fscope_util.Json
module Table = Fscope_util.Table

type direction = Higher_better | Lower_better

type gate = Gate_always | Gate_wall | Gate_never

type metric = {
  m_name : string;
  m_value : float;
  m_dir : direction;
  m_gate : gate;
}

type point = {
  p_key : string;
  p_metrics : metric list;
}

type artefact = {
  a_file : string;
  a_schema : string;
  a_quick : bool option;
  a_points : point list;
}

let load_error file fmt =
  Printf.ksprintf (fun msg -> failwith (Printf.sprintf "%s: %s" file msg)) fmt

(* ------------------------------------------------------------------ *)
(* Schema loaders                                                      *)

let num ~file ~ctx j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some v -> v
  | None -> load_error file "%s: missing numeric field %S" ctx key

let num_opt j key = Option.bind (Json.member key j) Json.to_float

let str ~file ~ctx j key =
  match Option.bind (Json.member key j) Json.to_string with
  | Some v -> v
  | None -> load_error file "%s: missing string field %S" ctx key

let arr j key = Option.value ~default:[] (Option.bind (Json.member key j) Json.to_list)

let quick_flag j = Option.bind (Json.member "quick" j) Json.to_bool

let metric ?(gate = Gate_always) ~dir name value =
  { m_name = name; m_value = value; m_dir = dir; m_gate = gate }

let load_engine ~file j =
  let artefact_points =
    List.map
      (fun a ->
        let name = str ~file ~ctx:"artefacts[]" a "name" in
        (* A self-skipped artefact (v3 "skipped" marker, e.g.
           jobs-scaling on a 1-CPU host) records near-zero seconds that
           no later run can "regress" against — its wall-clock is
           context, never a gate. *)
        let skipped =
          Option.value ~default:false
            (Option.bind (Json.member "skipped" a) Json.to_bool)
        in
        {
          p_key = "artefact/" ^ name;
          p_metrics =
            [ metric
                ~gate:(if skipped then Gate_never else Gate_wall)
                ~dir:Lower_better "seconds"
                (num ~file ~ctx:name a "seconds") ];
        })
      (arr j "artefacts")
  in
  let sampled_points =
    match Json.member "sampled_sim" j with
    | None -> []
    | Some sm ->
      let ctx = "sampled_sim" in
      [
        {
          p_key = "engine/sampled-sim";
          p_metrics =
            [
              metric ~dir:Lower_better "cycles_err_pct" (num ~file ~ctx sm "cycles_err_pct");
              metric ~dir:Lower_better "fence_err_pp" (num ~file ~ctx sm "fence_err_pp");
              metric ~gate:Gate_wall ~dir:Lower_better "detailed_seconds"
                (num ~file ~ctx sm "detailed_seconds");
              metric ~gate:Gate_wall ~dir:Lower_better "sampled_seconds"
                (num ~file ~ctx sm "sampled_seconds");
              metric ~gate:Gate_wall ~dir:Higher_better "speedup"
                (num ~file ~ctx sm "speedup");
            ];
        };
      ]
  in
  (* The shard objects (v4): wall-clock compares only across equal
     hosts, so speedup/seconds stay Gate_wall; the barrier and elision
     counters are engine diagnostics — a rewrite legitimately moves
     them, so they are context (Gate_never), never a gate. *)
  let shard_point ~obj ~key extras =
    match Json.member obj j with
    | None -> []
    | Some ss ->
      let ctx = obj in
      [
        {
          p_key = key;
          p_metrics =
            [
              metric ~gate:Gate_wall ~dir:Lower_better "seq_seconds"
                (num ~file ~ctx ss "seq_seconds");
              metric ~gate:Gate_wall ~dir:Lower_better "shard_seconds"
                (num ~file ~ctx ss "shard_seconds");
              metric ~gate:Gate_wall ~dir:Higher_better "shard_speedup"
                (num ~file ~ctx ss "shard_speedup");
            ]
            @ List.filter_map
                (fun name ->
                  Option.map
                    (fun v -> metric ~gate:Gate_never ~dir:Lower_better name v)
                    (num_opt ss name))
                extras;
        };
      ]
  in
  let shard_points =
    shard_point ~obj:"shard_scaling" ~key:"engine/shard-scaling"
      [ "barriers_total"; "elided_cycles" ]
    @ shard_point ~obj:"sharded_sampled" ~key:"engine/sharded-sampled"
        [ "barriers_total"; "measured_windows" ]
  in
  let engine_points =
    List.map
      (fun r ->
        let ctx = "engine_vs_naive[]" in
        let w = str ~file ~ctx r "workload" and c = str ~file ~ctx r "config" in
        {
          p_key = Printf.sprintf "engine/%s/%s" w c;
          p_metrics =
            [
              metric ~dir:Lower_better "sim_cycles" (num ~file ~ctx r "sim_cycles");
              metric ~gate:Gate_wall ~dir:Lower_better "engine_seconds"
                (num ~file ~ctx r "engine_seconds");
              metric ~gate:Gate_wall ~dir:Lower_better "naive_seconds"
                (num ~file ~ctx r "naive_seconds");
              metric ~gate:Gate_wall ~dir:Higher_better "speedup"
                (num ~file ~ctx r "speedup");
            ];
        })
      (arr j "engine_vs_naive")
  in
  let totals =
    match num_opt j "engine_total_seconds" with
    | None -> []
    | Some s ->
      [
        {
          p_key = "engine/total";
          p_metrics = [ metric ~gate:Gate_wall ~dir:Lower_better "engine_seconds" s ];
        };
      ]
  in
  artefact_points @ sampled_points @ shard_points @ engine_points @ totals

(* One profile object is Obs.Profile.json output: the fence share is
   recomputed here from the CPI leaves so older artefacts (which never
   stored a share) still produce the metric. *)
let load_profile ~file j =
  List.map
    (fun p ->
      let ctx = "profiles[]" in
      let label = str ~file ~ctx p "label" and config = str ~file ~ctx p "config" in
      let active = num ~file ~ctx p "active_cycles" in
      let fence =
        match Json.member "cpi" p with
        | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              if String.length k >= 6 && String.sub k 0 6 = "fence_" then
                acc +. Option.value ~default:0.0 (Json.to_float v)
              else acc)
            0.0 fields
        | _ -> load_error file "profile %s/%s: missing cpi object" label config
      in
      {
        p_key = Printf.sprintf "profile/%s/%s" label config;
        p_metrics =
          [
            metric ~dir:Lower_better "cycles" (num ~file ~ctx p "cycles");
            metric ~dir:Lower_better "active_cycles" active;
            metric ~dir:Lower_better "fence_share_pct"
              (if active <= 0.0 then 0.0 else 100.0 *. fence /. active);
          ];
      })
    (arr j "profiles")

let load_server ~file j =
  List.map
    (fun r ->
      let ctx = "rows[]" in
      let w = str ~file ~ctx r "workload" and c = str ~file ~ctx r "config" in
      let gauges =
        match Json.member "gauge" r with
        | Some (Json.Obj _ as g) ->
          let name =
            Option.value ~default:"gauge"
              (Option.bind (Json.member "name" g) Json.to_string)
          in
          List.filter_map
            (fun key ->
              Option.map
                (fun v ->
                  metric ~gate:Gate_never ~dir:Lower_better
                    (Printf.sprintf "%s_%s" name key) v)
                (num_opt g key))
            [ "p50"; "p99"; "max" ]
        | _ -> []
      in
      (* A row with no latency samples (a workload without markers, or
         a pre-v5 sampled row whose columns were zero placeholders)
         carries zeros there — later generations filling them in must
         not read as a regression from 0. *)
      let lat_gate =
        if Option.value ~default:0.0 (num_opt r "latency_samples") > 0.0 then
          Gate_always
        else Gate_never
      in
      {
        p_key = Printf.sprintf "server/%s/%s" w c;
        p_metrics =
          [
            metric ~dir:Higher_better "requests_per_kcycle"
              (num ~file ~ctx r "requests_per_kcycle");
            metric ~dir:Lower_better "fence_share_pct"
              (num ~file ~ctx r "fence_share_pct");
            metric ~dir:Lower_better "stall_p99" (num ~file ~ctx r "stall_p99");
            metric ~gate:lat_gate ~dir:Lower_better "latency_p99"
              (num ~file ~ctx r "latency_p99");
            metric ~dir:Lower_better "sim_cycles" (num ~file ~ctx r "sim_cycles");
          ]
          @ gauges;
      })
    (arr j "rows")

let known_schemas =
  [
    ("fence-scoping/bench-engine/", load_engine);
    ("fence-scoping/bench-profile/", load_profile);
    ("fence-scoping/bench-server/", load_server);
  ]

let load ~file j =
  let schema =
    match Option.bind (Json.member "schema" j) Json.to_string with
    | Some s -> s
    | None -> load_error file "no \"schema\" field — not a BENCH artefact"
  in
  let loader =
    match
      List.find_opt
        (fun (prefix, _) ->
          String.length schema >= String.length prefix
          && String.sub schema 0 (String.length prefix) = prefix)
        known_schemas
    with
    | Some (_, l) -> l
    | None -> load_error file "unknown schema %S" schema
  in
  { a_file = file; a_schema = schema; a_quick = quick_flag j; a_points = loader ~file j }

let load_file file =
  let j =
    try Json.of_file file
    with Json.Parse_error msg -> load_error file "JSON parse error %s" msg
  in
  load ~file j

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)

type delta = {
  d_key : string;
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_worse_pct : float;
      (* signed percent change toward the metric's worse direction:
         positive means the current run is worse *)
  d_gate : gate;
}

type verdict = {
  v_comparable : bool;
  v_deltas : delta list;
  v_regressions : delta list;
  v_missing : string list;  (* point keys in the baseline only *)
  v_added : string list;  (* point keys in the current run only *)
}

let worse_pct ~dir ~base ~cur =
  let denom = if Float.abs base > 0.0 then Float.abs base else 1.0 in
  let raw =
    match dir with
    | Lower_better -> (cur -. base) /. denom
    | Higher_better -> (base -. cur) /. denom
  in
  100.0 *. raw

let diff ?(threshold = 5.0) ?wall_threshold ~baseline ~current () =
  let comparable = baseline.a_quick = current.a_quick in
  let find points key = List.find_opt (fun p -> p.p_key = key) points in
  let deltas = ref [] in
  List.iter
    (fun bp ->
      match find current.a_points bp.p_key with
      | None -> ()
      | Some cp ->
        List.iter
          (fun bm ->
            match List.find_opt (fun m -> m.m_name = bm.m_name) cp.p_metrics with
            | None -> ()
            | Some cm ->
              deltas :=
                {
                  d_key = bp.p_key;
                  d_metric = bm.m_name;
                  d_base = bm.m_value;
                  d_cur = cm.m_value;
                  d_worse_pct =
                    worse_pct ~dir:bm.m_dir ~base:bm.m_value ~cur:cm.m_value;
                  d_gate = bm.m_gate;
                }
                :: !deltas)
          bp.p_metrics)
    baseline.a_points;
  let deltas = List.rev !deltas in
  let regressions =
    if not comparable then []
    else
      List.filter
        (fun d ->
          match d.d_gate with
          | Gate_always -> d.d_worse_pct > threshold
          | Gate_wall -> (
            match wall_threshold with
            | Some t -> d.d_worse_pct > t
            | None -> false)
          | Gate_never -> false)
        deltas
  in
  let keys points = List.map (fun p -> p.p_key) points in
  let missing =
    List.filter (fun k -> find current.a_points k = None) (keys baseline.a_points)
  in
  let added =
    List.filter (fun k -> find baseline.a_points k = None) (keys current.a_points)
  in
  {
    v_comparable = comparable;
    v_deltas = deltas;
    v_regressions = regressions;
    v_missing = missing;
    v_added = added;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let cell v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let flag ~comparable d =
  if not comparable then "n/c"
  else if d.d_gate = Gate_never then "info"
  else if d.d_gate = Gate_wall then "wall"
  else ""

let table ~verdict ~baseline ~current =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Bench trajectory — %s vs %s%s" baseline.a_file current.a_file
           (if verdict.v_comparable then ""
            else "  [quick flags differ: informational only]"))
      ~header:[ "point"; "metric"; "baseline"; "current"; "worse%"; "note" ]
  in
  List.iter
    (fun d ->
      let regressed = List.memq d verdict.v_regressions in
      Table.add_row t
        [
          d.d_key;
          d.d_metric;
          cell d.d_base;
          cell d.d_cur;
          Printf.sprintf "%+.1f" d.d_worse_pct;
          (if regressed then "REGRESSION" else flag ~comparable:verdict.v_comparable d);
        ])
    verdict.v_deltas;
  List.iter
    (fun k -> Table.add_row t [ k; "(point missing from current run)"; ""; ""; ""; "" ])
    verdict.v_missing;
  List.iter
    (fun k -> Table.add_row t [ k; "(new point, no baseline)"; ""; ""; ""; "" ])
    verdict.v_added;
  t

let summary_line ~verdict ~baseline ~current =
  Printf.sprintf "%s -> %s: %d metrics compared, %d regressions%s%s" baseline.a_file
    current.a_file
    (List.length verdict.v_deltas)
    (List.length verdict.v_regressions)
    (if verdict.v_comparable then "" else " (not comparable: quick flags differ)")
    (match (verdict.v_missing, verdict.v_added) with
    | [], [] -> ""
    | m, a -> Printf.sprintf ", %d points missing, %d new" (List.length m) (List.length a))
