module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type cell = {
  app : string;
  latency : int;
  t_cycles : int;
  s_cycles : int;
  speedup : float;
  t_fence_share : float;
  s_fence_share : float;
}

let run ?quick ?(latencies = [ 200; 300; 500 ]) () =
  let keyed =
    List.concat_map
      (fun (app, workload) ->
        List.map (fun latency -> (app, latency, workload)) latencies)
      (Fig13.apps ?quick ())
  in
  let specs =
    List.concat_map
      (fun (_, latency, w) ->
        let config = Config.v ~mem_latency:latency () in
        [
          { Exp_run.config = Exp_run.t_config config; workload = w };
          { Exp_run.config = Exp_run.s_config config; workload = w };
        ])
      keyed
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  List.mapi
    (fun i (app, latency, _) ->
      let t = ms.(2 * i) and s = ms.((2 * i) + 1) in
      {
        app;
        latency;
        t_cycles = t.Exp_run.cycles;
        s_cycles = s.Exp_run.cycles;
        speedup = Exp_run.speedup ~baseline:t s;
        t_fence_share = t.Exp_run.fence_stall_fraction;
        s_fence_share = s.Exp_run.fence_stall_fraction;
      })
    keyed

let table cells =
  let t =
    Table.create ~title:"Fig. 15 — varying memory access latency"
      ~header:[ "app"; "latency"; "T cycles"; "S cycles"; "speedup"; "T stalls"; "S stalls" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.app;
          string_of_int c.latency;
          string_of_int c.t_cycles;
          string_of_int c.s_cycles;
          Table.cell_x c.speedup;
          Table.cell_pct c.t_fence_share;
          Table.cell_pct c.s_fence_share;
        ])
    cells;
  t
