(** Ablations of the S-Fence hardware design choices called out in
    DESIGN.md §5 (beyond the paper's own sweeps).

    - [fsb_sweep]: how many FSB columns are actually needed?  With one
      column all class scopes alias and set scope has nowhere to go
      (the unit degrades to nearly-traditional fences); the paper's 4
      should already be at the knee.
    - [fss_sweep]: cost of the overflow counter fallback.  A deeply
      nested scope chain (6 classes) overflows small scope stacks, and
      every fence decoded during overflow behaves as a full fence; a
      stack at least as deep as the nesting restores the full
      benefit. *)

type fsb_cell = {
  bench : string;
  fsb_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

val fsb_sweep : ?quick:bool -> ?entries:int list -> unit -> fsb_cell list
val fsb_table : fsb_cell list -> Fscope_util.Table.t

type flavor_row = {
  variant : string;
  cycles : int;
  speedup_vs_t : float;
}

val flavor_sweep : ?quick:bool -> unit -> flavor_row list
(** The §VII combination: wsq with traditional/scoped fences, with and
    without directional flavours (store-store in put, store-load in
    take, load-load in steal). *)

val flavor_table : flavor_row list -> Fscope_util.Table.t

type fss_cell = {
  fss_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

val fss_sweep : ?entries:int list -> unit -> fss_cell list
(** Default entries [1; 2; 4; 5; 6; 8] straddle the cliff at the
    nesting depth (6): one overflowing scope makes the innermost fence
    a full fence, whose stall drains everything the outer scoped
    fences would have skipped. *)

val fss_table : fss_cell list -> Fscope_util.Table.t

val nested_scope_workload : ?depth:int -> ?rounds:int -> unit -> Fscope_workloads.Workload.t
(** The synthetic deep-nesting workload used by [fss_sweep].  Now an
    alias for {!Fscope_workloads.Nested.make}, kept so existing
    callers and notebooks keep working. *)
