module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type cell = {
  app : string;
  rob : int;
  t_cycles : int;
  s_cycles : int;
  speedup : float;
  s_avg_occupancy : float;
}

let run ?quick ?(sizes = [ 64; 128; 256 ]) () =
  let keyed =
    List.concat_map
      (fun (app, workload) -> List.map (fun rob -> (app, rob, workload)) sizes)
      (Fig13.apps ?quick ())
  in
  let specs =
    List.concat_map
      (fun (_, rob, w) ->
        let config = Config.v ~rob_size:rob () in
        [
          { Exp_run.config = Exp_run.t_config config; workload = w };
          { Exp_run.config = Exp_run.s_config config; workload = w };
        ])
      keyed
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  List.mapi
    (fun i (app, rob, _) ->
      let t = ms.(2 * i) and s = ms.((2 * i) + 1) in
      {
        app;
        rob;
        t_cycles = t.Exp_run.cycles;
        s_cycles = s.Exp_run.cycles;
        speedup = Exp_run.speedup ~baseline:t s;
        s_avg_occupancy = s.Exp_run.avg_rob_occupancy;
      })
    keyed

let table cells =
  let t =
    Table.create ~title:"Fig. 16 — varying reorder buffer size"
      ~header:[ "app"; "ROB"; "T cycles"; "S cycles"; "speedup"; "S avg ROB use" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.app;
          string_of_int c.rob;
          string_of_int c.t_cycles;
          string_of_int c.s_cycles;
          Table.cell_x c.speedup;
          Table.cell_f c.s_avg_occupancy;
        ])
    cells;
  t
