module W = Fscope_workloads
module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type fsb_cell = {
  bench : string;
  fsb_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

let fsb_sweep ?(quick = false) ?(entries = [ 1; 2; 4; 8 ]) () =
  let level = W.Privwork.fig12_levels.(2) in
  let rounds = if quick then 6 else 12 in
  let benches =
    [
      ("wsq", W.Wsq.make ~rounds ~scope:`Class ~level ());
      ("dekker", W.Dekker.make ~level ~attempts:(if quick then 10 else 30));
    ]
  in
  let stride = 1 + List.length entries in
  let specs =
    List.concat_map
      (fun (_, workload) ->
        { Exp_run.config = Exp_run.t_config Config.default; workload }
        :: List.map
             (fun fsb ->
               {
                 Exp_run.config = Exp_run.s_config (Config.v ~fsb_entries:fsb ());
                 workload;
               })
             entries)
      benches
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  List.concat
    (List.mapi
       (fun i (bench, _) ->
         let t = ms.(stride * i) in
         List.mapi
           (fun k fsb ->
             let s = ms.((stride * i) + 1 + k) in
             {
               bench;
               fsb_entries = fsb;
               s_cycles = s.Exp_run.cycles;
               speedup_vs_t = Exp_run.speedup ~baseline:t s;
             })
           entries)
       benches)

let fsb_table cells =
  let t =
    Table.create ~title:"Ablation — FSB column count"
      ~header:[ "bench"; "FSB entries"; "S cycles"; "speedup vs T" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ c.bench; string_of_int c.fsb_entries; string_of_int c.s_cycles;
          Table.cell_x c.speedup_vs_t ])
    cells;
  t

(* ------------------------------------------------------------------ *)

type flavor_row = {
  variant : string;
  cycles : int;
  speedup_vs_t : float;
}

let flavor_sweep ?(quick = false) () =
  (* §VII: scope and direction are orthogonal refinements — combine
     them on the wsq harness.  Flavoured *traditional* fences (sfence/
     lfence-style) already help; scoped fences help more; flavoured
     scoped fences are the strongest. *)
  let level = W.Privwork.fig12_levels.(2) in
  let rounds = if quick then 6 else 12 in
  let plain = W.Wsq.make ~rounds ~scope:`Class ~level () in
  let flavored = W.Wsq.make ~rounds ~flavored:true ~scope:`Class ~level () in
  let named =
    [
      ("T (full fences)", Exp_run.t_config Config.default, plain);
      ("T + direction", Exp_run.t_config Config.default, flavored);
      ("S (class scope)", Exp_run.s_config Config.default, plain);
      ("S + direction", Exp_run.s_config Config.default, flavored);
    ]
  in
  let ms =
    Exp_run.measure_all
      (List.map (fun (_, config, workload) -> { Exp_run.config; workload }) named)
  in
  (* The first row (T on the plain harness) is the baseline; runs are
     deterministic, so reusing its measurement is identical to a
     dedicated baseline run. *)
  let t = List.hd ms in
  List.map2
    (fun (variant, _, _) m ->
      { variant; cycles = m.Exp_run.cycles; speedup_vs_t = Exp_run.speedup ~baseline:t m })
    named ms

let flavor_table rows =
  let t =
    Table.create ~title:"Ablation — scope x direction on wsq (paper SVII combination)"
      ~header:[ "variant"; "cycles"; "speedup vs T" ]
  in
  List.iter
    (fun r ->
      Table.add_row t [ r.variant; string_of_int r.cycles; Table.cell_x r.speedup_vs_t ])
    rows;
  t

let nested_scope_workload ?depth ?rounds () = W.Nested.make ?depth ?rounds ()

type fss_cell = {
  fss_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

let fss_sweep ?(entries = [ 1; 2; 4; 5; 6; 8 ]) () =
  let workload = nested_scope_workload () in
  let specs =
    { Exp_run.config = Exp_run.t_config Config.default; workload }
    :: List.map
         (fun fss ->
           (* Hold the MT and FSB generous so only the FSS depth binds:
              the two threads' chains use 12 distinct cids. *)
           let config = Config.v ~fss_entries:fss ~mt_entries:16 ~fsb_entries:8 () in
           { Exp_run.config = Exp_run.s_config config; workload })
         entries
  in
  let ms = Array.of_list (Exp_run.measure_all specs) in
  let t = ms.(0) in
  List.mapi
    (fun i fss ->
      let s = ms.(i + 1) in
      {
        fss_entries = fss;
        s_cycles = s.Exp_run.cycles;
        speedup_vs_t = Exp_run.speedup ~baseline:t s;
      })
    entries

let fss_table cells =
  let t =
    Table.create ~title:"Ablation — FSS depth vs 6-deep scope nesting"
      ~header:[ "FSS entries"; "S cycles"; "speedup vs T" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ string_of_int c.fss_entries; string_of_int c.s_cycles; Table.cell_x c.speedup_vs_t ])
    cells;
  t
