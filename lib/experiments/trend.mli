(** Bench-trajectory differ over the BENCH_* artefact family.

    Loads any schema generation of BENCH_engine / BENCH_profile /
    BENCH_server JSON into one uniform shape — points keyed
    ["server/<workload>/<config>"]-style, each carrying named metrics
    with a better-direction and a gate class — then diffs two
    artefacts point by point.  Deterministic metrics (simulated
    cycles, requests per kilocycle, fence share, stall tails) gate at
    [threshold]; wall-clock metrics are advisory unless
    [wall_threshold] is supplied; gauge summaries never gate.  Two
    artefacts only gate against each other when their ["quick"] flags
    agree (both absent counts as agreement) — a quick run diffed
    against a full-size artefact renders informational rows only. *)

type direction = Higher_better | Lower_better

type gate =
  | Gate_always  (** deterministic metric: gates at [threshold] *)
  | Gate_wall  (** wall-clock: gates only when [wall_threshold] is given *)
  | Gate_never
      (** context — gauge summaries, shard barrier/elision counters,
          placeholder latency columns: never gates *)

type metric = {
  m_name : string;
  m_value : float;
  m_dir : direction;
  m_gate : gate;
}

type point = {
  p_key : string;
  p_metrics : metric list;
}

type artefact = {
  a_file : string;
  a_schema : string;
  a_quick : bool option;  (** the artefact's "quick" flag, when present *)
  a_points : point list;
}

val load : file:string -> Fscope_util.Json.t -> artefact
(** Interpret a parsed artefact; [file] labels error messages and the
    rendered table.  Raises [Failure] on an unknown schema or a
    missing field. *)

val load_file : string -> artefact

type delta = {
  d_key : string;
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_worse_pct : float;
      (** signed percent change toward the metric's worse direction:
          positive means the current run is worse than the baseline *)
  d_gate : gate;
}

type verdict = {
  v_comparable : bool;  (** quick flags agree — regressions can gate *)
  v_deltas : delta list;
  v_regressions : delta list;  (** always empty when not comparable *)
  v_missing : string list;  (** point keys present only in the baseline *)
  v_added : string list;  (** point keys present only in the current run *)
}

val diff :
  ?threshold:float ->
  ?wall_threshold:float ->
  baseline:artefact ->
  current:artefact ->
  unit ->
  verdict
(** Compare matching points.  [threshold] (default 5.0) is the percent
    past which a deterministic metric's worsening counts as a
    regression; [wall_threshold] does the same for wall-clock metrics
    when given. *)

val table : verdict:verdict -> baseline:artefact -> current:artefact -> Fscope_util.Table.t
(** The per-metric trend table, regressions flagged. *)

val summary_line : verdict:verdict -> baseline:artefact -> current:artefact -> string
