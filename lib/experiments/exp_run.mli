(** Shared plumbing for the experiment modules: the four machine
    variants of the evaluation and a measured-run record. *)

val workload :
  ?params:Fscope_workloads.Workload.params -> string -> Fscope_workloads.Workload.t
(** Registry lookup + build; raises [Failure] with
    {!Fscope_workloads.Registry.unknown_message} on an unknown name.
    [params] defaults to {!Fscope_workloads.Workload.default_params}. *)

type measurement = {
  cycles : int;
  fence_stall_fraction : float;
      (** share of per-core active cycles spent commit-blocked on a fence *)
  fence_stalls : int;
  active_cycles : int;
  avg_rob_occupancy : float;
}

val t_config : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** Traditional fences (S-Fence hardware disabled). *)

val s_config : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** S-Fence hardware enabled. *)

val t_plus : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** Traditional + in-window speculation. *)

val s_plus : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** S-Fence + in-window speculation. *)

val nf_config : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** No-fence ablation: fences retire as nops (timing-only; ordering is
    not enforced, so runs under this config skip validation).  The
    profiler's upper bound on what fence elision could buy. *)

val sampled_config :
  ?sampling:Fscope_machine.Config.sampling ->
  Fscope_machine.Config.t ->
  Fscope_machine.Config.t
(** Interval-sampled variant of any machine config (default schedule:
    {!Fscope_machine.Config.sampling_default}).  {!measure} works
    unchanged on such a config — cycle-valued fields become estimates,
    and validation still runs exactly (see DESIGN §15). *)

val measure : Fscope_machine.Config.t -> Fscope_workloads.Workload.t -> measurement
(** Run and summarise.  Functional validation is enforced whenever
    in-window speculation is off (speculation is modelled without the
    replay mechanism real hardware uses, so its runs are timing-only;
    see DESIGN.md). *)

val speedup : baseline:measurement -> measurement -> float

val set_jobs : int -> unit
(** Number of domains {!measure_all} fans experiment points across
    (clamped to at least 1; default 1 = sequential).  Process-global:
    the CLI's [--jobs] flag sets it once at startup. *)

val jobs : unit -> int

val set_shard_domains : int -> unit
(** Number of domains a single simulated machine's cores are split
    across, for the experiment points that opt in (the server suite's
    big-machine point applies it via [Config.with_shard_domains]).
    Clamped to at least 1; default 1 = the sequential engine loop.
    Process-global: the CLIs' [--shard-domains] flag sets it once at
    startup.  Orthogonal to {!set_jobs}, which fans out across
    independent points. *)

val shard_domains : unit -> int

val parmap : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Generic deterministic fan-out over domains: applies [f] to every
    element (work-stealing by atomic index) and returns results in
    input order.  [f] must be safe to run concurrently with itself;
    with [jobs <= 1] everything runs on the calling domain.  The first
    (lowest-index) exception is re-raised after all domains join.
    {!measure_all} and the server artefact are both built on this. *)

type spec = {
  config : Fscope_machine.Config.t;
  workload : Fscope_workloads.Workload.t;
}
(** One experiment point.  Points are independent: a run shares no
    mutable state with any other run, which is what makes the fan-out
    below sound. *)

val measure_all : spec list -> measurement list
(** [measure_all specs] measures every point and returns the results
    in input order.  With [jobs () > 1] the points are distributed
    over that many OCaml domains (work-stealing by atomic index);
    ordering and values are independent of the schedule, so rendered
    tables are byte-identical for any job count.  If a point raises,
    the first (lowest-index) exception is re-raised after all domains
    have joined. *)
