(* fscope — command-line front end for the fence-scoping simulator.

     fscope list                      the available workloads
     fscope run wsq --traditional     run one workload on one machine
     fscope compare pst               T vs S vs T+ vs S+ side by side
     fscope trace dekker --format=chrome -o trace.json
                                      run with the observability layer on
     fscope profile dekker            CPI stack + per-fence-site attribution
     fscope disasm dekker             dump the compiled program *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Checkpoint = Fscope_machine.Checkpoint
module Json = Fscope_util.Json
module Obs = Fscope_obs
module W = Fscope_workloads
module Registry = Fscope_workloads.Registry
module E = Fscope_experiments

let level_of_int n =
  let levels = W.Privwork.fig12_levels in
  if n < 1 || n > Array.length levels then
    failwith (Printf.sprintf "workload level must be 1..%d" (Array.length levels))
  else levels.(n - 1)

let find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed =
  let scope = if set_scope then `Set else `Class in
  let default = Registry.default_params in
  E.Exp_run.workload
    ~params:
      {
        default with
        level = level_of_int level;
        scope;
        rounds;
        size;
        threads;
        seed = Option.value seed ~default:default.seed;
      }
    name

(* Registry misses (and bad flag values) raise [Failure] with a
   one-line message — "did you mean" included; render it without a
   backtrace.  IO and parse errors from artefact / checkpoint files
   get the same treatment: a missing baseline is a usage error, not a
   crash. *)
let guard f =
  try f () with
  | Failure msg ->
    Printf.eprintf "fscope: %s\n" msg;
    1
  | Sys_error msg ->
    Printf.eprintf "fscope: %s\n" msg;
    1
  | Json.Parse_error msg ->
    Printf.eprintf "fscope: invalid JSON: %s\n" msg;
    1

let build_config ?(no_elide = false) ~traditional ~speculate ~mem_latency ~rob ~fsb
    ~mem_model ~no_spin_ff ~shard_domains () =
  Config.v ~sfence:(not traditional) ~speculation:speculate ?mem_latency ?rob_size:rob
    ?fsb_entries:fsb ~mem_model ~elide_barriers:(not no_elide)
    ~spin_fastforward:(not no_spin_ff) ~shard_domains ()

(* --sample accepts "default" or WARMUP:DETAILED:FF (instruction count
   for the fast-forward leg, cycles for the two windows). *)
let parse_sampling = function
  | None -> None
  | Some "default" -> Some Config.sampling_default
  | Some spec -> (
    match String.split_on_char ':' spec with
    | [ w; d; f ] -> (
      match (int_of_string_opt w, int_of_string_opt d, int_of_string_opt f) with
      | Some warmup, Some detailed, Some ff_instrs ->
        Some { Config.warmup; detailed; ff_instrs }
      | _ -> failwith (Printf.sprintf "bad --sample spec %S: non-integer field" spec))
    | _ ->
      failwith
        (Printf.sprintf
           "bad --sample spec %S: expected WARMUP:DETAILED:FF or 'default'" spec))

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let cmd_list () =
  let specs =
    List.sort
      (fun (a : Registry.spec) (b : Registry.spec) -> String.compare a.name b.name)
      Registry.all
  in
  List.iter
    (fun (s : Registry.spec) ->
      Printf.printf "%-14s %-30s %s\n" s.name
        ("[" ^ String.concat "," s.tags ^ "]")
        s.description)
    specs;
  0

(* Shared tail of [run] and [checkpoint resume]: print the run summary
   and validate.  Cycle-valued lines are estimates under sampling, but
   committed counts and final memory stay exact, so validation still
   means something there. *)
let print_run_summary ~speculate ~sampled w (result : Machine.result) =
  if result.Machine.timed_out then begin
    Printf.eprintf "run timed out\n";
    2
  end
  else begin
    Printf.printf "workload:      %s (%s)\n" w.W.Workload.name w.W.Workload.description;
    Printf.printf "cycles:        %d%s\n" result.Machine.cycles
      (if sampled then " (sampled estimate)" else "");
    Printf.printf "fence stalls:  %d (%.1f%% of active cycles)\n"
      (Machine.fence_stall_cycles result)
      (100. *. Machine.fence_stall_fraction result);
    Printf.printf "instructions:  %d committed\n" (Machine.committed_instrs result);
    Printf.printf "avg ROB use:   %.1f\n" (Machine.avg_rob_occupancy result);
    (if speculate then Printf.printf "validation:    skipped (in-window speculation is timing-only)\n"
     else
       match w.W.Workload.validate result with
       | Ok () -> Printf.printf "validation:    ok\n"
       | Error msg -> Printf.printf "validation:    FAILED — %s\n" msg);
    0
  end

let cmd_run name level set_scope traditional speculate mem_latency rob fsb mem_model
    no_spin_ff no_elide shard_domains sample checkpoint_every checkpoint_out rounds size
    threads seed =
  guard @@ fun () ->
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~no_elide ~traditional ~speculate ~mem_latency ~rob ~fsb ~mem_model
      ~no_spin_ff ~shard_domains ()
  in
  let sampling = parse_sampling sample in
  let config = Config.with_sampling sampling config in
  let checkpoint =
    match checkpoint_every with
    | None -> None
    | Some every ->
      if every <= 0 then failwith "--checkpoint-every must be positive";
      if sampling <> None then
        failwith "--checkpoint-every cannot be combined with --sample";
      Some (every, fun ck -> Checkpoint.save ck ~file:checkpoint_out)
  in
  let result = Machine.run ?checkpoint config w.W.Workload.program in
  (match checkpoint with
  | Some _ when Sys.file_exists checkpoint_out ->
    Printf.eprintf "checkpoint:    %s\n" checkpoint_out
  | _ -> ());
  print_run_summary ~speculate ~sampled:(sampling <> None) w result

let cmd_compare name level set_scope jobs =
  guard @@ fun () ->
  E.Exp_run.set_jobs jobs;
  let w =
    find_workload name ~level ~set_scope ~rounds:None ~size:None ~threads:None
      ~seed:None
  in
  let variants =
    [
      ("T", E.Exp_run.t_config);
      ("S", E.Exp_run.s_config);
      ("T+", E.Exp_run.t_plus);
      ("S+", E.Exp_run.s_plus);
    ]
  in
  let ms =
    E.Exp_run.measure_all
      (List.map
         (fun (_, mk) -> { E.Exp_run.config = mk Config.default; workload = w })
         variants)
  in
  let base = List.hd ms in
  Printf.printf "%-4s %10s %14s %9s\n" "cfg" "cycles" "fence stalls" "speedup";
  List.iter2
    (fun (label, _) m ->
      Printf.printf "%-4s %10d %13.1f%% %8.2fx\n" label m.E.Exp_run.cycles
        (100. *. m.E.Exp_run.fence_stall_fraction)
        (E.Exp_run.speedup ~baseline:base m))
    variants ms;
  0

let cmd_trace name level set_scope traditional speculate mem_latency rob fsb mem_model
    shard_domains format output ring_capacity rounds size threads seed =
  guard @@ fun () ->
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~traditional ~speculate ~mem_latency ~rob ~fsb ~mem_model
      ~no_spin_ff:false ~shard_domains ()
  in
  let cores = Fscope_isa.Program.thread_count w.W.Workload.program in
  let trace = Obs.Trace.create ~ring_capacity ~cores () in
  let result = Machine.run ~obs:trace config w.W.Workload.program in
  match result.Machine.obs with
  | None -> Printf.eprintf "internal error: traced run produced no report\n"; 1
  | Some report ->
    (* Server workloads carry an occupancy gauge recoverable from the
       drain stream; folding it into the report's registry surfaces it
       in every sink (partial if the ring dropped events — the summary
       warns). *)
    (match W.Gauges.for_workload ~name:w.W.Workload.name w.W.Workload.program with
    | Some g -> g.W.Gauges.fold report.Obs.Report.metrics report.Obs.Report.events
    | None -> ());
    let text =
      match format with
      | `Jsonl -> Obs.Sink.jsonl report
      | `Chrome -> Obs.Sink.chrome report
      | `Summary -> Obs.Sink.summary report
    in
    (match output with
    | None -> print_string text
    | Some file ->
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      Printf.eprintf "wrote %s (%d events, %d dropped)\n" file
        (Obs.Report.events_count report) report.Obs.Report.dropped);
    if result.Machine.timed_out then begin
      Printf.eprintf "run timed out\n";
      2
    end
    else 0

let cmd_profile name level set_scope traditional speculate no_fence mem_latency rob fsb
    mem_model no_spin_ff shard_domains max_cycles profile_format output rounds size
    threads seed =
  guard @@ fun () ->
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~traditional ~speculate ~mem_latency ~rob ~fsb ~mem_model ~no_spin_ff
      ~shard_domains ()
  in
  let config = if no_fence then Config.with_nop_fences true config else config in
  let config =
    match max_cycles with Some n -> Config.with_max_cycles n config | None -> config
  in
  let input = E.Profiling.profile config w in
  let text =
    match profile_format with
    | `Text -> Obs.Profile.text input
    | `Json -> Obs.Profile.json input ^ "\n"
  in
  (match output with
  | None -> print_string text
  | Some file ->
    let oc = open_out file in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s\n" file);
  0

let cmd_advise name level set_scope mem_latency rob fsb mem_model no_spin_ff
    shard_domains jobs max_cycles advise_format output rounds size threads seed =
  guard @@ fun () ->
  E.Exp_run.set_jobs jobs;
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~traditional:false ~speculate:false ~mem_latency ~rob ~fsb ~mem_model
      ~no_spin_ff ~shard_domains ()
  in
  let config =
    match max_cycles with Some n -> Config.with_max_cycles n config | None -> config
  in
  let t_input, s_input = E.Profiling.advise_inputs config w in
  let advice = Obs.Advisor.analyze ~scoped:s_input t_input in
  let text =
    match advise_format with
    | `Text -> Obs.Advisor.text advice
    | `Json -> Obs.Advisor.json advice ^ "\n"
  in
  (match output with
  | None -> print_string text
  | Some file ->
    let oc = open_out file in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s\n" file);
  0

(* Compare the current BENCH_* artefacts against a baseline generation:
   exit 0 when nothing regressed, 2 when a gated metric moved past the
   threshold, 1 when an artefact fails to load. *)
let cmd_report against current threshold wall_threshold =
  guard @@ fun () ->
  let bench_names = [ "BENCH_engine.json"; "BENCH_profile.json"; "BENCH_server.json" ] in
  let pairs =
    if Sys.file_exists against && Sys.is_directory against then begin
      let cur_dir = Option.value current ~default:"." in
      let pairs =
        List.filter_map
          (fun n ->
            let b = Filename.concat against n and c = Filename.concat cur_dir n in
            if Sys.file_exists b && Sys.file_exists c then Some (b, c) else None)
          bench_names
      in
      if pairs = [] then
        failwith
          (Printf.sprintf "no BENCH_*.json pair found under %s and %s" against cur_dir);
      pairs
    end
    else begin
      if not (Sys.file_exists against) then
        failwith (Printf.sprintf "baseline %s does not exist" against);
      let cur = Option.value current ~default:(Filename.basename against) in
      if not (Sys.file_exists cur) then
        failwith (Printf.sprintf "current artefact %s does not exist" cur);
      [ (against, cur) ]
    end
  in
  let regressed = ref false in
  List.iter
    (fun (b, c) ->
      let baseline = E.Trend.load_file b and current = E.Trend.load_file c in
      let verdict = E.Trend.diff ~threshold ?wall_threshold ~baseline ~current () in
      Fscope_util.Table.print (E.Trend.table ~verdict ~baseline ~current);
      print_endline (E.Trend.summary_line ~verdict ~baseline ~current);
      print_newline ();
      if verdict.E.Trend.v_regressions <> [] then regressed := true)
    pairs;
  if !regressed then 2 else 0

let cmd_disasm name level set_scope =
  guard @@ fun () ->
  let w =
    find_workload name ~level ~set_scope ~rounds:None ~size:None ~threads:None
      ~seed:None
  in
  Format.printf "%a@." Fscope_isa.Program.pp_disassembly w.W.Workload.program;
  0

(* Run the workload just far enough to capture one whole-machine
   checkpoint at the first visited cycle >= --at, write it, and abort
   the rest of the run (the sink raises to cut the simulation short).
   The same machine flags must be given again at resume time — the
   checkpoint digest covers them. *)
exception Captured

let cmd_checkpoint_save name level set_scope traditional speculate mem_latency rob fsb
    mem_model no_spin_ff shard_domains rounds size threads seed at out compact =
  guard @@ fun () ->
  if at <= 0 then failwith "--at must be positive";
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~traditional ~speculate ~mem_latency ~rob ~fsb ~mem_model ~no_spin_ff
      ~shard_domains ()
  in
  let saved = ref None in
  let sink ck =
    saved := Some ck;
    raise Captured
  in
  let result =
    try Some (Machine.run ~checkpoint:(at, sink) config w.W.Workload.program)
    with Captured -> None
  in
  match !saved with
  | Some ck ->
    Checkpoint.save ~compact ck ~file:out;
    Printf.printf "wrote %s (cycle %d, %d cores, %d memory words)\n" out
      ck.Checkpoint.cycle
      (Array.length ck.Checkpoint.cores)
      (Array.length ck.Checkpoint.mem);
    0
  | None ->
    let finished =
      match result with
      | Some r -> Printf.sprintf "finished at cycle %d" r.Machine.cycles
      | None -> "finished"
    in
    Printf.eprintf "fscope: run %s before reaching --at %d; no checkpoint written\n"
      finished at;
    1

let cmd_checkpoint_resume name level set_scope traditional speculate mem_latency rob fsb
    mem_model no_spin_ff shard_domains max_cycles rounds size threads seed from =
  guard @@ fun () ->
  let w = find_workload name ~level ~set_scope ~rounds ~size ~threads ~seed in
  let config =
    build_config ~traditional ~speculate ~mem_latency ~rob ~fsb ~mem_model ~no_spin_ff
      ~shard_domains ()
  in
  let config =
    match max_cycles with Some n -> Config.with_max_cycles n config | None -> config
  in
  let ck = Checkpoint.load ~file:from in
  let result = Machine.run ~resume:ck config w.W.Workload.program in
  Printf.eprintf "resumed from %s at cycle %d\n" from ck.Checkpoint.cycle;
  print_run_summary ~speculate ~sampled:false w result

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,fscope list)).")

let level_arg =
  Arg.(value & opt int 3 & info [ "level"; "l" ] ~docv:"N" ~doc:"Fig. 12 private-workload level (1-6).")

let set_scope_arg =
  Arg.(value & flag & info [ "set-scope" ] ~doc:"Use S-FENCE[set] instead of S-FENCE[class] where the workload supports both.")

let traditional_arg =
  Arg.(value & flag & info [ "traditional"; "t" ] ~doc:"Disable the S-Fence hardware (baseline T).")

let speculate_arg =
  Arg.(value & flag & info [ "speculate" ] ~doc:"Enable in-window speculation (timing-only; validation is skipped).")

let mem_latency_arg =
  Arg.(value & opt (some int) None & info [ "mem-latency" ] ~docv:"CYCLES" ~doc:"Memory latency (Table III default: 300).")

let rob_arg =
  Arg.(value & opt (some int) None & info [ "rob" ] ~docv:"ENTRIES" ~doc:"Reorder buffer size (default 128).")

let fsb_arg =
  Arg.(value & opt (some int) None & info [ "fsb" ] ~docv:"ENTRIES" ~doc:"Fence scope bit columns (default 4).")

let mem_model_arg =
  Arg.(
    value
    & opt (enum [ ("hierarchy", Config.Hierarchy); ("ideal", Config.Ideal) ]) Config.Hierarchy
    & info [ "mem-model" ] ~docv:"MODEL"
        ~doc:
          "Memory backend: $(b,hierarchy) (MESI L1/L2 plus main memory, the default) or \
           $(b,ideal) (every access a 1-cycle hit — isolates pipeline effects from the \
           memory system).")

let shard_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "shard-domains" ] ~docv:"N"
        ~doc:
          "Split the simulated machine's cores across $(docv) OCaml domains (default 1: \
           the sequential engine loop).  Timing-neutral: the sharded engine is \
           bit-identical to the sequential one — this only trades simulator \
           wall-clock on multi-core hosts.")

let no_spin_ff_arg =
  Arg.(
    value & flag
    & info [ "no-spin-ff" ]
        ~doc:
          "Disable the engine's spin fast-forward (sleeping provably-stable spin loops \
           until a cross-core store wakes them).  Timing-neutral: results are \
           bit-identical either way; this only trades simulator wall-clock for a \
           simpler execution.")

let no_elide_arg =
  Arg.(
    value & flag
    & info [ "no-elide-barriers" ]
        ~doc:
          "Run every sharded cycle in full lockstep instead of eliding barriers over \
           provably non-interacting spans.  Timing-neutral diagnostic: results are \
           bit-identical either way; only the sharded engine's barrier counters \
           change.  No effect without $(b,--shard-domains).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome); ("summary", `Summary) ]) `Summary
    & info [ "format"; "f" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,jsonl) (one event per line), $(b,chrome) (trace_event JSON for chrome://tracing / Perfetto), or $(b,summary) (human digest).")

let output_arg =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the rendered trace to $(docv) instead of stdout.")

let ring_arg =
  Arg.(value & opt int 65536 & info [ "ring-capacity" ] ~docv:"EVENTS" ~doc:"Per-core event ring capacity; oldest events are dropped beyond it.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the four machine variants across $(docv) OCaml domains.  Runs are \
           deterministic and results keep their order, so the output is \
           byte-identical for any job count.")

let rounds_arg =
  Arg.(value & opt (some int) None & info [ "rounds" ] ~docv:"N" ~doc:"Rounds for wsq/nested-scopes (workload default otherwise).")

let size_arg =
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N" ~doc:"Principal size knob (per_producer/keys/nodes/bodies/patches/requests).")

let threads_arg =
  Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc:"Cores for workloads with a thread-count knob (msn, wsq, spin-barrier, server-*).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Traffic trace seed for the server-* workloads (default 1).")

let sample_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sample" ] ~docv:"SPEC"
        ~doc:
          "Interval sampling: $(b,default) (2k-cycle warmup, 10k-cycle detailed window, \
           200k-instruction functional fast-forward) or an explicit \
           $(b,WARMUP:DETAILED:FF) triple.  Cycle-valued metrics become extrapolated \
           estimates; committed-instruction counts, final memory and validation stay \
           exact.  See DESIGN §15 for the error contract.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"CYCLES"
        ~doc:
          "Write a whole-machine checkpoint to $(b,--checkpoint-out) at (roughly) every \
           $(docv) cycles, each overwriting the last — a crashed or cancelled run can \
           be resumed with $(b,fscope checkpoint resume).  Composes with \
           $(b,--shard-domains): the sharded engine captures at the same cycles as \
           the sequential one.  Incompatible with $(b,--sample).")

let checkpoint_out_arg =
  Arg.(
    value & opt string "fscope.ckpt.json"
    & info [ "checkpoint-out" ] ~docv:"FILE"
        ~doc:"Destination for $(b,--checkpoint-every) snapshots (default \
              fscope.ckpt.json).")

let at_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "at" ] ~docv:"CYCLE"
        ~doc:
          "Capture the checkpoint at the first visited cycle at or past $(docv) (the \
           event-horizon engine can jump over exact multiples).")

let ckpt_out_arg =
  Arg.(
    value & opt string "fscope.ckpt.json"
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:"Checkpoint file to write (default fscope.ckpt.json).")

let compact_arg =
  Arg.(
    value & flag
    & info [ "compact" ]
        ~doc:
          "Write the checkpoint in the compact v1z form: minified (the plain form \
           pretty-prints), with mostly-zero integer arrays (memory image, register \
           files, predictor tables) zero-run elided and repeated elements (cache \
           slots, ROB operand columns) run-length deduplicated.  Several times \
           smaller at production core counts; $(b,fscope checkpoint resume) reads \
           both forms and the resumed run is bit-identical either way.")

let from_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "from" ] ~docv:"FILE" ~doc:"Checkpoint file to resume from.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads") Term.(const cmd_list $ const ())

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload on one machine configuration")
    Term.(
      const cmd_run $ workload_arg $ level_arg $ set_scope_arg $ traditional_arg
      $ speculate_arg $ mem_latency_arg $ rob_arg $ fsb_arg $ mem_model_arg
      $ no_spin_ff_arg $ no_elide_arg $ shard_domains_arg $ sample_arg
      $ checkpoint_every_arg $ checkpoint_out_arg $ rounds_arg $ size_arg $ threads_arg
      $ seed_arg)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Run a workload under T, S, T+ and S+ and compare")
    Term.(const cmd_compare $ workload_arg $ level_arg $ set_scope_arg $ jobs_arg)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one workload with the observability layer on and render the event trace")
    Term.(
      const cmd_trace $ workload_arg $ level_arg $ set_scope_arg $ traditional_arg
      $ speculate_arg $ mem_latency_arg $ rob_arg $ fsb_arg $ mem_model_arg
      $ shard_domains_arg $ format_arg $ output_arg $ ring_arg $ rounds_arg $ size_arg
      $ threads_arg $ seed_arg)

let no_fence_arg =
  Arg.(value & flag & info [ "no-fence" ] ~doc:"Retire fences as nops (timing-only ablation; validation is skipped).")

let max_cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Cycle cap for the run (default 30M).  Useful under $(b,--no-fence), which \
           can break a workload's termination protocol; a capped run is profiled and \
           flagged as timed out.")

let profile_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format"; "f" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (aligned tables) or $(b,json) (one object).")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one workload with cycle accounting on and print its CPI stack, \
          per-fence-site attribution, per-scope totals and spin candidates")
    Term.(
      const cmd_profile $ workload_arg $ level_arg $ set_scope_arg $ traditional_arg
      $ speculate_arg $ no_fence_arg $ mem_latency_arg $ rob_arg $ fsb_arg
      $ mem_model_arg $ no_spin_ff_arg $ shard_domains_arg $ max_cycles_arg
      $ profile_format_arg $ output_arg $ rounds_arg $ size_arg $ threads_arg
      $ seed_arg)

let advise_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format"; "f" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (ranked table) or $(b,json) (one object).")

let advise_cmd =
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Profile a workload under traditional and scoped fences and rank its static \
          fence sites by the cycles expected back if each became scoped, with a \
          whole-run speedup prediction")
    Term.(
      const cmd_advise $ workload_arg $ level_arg $ set_scope_arg $ mem_latency_arg
      $ rob_arg $ fsb_arg $ mem_model_arg $ no_spin_ff_arg $ shard_domains_arg
      $ jobs_arg $ max_cycles_arg $ advise_format_arg $ output_arg $ rounds_arg
      $ size_arg $ threads_arg $ seed_arg)

let against_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "against" ] ~docv:"DIR|JSON"
        ~doc:
          "Baseline to diff against: a directory holding BENCH_*.json artefacts \
           (matched by name against the current directory, or $(b,--current)) or one \
           artefact file.")

let current_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "current" ] ~docv:"DIR|JSON"
        ~doc:
          "Current artefacts to compare (default: the working directory when \
           $(b,--against) is a directory, else the baseline's basename).")

let threshold_arg =
  Arg.(
    value & opt float 5.0
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Regression threshold for deterministic metrics, in percent worsening \
           (default 5).")

let wall_threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-threshold" ] ~docv:"PCT"
        ~doc:
          "Also gate wall-clock metrics at $(docv) percent worsening (default: \
           wall-clock rows are advisory).")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff BENCH_* artefacts against a baseline generation and render the trend \
          table; exits 2 when a gated metric worsened past the threshold")
    Term.(
      const cmd_report $ against_arg $ current_arg $ threshold_arg $ wall_threshold_arg)

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print the compiled program of a workload")
    Term.(const cmd_disasm $ workload_arg $ level_arg $ set_scope_arg)

let checkpoint_save_cmd =
  Cmd.v
    (Cmd.info "save"
       ~doc:
         "Run a workload up to a cycle and write the whole-machine state as a \
          checkpoint file (the rest of the run is skipped)")
    Term.(
      const cmd_checkpoint_save $ workload_arg $ level_arg $ set_scope_arg
      $ traditional_arg $ speculate_arg $ mem_latency_arg $ rob_arg $ fsb_arg
      $ mem_model_arg $ no_spin_ff_arg $ shard_domains_arg $ rounds_arg $ size_arg
      $ threads_arg $ seed_arg $ at_arg $ ckpt_out_arg $ compact_arg)

let checkpoint_resume_cmd =
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume a run from a checkpoint file and carry it to completion — \
          bit-identical to the uninterrupted run.  Machine flags and workload knobs \
          must match the saving run (the checkpoint digest covers them); \
          $(b,--max-cycles) may differ, so a resume can extend the cycle budget.")
    Term.(
      const cmd_checkpoint_resume $ workload_arg $ level_arg $ set_scope_arg
      $ traditional_arg $ speculate_arg $ mem_latency_arg $ rob_arg $ fsb_arg
      $ mem_model_arg $ no_spin_ff_arg $ shard_domains_arg $ max_cycles_arg
      $ rounds_arg $ size_arg $ threads_arg $ seed_arg $ from_arg)

let checkpoint_cmd =
  Cmd.group
    (Cmd.info "checkpoint"
       ~doc:"Save and resume whole-machine checkpoints (DESIGN §15)")
    [ checkpoint_save_cmd; checkpoint_resume_cmd ]

let main_cmd =
  let doc = "cycle-level simulator for scoped fences (SC '14 'Fence Scoping')" in
  Cmd.group (Cmd.info "fscope" ~doc)
    [
      list_cmd; run_cmd; compare_cmd; trace_cmd; profile_cmd; advise_cmd; report_cmd;
      disasm_cmd; checkpoint_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
