module Cache = Fscope_mem.Cache

let test_line_addr () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  Alcotest.(check int) "line of 13" 8 (Cache.line_addr c 13);
  Alcotest.(check int) "line of 8" 8 (Cache.line_addr c 8);
  Alcotest.(check int) "line of 7" 0 (Cache.line_addr c 7)

let test_insert_find () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  Alcotest.(check (option int)) "miss" None (Cache.find c 13);
  ignore (Cache.insert c 13 7);
  Alcotest.(check (option int)) "hit same line" (Some 7) (Cache.find c 8);
  Alcotest.(check bool) "resident" true (Cache.resident c 15);
  Alcotest.(check bool) "other line absent" false (Cache.resident c 16)

let test_lru_eviction () =
  let c = Cache.create ~sets:2 ~ways:2 ~line_words:8 in
  (* Lines 0, 32, 64 all map to set 0 (line/8 mod 2). *)
  ignore (Cache.insert c 0 0);
  ignore (Cache.insert c 32 1);
  ignore (Cache.find c 0);
  (* line 32 is now LRU *)
  (match Cache.insert c 64 2 with
  | Some (victim, payload) ->
    Alcotest.(check int) "victim is line 32" 32 victim;
    Alcotest.(check int) "payload" 1 payload
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "line 0 survives" true (Cache.resident c 0)

let test_invalidate () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  ignore (Cache.insert c 8 1);
  Alcotest.(check (option int)) "invalidate returns payload" (Some 1) (Cache.invalidate c 8);
  Alcotest.(check (option int)) "gone" None (Cache.find c 8);
  Alcotest.(check (option int)) "double invalidate" None (Cache.invalidate c 8)

let test_update () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  ignore (Cache.insert c 8 1);
  Cache.update c 10 9;
  Alcotest.(check (option int)) "updated" (Some 9) (Cache.peek c 8);
  Alcotest.check_raises "update absent" (Invalid_argument "Cache.update: line not resident")
    (fun () -> Cache.update c 100 0)

let test_insert_duplicate () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  ignore (Cache.insert c 8 1);
  Alcotest.check_raises "dup insert" (Invalid_argument "Cache.insert: line already resident")
    (fun () -> ignore (Cache.insert c 9 2))

let test_iter () =
  let c = Cache.create ~sets:4 ~ways:2 ~line_words:8 in
  ignore (Cache.insert c 0 10);
  ignore (Cache.insert c 8 11);
  let seen = ref [] in
  Cache.iter c (fun line payload -> seen := (line, payload) :: !seen);
  Alcotest.(check int) "two lines" 2 (List.length !seen)

let test_peek_no_lru_effect () =
  let c = Cache.create ~sets:2 ~ways:2 ~line_words:8 in
  ignore (Cache.insert c 0 0);
  ignore (Cache.insert c 32 1);
  ignore (Cache.peek c 0);
  (* peek must NOT refresh line 0, so line 0 stays LRU and is evicted *)
  (match Cache.insert c 64 2 with
  | Some (victim, _) -> Alcotest.(check int) "victim is line 0" 0 victim
  | None -> Alcotest.fail "expected eviction")

let tests =
  [
    Alcotest.test_case "line addressing" `Quick test_line_addr;
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "duplicate insert rejected" `Quick test_insert_duplicate;
    Alcotest.test_case "iter" `Quick test_iter;
    Alcotest.test_case "peek preserves LRU" `Quick test_peek_no_lru_effect;
  ]
