module Reg = Fscope_isa.Reg
module Instr = Fscope_isa.Instr
module Program = Fscope_isa.Program
module Asm = Fscope_isa.Asm
module Layout = Fscope_isa.Layout

let r = Reg.r

let test_reg_bounds () =
  Alcotest.check_raises "r 32 rejected" (Invalid_argument "Reg.r: 32 out of range")
    (fun () -> ignore (r 32));
  Alcotest.(check int) "index" 5 (Reg.index (r 5));
  Alcotest.(check bool) "zero" true (Reg.equal Reg.zero (r 0))

let test_instr_classify () =
  let load = Instr.Load { dst = r 1; base = r 2; off = 0; flagged = false } in
  let store = Instr.Store { src = r 1; base = r 2; off = 0; flagged = true } in
  Alcotest.(check bool) "load is memory" true (Instr.is_memory load);
  Alcotest.(check bool) "store is store-like" true (Instr.is_store_like store);
  Alcotest.(check bool) "load is not store-like" false (Instr.is_store_like load);
  Alcotest.(check bool) "fence is not memory" false (Instr.is_memory (Instr.Fence Fscope_isa.Fence_kind.full))

let test_instr_regs () =
  let cas =
    Instr.Cas { dst = r 1; base = r 2; off = 4; expected = r 3; desired = r 4; flagged = false }
  in
  Alcotest.(check (option int)) "cas writes dst" (Some 1)
    (Option.map Reg.index (Instr.writes_reg cas));
  Alcotest.(check (list int)) "cas reads" [ 2; 3; 4 ]
    (List.map Reg.index (Instr.reads_regs cas));
  (* writes to r0 are discarded *)
  Alcotest.(check (option int)) "write to r0 hidden" None
    (Option.map Reg.index (Instr.writes_reg (Instr.Li (Reg.zero, 3))))

let test_asm_labels () =
  let asm = Asm.create () in
  let l_end = Asm.fresh_label asm in
  Asm.emit asm (Instr.Li (r 1, 5));
  Asm.branch asm Instr.Eqz (r 1) l_end;
  Asm.emit asm (Instr.Li (r 2, 6));
  Asm.place asm l_end;
  Asm.emit asm Instr.Halt;
  let code = Asm.finish asm in
  Alcotest.(check int) "length" 4 (Array.length code);
  match code.(1) with
  | Instr.Branch { target; _ } -> Alcotest.(check int) "target" 3 target
  | _ -> Alcotest.fail "expected branch"

let test_asm_unplaced_label () =
  let asm = Asm.create () in
  let l = Asm.fresh_label asm in
  Asm.jump asm l;
  Alcotest.check_raises "unplaced" (Invalid_argument "Asm.finish: unplaced label")
    (fun () -> ignore (Asm.finish asm))

let test_asm_backward_label () =
  let asm = Asm.create () in
  let l_top = Asm.fresh_label asm in
  Asm.place asm l_top;
  Asm.emit asm Instr.Nop;
  Asm.jump asm l_top;
  let code = Asm.finish asm in
  match code.(1) with
  | Instr.Jump 0 -> ()
  | _ -> Alcotest.fail "expected jump to 0"

let test_layout_alloc () =
  let l = Layout.create ~line_words:8 () in
  let a = Layout.alloc l "a" 3 in
  let b = Layout.alloc_aligned l "b" 5 in
  let c = Layout.alloc l "c" 1 in
  Alcotest.(check int) "a at 0" 0 a;
  Alcotest.(check int) "b aligned" 8 b;
  Alcotest.(check int) "c after padded b" 16 c;
  Alcotest.(check int) "size" 17 (Layout.size l);
  Alcotest.(check int) "address_of" 8 (Layout.address_of l "b")

let test_layout_duplicate () =
  let l = Layout.create () in
  ignore (Layout.alloc l "x" 1);
  Alcotest.check_raises "dup" (Invalid_argument "Layout.alloc: duplicate symbol x")
    (fun () -> ignore (Layout.alloc l "x" 1))

let test_layout_init () =
  let l = Layout.create () in
  let base = Layout.alloc l "arr" 4 in
  Layout.init_array l base [| 9; 8; 7; 6 |];
  Alcotest.(check int) "four initials" 4 (List.length (Layout.initials l));
  Alcotest.check_raises "oob init" (Invalid_argument "Layout.init: address 99 outside allocations")
    (fun () -> Layout.init l 99 0)

let test_program_validation () =
  let bad_branch =
    [| Instr.Branch { cond = Instr.Eqz; src = r 1; target = 9 }; Instr.Halt |]
  in
  Alcotest.check_raises "branch out of range"
    (Invalid_argument "Program: thread 0 pc 0 branches to 9, out of range") (fun () ->
      ignore (Program.make ~threads:[ bad_branch ] ~mem_words:8 ()));
  let p =
    Program.make
      ~threads:[ [| Instr.Halt |]; [| Instr.Nop; Instr.Halt |] ]
      ~mem_words:16 ~init:[ (3, 42) ]
      ~symbols:[ ("x", 3) ]
      ()
  in
  Alcotest.(check int) "threads" 2 (Program.thread_count p);
  Alcotest.(check int) "symbol" 3 (Program.address_of p "x");
  Alcotest.(check int) "init applied" 42 (Program.initial_memory p).(3);
  Alcotest.(check int) "total instrs" 3 (Program.total_instrs p)

let tests =
  [
    Alcotest.test_case "reg bounds" `Quick test_reg_bounds;
    Alcotest.test_case "instr classification" `Quick test_instr_classify;
    Alcotest.test_case "instr reg usage" `Quick test_instr_regs;
    Alcotest.test_case "asm forward labels" `Quick test_asm_labels;
    Alcotest.test_case "asm unplaced label" `Quick test_asm_unplaced_label;
    Alcotest.test_case "asm backward label" `Quick test_asm_backward_label;
    Alcotest.test_case "layout alloc/align" `Quick test_layout_alloc;
    Alcotest.test_case "layout duplicate" `Quick test_layout_duplicate;
    Alcotest.test_case "layout init" `Quick test_layout_init;
    Alcotest.test_case "program validation" `Quick test_program_validation;
  ]
