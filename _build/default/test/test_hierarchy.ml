module H = Fscope_mem.Hierarchy
module Rng = Fscope_util.Rng

let small_config =
  {
    H.default_config with
    H.l1_sets = 4;
    l1_ways = 2;
    l2_sets = 16;
    l2_ways = 4;
  }

let cfg = H.default_config

let test_cold_miss_then_hit () =
  let h = H.create ~cores:2 cfg in
  let miss = H.access h ~core:0 H.Read ~addr:100 in
  Alcotest.(check int) "cold miss goes to memory"
    (cfg.l1_latency + cfg.l2_latency + cfg.mem_latency)
    miss;
  let hit = H.access h ~core:0 H.Read ~addr:101 in
  Alcotest.(check int) "same line hits L1" cfg.l1_latency hit

let test_l2_hit_after_remote_read () =
  let h = H.create ~cores:2 cfg in
  ignore (H.access h ~core:0 H.Read ~addr:100);
  let lat = H.access h ~core:1 H.Read ~addr:100 in
  Alcotest.(check int) "second core hits shared L2" (cfg.l1_latency + cfg.l2_latency) lat

let test_write_invalidates_sharers () =
  let h = H.create ~cores:2 cfg in
  ignore (H.access h ~core:0 H.Read ~addr:100);
  ignore (H.access h ~core:1 H.Read ~addr:100);
  ignore (H.access h ~core:0 H.Write ~addr:100);
  Alcotest.(check bool) "remote copy invalidated" false (H.l1_resident h ~core:1 ~addr:100);
  Alcotest.(check bool) "writer keeps it" true (H.l1_resident h ~core:0 ~addr:100);
  Alcotest.(check int) "invalidation counted" 1 (H.stats h).H.invalidations

let test_dirty_remote_read_costs_c2c () =
  let h = H.create ~cores:2 cfg in
  ignore (H.access h ~core:0 H.Write ~addr:100);
  let lat = H.access h ~core:1 H.Read ~addr:100 in
  Alcotest.(check int) "c2c charged" (cfg.l1_latency + cfg.l2_latency + cfg.c2c_latency) lat;
  (* After the downgrade, the writer re-acquiring ownership costs an upgrade. *)
  let upgrade = H.access h ~core:0 H.Write ~addr:100 in
  Alcotest.(check int) "upgrade" (cfg.l1_latency + cfg.l2_latency) upgrade

let test_write_hit_modified () =
  let h = H.create ~cores:1 cfg in
  ignore (H.access h ~core:0 H.Write ~addr:100);
  let lat = H.access h ~core:0 H.Write ~addr:100 in
  Alcotest.(check int) "write hit in M" cfg.l1_latency lat

let test_rmw_behaves_like_write () =
  let h = H.create ~cores:2 cfg in
  ignore (H.access h ~core:0 H.Read ~addr:100);
  ignore (H.access h ~core:1 H.Rmw ~addr:100);
  Alcotest.(check bool) "reader invalidated" false (H.l1_resident h ~core:0 ~addr:100)

let test_invariants_random_trace () =
  let h = H.create ~cores:4 small_config in
  let rng = Rng.create 2024 in
  for _ = 1 to 20_000 do
    let core = Rng.int rng 4 in
    let addr = Rng.int rng 4096 in
    let kind = match Rng.int rng 3 with 0 -> H.Read | 1 -> H.Write | _ -> H.Rmw in
    ignore (H.access h ~core kind ~addr)
  done;
  match H.check_invariants h with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_stats_counting () =
  let h = H.create ~cores:1 cfg in
  ignore (H.access h ~core:0 H.Read ~addr:0);
  ignore (H.access h ~core:0 H.Read ~addr:1);
  let s = H.stats h in
  Alcotest.(check int) "one miss" 1 s.H.l1_misses;
  Alcotest.(check int) "one hit" 1 s.H.l1_hits;
  Alcotest.(check int) "one l2 miss" 1 s.H.l2_misses

let test_l1_eviction_keeps_coherence () =
  (* Tiny L1: walk enough distinct lines to force evictions, then check
     invariants. *)
  let h = H.create ~cores:2 small_config in
  for i = 0 to 63 do
    ignore (H.access h ~core:0 H.Write ~addr:(i * 8))
  done;
  for i = 0 to 63 do
    ignore (H.access h ~core:1 H.Read ~addr:(i * 8))
  done;
  match H.check_invariants h with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let tests =
  [
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "L2 hit after remote read" `Quick test_l2_hit_after_remote_read;
    Alcotest.test_case "write invalidates sharers" `Quick test_write_invalidates_sharers;
    Alcotest.test_case "dirty remote read" `Quick test_dirty_remote_read_costs_c2c;
    Alcotest.test_case "write hit in M" `Quick test_write_hit_modified;
    Alcotest.test_case "RMW acquires ownership" `Quick test_rmw_behaves_like_write;
    Alcotest.test_case "invariants under random trace" `Quick test_invariants_random_trace;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "eviction coherence" `Quick test_l1_eviction_keeps_coherence;
  ]
