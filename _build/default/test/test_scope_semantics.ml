module Ss = Fscope_core.Scope_semantics
module Su = Fscope_core.Scope_unit
module Fsb = Fscope_core.Fsb
module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Fk = Fscope_isa.Fence_kind

let r = Reg.r
let ld ?(flagged = false) () = Instr.Load { dst = r 1; base = r 2; off = 0; flagged }
let st ?(flagged = false) () = Instr.Store { src = r 1; base = r 2; off = 0; flagged }

let test_full_fence_waits_for_all () =
  let stream = [ ld (); st (); Instr.Fence Fk.full; ld () ] in
  Alcotest.(check (list (pair int (list int))))
    "full fence waits for everything before it"
    [ (2, [ 0; 1 ]) ]
    (Ss.fence_wait_sets stream)

let test_class_fence_scope () =
  (* op0 outside; fs_start; op2 inside; fence; fs_end; op5 outside;
     the fence waits only for op2. *)
  let stream =
    [ st (); Instr.Fs_start 1; st (); Instr.Fence Fk.class_scoped; Instr.Fs_end 1; st () ]
  in
  Alcotest.(check (list (pair int (list int))))
    "class fence sees only in-scope ops"
    [ (3, [ 2 ]) ]
    (Ss.fence_wait_sets stream)

let test_nested_scope_inner_ops_visible_to_outer () =
  (* Fig. 6: outer class A calls inner class B; ops inside B belong to
     both scopes, so A's fence waits for them too. *)
  let stream =
    [
      Instr.Fs_start 1 (* A *);
      st () (* 1: in A *);
      Instr.Fs_start 2 (* B *);
      st () (* 3: in A and B *);
      Instr.Fence Fk.class_scoped (* 4: B's fence *);
      Instr.Fs_end 2;
      Instr.Fence Fk.class_scoped (* 6: A's fence *);
      Instr.Fs_end 1;
    ]
  in
  Alcotest.(check (list (pair int (list int))))
    "inner fence waits for B ops; outer fence for both"
    [ (4, [ 3 ]); (6, [ 1; 3 ]) ]
    (Ss.fence_wait_sets stream)

let test_set_fence_waits_for_flagged () =
  let stream = [ st (); st ~flagged:true (); ld (); Instr.Fence Fk.set_scoped ] in
  Alcotest.(check (list (pair int (list int))))
    "set fence waits for flagged ops only"
    [ (3, [ 1 ]) ]
    (Ss.fence_wait_sets stream)

let test_class_fence_outside_scope_degrades () =
  let stream = [ st (); Instr.Fence Fk.class_scoped ] in
  Alcotest.(check (list (pair int (list int))))
    "unscoped class fence waits for all"
    [ (1, [ 0 ]) ]
    (Ss.fence_wait_sets stream)

let test_unbalanced_fs_end_rejected () =
  Alcotest.check_raises "unbalanced" (Invalid_argument "Scope_semantics: unbalanced fs_end")
    (fun () -> ignore (Ss.fence_wait_sets [ Instr.Fs_end 3 ]))

let test_reentered_scope_accumulates () =
  (* Two successive invocations of the same class: ops of the first
     invocation are still in the class scope at the second fence
     (removal is completion's job, not scoping's). *)
  let stream =
    [
      Instr.Fs_start 1;
      st () (* 1 *);
      Instr.Fs_end 1;
      Instr.Fs_start 1;
      Instr.Fence Fk.class_scoped (* 4 *);
      Instr.Fs_end 1;
    ]
  in
  Alcotest.(check (list (pair int (list int))))
    "scope accumulates across invocations"
    [ (4, [ 1 ]) ]
    (Ss.fence_wait_sets stream)

(* ------------------------------------------------------------------ *)
(* Property: the hardware's wait set is a superset of the reference's. *)
(* ------------------------------------------------------------------ *)

let gen_stream =
  let open QCheck2.Gen in
  let cid = int_range 1 5 in
  (* Generate a balanced stream with a stack discipline. *)
  let rec build depth remaining acc =
    if remaining <= 0 then
      (* close all open scopes *)
      return (List.rev_append acc (List.init depth (fun _ -> `Close)))
    else
      let choices =
        [ (3, return `Mem); (2, return `Fence) ]
        @ (if depth < 6 then [ (2, map (fun c -> `Open c) cid) ] else [])
        @ if depth > 0 then [ (2, return `Close) ] else []
      in
      frequency choices >>= fun ev ->
      build
        (match ev with `Open _ -> depth + 1 | `Close -> depth - 1 | `Mem | `Fence -> depth)
        (remaining - 1) (ev :: acc)
  in
  int_range 5 60 >>= fun n ->
  build 0 n [] >>= fun evs ->
  (* materialise, tracking open cids for fs_end and choosing flags *)
  let rec materialise evs stack acc =
    match evs with
    | [] -> return (List.rev acc)
    | `Open c :: rest -> materialise rest (c :: stack) (Instr.Fs_start c :: acc)
    | `Close :: rest -> (
      match stack with
      | c :: stack' -> materialise rest stack' (Instr.Fs_end c :: acc)
      | [] -> materialise rest [] acc)
    | `Mem :: rest ->
      bool >>= fun flagged ->
      bool >>= fun is_load ->
      let op = if is_load then ld ~flagged () else st ~flagged () in
      materialise rest stack (op :: acc)
    | `Fence :: rest ->
      oneofl
        [ Fk.full; Fk.class_scoped; Fk.set_scoped; Fk.store_store Fk.class_scoped;
          Fk.load_load Fk.set_scoped; Fk.store_load Fk.full; Fk.store_store Fk.full ]
      >>= fun kind -> materialise rest stack (Instr.Fence kind :: acc)
  in
  materialise evs [] []

let hardware_wait_sets config stream =
  (* Drive the scope unit as the dispatch stage would (no branches,
     no completions: bits stay set) and record, per fence, which of
     the earlier memory ops the fence would wait on. *)
  let u = Su.create config in
  let mem_masks = ref [] in (* (index, mask), newest first *)
  let results = ref [] in
  List.iteri
    (fun idx instr ->
      match instr with
      | Instr.Fs_start cid -> Su.on_fs_start u ~cid
      | Instr.Fs_end cid -> Su.on_fs_end u ~cid
      | Instr.Load { flagged; _ } | Instr.Store { flagged; _ } | Instr.Cas { flagged; _ }
        ->
        let mask = Su.decode_mask u ~flagged in
        Su.on_bits_set u mask;
        mem_masks := (idx, mask) :: !mem_masks
      | Instr.Fence kind ->
        (* The core additionally filters the wait set by the fence's
           flavour; model that here exactly as Core.mem_incomplete
           does. *)
        let flavour_keeps i =
          match List.nth stream i with
          | Instr.Load _ -> kind.Fk.wait_loads
          | Instr.Store _ -> kind.Fk.wait_stores
          | Instr.Cas _ -> kind.Fk.wait_loads || kind.Fk.wait_stores
          | _ -> false
        in
        let waits =
          match Su.fence_scope u kind with
          | `Global -> List.rev_map fst !mem_masks
          | `Mask m ->
            List.rev
              (List.filter_map
                 (fun (i, mask) ->
                   if Fsb.is_empty (Fsb.inter mask m) then None else Some i)
                 !mem_masks)
        in
        let waits = List.filter flavour_keeps waits in
        results := (idx, List.sort Int.compare waits) :: !results
      | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _
      | Instr.Jump _ | Instr.Halt ->
        ())
    stream;
  List.rev !results

let subset a b = List.for_all (fun x -> List.mem x b) a

let print_stream stream =
  String.concat "; " (List.mapi (fun i instr -> Printf.sprintf "%d:%s" i (Instr.to_string instr)) stream)

let prop_hardware_superset config =
  QCheck2.Test.make ~count:300
    ~name:
      (Printf.sprintf "hardware (fsb=%d fss=%d mt=%d) waits >= Fig.5 semantics"
         config.Su.fsb_entries config.Su.fss_entries config.Su.mt_entries)
    ~print:print_stream gen_stream
    (fun stream ->
      let reference = Ss.fence_wait_sets stream in
      let hardware = hardware_wait_sets config stream in
      List.for_all2
        (fun (i_ref, ref_set) (i_hw, hw_set) -> i_ref = i_hw && subset ref_set hw_set)
        reference hardware)

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_hardware_superset Su.default_config;
      prop_hardware_superset { Su.default_config with fsb_entries = 2 };
      prop_hardware_superset { Su.default_config with fss_entries = 1; mt_entries = 1 };
      prop_hardware_superset { Su.default_config with fsb_entries = 8; fss_entries = 8 };
    ]

let tests =
  [
    Alcotest.test_case "full fence waits for all" `Quick test_full_fence_waits_for_all;
    Alcotest.test_case "class fence scope" `Quick test_class_fence_scope;
    Alcotest.test_case "nested scopes (Fig. 6)" `Quick
      test_nested_scope_inner_ops_visible_to_outer;
    Alcotest.test_case "set fence waits for flagged" `Quick test_set_fence_waits_for_flagged;
    Alcotest.test_case "unscoped class fence degrades" `Quick
      test_class_fence_outside_scope_degrades;
    Alcotest.test_case "unbalanced fs_end" `Quick test_unbalanced_fs_end_rejected;
    Alcotest.test_case "scope accumulates" `Quick test_reentered_scope_accumulates;
  ]
  @ prop_tests
