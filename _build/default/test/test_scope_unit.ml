module Su = Fscope_core.Scope_unit
module Fsb = Fscope_core.Fsb
module Fk = Fscope_isa.Fence_kind

let cfg = Su.default_config

let mask_of_cols cols = List.fold_left (fun m c -> Fsb.union m (Fsb.column c)) Fsb.empty cols

let test_fig9_nested_scopes () =
  (* The paper's Fig. 9: fs_start a; I0; I1; fs_start b; I2..I4; fs_end b;
     I5; I6; fs_end a; I7.  Inner ops flag both columns; after the outer
     fs_end nothing is flagged. *)
  let u = Su.create cfg in
  Alcotest.(check int) "initially unflagged" Fsb.empty (Su.decode_mask u ~flagged:false);
  Su.on_fs_start u ~cid:10;
  let outer = Su.decode_mask u ~flagged:false in
  Alcotest.(check int) "outer only" (mask_of_cols [ 0 ]) outer;
  Su.on_fs_start u ~cid:11;
  Alcotest.(check int) "inner sets both" (mask_of_cols [ 0; 1 ])
    (Su.decode_mask u ~flagged:false);
  Su.on_fs_end u ~cid:11;
  Alcotest.(check int) "back to outer" (mask_of_cols [ 0 ]) (Su.decode_mask u ~flagged:false);
  Su.on_fs_end u ~cid:10;
  Alcotest.(check int) "empty after outer end" Fsb.empty (Su.decode_mask u ~flagged:false)

let test_same_cid_same_column () =
  let u = Su.create cfg in
  Su.on_fs_start u ~cid:7;
  let m1 = Su.decode_mask u ~flagged:false in
  Su.on_fs_end u ~cid:7;
  Su.on_fs_start u ~cid:7;
  let m2 = Su.decode_mask u ~flagged:false in
  Alcotest.(check int) "same column reused" m1 m2

let test_set_column () =
  let u = Su.create cfg in
  Alcotest.(check int) "set column is last" (cfg.fsb_entries - 1) (Su.set_column u);
  let m = Su.decode_mask u ~flagged:true in
  Alcotest.(check int) "flagged op sets the set column"
    (Fsb.column (Su.set_column u)) m;
  match Su.fence_scope u Fk.set_scoped with
  | `Mask m' -> Alcotest.(check int) "set fence checks set column" m m'
  | `Global -> Alcotest.fail "set fence should be scoped"

let test_class_fence_scope_is_top () =
  let u = Su.create cfg in
  Su.on_fs_start u ~cid:1;
  Su.on_fs_start u ~cid:2;
  (match Su.fence_scope u Fk.class_scoped with
  | `Mask m -> Alcotest.(check int) "inner fence checks top column" (Fsb.column 1) m
  | `Global -> Alcotest.fail "expected scoped");
  Su.on_fs_end u ~cid:2;
  match Su.fence_scope u Fk.class_scoped with
  | `Mask m -> Alcotest.(check int) "outer fence checks bottom column" (Fsb.column 0) m
  | `Global -> Alcotest.fail "expected scoped"

let test_full_fence_always_global () =
  let u = Su.create cfg in
  Su.on_fs_start u ~cid:1;
  match Su.fence_scope u Fk.full with
  | `Global -> ()
  | `Mask _ -> Alcotest.fail "full fence must be global"

let test_class_fence_outside_scope_is_global () =
  let u = Su.create cfg in
  match Su.fence_scope u Fk.class_scoped with
  | `Global -> ()
  | `Mask _ -> Alcotest.fail "unscoped class fence must degrade to global"

let test_disabled_unit () =
  let u = Su.create { cfg with enabled = false } in
  Su.on_fs_start u ~cid:1;
  Alcotest.(check int) "no flags when disabled" Fsb.empty (Su.decode_mask u ~flagged:true);
  match Su.fence_scope u Fk.class_scoped with
  | `Global -> ()
  | `Mask _ -> Alcotest.fail "disabled unit must be global"

let test_fss_overflow_counter () =
  (* fss_entries = 2: the third nested scope overflows; fences decoded
     during overflow behave as full fences; after the matching fs_end
     the unit recovers. *)
  let u = Su.create { cfg with fss_entries = 2 } in
  Su.on_fs_start u ~cid:1;
  Su.on_fs_start u ~cid:2;
  Alcotest.(check bool) "not yet overflowing" false (Su.in_overflow u);
  Su.on_fs_start u ~cid:3;
  Alcotest.(check bool) "overflowing" true (Su.in_overflow u);
  (match Su.fence_scope u Fk.class_scoped with
  | `Global -> ()
  | `Mask _ -> Alcotest.fail "fence during overflow must be global");
  Su.on_fs_end u ~cid:3;
  Alcotest.(check bool) "recovered" false (Su.in_overflow u);
  match Su.fence_scope u Fk.class_scoped with
  | `Mask _ -> ()
  | `Global -> Alcotest.fail "fence after recovery should be scoped"

let test_column_sharing_when_exhausted () =
  (* 3 FSB columns => 2 class columns.  Three simultaneously active
     distinct classes must share: the third maps to the overflow
     column, never to the set column. *)
  let u = Su.create { cfg with fsb_entries = 3; fss_entries = 4 } in
  Su.on_fs_start u ~cid:1;
  Su.on_fs_start u ~cid:2;
  Su.on_fs_start u ~cid:3;
  Alcotest.(check bool) "no overflow counter needed" false (Su.in_overflow u);
  let m = Su.decode_mask u ~flagged:false in
  Alcotest.(check bool) "set column untouched" false (Fsb.mem 2 m);
  Alcotest.(check int) "three scopes on two columns" (mask_of_cols [ 0; 1 ]) m

let test_overflow_ops_conservatively_flagged () =
  (* Regression for a hole the property test found in the paper's
     counter sketch: ops decoded during overflow must carry every
     class column, or a fence in a re-entered scope (whose mapping
     survived the overflow) would miss them. *)
  let u = Su.create { cfg with fss_entries = 1; mt_entries = 1 } in
  Su.on_fs_start u ~cid:2;
  let m = Su.decode_mask u ~flagged:false in
  Su.on_bits_set u m (* an op in scope 2, never completing *);
  Su.on_fs_end u ~cid:2;
  Su.on_fs_start u ~cid:1 (* MT full -> counter mode *);
  Alcotest.(check bool) "overflowed" true (Su.in_overflow u);
  let m_ov = Su.decode_mask u ~flagged:false in
  Su.on_fs_end u ~cid:1;
  Su.on_fs_start u ~cid:2 (* re-enter scope 2: same column *);
  match Su.fence_scope u Fk.class_scoped with
  | `Mask fence_mask ->
    Alcotest.(check bool) "fence sees the overflow-time op" false
      (Fsb.is_empty (Fsb.inter fence_mask m_ov))
  | `Global -> () (* even stricter: also fine *)

let test_outstanding_accounting () =
  let u = Su.create cfg in
  Su.on_fs_start u ~cid:1;
  let m = Su.decode_mask u ~flagged:false in
  Su.on_bits_set u m;
  Su.on_bits_set u m;
  Alcotest.(check int) "two outstanding" 2 (Su.outstanding u 0);
  Su.on_bits_cleared u m;
  Alcotest.(check int) "one left" 1 (Su.outstanding u 0);
  Su.on_bits_cleared u m;
  Alcotest.(check int) "drained" 0 (Su.outstanding u 0)

let test_mispredict_restores_fss () =
  (* fs_start a; branch (unresolved); wrong-path fs_end a + fs_start b;
     mispredict => FSS must be [a's column] again. *)
  let u = Su.create cfg in
  Su.on_fs_start u ~cid:1;
  let before = Su.live_stack u in
  Su.on_branch u ~id:100;
  Su.on_fs_end u ~cid:1;
  Su.on_fs_start u ~cid:2;
  Alcotest.(check bool) "wrong path changed FSS" true (Su.live_stack u <> before);
  Su.on_branch_mispredict u ~id:100;
  Alcotest.(check (list int)) "FSS restored" before (Su.live_stack u)

let test_mispredict_with_older_unresolved_branch () =
  (* branch A (stays unresolved); fs_start a; branch B; wrong-path
     fs_start b; B mispredicts.  The restore must keep fs_start a even
     though A has not resolved, because a was decoded before B. *)
  let u = Su.create cfg in
  Su.on_branch u ~id:1;
  Su.on_fs_start u ~cid:5;
  let correct = Su.live_stack u in
  Su.on_branch u ~id:2;
  Su.on_fs_start u ~cid:6;
  Su.on_branch_mispredict u ~id:2;
  Alcotest.(check (list int)) "ops older than B survive" correct (Su.live_stack u);
  (* Now A resolves correctly: the confirmed stack catches up. *)
  Su.on_branch_correct u ~id:1;
  Alcotest.(check (list int)) "FSS' caught up" correct (Su.confirmed_stack u)

let test_confirmed_lags_speculation () =
  let u = Su.create cfg in
  Su.on_branch u ~id:9;
  Su.on_fs_start u ~cid:3;
  Alcotest.(check (list int)) "FSS' not yet updated" [] (Su.confirmed_stack u);
  Su.on_branch_correct u ~id:9;
  Alcotest.(check (list int)) "FSS' updated after confirm" (Su.live_stack u)
    (Su.confirmed_stack u)

let test_counter_restored_on_mispredict () =
  let u = Su.create { cfg with fss_entries = 1 } in
  Su.on_fs_start u ~cid:1;
  Su.on_branch u ~id:50;
  Su.on_fs_start u ~cid:2;
  (* wrong path pushed into overflow *)
  Alcotest.(check bool) "overflow on wrong path" true (Su.in_overflow u);
  Su.on_branch_mispredict u ~id:50;
  Alcotest.(check bool) "counter restored" false (Su.in_overflow u)

let tests =
  [
    Alcotest.test_case "fig9 nested scopes" `Quick test_fig9_nested_scopes;
    Alcotest.test_case "same cid same column" `Quick test_same_cid_same_column;
    Alcotest.test_case "set column" `Quick test_set_column;
    Alcotest.test_case "class fence scope is FSS top" `Quick test_class_fence_scope_is_top;
    Alcotest.test_case "full fence global" `Quick test_full_fence_always_global;
    Alcotest.test_case "unscoped class fence global" `Quick
      test_class_fence_outside_scope_is_global;
    Alcotest.test_case "disabled unit" `Quick test_disabled_unit;
    Alcotest.test_case "FSS overflow counter" `Quick test_fss_overflow_counter;
    Alcotest.test_case "column sharing" `Quick test_column_sharing_when_exhausted;
    Alcotest.test_case "overflow ops conservatively flagged" `Quick
      test_overflow_ops_conservatively_flagged;
    Alcotest.test_case "outstanding accounting" `Quick test_outstanding_accounting;
    Alcotest.test_case "mispredict restores FSS" `Quick test_mispredict_restores_fss;
    Alcotest.test_case "mispredict with older branch" `Quick
      test_mispredict_with_older_unresolved_branch;
    Alcotest.test_case "FSS' lags speculation" `Quick test_confirmed_lags_speculation;
    Alcotest.test_case "counter restored" `Quick test_counter_restored_on_mispredict;
  ]
