test/test_hierarchy.ml: Alcotest Fscope_mem Fscope_util
