test/test_scope_unit.ml: Alcotest Fscope_core Fscope_isa List
