test/test_isa.ml: Alcotest Array Fscope_isa List Option
