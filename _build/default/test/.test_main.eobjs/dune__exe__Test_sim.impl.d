test/test_sim.ml: Alcotest Array Fscope_isa Fscope_machine Printf
