test/test_cpu.ml: Alcotest Fscope_core Fscope_cpu Fscope_isa List
