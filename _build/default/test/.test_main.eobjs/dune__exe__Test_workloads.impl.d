test/test_workloads.ml: Alcotest Array Fscope_core Fscope_experiments Fscope_machine Fscope_util Fscope_workloads Fun List Printf
