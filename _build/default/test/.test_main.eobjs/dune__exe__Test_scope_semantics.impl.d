test/test_scope_semantics.ml: Alcotest Fscope_core Fscope_isa Int List Printf QCheck2 QCheck_alcotest String
