test/test_util.ml: Alcotest Array Fscope_util Fun String
