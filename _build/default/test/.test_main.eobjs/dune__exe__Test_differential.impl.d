test/test_differential.ml: Alcotest Array Fscope_machine Fscope_slang Fscope_util Fun List Printf
