test/test_slang.ml: Alcotest Array Fscope_isa Fscope_machine Fscope_slang List Printf
