test/test_cache.ml: Alcotest Fscope_mem List
