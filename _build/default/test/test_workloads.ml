(* Workload-level tests: every benchmark must pass its own functional
   validation on both machine variants, at small sizes, and the scoped
   machine must never lose to the traditional one by more than noise. *)

module W = Fscope_workloads
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Rng = Fscope_util.Rng

let level = W.Privwork.fig12_levels.(2)
let small_level = { W.Privwork.arith = 8; stores = 1; span = 0; warm = false }

let check_both name make =
  let w = make () in
  let t = W.Workload.run_validated (Config.traditional Config.default) w in
  let s = W.Workload.run_validated (Config.scoped Config.default) w in
  Alcotest.(check bool)
    (Printf.sprintf "%s: scoped not slower than 2%% (T=%d S=%d)" name t.Machine.cycles
       s.Machine.cycles)
    true
    (float_of_int s.Machine.cycles <= 1.02 *. float_of_int t.Machine.cycles)

let test_dekker () = check_both "dekker" (fun () -> W.Dekker.make ~level ~attempts:12)

let test_wsq_class () =
  check_both "wsq/class" (fun () -> W.Wsq.make ~rounds:5 ~scope:`Class ~level ())

let test_wsq_set () =
  check_both "wsq/set" (fun () -> W.Wsq.make ~rounds:5 ~scope:`Set ~level ())

let test_wsq_small_threads () =
  check_both "wsq/3t" (fun () -> W.Wsq.make ~threads:3 ~rounds:5 ~scope:`Class ~level ())

let test_msn_class () =
  check_both "msn/class" (fun () -> W.Msn.make ~per_producer:8 ~scope:`Class ~level ())

let test_msn_set () =
  check_both "msn/set" (fun () -> W.Msn.make ~per_producer:8 ~scope:`Set ~level ())

let test_harris_class () =
  check_both "harris/class" (fun () -> W.Harris.make ~scope:`Class ~level ())

let test_harris_set () =
  check_both "harris/set" (fun () -> W.Harris.make ~scope:`Set ~level ())

let test_harris_more_keys () =
  check_both "harris/4keys" (fun () ->
      W.Harris.make ~keys_per_thread:4 ~scope:`Class ~level:small_level ())

let test_pst () = check_both "pst" (fun () -> W.Pst.make ~nodes:192 ~scope:`Class ())
let test_pst_set () = check_both "pst/set" (fun () -> W.Pst.make ~nodes:192 ~scope:`Set ())
let test_ptc () = check_both "ptc" (fun () -> W.Ptc.make ~nodes:96 ~scope:`Class ())
let test_barnes () = check_both "barnes" (fun () -> W.Barnes.make ~bodies:64 ())
let test_radiosity () = check_both "radiosity" (fun () -> W.Radiosity.make ~patches:48 ())

(* Validations across several graph seeds: the structures must hold
   for arbitrary (connected) inputs, not just the default seed. *)
let test_pst_seeds () =
  List.iter
    (fun seed ->
      ignore
        (W.Workload.run_validated (Config.scoped Config.default)
           (W.Pst.make ~nodes:128 ~seed ~scope:`Class ())))
    [ 1; 2; 3 ]

let test_ptc_seeds () =
  List.iter
    (fun seed ->
      ignore
        (W.Workload.run_validated (Config.scoped Config.default)
           (W.Ptc.make ~nodes:64 ~sources:2 ~seed ~scope:`Class ())))
    [ 4; 5; 6 ]

(* The lock-free structures must stay correct under perturbed machine
   parameters (different interleavings): sweep ROB sizes and memory
   latencies with validation on. *)
let test_wsq_param_sweep () =
  let w = W.Wsq.make ~rounds:4 ~scope:`Class ~level:small_level () in
  List.iter
    (fun config -> ignore (W.Workload.run_validated config w))
    [
      Config.with_rob_size 64 (Config.scoped Config.default);
      Config.with_rob_size 256 (Config.scoped Config.default);
      Config.with_mem_latency 100 (Config.scoped Config.default);
      Config.with_mem_latency 500 (Config.traditional Config.default);
    ]

let test_msn_param_sweep () =
  let w = W.Msn.make ~per_producer:6 ~scope:`Class ~level:small_level () in
  List.iter
    (fun config -> ignore (W.Workload.run_validated config w))
    [
      Config.with_rob_size 64 (Config.scoped Config.default);
      Config.with_mem_latency 150 (Config.scoped Config.default);
      Config.with_fsb_entries 2 (Config.scoped Config.default);
    ]

let test_harris_param_sweep () =
  let w = W.Harris.make ~keys_per_thread:3 ~scope:`Class ~level:small_level () in
  List.iter
    (fun config -> ignore (W.Workload.run_validated config w))
    [
      Config.with_rob_size 64 (Config.scoped Config.default);
      Config.with_fsb_entries 1 (Config.scoped Config.default);
      Config.with_mem_latency 450 (Config.scoped Config.default);
    ]

(* Graph generator properties. *)
let test_graph_connected () =
  let rng = Rng.create 99 in
  for _ = 1 to 10 do
    let nodes = 2 + Rng.int rng 200 in
    let g = W.Graph.make ~nodes ~degree:(2 + Rng.int rng 4) ~seed:(Rng.int rng 10000) in
    let reach = W.Graph.reachable_from g 0 in
    Alcotest.(check bool) "connected" true (Array.for_all Fun.id reach)
  done

let test_graph_csr_consistent () =
  let g = W.Graph.make ~nodes:50 ~degree:4 ~seed:7 in
  Alcotest.(check int) "offsets length" 51 (Array.length g.W.Graph.offsets);
  Alcotest.(check int) "edge count" g.W.Graph.offsets.(50) (Array.length g.W.Graph.edges);
  (* undirected: every edge appears in both adjacency lists *)
  for v = 0 to 49 do
    List.iter
      (fun u ->
        Alcotest.(check bool) "symmetric" true (List.mem v (W.Graph.neighbours g u)))
      (W.Graph.neighbours g v)
  done

let test_spanning_tree_checker_rejects () =
  let g = W.Graph.make ~nodes:10 ~degree:3 ~seed:1 in
  let bogus = Array.make 10 0 in
  bogus.(0) <- 0;
  (* a parent map where everyone claims node 0 as parent is only a tree
     if 0 neighbours everyone — with 10 nodes and degree 3 it is not *)
  Alcotest.(check bool) "bogus rejected" false
    (W.Graph.is_spanning_tree g ~parent:bogus ~root:0)

(* The nested-scope ablation workload and its FSS sensitivity. *)
let test_nested_scopes_validate () =
  let w = Fscope_experiments.Ablation.nested_scope_workload ~rounds:8 () in
  ignore (W.Workload.run_validated (Config.scoped Config.default) w);
  ignore (W.Workload.run_validated (Config.traditional Config.default) w)

let test_nested_scopes_fss_monotone () =
  (* A deeper FSS must not be slower than a unit stack on the deep
     nesting chain. *)
  let w = Fscope_experiments.Ablation.nested_scope_workload ~rounds:8 () in
  let cycles fss =
    let config =
      { Config.default with
        Config.scope = { Config.default.Config.scope with Fscope_core.Scope_unit.fss_entries = fss } }
    in
    (W.Workload.run_validated (Config.scoped config) w).Machine.cycles
  in
  Alcotest.(check bool) "fss=8 <= fss=1" true (cycles 8 <= cycles 1)

let tests =
  [
    Alcotest.test_case "dekker validates (T and S)" `Quick test_dekker;
    Alcotest.test_case "wsq class scope" `Quick test_wsq_class;
    Alcotest.test_case "wsq set scope" `Quick test_wsq_set;
    Alcotest.test_case "wsq 3 threads" `Quick test_wsq_small_threads;
    Alcotest.test_case "msn class scope" `Quick test_msn_class;
    Alcotest.test_case "msn set scope" `Quick test_msn_set;
    Alcotest.test_case "harris class scope" `Quick test_harris_class;
    Alcotest.test_case "harris set scope" `Quick test_harris_set;
    Alcotest.test_case "harris more keys" `Quick test_harris_more_keys;
    Alcotest.test_case "pst validates" `Quick test_pst;
    Alcotest.test_case "pst set scope" `Quick test_pst_set;
    Alcotest.test_case "ptc validates" `Quick test_ptc;
    Alcotest.test_case "barnes validates" `Quick test_barnes;
    Alcotest.test_case "radiosity validates" `Quick test_radiosity;
    Alcotest.test_case "pst across seeds" `Slow test_pst_seeds;
    Alcotest.test_case "ptc across seeds" `Slow test_ptc_seeds;
    Alcotest.test_case "wsq parameter sweep" `Slow test_wsq_param_sweep;
    Alcotest.test_case "msn parameter sweep" `Slow test_msn_param_sweep;
    Alcotest.test_case "harris parameter sweep" `Slow test_harris_param_sweep;
    Alcotest.test_case "graphs connected" `Quick test_graph_connected;
    Alcotest.test_case "graph CSR consistent" `Quick test_graph_csr_consistent;
    Alcotest.test_case "tree checker rejects bogus" `Quick test_spanning_tree_checker_rejects;
    Alcotest.test_case "nested scopes validate" `Quick test_nested_scopes_validate;
    Alcotest.test_case "nested scopes FSS monotone" `Quick test_nested_scopes_fss_monotone;
  ]
