module Rng = Fscope_util.Rng
module Stats = Fscope_util.Stats
module Table = Fscope_util.Table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 3 9 in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  Alcotest.(check bool) "different streams" true (Rng.next a <> Rng.next b)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.mean [])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "single" 3. (Stats.geomean [ 3. ])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi

let test_stats_percentile () =
  Alcotest.(check (float 1e-9)) "median" 2. (Stats.percentile 0.5 [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p100" 3. (Stats.percentile 1.0 [ 3.; 1.; 2. ])

let test_stats_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio ~num:1 ~den:2);
  Alcotest.(check (float 1e-9)) "zero den" 0. (Stats.ratio ~num:1 ~den:0)

(* A tiny substring check to avoid pulling in a string library. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~title:"totals" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true (contains s "totals");
  Alcotest.(check bool) "contains 333" true (contains s "333");
  Alcotest.(check bool) "pads short rows" true (contains s "1    2")

let test_table_too_wide () =
  let t = Table.create ~title:"t" ~header:[ "a" ] in
  Alcotest.check_raises "wide row rejected"
    (Invalid_argument "Table.add_row: row wider than header") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  Alcotest.(check string) "cell_f" "1.500" (Table.cell_f 1.5);
  Alcotest.(check string) "cell_pct" "38.8%" (Table.cell_pct 0.388);
  Alcotest.(check string) "cell_x" "1.23x" (Table.cell_x 1.23)

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats min_max" `Quick test_stats_min_max;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats ratio" `Quick test_stats_ratio;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table rejects wide rows" `Quick test_table_too_wide;
    Alcotest.test_case "table cell formatting" `Quick test_table_cells;
  ]
