(* Whole-machine tests: hand-assembled programs through the cycle-level
   simulator — functional correctness, memory-model litmus tests, and
   the paper's Fig. 10 timing scenario. *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Asm = Fscope_isa.Asm
module Program = Fscope_isa.Program
module Fk = Fscope_isa.Fence_kind
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine

let r = Reg.r

(* A faster machine config for tests: same structure, smaller caches. *)
let test_config = Config.default

let run ?(config = test_config) program = Machine.run config program

let check_finished result = Alcotest.(check bool) "finished" false result.Machine.timed_out

let li d v = Instr.Li (r d, v)
let add d a b = Instr.Alu (Instr.Add, r d, r a, Instr.Reg (r b))
let addi d a v = Instr.Alu (Instr.Add, r d, r a, Instr.Imm v)
let ld ?(flagged = false) d base off = Instr.Load { dst = r d; base = r base; off; flagged }
let st ?(flagged = false) s base off = Instr.Store { src = r s; base = r base; off; flagged }

let test_single_thread_arith () =
  (* mem[0] := 2 + 3 * 4 *)
  let code =
    [| li 1 3; li 2 4; Instr.Alu (Instr.Mul, r 3, r 1, Instr.Reg (r 2));
       addi 4 3 2; li 5 0; st 4 5 0; Instr.Halt |]
  in
  let p = Program.make ~threads:[ code ] ~mem_words:8 () in
  let result = run p in
  check_finished result;
  Alcotest.(check int) "mem[0]" 14 result.Machine.mem.(0);
  Alcotest.(check int) "committed" 7 result.Machine.core_stats.(0).committed

let test_loop_sum () =
  (* mem[0] := sum 1..10, via a backward branch (exercises prediction
     and misprediction recovery). *)
  let asm = Asm.create () in
  let top = Asm.fresh_label asm in
  Asm.emit asm (li 1 0) (* sum *);
  Asm.emit asm (li 2 10) (* i *);
  Asm.place asm top;
  Asm.emit asm (add 1 1 2);
  Asm.emit asm (addi 2 2 (-1));
  Asm.branch asm Instr.Nez (r 2) top;
  Asm.emit asm (li 3 0);
  Asm.emit asm (st 1 3 0);
  Asm.emit asm Instr.Halt;
  let p = Program.make ~threads:[ Asm.finish asm ] ~mem_words:8 () in
  let result = run p in
  check_finished result;
  Alcotest.(check int) "sum" 55 result.Machine.mem.(0);
  Alcotest.(check bool) "at least one misprediction" true
    (result.Machine.core_stats.(0).mispredicts >= 1)

let test_store_load_forwarding () =
  (* A load right behind a store to the same address must see the
     store's value (via forwarding, long before the store drains). *)
  let code = [| li 1 99; li 2 0; st 1 2 0; ld 3 2 0; st 3 2 1; Instr.Halt |] in
  let p = Program.make ~threads:[ code ] ~mem_words:8 () in
  let result = run p in
  check_finished result;
  Alcotest.(check int) "forwarded value stored" 99 result.Machine.mem.(1)

let test_tid () =
  let thread tid_slot =
    [| Instr.Tid (r 1); li 2 tid_slot; st 1 2 0; Instr.Halt |]
  in
  let p = Program.make ~threads:[ thread 0; thread 1; thread 2 ] ~mem_words:8 () in
  let result = run p in
  check_finished result;
  Alcotest.(check (list int)) "tids" [ 0; 1; 2 ]
    [ result.Machine.mem.(0); result.Machine.mem.(1); result.Machine.mem.(2) ]

let test_cas_success_and_failure () =
  let code =
    [|
      li 1 0 (* addr base *);
      li 2 5 (* expected *);
      li 3 9 (* desired *);
      Instr.Cas { dst = r 4; base = r 1; off = 0; expected = r 2; desired = r 3; flagged = false };
      st 4 1 1 (* success flag -> mem[1] *);
      Instr.Cas { dst = r 5; base = r 1; off = 0; expected = r 2; desired = r 3; flagged = false };
      st 5 1 2 (* second must fail -> mem[2] *);
      Instr.Halt;
    |]
  in
  let p = Program.make ~threads:[ code ] ~mem_words:8 ~init:[ (0, 5) ] () in
  let result = run p in
  check_finished result;
  Alcotest.(check int) "value swapped" 9 result.Machine.mem.(0);
  Alcotest.(check int) "first cas ok" 1 result.Machine.mem.(1);
  Alcotest.(check int) "second cas fails" 0 result.Machine.mem.(2)

let test_cas_atomic_increment () =
  (* Two threads each perform 20 CAS-loop increments: counter must be 40. *)
  let thread () =
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm in
    let retry = Asm.fresh_label asm in
    Asm.emit asm (li 1 0) (* counter addr *);
    Asm.emit asm (li 2 20) (* iterations *);
    Asm.place asm loop;
    Asm.place asm retry;
    Asm.emit asm (ld 3 1 0) (* old *);
    Asm.emit asm (addi 4 3 1) (* new *);
    Asm.emit asm
      (Instr.Cas { dst = r 5; base = r 1; off = 0; expected = r 3; desired = r 4; flagged = false });
    Asm.branch asm Instr.Eqz (r 5) retry;
    Asm.emit asm (addi 2 2 (-1));
    Asm.branch asm Instr.Nez (r 2) loop;
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  let p = Program.make ~threads:[ thread (); thread () ] ~mem_words:8 () in
  let result = run p in
  check_finished result;
  Alcotest.(check int) "atomic increments" 40 result.Machine.mem.(0)

(* ------------------------------------------------------------------ *)
(* Litmus: store buffering (Dekker).  W->R reordering is allowed      *)
(* without fences and forbidden with them.                            *)
(* ------------------------------------------------------------------ *)

(* flag0 at 0, flag1 at 8 (different lines), results at 16, 17.
   Each thread pre-warms its own flag line, waits out a symmetric
   delay loop until the pre-warm has committed, then races:
   store mine (visible ~commit+12), load theirs (samples ~issue+14,
   just before the remote store's value lands).  The post-loop
   addresses are derived from the loop counter so that wrong-path
   loads after the loop branch hit out-of-bounds addresses and cannot
   pollute the caches. *)
let sb_litmus ~fence ~flagged =
  let thread mine theirs result_slot =
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm in
    Asm.emit asm (li 2 mine);
    Asm.emit asm (ld 6 2 0) (* pre-warm my flag line *);
    Asm.emit asm (li 7 400);
    Asm.place asm loop;
    Asm.emit asm (addi 7 7 (-1));
    Asm.branch asm Instr.Nez (r 7) loop;
    Asm.emit asm (addi 3 7 theirs) (* = theirs; garbage (OOB) on the wrong path *);
    Asm.emit asm (li 1 1);
    Asm.emit asm (st ~flagged 1 2 0) (* my flag := 1 *);
    (match fence with Some kind -> Asm.emit asm (Instr.Fence kind) | None -> ());
    Asm.emit asm (ld ~flagged 4 3 0) (* read their flag *);
    Asm.emit asm (li 5 result_slot);
    Asm.emit asm (st 4 5 0);
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  Program.make ~threads:[ thread 0 8 16; thread 8 0 17 ] ~mem_words:32 ()

let test_sb_litmus_relaxed () =
  (* Without fences both loads may bypass the pending stores: the
     forbidden-under-SC outcome 0/0 appears. *)
  let result = run (sb_litmus ~fence:None ~flagged:false) in
  check_finished result;
  Alcotest.(check (pair int int)) "both read 0 (W->R reordered)" (0, 0)
    (result.Machine.mem.(16), result.Machine.mem.(17))

let test_sb_litmus_full_fence () =
  let result = run (sb_litmus ~fence:(Some Fk.full) ~flagged:false) in
  check_finished result;
  Alcotest.(check bool) "SC outcome restored" true
    (result.Machine.mem.(16) = 1 || result.Machine.mem.(17) = 1)

let test_sb_litmus_set_fence () =
  (* S-FENCE[set,{flag0,flag1}]: accesses flagged, fence set-scoped —
     must restore the SC outcome just like a full fence. *)
  let result = run (sb_litmus ~fence:(Some Fk.set_scoped) ~flagged:true) in
  check_finished result;
  Alcotest.(check bool) "set-scoped fence orders the flags" true
    (result.Machine.mem.(16) = 1 || result.Machine.mem.(17) = 1)

(* ------------------------------------------------------------------ *)
(* Litmus: message passing.  Needs a W->W fence in the producer and an
   R->R fence in the consumer.                                         *)
(* ------------------------------------------------------------------ *)

let mp_litmus ~fenced =
  (* data at 0, flag at 8; consumer results at 16 (flag) and 17 (data).
     The producer pre-warms the flag line so its flag store completes
     (~ cycle 330) long before the cold-miss data store (~ cycle 630):
     the W->W window.  The consumer delays ~400 cycles, then reads
     flag and data back to back; without fences both reads sample
     inside the window (flag=1, data=0). *)
  let producer =
    let asm = Asm.create () in
    Asm.emit asm (li 2 8);
    Asm.emit asm (ld 6 2 0) (* pre-warm flag line *);
    Asm.emit asm (li 1 1);
    Asm.emit asm (li 3 0);
    Asm.emit asm (st 1 3 0) (* data := 1 (cold miss) *);
    if fenced then Asm.emit asm (Instr.Fence Fk.full);
    Asm.emit asm (st 1 2 0) (* flag := 1 *);
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  let consumer =
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm in
    Asm.emit asm (li 7 400);
    Asm.place asm loop;
    Asm.emit asm (addi 7 7 (-1));
    Asm.branch asm Instr.Nez (r 7) loop;
    (* Addresses depend on the loop counter: correct-path r7 = 0, and
       wrong-path instances read out of bounds instead of polluting
       the data/flag lines before the race. *)
    Asm.emit asm (addi 2 7 8);
    Asm.emit asm (addi 3 7 0);
    Asm.emit asm (ld 4 2 0) (* read flag *);
    if fenced then Asm.emit asm (Instr.Fence Fk.full);
    Asm.emit asm (ld 5 3 0) (* read data *);
    Asm.emit asm (li 6 16);
    Asm.emit asm (st 4 6 0);
    Asm.emit asm (st 5 6 1);
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  Program.make ~threads:[ producer; consumer ] ~mem_words:32 ()

let test_mp_litmus_fenced () =
  let result = run (mp_litmus ~fenced:true) in
  check_finished result;
  let flag = result.Machine.mem.(16) and data = result.Machine.mem.(17) in
  Alcotest.(check bool) "flag=1 implies data=1" true (flag = 0 || data = 1)

let test_mp_litmus_relaxed_is_possible () =
  (* Not a requirement of RMO, but our machine's timing does exhibit
     the flag=1/data=0 outcome without fences; this pins the
     relaxation the fences exist to forbid. *)
  let result = run (mp_litmus ~fenced:false) in
  check_finished result;
  let flag = result.Machine.mem.(16) and data = result.Machine.mem.(17) in
  Alcotest.(check (pair int int)) "relaxed outcome observed" (1, 0) (flag, data)

(* ------------------------------------------------------------------ *)
(* Litmus: IRIW.  Stores become visible to all cores at one completion
   point in this machine (multi-copy atomic, like MIPS/x86 and unlike
   POWER), so with fenced readers the two observers can never disagree
   on the order of the two independent writes.  This test pins that
   model property; DESIGN.md documents it as a fidelity note.          *)
(* ------------------------------------------------------------------ *)

let iriw_program () =
  (* x at 0, y at 8; observers record at 16,17 and 24,25. *)
  let writer addr =
    let asm = Asm.create () in
    Asm.emit asm (li 1 1);
    Asm.emit asm (li 2 addr);
    Asm.emit asm (st 1 2 0);
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  let reader ~first ~second ~slot =
    let asm = Asm.create () in
    let loop = Asm.fresh_label asm in
    Asm.emit asm (li 7 200);
    Asm.place asm loop;
    Asm.emit asm (addi 7 7 (-1));
    Asm.branch asm Instr.Nez (r 7) loop;
    Asm.emit asm (addi 2 7 first);
    Asm.emit asm (addi 3 7 second);
    Asm.emit asm (ld 4 2 0);
    Asm.emit asm (Instr.Fence Fk.full);
    Asm.emit asm (ld 5 3 0);
    Asm.emit asm (li 6 slot);
    Asm.emit asm (st 4 6 0);
    Asm.emit asm (st 5 6 1);
    Asm.emit asm Instr.Halt;
    Asm.finish asm
  in
  Program.make
    ~threads:
      [ writer 0; writer 8; reader ~first:0 ~second:8 ~slot:16;
        reader ~first:8 ~second:0 ~slot:24 ]
    ~mem_words:32 ()

let test_iriw_multi_copy_atomic () =
  let result = run (iriw_program ()) in
  check_finished result;
  let m = result.Machine.mem in
  (* Observer A saw x then y; observer B saw y then x.  The forbidden
     IRIW outcome is A: x=1,y=0 and B: y=1,x=0 simultaneously. *)
  let a_x, a_y = (m.(16), m.(17)) in
  let b_y, b_x = (m.(24), m.(25)) in
  Alcotest.(check bool)
    (Printf.sprintf "no IRIW disagreement (A: x=%d y=%d, B: y=%d x=%d)" a_x a_y b_y b_x)
    false
    (a_x = 1 && a_y = 0 && b_y = 1 && b_x = 0)

(* ------------------------------------------------------------------ *)
(* The Fig. 10 scenario: a class-scoped fence lets the out-of-scope
   long-latency store drain in the background.                         *)
(* ------------------------------------------------------------------ *)

let fig10_program ~kind =
  (* St A (cold miss, out of scope); then inside a class scope:
     St X; FENCE; Ld Y; then work after.  A = 0, X = 64, Y = 128. *)
  let asm = Asm.create () in
  Asm.emit asm (li 1 1);
  Asm.emit asm (li 2 0) (* A *);
  Asm.emit asm (li 3 64) (* X *);
  Asm.emit asm (li 4 128) (* Y *);
  Asm.emit asm (ld 6 3 0) (* pre-warm X's line so St X completes fast *);
  Asm.emit asm (st 1 2 0) (* St A: cold miss *);
  Asm.emit asm (Instr.Fs_start 1);
  Asm.emit asm (st 1 3 0) (* St X: in scope, fast *);
  Asm.emit asm (Instr.Fence kind);
  Asm.emit asm (ld 5 4 0) (* Ld Y *);
  Asm.emit asm (Instr.Fs_end 1);
  Asm.emit asm (st 5 3 1);
  Asm.emit asm Instr.Halt;
  Program.make ~threads:[ Asm.finish asm ] ~mem_words:256 ()

let test_fig10_scoped_faster () =
  let t = Machine.run (Config.traditional test_config) (fig10_program ~kind:Fk.full) in
  let s = Machine.run (Config.scoped test_config) (fig10_program ~kind:Fk.class_scoped) in
  check_finished t;
  check_finished s;
  Alcotest.(check bool)
    (Printf.sprintf "scoped (%d) beats traditional (%d)" s.Machine.cycles t.Machine.cycles)
    true
    (s.Machine.cycles < t.Machine.cycles);
  Alcotest.(check bool) "scoped saves a memory round trip" true
    (t.Machine.cycles - s.Machine.cycles > 100)

let test_fig10_same_result () =
  let t = Machine.run (Config.traditional test_config) (fig10_program ~kind:Fk.full) in
  let s = Machine.run (Config.scoped test_config) (fig10_program ~kind:Fk.class_scoped) in
  Alcotest.(check int) "functional result unchanged" t.Machine.mem.(65) s.Machine.mem.(65)

let test_fence_stall_attribution () =
  (* The traditional run of Fig. 10 must attribute stall cycles to the
     fence; the scoped run should attribute far fewer. *)
  let t = Machine.run (Config.traditional test_config) (fig10_program ~kind:Fk.full) in
  let s = Machine.run (Config.scoped test_config) (fig10_program ~kind:Fk.class_scoped) in
  let t_stalls = Machine.fence_stall_cycles t in
  let s_stalls = Machine.fence_stall_cycles s in
  Alcotest.(check bool)
    (Printf.sprintf "stalls drop (T=%d S=%d)" t_stalls s_stalls)
    true (s_stalls < t_stalls)

let test_in_window_speculation_helps_traditional () =
  let t = Machine.run (Config.traditional test_config) (fig10_program ~kind:Fk.full) in
  let t_plus =
    Machine.run
      (Config.with_speculation true (Config.traditional test_config))
      (fig10_program ~kind:Fk.full)
  in
  check_finished t_plus;
  Alcotest.(check bool)
    (Printf.sprintf "T+ (%d) <= T (%d)" t_plus.Machine.cycles t.Machine.cycles)
    true
    (t_plus.Machine.cycles <= t.Machine.cycles)

let tests =
  [
    Alcotest.test_case "single thread arithmetic" `Quick test_single_thread_arith;
    Alcotest.test_case "loop sum with branches" `Quick test_loop_sum;
    Alcotest.test_case "store-to-load forwarding" `Quick test_store_load_forwarding;
    Alcotest.test_case "tid instruction" `Quick test_tid;
    Alcotest.test_case "cas success/failure" `Quick test_cas_success_and_failure;
    Alcotest.test_case "cas atomic increment" `Quick test_cas_atomic_increment;
    Alcotest.test_case "SB litmus: relaxed without fence" `Quick test_sb_litmus_relaxed;
    Alcotest.test_case "SB litmus: full fence" `Quick test_sb_litmus_full_fence;
    Alcotest.test_case "SB litmus: set-scoped fence" `Quick test_sb_litmus_set_fence;
    Alcotest.test_case "MP litmus: fenced" `Quick test_mp_litmus_fenced;
    Alcotest.test_case "MP litmus: relaxed observable" `Quick
      test_mp_litmus_relaxed_is_possible;
    Alcotest.test_case "IRIW: multi-copy atomic" `Quick test_iriw_multi_copy_atomic;
    Alcotest.test_case "Fig10: scoped fence faster" `Quick test_fig10_scoped_faster;
    Alcotest.test_case "Fig10: same functional result" `Quick test_fig10_same_result;
    Alcotest.test_case "fence stall attribution" `Quick test_fence_stall_attribution;
    Alcotest.test_case "in-window speculation helps" `Quick
      test_in_window_speculation_helps_traditional;
  ]
