(* Mini-language compiler tests: typechecking, inlining, flagging, and
   end-to-end compile-and-simulate runs. *)

module Ast = Fscope_slang.Ast
module Typecheck = Fscope_slang.Typecheck
module Inline = Fscope_slang.Inline
module Alias = Fscope_slang.Alias
module Compile = Fscope_slang.Compile
module Instr = Fscope_isa.Instr
module Program = Fscope_isa.Program
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine

open Ast

let empty_program = { classes = []; instances = []; globals = []; threads = [] }

let run_program ?(config = Config.default) p =
  let prog, info = Compile.compile p in
  (Machine.run config prog, prog, info)

let check_typecheck_error msg p =
  match Typecheck.check p with
  | () -> Alcotest.failf "expected typecheck error (%s)" msg
  | exception Typecheck.Error _ -> ()

let test_reject_unknown_global () =
  check_typecheck_error "unknown global"
    { empty_program with threads = [ [ Store (Global "nope", Int 1) ] ] }

let test_reject_undeclared_local () =
  check_typecheck_error "undeclared local"
    {
      empty_program with
      globals = [ G_scalar ("x", 0) ];
      threads = [ [ Assign ("i", Int 1) ] ];
    }

let test_reject_duplicate_let () =
  check_typecheck_error "duplicate let"
    { empty_program with threads = [ [ Let ("i", Int 0); Let ("i", Int 1) ] ] }

let test_reject_recursion () =
  let cls =
    {
      cname = "C";
      scalars = [];
      arrays = [];
      methods =
        [
          {
            mname = "f";
            params = [];
            returns = false;
            body = [ Call_stmt { instance = Some "self"; meth = "f"; args = [] } ];
          };
        ];
    }
  in
  check_typecheck_error "recursion"
    {
      empty_program with
      classes = [ cls ];
      instances = [ { iname = "c"; cls = "C" } ];
      threads = [ [ Call_stmt { instance = Some "c"; meth = "f"; args = [] } ] ];
    }

let test_reject_arity_mismatch () =
  let cls =
    {
      cname = "C";
      scalars = [ ("x", 0) ];
      arrays = [];
      methods =
        [ { mname = "set"; params = [ "v" ]; returns = false;
            body = [ Store (Field ("self", "x"), Local "v") ] } ];
    }
  in
  check_typecheck_error "arity"
    {
      empty_program with
      classes = [ cls ];
      instances = [ { iname = "c"; cls = "C" } ];
      threads = [ [ Call_stmt { instance = Some "c"; meth = "set"; args = [] } ] ];
    }

let test_reject_return_in_thread () =
  check_typecheck_error "return in thread"
    { empty_program with threads = [ [ Return None ] ] }

let test_reject_array_used_as_scalar () =
  check_typecheck_error "array as scalar"
    {
      empty_program with
      globals = [ G_array ("a", 4, None) ];
      threads = [ [ Store (Global "a", Int 1) ] ];
    }

(* ------------------------------------------------------------------ *)

let test_compile_and_run_loop () =
  (* x := sum of 1..10 *)
  let p =
    {
      empty_program with
      globals = [ G_scalar ("x", 0) ];
      threads =
        [
          [
            Let ("i", Int 10);
            Let ("sum", Int 0);
            While
              ( Binop (Gt, Local "i", Int 0),
                [
                  Assign ("sum", Binop (Add, Local "sum", Local "i"));
                  Assign ("i", Binop (Sub, Local "i", Int 1));
                ] );
            Store (Global "x", Local "sum");
          ];
        ];
    }
  in
  let result, prog, _ = run_program p in
  Alcotest.(check bool) "finished" false result.Machine.timed_out;
  Alcotest.(check int) "sum" 55 result.Machine.mem.(Program.address_of prog "x")

let test_if_else () =
  let p =
    {
      empty_program with
      globals = [ G_scalar ("a", 0); G_scalar ("b", 0) ];
      threads =
        [
          [
            If (Binop (Lt, Int 3, Int 5), [ Store (Global "a", Int 1) ], [ Store (Global "a", Int 2) ]);
            If (Binop (Eq, Int 3, Int 5), [ Store (Global "b", Int 1) ], [ Store (Global "b", Int 2) ]);
          ];
        ];
    }
  in
  let result, prog, _ = run_program p in
  Alcotest.(check int) "then branch" 1 result.Machine.mem.(Program.address_of prog "a");
  Alcotest.(check int) "else branch" 2 result.Machine.mem.(Program.address_of prog "b")

let test_arrays_and_tid () =
  let p =
    {
      empty_program with
      globals = [ G_array ("slots", 8, None) ];
      threads =
        [
          [ Store (Elem ("slots", Tid), Binop (Add, Tid, Int 40)) ];
          [ Store (Elem ("slots", Tid), Binop (Add, Tid, Int 40)) ];
        ];
    }
  in
  let result, prog, _ = run_program p in
  let base = Program.address_of prog "slots" in
  Alcotest.(check int) "thread 0 slot" 40 result.Machine.mem.(base);
  Alcotest.(check int) "thread 1 slot" 41 result.Machine.mem.(base + 1)

(* A counter class with a class-scoped fence, exercised end to end. *)
let counter_class =
  {
    cname = "Counter";
    scalars = [ ("value", 0) ];
    arrays = [];
    methods =
      [
        {
          mname = "bump";
          params = [ "amount" ];
          returns = true;
          body =
            [
              Let ("old", Read (Field ("self", "value")));
              Fence (F_class, FF_full);
              Store (Field ("self", "value"), Binop (Add, Local "old", Local "amount"));
              Return (Some (Local "old"));
            ];
        };
        {
          mname = "bump_twice";
          params = [];
          returns = false;
          body =
            [
              Let ("ignore", Int 0);
              Call_assign ("ignore", { instance = Some "self"; meth = "bump"; args = [ Int 1 ] });
              Call_assign ("ignore", { instance = Some "self"; meth = "bump"; args = [ Int 1 ] });
            ];
        };
      ];
  }

let counter_program =
  {
    classes = [ counter_class ];
    instances = [ { iname = "ctr"; cls = "Counter" } ];
    globals = [ G_scalar ("result", 0) ];
    threads =
      [
        [
          Let ("old", Int 0);
          Call_assign ("old", { instance = Some "ctr"; meth = "bump"; args = [ Int 5 ] });
          Call_stmt { instance = Some "ctr"; meth = "bump_twice"; args = [] };
          Store (Global "result", Local "old");
        ];
      ];
  }

let test_method_call_end_to_end () =
  let result, prog, _ = run_program counter_program in
  Alcotest.(check bool) "finished" false result.Machine.timed_out;
  Alcotest.(check int) "counter" 7 result.Machine.mem.(Program.address_of prog "ctr.value");
  Alcotest.(check int) "return value" 0 result.Machine.mem.(Program.address_of prog "result")

let count_instr prog pred =
  Array.fold_left
    (fun acc code ->
      Array.fold_left (fun acc instr -> if pred instr then acc + 1 else acc) acc code)
    0 prog.Program.threads

let test_fs_markers_emitted () =
  let prog, info = Compile.compile counter_program in
  let cid = List.assoc "Counter" info.Compile.cids in
  let starts = count_instr prog (function Instr.Fs_start c -> c = cid | _ -> false) in
  let ends = count_instr prog (function Instr.Fs_end c -> c = cid | _ -> false) in
  (* bump (from thread), bump_twice, and two nested bumps = 4 regions *)
  Alcotest.(check int) "fs_start count" 4 starts;
  Alcotest.(check int) "fs_end count" 4 ends;
  let class_fences =
    count_instr prog (function
      | Instr.Fence k -> Fscope_isa.Fence_kind.equal k Fscope_isa.Fence_kind.class_scoped
      | _ -> false)
  in
  Alcotest.(check int) "class fences" 3 class_fences

let test_early_return () =
  (* max(a, b) via early return *)
  let cls =
    {
      cname = "M";
      scalars = [];
      arrays = [];
      methods =
        [
          {
            mname = "max";
            params = [ "a"; "b" ];
            returns = true;
            body =
              [
                If (Binop (Gt, Local "a", Local "b"), [ Return (Some (Local "a")) ], []);
                Return (Some (Local "b"));
              ];
          };
        ];
    }
  in
  let p =
    {
      classes = [ cls ];
      instances = [ { iname = "m"; cls = "M" } ];
      globals = [ G_scalar ("r1", 0); G_scalar ("r2", 0) ];
      threads =
        [
          [
            Let ("x", Int 0);
            Call_assign ("x", { instance = Some "m"; meth = "max"; args = [ Int 7; Int 3 ] });
            Store (Global "r1", Local "x");
            Call_assign ("x", { instance = Some "m"; meth = "max"; args = [ Int 2; Int 9 ] });
            Store (Global "r2", Local "x");
          ];
        ];
    }
  in
  let result, prog, _ = run_program p in
  Alcotest.(check int) "max(7,3)" 7 result.Machine.mem.(Program.address_of prog "r1");
  Alcotest.(check int) "max(2,9)" 9 result.Machine.mem.(Program.address_of prog "r2")

let test_set_flagging () =
  let p =
    {
      empty_program with
      globals = [ G_scalar ("flag", 0); G_scalar ("priv", 0) ];
      threads =
        [
          [
            Store (Global "priv", Int 1);
            Store (Global "flag", Int 1);
            Fence (F_set [ "flag" ], FF_full);
            Let ("v", Read (Global "flag"));
            Store (Global "priv", Local "v");
          ];
        ];
    }
  in
  let prog, info = Compile.compile p in
  Alcotest.(check (list string)) "flagged symbols" [ "flag" ] info.Compile.flagged_symbols;
  let flagged_ops =
    count_instr prog (function
      | Instr.Load { flagged; _ } | Instr.Store { flagged; _ } -> flagged
      | _ -> false)
  in
  Alcotest.(check int) "flag accesses flagged" 2 flagged_ops

let test_shared_symbols () =
  let p =
    {
      empty_program with
      globals = [ G_scalar ("shared", 0); G_scalar ("t0_only", 0); G_scalar ("read_only", 7) ];
      threads =
        [
          [ Store (Global "shared", Int 1); Store (Global "t0_only", Int 1);
            Let ("a", Read (Global "read_only")) ];
          [ Let ("b", Read (Global "shared")); Let ("c", Read (Global "read_only")) ];
        ];
    }
  in
  let inlined, _ = Inline.run p in
  Alcotest.(check (list string)) "conflict-shared only" [ "shared" ]
    (Alias.shared_symbols inlined)

let test_field_arrays () =
  let cls =
    {
      cname = "Buf";
      scalars = [ ("n", 0) ];
      arrays = [ ("items", 16, None) ];
      methods =
        [
          {
            mname = "push";
            params = [ "v" ];
            returns = false;
            body =
              [
                Let ("i", Read (Field ("self", "n")));
                Store (Field_elem ("self", "items", Local "i"), Local "v");
                Store (Field ("self", "n"), Binop (Add, Local "i", Int 1));
              ];
          };
        ];
    }
  in
  let p =
    {
      empty_program with
      classes = [ cls ];
      instances = [ { iname = "buf"; cls = "Buf" } ];
      threads =
        [
          [
            Call_stmt { instance = Some "buf"; meth = "push"; args = [ Int 11 ] };
            Call_stmt { instance = Some "buf"; meth = "push"; args = [ Int 22 ] };
          ];
        ];
    }
  in
  let result, prog, _ = run_program p in
  let base = Program.address_of prog "buf.items" in
  Alcotest.(check int) "items[0]" 11 result.Machine.mem.(base);
  Alcotest.(check int) "items[1]" 22 result.Machine.mem.(base + 1);
  Alcotest.(check int) "n" 2 result.Machine.mem.(Program.address_of prog "buf.n")

let test_register_pool_exhaustion () =
  let many_lets = List.init 30 (fun i -> Let (Printf.sprintf "v%d" i, Int i)) in
  let p = { empty_program with threads = [ many_lets ] } in
  match Compile.compile p with
  | _ -> Alcotest.fail "expected register exhaustion"
  | exception Fscope_slang.Codegen.Error _ -> ()

let tests =
  [
    Alcotest.test_case "reject unknown global" `Quick test_reject_unknown_global;
    Alcotest.test_case "reject undeclared local" `Quick test_reject_undeclared_local;
    Alcotest.test_case "reject duplicate let" `Quick test_reject_duplicate_let;
    Alcotest.test_case "reject recursion" `Quick test_reject_recursion;
    Alcotest.test_case "reject arity mismatch" `Quick test_reject_arity_mismatch;
    Alcotest.test_case "reject return in thread" `Quick test_reject_return_in_thread;
    Alcotest.test_case "reject array as scalar" `Quick test_reject_array_used_as_scalar;
    Alcotest.test_case "compile and run loop" `Quick test_compile_and_run_loop;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "arrays and tid" `Quick test_arrays_and_tid;
    Alcotest.test_case "method calls end to end" `Quick test_method_call_end_to_end;
    Alcotest.test_case "fs markers emitted" `Quick test_fs_markers_emitted;
    Alcotest.test_case "early return" `Quick test_early_return;
    Alcotest.test_case "set-scope flagging" `Quick test_set_flagging;
    Alcotest.test_case "shared symbol inference" `Quick test_shared_symbols;
    Alcotest.test_case "instance array fields" `Quick test_field_arrays;
    Alcotest.test_case "register pool exhaustion" `Quick test_register_pool_exhaustion;
  ]
