(* Where do fence stalls come from?  This example runs the radiosity
   kernel and breaks each variant's fence stalls into the buckets the
   core tracks (in-flight ROB loads, uncommitted stores, store-buffer
   drain) — the anatomy behind Fig. 13's bars.  By the time a fence
   reaches the commit head its older ROB entries have retired, so
   head stalls are store-buffer drain almost by construction; the
   interesting number is how much smaller the scoped drain is.

     dune exec examples/fence_anatomy.exe *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module W = Fscope_workloads

let () =
  let workload = W.Radiosity.make () in
  Printf.printf "radiosity kernel: fence-stall anatomy per variant\n\n";
  Printf.printf "  %-4s %9s %10s %11s %11s %9s\n" "cfg" "cycles" "stalls" "on ROB ld" "on ROB st"
    "on SB";
  List.iter
    (fun (label, config) ->
      let result = W.Workload.run config workload in
      let sum f =
        Array.fold_left (fun acc s -> acc + f s) 0 result.Machine.core_stats
      in
      Printf.printf "  %-4s %9d %10d %11d %11d %9d\n" label result.Machine.cycles
        (sum (fun (s : Fscope_cpu.Core.stats) -> s.fence_stall_cycles))
        (sum (fun s -> s.Fscope_cpu.Core.stall_rob_load))
        (sum (fun s -> s.Fscope_cpu.Core.stall_rob_store))
        (sum (fun s -> s.Fscope_cpu.Core.stall_sb)))
    [
      ("T", Config.traditional Config.default);
      ("S", Config.scoped Config.default);
    ];
  Printf.printf
    "\nthe scoped fences drain only the flagged (in-scope) store-buffer\n\
     entries: the private visibility scratch no longer holds fences up,\n\
     which is the point of S-FENCE[set] for compiler-enforced SC\n"
