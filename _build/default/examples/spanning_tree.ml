(* The paper's motivating application (Fig. 3): parallel spanning tree
   over work-stealing queues, on all four machine variants.

     dune exec examples/spanning_tree.exe [-- nodes]

   Prints the T / S / T+ / S+ execution times, the fence-stall share of
   each, and verifies the computed tree on the host. *)

module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module W = Fscope_workloads
module E = Fscope_experiments

let () =
  let nodes =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 512
  in
  let workload = W.Pst.make ~nodes ~scope:`Class () in
  Printf.printf "parallel spanning tree: %d nodes, 8 cores, work-stealing deques\n\n"
    nodes;
  let baseline = ref None in
  List.iter
    (fun (label, mk) ->
      let m = E.Exp_run.measure (mk Config.default) workload in
      let base = match !baseline with None -> baseline := Some m; m | Some b -> b in
      Printf.printf "  %-3s %7d cycles  (%.2fx vs T, %4.1f%% fence stalls)\n" label
        m.E.Exp_run.cycles
        (E.Exp_run.speedup ~baseline:base m)
        (100. *. m.E.Exp_run.fence_stall_fraction))
    [
      ("T", E.Exp_run.t_config);
      ("S", E.Exp_run.s_config);
      ("T+", E.Exp_run.t_plus);
      ("S+", E.Exp_run.s_plus);
    ];
  Printf.printf "\nthe S runs passed the spanning-tree validation (tree checked on host)\n"
