examples/quickstart.mli:
