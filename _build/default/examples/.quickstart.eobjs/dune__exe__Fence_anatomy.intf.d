examples/fence_anatomy.mli:
