examples/custom_algorithm.ml: Array Fscope_isa Fscope_machine Fscope_slang Fscope_workloads Fun List Printf Stdlib String
