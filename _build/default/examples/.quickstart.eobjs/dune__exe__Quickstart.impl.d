examples/quickstart.ml: Fscope_isa Fscope_machine Printf
