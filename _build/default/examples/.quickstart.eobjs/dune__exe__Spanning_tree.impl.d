examples/spanning_tree.ml: Array Fscope_experiments Fscope_machine Fscope_workloads List Printf Sys
