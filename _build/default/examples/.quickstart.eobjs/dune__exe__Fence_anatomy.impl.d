examples/fence_anatomy.ml: Array Fscope_cpu Fscope_machine Fscope_workloads List Printf
