(* Quickstart: the paper's Fig. 10 scenario, end to end.

   We hand-assemble a tiny program in which a long-latency store (St A)
   precedes a class scope containing a fast store (St X), a fence, and
   a load (Ld Y).  Run it twice — traditional fences vs S-Fence — and
   watch the scoped fence stop paying for the out-of-scope miss.

     dune exec examples/quickstart.exe *)

module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Asm = Fscope_isa.Asm
module Program = Fscope_isa.Program
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine

let r = Reg.r

let program ~kind =
  let asm = Asm.create () in
  let emit = Asm.emit asm in
  emit (Instr.Li (r 1, 42));
  emit (Instr.Li (r 2, 0)) (* address of A *);
  emit (Instr.Li (r 3, 64)) (* address of X *);
  emit (Instr.Li (r 4, 128)) (* address of Y *);
  emit (Instr.Load { dst = r 6; base = r 3; off = 0; flagged = false })
  (* pre-warm X's line so St X completes quickly *);
  emit (Instr.Store { src = r 1; base = r 2; off = 0; flagged = false })
  (* St A: a cold miss, outside the scope *);
  emit (Instr.Fs_start 1) (* enter the class scope *);
  emit (Instr.Store { src = r 1; base = r 3; off = 0; flagged = false }) (* St X *);
  emit (Instr.Fence kind) (* the fence under test *);
  emit (Instr.Load { dst = r 5; base = r 4; off = 0; flagged = false }) (* Ld Y *);
  emit (Instr.Fs_end 1);
  emit (Instr.Store { src = r 5; base = r 3; off = 1; flagged = false });
  emit Instr.Halt;
  Program.make ~threads:[ Asm.finish asm ] ~mem_words:256 ()

let () =
  let traditional =
    Machine.run (Config.traditional Config.default)
      (program ~kind:Fscope_isa.Fence_kind.full)
  in
  let scoped =
    Machine.run (Config.scoped Config.default)
      (program ~kind:Fscope_isa.Fence_kind.class_scoped)
  in
  Printf.printf "Fig. 10 quickstart (one core, one scope, one fence)\n";
  Printf.printf "  traditional fence: %5d cycles (%d stalled at the fence)\n"
    traditional.Machine.cycles
    (Machine.fence_stall_cycles traditional);
  Printf.printf "  scoped fence:      %5d cycles (%d stalled at the fence)\n"
    scoped.Machine.cycles
    (Machine.fence_stall_cycles scoped);
  Printf.printf "  saved: %d cycles — the fence no longer waits for St A's miss\n"
    (traditional.Machine.cycles - scoped.Machine.cycles)
