(* Writing your own scoped-fence data structure.

   This example builds a Treiber-style lock-free stack as a slang
   class with a class-scoped fence, drives it from four threads, and
   compares traditional vs scoped fences — the workflow a user of this
   library follows for any new concurrent algorithm:

     1. write the data structure as a class, with S-FENCE[class] at
        the points your memory-model reasoning requires;
     2. write a harness whose threads call it (and do out-of-scope
        work in between);
     3. compile, run on both machine variants, and *validate the
        functional result from the final memory image*.

     dune exec examples/custom_algorithm.exe *)

module Ast = Fscope_slang.Ast
module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module W = Fscope_workloads

(* A Treiber stack over an index-based node pool: top holds a node
   index (0 = empty); each thread pushes then pops from disjoint node
   ranges, so every value must be popped exactly once overall. *)
let stack_class =
  let open W.Dsl in
  {
    Ast.cname = "Stack";
    scalars = [ scalar "top" 0 ];
    arrays = [ array "sval" 256; array "snext" 256 ];
    methods =
      [
        meth "push" [ "v"; "node" ]
          [
            sfldelem "self" "sval" (l "node") (l "v");
            let_ "done_" (i 0);
            while_
              (not_ (l "done_"))
              [
                let_ "t" (fld "self" "top");
                sfldelem "self" "snext" (l "node") (l "t");
                fence_class (* publish val/next before the top CAS *);
                let_ "ok" (i 0);
                cas_fld "ok" "self" "top" (l "t") (l "node");
                when_ (l "ok") [ set "done_" (i 1) ];
              ];
          ];
        meth "pop" [] ~returns:true
          [
            let_ "res" (i 0);
            let_ "done_" (i 0);
            while_
              (not_ (l "done_"))
              [
                let_ "t" (fld "self" "top");
                if_ (l "t" = i 0)
                  [ set "done_" (i 1) (* empty *) ]
                  [
                    let_ "n" (fldelem "self" "snext" (l "t"));
                    let_ "v" (fldelem "self" "sval" (l "t"));
                    fence_class (* read the node before racing for it *);
                    let_ "ok" (i 0);
                    cas_fld "ok" "self" "top" (l "t") (l "n");
                    when_ (l "ok") [ set "res" (l "v"); set "done_" (i 1) ];
                  ];
              ];
            return_ (l "res");
          ];
      ];
  }

let threads = 4
let per_thread = 12

let thread_body me =
  let open W.Dsl in
  let base = Stdlib.( + ) (Stdlib.( * ) me per_thread) 1 in
  W.Privwork.warmup ~thread:me ~level:(W.Privwork.cold ~arith:32 ~stores:1)
  @ [
      let_ "k" (i 0);
      while_
        (l "k" < i per_thread)
        ([ call "stk" "push" [ i base + l "k" + i 100; i base + l "k" ] ]
        @ W.Privwork.block ~thread:me
            ~level:(W.Privwork.cold ~arith:32 ~stores:1)
            ~unique:"w" ()
        @ [ set "k" (l "k" + i 1) ]);
      let_ "k2" (i 0);
      let_ "v" (i 0);
      while_
        (l "k2" < i per_thread)
        [
          callv "v" "stk" "pop" [];
          when_
            (l "v" > i 0)
            [ selem (Printf.sprintf "popped%d" me) (l "v" - i 101) (i 1) ];
          set "k2" (l "k2" + i 1);
        ];
    ]

let () =
  let n_values = threads * per_thread in
  let program_ast =
    {
      Ast.classes = [ stack_class ];
      instances = [ { Ast.iname = "stk"; cls = "Stack" } ];
      globals =
        List.init threads (fun t ->
            Ast.G_array (Printf.sprintf "popped%d" t, n_values + 1, None))
        @ W.Privwork.globals ~threads ();
      threads = List.init threads thread_body;
    }
  in
  let program, info = Fscope_slang.Compile.compile program_ast in
  Printf.printf "treiber stack: %d instructions compiled, class cids: %s\n"
    (Fscope_isa.Program.total_instrs program)
    (String.concat ", "
       (List.map
          (fun (c, id) -> Printf.sprintf "%s->%d" c id)
          info.Fscope_slang.Compile.cids));
  let run config =
    let result = Machine.run config program in
    if result.Machine.timed_out then failwith "timed out";
    result
  in
  let t = run (Config.traditional Config.default) in
  let s = run (Config.scoped Config.default) in
  (* Validate: every pushed value popped at most once, and values not
     popped must still be on the stack. *)
  let mem = s.Machine.mem in
  let addr name = Fscope_isa.Program.address_of program name in
  let on_stack = Array.make (n_values + 1) 0 in
  let rec walk node =
    if node <> 0 then begin
      let v = mem.(addr "stk.sval" + node) - 101 in
      if v >= 0 && v <= n_values then on_stack.(v) <- on_stack.(v) + 1;
      walk mem.(addr "stk.snext" + node)
    end
  in
  walk mem.(addr "stk.top");
  let ok = ref true in
  for v = 0 to n_values - 1 do
    let popped =
      List.fold_left
        (fun acc t -> acc + mem.(addr (Printf.sprintf "popped%d" t) + v))
        0 (List.init threads Fun.id)
    in
    if popped + on_stack.(v) <> 1 then ok := false
  done;
  Printf.printf "validation: every value accounted exactly once: %b\n" !ok;
  Printf.printf "traditional: %d cycles | scoped: %d cycles | speedup %.2fx\n"
    t.Machine.cycles s.Machine.cycles
    (float_of_int t.Machine.cycles /. float_of_int s.Machine.cycles)
