type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  let n_header = List.length t.header and n_row = List.length row in
  if n_row > n_header then invalid_arg "Table.add_row: row wider than header";
  let padded =
    if n_row = n_header then row
    else row @ List.init (n_header - n_row) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.header)
      all
  in
  let pad cell width = cell ^ String.make (width - String.length cell) ' ' in
  let line row = String.concat "  " (List.map2 pad row widths) in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f v = Printf.sprintf "%.3f" v
let cell_pct v = Printf.sprintf "%.1f%%" (v *. 100.)
let cell_x v = Printf.sprintf "%.2fx" v
