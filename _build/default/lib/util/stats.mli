(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list.  All inputs must be
    positive. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on the
    empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank method.
    Raises [Invalid_argument] on the empty list. *)

val ratio : num:int -> den:int -> float
(** [ratio ~num ~den] as a float; 0. when [den] is 0. *)
