let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          assert (x > 0.);
          acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let sorted = List.sort Float.compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let rank = if rank <= 0 then 1 else if rank > n then n else rank in
    List.nth sorted (rank - 1)

let ratio ~num ~den = if den = 0 then 0. else float_of_int num /. float_of_int den
