(** Deterministic pseudo-random number generation.

    All randomness in the simulator, workload generators and property
    tests flows through this module so that every experiment is exactly
    reproducible from a seed.  The generator is splitmix64, which is
    fast, has a 64-bit state and passes BigCrush. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 fresh bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** A fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing
    [t].  Useful for giving sub-components their own streams. *)
