(** Plain-text tables for the experiment reports.

    The bench harness prints one table per reproduced paper table or
    figure; this module keeps the formatting in one place. *)

type t

val create : title:string -> header:string list -> t
(** A new table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** The table as a string, columns aligned, with a title line and a
    rule under the header. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_f : float -> string
(** Format a float cell with 3 decimals. *)

val cell_pct : float -> string
(** Format a fraction as a percentage with 1 decimal, e.g. ["38.8%"]. *)

val cell_x : float -> string
(** Format a speedup cell, e.g. ["1.23x"]. *)
