lib/util/rng.mli:
