lib/util/table.mli:
