lib/util/stats.mli:
