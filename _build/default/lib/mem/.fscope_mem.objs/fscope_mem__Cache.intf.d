lib/mem/cache.mli:
