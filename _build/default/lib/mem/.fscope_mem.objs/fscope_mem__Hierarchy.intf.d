lib/mem/hierarchy.mli:
