lib/mem/hierarchy.ml: Array Cache Hashtbl Printf
