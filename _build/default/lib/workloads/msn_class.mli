(** The Michael-Scott non-blocking queue (Table IV "msn") as a slang
    class.

    Nodes live in a preallocated pool (arrays [val]/[next]); index 0
    is nil and index 1 the initial dummy node.  Callers hand [enqueue]
    a fresh node index — the harness gives each thread a disjoint
    index range, so nodes are never reused and the ABA problem cannot
    arise (the original algorithm's counted pointers are unnecessary
    for a bounded run).

    Values must be positive; [dequeue] returns 0 when the queue is
    empty.  Fences: a store-store fence publishes the node's fields
    before the link CAS, and a load-load fence orders the
    head/tail/next snapshot before its consistency re-check — the
    placements fence-synthesis tools derive for this queue under
    RMO. *)

val decl : fence:Fscope_slang.Ast.stmt -> pool:int -> Fscope_slang.Ast.class_decl
(** The class, named "Msn". *)

val set_fence_vars : instances:string list -> string list
(** Field symbols for the Fig. 14 set-scope variant. *)
