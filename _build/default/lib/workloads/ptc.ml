module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let wsq_name t = Printf.sprintf "wsq%d" t

let thread_body ~me ~threads ~nodes ~total_pairs ~initial_tasks =
  let open Dsl in
  let own = wsq_name me in
  let steal_round =
    List.concat_map
      (fun k ->
        let victim = Stdlib.( mod ) (Stdlib.( + ) me k) threads in
        [ when_ (l "task" = i 0) [ callv "task" (wsq_name victim) "steal" [] ] ])
      (List.init (Stdlib.( - ) threads 1) (fun k -> Stdlib.( + ) k 1))
  in
  List.map (fun task -> call own "put" [ i task ]) initial_tasks
  @ [
      let_ "task" (i 0);
      while_
        (g "done_count" < i total_pairs)
        [
          callv "task" own "take" [];
          if_ (l "task" = i 0) steal_round [];
          when_
            (l "task" > i 0)
            [
              let_ "s" ((l "task" - i 1) / i nodes);
              let_ "v" ((l "task" - i 1) % i nodes);
              let_ "k" (elem "offsets" (l "v"));
              let_ "kend" (elem "offsets" (l "v" + i 1));
              while_
                (l "k" < l "kend")
                [
                  let_ "u" (elem "edges" (l "k"));
                  let_ "ok" (i 0);
                  cas_elem "ok" "reach" ((l "s" * i nodes) + l "u") (i 0) (tid + i 1);
                  when_
                    (l "ok")
                    [
                      (* Record the predecessor (for path reconstruction);
                         this out-of-scope store is still in flight when
                         the deque fence inside put() executes. *)
                      selem "pred" ((l "s" * i nodes) + l "u") (l "v" + i 1);
                      call own "put" [ (l "s" * i nodes) + l "u" + i 1 ];
                      let_ "okc" (i 0);
                      while_
                        (not_ (l "okc"))
                        [
                          let_ "d" (g "done_count");
                          cas_g "okc" "done_count" (l "d") (l "d" + i 1);
                        ];
                    ];
                  set "k" (l "k" + i 1);
                ];
            ];
          set "task" (i 0);
        ];
    ]

let make ?(threads = 8) ?(nodes = 256) ?(degree = 4) ?(sources = 3) ?(seed = 23) ~scope ()
    =
  let graph = Graph.make ~nodes ~degree ~seed in
  let source_of s = s * nodes / (sources + 1) in
  let expected =
    Array.init sources (fun s -> Graph.reachable_from graph (source_of s))
  in
  let total_pairs =
    Array.fold_left
      (fun acc row -> acc + Array.fold_left (fun a r -> if r then a + 1 else a) 0 row)
      0 expected
  in
  let cap =
    1 lsl (int_of_float (ceil (log (float_of_int (nodes * sources)) /. log 2.)) + 1)
  in
  let instances = List.init threads wsq_name in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Wsq_class.set_fence_vars ~instances)
  in
  (* Source s's seed task goes to thread s mod threads; the seed pairs
     are pre-claimed in the initial reach image. *)
  let initial_tasks t =
    List.filter_map
      (fun s ->
        if s mod threads = t then Some ((s * nodes) + source_of s + 1) else None)
      (List.init sources Fun.id)
  in
  let reach_init = Array.make (sources * nodes) 0 in
  for s = 0 to sources - 1 do
    reach_init.((s * nodes) + source_of s) <- 9 (* pre-claimed marker *)
  done;
  let program_ast =
    {
      Ast.classes = [ Wsq_class.decl ~fence ~cap () ];
      instances = List.map (fun name -> { Ast.iname = name; cls = "Wsq" }) instances;
      globals =
        [
          Ast.G_array ("offsets", nodes + 1, Some graph.Graph.offsets);
          Ast.G_array ("edges", max 1 (Array.length graph.Graph.edges), Some graph.Graph.edges);
          Ast.G_array ("reach", sources * nodes, Some reach_init);
          Ast.G_array ("pred", sources * nodes, None);
          Ast.G_scalar ("done_count", sources);
        ];
      threads =
        List.init threads (fun t ->
            thread_body ~me:t ~threads ~nodes ~total_pairs ~initial_tasks:(initial_tasks t));
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let reach = Program.address_of program "reach" in
    let problem = ref None in
    for s = 0 to sources - 1 do
      for v = 0 to nodes - 1 do
        let marked = mem.(reach + (s * nodes) + v) <> 0 in
        if marked <> expected.(s).(v) && !problem = None then
          problem :=
            Some
              (Printf.sprintf "pair (source %d, node %d): simulated %b, expected %b" s v
                 marked expected.(s).(v))
      done
    done;
    (* Predecessor sanity: every claimed non-seed pair must record a
       predecessor that is a graph neighbour of the node. *)
    let pred = Program.address_of program "pred" in
    for s = 0 to sources - 1 do
      for v = 0 to nodes - 1 do
        let claimed = mem.(reach + (s * nodes) + v) in
        if claimed <> 0 && claimed <> 9 && !problem = None then begin
          let p = mem.(pred + (s * nodes) + v) - 1 in
          if p < 0 || p >= nodes || not (List.mem p (Graph.neighbours graph v)) then
            problem :=
              Some (Printf.sprintf "pair (%d,%d): predecessor %d is not a neighbour" s v p)
        end
      done
    done;
    match !problem with
    | Some msg -> Error msg
    | None ->
      if mem.(Program.address_of program "done_count") <> total_pairs then
        Error "done_count does not match the reachable pair count"
      else Ok ()
  in
  {
    Workload.name = "ptc";
    description = "parallel transitive closure over work-stealing deques";
    program;
    validate;
  }
