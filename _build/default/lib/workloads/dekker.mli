(** The Dekker mutual-exclusion workload (Fig. 11; Table IV row
    "dekker", scope type "set").

    Two threads repeatedly attempt the critical section with the
    flag-based try-lock of the paper's simplified Dekker algorithm,
    then run the private workload.  The fences are
    [S-FENCE\[set, {flag0, flag1, counter}\]]: the paper's entry fence
    plus the RMO-required acquire/release fences around the critical
    section (the counter is in the set so the shared increment is
    ordered with the flags — see the module body for the argument).

    Validation: the critical-section counter must equal the total
    number of successful entries — a mutual-exclusion or fence-order
    violation loses increments. *)

val make : level:Privwork.level -> attempts:int -> Workload.t
(** [level] is the private-work setting per attempt (the Fig. 12
    x-axis); [attempts] the number of lock attempts per thread. *)
