module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

(* Keys are interleaved across threads (thread t owns keys
   {10 + t + j*threads}) so neighbouring list nodes belong to
   different threads and the CAS contention is real. *)
let key_of ~threads ~t ~j = 10 + t + (j * threads)

let thread_body ~me ~threads ~keys_per_thread ~level =
  let open Dsl in
  let key j = i 10 + tid + (j * i threads) in
  let node_base = Stdlib.( + ) 3 (Stdlib.( * ) me keys_per_thread) in
  Privwork.warmup ~thread:me ~level
  @ [
    let_ "ins_ok" (i 0);
    let_ "del_ok" (i 0);
    let_ "con_ok" (i 0);
    let_ "r" (i 0);
    let_ "j" (i 0);
    while_
      (l "j" < i keys_per_thread)
      ([
         callv "r" "set" "insert" [ key (l "j"); i node_base + l "j" ];
         set "ins_ok" (l "ins_ok" + l "r");
       ]
      @ Privwork.block ~thread:me ~level ~unique:"wi" ()
      @ [ set "j" (l "j" + i 1) ]);
    set "j" (i 0);
    while_
      (l "j" < i keys_per_thread)
      ([
         callv "r" "set" "delete" [ key (l "j") ];
         set "del_ok" (l "del_ok" + l "r");
       ]
      @ Privwork.block ~thread:me ~level ~unique:"wd" ()
      @ [ set "j" (l "j" + i 2) ]);
    set "j" (i 0);
    while_
      (l "j" < i keys_per_thread)
      ([
         callv "r" "set" "contains" [ key (l "j") ];
         set "con_ok" (l "con_ok" + l "r");
       ]
      @ Privwork.block ~thread:me ~level ~unique:"wc" ()
      @ [ set "j" (l "j" + i 1) ]);
    sg (Printf.sprintf "ins%d" me) (l "ins_ok");
    sg (Printf.sprintf "del%d" me) (l "del_ok");
    sg (Printf.sprintf "con%d" me) (l "con_ok");
  ]

let make ?(threads = 8) ?(keys_per_thread = 2) ~scope ~level () =
  let pool = 3 + (threads * keys_per_thread) in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Harris_class.set_fence_vars ~instances:[ "set" ])
  in
  let program_ast =
    {
      Ast.classes = [ Harris_class.decl ~fence ~pool ];
      instances = [ { Ast.iname = "set"; cls = "Harris" } ];
      globals =
        List.concat_map
          (fun t ->
            [
              Ast.G_scalar (Printf.sprintf "ins%d" t, 0);
              Ast.G_scalar (Printf.sprintf "del%d" t, 0);
              Ast.G_scalar (Printf.sprintf "con%d" t, 0);
            ])
          (List.init threads Fun.id)
        @ Privwork.globals ~threads ();
      threads =
        List.init threads (fun t -> thread_body ~me:t ~threads ~keys_per_thread ~level);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  (* Thread t deletes keys at even j; odd j keys survive. *)
  let expected_present =
    List.concat_map
      (fun t ->
        List.filter_map
          (fun j -> if j mod 2 = 1 then Some (key_of ~threads ~t ~j) else None)
          (List.init keys_per_thread Fun.id))
      (List.init threads Fun.id)
    |> List.sort Int.compare
  in
  let deleted_per_thread = (keys_per_thread + 1) / 2 in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let v name = mem.(Program.address_of program name) in
    let nkey = Program.address_of program "set.nkey"
    and nnext = Program.address_of program "set.nnext" in
    (* Walk the list, collecting unmarked keys. *)
    let rec walk idx acc steps =
      if steps > pool * 2 then Error "list walk did not terminate (cycle?)"
      else if idx = Harris_class.tail_index then Ok (List.rev acc)
      else begin
        let next = mem.(nnext + idx) in
        let succ = next / 2 in
        let acc =
          if next mod 2 = 0 && idx <> Harris_class.head_index then
            mem.(nkey + idx) :: acc
          else acc
        in
        walk succ acc (steps + 1)
      end
    in
    match walk Harris_class.head_index [] 0 with
    | Error e -> Error e
    | Ok keys ->
      let sorted = List.sort Int.compare keys in
      if keys <> sorted then Error "final list is not sorted"
      else if keys <> expected_present then
        Error
          (Printf.sprintf "final set has %d keys, expected %d" (List.length keys)
             (List.length expected_present))
      else begin
        let problem = ref None in
        for t = 0 to threads - 1 do
          let ins = v (Printf.sprintf "ins%d" t)
          and del = v (Printf.sprintf "del%d" t)
          and con = v (Printf.sprintf "con%d" t) in
          if ins <> keys_per_thread && !problem = None then
            problem := Some (Printf.sprintf "thread %d: %d inserts succeeded" t ins);
          if del <> deleted_per_thread && !problem = None then
            problem := Some (Printf.sprintf "thread %d: %d deletes succeeded" t del);
          if con <> keys_per_thread - deleted_per_thread && !problem = None then
            problem := Some (Printf.sprintf "thread %d: %d contains succeeded" t con)
        done;
        match !problem with
        | Some msg -> Error msg
        | None -> Ok ()
      end
  in
  {
    Workload.name = "harris";
    description = "Harris lock-free sorted-list set under the Fig. 12 harness";
    program;
    validate;
  }
