module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let claims_name t = Printf.sprintf "claims%d" t

let producer_thread ~me ~per_producer ~level =
  let open Dsl in
  (* Disjoint node indices: producer p uses 2 + p*per + k; values are
     node-index-aligned so validation can recompute them. *)
  let base = Stdlib.( + ) 2 (Stdlib.( * ) me per_producer) in
  Privwork.warmup ~thread:me ~level
  @ [
    let_ "k" (i 0);
    while_
      (l "k" < i per_producer)
      ([
         call "q" "enqueue" [ i base + l "k" + i 1000; i base + l "k" ];
         set "k" (l "k" + i 1);
       ]
      @ Privwork.block ~thread:me ~level ~unique:"w" ());
    fence (* all enqueue effects visible before the completion count *);
    let_ "ok" (i 0);
    while_
      (not_ (l "ok"))
      [ let_ "d" (g "done_producers"); cas_g "ok" "done_producers" (l "d") (l "d" + i 1) ];
  ]

let consumer_thread ~me ~producers ~level ~n_values =
  let open Dsl in
  let claim v =
    [ selem (claims_name me) (v - i 1002) (elem (claims_name me) (v - i 1002) + i 1) ]
  in
  Privwork.warmup ~thread:me ~level
  @ Privwork.warm_array ~name:(claims_name me) ~words:(Stdlib.( + ) n_values 2)
  @ [
    let_ "leave" (i 0);
    let_ "v" (i 0);
    while_
      (not_ (l "leave"))
      [
        callv "v" "q" "dequeue" [];
        if_ (l "v" > i 0)
          (claim (l "v") @ Privwork.block ~thread:me ~level ~unique:"w" ())
          [
            (* Drain protocol: only leave when a dequeue that *follows*
               the done_producers == P observation still finds the
               queue empty. *)
            let_ "d" (g "done_producers");
            fence;
            let_ "v2" (i 0);
            callv "v2" "q" "dequeue" [];
            if_ (l "v2" > i 0)
              (claim (l "v2") @ Privwork.block ~thread:me ~level ~unique:"w2" ())
              [ when_ (l "d" = i producers) [ set "leave" (i 1) ] ];
          ];
      ];
  ]

let make ?(threads = 8) ?(per_producer = 16) ~scope ~level () =
  if threads < 2 || threads mod 2 <> 0 then
    invalid_arg "Msn.make: need an even thread count >= 2";
  let producers = threads / 2 in
  let pool = 2 + (producers * per_producer) in
  let n_values = producers * per_producer in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Msn_class.set_fence_vars ~instances:[ "q" ])
  in
  let program_ast =
    {
      Ast.classes = [ Msn_class.decl ~fence ~pool ];
      instances = [ { Ast.iname = "q"; cls = "Msn" } ];
      globals =
        (Ast.G_scalar ("done_producers", 0)
        :: List.init threads (fun t -> Ast.G_array (claims_name t, n_values + 2, None)))
        @ Privwork.globals ~threads ();
      threads =
        List.init threads (fun t ->
            if t < producers then producer_thread ~me:t ~per_producer ~level
            else consumer_thread ~me:t ~producers ~level ~n_values);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    (* Node indices 2 .. pool-1 carry values node+1000; claim slot is
       value-1002 = node-2, in [0, n_values). *)
    let problem = ref None in
    for slot = 0 to n_values - 1 do
      let total =
        List.fold_left
          (fun acc t -> acc + mem.(Program.address_of program (claims_name t) + slot))
          0
          (List.init threads Fun.id)
      in
      if total <> 1 && !problem = None then
        problem := Some (Printf.sprintf "value for node %d consumed %d times" (slot + 2) total)
    done;
    (* The queue must end empty: head's node has no successor. *)
    let head = mem.(Program.address_of program "q.qhead") in
    let next = Program.address_of program "q.qnext" in
    if mem.(next + head) <> 0 && !problem = None then
      problem := Some "queue not empty at exit";
    match !problem with
    | Some msg -> Error msg
    | None -> Ok ()
  in
  {
    Workload.name = "msn";
    description = "Michael-Scott non-blocking queue under the Fig. 12 harness";
    program;
    validate;
  }
