(** The non-blocking-queue harness workload (Table IV "msn").

    Half the threads produce uniquely numbered values, half consume,
    with the tunable private workload between operations.  Producers
    announce completion through a fenced counter; consumers leave only
    after observing the queue empty *after* observing all producers
    done (see the module body for the drain protocol).  Validation:
    every produced value is consumed exactly once and the queue ends
    empty. *)

val make :
  ?threads:int ->
  ?per_producer:int ->
  scope:[ `Class | `Set ] ->
  level:Privwork.level ->
  unit ->
  Workload.t
(** [threads] must be even (default 8: 4 producers + 4 consumers);
    [per_producer] values enqueued by each producer (default 16). *)
