lib/workloads/ptc.mli: Workload
