lib/workloads/workload.mli: Fscope_isa Fscope_machine
