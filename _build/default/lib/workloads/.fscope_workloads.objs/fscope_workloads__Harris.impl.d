lib/workloads/harris.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Fun Harris_class Int List Printf Privwork Stdlib Workload
