lib/workloads/msn.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Fun List Msn_class Printf Privwork Stdlib Workload
