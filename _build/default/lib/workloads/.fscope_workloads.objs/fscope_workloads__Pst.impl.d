lib/workloads/pst.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Graph List Printf Stdlib Workload Wsq_class
