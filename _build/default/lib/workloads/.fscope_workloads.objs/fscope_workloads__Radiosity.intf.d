lib/workloads/radiosity.mli: Privwork Workload
