lib/workloads/dsl.mli: Fscope_slang
