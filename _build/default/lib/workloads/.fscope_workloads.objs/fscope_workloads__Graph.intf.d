lib/workloads/graph.mli:
