lib/workloads/dekker.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Printf Privwork Stdlib Workload
