lib/workloads/wsq_class.mli: Fscope_slang
