lib/workloads/harris_class.mli: Fscope_slang
