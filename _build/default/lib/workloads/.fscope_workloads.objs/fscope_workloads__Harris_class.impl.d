lib/workloads/harris_class.ml: Array Dsl Fscope_slang List Stdlib
