lib/workloads/wsq.mli: Privwork Workload
