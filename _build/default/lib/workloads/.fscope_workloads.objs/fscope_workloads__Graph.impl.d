lib/workloads/graph.ml: Array Fscope_util Fun List Queue
