lib/workloads/barnes.mli: Privwork Workload
