lib/workloads/ptc.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Fun Graph List Printf Stdlib Workload Wsq_class
