lib/workloads/msn_class.mli: Fscope_slang
