lib/workloads/wsq.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang List Printf Privwork Stdlib String Workload Wsq_class
