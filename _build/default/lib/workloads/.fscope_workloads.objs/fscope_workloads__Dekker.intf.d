lib/workloads/dekker.mli: Privwork Workload
