lib/workloads/harris.mli: Privwork Workload
