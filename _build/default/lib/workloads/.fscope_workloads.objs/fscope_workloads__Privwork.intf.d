lib/workloads/privwork.mli: Fscope_slang
