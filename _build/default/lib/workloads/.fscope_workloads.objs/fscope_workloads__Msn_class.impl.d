lib/workloads/msn_class.ml: Dsl Fscope_slang List
