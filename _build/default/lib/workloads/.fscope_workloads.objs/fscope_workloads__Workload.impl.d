lib/workloads/workload.ml: Fscope_isa Fscope_machine Printf
