lib/workloads/msn.mli: Privwork Workload
