lib/workloads/privwork.ml: Dsl Fscope_slang List Printf Stdlib
