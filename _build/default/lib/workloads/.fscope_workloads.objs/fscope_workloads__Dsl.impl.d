lib/workloads/dsl.ml: Array Fscope_slang
