lib/workloads/wsq_class.ml: Dsl Fscope_slang List
