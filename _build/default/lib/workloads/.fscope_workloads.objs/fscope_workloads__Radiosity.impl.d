lib/workloads/radiosity.ml: Array Dsl Fscope_isa Fscope_machine Fscope_slang Fscope_util List Printf Privwork Workload
