lib/workloads/pst.mli: Workload
