(** A Barnes-Hut-style force-computation kernel (Table IV "barnes",
    scope type "set").

    In the paper, barnes is SPLASH-2 code compiled for sequential
    consistency: a delay-set analysis inserts fences, and S-Fence with
    set scope flags only the conflict-shared accesses, so the many
    long-latency private accesses no longer hold fences up (§VI-B).

    This port keeps exactly those properties.  Per body, a thread
    reads the (read-only) positions of its interaction partners,
    walks a large private scratch array (cold misses), accumulates
    into a per-thread cell of a contended [com] line (false sharing,
    like the shared cell updates of the original), and writes the
    body's entry of [pos_out] — chained to the thread's previous body
    so flagged reads exist.  The SC-enforcing fences bracket the
    shared accesses and are [S-FENCE\[set, {pos_out, com}\]].

    Validation: [pos_out] and [com] are exactly reproducible on the
    host (per-thread chains over read-only inputs). *)

val make :
  ?threads:int ->
  ?bodies:int ->
  ?partners:int ->
  ?seed:int ->
  ?scratch:Privwork.level ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 192 bodies, 6 partners per body, seed 31,
    scratch level {arith=48; stores=2}. *)
