module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program
module Rng = Fscope_util.Rng

let shared_vars = [ "pos_out"; "com"; "cells" ]

let thread_body ~me ~threads ~bodies ~partners ~scratch =
  let per = bodies / threads in
  let first = me * per in
  let last = if me = threads - 1 then bodies else first + per in
  let open Dsl in
  Privwork.warmup ~thread:me ~level:scratch
  @ [
    let_ "b" (i first);
    while_
      (l "b" < i last)
      ([
         (* Read-only partner positions (not in the delay set). *)
         let_ "acc" (i 0);
         let_ "j" (i 0);
         while_
           (l "j" < i partners)
           [
             let_ "p" (elem "ilist" ((l "b" * i partners) + l "j"));
             set "acc" (l "acc" + elem "pos_in" (l "p"));
             set "j" (l "j" + i 1);
           ];
       ]
      (* Private scratch walk: the long-latency accesses the paper's
         set-scoped fences do not wait for. *)
      @ Privwork.block ~thread:me ~level:scratch ~unique:"sc" ()
      @ [
          fence_set shared_vars (* SC-enforcing fence before the shared section *);
          selem "pos_out" (l "b") ((l "acc" / i partners) + elem "pos_in" (l "b"));
          (* A scattered flagged store (the tree-cell update of the
             original): a fresh line almost every body, so the scoped
             fence still has real in-scope work to wait for. *)
          selem "cells" (elem "scatter" (l "b")) (l "acc");
          (* The contended centre-of-mass line: one cell per thread,
             all on one cache line. *)
          selem "com" tid (elem "com" tid + (l "acc" / i partners));
          fence_set shared_vars (* SC-enforcing fence after the shared section *);
          set "b" (l "b" + i 1);
        ]);
  ]

let make ?(threads = 8) ?(bodies = 192) ?(partners = 6) ?(seed = 31)
    ?(scratch = Privwork.cold ~arith:48 ~stores:2) () =
  if bodies mod threads <> 0 then invalid_arg "Barnes.make: bodies must divide evenly";
  let rng = Rng.create seed in
  let pos_in = Array.init bodies (fun _ -> Rng.int_in rng 1 1000) in
  let ilist = Array.init (bodies * partners) (fun _ -> Rng.int rng bodies) in
  (* A permutation spread over a large cell array: successive bodies
     land on distant lines. *)
  let cell_words = 8 * bodies in
  let scatter = Array.init bodies (fun b -> b * 8 mod cell_words) in
  let scatter_shuffled = Array.copy scatter in
  Rng.shuffle rng scatter_shuffled;
  let program_ast =
    {
      Ast.classes = [];
      instances = [];
      globals =
        [
          Ast.G_array ("pos_in", bodies, Some pos_in);
          Ast.G_array ("ilist", bodies * partners, Some ilist);
          Ast.G_array ("pos_out", bodies, None);
          Ast.G_array ("scatter", bodies, Some scatter_shuffled);
          Ast.G_array ("cells", cell_words, None);
          Ast.G_array ("com", threads, None) (* deliberately one line: false sharing *);
        ]
        @ Privwork.globals ~threads ();
      threads =
        List.init threads (fun t -> thread_body ~me:t ~threads ~bodies ~partners ~scratch);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  (* Host recomputation of the per-thread chains. *)
  let expected_pos_out = Array.make bodies 0 in
  let expected_cells = Array.make (8 * bodies) 0 in
  let expected_com = Array.make threads 0 in
  let per = bodies / threads in
  for t = 0 to threads - 1 do
    let first = t * per in
    let last = if t = threads - 1 then bodies else first + per in
    for b = first to last - 1 do
      let acc = ref 0 in
      for j = 0 to partners - 1 do
        acc := !acc + pos_in.(ilist.((b * partners) + j))
      done;
      expected_pos_out.(b) <- (!acc / partners) + pos_in.(b);
      expected_cells.(scatter_shuffled.(b)) <- !acc;
      expected_com.(t) <- expected_com.(t) + (!acc / partners)
    done
  done;
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let pos_out = Program.address_of program "pos_out"
    and com = Program.address_of program "com" in
    let problem = ref None in
    for b = 0 to bodies - 1 do
      if mem.(pos_out + b) <> expected_pos_out.(b) && !problem = None then
        problem :=
          Some
            (Printf.sprintf "pos_out[%d] = %d, expected %d" b mem.(pos_out + b)
               expected_pos_out.(b))
    done;
    for t = 0 to threads - 1 do
      if mem.(com + t) <> expected_com.(t) && !problem = None then
        problem :=
          Some (Printf.sprintf "com[%d] = %d, expected %d" t mem.(com + t) expected_com.(t))
    done;
    let cells = Program.address_of program "cells" in
    for c = 0 to (8 * bodies) - 1 do
      if mem.(cells + c) <> expected_cells.(c) && !problem = None then
        problem := Some (Printf.sprintf "cells[%d] = %d, expected %d" c mem.(cells + c) expected_cells.(c))
    done;
    match !problem with
    | Some msg -> Error msg
    | None -> Ok ()
  in
  {
    Workload.name = "barnes";
    description = "Barnes-Hut-style force kernel, SC enforced by set-scoped fences";
    program;
    validate;
  }
