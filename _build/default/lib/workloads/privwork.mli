(** The tunable private workload of the paper's harness (§VI-A).

    Between operations on the lock-free structure, each thread
    "performs arithmetic computations on private variables, whose
    accesses do not need to be ordered by fences".  We realise that as
    bursts of integer arithmetic punctuated by stores into a
    per-thread private array at a line-crossing stride.

    The knobs give the Fig. 12 x-axis its shape:
    - [arith]: multiply-accumulate iterations per store — scales the
      computation (and hence total time) of a workload block;
    - [stores]: private stores per block;
    - [span]/[warm]: the working set.  Low workload levels confine the
      walk to a small span that a prologue ([warmup]) pulls into the
      cache, so private stores are fast and a traditional fence loses
      little; higher levels walk cold memory, so every private store
      is a long-latency miss that only a scoped fence can ignore.

    Speedup therefore rises from ~1 (warm, tiny computation) to a peak
    (cold stores, computation still small) and falls again as
    computation dominates — the paper's Fig. 12 trend. *)

type level = {
  arith : int;  (** multiply-accumulate iterations per store *)
  stores : int;  (** private stores per block (>= 0) *)
  span : int;  (** words of private array the walk cycles through; 0 = whole array *)
  warm : bool;  (** emit a prologue that pulls the span into the cache *)
}

val cold : arith:int -> stores:int -> level
(** A cold level: whole-array walk, no warmup. *)

val fig12_levels : level array
(** The six workload settings used as Fig. 12's x-axis, low to high. *)

val words_default : int
(** Per-thread private array size (64 Ki words). *)

val globals : threads:int -> ?words:int -> unit -> Fscope_slang.Ast.global_decl list
(** The per-thread private arrays ["priv0"] ... ["priv<n-1>"]. *)

val warm_array : name:string -> words:int -> Fscope_slang.Ast.block
(** A load walk over a named global array (one load per line), used by
    harnesses to pre-warm small bookkeeping arrays so that only the
    workload level controls out-of-scope misses. *)

val warmup : thread:int -> level:level -> Fscope_slang.Ast.block
(** The per-thread prologue: declares the walk-cursor local
    ("pw_idx"), and for [warm] levels additionally pulls the span
    into the cache.  Every thread that uses [block] must emit this
    once at thread start. *)

val block :
  thread:int -> level:level -> ?words:int -> unique:string -> unit -> Fscope_slang.Ast.block
(** One workload block for [thread].  [unique] disambiguates local
    names when a thread uses several blocks. *)
