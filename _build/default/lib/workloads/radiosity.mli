(** A radiosity-style patch-interaction kernel (Table IV "radiosity",
    scope type "set").

    Like {!Barnes}, this stands in for the SPLASH-2 application run
    under compiler-enforced sequential consistency: threads pull
    interaction tasks off a shared CAS counter, compute a visibility
    term over private scratch (long-latency misses), and deposit an
    energy transfer into the destination patch — the shared accesses
    bracketed by SC-enforcing [S-FENCE\[set, {energy, next_task}\]]
    fences.  Compared to barnes it has less private work per fence
    and a hot shared counter, giving it a different stall profile
    (the paper reports 34.5% fence stalls vs barnes's 38.8%).

    Validation: each task writes a unique destination patch, so the
    final [energy] array is exactly reproducible on the host. *)

val make :
  ?threads:int ->
  ?patches:int ->
  ?seed:int ->
  ?scratch:Privwork.level ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 160 patches (= tasks), seed 41, scratch
    level {arith=128; stores=1}. *)
