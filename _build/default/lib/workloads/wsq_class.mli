(** The Chase-Lev work-stealing deque as a slang class — the paper's
    Fig. 2, over a fixed-capacity circular buffer.

    Task values must be positive; [take]/[steal] return 0 for
    EMPTY/ABORT.  Fence placement: the store-store fence in [put] and
    the store-load fence in [take] are the paper's (lines 4 and 10 of
    Fig. 2); [steal] additionally carries a load-load fence between
    reading the bounds and reading the buffer, which the RMO machine
    needs to exclude phantom reads (the paper evaluates under RMO
    where the same placement is inferred by the fence-synthesis work
    it cites). *)

val decl :
  ?flavored:bool -> fence:Fscope_slang.Ast.stmt -> cap:int -> unit ->
  Fscope_slang.Ast.class_decl
(** The class, named "Wsq", with the given fence statement substituted
    at each fence point (class-scoped for the S configurations,
    or a set fence over the queue fields for Fig. 14's set-scope
    variant — the baseline T reuses the same program with the S-Fence
    hardware disabled).  With [flavored] (default false), each fence
    additionally carries its precise direction — store-store in [put],
    store-load in [take], load-load in [steal] — the paper-§VII
    combination of scope with finer fences. *)

val set_fence_vars : instances:string list -> string list
(** The field symbols to list in an [S-FENCE\[set\]] covering the given
    instances: head, tail and buffer of each. *)
