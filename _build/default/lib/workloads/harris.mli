(** The Harris-set harness workload (Table IV "harris").

    Each thread owns a disjoint key range; it inserts all its keys,
    deletes every second one, then probes membership with [contains],
    running the tunable private workload between operations.  Threads
    contend on the shared list structure (adjacent keys interleave
    across threads) even though key ownership is disjoint — which
    keeps the expected final set exactly computable.

    Validation: the final list, walked from the head skipping marked
    nodes, must be strictly sorted and contain exactly the expected
    keys; per-thread insert/delete/contains success counters must
    match the deterministic expectation. *)

val make :
  ?threads:int ->
  ?keys_per_thread:int ->
  scope:[ `Class | `Set ] ->
  level:Privwork.level ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 2 keys each (the list stays short enough that searches do not fully absorb the private-store drain S-Fence saves). *)
