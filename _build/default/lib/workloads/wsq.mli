(** The work-stealing-queue harness workload (Table IV "wsq").

    One owner thread repeatedly puts and takes batches of uniquely
    numbered tasks on a Chase-Lev deque while the remaining threads
    steal from it; every thread runs the tunable private workload
    between operations (§VI-A).  Validation: each task is claimed by
    exactly one thread or remains in the final queue — a duplicated or
    lost task indicates a memory-ordering violation. *)

val make :
  ?threads:int ->
  ?rounds:int ->
  ?batch:int ->
  ?flavored:bool ->
  scope:[ `Class | `Set ] ->
  level:Privwork.level ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 12 rounds, 8 tasks per batch.  [flavored]
    gives each queue fence its precise direction (see
    {!Wsq_class.decl}).  [scope]
    selects between [S-FENCE\[class\]] and the Fig. 14 set-scope
    variant; the traditional-fence baseline runs the same program on
    a machine with the S-Fence hardware disabled. *)
