(** Parallel spanning tree (Table IV "pst") — the paper's motivating
    full application (Fig. 3, after Bader & Cong).

    Each thread owns a Chase-Lev deque of node tasks and steals from
    the others when its own runs dry.  Claiming a node is a CAS on
    [color]; the claimer then writes [parent] and publishes the node,
    with the paper's *full* fence between the parent store and the
    publish (Fig. 3's segment-2 fence, which S-Fence deliberately does
    not optimise, and which caps pst's speedup in Fig. 13).
    Termination: a CAS-maintained count of claimed nodes.

    Validation: [parent] must encode a spanning tree of the (connected)
    random input graph rooted at node 0, and every node must be
    claimed exactly once. *)

val make :
  ?threads:int ->
  ?nodes:int ->
  ?degree:int ->
  ?seed:int ->
  scope:[ `Class | `Set ] ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 768 nodes, average degree 4, seed 11. *)
