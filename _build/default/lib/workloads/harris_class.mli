(** Harris's lock-free sorted linked-list set (Table IV "harris") as a
    slang class.

    Nodes live in a preallocated pool: arrays [nkey] and [nnext],
    where a next field encodes [2*index + mark] (Harris's stolen mark
    bit).  Index 1 is the head sentinel (key 0, below every real key),
    index 2 the tail sentinel (key 1_000_000).  Real keys must lie
    strictly between.  Callers pass fresh node indices to [insert]
    (disjoint per-thread ranges in the harness, so no reuse and no
    ABA).

    Methods: [insert (k, node)], [delete k], [contains k], each
    returning 1 on success/presence.  The inner search loop is
    Harris's: it finds the adjacent (left, right) pair and unlinks
    marked chains with a CAS.  Fences (class-scoped): publishing a new
    node's fields before the link CAS, and ordering the mark CAS
    before the unlink CAS. *)

val head_index : int
val tail_index : int
val tail_key : int

val decl : fence:Fscope_slang.Ast.stmt -> pool:int -> Fscope_slang.Ast.class_decl
(** The class, named "Harris". *)

val set_fence_vars : instances:string list -> string list
