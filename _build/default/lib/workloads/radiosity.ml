module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program
module Rng = Fscope_util.Rng

let shared_vars = [ "energy"; "next_task" ]

let thread_body ~me ~patches ~scratch =
  let open Dsl in
  Privwork.warmup ~thread:me ~level:scratch
  @ [
    let_ "leave" (i 0);
    while_
      (not_ (l "leave"))
      [
        let_ "tk" (g "next_task");
        if_ (l "tk" >= i patches)
          [ set "leave" (i 1) ]
          [
            let_ "ok" (i 0);
            cas_g "ok" "next_task" (l "tk") (l "tk" + i 1);
            when_
              (l "ok")
              ([
                 let_ "src" (elem "task_src" (l "tk"));
                 let_ "e" (elem "energy0" (l "src"));
               ]
              (* Visibility computation over private scratch. *)
              @ Privwork.block ~thread:me ~level:scratch ~unique:"vis" ()
              @ [
                  fence_set shared_vars;
                  (* The destination patch is scattered, so the flagged
                     store is a fresh line: real in-scope latency. *)
                  selem "energy" (elem "task_dst" (l "tk")) ((l "e" / i 4) + i 1);
                  fence_set shared_vars;
                ]);
          ];
      ];
  ]

let make ?(threads = 8) ?(patches = 160) ?(seed = 41)
    ?(scratch = Privwork.cold ~arith:128 ~stores:1) () =
  let rng = Rng.create seed in
  let energy0 = Array.init patches (fun _ -> Rng.int_in rng 16 4096) in
  let task_src = Array.init patches (fun _ -> Rng.int rng patches) in
  (* Unique, scattered destinations over a padded energy array. *)
  let energy_words = 8 * patches in
  let task_dst = Array.init patches (fun tk -> tk * 8 mod energy_words) in
  Rng.shuffle rng task_dst;
  let program_ast =
    {
      Ast.classes = [];
      instances = [];
      globals =
        [
          Ast.G_array ("energy0", patches, Some energy0);
          Ast.G_array ("task_src", patches, Some task_src);
          Ast.G_array ("task_dst", patches, Some task_dst);
          Ast.G_array ("energy", energy_words, None);
          Ast.G_scalar ("next_task", 0);
        ]
        @ Privwork.globals ~threads ();
      threads = List.init threads (fun t -> thread_body ~me:t ~patches ~scratch);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let energy = Program.address_of program "energy" in
    let problem = ref None in
    for tk = 0 to patches - 1 do
      let expected = (energy0.(task_src.(tk)) / 4) + 1 in
      let dst = task_dst.(tk) in
      if mem.(energy + dst) <> expected && !problem = None then
        problem :=
          Some (Printf.sprintf "energy[%d] = %d, expected %d" dst mem.(energy + dst) expected)
    done;
    match !problem with
    | Some msg -> Error msg
    | None ->
      if mem.(Program.address_of program "next_task") < patches then
        Error "not all tasks were claimed"
      else Ok ()
  in
  {
    Workload.name = "radiosity";
    description = "radiosity-style patch interactions, SC enforced by set-scoped fences";
    program;
    validate;
  }
