module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let wsq_name t = Printf.sprintf "wsq%d" t

(* Node v is published as task v+1 (0 is the deque's EMPTY). *)
let thread_body ~me ~threads ~nodes =
  let open Dsl in
  let own = wsq_name me in
  let steal_round =
    (* Try every other thread's deque once, in a me-relative order. *)
    List.concat_map
      (fun k ->
        let victim = Stdlib.( mod ) (Stdlib.( + ) me k) threads in
        [ when_ (l "task" = i 0) [ callv "task" (wsq_name victim) "steal" [] ] ])
      (List.init (Stdlib.( - ) threads 1) (fun k -> Stdlib.( + ) k 1))
  in
  let seed_root = if Stdlib.( = ) me 0 then [ call own "put" [ i 1 ] ] else [] in
  seed_root
  @ [
      let_ "task" (i 0);
      while_
        (g "done_count" < i nodes)
        [
          callv "task" own "take" [];
          if_ (l "task" = i 0) steal_round [];
          when_
            (l "task" > i 0)
            [
              let_ "u" (l "task" - i 1);
              let_ "k" (elem "offsets" (l "u"));
              let_ "kend" (elem "offsets" (l "u" + i 1));
              while_
                (l "k" < l "kend")
                [
                  let_ "v" (elem "edges" (l "k"));
                  let_ "ok" (i 0);
                  cas_elem "ok" "color" (l "v") (i 0) (tid + i 1);
                  when_
                    (l "ok")
                    [
                      fence
                      (* Fig. 3 segment 2: the full fence between the
                         colour and parent stores.  S-Fence does not
                         optimise it, which is what caps pst's speedup
                         in Fig. 13. *);
                      selem "parent" (l "v") (l "u");
                      (* The parent store is still in flight here: the
                         deque's own fence inside put() waits for it
                         under traditional fencing but skips it under
                         class scope — Fig. 3's segments 2 vs 3. *)
                      call own "put" [ l "v" + i 1 ];
                      let_ "okc" (i 0);
                      while_
                        (not_ (l "okc"))
                        [
                          let_ "d" (g "done_count");
                          cas_g "okc" "done_count" (l "d") (l "d" + i 1);
                        ];
                    ];
                  set "k" (l "k" + i 1);
                ];
            ];
          set "task" (i 0);
        ];
    ]

let make ?(threads = 8) ?(nodes = 768) ?(degree = 4) ?(seed = 11) ~scope () =
  let graph = Graph.make ~nodes ~degree ~seed in
  let cap = 1 lsl (int_of_float (ceil (log (float_of_int nodes) /. log 2.)) + 1) in
  let instances = List.init threads wsq_name in
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Wsq_class.set_fence_vars ~instances)
  in
  let program_ast =
    {
      Ast.classes = [ Wsq_class.decl ~fence ~cap () ];
      instances = List.map (fun name -> { Ast.iname = name; cls = "Wsq" }) instances;
      globals =
        [
          Ast.G_array ("offsets", nodes + 1, Some graph.Graph.offsets);
          Ast.G_array ("edges", max 1 (Array.length graph.Graph.edges), Some graph.Graph.edges);
          Ast.G_array
            ( "color",
              nodes,
              Some (Array.init nodes (fun v -> if v = 0 then 1 else 0)) );
          Ast.G_array ("parent", nodes, None);
          Ast.G_scalar ("done_count", 1) (* the root is pre-claimed *);
        ];
      threads = List.init threads (fun t -> thread_body ~me:t ~threads ~nodes);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let color = Program.address_of program "color"
    and parent_base = Program.address_of program "parent" in
    let parent = Array.init nodes (fun v -> if v = 0 then 0 else mem.(parent_base + v)) in
    let unclaimed = ref 0 in
    for v = 0 to nodes - 1 do
      if mem.(color + v) = 0 then incr unclaimed
    done;
    if !unclaimed > 0 then Error (Printf.sprintf "%d nodes never claimed" !unclaimed)
    else if mem.(Program.address_of program "done_count") <> nodes then
      Error "done_count does not match the node count"
    else if not (Graph.is_spanning_tree graph ~parent ~root:0) then
      Error "parent array is not a spanning tree"
    else Ok ()
  in
  {
    Workload.name = "pst";
    description = "parallel spanning tree over work-stealing deques (Fig. 3)";
    program;
    validate;
  }
