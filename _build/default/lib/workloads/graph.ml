module Rng = Fscope_util.Rng

type t = {
  nodes : int;
  offsets : int array;
  edges : int array;
}

let make ~nodes ~degree ~seed =
  if nodes <= 1 then invalid_arg "Graph.make: need at least 2 nodes";
  if degree < 2 then invalid_arg "Graph.make: degree must be >= 2";
  let rng = Rng.create seed in
  (* Random labelling so that tree edges connect unrelated ids. *)
  let label = Array.init nodes Fun.id in
  Rng.shuffle rng label;
  let adj = Array.make nodes [] in
  let add_edge u v =
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  (* Spanning backbone: label.(k) attaches to a random earlier node. *)
  for k = 1 to nodes - 1 do
    let parent = label.(Rng.int rng k) in
    add_edge label.(k) parent
  done;
  (* Extra edges to reach the average degree. *)
  let extra = max 0 ((nodes * degree / 2) - (nodes - 1)) in
  for _ = 1 to extra do
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    if u <> v then add_edge u v
  done;
  let offsets = Array.make (nodes + 1) 0 in
  for v = 0 to nodes - 1 do
    offsets.(v + 1) <- offsets.(v) + List.length adj.(v)
  done;
  let edges = Array.make offsets.(nodes) 0 in
  let cursor = Array.copy offsets in
  for v = 0 to nodes - 1 do
    List.iter
      (fun u ->
        edges.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1)
      adj.(v)
  done;
  { nodes; offsets; edges }

let neighbours t v =
  let rec go k acc = if k < t.offsets.(v) then acc else go (k - 1) (t.edges.(k) :: acc) in
  go (t.offsets.(v + 1) - 1) []

let reachable_from t root =
  let seen = Array.make t.nodes false in
  let queue = Queue.create () in
  seen.(root) <- true;
  Queue.push root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
      let u = t.edges.(k) in
      if not seen.(u) then begin
        seen.(u) <- true;
        Queue.push u queue
      end
    done
  done;
  seen

let is_spanning_tree t ~parent ~root =
  let reachable = reachable_from t root in
  let ok = ref (parent.(root) = root) in
  (* Every reachable node must have a parent that is a neighbour, and
     following parents must terminate at the root (acyclicity). *)
  Array.iteri
    (fun v is_reachable ->
      if is_reachable && v <> root then begin
        let p = parent.(v) in
        if p < 0 || p >= t.nodes || not (List.mem p (neighbours t v)) then ok := false
      end)
    reachable;
  if !ok then begin
    (* Path-to-root check with a step bound. *)
    Array.iteri
      (fun v is_reachable ->
        if is_reachable then begin
          let rec walk v steps =
            if steps > t.nodes then false
            else if v = root then true
            else walk parent.(v) (steps + 1)
          in
          if not (walk v 0) then ok := false
        end)
      reachable
  end;
  !ok
