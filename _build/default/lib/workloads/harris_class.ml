open Dsl
module Ast = Fscope_slang.Ast

let head_index = 1
let tail_index = 2
let tail_key = 1_000_000

let set_fence_vars ~instances =
  List.concat_map (fun inst -> List.map (Ast.field_symbol inst) [ "nkey"; "nnext" ]) instances

(* Harris's search: find adjacent (left, right) with
   key[left] < k <= key[right], snipping marked chains.  Leaves locals
   "left" and "right" set; "settled" drives the retry loop. *)
let search_block k =
  [
    let_ "left" (i head_index);
    let_ "right" (i tail_index);
    let_ "left_next" (i 0);
    let_ "settled" (i 0);
    while_
      (not_ (l "settled"))
      [
        (* 1. scan for left and right *)
        let_ "t" (i head_index);
        let_ "tnext" (fldelem "self" "nnext" (i head_index));
        let_ "scan" (i 1);
        while_
          (l "scan")
          [
            when_
              (l "tnext" % i 2 = i 0)
              [ set "left" (l "t"); set "left_next" (l "tnext") ];
            set "t" (l "tnext" / i 2);
            if_ (l "t" = i tail_index)
              [ set "scan" (i 0) ]
              [
                set "tnext" (fldelem "self" "nnext" (l "t"));
                when_
                  (not_
                     ((l "tnext" % i 2 = i 1)
                     ||| (fldelem "self" "nkey" (l "t") < k)))
                  [ set "scan" (i 0) ];
              ];
          ];
        set "right" (l "t");
        (* 2. adjacent, or snip the marked chain *)
        if_ (l "left_next" = (l "right" * i 2))
          [
            when_
              ((l "right" = i tail_index)
              ||| (fldelem "self" "nnext" (l "right") % i 2 = i 0))
              [ set "settled" (i 1) ];
          ]
          [
            let_ "snip" (i 0);
            cas_fldelem "snip" "self" "nnext" (l "left") (l "left_next")
              (l "right" * i 2);
            when_ (l "snip")
              [
                when_
                  ((l "right" = i tail_index)
                  ||| (fldelem "self" "nnext" (l "right") % i 2 = i 0))
                  [ set "settled" (i 1) ];
              ];
          ];
      ];
  ]

let decl ~fence ~pool =
  let insert =
    meth "insert" [ "k"; "node" ] ~returns:true
      [
        let_ "res" (i 0);
        let_ "working" (i 1);
        while_
          (l "working")
          (search_block (l "k")
          @ [
              if_ (fldelem "self" "nkey" (l "right") = l "k")
                [ set "working" (i 0) (* already present *) ]
                [
                  sfldelem "self" "nkey" (l "node") (l "k");
                  sfldelem "self" "nnext" (l "node") (l "right" * i 2);
                  fence (* publish the node before linking it *);
                  let_ "ok" (i 0);
                  cas_fldelem "ok" "self" "nnext" (l "left") (l "right" * i 2)
                    (l "node" * i 2);
                  when_ (l "ok") [ set "working" (i 0); set "res" (i 1) ];
                ];
            ]);
        return_ (l "res");
      ]
  in
  let delete =
    meth "delete" [ "k" ] ~returns:true
      [
        let_ "res" (i 0);
        let_ "working" (i 1);
        while_
          (l "working")
          (search_block (l "k")
          @ [
              if_ (fldelem "self" "nkey" (l "right") <> l "k")
                [ set "working" (i 0) (* not present *) ]
                [
                  let_ "rnext" (fldelem "self" "nnext" (l "right"));
                  when_
                    (l "rnext" % i 2 = i 0)
                    [
                      let_ "ok" (i 0);
                      cas_fldelem "ok" "self" "nnext" (l "right") (l "rnext")
                        (l "rnext" + i 1) (* logical delete: mark *);
                      when_ (l "ok")
                        [
                          fence (* order the mark before the unlink *);
                          let_ "ok2" (i 0);
                          cas_fldelem "ok2" "self" "nnext" (l "left")
                            (l "right" * i 2)
                            (l "rnext")
                            (* physical unlink; a failure is cleaned up
                               by later searches *);
                          set "working" (i 0);
                          set "res" (i 1);
                        ];
                    ];
                  (* marked by someone else: retry the search *)
                ];
            ]);
        return_ (l "res");
      ]
  in
  let contains =
    meth "contains" [ "k" ] ~returns:true
      [
        let_ "t" (fldelem "self" "nnext" (i head_index) / i 2);
        while_
          (fldelem "self" "nkey" (l "t") < l "k")
          [ set "t" (fldelem "self" "nnext" (l "t") / i 2) ];
        return_
          ((fldelem "self" "nkey" (l "t") = l "k")
          &&& (fldelem "self" "nnext" (l "t") % i 2 = i 0));
      ]
  in
  let nkey_init = Array.make pool 0 in
  nkey_init.(tail_index) <- tail_key;
  let nnext_init = Array.make pool 0 in
  nnext_init.(head_index) <- Stdlib.( * ) tail_index 2;
  {
    Ast.cname = "Harris";
    scalars = [];
    arrays = [ array_init "nkey" nkey_init; array_init "nnext" nnext_init ];
    methods = [ insert; delete; contains ];
  }
