open Dsl
module Ast = Fscope_slang.Ast

let set_fence_vars ~instances =
  List.concat_map
    (fun inst -> List.map (Ast.field_symbol inst) [ "head"; "tail"; "buf" ])
    instances

let decl ?(flavored = false) ~fence ~cap () =
  let ss f = if flavored then Dsl.fence_ss f else f in
  let ll f = if flavored then Dsl.fence_ll f else f in
  let sl f = if flavored then Dsl.fence_sl f else f in
  let put =
    meth "put" [ "task" ]
      [
        let_ "t" (fld "self" "tail");
        sfldelem "self" "buf" (l "t" % i cap) (l "task");
        ss fence (* store-store: task visible before the tail bump *);
        sfld "self" "tail" (l "t" + i 1);
      ]
  in
  let take =
    meth "take" [] ~returns:true
      [
        let_ "t" (fld "self" "tail" - i 1);
        sfld "self" "tail" (l "t");
        sl fence (* store-load: the tail reservation before reading head *);
        let_ "h" (fld "self" "head");
        when_ (l "t" < l "h") [ sfld "self" "tail" (l "h"); return_ (i 0) ];
        let_ "task" (fldelem "self" "buf" (l "t" % i cap));
        when_ (l "t" > l "h") [ return_ (l "task") ];
        (* Last element: race the thieves for it. *)
        sfld "self" "tail" (l "h" + i 1);
        let_ "ok" (i 0);
        cas_fld "ok" "self" "head" (l "h") (l "h" + i 1);
        when_ (not_ (l "ok")) [ return_ (i 0) ];
        return_ (l "task");
      ]
  in
  let steal =
    meth "steal" [] ~returns:true
      [
        let_ "h" (fld "self" "head");
        ll fence (* load-load: head strictly before tail, or a stale
                    tail paired with a fresh head double-claims the
                    last in-range index (the RMO race of Fig. 2's
                    steal) *);
        let_ "t" (fld "self" "tail");
        when_ (l "h" >= l "t") [ return_ (i 0) ];
        ll fence (* load-load: bounds before buffer contents *);
        let_ "task" (fldelem "self" "buf" (l "h" % i cap));
        let_ "ok" (i 0);
        cas_fld "ok" "self" "head" (l "h") (l "h" + i 1);
        when_ (not_ (l "ok")) [ return_ (i 0) ];
        return_ (l "task");
      ]
  in
  {
    Ast.cname = "Wsq";
    scalars = [ scalar "head" 0; scalar "tail" 0 ];
    arrays = [ array "buf" cap ];
    methods = [ put; take; steal ];
  }
