module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

(* Why the counter is part of the fence set: the release fence before
   "my flag := 0" must order the counter store, or the next entrant
   could see the flag drop before the increment lands (a lost update
   even with exclusion intact).  Symmetrically the acquire fence
   orders the counter read after the flag test.  With the S-Fence
   hardware disabled these become the full fences of a textbook RMO
   Dekker. *)
let fence_vars = [ "flag0"; "flag1"; "counter" ]

let thread ~me ~level ~attempts =
  let open Dsl in
  let mine = Printf.sprintf "flag%d" me
  and theirs = Printf.sprintf "flag%d" (Stdlib.( - ) 1 me)
  and succ_slot = Printf.sprintf "succ%d" me in
  Privwork.warmup ~thread:me ~level
  @ [
    (* Stagger the two threads: identical deterministic threads would
       collide on every attempt and never enter the section. *)
    let_ "stagger" (i (Stdlib.( * ) me 150));
    while_ (l "stagger" > i 0) [ set "stagger" (l "stagger" - i 1) ];
    let_ "succ" (i 0);
    let_ "attempt" (i attempts);
    while_
      (l "attempt" > i 0)
      ([
         sg mine (i 1);
         fence_set fence_vars (* the paper's Fig. 11 fence *);
         when_
           (g theirs = i 0)
           [
             fence_set fence_vars (* acquire *);
             let_ "c" (g "counter");
             sg "counter" (l "c" + i 1);
             fence_set fence_vars (* release *);
             set "succ" (l "succ" + i 1);
           ];
         sg mine (i 0);
       ]
      @ Privwork.block ~thread:me ~level ~unique:"w" ()
      @ [ set "attempt" (l "attempt" - i 1) ]);
    sg succ_slot (l "succ");
  ]

let make ~level ~attempts =
  let program_ast =
    {
      Ast.classes = [];
      instances = [];
      globals =
        [
          Ast.G_scalar ("flag0", 0);
          Ast.G_scalar ("flag1", 0);
          Ast.G_scalar ("counter", 0);
          Ast.G_scalar ("succ0", 0);
          Ast.G_scalar ("succ1", 0);
        ]
        @ Privwork.globals ~threads:2 ();
      threads =
        [
          thread ~me:0 ~level ~attempts;
          thread ~me:1 ~level ~attempts;
        ];
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let v name = result.Machine.mem.(Program.address_of program name) in
    let counter = v "counter" and succ = v "succ0" + v "succ1" in
    if counter <> succ then
      Error (Printf.sprintf "counter %d <> successful entries %d" counter succ)
    else if succ = 0 then Error "no thread ever entered the critical section"
    else Ok ()
  in
  {
    Workload.name = "dekker";
    description = "Dekker try-lock, set-scoped fences over {flag0,flag1,counter}";
    program;
    validate;
  }
