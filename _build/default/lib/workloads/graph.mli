(** Synthetic random graphs in CSR form for the graph workloads
    (pst, ptc).

    The generator produces a connected undirected graph: a random
    spanning-tree backbone (guaranteeing connectivity from node 0)
    plus extra random edges up to the requested average degree.  Node
    ids are shuffled so neighbour accesses have no locality — the
    irregular-access property the paper's motivation leans on. *)

type t = {
  nodes : int;
  offsets : int array;  (** length [nodes + 1] *)
  edges : int array;  (** adjacency, indexed by [offsets] *)
}

val make : nodes:int -> degree:int -> seed:int -> t
(** [degree] is the average total degree (>= 2). *)

val neighbours : t -> int -> int list

val reachable_from : t -> int -> bool array
(** BFS reachability (for validating the simulated algorithms). *)

val is_spanning_tree : t -> parent:int array -> root:int -> bool
(** Does [parent] (with [parent.(root) = root], and [parent.(v)] a
    graph neighbour of [v]) encode a tree covering every node
    reachable from [root]? *)
