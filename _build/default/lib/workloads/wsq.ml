module Ast = Fscope_slang.Ast
module Machine = Fscope_machine.Machine
module Program = Fscope_isa.Program

let cap = 256

let claims_name t = Printf.sprintf "claims%d" t

let owner_thread ~rounds ~batch ~level ~n_tasks =
  let open Dsl in
  Privwork.warmup ~thread:0 ~level
  @ Privwork.warm_array ~name:(claims_name 0) ~words:(Stdlib.( + ) n_tasks 1)
  @ [
    let_ "r" (i 0);
    while_
      (l "r" < i rounds)
      ([
         let_ "b" (i 0);
         while_
           (l "b" < i batch)
           [
             call "q" "put" [ (l "r" * i batch) + l "b" + i 1 ];
             set "b" (l "b" + i 1);
           ];
       ]
      @ Privwork.block ~thread:0 ~level ~unique:"w1" ()
      @ [
          let_ "b2" (i 0);
          let_ "task" (i 0);
          while_
            (l "b2" < i batch)
            [
              callv "task" "q" "take" [];
              when_
                (l "task" > i 0)
                [ selem (claims_name 0) (l "task") (elem (claims_name 0) (l "task") + i 1) ];
              set "b2" (l "b2" + i 1);
            ];
        ]
      @ Privwork.block ~thread:0 ~level ~unique:"w2" ()
      @ [ set "r" (l "r" + i 1) ]);
    fence (* publish all queue effects before announcing termination *);
    sg "stop" (i 1);
  ]

let thief_thread ~me ~level ~n_tasks =
  let open Dsl in
  Privwork.warmup ~thread:me ~level
  @ Privwork.warm_array ~name:(claims_name me) ~words:(Stdlib.( + ) n_tasks 1)
  @ [
    let_ "task" (i 0);
    while_
      (g "stop" = i 0)
      ([
         callv "task" "q" "steal" [];
         when_
           (l "task" > i 0)
           [ selem (claims_name me) (l "task") (elem (claims_name me) (l "task") + i 1) ];
       ]
      @ Privwork.block ~thread:me ~level ~unique:"w" ());
  ]

let make ?(threads = 8) ?(rounds = 12) ?(batch = 8) ?(flavored = false) ~scope ~level () =
  if threads < 2 then invalid_arg "Wsq.make: need at least an owner and one thief";
  let n_tasks = rounds * batch in
  if batch >= cap then invalid_arg "Wsq.make: batch must fit in the deque";
  let fence =
    match scope with
    | `Class -> Dsl.fence_class
    | `Set -> Dsl.fence_set (Wsq_class.set_fence_vars ~instances:[ "q" ])
  in
  let program_ast =
    {
      Ast.classes = [ Wsq_class.decl ~flavored ~fence ~cap () ];
      instances = [ { Ast.iname = "q"; cls = "Wsq" } ];
      globals =
        (Ast.G_scalar ("stop", 0)
        :: List.init threads (fun t -> Ast.G_array (claims_name t, n_tasks + 1, None)))
        @ Privwork.globals ~threads ();
      threads =
        owner_thread ~rounds ~batch ~level ~n_tasks
        :: List.init (threads - 1) (fun t ->
               thief_thread ~me:(t + 1) ~level ~n_tasks);
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Machine.result) =
    let mem = result.Machine.mem in
    let head = mem.(Program.address_of program "q.head")
    and tail = mem.(Program.address_of program "q.tail")
    and buf = Program.address_of program "q.buf" in
    if head > tail then Error (Printf.sprintf "head %d > tail %d" head tail)
    else begin
      let remaining = Array.make (n_tasks + 1) 0 in
      for j = head to tail - 1 do
        let task = mem.(buf + (j mod cap)) in
        if task >= 1 && task <= n_tasks then remaining.(task) <- remaining.(task) + 1
      done;
      let problem = ref None in
      for task = 1 to n_tasks do
        let claims =
          List.init threads (fun t ->
              mem.(Program.address_of program (claims_name t) + task))
        in
        let total = List.fold_left ( + ) 0 claims + remaining.(task) in
        if total <> 1 && !problem = None then
          problem :=
            Some
              (Printf.sprintf "task %d accounted %d times (claims %s, remaining %d)" task
                 total
                 (String.concat "," (List.map string_of_int claims))
                 remaining.(task))
      done;
      match !problem with
      | Some msg -> Error msg
      | None -> Ok ()
    end
  in
  {
    Workload.name = "wsq";
    description = "Chase-Lev work-stealing deque under the Fig. 12 harness";
    program;
    validate;
  }
