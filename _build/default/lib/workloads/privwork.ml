open Dsl

type level = {
  arith : int;
  stores : int;
  span : int;
  warm : bool;
}

let cold ~arith ~stores = { arith; stores; span = 0; warm = false }

let fig12_levels =
  [|
    { arith = 16; stores = 1; span = 1024; warm = true };
    { arith = 32; stores = 2; span = 2048; warm = true };
    { arith = 96; stores = 1; span = 0; warm = false };
    { arith = 96; stores = 2; span = 0; warm = false };
    { arith = 192; stores = 3; span = 0; warm = false };
    { arith = 384; stores = 4; span = 0; warm = false };
  |]

let words_default = 65_536

let priv_name thread = Printf.sprintf "priv%d" thread

let globals ~threads ?(words = words_default) () =
  List.init threads (fun t -> Fscope_slang.Ast.G_array (priv_name t, words, None))

(* The walk lives in [8, 8+modulus); word 0 holds the persistent
   cursor so successive blocks continue where the last one stopped. *)
let modulus level ~words =
  if Stdlib.( > ) level.span 0 then level.span else Stdlib.( - ) words 16

(* The walk cursor lives in a register declared once per thread, not
   in memory: a memory cursor would be per-block out-of-scope traffic
   that distorts the workload knob (wrong-path loads from other cores
   can even downgrade its line, making the store an upgrade miss). *)
let warmup ~thread ~level =
  let cursor_init = [ let_ "pw_idx" (i 0) ] in
  if not level.warm then cursor_init
  else begin
    let arr = priv_name thread in
    cursor_init
    @ [
        let_ "warm_i" (i 0);
        while_
          (l "warm_i" < i (Stdlib.( + ) level.span 8))
          [
            selem arr (l "warm_i") (i 0);
            set "warm_i" (l "warm_i" + i 8);
          ];
      ]
  end

(* Load-walk an arbitrary global array to pull it into the cache:
   harnesses use it to warm their small bookkeeping arrays so the
   workload [level] alone controls the out-of-scope traffic. *)
let warm_array ~name ~words =
  [
    let_ ("wa_" ^ name) (i 0);
    while_
      (l ("wa_" ^ name) < i words)
      [
        (* A store leaves the line Modified, so later stores are
           plain L1 hits (arrays warmed this way start zeroed). *)
        selem name (l ("wa_" ^ name)) (i 0);
        set ("wa_" ^ name) (l ("wa_" ^ name) + i 8);
      ];
  ]

let block ~thread ~level ?(words = words_default) ~unique () =
  let arr = priv_name thread in
  let m = modulus level ~words in
  let acc = unique ^ "_acc"
  and k = unique ^ "_k"
  and s = unique ^ "_s" in
  [
    let_ acc (tid + i 1);
    let_ s (i level.stores);
    while_
      (l s > i 0)
      [
        let_ k (i level.arith);
        while_
          (l k > i 0)
          [
            set acc ((l acc * i 1103515245) + i 12345);
            set acc ((l acc * i 32717) + l k);
            set k (l k - i 1);
          ];
        (* One private store at a line-crossing stride; the cursor
           "pw_idx" is the register declared by [warmup]. *)
        set "pw_idx" ((l "pw_idx" + i 9) % i m);
        selem arr (l "pw_idx" + i 8) (l acc);
        set s (l s - i 1);
      ];
  ]
