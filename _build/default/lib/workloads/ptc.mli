(** Parallel transitive closure (Table IV "ptc", after Foster).

    Computes reachability from a set of source vertices over the same
    work-stealing substrate as {!Pst}: a task is a (source, node) pair
    encoded as [source*nodes + node + 1]; claiming marks the pair in
    the [reach] matrix with a CAS and publishes the node's neighbours.
    The workload between fences is larger than pst's (a whole
    neighbour scan per task, over a reachability row with no
    locality), which is why the paper sees ptc's fence-stall share —
    and hence its S-Fence gain — as the smallest of the four full
    applications.

    Validation: the final [reach] matrix equals a BFS closure computed
    on the host, and the claim counter matches the number of reachable
    pairs. *)

val make :
  ?threads:int ->
  ?nodes:int ->
  ?degree:int ->
  ?sources:int ->
  ?seed:int ->
  scope:[ `Class | `Set ] ->
  unit ->
  Workload.t
(** Defaults: 8 threads, 256 nodes, degree 4, 3 sources, seed 23. *)
