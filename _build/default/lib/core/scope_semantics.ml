module Instr = Fscope_isa.Instr
module Fence_kind = Fscope_isa.Fence_kind

module Int_set = Set.Make (Int)

let fence_wait_sets stream =
  let fseq = ref [] in (* innermost first *)
  let scope : (int, Int_set.t) Hashtbl.t = Hashtbl.create 8 in
  let all_mem = ref Int_set.empty in
  let flagged_mem = ref Int_set.empty in
  let loads = ref Int_set.empty in
  let stores = ref Int_set.empty in
  let results = ref [] in
  let add_to_scope cid idx =
    let cur = Option.value ~default:Int_set.empty (Hashtbl.find_opt scope cid) in
    Hashtbl.replace scope cid (Int_set.add idx cur)
  in
  List.iteri
    (fun idx instr ->
      match instr with
      | Instr.Fs_start cid -> fseq := cid :: !fseq
      | Instr.Fs_end cid ->
        (match !fseq with
        | top :: rest when top = cid -> fseq := rest
        | _ -> invalid_arg "Scope_semantics: unbalanced fs_end")
      | Instr.Load { flagged; _ } | Instr.Store { flagged; _ } | Instr.Cas { flagged; _ }
        ->
        all_mem := Int_set.add idx !all_mem;
        if flagged then flagged_mem := Int_set.add idx !flagged_mem;
        (match instr with
        | Instr.Load _ -> loads := Int_set.add idx !loads
        | Instr.Store _ -> stores := Int_set.add idx !stores
        | _ ->
          loads := Int_set.add idx !loads;
          stores := Int_set.add idx !stores (* CAS is both *));
        (* MEMOP: the op joins the scope of every class on FSeq. *)
        List.iter (fun cid -> add_to_scope cid idx) (List.sort_uniq Int.compare !fseq)
      | Instr.Fence kind ->
        let in_scope =
          match Fence_kind.scope_of kind with
          | Fence_kind.Global -> !all_mem
          | Fence_kind.Set_scope -> !flagged_mem
          | Fence_kind.Class_scope -> (
            match !fseq with
            | [] -> !all_mem
            | cid :: _ ->
              Option.value ~default:Int_set.empty (Hashtbl.find_opt scope cid))
        in
        (* The flavour restricts which access classes the fence waits
           for (a CAS is in both sets). *)
        let flavour_set =
          Int_set.union
            (if kind.Fence_kind.wait_loads then !loads else Int_set.empty)
            (if kind.Fence_kind.wait_stores then !stores else Int_set.empty)
        in
        let waits = Int_set.inter in_scope flavour_set in
        results := (idx, Int_set.elements waits) :: !results
      | Instr.Nop | Instr.Li _ | Instr.Alu _ | Instr.Tid _ | Instr.Branch _
      | Instr.Jump _ | Instr.Halt ->
        ())
    stream;
  List.rev !results
