(** Fence scope bits (FSB).

    Each ROB and store-buffer entry carries a small bit vector with one
    bit per FSB column; a set bit means "this memory access belongs to
    the scope tracked by that column".  Masks are plain ints (the paper
    uses 4 columns; we allow up to 62). *)

type mask = int

val empty : mask
val column : int -> mask
(** The mask with only column [i] set.  [i] must be in [\[0, 61\]]. *)

val union : mask -> mask -> mask
val inter : mask -> mask -> mask
val mem : int -> mask -> bool
(** [mem i m] is true if column [i] is set in [m]. *)

val is_empty : mask -> bool
val columns : mask -> int list
(** Set columns, ascending. *)

val pp : Format.formatter -> mask -> unit
