(** Executable reference model of the class-scope semantics (Fig. 5).

    Runs the paper's inference rules — SCOPEENT, SCOPEEX, MEMOP,
    FENCE — over a single thread's dynamic instruction stream and
    reports, for every fence, the set of earlier memory operations
    that are *in the fence's scope*: the operations rule FENCE forces
    the fence to wait for (modulo completion, which is the memory
    subsystem's concern and deliberately outside Fig. 5).

    Property tests drive the same stream through {!Scope_unit} and
    check that the hardware's wait set is a superset of this
    reference's wait set for every fence: the hardware may be
    stricter (column sharing, overflow fallback) but never weaker. *)

val fence_wait_sets : Fscope_isa.Instr.t list -> (int * int list) list
(** [fence_wait_sets stream] maps each fence's position in [stream] to
    the (sorted) positions of the earlier memory operations in its
    scope:

    - a [Full] fence: every earlier memory operation;
    - a [Class_scoped] fence: every earlier memory operation executed
      while some activation of the fence's class was on FSeq, where
      the fence's class is the top of FSeq at the fence (an unscoped
      class fence — empty FSeq — degrades to a full fence);
    - a [Set_scoped] fence: every earlier flagged memory operation.

    Raises [Invalid_argument] on unbalanced [fs_end] (an [fs_end]
    whose cid does not match the innermost open scope). *)
