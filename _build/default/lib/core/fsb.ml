type mask = int

let empty = 0

let column i =
  if i < 0 || i > 61 then invalid_arg "Fsb.column: out of range";
  1 lsl i

let union = ( lor )
let inter = ( land )
let mem i m = m land (1 lsl i) <> 0
let is_empty m = m = 0

let columns m =
  let rec go i acc = if 1 lsl i > m then List.rev acc
    else go (i + 1) (if mem i m then i :: acc else acc)
  in
  if m = 0 then [] else go 0 []

let pp fmt m =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (columns m)))
