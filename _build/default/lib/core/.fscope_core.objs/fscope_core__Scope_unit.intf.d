lib/core/scope_unit.mli: Fsb Fscope_isa
