lib/core/scope_semantics.ml: Fscope_isa Hashtbl Int List Option Set
