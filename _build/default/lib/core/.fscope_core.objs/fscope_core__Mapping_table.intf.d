lib/core/mapping_table.mli:
