lib/core/mapping_table.ml: List
