lib/core/scope_semantics.mli: Fscope_isa
