lib/core/scope_unit.ml: Array Fsb Fscope_isa Fss List Mapping_table
