lib/core/fsb.mli: Format
