lib/core/fsb.ml: Format List String
