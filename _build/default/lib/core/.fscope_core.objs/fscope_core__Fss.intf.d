lib/core/fss.mli: Fsb
