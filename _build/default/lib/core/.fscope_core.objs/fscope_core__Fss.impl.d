lib/core/fss.ml: Array Fsb
