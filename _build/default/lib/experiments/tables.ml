module Config = Fscope_machine.Config
module Table = Fscope_util.Table

let table3 (c : Config.t) =
  let t = Table.create ~title:"Table III — architectural parameters" ~header:[ "parameter"; "value" ] in
  let mem = c.Config.mem and exec = c.Config.exec and scope = c.Config.scope in
  let line_bytes = mem.Fscope_mem.Hierarchy.line_words * 4 in
  List.iter (Table.add_row t)
    [
      [ "processor"; "8 core CMP, out-of-order (one core per program thread)" ];
      [ "ROB size"; string_of_int exec.Fscope_cpu.Exec_config.rob_size ];
      [ "store buffer"; string_of_int exec.Fscope_cpu.Exec_config.sb_size ^ " entries" ];
      [
        "L1 cache";
        Printf.sprintf "private %d KB, %d way, %d-cycle latency"
          (mem.Fscope_mem.Hierarchy.l1_sets * mem.Fscope_mem.Hierarchy.l1_ways * line_bytes
          / 1024)
          mem.Fscope_mem.Hierarchy.l1_ways mem.Fscope_mem.Hierarchy.l1_latency;
      ];
      [
        "L2 cache";
        Printf.sprintf "shared %d MB, %d way, %d-cycle latency"
          (mem.Fscope_mem.Hierarchy.l2_sets * mem.Fscope_mem.Hierarchy.l2_ways * line_bytes
          / 1024 / 1024)
          mem.Fscope_mem.Hierarchy.l2_ways mem.Fscope_mem.Hierarchy.l2_latency;
      ];
      [ "memory"; Printf.sprintf "%d-cycle latency" mem.Fscope_mem.Hierarchy.mem_latency ];
      [ "# of FSB entries"; string_of_int scope.Fscope_core.Scope_unit.fsb_entries ];
      [ "# of FSS entries"; string_of_int scope.Fscope_core.Scope_unit.fss_entries ];
      [ "# of MT entries"; string_of_int scope.Fscope_core.Scope_unit.mt_entries ];
    ];
  t

let table4 () =
  let t =
    Table.create ~title:"Table IV — benchmark description"
      ~header:[ "benchmark"; "type"; "description" ]
  in
  List.iter (Table.add_row t)
    [
      [ "dekker"; "set"; "Dekker algorithm (Fig. 11 try-lock)" ];
      [ "wsq"; "class"; "Chase-Lev work-stealing queue (Fig. 2)" ];
      [ "msn"; "class"; "Michael-Scott non-blocking queue" ];
      [ "harris"; "class"; "Harris's lock-free sorted-list set" ];
      [ "barnes"; "set"; "Barnes-Hut-style n-body force kernel, SC-fenced" ];
      [ "radiosity"; "set"; "radiosity-style patch interactions, SC-fenced" ];
      [ "pst"; "class"; "parallel spanning tree over work-stealing queues" ];
      [ "ptc"; "class"; "parallel transitive closure over work-stealing queues" ];
    ];
  t

let hardware_cost_bits (c : Config.t) =
  let scope = c.Config.scope and exec = c.Config.exec in
  let fsb = scope.Fscope_core.Scope_unit.fsb_entries in
  let column_bits =
    (* index width for one FSB column *)
    let rec bits v acc = if v <= 1 then max acc 1 else bits (v / 2) (acc + 1) in
    bits (fsb - 1) 1
  in
  let rob_bits = exec.Fscope_cpu.Exec_config.rob_size * fsb in
  let sb_bits = exec.Fscope_cpu.Exec_config.sb_size * fsb in
  let mt_bits = scope.Fscope_core.Scope_unit.mt_entries * (8 + column_bits) in
  let fss_bits = 2 * scope.Fscope_core.Scope_unit.fss_entries * column_bits in
  let counter_bits = 8 in
  rob_bits + sb_bits + mt_bits + fss_bits + counter_bits

let hardware_cost (c : Config.t) =
  let bits = hardware_cost_bits c in
  let t =
    Table.create ~title:"Hardware cost per core (paper: < 80 bytes)"
      ~header:[ "structure"; "bits" ]
  in
  let scope = c.Config.scope and exec = c.Config.exec in
  let fsb = scope.Fscope_core.Scope_unit.fsb_entries in
  Table.add_row t
    [ Printf.sprintf "ROB FSBs (%d x %d)" exec.Fscope_cpu.Exec_config.rob_size fsb;
      string_of_int (exec.Fscope_cpu.Exec_config.rob_size * fsb) ];
  Table.add_row t
    [ Printf.sprintf "SB FSBs (%d x %d)" exec.Fscope_cpu.Exec_config.sb_size fsb;
      string_of_int (exec.Fscope_cpu.Exec_config.sb_size * fsb) ];
  Table.add_row t [ "mapping table + FSS + FSS' + counter";
                    string_of_int (bits - (exec.Fscope_cpu.Exec_config.rob_size * fsb)
                                   - (exec.Fscope_cpu.Exec_config.sb_size * fsb)) ];
  Table.add_row t [ "total"; Printf.sprintf "%d bits = %d bytes" bits ((bits + 7) / 8) ];
  t
