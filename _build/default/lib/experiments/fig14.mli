(** Fig. 14 — class scope vs set scope on msn, harris, pst and ptc.

    Paper result: set scope is slightly better everywhere (it orders
    fewer accesses) but the difference is small, so class scope's
    convenience costs little. *)

type row = {
  bench : string;
  class_cycles : int;
  set_cycles : int;
  class_fence_share : float;
  set_fence_share : float;
}

val run : ?quick:bool -> unit -> row list
val table : row list -> Fscope_util.Table.t
