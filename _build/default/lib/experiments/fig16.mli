(** Fig. 16 — sensitivity to reorder-buffer size (64/128/256) for the
    four full applications.

    Paper result: barnes improves with a larger ROB (a non-stalling
    S-Fence lets more instructions into the window); radiosity, pst
    and ptc are flat because a smaller ROB already exposes their
    critical path — their average ROB occupancy stays under 80 even
    with 256 entries. *)

type cell = {
  app : string;
  rob : int;
  t_cycles : int;
  s_cycles : int;
  speedup : float;
  s_avg_occupancy : float;
}

val run : ?quick:bool -> ?sizes:int list -> unit -> cell list
val table : cell list -> Fscope_util.Table.t
