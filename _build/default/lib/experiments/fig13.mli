(** Fig. 13 — normalized execution time of the four full applications
    under T (traditional), S (S-Fence), T+ and S+ (with in-window
    speculation), split into fence-stall time and everything else.

    Paper result: pst spends >50% of T time in fence stalls but
    S-Fence recovers only ~11% (a full fence outside the deque caps
    it); ptc gains ~4%; barnes and radiosity lose 38.8% / 34.5% of T
    time to fence stalls and S-Fence removes 40-50% of those stalls,
    for 19.5% / 15.8% total-time reductions. *)

type bar = {
  app : string;
  variant : string;  (** "T", "S", "T+", "S+" *)
  normalized : float;  (** total time / T's total time *)
  fence_share : float;  (** fence-stall fraction of this bar's own time *)
}

val run : ?quick:bool -> unit -> bar list
val table : bar list -> Fscope_util.Table.t

val apps : ?quick:bool -> unit -> (string * Fscope_workloads.Workload.t) list
(** The four applications at evaluation size (shared with Figs. 14-16). *)
