(** The paper's tables: architectural parameters (Table III), the
    benchmark roster (Table IV), and the hardware-cost estimate of
    §VI-E. *)

val table3 : Fscope_machine.Config.t -> Fscope_util.Table.t
(** The active architectural parameters, in Table III's layout. *)

val table4 : unit -> Fscope_util.Table.t
(** The eight benchmarks with their scope types and descriptions. *)

val hardware_cost_bits : Fscope_machine.Config.t -> int
(** Total extra state per core: FSB bits on every ROB and store-buffer
    entry, the mapping table (8-bit cid tag + column index per entry),
    FSS and its shadow (one column index per slot), and the overflow
    counter. *)

val hardware_cost : Fscope_machine.Config.t -> Fscope_util.Table.t
(** The §VI-E claim: under the default configuration the overhead is
    less than 80 bytes per core. *)
