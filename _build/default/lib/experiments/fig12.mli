(** Fig. 12 — impact of workload: speedup of S-Fence over traditional
    fences for the four lock-free algorithms as the harness's private
    workload grows through six levels.

    Paper result: every curve rises to a peak and falls off; peaks
    range from 1.13x to 1.34x across the benchmarks. *)

type point = {
  level : int;  (** 1-based workload level *)
  t_cycles : int;
  s_cycles : int;
  speedup : float;
}

type series = {
  bench : string;
  points : point list;
}

val run : ?quick:bool -> unit -> series list
(** [quick] (default false) trims to 3 levels and smaller harnesses —
    used by tests and the Bechamel wrapper. *)

val peak : series -> float

val table : series list -> Fscope_util.Table.t
