lib/experiments/fig12.mli: Fscope_util
