lib/experiments/exp_run.mli: Fscope_machine Fscope_workloads
