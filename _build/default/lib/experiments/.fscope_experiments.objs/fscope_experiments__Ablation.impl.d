lib/experiments/ablation.ml: Array Char Exp_run Fscope_core Fscope_isa Fscope_machine Fscope_slang Fscope_util Fscope_workloads List Printf Stdlib
