lib/experiments/fig13.mli: Fscope_util Fscope_workloads
