lib/experiments/ablation.mli: Fscope_util Fscope_workloads
