lib/experiments/exp_run.ml: Fscope_cpu Fscope_machine Fscope_workloads
