lib/experiments/fig14.mli: Fscope_util
