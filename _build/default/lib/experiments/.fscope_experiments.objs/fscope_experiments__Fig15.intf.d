lib/experiments/fig15.mli: Fscope_util
