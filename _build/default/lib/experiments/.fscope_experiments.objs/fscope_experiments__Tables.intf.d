lib/experiments/tables.mli: Fscope_machine Fscope_util
