lib/experiments/fig12.ml: Array Exp_run Float Fscope_machine Fscope_util Fscope_workloads List Printf
