lib/experiments/fig13.ml: Exp_run Fscope_machine Fscope_util Fscope_workloads List
