lib/experiments/fig16.mli: Fscope_util
