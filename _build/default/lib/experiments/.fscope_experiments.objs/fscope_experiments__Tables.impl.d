lib/experiments/tables.ml: Fscope_core Fscope_cpu Fscope_machine Fscope_mem Fscope_util List Printf
