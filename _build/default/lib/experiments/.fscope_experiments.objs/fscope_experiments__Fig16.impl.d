lib/experiments/fig16.ml: Exp_run Fig13 Fscope_machine Fscope_util List
