lib/experiments/fig15.ml: Exp_run Fig13 Fscope_machine Fscope_util List
