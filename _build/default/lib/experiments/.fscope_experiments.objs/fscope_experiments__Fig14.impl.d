lib/experiments/fig14.ml: Array Exp_run Fscope_machine Fscope_util Fscope_workloads List
