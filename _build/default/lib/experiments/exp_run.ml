module Config = Fscope_machine.Config
module Machine = Fscope_machine.Machine
module Workload = Fscope_workloads.Workload

type measurement = {
  cycles : int;
  fence_stall_fraction : float;
  fence_stalls : int;
  active_cycles : int;
  avg_rob_occupancy : float;
}

let t_config c = Config.traditional c
let s_config c = Config.scoped c
let t_plus c = Config.with_speculation true (Config.traditional c)
let s_plus c = Config.with_speculation true (Config.scoped c)

let measure (config : Config.t) workload =
  let result =
    if config.Config.exec.Fscope_cpu.Exec_config.in_window_speculation then
      Workload.run config workload
    else Workload.run_validated config workload
  in
  {
    cycles = result.Machine.cycles;
    fence_stall_fraction = Machine.fence_stall_fraction result;
    fence_stalls = Machine.fence_stall_cycles result;
    active_cycles = Machine.total_active_cycles result;
    avg_rob_occupancy = Machine.avg_rob_occupancy result;
  }

let speedup ~baseline m = float_of_int baseline.cycles /. float_of_int m.cycles
