(** Shared plumbing for the experiment modules: the four machine
    variants of the evaluation and a measured-run record. *)

type measurement = {
  cycles : int;
  fence_stall_fraction : float;
      (** share of per-core active cycles spent commit-blocked on a fence *)
  fence_stalls : int;
  active_cycles : int;
  avg_rob_occupancy : float;
}

val t_config : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** Traditional fences (S-Fence hardware disabled). *)

val s_config : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** S-Fence hardware enabled. *)

val t_plus : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** Traditional + in-window speculation. *)

val s_plus : Fscope_machine.Config.t -> Fscope_machine.Config.t
(** S-Fence + in-window speculation. *)

val measure : Fscope_machine.Config.t -> Fscope_workloads.Workload.t -> measurement
(** Run and summarise.  Functional validation is enforced whenever
    in-window speculation is off (speculation is modelled without the
    replay mechanism real hardware uses, so its runs are timing-only;
    see DESIGN.md). *)

val speedup : baseline:measurement -> measurement -> float
