module W = Fscope_workloads
module Ast = Fscope_slang.Ast
module Config = Fscope_machine.Config
module Table = Fscope_util.Table

type fsb_cell = {
  bench : string;
  fsb_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

let fsb_sweep ?(quick = false) ?(entries = [ 1; 2; 4; 8 ]) () =
  let level = W.Privwork.fig12_levels.(2) in
  let rounds = if quick then 6 else 12 in
  let benches =
    [
      ("wsq", W.Wsq.make ~rounds ~scope:`Class ~level ());
      ("dekker", W.Dekker.make ~level ~attempts:(if quick then 10 else 30));
    ]
  in
  List.concat_map
    (fun (bench, workload) ->
      let t = Exp_run.measure (Exp_run.t_config Config.default) workload in
      List.map
        (fun fsb ->
          let config = Config.with_fsb_entries fsb Config.default in
          let s = Exp_run.measure (Exp_run.s_config config) workload in
          {
            bench;
            fsb_entries = fsb;
            s_cycles = s.Exp_run.cycles;
            speedup_vs_t = Exp_run.speedup ~baseline:t s;
          })
        entries)
    benches

let fsb_table cells =
  let t =
    Table.create ~title:"Ablation — FSB column count"
      ~header:[ "bench"; "FSB entries"; "S cycles"; "speedup vs T" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ c.bench; string_of_int c.fsb_entries; string_of_int c.s_cycles;
          Table.cell_x c.speedup_vs_t ])
    cells;
  t

(* ------------------------------------------------------------------ *)

type flavor_row = {
  variant : string;
  cycles : int;
  speedup_vs_t : float;
}

let flavor_sweep ?(quick = false) () =
  (* §VII: scope and direction are orthogonal refinements — combine
     them on the wsq harness.  Flavoured *traditional* fences (sfence/
     lfence-style) already help; scoped fences help more; flavoured
     scoped fences are the strongest. *)
  let level = W.Privwork.fig12_levels.(2) in
  let rounds = if quick then 6 else 12 in
  let plain = W.Wsq.make ~rounds ~scope:`Class ~level () in
  let flavored = W.Wsq.make ~rounds ~flavored:true ~scope:`Class ~level () in
  let t = Exp_run.measure (Exp_run.t_config Config.default) plain in
  let rows =
    [
      ("T (full fences)", Exp_run.measure (Exp_run.t_config Config.default) plain);
      ("T + direction", Exp_run.measure (Exp_run.t_config Config.default) flavored);
      ("S (class scope)", Exp_run.measure (Exp_run.s_config Config.default) plain);
      ("S + direction", Exp_run.measure (Exp_run.s_config Config.default) flavored);
    ]
  in
  List.map
    (fun (variant, m) ->
      { variant; cycles = m.Exp_run.cycles; speedup_vs_t = Exp_run.speedup ~baseline:t m })
    rows

let flavor_table rows =
  let t =
    Table.create ~title:"Ablation — scope x direction on wsq (paper SVII combination)"
      ~header:[ "variant"; "cycles"; "speedup vs T" ]
  in
  List.iter
    (fun r ->
      Table.add_row t [ r.variant; string_of_int r.cycles; Table.cell_x r.speedup_vs_t ])
    rows;
  t

let nested_scope_workload ?(depth = 6) ?(rounds = 24) () =
  let open W.Dsl in
  (* Each thread owns its own chain of instances (t0: a0..a5, t1:
     b0..b5) so the in-scope stores are fast private hits; the cold
     private store between calls is the out-of-scope work every one of
     the [depth] nested fences can skip — when the FSS is deep enough
     to track them. *)
  let inst t k = Printf.sprintf "%c%d" (Char.chr (Stdlib.( + ) 97 t)) k in
  (* Each class Ct_k calls the thread-specific instance of Ct_(k+1):
     [depth] truly nested scopes per outer call — the FSS pressure
     this ablation is about. *)
  let cls_chain t k =
    let inner_call =
      if Stdlib.( < ) k (Stdlib.( - ) depth 1) then
        [ call (inst t (Stdlib.( + ) k 1)) "m" [] ]
      else []
    in
    {
      Ast.cname = Printf.sprintf "C%d_%d" t k;
      scalars = [ scalar "x" 0 ];
      arrays = [];
      methods =
        [
          meth "m" []
            ([ sfld "self" "x" (fld "self" "x" + i 1) ]
            @ inner_call
            @ [ fence_class; sfld "self" "x" (fld "self" "x" + i 1) ]);
        ];
    }
  in
  let thread me =
    W.Privwork.warmup ~thread:me ~level:(W.Privwork.cold ~arith:8 ~stores:1)
    @ [
        let_ "r" (i 0);
        while_
          (l "r" < i rounds)
          ([ call (inst me 0) "m" [] ]
          @ W.Privwork.block ~thread:me
              ~level:(W.Privwork.cold ~arith:8 ~stores:1)
              ~unique:"w" ()
          @ [ set "r" (l "r" + i 1) ]);
      ]
  in
  let program_ast =
    {
      Ast.classes = List.concat_map (fun t -> List.init depth (cls_chain t)) [ 0; 1 ];
      instances =
        List.concat_map
          (fun t ->
            List.init depth (fun k ->
                { Ast.iname = inst t k; cls = Printf.sprintf "C%d_%d" t k }))
          [ 0; 1 ];
      globals = W.Privwork.globals ~threads:2 ();
      threads = [ thread 0; thread 1 ];
    }
  in
  let program = Fscope_slang.Compile.compile_program program_ast in
  let validate (result : Fscope_machine.Machine.result) =
    let x0 =
      result.Fscope_machine.Machine.mem.(Fscope_isa.Program.address_of program "a0.x")
    in
    let expected = Stdlib.( * ) 2 rounds in
    if Stdlib.( <> ) x0 expected then
      Error (Printf.sprintf "a0.x = %d, expected %d" x0 expected)
    else Ok ()
  in
  {
    W.Workload.name = "nested-scopes";
    description = Printf.sprintf "%d-deep class-scope nesting chain" depth;
    program;
    validate;
  }

type fss_cell = {
  fss_entries : int;
  s_cycles : int;
  speedup_vs_t : float;
}

let fss_sweep ?(entries = [ 1; 2; 4; 5; 6; 8 ]) () =
  let workload = nested_scope_workload () in
  let t = Exp_run.measure (Exp_run.t_config Config.default) workload in
  List.map
    (fun fss ->
      (* Hold the MT and FSB generous so only the FSS depth binds:
         the two threads' chains use 12 distinct cids. *)
      let config =
        { Config.default with
          Config.scope =
            { Config.default.Config.scope with
              Fscope_core.Scope_unit.fss_entries = fss;
              mt_entries = 16;
              fsb_entries = 8 } }
      in
      let s = Exp_run.measure (Exp_run.s_config config) workload in
      {
        fss_entries = fss;
        s_cycles = s.Exp_run.cycles;
        speedup_vs_t = Exp_run.speedup ~baseline:t s;
      })
    entries

let fss_table cells =
  let t =
    Table.create ~title:"Ablation — FSS depth vs 6-deep scope nesting"
      ~header:[ "FSS entries"; "S cycles"; "speedup vs T" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ string_of_int c.fss_entries; string_of_int c.s_cycles; Table.cell_x c.speedup_vs_t ])
    cells;
  t
