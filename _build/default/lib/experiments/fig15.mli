(** Fig. 15 — sensitivity to memory access latency (200/300/500
    cycles) for the four full applications.

    Paper result: barnes and radiosity benefit more from S-Fence as
    latency grows (more of T's time is fence stalls, and S-Fence still
    removes 40-50% of them); pst does not improve with latency because
    its un-optimised full fence outside the deque eats the gain. *)

type cell = {
  app : string;
  latency : int;
  t_cycles : int;
  s_cycles : int;
  speedup : float;
  t_fence_share : float;
  s_fence_share : float;
}

val run : ?quick:bool -> ?latencies:int list -> unit -> cell list
val table : cell list -> Fscope_util.Table.t
