(** Data-segment layout: allocates named words and arrays in the shared
    memory image.

    Allocation is bump-pointer with optional cache-line alignment so
    harnesses can separate contended variables onto distinct lines
    (false sharing is real in the simulated caches). *)

type t

val create : ?line_words:int -> unit -> t
(** [line_words] is the cache line size used by [alloc_aligned]
    (default 8, matching {!Fscope_machine.Config.default}). *)

val alloc : t -> string -> int -> int
(** [alloc t name words] reserves [words] contiguous words and returns
    the base address.  Raises [Invalid_argument] on duplicate names or
    non-positive sizes. *)

val alloc_aligned : t -> string -> int -> int
(** Like [alloc] but the base address is aligned to a cache-line
    boundary, and the allocation is padded to a whole number of
    lines so nothing else shares its last line. *)

val init : t -> int -> int -> unit
(** [init t addr value] records an initial memory value.  The address
    must lie inside an existing allocation. *)

val init_array : t -> int -> int array -> unit
(** [init_array t base values] records [values] starting at [base]. *)

val size : t -> int
(** Words allocated so far. *)

val symbols : t -> (string * int) list
val initials : t -> (int * int) list

val address_of : t -> string -> int
(** Raises [Not_found]. *)
