(** A multithreaded program image.

    Each hardware thread (core) runs its own code array; all threads
    share one flat, word-addressed data memory.  Symbols name data
    addresses so harnesses and self-checks can inspect memory after a
    run. *)

type t = {
  threads : Instr.t array array;  (** [threads.(i)] is core [i]'s code *)
  mem_words : int;  (** size of the shared data memory, in words *)
  init : (int * int) list;  (** initial non-zero memory contents: (address, value) *)
  symbols : (string * int) list;  (** symbol name -> base address *)
}

val make :
  threads:Instr.t array list ->
  mem_words:int ->
  ?init:(int * int) list ->
  ?symbols:(string * int) list ->
  unit ->
  t
(** Build and validate a program.  Raises [Invalid_argument] if a
    branch target is out of range, an initial address is out of bounds,
    a thread's code is empty, or a symbol is duplicated. *)

val thread_count : t -> int

val address_of : t -> string -> int
(** Address of a symbol.  Raises [Not_found]. *)

val initial_memory : t -> int array
(** A fresh memory image with [init] applied. *)

val total_instrs : t -> int
(** Static instruction count over all threads. *)

val pp_disassembly : Format.formatter -> t -> unit
(** Human-readable dump of every thread's code. *)
