type scope =
  | Global
  | Class_scope
  | Set_scope

type t = {
  scope : scope;
  wait_loads : bool;
  wait_stores : bool;
  block_loads : bool;
}

let full = { scope = Global; wait_loads = true; wait_stores = true; block_loads = true }
let class_scoped = { full with scope = Class_scope }
let set_scoped = { full with scope = Set_scope }
let store_store t = { t with wait_loads = false; wait_stores = true; block_loads = false }
let load_load t = { t with wait_loads = true; wait_stores = false; block_loads = true }
let store_load t = { t with wait_loads = false; wait_stores = true; block_loads = true }
let scope_of t = t.scope

let equal (a : t) (b : t) = a = b

let scope_string = function
  | Global -> "S-FENCE"
  | Class_scope -> "S-FENCE[class]"
  | Set_scope -> "S-FENCE[set]"

let to_string t =
  let flavor =
    match (t.wait_loads, t.wait_stores, t.block_loads) with
    | true, true, true -> ""
    | false, true, false -> ".ss"
    | true, false, true -> ".ll"
    | false, true, true -> ".sl"
    | _ -> ".custom"
  in
  scope_string t.scope ^ flavor

let pp fmt t = Format.pp_print_string fmt (to_string t)
