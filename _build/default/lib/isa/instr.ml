type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt
  | Sle
  | Seq
  | Sne

type operand =
  | Reg of Reg.t
  | Imm of int

type branch_cond =
  | Eqz
  | Nez

type t =
  | Nop
  | Li of Reg.t * int
  | Alu of alu_op * Reg.t * Reg.t * operand
  | Tid of Reg.t
  | Load of { dst : Reg.t; base : Reg.t; off : int; flagged : bool }
  | Store of { src : Reg.t; base : Reg.t; off : int; flagged : bool }
  | Cas of {
      dst : Reg.t;
      base : Reg.t;
      off : int;
      expected : Reg.t;
      desired : Reg.t;
      flagged : bool;
    }
  | Branch of { cond : branch_cond; src : Reg.t; target : int }
  | Jump of int
  | Fence of Fence_kind.t
  | Fs_start of int
  | Fs_end of int
  | Halt

let is_memory = function
  | Load _ | Store _ | Cas _ -> true
  | Nop | Li _ | Alu _ | Tid _ | Branch _ | Jump _ | Fence _ | Fs_start _ | Fs_end _
  | Halt ->
    false

let is_store_like = function
  | Store _ | Cas _ -> true
  | Nop | Li _ | Alu _ | Tid _ | Load _ | Branch _ | Jump _ | Fence _ | Fs_start _
  | Fs_end _ | Halt ->
    false

let non_zero r = if Reg.equal r Reg.zero then None else Some r

let writes_reg = function
  | Li (dst, _) | Alu (_, dst, _, _) | Tid dst -> non_zero dst
  | Load { dst; _ } | Cas { dst; _ } -> non_zero dst
  | Nop | Store _ | Branch _ | Jump _ | Fence _ | Fs_start _ | Fs_end _ | Halt -> None

let reads_regs instr =
  let srcs =
    match instr with
    | Nop | Li _ | Tid _ | Jump _ | Fence _ | Fs_start _ | Fs_end _ | Halt -> []
    | Alu (_, _, a, Reg b) -> [ a; b ]
    | Alu (_, _, a, Imm _) -> [ a ]
    | Load { base; _ } -> [ base ]
    | Store { src; base; _ } -> [ src; base ]
    | Cas { base; expected; desired; _ } -> [ base; expected; desired ]
    | Branch { src; _ } -> [ src ]
  in
  List.sort_uniq Reg.compare srcs

let branch_targets = function
  | Branch { target; _ } | Jump target -> [ target ]
  | Nop | Li _ | Alu _ | Tid _ | Load _ | Store _ | Cas _ | Fence _ | Fs_start _
  | Fs_end _ | Halt ->
    []

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"

let pp_operand fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.fprintf fmt "#%d" i

let flag_suffix flagged = if flagged then ".fs" else ""

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Li (dst, v) -> Format.fprintf fmt "li %a, %d" Reg.pp dst v
  | Alu (op, dst, a, b) ->
    Format.fprintf fmt "%s %a, %a, %a" (alu_op_name op) Reg.pp dst Reg.pp a pp_operand b
  | Tid dst -> Format.fprintf fmt "tid %a" Reg.pp dst
  | Load { dst; base; off; flagged } ->
    Format.fprintf fmt "ld%s %a, %d(%a)" (flag_suffix flagged) Reg.pp dst off Reg.pp base
  | Store { src; base; off; flagged } ->
    Format.fprintf fmt "st%s %a, %d(%a)" (flag_suffix flagged) Reg.pp src off Reg.pp base
  | Cas { dst; base; off; expected; desired; flagged } ->
    Format.fprintf fmt "cas%s %a, %d(%a), %a, %a" (flag_suffix flagged) Reg.pp dst off
      Reg.pp base Reg.pp expected Reg.pp desired
  | Branch { cond; src; target } ->
    let name = match cond with Eqz -> "beqz" | Nez -> "bnez" in
    Format.fprintf fmt "%s %a, @%d" name Reg.pp src target
  | Jump target -> Format.fprintf fmt "j @%d" target
  | Fence kind -> Fence_kind.pp fmt kind
  | Fs_start cid -> Format.fprintf fmt "fs_start %d" cid
  | Fs_end cid -> Format.fprintf fmt "fs_end %d" cid
  | Halt -> Format.pp_print_string fmt "halt"

let to_string t = Format.asprintf "%a" pp t
