type label = int

type pending =
  | Ready of Instr.t
  | Branch_to of Instr.branch_cond * Reg.t * label
  | Jump_to of label

type t = {
  mutable code : pending list; (* reversed *)
  mutable len : int;
  mutable next_label : int;
  placed : (label, int) Hashtbl.t;
}

let create () = { code = []; len = 0; next_label = 0; placed = Hashtbl.create 16 }

let fresh_label t =
  let l = t.next_label in
  t.next_label <- t.next_label + 1;
  l

let place t label =
  if Hashtbl.mem t.placed label then invalid_arg "Asm.place: label placed twice";
  Hashtbl.add t.placed label t.len

let push t p =
  t.code <- p :: t.code;
  t.len <- t.len + 1

let emit t instr = push t (Ready instr)
let branch t cond src label = push t (Branch_to (cond, src, label))
let jump t label = push t (Jump_to label)
let here t = t.len

let finish t =
  let resolve label =
    match Hashtbl.find_opt t.placed label with
    | Some pos -> pos
    | None -> invalid_arg "Asm.finish: unplaced label"
  in
  let instrs =
    List.rev_map
      (fun p ->
        match p with
        | Ready i -> i
        | Branch_to (cond, src, label) ->
          Instr.Branch { cond; src; target = resolve label }
        | Jump_to label -> Instr.Jump (resolve label))
      t.code
  in
  Array.of_list instrs
