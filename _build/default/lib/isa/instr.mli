(** Instructions of the simulated RISC ISA.

    The ISA is deliberately small: enough to compile the mini language
    and to carry the two ISA extensions of the paper —
    [class-fence]/[set-fence] together with the [fs_start]/[fs_end]
    marker instructions (Tables I and II), and a per-memory-instruction
    set-scope flag. *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** Truncating; division by zero yields 0 (the simulator never traps). *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt  (** set-less-than: 1 if a < b else 0 *)
  | Sle
  | Seq
  | Sne

type operand =
  | Reg of Reg.t
  | Imm of int

type branch_cond =
  | Eqz  (** branch if register = 0 *)
  | Nez  (** branch if register <> 0 *)

type t =
  | Nop
  | Li of Reg.t * int  (** load immediate *)
  | Alu of alu_op * Reg.t * Reg.t * operand  (** [Alu (op, dst, a, b)] *)
  | Tid of Reg.t  (** dst := hardware thread (core) id *)
  | Load of { dst : Reg.t; base : Reg.t; off : int; flagged : bool }
      (** dst := mem\[base + off\]; [flagged] marks set-scope membership *)
  | Store of { src : Reg.t; base : Reg.t; off : int; flagged : bool }
  | Cas of {
      dst : Reg.t;  (** receives 1 on success, 0 on failure *)
      base : Reg.t;
      off : int;
      expected : Reg.t;
      desired : Reg.t;
      flagged : bool;
    }  (** atomic compare-and-swap on mem\[base + off\] *)
  | Branch of { cond : branch_cond; src : Reg.t; target : int }
  | Jump of int
  | Fence of Fence_kind.t
  | Fs_start of int  (** start of a class scope; operand is the class id *)
  | Fs_end of int  (** end of a class scope *)
  | Halt

val is_memory : t -> bool
(** Loads, stores and CAS — the instructions a fence may wait on. *)

val is_store_like : t -> bool
(** Stores and CAS — instructions that write memory. *)

val writes_reg : t -> Reg.t option
(** The destination register, if any (never [Reg.zero]; writes to r0
    are reported as [None]). *)

val reads_regs : t -> Reg.t list
(** Source registers, duplicates removed, [Reg.zero] included (it reads
    as constant 0 but is harmless to list). *)

val branch_targets : t -> int list
(** Static control-flow targets of branches and jumps. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
