(** Fence kinds: the paper's three scopes (Fig. 4) crossed with the
    directional flavours of commercial finer fences.

    The paper's §VII points out that scope and direction are
    orthogonal refinements of the full fence and can be combined —
    "the idea of S-Fence can be combined with the above various finer
    fences".  We implement exactly that: a fence has a {!scope}
    (which earlier accesses it orders: all, the class scope's, or the
    flagged set's) and a flavour (which *classes* of accesses it
    orders — like sfence / lfence / the store→load part of mfence):

    - [wait_loads]/[wait_stores]: the fence completes only when the
      prior in-scope accesses of these classes have completed (a CAS
      counts as both);
    - [block_loads]: younger loads may not issue until the fence has
      (store-store fences don't need this: younger *stores* are
      already held back by in-order commit behind the fence). *)

type scope =
  | Global  (** traditional: every program-order-earlier access *)
  | Class_scope  (** S-FENCE[class] *)
  | Set_scope  (** S-FENCE[set, {...}] *)

type t = {
  scope : scope;
  wait_loads : bool;
  wait_stores : bool;
  block_loads : bool;
}

val full : t
(** The traditional full fence: global scope, waits for everything,
    blocks younger loads. *)

val class_scoped : t
(** S-FENCE[class] with full flavour. *)

val set_scoped : t
(** S-FENCE[set] with full flavour. *)

val store_store : t -> t
(** Restrict to prior stores -> younger stores (sfence-like): no
    waiting on prior loads, no blocking of younger loads. *)

val load_load : t -> t
(** Prior loads -> younger loads (lfence-like). *)

val store_load : t -> t
(** Prior stores -> younger loads (the expensive direction TSO
    machines buy with mfence). *)

val scope_of : t -> scope
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
