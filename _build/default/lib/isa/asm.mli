(** Single-thread assembler with forward labels.

    Emit instructions in order; branch/jump targets may reference
    labels defined later.  [finish] resolves all labels and returns the
    code array.  This is the target of {!Fscope_slang.Codegen} and the
    tool used by hand-written micro-tests. *)

type t

type label

val create : unit -> t

val fresh_label : t -> label
(** A new, not-yet-placed label. *)

val place : t -> label -> unit
(** Bind a label to the current position.  Raises [Invalid_argument]
    if the label was already placed. *)

val emit : t -> Instr.t -> unit
(** Append an instruction whose targets (if any) are already absolute. *)

val branch : t -> Instr.branch_cond -> Reg.t -> label -> unit
(** Conditional branch to a label. *)

val jump : t -> label -> unit
(** Unconditional jump to a label. *)

val here : t -> int
(** Current position (index of the next emitted instruction). *)

val finish : t -> Instr.t array
(** Resolve labels and return the code.  Raises [Invalid_argument] if
    any referenced label was never placed. *)
