type t = {
  threads : Instr.t array array;
  mem_words : int;
  init : (int * int) list;
  symbols : (string * int) list;
}

let validate t =
  if Array.length t.threads = 0 then invalid_arg "Program: no threads";
  Array.iteri
    (fun tid code ->
      if Array.length code = 0 then
        invalid_arg (Printf.sprintf "Program: thread %d has empty code" tid);
      Array.iteri
        (fun pc instr ->
          List.iter
            (fun target ->
              if target < 0 || target >= Array.length code then
                invalid_arg
                  (Printf.sprintf
                     "Program: thread %d pc %d branches to %d, out of range" tid pc
                     target))
            (Instr.branch_targets instr))
        code)
    t.threads;
  List.iter
    (fun (addr, _) ->
      if addr < 0 || addr >= t.mem_words then
        invalid_arg (Printf.sprintf "Program: init address %d out of bounds" addr))
    t.init;
  let names = List.map fst t.symbols in
  let dedup = List.sort_uniq String.compare names in
  if List.length dedup <> List.length names then
    invalid_arg "Program: duplicate symbol";
  t

let make ~threads ~mem_words ?(init = []) ?(symbols = []) () =
  validate { threads = Array.of_list threads; mem_words; init; symbols }

let thread_count t = Array.length t.threads

let address_of t name = List.assoc name t.symbols

let initial_memory t =
  let mem = Array.make t.mem_words 0 in
  List.iter (fun (addr, v) -> mem.(addr) <- v) t.init;
  mem

let total_instrs t =
  Array.fold_left (fun acc code -> acc + Array.length code) 0 t.threads

let pp_disassembly fmt t =
  Array.iteri
    (fun tid code ->
      Format.fprintf fmt "thread %d:@." tid;
      Array.iteri
        (fun pc instr -> Format.fprintf fmt "  %4d: %a@." pc Instr.pp instr)
        code)
    t.threads
