(** Architectural registers of the simulated RISC ISA.

    The machine has 32 integer registers.  [r 0] is hardwired to zero,
    as on MIPS.  The compiler's conventions (expression stack, local
    pool, scratch) live in {!Fscope_slang.Codegen}; this module only
    provides the raw register type. *)

type t = private int
(** A register index in [\[0, 31\]]. *)

val count : int
(** Number of architectural registers (32). *)

val r : int -> t
(** [r i] is register [i].  Raises [Invalid_argument] if [i] is out of
    range. *)

val zero : t
(** Register 0, always reads as 0; writes to it are discarded. *)

val index : t -> int
(** The register's index. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
