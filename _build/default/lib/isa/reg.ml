type t = int

let count = 32

let r i =
  if i < 0 || i >= count then invalid_arg (Printf.sprintf "Reg.r: %d out of range" i);
  i

let zero = 0
let index t = t
let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "r%d" t
